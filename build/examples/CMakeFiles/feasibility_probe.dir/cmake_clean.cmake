file(REMOVE_RECURSE
  "CMakeFiles/feasibility_probe.dir/feasibility_probe.cpp.o"
  "CMakeFiles/feasibility_probe.dir/feasibility_probe.cpp.o.d"
  "feasibility_probe"
  "feasibility_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasibility_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
