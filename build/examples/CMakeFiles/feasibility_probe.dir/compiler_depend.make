# Empty compiler generated dependencies file for feasibility_probe.
# This may be replaced when dependencies are built.
