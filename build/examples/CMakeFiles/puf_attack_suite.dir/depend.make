# Empty dependencies file for puf_attack_suite.
# This may be replaced when dependencies are built.
