file(REMOVE_RECURSE
  "CMakeFiles/puf_attack_suite.dir/puf_attack_suite.cpp.o"
  "CMakeFiles/puf_attack_suite.dir/puf_attack_suite.cpp.o.d"
  "puf_attack_suite"
  "puf_attack_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/puf_attack_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
