# Empty compiler generated dependencies file for adversary_model_audit.
# This may be replaced when dependencies are built.
