file(REMOVE_RECURSE
  "CMakeFiles/adversary_model_audit.dir/adversary_model_audit.cpp.o"
  "CMakeFiles/adversary_model_audit.dir/adversary_model_audit.cpp.o.d"
  "adversary_model_audit"
  "adversary_model_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_model_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
