# Empty dependencies file for logic_locking_attack.
# This may be replaced when dependencies are built.
