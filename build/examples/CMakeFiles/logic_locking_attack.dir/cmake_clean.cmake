file(REMOVE_RECURSE
  "CMakeFiles/logic_locking_attack.dir/logic_locking_attack.cpp.o"
  "CMakeFiles/logic_locking_attack.dir/logic_locking_attack.cpp.o.d"
  "logic_locking_attack"
  "logic_locking_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_locking_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
