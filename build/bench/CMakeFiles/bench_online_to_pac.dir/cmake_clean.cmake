file(REMOVE_RECURSE
  "CMakeFiles/bench_online_to_pac.dir/bench_online_to_pac.cpp.o"
  "CMakeFiles/bench_online_to_pac.dir/bench_online_to_pac.cpp.o.d"
  "bench_online_to_pac"
  "bench_online_to_pac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_to_pac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
