# Empty compiler generated dependencies file for bench_online_to_pac.
# This may be replaced when dependencies are built.
