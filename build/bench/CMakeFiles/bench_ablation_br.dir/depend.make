# Empty dependencies file for bench_ablation_br.
# This may be replaced when dependencies are built.
