file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_br.dir/bench_ablation_br.cpp.o"
  "CMakeFiles/bench_ablation_br.dir/bench_ablation_br.cpp.o.d"
  "bench_ablation_br"
  "bench_ablation_br.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_br.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
