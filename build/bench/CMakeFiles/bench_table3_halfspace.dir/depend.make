# Empty dependencies file for bench_table3_halfspace.
# This may be replaced when dependencies are built.
