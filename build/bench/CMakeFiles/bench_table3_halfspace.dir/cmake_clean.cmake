file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_halfspace.dir/bench_table3_halfspace.cpp.o"
  "CMakeFiles/bench_table3_halfspace.dir/bench_table3_halfspace.cpp.o.d"
  "bench_table3_halfspace"
  "bench_table3_halfspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_halfspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
