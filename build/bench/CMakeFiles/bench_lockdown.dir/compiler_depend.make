# Empty compiler generated dependencies file for bench_lockdown.
# This may be replaced when dependencies are built.
