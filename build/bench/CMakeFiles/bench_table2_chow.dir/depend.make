# Empty dependencies file for bench_table2_chow.
# This may be replaced when dependencies are built.
