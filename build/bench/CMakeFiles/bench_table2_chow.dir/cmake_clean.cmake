file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_chow.dir/bench_table2_chow.cpp.o"
  "CMakeFiles/bench_table2_chow.dir/bench_table2_chow.cpp.o.d"
  "bench_table2_chow"
  "bench_table2_chow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_chow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
