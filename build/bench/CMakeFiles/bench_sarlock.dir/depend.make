# Empty dependencies file for bench_sarlock.
# This may be replaced when dependencies are built.
