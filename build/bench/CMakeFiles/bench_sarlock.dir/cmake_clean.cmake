file(REMOVE_RECURSE
  "CMakeFiles/bench_sarlock.dir/bench_sarlock.cpp.o"
  "CMakeFiles/bench_sarlock.dir/bench_sarlock.cpp.o.d"
  "bench_sarlock"
  "bench_sarlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sarlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
