file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_bounds.dir/bench_table1_bounds.cpp.o"
  "CMakeFiles/bench_table1_bounds.dir/bench_table1_bounds.cpp.o.d"
  "bench_table1_bounds"
  "bench_table1_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
