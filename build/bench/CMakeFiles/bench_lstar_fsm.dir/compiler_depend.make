# Empty compiler generated dependencies file for bench_lstar_fsm.
# This may be replaced when dependencies are built.
