file(REMOVE_RECURSE
  "CMakeFiles/bench_lstar_fsm.dir/bench_lstar_fsm.cpp.o"
  "CMakeFiles/bench_lstar_fsm.dir/bench_lstar_fsm.cpp.o.d"
  "bench_lstar_fsm"
  "bench_lstar_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lstar_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
