# Empty dependencies file for bench_learning_curves.
# This may be replaced when dependencies are built.
