file(REMOVE_RECURSE
  "CMakeFiles/bench_learning_curves.dir/bench_learning_curves.cpp.o"
  "CMakeFiles/bench_learning_curves.dir/bench_learning_curves.cpp.o.d"
  "bench_learning_curves"
  "bench_learning_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learning_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
