file(REMOVE_RECURSE
  "CMakeFiles/bench_pitfall_audit.dir/bench_pitfall_audit.cpp.o"
  "CMakeFiles/bench_pitfall_audit.dir/bench_pitfall_audit.cpp.o.d"
  "bench_pitfall_audit"
  "bench_pitfall_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pitfall_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
