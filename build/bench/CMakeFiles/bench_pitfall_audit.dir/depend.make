# Empty dependencies file for bench_pitfall_audit.
# This may be replaced when dependencies are built.
