file(REMOVE_RECURSE
  "CMakeFiles/bench_sat_attack.dir/bench_sat_attack.cpp.o"
  "CMakeFiles/bench_sat_attack.dir/bench_sat_attack.cpp.o.d"
  "bench_sat_attack"
  "bench_sat_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sat_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
