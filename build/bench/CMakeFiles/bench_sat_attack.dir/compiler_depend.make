# Empty compiler generated dependencies file for bench_sat_attack.
# This may be replaced when dependencies are built.
