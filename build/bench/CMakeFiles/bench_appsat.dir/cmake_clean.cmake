file(REMOVE_RECURSE
  "CMakeFiles/bench_appsat.dir/bench_appsat.cpp.o"
  "CMakeFiles/bench_appsat.dir/bench_appsat.cpp.o.d"
  "bench_appsat"
  "bench_appsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
