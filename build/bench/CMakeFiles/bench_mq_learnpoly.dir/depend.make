# Empty dependencies file for bench_mq_learnpoly.
# This may be replaced when dependencies are built.
