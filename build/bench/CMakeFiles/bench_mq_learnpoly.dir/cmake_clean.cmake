file(REMOVE_RECURSE
  "CMakeFiles/bench_mq_learnpoly.dir/bench_mq_learnpoly.cpp.o"
  "CMakeFiles/bench_mq_learnpoly.dir/bench_mq_learnpoly.cpp.o.d"
  "bench_mq_learnpoly"
  "bench_mq_learnpoly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mq_learnpoly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
