# Empty compiler generated dependencies file for bench_lmn_xorpuf.
# This may be replaced when dependencies are built.
