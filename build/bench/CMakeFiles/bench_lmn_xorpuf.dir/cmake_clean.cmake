file(REMOVE_RECURSE
  "CMakeFiles/bench_lmn_xorpuf.dir/bench_lmn_xorpuf.cpp.o"
  "CMakeFiles/bench_lmn_xorpuf.dir/bench_lmn_xorpuf.cpp.o.d"
  "bench_lmn_xorpuf"
  "bench_lmn_xorpuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lmn_xorpuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
