
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_noise_tolerance.cpp" "bench/CMakeFiles/bench_noise_tolerance.dir/bench_noise_tolerance.cpp.o" "gcc" "bench/CMakeFiles/bench_noise_tolerance.dir/bench_noise_tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pitfalls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/pitfalls_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/pitfalls_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/pitfalls_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pitfalls_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pitfalls_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/puf/CMakeFiles/pitfalls_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/boolfn/CMakeFiles/pitfalls_boolfn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pitfalls_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
