# Empty compiler generated dependencies file for bench_noise_tolerance.
# This may be replaced when dependencies are built.
