# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/boolfn_test[1]_include.cmake")
include("/root/repo/build/tests/puf_test[1]_include.cmake")
include("/root/repo/build/tests/ml_linear_test[1]_include.cmake")
include("/root/repo/build/tests/ml_fourier_test[1]_include.cmake")
include("/root/repo/build/tests/ml_query_test[1]_include.cmake")
include("/root/repo/build/tests/ml_automata_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/lock_attack_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/ml_xor_model_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/online_test[1]_include.cmake")
include("/root/repo/build/tests/sat_dimacs_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/feasibility_test[1]_include.cmake")
include("/root/repo/build/tests/fsm_structural_test[1]_include.cmake")
