# Empty compiler generated dependencies file for ml_fourier_test.
# This may be replaced when dependencies are built.
