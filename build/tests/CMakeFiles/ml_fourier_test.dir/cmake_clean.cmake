file(REMOVE_RECURSE
  "CMakeFiles/ml_fourier_test.dir/ml_fourier_test.cpp.o"
  "CMakeFiles/ml_fourier_test.dir/ml_fourier_test.cpp.o.d"
  "ml_fourier_test"
  "ml_fourier_test.pdb"
  "ml_fourier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_fourier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
