# Empty dependencies file for boolfn_test.
# This may be replaced when dependencies are built.
