file(REMOVE_RECURSE
  "CMakeFiles/boolfn_test.dir/boolfn_test.cpp.o"
  "CMakeFiles/boolfn_test.dir/boolfn_test.cpp.o.d"
  "boolfn_test"
  "boolfn_test.pdb"
  "boolfn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolfn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
