file(REMOVE_RECURSE
  "CMakeFiles/ml_xor_model_test.dir/ml_xor_model_test.cpp.o"
  "CMakeFiles/ml_xor_model_test.dir/ml_xor_model_test.cpp.o.d"
  "ml_xor_model_test"
  "ml_xor_model_test.pdb"
  "ml_xor_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_xor_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
