# Empty compiler generated dependencies file for ml_query_test.
# This may be replaced when dependencies are built.
