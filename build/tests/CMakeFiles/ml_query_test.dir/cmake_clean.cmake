file(REMOVE_RECURSE
  "CMakeFiles/ml_query_test.dir/ml_query_test.cpp.o"
  "CMakeFiles/ml_query_test.dir/ml_query_test.cpp.o.d"
  "ml_query_test"
  "ml_query_test.pdb"
  "ml_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
