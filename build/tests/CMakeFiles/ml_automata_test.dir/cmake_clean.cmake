file(REMOVE_RECURSE
  "CMakeFiles/ml_automata_test.dir/ml_automata_test.cpp.o"
  "CMakeFiles/ml_automata_test.dir/ml_automata_test.cpp.o.d"
  "ml_automata_test"
  "ml_automata_test.pdb"
  "ml_automata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_automata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
