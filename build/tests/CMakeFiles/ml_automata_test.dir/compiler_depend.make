# Empty compiler generated dependencies file for ml_automata_test.
# This may be replaced when dependencies are built.
