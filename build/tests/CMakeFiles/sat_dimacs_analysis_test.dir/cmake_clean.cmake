file(REMOVE_RECURSE
  "CMakeFiles/sat_dimacs_analysis_test.dir/sat_dimacs_analysis_test.cpp.o"
  "CMakeFiles/sat_dimacs_analysis_test.dir/sat_dimacs_analysis_test.cpp.o.d"
  "sat_dimacs_analysis_test"
  "sat_dimacs_analysis_test.pdb"
  "sat_dimacs_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_dimacs_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
