# Empty dependencies file for sat_dimacs_analysis_test.
# This may be replaced when dependencies are built.
