file(REMOVE_RECURSE
  "CMakeFiles/fsm_structural_test.dir/fsm_structural_test.cpp.o"
  "CMakeFiles/fsm_structural_test.dir/fsm_structural_test.cpp.o.d"
  "fsm_structural_test"
  "fsm_structural_test.pdb"
  "fsm_structural_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_structural_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
