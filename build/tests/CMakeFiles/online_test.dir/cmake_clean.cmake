file(REMOVE_RECURSE
  "CMakeFiles/online_test.dir/online_test.cpp.o"
  "CMakeFiles/online_test.dir/online_test.cpp.o.d"
  "online_test"
  "online_test.pdb"
  "online_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
