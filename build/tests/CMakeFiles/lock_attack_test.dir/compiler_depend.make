# Empty compiler generated dependencies file for lock_attack_test.
# This may be replaced when dependencies are built.
