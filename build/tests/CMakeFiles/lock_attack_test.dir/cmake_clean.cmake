file(REMOVE_RECURSE
  "CMakeFiles/lock_attack_test.dir/lock_attack_test.cpp.o"
  "CMakeFiles/lock_attack_test.dir/lock_attack_test.cpp.o.d"
  "lock_attack_test"
  "lock_attack_test.pdb"
  "lock_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
