file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_support.dir/bitvec.cpp.o"
  "CMakeFiles/pitfalls_support.dir/bitvec.cpp.o.d"
  "CMakeFiles/pitfalls_support.dir/combinatorics.cpp.o"
  "CMakeFiles/pitfalls_support.dir/combinatorics.cpp.o.d"
  "CMakeFiles/pitfalls_support.dir/rng.cpp.o"
  "CMakeFiles/pitfalls_support.dir/rng.cpp.o.d"
  "CMakeFiles/pitfalls_support.dir/stats.cpp.o"
  "CMakeFiles/pitfalls_support.dir/stats.cpp.o.d"
  "CMakeFiles/pitfalls_support.dir/table.cpp.o"
  "CMakeFiles/pitfalls_support.dir/table.cpp.o.d"
  "libpitfalls_support.a"
  "libpitfalls_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
