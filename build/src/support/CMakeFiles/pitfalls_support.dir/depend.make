# Empty dependencies file for pitfalls_support.
# This may be replaced when dependencies are built.
