file(REMOVE_RECURSE
  "libpitfalls_support.a"
)
