file(REMOVE_RECURSE
  "libpitfalls_boolfn.a"
)
