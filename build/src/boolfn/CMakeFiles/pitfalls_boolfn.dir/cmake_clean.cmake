file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_boolfn.dir/anf.cpp.o"
  "CMakeFiles/pitfalls_boolfn.dir/anf.cpp.o.d"
  "CMakeFiles/pitfalls_boolfn.dir/fourier.cpp.o"
  "CMakeFiles/pitfalls_boolfn.dir/fourier.cpp.o.d"
  "CMakeFiles/pitfalls_boolfn.dir/influence.cpp.o"
  "CMakeFiles/pitfalls_boolfn.dir/influence.cpp.o.d"
  "CMakeFiles/pitfalls_boolfn.dir/ltf.cpp.o"
  "CMakeFiles/pitfalls_boolfn.dir/ltf.cpp.o.d"
  "CMakeFiles/pitfalls_boolfn.dir/truth_table.cpp.o"
  "CMakeFiles/pitfalls_boolfn.dir/truth_table.cpp.o.d"
  "libpitfalls_boolfn.a"
  "libpitfalls_boolfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_boolfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
