# Empty dependencies file for pitfalls_boolfn.
# This may be replaced when dependencies are built.
