
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boolfn/anf.cpp" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/anf.cpp.o" "gcc" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/anf.cpp.o.d"
  "/root/repo/src/boolfn/fourier.cpp" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/fourier.cpp.o" "gcc" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/fourier.cpp.o.d"
  "/root/repo/src/boolfn/influence.cpp" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/influence.cpp.o" "gcc" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/influence.cpp.o.d"
  "/root/repo/src/boolfn/ltf.cpp" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/ltf.cpp.o" "gcc" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/ltf.cpp.o.d"
  "/root/repo/src/boolfn/truth_table.cpp" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/truth_table.cpp.o" "gcc" "src/boolfn/CMakeFiles/pitfalls_boolfn.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pitfalls_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
