file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_core.dir/adversary.cpp.o"
  "CMakeFiles/pitfalls_core.dir/adversary.cpp.o.d"
  "CMakeFiles/pitfalls_core.dir/bounds.cpp.o"
  "CMakeFiles/pitfalls_core.dir/bounds.cpp.o.d"
  "CMakeFiles/pitfalls_core.dir/experiment.cpp.o"
  "CMakeFiles/pitfalls_core.dir/experiment.cpp.o.d"
  "CMakeFiles/pitfalls_core.dir/feasibility.cpp.o"
  "CMakeFiles/pitfalls_core.dir/feasibility.cpp.o.d"
  "CMakeFiles/pitfalls_core.dir/pitfalls.cpp.o"
  "CMakeFiles/pitfalls_core.dir/pitfalls.cpp.o.d"
  "libpitfalls_core.a"
  "libpitfalls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
