
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary.cpp" "src/core/CMakeFiles/pitfalls_core.dir/adversary.cpp.o" "gcc" "src/core/CMakeFiles/pitfalls_core.dir/adversary.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/pitfalls_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/pitfalls_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/pitfalls_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/pitfalls_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/feasibility.cpp" "src/core/CMakeFiles/pitfalls_core.dir/feasibility.cpp.o" "gcc" "src/core/CMakeFiles/pitfalls_core.dir/feasibility.cpp.o.d"
  "/root/repo/src/core/pitfalls.cpp" "src/core/CMakeFiles/pitfalls_core.dir/pitfalls.cpp.o" "gcc" "src/core/CMakeFiles/pitfalls_core.dir/pitfalls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/puf/CMakeFiles/pitfalls_puf.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pitfalls_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pitfalls_support.dir/DependInfo.cmake"
  "/root/repo/build/src/boolfn/CMakeFiles/pitfalls_boolfn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
