# Empty dependencies file for pitfalls_core.
# This may be replaced when dependencies are built.
