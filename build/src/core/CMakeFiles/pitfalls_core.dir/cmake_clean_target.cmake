file(REMOVE_RECURSE
  "libpitfalls_core.a"
)
