file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_attack.dir/appsat.cpp.o"
  "CMakeFiles/pitfalls_attack.dir/appsat.cpp.o.d"
  "CMakeFiles/pitfalls_attack.dir/fsm_bmc.cpp.o"
  "CMakeFiles/pitfalls_attack.dir/fsm_bmc.cpp.o.d"
  "CMakeFiles/pitfalls_attack.dir/sat_attack.cpp.o"
  "CMakeFiles/pitfalls_attack.dir/sat_attack.cpp.o.d"
  "libpitfalls_attack.a"
  "libpitfalls_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
