file(REMOVE_RECURSE
  "libpitfalls_attack.a"
)
