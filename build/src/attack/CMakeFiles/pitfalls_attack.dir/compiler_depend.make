# Empty compiler generated dependencies file for pitfalls_attack.
# This may be replaced when dependencies are built.
