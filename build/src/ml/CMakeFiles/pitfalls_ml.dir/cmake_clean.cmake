file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_ml.dir/anf_learner.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/anf_learner.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/chow.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/chow.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/dfa.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/dfa.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/features.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/features.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/halfspace_tester.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/halfspace_tester.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/junta.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/junta.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/linear_model.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/linear_model.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/lmn.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/lmn.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/logistic.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/lstar.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/lstar.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/online.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/online.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/oracle.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/oracle.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/perceptron.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/perceptron.cpp.o.d"
  "CMakeFiles/pitfalls_ml.dir/xor_model.cpp.o"
  "CMakeFiles/pitfalls_ml.dir/xor_model.cpp.o.d"
  "libpitfalls_ml.a"
  "libpitfalls_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
