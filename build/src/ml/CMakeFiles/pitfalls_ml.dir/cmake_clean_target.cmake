file(REMOVE_RECURSE
  "libpitfalls_ml.a"
)
