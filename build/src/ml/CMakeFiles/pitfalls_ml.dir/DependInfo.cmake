
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/anf_learner.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/anf_learner.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/anf_learner.cpp.o.d"
  "/root/repo/src/ml/chow.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/chow.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/chow.cpp.o.d"
  "/root/repo/src/ml/dfa.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/dfa.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/dfa.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/halfspace_tester.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/halfspace_tester.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/halfspace_tester.cpp.o.d"
  "/root/repo/src/ml/junta.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/junta.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/junta.cpp.o.d"
  "/root/repo/src/ml/linear_model.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/linear_model.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/linear_model.cpp.o.d"
  "/root/repo/src/ml/lmn.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/lmn.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/lmn.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/lstar.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/lstar.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/lstar.cpp.o.d"
  "/root/repo/src/ml/online.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/online.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/online.cpp.o.d"
  "/root/repo/src/ml/oracle.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/oracle.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/oracle.cpp.o.d"
  "/root/repo/src/ml/perceptron.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/perceptron.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/perceptron.cpp.o.d"
  "/root/repo/src/ml/xor_model.cpp" "src/ml/CMakeFiles/pitfalls_ml.dir/xor_model.cpp.o" "gcc" "src/ml/CMakeFiles/pitfalls_ml.dir/xor_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/boolfn/CMakeFiles/pitfalls_boolfn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pitfalls_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
