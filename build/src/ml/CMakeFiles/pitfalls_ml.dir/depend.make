# Empty dependencies file for pitfalls_ml.
# This may be replaced when dependencies are built.
