# Empty dependencies file for pitfalls_sat.
# This may be replaced when dependencies are built.
