file(REMOVE_RECURSE
  "libpitfalls_sat.a"
)
