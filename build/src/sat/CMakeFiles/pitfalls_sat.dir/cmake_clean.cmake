file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_sat.dir/dimacs.cpp.o"
  "CMakeFiles/pitfalls_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/pitfalls_sat.dir/encoder.cpp.o"
  "CMakeFiles/pitfalls_sat.dir/encoder.cpp.o.d"
  "CMakeFiles/pitfalls_sat.dir/solver.cpp.o"
  "CMakeFiles/pitfalls_sat.dir/solver.cpp.o.d"
  "libpitfalls_sat.a"
  "libpitfalls_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
