# Empty dependencies file for pitfalls_circuit.
# This may be replaced when dependencies are built.
