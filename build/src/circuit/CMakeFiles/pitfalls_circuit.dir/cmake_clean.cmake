file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_circuit.dir/analysis.cpp.o"
  "CMakeFiles/pitfalls_circuit.dir/analysis.cpp.o.d"
  "CMakeFiles/pitfalls_circuit.dir/bench_io.cpp.o"
  "CMakeFiles/pitfalls_circuit.dir/bench_io.cpp.o.d"
  "CMakeFiles/pitfalls_circuit.dir/fsm.cpp.o"
  "CMakeFiles/pitfalls_circuit.dir/fsm.cpp.o.d"
  "CMakeFiles/pitfalls_circuit.dir/fsm_synth.cpp.o"
  "CMakeFiles/pitfalls_circuit.dir/fsm_synth.cpp.o.d"
  "CMakeFiles/pitfalls_circuit.dir/generator.cpp.o"
  "CMakeFiles/pitfalls_circuit.dir/generator.cpp.o.d"
  "CMakeFiles/pitfalls_circuit.dir/netlist.cpp.o"
  "CMakeFiles/pitfalls_circuit.dir/netlist.cpp.o.d"
  "libpitfalls_circuit.a"
  "libpitfalls_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
