
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/analysis.cpp" "src/circuit/CMakeFiles/pitfalls_circuit.dir/analysis.cpp.o" "gcc" "src/circuit/CMakeFiles/pitfalls_circuit.dir/analysis.cpp.o.d"
  "/root/repo/src/circuit/bench_io.cpp" "src/circuit/CMakeFiles/pitfalls_circuit.dir/bench_io.cpp.o" "gcc" "src/circuit/CMakeFiles/pitfalls_circuit.dir/bench_io.cpp.o.d"
  "/root/repo/src/circuit/fsm.cpp" "src/circuit/CMakeFiles/pitfalls_circuit.dir/fsm.cpp.o" "gcc" "src/circuit/CMakeFiles/pitfalls_circuit.dir/fsm.cpp.o.d"
  "/root/repo/src/circuit/fsm_synth.cpp" "src/circuit/CMakeFiles/pitfalls_circuit.dir/fsm_synth.cpp.o" "gcc" "src/circuit/CMakeFiles/pitfalls_circuit.dir/fsm_synth.cpp.o.d"
  "/root/repo/src/circuit/generator.cpp" "src/circuit/CMakeFiles/pitfalls_circuit.dir/generator.cpp.o" "gcc" "src/circuit/CMakeFiles/pitfalls_circuit.dir/generator.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/pitfalls_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/pitfalls_circuit.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/boolfn/CMakeFiles/pitfalls_boolfn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pitfalls_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pitfalls_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
