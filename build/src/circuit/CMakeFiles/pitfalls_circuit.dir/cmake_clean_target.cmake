file(REMOVE_RECURSE
  "libpitfalls_circuit.a"
)
