file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_puf.dir/arbiter.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/arbiter.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/bistable_ring.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/bistable_ring.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/crp.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/crp.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/feed_forward.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/feed_forward.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/interpose.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/interpose.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/lockdown.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/lockdown.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/metrics.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/metrics.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/puf.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/puf.cpp.o.d"
  "CMakeFiles/pitfalls_puf.dir/xor_arbiter.cpp.o"
  "CMakeFiles/pitfalls_puf.dir/xor_arbiter.cpp.o.d"
  "libpitfalls_puf.a"
  "libpitfalls_puf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_puf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
