
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/puf/arbiter.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/arbiter.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/arbiter.cpp.o.d"
  "/root/repo/src/puf/bistable_ring.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/bistable_ring.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/bistable_ring.cpp.o.d"
  "/root/repo/src/puf/crp.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/crp.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/crp.cpp.o.d"
  "/root/repo/src/puf/feed_forward.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/feed_forward.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/feed_forward.cpp.o.d"
  "/root/repo/src/puf/interpose.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/interpose.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/interpose.cpp.o.d"
  "/root/repo/src/puf/lockdown.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/lockdown.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/lockdown.cpp.o.d"
  "/root/repo/src/puf/metrics.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/metrics.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/metrics.cpp.o.d"
  "/root/repo/src/puf/puf.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/puf.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/puf.cpp.o.d"
  "/root/repo/src/puf/xor_arbiter.cpp" "src/puf/CMakeFiles/pitfalls_puf.dir/xor_arbiter.cpp.o" "gcc" "src/puf/CMakeFiles/pitfalls_puf.dir/xor_arbiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/boolfn/CMakeFiles/pitfalls_boolfn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pitfalls_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
