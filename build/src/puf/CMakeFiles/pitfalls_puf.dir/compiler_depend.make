# Empty compiler generated dependencies file for pitfalls_puf.
# This may be replaced when dependencies are built.
