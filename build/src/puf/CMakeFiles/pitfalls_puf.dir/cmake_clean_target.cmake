file(REMOVE_RECURSE
  "libpitfalls_puf.a"
)
