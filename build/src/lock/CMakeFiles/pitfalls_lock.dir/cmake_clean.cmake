file(REMOVE_RECURSE
  "CMakeFiles/pitfalls_lock.dir/antisat.cpp.o"
  "CMakeFiles/pitfalls_lock.dir/antisat.cpp.o.d"
  "CMakeFiles/pitfalls_lock.dir/combinational.cpp.o"
  "CMakeFiles/pitfalls_lock.dir/combinational.cpp.o.d"
  "CMakeFiles/pitfalls_lock.dir/fsm_obfuscation.cpp.o"
  "CMakeFiles/pitfalls_lock.dir/fsm_obfuscation.cpp.o.d"
  "CMakeFiles/pitfalls_lock.dir/sarlock.cpp.o"
  "CMakeFiles/pitfalls_lock.dir/sarlock.cpp.o.d"
  "libpitfalls_lock.a"
  "libpitfalls_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfalls_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
