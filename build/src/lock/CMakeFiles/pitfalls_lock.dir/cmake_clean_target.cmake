file(REMOVE_RECURSE
  "libpitfalls_lock.a"
)
