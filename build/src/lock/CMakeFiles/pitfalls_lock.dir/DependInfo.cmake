
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lock/antisat.cpp" "src/lock/CMakeFiles/pitfalls_lock.dir/antisat.cpp.o" "gcc" "src/lock/CMakeFiles/pitfalls_lock.dir/antisat.cpp.o.d"
  "/root/repo/src/lock/combinational.cpp" "src/lock/CMakeFiles/pitfalls_lock.dir/combinational.cpp.o" "gcc" "src/lock/CMakeFiles/pitfalls_lock.dir/combinational.cpp.o.d"
  "/root/repo/src/lock/fsm_obfuscation.cpp" "src/lock/CMakeFiles/pitfalls_lock.dir/fsm_obfuscation.cpp.o" "gcc" "src/lock/CMakeFiles/pitfalls_lock.dir/fsm_obfuscation.cpp.o.d"
  "/root/repo/src/lock/sarlock.cpp" "src/lock/CMakeFiles/pitfalls_lock.dir/sarlock.cpp.o" "gcc" "src/lock/CMakeFiles/pitfalls_lock.dir/sarlock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/pitfalls_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pitfalls_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pitfalls_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/boolfn/CMakeFiles/pitfalls_boolfn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
