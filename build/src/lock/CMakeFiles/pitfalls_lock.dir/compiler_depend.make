# Empty compiler generated dependencies file for pitfalls_lock.
# This may be replaced when dependencies are built.
