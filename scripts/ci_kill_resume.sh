#!/bin/sh
# Kill/resume determinism gate.
#
# Proves the crash-safety contract end to end on a real bench binary:
#
#   1. run bench_noise_tolerance --smoke uninterrupted  -> reference JSON
#   2. run it again with --checkpoint (cadence 1, so the journal flushes on
#      every recorded oracle event) and SIGKILL it mid-flight
#   3. run it a third time with --resume pointing at the survivor snapshot
#   4. require the resumed run's deterministic payload (tables + notes) to
#      match the reference exactly, via compare_bench.py --identical
#
# bench_noise_tolerance is the learner bench with timing-free tables, so
# "identical" really means identical — no tolerance, no flaky columns. The
# whole cycle repeats at each thread count in PITFALLS_KILL_RESUME_THREADS
# (default "1 4"): resume determinism must not depend on parallelism.
#
# Usage: ci_kill_resume.sh <bench_bin_dir> [work_dir]
set -u

bin_dir=${1:?usage: ci_kill_resume.sh <bench_bin_dir> [work_dir]}
work=${2:-kill_resume_work}
# The runs below cd into per-cycle work directories, so both the bench and
# the comparator need absolute paths.
bench=$(cd "$bin_dir" && pwd)/bench_noise_tolerance
script_dir=$(cd "$(dirname "$0")" && pwd)
threads_list=${PITFALLS_KILL_RESUME_THREADS:-"1 4"}

if [ ! -x "$bench" ]; then
  echo "ci_kill_resume: missing bench binary $bench" >&2
  exit 2
fi

rm -rf "$work"
mkdir -p "$work"

status=0
for threads in $threads_list; do
  dir="$work/t$threads"
  mkdir -p "$dir/ref" "$dir/crash"
  echo "== kill/resume cycle at PITFALLS_THREADS=$threads =="

  # --- 1. uninterrupted reference -------------------------------------
  if ! (cd "$dir/ref" && PITFALLS_THREADS=$threads "$bench" --smoke --json \
        > output.txt 2>&1); then
    echo "ci_kill_resume: reference run failed; output follows" >&2
    cat "$dir/ref/output.txt" >&2
    exit 1
  fi
  ref_json="$dir/ref/BENCH_noise_tolerance.json"

  # --- 2. checkpointed run, SIGKILLed mid-flight ----------------------
  # Cadence 1 makes the run fsync-bound (seconds instead of ~100ms), so a
  # kill after a short delay lands mid-run with near certainty. We still
  # verify it did: a mid-run death leaves a snapshot but no BENCH json.
  # Too-early kills (no snapshot yet) and too-late kills (bench finished)
  # retry with an adjusted delay.
  caught=0
  attempt=0
  for delay in 1.0 0.5 1.5 0.2 2.0 0.8 1.2 0.4 1.8 0.6; do
    attempt=$((attempt + 1))
    rm -f "$dir/crash/snap.bin" "$dir/crash/BENCH_noise_tolerance.json"
    (cd "$dir/crash" && exec env PITFALLS_THREADS=$threads "$bench" \
        --smoke --json --checkpoint=snap.bin --checkpoint-every=1 \
        > output.txt 2>&1) &
    pid=$!
    sleep "$delay"
    kill -9 "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
    if [ -f "$dir/crash/BENCH_noise_tolerance.json" ]; then
      echo "  attempt $attempt: bench finished before the kill" \
           "(delay ${delay}s); retrying"
    elif [ ! -s "$dir/crash/snap.bin" ]; then
      echo "  attempt $attempt: killed before the first journal flush" \
           "(delay ${delay}s); retrying"
    else
      caught=1
      echo "  SIGKILLed mid-run after ${delay}s;" \
           "snapshot: $(wc -c < "$dir/crash/snap.bin") bytes"
      break
    fi
  done
  if [ "$caught" != 1 ]; then
    echo "ci_kill_resume: could not catch the bench mid-run after" \
         "$attempt attempts" >&2
    exit 1
  fi

  # --- 3. resume from the survivor snapshot ---------------------------
  if ! (cd "$dir/crash" && PITFALLS_THREADS=$threads "$bench" --smoke \
        --json --resume=snap.bin --checkpoint-every=1 \
        > resume_output.txt 2>&1); then
    echo "ci_kill_resume: resumed run failed; output follows" >&2
    cat "$dir/crash/resume_output.txt" >&2
    exit 1
  fi
  resumed_json="$dir/crash/BENCH_noise_tolerance.json"

  # --- 4. deterministic payload must match exactly --------------------
  if python3 "$script_dir/compare_bench.py" --identical \
      "$ref_json" "$resumed_json"; then
    echo "  threads=$threads: resumed run is identical to uninterrupted"
  else
    echo "ci_kill_resume: resumed run diverged at threads=$threads" >&2
    status=1
  fi
done

if [ "$status" = 0 ]; then
  echo "ci_kill_resume: all cycles byte-identical"
fi
exit $status
