#!/bin/sh
# Build pitfalls-lint and run it over the determinism-critical trees (src/,
# bench/, tools/ and tests/). Exits 0 only when there are zero unsuppressed
# violations, stale suppression tags included — this is the static half of
# the bit-for-bit reproducibility contract (DESIGN.md §10/§15);
# check_tsan.sh / check_ubsan.sh are the dynamic half.
#
# Usage: run_lint.sh [--sarif[=PATH]] [<build-dir>] [<lint roots>...]
#        (default build dir: build; default roots: src bench tools tests)
#
# --sarif writes a SARIF 2.1.0 report (default lint.sarif in the build dir)
# with repo-relative paths, suitable for code-scanning upload; the text
# report still goes to the terminal either way.
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

sarif_path=""
case ${1:-} in
  --sarif)
    sarif_path=DEFAULT
    shift
    ;;
  --sarif=*)
    sarif_path=${1#--sarif=}
    shift
    ;;
esac

build_dir=${1:-"$src_dir/build"}
[ $# -gt 0 ] && shift
[ "$sarif_path" = DEFAULT ] && sarif_path="$build_dir/lint.sarif"

echo "== configure + build pitfalls-lint ($build_dir) =="
cmake -B "$build_dir" -S "$src_dir" >/dev/null
cmake --build "$build_dir" -j --target pitfalls-lint >/dev/null

if [ $# -gt 0 ]; then
  roots=$*
else
  roots="src bench tools tests"
fi

echo "== pitfalls-lint $roots =="
# Run from the repo root so findings — and SARIF artifact URIs — come out
# repo-relative, which is what code-scanning upload expects.
# shellcheck disable=SC2086  # roots is a deliberate word-split list
if [ -n "$sarif_path" ]; then
  (cd "$src_dir" && "$build_dir/tools/lint/pitfalls-lint" \
      --sarif="$sarif_path" $roots)
else
  (cd "$src_dir" && "$build_dir/tools/lint/pitfalls-lint" $roots)
fi
