#!/bin/sh
# Build pitfalls-lint and run it over the determinism-critical trees (src/
# and bench/). Exits 0 only when there are zero unsuppressed violations —
# this is the static half of the bit-for-bit reproducibility contract
# (DESIGN.md §10); check_tsan.sh / check_ubsan.sh are the dynamic half.
#
# Usage: run_lint.sh [<build-dir>] [<extra lint roots>...]
#        (default build dir: build; default roots: src bench)
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build"}
[ $# -gt 0 ] && shift

echo "== configure + build pitfalls-lint ($build_dir) =="
cmake -B "$build_dir" -S "$src_dir" >/dev/null
cmake --build "$build_dir" -j --target pitfalls-lint >/dev/null

if [ $# -gt 0 ]; then
  roots=$*
else
  roots="$src_dir/src $src_dir/bench"
fi

echo "== pitfalls-lint $roots =="
# shellcheck disable=SC2086  # roots is a deliberate word-split list
"$build_dir/tools/lint/pitfalls-lint" $roots
