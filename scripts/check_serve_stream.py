#!/usr/bin/env python3
"""Schema validation for a pitfalls-served wire stream (DESIGN.md $16).

Reads one line-delimited JSON stream captured from the daemon and checks
the protocol invariants the byte-stability and crash-resume gates rely on:

  * every line parses as a standalone JSON object with a known "type"
  * the first line is the hello (schema 1); the last line is drained, and
    nothing follows it
  * an ack precedes every obs/outcome/resumed line that names the same id
  * outcome ids are unique; resumed lines only name journaled outcomes
  * job-scope obs lines carry the accounting fields (queries / replayed /
    flips / drops / spans); wave-scope obs lines carry counter deltas
    restricted to the deterministic serve.jobs. / serve.session. /
    serve.wire. families (never serve.fleet. -- cache hits depend on
    worker interleaving)
  * error lines fail the check unless --allow-errors admits exactly N

Usage:
  check_serve_stream.py STREAM [--expect-outcomes N] [--expect-resumed N]
                        [--allow-errors N] [--terminated]
"""

import argparse
import json
import re
import sys

KNOWN_TYPES = {"hello", "ack", "obs", "outcome", "error", "resumed", "drained"}
OUTCOME_KINDS = {"auth", "attack", "query"}
WAVE_PREFIXES = ("serve.jobs.", "serve.session.", "serve.wire.")
DIGEST = re.compile(r"^[0-9a-f]{8}$")


def fail(lineno, message):
    print(f"check_serve_stream: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def require(cond, lineno, message):
    if not cond:
        fail(lineno, message)


def check_u64(doc, field, lineno):
    value = doc.get(field)
    require(isinstance(value, int) and value >= 0, lineno,
            f'"{field}" must be a non-negative integer, got {value!r}')
    return value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stream", help="captured daemon output, one JSON/line")
    parser.add_argument("--expect-outcomes", type=int, default=None,
                        help="require exactly N outcome lines")
    parser.add_argument("--expect-resumed", type=int, default=None,
                        help="require exactly N resumed lines")
    parser.add_argument("--allow-errors", type=int, default=0,
                        help="admit exactly N error lines (default 0)")
    parser.add_argument("--terminated", action="store_true",
                        help="the drained line must carry terminated:true")
    args = parser.parse_args()

    with open(args.stream, "r", encoding="utf-8") as handle:
        raw_lines = [line.rstrip("\n") for line in handle]
    raw_lines = [line for line in raw_lines if line]
    if not raw_lines:
        fail(0, "stream is empty")

    acked = set()
    outcomes = set()
    resumed = set()
    errors = 0
    drained = None

    for lineno, raw in enumerate(raw_lines, start=1):
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as err:
            fail(lineno, f"not valid JSON ({err}): {raw[:80]}")
        require(isinstance(doc, dict), lineno, "line is not a JSON object")
        kind = doc.get("type")
        require(kind in KNOWN_TYPES, lineno, f"unknown type {kind!r}")
        require(drained is None, lineno, "traffic after the drained line")

        if lineno == 1:
            require(kind == "hello", lineno, "stream must start with hello")
        if kind == "hello":
            require(lineno == 1, lineno, "hello after the first line")
            require(doc.get("schema") == 1, lineno, "hello schema must be 1")
            fleet = doc.get("fleet")
            require(isinstance(fleet, dict), lineno, "hello needs a fleet object")
            check_u64(fleet, "tokens", lineno)
        elif kind == "ack":
            job = doc.get("id")
            require(isinstance(job, str) and job, lineno, "ack needs a job id")
            require(job not in acked, lineno, f"duplicate ack for {job!r}")
            acked.add(job)
        elif kind == "obs" and doc.get("scope") == "job":
            job = doc.get("id")
            require(job in acked, lineno, f"obs for unacked job {job!r}")
            for field in ("queries", "replayed", "flips", "drops"):
                check_u64(doc, field, lineno)
            require(isinstance(doc.get("spans"), list), lineno,
                    "job obs needs a spans array")
        elif kind == "obs":
            require(doc.get("scope") == "wave", lineno,
                    f'obs scope must be job or wave, got {doc.get("scope")!r}')
            counters = doc.get("counters")
            require(isinstance(counters, dict) and counters, lineno,
                    "wave obs needs a non-empty counters object")
            for name, delta in counters.items():
                require(name.startswith(WAVE_PREFIXES), lineno,
                        f"non-deterministic counter {name!r} on the wire")
                require(isinstance(delta, int) and delta > 0, lineno,
                        f"counter delta for {name!r} must be a positive int")
        elif kind == "outcome":
            job = doc.get("id")
            require(job in acked, lineno, f"outcome for unacked job {job!r}")
            require(job not in outcomes, lineno,
                    f"duplicate outcome for {job!r}")
            outcomes.add(job)
            require(doc.get("kind") in OUTCOME_KINDS, lineno,
                    f'bad outcome kind {doc.get("kind")!r}')
            digest = doc.get("digest")
            require(isinstance(digest, str) and DIGEST.match(digest), lineno,
                    f"bad digest {digest!r}")
        elif kind == "resumed":
            job = doc.get("id")
            require(job in acked, lineno, f"resumed for unacked job {job!r}")
            require(job not in resumed, lineno,
                    f"duplicate resumed for {job!r}")
            resumed.add(job)
        elif kind == "error":
            job = doc.get("id")
            require(job is None or isinstance(job, str), lineno,
                    "error id must be a string or null")
            require(isinstance(doc.get("message"), str), lineno,
                    "error needs a message")
            errors += 1
        elif kind == "drained":
            check_u64(doc, "jobs", lineno)
            if args.terminated:
                require(doc.get("terminated") is True, lineno,
                        "drained line must carry terminated:true")
            else:
                require(doc.get("terminated") is not True, lineno,
                        "unexpected terminated drain")
            drained = lineno

    require(drained == len(raw_lines), len(raw_lines),
            "stream must end with a drained line")
    missing = resumed - outcomes
    require(not missing, len(raw_lines),
            f"resumed jobs without outcome lines: {sorted(missing)}")
    if args.expect_outcomes is not None and len(outcomes) != args.expect_outcomes:
        fail(len(raw_lines), f"expected {args.expect_outcomes} outcomes, "
                             f"got {len(outcomes)}")
    if args.expect_resumed is not None and len(resumed) != args.expect_resumed:
        fail(len(raw_lines), f"expected {args.expect_resumed} resumed lines, "
                             f"got {len(resumed)}")
    if errors != args.allow_errors:
        fail(len(raw_lines), f"expected {args.allow_errors} error lines, "
                             f"got {errors}")

    print(f"check_serve_stream: OK ({len(raw_lines)} lines, "
          f"{len(outcomes)} outcomes, {len(resumed)} resumed, "
          f"{errors} errors)")


if __name__ == "__main__":
    main()
