#!/bin/sh
# Run clang-tidy (checks from .clang-tidy: bugprone-*, performance-*,
# concurrency-*) over src/, bench/ and tools/ using the compile database the
# CMake configure step exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the
# top-level CMakeLists.txt).
#
# Usage: run_clang_tidy.sh [<build-dir>]      (default: build)
#
# When clang-tidy is not installed (the local toolchain is gcc-only) the
# script prints a notice and exits 0 so developer machines are not blocked;
# CI installs clang-tidy and gets the full gate.
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build"}

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy not found; skipping (install clang-tidy to run this gate)"
  exit 0
fi

echo "== configure ($build_dir, exporting compile_commands.json) =="
cmake -B "$build_dir" -S "$src_dir" >/dev/null
[ -f "$build_dir/compile_commands.json" ] || {
  echo "run_clang_tidy: $build_dir/compile_commands.json missing" >&2
  exit 2
}

files=$(find "$src_dir/src" "$src_dir/bench" "$src_dir/tools" \
  -name '*.cpp' -o -name '*.cc' | sort)

echo "== $tidy ($(echo "$files" | wc -l) files) =="
status=0
for f in $files; do
  "$tidy" -p "$build_dir" --quiet "$f" || status=1
done

if [ "$status" -eq 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above must be fixed or suppressed" >&2
fi
exit "$status"
