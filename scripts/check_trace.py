#!/usr/bin/env python3
"""Validate TRACE_*.json files as loadable Chrome Trace Event JSON.

Checks what chrome://tracing / ui.perfetto.dev actually need: the file
parses with json.load, has an object root with a "traceEvents" list, and
every event carries name/ph/pid (plus ts/tid for non-metadata phases, dur
for complete events, a numeric args.value for counter events). Stdlib-only.

    python3 scripts/check_trace.py TRACE_sat_attack.json [more.json ...]

Exit status: 0 = all files valid, 1 = at least one invalid, 2 = usage.
"""

import json
import sys

KNOWN_PHASES = {"M", "X", "i", "C"}


def check(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot load: {exc}"]

    errors = []
    if not isinstance(doc, dict):
        return ["root is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    if not events:
        errors.append("traceEvents is empty")

    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        if ph == "M":
            continue
        for key in ("ts", "tid"):
            if not isinstance(event.get(key), (int, float)):
                errors.append(f"{where}: missing numeric {key!r}")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            errors.append(f"{where}: complete event missing numeric 'dur'")
        if ph == "C":
            args = event.get("args")
            if not (isinstance(args, dict)
                    and isinstance(args.get("value"), (int, float))):
                errors.append(f"{where}: counter missing numeric args.value")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in sys.argv[1:]:
        errors = check(path)
        if errors:
            status = 1
            for error in errors[:20]:
                print(f"check_trace: {path}: {error}", file=sys.stderr)
        else:
            print(f"check_trace: {path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main())
