#!/bin/sh
# Build the whole tree under UndefinedBehaviorSanitizer and run the full
# ctest suite. The build uses -fno-sanitize-recover=all, so ANY UB report
# (signed overflow, bad shifts, misaligned loads, null deref, ...) aborts
# the offending test — undefined behaviour cannot pass silently.
#
# Usage: check_ubsan.sh [<build-dir>]      (default: build-ubsan)
#
# Uses a dedicated build tree configured with -DPITFALLS_SANITIZE=undefined;
# the regular `build/` tree is left untouched.
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build-ubsan"}

echo "== configure ($build_dir, -DPITFALLS_SANITIZE=undefined) =="
cmake -B "$build_dir" -S "$src_dir" -DPITFALLS_SANITIZE=undefined

echo "== build =="
cmake --build "$build_dir" -j

export UBSAN_OPTIONS="print_stacktrace=1${UBSAN_OPTIONS:+:$UBSAN_OPTIONS}"

echo "== ctest (full suite, UBSan) =="
if ctest --test-dir "$build_dir" --output-on-failure; then
  echo "check_ubsan: full suite clean under UndefinedBehaviorSanitizer"
else
  echo "check_ubsan: FAILED — undefined behaviour or test failure" >&2
  exit 1
fi
