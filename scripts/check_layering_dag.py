#!/usr/bin/env python3
"""Gate: the module DAG documented in DESIGN.md section 15 must equal the
DAG the linter enforces.

DESIGN.md's fenced block starting with "modules:" is normative prose;
`pitfalls-lint --print-dag` is the implementation. This script diffs the
two, so neither can drift without failing CI.

Usage: check_layering_dag.py <pitfalls-lint-binary> <DESIGN.md>
"""
import subprocess
import sys


def design_dag_block(design_path):
    """Extract the fenced code block whose first line is 'modules:'."""
    lines = open(design_path, encoding="utf-8").read().splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() == "```" and i + 1 < len(lines) and \
                lines[i + 1].strip() == "modules:":
            block = []
            i += 1
            while i < len(lines) and lines[i].strip() != "```":
                block.append(lines[i])
                i += 1
            return "\n".join(block).rstrip() + "\n"
        i += 1
    return None


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    lint_bin, design_path = sys.argv[1], sys.argv[2]

    documented = design_dag_block(design_path)
    if documented is None:
        print(f"check_layering_dag: no fenced 'modules:' block in "
              f"{design_path}", file=sys.stderr)
        return 1

    proc = subprocess.run([lint_bin, "--print-dag"], capture_output=True,
                          text=True)
    if proc.returncode != 0:
        print(f"check_layering_dag: {lint_bin} --print-dag exited "
              f"{proc.returncode}: {proc.stderr}", file=sys.stderr)
        return 1
    enforced = proc.stdout.rstrip() + "\n"

    if documented == enforced:
        print("check_layering_dag: DESIGN.md DAG matches the enforced DAG")
        return 0

    print("check_layering_dag: DESIGN.md DAG differs from the DAG "
          "pitfalls-lint enforces", file=sys.stderr)
    doc_lines = documented.splitlines()
    enf_lines = enforced.splitlines()
    for k in range(max(len(doc_lines), len(enf_lines))):
        doc = doc_lines[k] if k < len(doc_lines) else "<missing>"
        enf = enf_lines[k] if k < len(enf_lines) else "<missing>"
        if doc != enf:
            print(f"  line {k + 1}: documented {doc!r} vs enforced {enf!r}",
                  file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
