#!/bin/sh
# Serve-plane smoke gate (DESIGN.md $16).
#
# Proves the pitfalls-served contract end to end on the real daemon binary:
#
#   1. a mixed batch (12 concurrent auth/attack/query jobs in one wave, two
#      more after it) over a 1M-token fleet, streamed output schema-checked
#      by check_serve_stream.py
#   2. the full output stream is byte-identical at PITFALLS_THREADS 1/2/4/8
#   3. kill -9 mid-wave (deterministic stand-in: the daemon hard-exits 137
#      after its 3rd journaled job) and a --resume run that must serve the
#      journaled outcomes back -- the complete outcome stream has to match
#      the uninterrupted reference byte for byte
#   4. budget-refill continuation: a lockdown-tripped attack session is
#      continued with a larger query budget, and the continuation outcome
#      must be byte-identical to an uninterrupted run with that budget
#
# Usage: serve_smoke.sh <build_dir> [work_dir]
set -u

build=${1:?usage: serve_smoke.sh <build_dir> [work_dir]}
work=${2:-serve_smoke_work}
served=$(cd "$build" && pwd)/tools/served/pitfalls-served
script_dir=$(cd "$(dirname "$0")" && pwd)
check="python3 $script_dir/check_serve_stream.py"

if [ ! -x "$served" ]; then
  echo "serve_smoke: missing daemon binary $served" >&2
  exit 2
fi

rm -rf "$work"
mkdir -p "$work"

# 64-bit challenge blocks for the query jobs (fleet default: 64 stages).
C1=0110100101101001011010010110100101101001011010010110100101101001
C2=1101001011010010110100101101001011010010110100101101001011010010
C3=0010110100101101001011010010110100101101001011010010110100101101

cat > "$work/jobs.txt" <<EOF
{"type":"job","id":"a1","kind":"auth","token":999999,"seed":7,"rounds":16}
{"type":"job","id":"a2","kind":"auth","token":31337,"seed":9,"rounds":8}
{"type":"job","id":"a3","kind":"auth","token":0,"seed":5,"rounds":12}
{"type":"job","id":"x1","kind":"attack","token":12,"seed":3,"budget":60,"eval":100,"policy":{"flip_rate":0.05,"drop_rate":0.02}}
{"type":"job","id":"x2","kind":"attack","token":77,"seed":4,"budget":50,"eval":50}
{"type":"job","id":"x3","kind":"attack","token":500000,"seed":6,"budget":40,"eval":60,"policy":{"burst_rate":0.1,"burst_length":5}}
{"type":"job","id":"x4","kind":"attack","token":999998,"seed":8,"budget":60,"eval":80,"policy":{"flip_rate":0.02}}
{"type":"job","id":"q1","kind":"query","token":5,"seed":1,"challenges":["$C1"]}
{"type":"job","id":"q2","kind":"query","token":123456,"seed":1,"challenges":["$C2","$C3"]}
{"type":"job","id":"q3","kind":"query","token":42,"seed":1,"challenges":["$C1","$C2","$C3"]}
{"type":"job","id":"a4","kind":"auth","token":250000,"seed":10,"rounds":10}
{"type":"job","id":"x5","kind":"attack","token":7,"seed":12,"budget":30,"eval":40}
{"type":"run"}
{"type":"job","id":"a5","kind":"auth","token":888888,"seed":13,"rounds":6}
{"type":"job","id":"q4","kind":"query","token":999997,"seed":1,"challenges":["$C3"]}
{"type":"drain"}
EOF

status=0

# --- 1+2. byte-identical streams at every thread count ------------------
echo "== mixed batch over 1M tokens, threads 1/2/4/8 =="
for threads in 1 2 4 8; do
  if ! PITFALLS_THREADS=$threads "$served" --tokens 1000000 --seed 42 \
      < "$work/jobs.txt" > "$work/t$threads.out"; then
    echo "serve_smoke: daemon failed at PITFALLS_THREADS=$threads" >&2
    exit 1
  fi
done
if ! $check "$work/t1.out" --expect-outcomes 14; then
  echo "serve_smoke: reference stream failed schema validation" >&2
  exit 1
fi
for threads in 2 4 8; do
  if cmp -s "$work/t1.out" "$work/t$threads.out"; then
    echo "  threads=$threads: stream byte-identical to threads=1"
  else
    echo "serve_smoke: stream diverged at PITFALLS_THREADS=$threads" >&2
    diff "$work/t1.out" "$work/t$threads.out" | head -10 >&2
    status=1
  fi
done

# --- 3. kill -9 mid-wave, then resume -----------------------------------
echo "== crash after 3 journaled jobs, then --resume =="
PITFALLS_THREADS=2 PITFALLS_SERVE_KILL_AFTER_JOBS=3 \
  "$served" --tokens 1000000 --seed 42 --checkpoint "$work/ck.snap" \
  < "$work/jobs.txt" > "$work/crash.out"
crash_status=$?
if [ "$crash_status" != 137 ]; then
  echo "serve_smoke: crash leg exited $crash_status, expected 137" >&2
  exit 1
fi
if [ ! -s "$work/ck.snap" ]; then
  echo "serve_smoke: crash left no checkpoint journal" >&2
  exit 1
fi
if ! PITFALLS_THREADS=3 "$served" --tokens 1000000 --seed 42 \
    --checkpoint "$work/ck.snap" --resume \
    < "$work/jobs.txt" > "$work/resume.out"; then
  echo "serve_smoke: resume run failed" >&2
  exit 1
fi
if ! $check "$work/resume.out" --expect-outcomes 14 --expect-resumed 3; then
  echo "serve_smoke: resumed stream failed schema validation" >&2
  exit 1
fi
grep '"type":"outcome"' "$work/t1.out" > "$work/ref_outcomes.txt"
grep '"type":"outcome"' "$work/resume.out" > "$work/resume_outcomes.txt"
if cmp -s "$work/ref_outcomes.txt" "$work/resume_outcomes.txt"; then
  echo "  resumed outcomes byte-identical to the uninterrupted reference"
else
  echo "serve_smoke: resumed outcomes diverged from the reference" >&2
  diff "$work/ref_outcomes.txt" "$work/resume_outcomes.txt" | head -10 >&2
  status=1
fi

# --- 4. budget-refill continuation --------------------------------------
echo "== lockdown session continued with a refilled budget =="
printf '%s\n%s\n' \
  '{"type":"job","id":"L1a","kind":"attack","token":500000,"seed":11,"budget":120,"eval":80,"policy":{"flip_rate":0.03,"query_budget":60},"session":"L1"}' \
  '{"type":"drain"}' > "$work/lockdown.txt"
printf '%s\n%s\n' \
  '{"type":"job","id":"L1b","kind":"attack","token":500000,"seed":11,"budget":120,"eval":80,"policy":{"flip_rate":0.03,"query_budget":300},"session":"L1"}' \
  '{"type":"drain"}' > "$work/continue.txt"
printf '%s\n%s\n' \
  '{"type":"job","id":"L1b","kind":"attack","token":500000,"seed":11,"budget":120,"eval":80,"policy":{"flip_rate":0.03,"query_budget":300}}' \
  '{"type":"drain"}' > "$work/fresh.txt"

if ! "$served" --tokens 1000000 --seed 42 --checkpoint "$work/ck2.snap" \
    < "$work/lockdown.txt" > "$work/lockdown.out"; then
  echo "serve_smoke: lockdown leg failed" >&2
  exit 1
fi
if ! grep -q '"status":"lockdown"' "$work/lockdown.out"; then
  echo "serve_smoke: lockdown leg never tripped the query budget" >&2
  exit 1
fi
if ! "$served" --tokens 1000000 --seed 42 --checkpoint "$work/ck2.snap" \
    --resume < "$work/continue.txt" > "$work/continue.out"; then
  echo "serve_smoke: continuation leg failed" >&2
  exit 1
fi
if ! "$served" --tokens 1000000 --seed 42 \
    < "$work/fresh.txt" > "$work/fresh.out"; then
  echo "serve_smoke: fresh-reference leg failed" >&2
  exit 1
fi
grep '"type":"outcome"' "$work/continue.out" > "$work/continue_outcome.txt"
grep '"type":"outcome"' "$work/fresh.out" > "$work/fresh_outcome.txt"
if ! grep -q '"status":"modeled"' "$work/continue_outcome.txt"; then
  echo "serve_smoke: continuation did not complete the refilled attack" >&2
  status=1
fi
if cmp -s "$work/continue_outcome.txt" "$work/fresh_outcome.txt"; then
  echo "  continuation outcome byte-identical to the uninterrupted run"
else
  echo "serve_smoke: continuation outcome diverged from fresh run" >&2
  diff "$work/continue_outcome.txt" "$work/fresh_outcome.txt" >&2
  status=1
fi

if [ "$status" = 0 ]; then
  echo "serve_smoke: all legs passed"
fi
exit $status
