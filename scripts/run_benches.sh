#!/bin/sh
# Smoke-run every BenchReporter-wired bench with tiny parameters in --json
# mode and validate each emitted BENCH_<name>.json against schema v1.
#
# Usage: run_benches.sh <bench-bin-dir> <check_bench_json-path> [<out-dir>]
#
# Exits non-zero if any bench fails, emits no JSON, or emits JSON that the
# validator rejects. Used by the `bench_smoke` ctest target; also runnable
# by hand, e.g.:
#   sh scripts/run_benches.sh build/bench build/bench/check_bench_json /tmp/bj
set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench-bin-dir> <check_bench_json-path> [<out-dir>]" >&2
  exit 2
fi

bin_dir=$1
checker=$2
out_dir=${3:-bench_json}

mkdir -p "$out_dir"

BENCHES="table1_bounds table2_chow table3_halfspace lmn_xorpuf \
mq_learnpoly lstar_fsm online_to_pac feasibility micro_kernels"

status=0
json_files=""
for name in $BENCHES; do
  bench="$bin_dir/bench_$name"
  json="$out_dir/BENCH_$name.json"
  if [ ! -x "$bench" ]; then
    echo "run_benches: missing bench binary $bench" >&2
    status=1
    continue
  fi
  echo "== bench_$name --smoke --json $json =="
  if ! "$bench" --smoke --json "$json" > "$out_dir/bench_$name.out" 2>&1; then
    echo "run_benches: bench_$name exited non-zero; tail of output:" >&2
    tail -n 20 "$out_dir/bench_$name.out" >&2
    status=1
    continue
  fi
  if [ ! -s "$json" ]; then
    echo "run_benches: bench_$name produced no JSON at $json" >&2
    status=1
    continue
  fi
  json_files="$json_files $json"
done

if [ -n "$json_files" ]; then
  # shellcheck disable=SC2086 — word-splitting the file list is intended.
  if ! "$checker" $json_files; then
    status=1
  fi
fi

if [ "$status" -eq 0 ]; then
  echo "run_benches: all benches emitted schema-valid JSON in $out_dir"
fi
exit "$status"
