#!/bin/sh
# Smoke-run every BenchReporter-wired bench with tiny parameters in --json
# mode and validate each emitted BENCH_<name>.json against schema v1.
#
# Usage: run_benches.sh <bench-bin-dir> <check_bench_json-path> [<out-dir>]
#
# Exits non-zero if any bench fails, emits no JSON, or emits JSON that the
# validator rejects. Used by the `bench_smoke` ctest target; also runnable
# by hand, e.g.:
#   sh scripts/run_benches.sh build/bench build/bench/check_bench_json /tmp/bj
#
# Baseline comparison: when PITFALLS_BENCH_BASELINE names a directory
# holding BENCH_<name>.json files from an earlier run, every matching bench
# is additionally diffed with scripts/compare_bench.py and a p50 regression
# beyond PITFALLS_BENCH_THRESHOLD (default 0.5 — smoke runs are noisy)
# fails the script. Absent baseline files and a missing python3 are skipped
# with a notice, never an error.
set -eu

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench-bin-dir> <check_bench_json-path> [<out-dir>]" >&2
  exit 2
fi

bin_dir=$1
checker=$2
out_dir=${3:-bench_json}

mkdir -p "$out_dir"

BENCHES="table1_bounds table2_chow table3_halfspace lmn_xorpuf \
mq_learnpoly lstar_fsm online_to_pac feasibility micro_kernels \
noise_tolerance pitfall_audit learning_curves sat_attack sarlock appsat \
ablation_br ablation_learners lockdown"

script_dir=$(dirname "$0")
baseline_dir=${PITFALLS_BENCH_BASELINE:-}
threshold=${PITFALLS_BENCH_THRESHOLD:-0.5}

status=0
json_files=""
for name in $BENCHES; do
  bench="$bin_dir/bench_$name"
  json="$out_dir/BENCH_$name.json"
  if [ ! -x "$bench" ]; then
    echo "run_benches: missing bench binary $bench" >&2
    status=1
    continue
  fi
  echo "== bench_$name --smoke --json $json =="
  if ! "$bench" --smoke --json "$json" > "$out_dir/bench_$name.out" 2>&1; then
    echo "run_benches: bench_$name exited non-zero; tail of output:" >&2
    tail -n 20 "$out_dir/bench_$name.out" >&2
    status=1
    continue
  fi
  if [ ! -s "$json" ]; then
    echo "run_benches: bench_$name produced no JSON at $json" >&2
    status=1
    continue
  fi
  json_files="$json_files $json"

  # Satellite regression gate: diff against the baseline run if one exists.
  if [ -n "$baseline_dir" ]; then
    baseline="$baseline_dir/BENCH_$name.json"
    if [ ! -f "$baseline" ]; then
      echo "run_benches: no baseline for bench_$name (skipping compare)"
    elif ! command -v python3 > /dev/null 2>&1; then
      echo "run_benches: python3 unavailable, skipping baseline compare"
    elif ! python3 "$script_dir/compare_bench.py" "$baseline" "$json" \
        --threshold "$threshold"; then
      echo "run_benches: bench_$name regressed vs $baseline" >&2
      status=1
    fi
  fi
done

if [ -n "$json_files" ]; then
  # shellcheck disable=SC2086 — word-splitting the file list is intended.
  if ! "$checker" $json_files; then
    status=1
  fi
fi

if [ "$status" -eq 0 ]; then
  echo "run_benches: all benches emitted schema-valid JSON in $out_dir"
fi
exit "$status"
