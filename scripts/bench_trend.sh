#!/bin/sh
# Print per-bench p50 trend trajectories across the committed history:
# bench/baselines (oldest) -> bench/history/NNNN-* in lexical order
# -> an optional fresh-run directory on the right.
#
# Usage: bench_trend.sh [fresh-run-dir]
#
# Informational: exits non-zero only on unparseable JSON (compare_bench
# exits 2), never on a trajectory's shape. The regression *gate* is the
# pairwise compare in run_benches.sh; this script exists so a slow drift
# spread over many PRs — each step below the pairwise threshold — is still
# visible as a monotone trajectory.
set -eu

script_dir=$(dirname "$0")
repo_root="$script_dir/.."
fresh=${1:-}

if ! command -v python3 > /dev/null 2>&1; then
  echo "bench_trend: python3 unavailable" >&2
  exit 2
fi

found=0
for baseline in "$repo_root"/bench/baselines/BENCH_*.json; do
  [ -f "$baseline" ] || continue
  found=1
  name=$(basename "$baseline")
  files="$baseline"
  for dir in "$repo_root"/bench/history/*/; do
    [ -f "$dir$name" ] && files="$files $dir$name"
  done
  if [ -n "$fresh" ] && [ -f "$fresh/$name" ]; then
    files="$files $fresh/$name"
  fi
  # shellcheck disable=SC2086 — word-splitting the file list is intended.
  python3 "$script_dir/compare_bench.py" --trend $files
done

if [ "$found" = 0 ]; then
  echo "bench_trend: no committed baselines under bench/baselines" >&2
  exit 2
fi
