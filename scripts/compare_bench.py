#!/usr/bin/env python3
"""Diff or trend BENCH_*.json files (schema v1) emitted by the BenchReporter.

Two-file mode (default) compares the histograms the two runs share — per-
histogram p50 delta, plus count/mean for context — and flags a regression
when a p50 grows by more than --threshold (fractional; default 0.25 = 25%).
Also reports numeric notes and wall_seconds, which are informational only
(they never flag).

Identical mode (--identical) compares only the deterministic payload of the
two runs — bench name, smoke flag, tables (titles, headers, every cell) and
notes — and exits 1 on ANY difference. Timing fields (wall_seconds, metric
histograms, trace) are ignored, since they legitimately differ run to run.
This is the comparator behind the kill/resume CI job: a run that was
SIGKILLed and resumed from its checkpoint must produce byte-identical
tables to an uninterrupted run.

Trend mode (--trend) accepts N historical JSONs in chronological order and
prints per-bench p50 trajectories: one line per (bench, histogram) pair
showing the p50 at each snapshot plus the overall first-to-last delta.
Files from different benches may be mixed; they are grouped by the "bench"
field. Trend mode is informational and always exits 0 on parseable input.

Stdlib-only, so it runs anywhere the repo builds:

    python3 scripts/compare_bench.py old/BENCH_micro_kernels.json \
        new/BENCH_micro_kernels.json --threshold 0.3
    python3 scripts/compare_bench.py --trend run1/*.json run2/*.json \
        run3/*.json

Exit status: 0 = no regression, 1 = at least one histogram regressed,
2 = usage/parse error. Histograms absent from either file are listed but
never treated as regressions (benches add and retire instrumentation).
Timings below --min-seconds (default 1ms) are ignored: at microsecond
scale, scheduler noise swamps any real signal.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"compare_bench: cannot read {path}: {exc}")
    if doc.get("schema_version") != 1:
        sys.exit(f"compare_bench: {path}: expected schema_version 1, "
                 f"got {doc.get('schema_version')!r}")
    return doc


def histograms(doc):
    return doc.get("metrics", {}).get("histograms", {}) or {}


def fmt_delta(old, new):
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{100.0 * (new - old) / old:+.1f}%"


def identical(old_path, new_path):
    """Exit 0 iff the deterministic payloads of the two runs match exactly.

    Deterministic payload = bench name, smoke flag, tables, notes. Counters
    are deterministic too at fixed thread count, but a resumed run
    legitimately reports fewer fresh oracle queries than an uninterrupted
    one (replayed answers are served from the journal), so metrics stay out
    of the comparison on purpose.
    """
    old_doc, new_doc = load(old_path), load(new_path)
    diffs = []
    for key in ("bench", "smoke", "tables", "notes"):
        if old_doc.get(key) != new_doc.get(key):
            diffs.append(key)
    if not diffs:
        print(f"compare_bench: identical deterministic payload "
              f"({old_path} vs {new_path})")
        return 0
    for key in diffs:
        print(f"compare_bench: MISMATCH in {key!r}:")
        print(f"  {old_path}: "
              f"{json.dumps(old_doc.get(key), sort_keys=True)[:400]}")
        print(f"  {new_path}: "
              f"{json.dumps(new_doc.get(key), sort_keys=True)[:400]}")
    return 1


def trend(paths):
    """Print per-bench p50 trajectories over N chronological snapshots."""
    docs = [load(path) for path in paths]
    # Group snapshot histograms by bench name, preserving file order.
    by_bench = {}
    for path, doc in zip(paths, docs):
        by_bench.setdefault(doc.get("bench", "?"), []).append(
            (path, histograms(doc), doc.get("wall_seconds")))

    for bench in sorted(by_bench):
        snapshots = by_bench[bench]
        names = sorted({name for _, hists, _ in snapshots for name in hists})
        print(f"== {bench} ({len(snapshots)} snapshot(s)) ==")
        if not names:
            print("  (no histograms)")
            continue
        width = max(len(name) for name in names)
        for name in names:
            p50s = [
                float(hists[name]["p50"]) if name in hists else None
                for _, hists, _ in snapshots
            ]
            cells = "  ".join(
                f"{p:>10.6f}" if p is not None else f"{'-':>10}"
                for p in p50s)
            present = [p for p in p50s if p is not None]
            overall = (fmt_delta(present[0], present[-1])
                       if len(present) >= 2 else "n/a")
            print(f"  {name:<{width}}  {cells}  [{overall}]")
        walls = [w for _, _, w in snapshots if isinstance(w, (int, float))]
        if len(walls) == len(snapshots):
            cells = "  ".join(f"{w:>10.3f}" for w in walls)
            print(f"  {'wall_seconds':<{width}}  {cells}  "
                  f"[{fmt_delta(walls[0], walls[-1])}]")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two schema-v1 BENCH_*.json files by histogram p50, "
                    "or trend N of them chronologically.")
    parser.add_argument(
        "files", nargs="+",
        help="BENCH_*.json files: exactly two (baseline, candidate) in diff "
             "mode, one or more chronological snapshots with --trend")
    parser.add_argument(
        "--trend", action="store_true",
        help="print per-bench p50 trajectories across all given files "
             "instead of diffing a pair")
    parser.add_argument(
        "--identical", action="store_true",
        help="require the deterministic payload (tables + notes) of two "
             "files to match exactly; timings are ignored")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="fractional p50 growth that counts as a regression "
             "(default: 0.25)")
    parser.add_argument(
        "--min-seconds", type=float, default=1e-3,
        help="ignore histograms whose baseline p50 is below this many "
             "seconds (default: 1e-3)")
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")
    if args.trend and args.identical:
        parser.error("--trend and --identical are mutually exclusive")
    if args.trend:
        return trend(args.files)
    if len(args.files) != 2:
        parser.error("diff mode takes exactly two files (old, new); "
                     "use --trend for N-file trajectories")
    if args.identical:
        return identical(*args.files)
    args.old, args.new = args.files

    old_doc, new_doc = load(args.old), load(args.new)
    if old_doc.get("bench") != new_doc.get("bench"):
        print(f"compare_bench: note: comparing different benches "
              f"({old_doc.get('bench')!r} vs {new_doc.get('bench')!r})")
    if old_doc.get("smoke") != new_doc.get("smoke"):
        print("compare_bench: note: smoke flags differ; timings are not "
              "comparable like-for-like")

    old_hists, new_hists = histograms(old_doc), histograms(new_doc)
    shared = sorted(set(old_hists) & set(new_hists))
    only_old = sorted(set(old_hists) - set(new_hists))
    only_new = sorted(set(new_hists) - set(old_hists))

    regressions = []
    width = max([len(name) for name in shared] or [9])
    print(f"{'histogram':<{width}}  {'old p50':>12}  {'new p50':>12}  "
          f"{'delta':>8}  verdict")
    for name in shared:
        old_p50 = float(old_hists[name].get("p50", 0.0))
        new_p50 = float(new_hists[name].get("p50", 0.0))
        delta = fmt_delta(old_p50, new_p50)
        if old_p50 < args.min_seconds:
            verdict = "skipped (below --min-seconds)"
        elif new_p50 > old_p50 * (1.0 + args.threshold):
            verdict = "REGRESSION"
            regressions.append(name)
        elif new_p50 < old_p50:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<{width}}  {old_p50:>12.6f}  {new_p50:>12.6f}  "
              f"{delta:>8}  {verdict}")

    for name in only_old:
        print(f"{name}: only in {args.old} (retired?)")
    for name in only_new:
        print(f"{name}: only in {args.new} (new instrumentation)")

    old_notes = old_doc.get("notes", {}) or {}
    new_notes = new_doc.get("notes", {}) or {}
    numeric = sorted(
        k for k in set(old_notes) & set(new_notes)
        if isinstance(old_notes[k], (int, float))
        and isinstance(new_notes[k], (int, float)))
    if numeric:
        print("\nnotes (informational):")
        for key in numeric:
            print(f"  {key}: {old_notes[key]:g} -> {new_notes[key]:g} "
                  f"({fmt_delta(old_notes[key], new_notes[key])})")
    ow, nw = old_doc.get("wall_seconds"), new_doc.get("wall_seconds")
    if isinstance(ow, (int, float)) and isinstance(nw, (int, float)):
        print(f"\nwall_seconds: {ow:.3f} -> {nw:.3f} ({fmt_delta(ow, nw)})")

    if regressions:
        print(f"\ncompare_bench: {len(regressions)} regression(s) above "
              f"{100 * args.threshold:.0f}%: {', '.join(regressions)}")
        return 1
    print("\ncompare_bench: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
