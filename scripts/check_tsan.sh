#!/bin/sh
# Build the concurrency-sensitive test suites under ThreadSanitizer and run
# them with the pool forced wide (PITFALLS_THREADS=8), so data races in the
# parallel layer or the metrics registry surface as hard failures instead of
# flaky tests.
#
# Usage: check_tsan.sh [<build-dir>]      (default: build-tsan)
#
# Uses a dedicated build tree configured with -DPITFALLS_SANITIZE=thread;
# the regular `build/` tree is left untouched. Exits non-zero on any
# configure/build failure, test failure, or TSan report (TSan aborts the
# test with halt_on_error so races cannot pass silently).
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build-tsan"}

echo "== configure ($build_dir, -DPITFALLS_SANITIZE=thread) =="
cmake -B "$build_dir" -S "$src_dir" -DPITFALLS_SANITIZE=thread

echo "== build parallel_test obs_test robust_test solver_test =="
cmake --build "$build_dir" -j --target parallel_test obs_test robust_test solver_test

export TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
export PITFALLS_THREADS=8

status=0
for test in parallel_test obs_test robust_test solver_test; do
  echo "== $test (PITFALLS_THREADS=8, TSan) =="
  if ! "$build_dir/tests/$test"; then
    echo "check_tsan: $test FAILED under ThreadSanitizer" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_tsan: parallel_test, obs_test, robust_test and solver_test are race-free under TSan"
fi
exit "$status"
