#!/bin/sh
# Deterministic kill/resume gate for cell-checkpointed sweep benches.
#
# Unlike ci_kill_resume.sh (which SIGKILLs bench_noise_tolerance mid-flush
# and retries until the timing lands), this gate uses the
# PITFALLS_EXIT_AFTER_CELLS hook: the bench itself requests termination
# after the N-th completed cell and exits 143 at the next poll, so the
# "crash" lands between cells on the first try, every time.
#
#   1. run <bench> --smoke uninterrupted             -> reference JSON
#   2. run it with --checkpoint and
#      PITFALLS_EXIT_AFTER_CELLS=<cells>             -> exit 143, snapshot
#      present, no BENCH json (died mid-run by construction)
#   3. run it with --resume from the survivor        -> full JSON
#   4. require the resumed deterministic payload (tables + notes) to match
#      the reference exactly, via compare_bench.py --identical
#
# Usage: check_kill_resume_cells.sh <bench_bin> <json_name> <cells> [work_dir]
#   bench_bin  absolute or relative path to the bench binary
#   json_name  the BENCH_<name>.json the reporter writes (e.g. lstar_fsm)
#   cells      crash after this many completed cells (must be mid-sweep)
set -u

bench_arg=${1:?usage: check_kill_resume_cells.sh <bench_bin> <json_name> <cells> [work_dir]}
json_name=${2:?usage: check_kill_resume_cells.sh <bench_bin> <json_name> <cells> [work_dir]}
cells=${3:?usage: check_kill_resume_cells.sh <bench_bin> <json_name> <cells> [work_dir]}
work=${4:-kill_resume_cells_work}

# The runs below cd into work subdirectories, so the bench and the
# comparator need absolute paths.
bench=$(cd "$(dirname "$bench_arg")" && pwd)/$(basename "$bench_arg")
script_dir=$(cd "$(dirname "$0")" && pwd)
json="BENCH_${json_name}.json"

if [ ! -x "$bench" ]; then
  echo "check_kill_resume_cells: missing bench binary $bench" >&2
  exit 2
fi

rm -rf "$work"
mkdir -p "$work/ref" "$work/crash"

# --- 1. uninterrupted reference ---------------------------------------
if ! (cd "$work/ref" && "$bench" --smoke --json > output.txt 2>&1); then
  echo "check_kill_resume_cells: reference run failed; output follows" >&2
  cat "$work/ref/output.txt" >&2
  exit 1
fi
ref_json="$work/ref/$json"
if [ ! -f "$ref_json" ]; then
  echo "check_kill_resume_cells: reference run left no $json" >&2
  exit 1
fi

# --- 2. deterministic crash after <cells> completed cells -------------
(cd "$work/crash" && PITFALLS_EXIT_AFTER_CELLS=$cells "$bench" \
    --smoke --json --checkpoint=snap.bin > output.txt 2>&1)
crash_status=$?
if [ "$crash_status" != 143 ]; then
  echo "check_kill_resume_cells: crash run exited $crash_status, want 143;" \
       "output follows" >&2
  cat "$work/crash/output.txt" >&2
  exit 1
fi
if [ ! -s "$work/crash/snap.bin" ]; then
  echo "check_kill_resume_cells: crash run left no snapshot" >&2
  exit 1
fi
if [ -f "$work/crash/$json" ]; then
  echo "check_kill_resume_cells: crash run wrote $json — it did not die" \
       "mid-run" >&2
  exit 1
fi
echo "  crashed after $cells cells;" \
     "snapshot: $(wc -c < "$work/crash/snap.bin") bytes"

# --- 3. resume from the survivor snapshot -----------------------------
if ! (cd "$work/crash" && "$bench" --smoke --json \
      --checkpoint=snap.bin --resume > resume_output.txt 2>&1); then
  echo "check_kill_resume_cells: resumed run failed; output follows" >&2
  cat "$work/crash/resume_output.txt" >&2
  exit 1
fi
resumed_json="$work/crash/$json"

# --- 4. deterministic payload must match exactly ----------------------
if python3 "$script_dir/compare_bench.py" --identical \
    "$ref_json" "$resumed_json"; then
  echo "check_kill_resume_cells: $json_name resume is identical to" \
       "uninterrupted"
  exit 0
fi
echo "check_kill_resume_cells: resumed $json_name run diverged" >&2
exit 1
