// Tests for pitfalls-lint: the stripper, each rule against known-good and
// known-bad fixtures under tests/lint_fixtures/, suppression handling, and
// the cross-file behaviours (sibling guards, header-scoped container names).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

#include "linter.hpp"

namespace {

using pitfalls::lint::SourceFile;
using pitfalls::lint::Violation;
using pitfalls::lint::load_file;
using pitfalls::lint::run_lint;
using pitfalls::lint::strip_comments_and_strings;

std::string fixture(const std::string& name) {
  return std::string(LINT_FIXTURES_DIR) + "/" + name;
}

std::vector<Violation> lint_fixture(const std::string& name) {
  return run_lint({load_file(fixture(name))});
}

std::vector<std::size_t> lines_of(const std::vector<Violation>& vs,
                                  const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const auto& v : vs)
    if (v.rule == rule) lines.push_back(v.line);
  return lines;
}

// ------------------------------------------------------------- stripper

TEST(LintStrip, RemovesLineAndBlockComments) {
  const std::string out = strip_comments_and_strings(
      "int a; // std::mt19937 here\nint b; /* rand() */ int c;\n");
  EXPECT_EQ(out.find("mt19937"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
}

TEST(LintStrip, PreservesLineStructure) {
  const std::string src = "a /* multi\nline\ncomment */ b\n";
  const std::string out = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
}

TEST(LintStrip, BlanksStringAndCharLiterals) {
  const std::string out = strip_comments_and_strings(
      "const char* s = \"std::chrono inside\"; char c = 'x';\n");
  EXPECT_EQ(out.find("chrono"), std::string::npos);
  EXPECT_EQ(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("const char* s ="), std::string::npos);
}

TEST(LintStrip, HandlesEscapesAndRawStrings) {
  EXPECT_EQ(strip_comments_and_strings("auto s = \"a\\\"rand()\\\"b\";\n")
                .find("rand"),
            std::string::npos);
  EXPECT_EQ(strip_comments_and_strings("auto r = R\"(std::mt19937 \" ')\";\n")
                .find("mt19937"),
            std::string::npos);
}

// ------------------------------------------------------------------ rng

TEST(LintRng, FlagsEveryRawPrimitive) {
  EXPECT_EQ(lines_of(lint_fixture("bad_rng.cpp"), "rng"),
            (std::vector<std::size_t>{6, 7, 8, 9}));
}

TEST(LintRng, CleanFileWithProseOnlyMentionsPasses) {
  EXPECT_TRUE(lint_fixture("good_rng.cpp").empty());
}

TEST(LintRng, ExemptsTheRngWrapperItself) {
  const SourceFile f{"src/support/rng.hpp",
                     "#include <random>\nstd::mt19937_64 engine_;\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ------------------------------------------------------------ wallclock

TEST(LintWallclock, FlagsChronoReads) {
  EXPECT_EQ(lines_of(lint_fixture("bad_wallclock.cpp"), "wallclock"),
            (std::vector<std::size_t>{6, 7}));
}

TEST(LintWallclock, CleanFilePasses) {
  EXPECT_TRUE(lint_fixture("good_wallclock.cpp").empty());
}

TEST(LintWallclock, ExemptsObsLayer) {
  const SourceFile f{"src/obs/timer.cpp",
                     "#include <chrono>\nauto t = "
                     "std::chrono::steady_clock::now();\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintWallclock, InstrumentedSatPlaneGetsNoBlanketExemption) {
  // The solver plane reports into src/obs but is not src/obs: raw chrono
  // there must still flag, both for a realistic fixture and for the actual
  // solver path.
  EXPECT_EQ(lines_of(lint_fixture("bad_sat_wallclock.cpp"), "wallclock"),
            (std::vector<std::size_t>{10, 12, 13}));
  const SourceFile f{"src/sat/solver.cpp",
                     "#include <chrono>\nauto t = "
                     "std::chrono::steady_clock::now();\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "wallclock"),
            (std::vector<std::size_t>{2}));
}

TEST(LintWallclock, PerLineAnnotationSuppressesExactlyThatLine) {
  const SourceFile annotated{
      "src/sat/solver.cpp",
      "#include <chrono>  // lint:wallclock-ok diagnostics only\n"
      "auto t = std::chrono::steady_clock::now();  // lint:wallclock-ok\n"};
  EXPECT_TRUE(run_lint({annotated}).empty());

  const SourceFile partial{
      "src/sat/solver.cpp",
      "#include <chrono>  // lint:wallclock-ok\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::steady_clock::now();  // lint:wallclock-ok\n"};
  // The annotation on lines 1 and 3 must not bleed onto line 2... except
  // that a tag also covers the immediately following line (the "annotation
  // above the statement" idiom), so line 2 rides on line 1 here.
  EXPECT_TRUE(run_lint({partial}).empty());
  const SourceFile bare{
      "src/sat/solver.cpp",
      "int x;\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::steady_clock::now();  // lint:wallclock-ok\n"};
  EXPECT_EQ(lines_of(run_lint({bare}), "wallclock"),
            (std::vector<std::size_t>{2}));
}

// -------------------------------------------------------------- ordered

TEST(LintOrdered, FlagsRangeForOverUnorderedContainer) {
  EXPECT_EQ(lines_of(lint_fixture("bad_ordered.cpp"), "ordered"),
            (std::vector<std::size_t>{8}));
}

TEST(LintOrdered, LookupOnlyUsePasses) {
  EXPECT_TRUE(lint_fixture("good_ordered.cpp").empty());
}

TEST(LintOrdered, HeaderDeclaredNamesAreVisibleAcrossFiles) {
  // The member is declared unordered in the header; a .cpp iterating over it
  // must still be flagged even though the .cpp never names the type.
  const SourceFile hdr{"src/x/reg.hpp",
                       "#include <unordered_map>\n"
                       "struct Reg {\n"
                       "  std::unordered_map<int, int> table_;\n"
                       "};\n"};
  const SourceFile cpp{"src/x/reg.cpp",
                       "#include \"reg.hpp\"\n"
                       "int f(Reg& r) {\n"
                       "  int s = 0;\n"
                       "  for (auto& kv : r.table_) s += kv.second;\n"
                       "  return s;\n"
                       "}\n"};
  const auto vs = run_lint({hdr, cpp});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "ordered");
  EXPECT_EQ(vs[0].file, "src/x/reg.cpp");
  EXPECT_EQ(vs[0].line, 4u);
}

// ------------------------------------------------------------ chunk-rng

TEST(LintChunkRng, FlagsSharedRngAcrossChunks) {
  const auto lines = lines_of(lint_fixture("bad_chunk_rng.cpp"), "chunk-rng");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 11u);  // the parallel_for_chunks callsite
}

TEST(LintChunkRng, PerChunkStreamPasses) {
  EXPECT_TRUE(lint_fixture("good_chunk_rng.cpp").empty());
}

TEST(LintChunkRng, ParallelRegionWithoutRandomnessPasses) {
  const SourceFile f{"src/x/sum.cpp",
                     "double f(std::size_t n) {\n"
                     "  return pitfalls::support::parallel_reduce(\n"
                     "      n, 0.0, [](std::size_t i) { return double(i); },\n"
                     "      [](double a, double b) { return a + b; });\n"
                     "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// -------------------------------------------------------- require-guard

TEST(LintGuard, FlagsUnguardedPublicHeader) {
  const auto vs = lint_fixture("bad_guard.hpp");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "require-guard");
  EXPECT_EQ(vs[0].line, 7u);  // the interpolate() declaration
}

TEST(LintGuard, GuardInHeaderPasses) {
  EXPECT_TRUE(lint_fixture("good_guard.hpp").empty());
}

TEST(LintGuard, GuardInSiblingCppPasses) {
  // Scanned together, the .cpp's PITFALLS_REQUIRE covers the header.
  const auto vs = run_lint({load_file(fixture("sibling_guard.hpp")),
                            load_file(fixture("sibling_guard.cpp"))});
  EXPECT_TRUE(vs.empty());
  // Scanned alone, the header is unguarded and must be flagged.
  EXPECT_EQ(lines_of(lint_fixture("sibling_guard.hpp"), "require-guard"),
            (std::vector<std::size_t>{7}));
}

// --------------------------------------------------------- scalar-query

// The fixtures live under tests/lint_fixtures/ on disk; scalar-query is
// scoped to src/ml and src/puf, so present them under an in-scope path.
std::vector<Violation> lint_fixture_as(const std::string& name,
                                       const std::string& path) {
  SourceFile f = load_file(fixture(name));
  f.path = path;
  return run_lint({f});
}

TEST(LintScalarQuery, FlagsPerElementQueriesInParallelChunkBody) {
  const auto vs = lint_fixture_as("bad_scalar_query.cpp", "src/ml/agree.cpp");
  EXPECT_EQ(lines_of(vs, "scalar-query"), (std::vector<std::size_t>{20, 21}));
}

TEST(LintScalarQuery, AppliesUnderPufToo) {
  const auto vs =
      lint_fixture_as("bad_scalar_query.cpp", "src/puf/agree.cpp");
  EXPECT_EQ(lines_of(vs, "scalar-query").size(), 2u);
}

TEST(LintScalarQuery, BatchCallsPerChunkPass) {
  EXPECT_TRUE(
      lint_fixture_as("good_scalar_query.cpp", "src/ml/agree.cpp").empty());
}

TEST(LintScalarQuery, OutOfScopePathsAreExempt) {
  // The same scalar pattern outside src/ml and src/puf (benches, tests,
  // other layers) is allowed — only the query plane's own layers must batch.
  EXPECT_TRUE(lint_fixture("bad_scalar_query.cpp").empty());
  EXPECT_TRUE(
      lint_fixture_as("bad_scalar_query.cpp", "bench/bench_micro.cpp")
          .empty());
}

TEST(LintScalarQuery, ScalarQueryOutsideParallelRegionPasses) {
  const SourceFile f{"src/ml/serial.cpp",
                     "int probe(pitfalls::ml::MembershipOracle& o,\n"
                     "          const pitfalls::BitVec& x) {\n"
                     "  return o.query_pm(x);\n"
                     "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintScalarQuery, SuppressionTagSilencesTheRule) {
  const SourceFile f{
      "src/ml/agree.cpp",
      "void f(pitfalls::ml::MembershipOracle& o,\n"
      "       const std::vector<pitfalls::BitVec>& xs,\n"
      "       std::vector<int>& out) {\n"
      "  pitfalls::support::parallel_for_chunks(\n"
      "      xs.size(), [&](std::size_t c, std::size_t b, std::size_t e) {\n"
      "        (void)c;\n"
      "        for (std::size_t i = b; i < e; ++i)\n"
      "          out[i] = o.query_pm(xs[i]);  // lint:scalar-query-ok\n"
      "      });\n"
      "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ---------------------------------------------------------------- arena

TEST(LintArena, FlagsClauseContainerMemberOutsideArenaModule) {
  const auto vs = lint_fixture("bad_arena.cpp");
  EXPECT_EQ(lines_of(vs, "arena"), (std::vector<std::size_t>{9, 11, 15}));
}

TEST(LintArena, ClauseRefListsPass) {
  EXPECT_TRUE(lint_fixture("good_arena.cpp").empty());
}

TEST(LintArena, ArenaModuleItselfIsExempt) {
  const SourceFile f{"src/sat/clause_arena.hpp",
                     "class ClauseArena {\n"
                     "  int clauses_ = 0;\n"
                     "};\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintArena, SuppressionTagSilencesTheRule) {
  const SourceFile f{"src/x/t.cpp",
                     "struct S {\n"
                     "  int clauses_ = 0;  // lint:arena-ok\n"
                     "};\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// --------------------------------------------------------------- raw-io

TEST(LintRawIo, FlagsStreamAndCstdioOpens) {
  const SourceFile f{"src/ml/dump.cpp",
                     "#include <fstream>\n"
                     "void dump(const std::string& path) {\n"
                     "  std::ofstream out(path);\n"
                     "  std::FILE* f = std::fopen(path.c_str(), \"rb\");\n"
                     "  std::ifstream in(path);\n"
                     "}\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "raw-io"),
            (std::vector<std::size_t>{1, 3, 4, 5}));
}

TEST(LintRawIo, SnapshotAndObsModulesAreExempt) {
  const SourceFile snap{"src/support/snapshot/snapshot.cpp",
                        "#include <cstdio>\n"
                        "std::FILE* f = std::fopen(\"x\", \"rb\");\n"};
  const SourceFile obs{"src/obs/bench_reporter.cpp",
                       "#include <fstream>\n"
                       "std::ofstream out(\"x\");\n"};
  EXPECT_TRUE(run_lint({snap, obs}).empty());
}

TEST(LintRawIo, SuppressionTagSilencesTheRule) {
  const SourceFile f{"src/x/t.cpp",
                     "#include <fstream>  // lint:raw-io-ok\n"
                     "std::ifstream in(\"x\");  // lint:raw-io-ok\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintRawIo, NonIoIdentifiersDoNotMatch) {
  // `reopen`/`fopened` must not fire; neither must prose in comments or
  // string literals (stripped before matching).
  const SourceFile f{"src/x/t.cpp",
                     "void reopen_session();\n"
                     "bool fopened = false;\n"
                     "// talk about fopen and ofstream here\n"
                     "const char* s = \"std::ofstream\";\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ------------------------------------------------- chunk-rng (for_tasks)

TEST(LintChunkRng, CoversParallelForTasks) {
  const SourceFile f{
      "src/x/t.cpp",
      "void f(pitfalls::support::Rng& rng, std::vector<double>& out) {\n"
      "  pitfalls::support::parallel_for_tasks(\n"
      "      out.size(), [&](std::size_t task) {\n"
      "        out[task] = rng.uniform01();\n"
      "      });\n"
      "}\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "chunk-rng"),
            (std::vector<std::size_t>{2}));
}

// ---------------------------------------------------------- suppression

TEST(LintSuppression, SameLineAndLineAboveTagsSilenceRules) {
  EXPECT_TRUE(lint_fixture("suppressed.cpp").empty());
}

TEST(LintSuppression, TagIsPerRule) {
  // An ordered-ok tag must NOT silence a wallclock finding on the same line.
  const SourceFile f{"src/x/t.cpp",
                     "#include <chrono>\n"
                     "auto t = std::chrono::steady_clock::now();"
                     "  // lint:ordered-ok\n"};
  const auto vs = run_lint({f});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "wallclock");
}

TEST(LintSuppression, TagTwoLinesAboveDoesNotApply) {
  const SourceFile f{"src/x/t.cpp",
                     "// lint:wallclock-ok\n"
                     "int unrelated;\n"
                     "#include <chrono>\n"
                     "auto t = std::chrono::steady_clock::now();\n"};
  const auto vs = run_lint({f});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 4u);
}

// ------------------------------------------------------------ machinery

TEST(LintApi, ViolationsAreSortedAndRulesEnumerated) {
  const auto vs = run_lint({load_file(fixture("bad_wallclock.cpp")),
                            load_file(fixture("bad_rng.cpp"))});
  ASSERT_GE(vs.size(), 2u);
  EXPECT_TRUE(std::is_sorted(vs.begin(), vs.end(),
                             [](const Violation& a, const Violation& b) {
                               return std::tie(a.file, a.line, a.rule) <
                                      std::tie(b.file, b.line, b.rule);
                             }));
  const auto names = pitfalls::lint::rule_names();
  for (const char* r : {"rng", "wallclock", "ordered", "chunk-rng",
                        "require-guard", "scalar-query", "arena", "raw-io"})
    EXPECT_NE(std::find(names.begin(), names.end(), r), names.end())
        << "missing rule " << r;
}

TEST(LintApi, CollectSourcesFindsAllFixtures) {
  const auto paths =
      pitfalls::lint::collect_sources({std::string(LINT_FIXTURES_DIR)});
  EXPECT_GE(paths.size(), 15u);
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
}

}  // namespace
