// Tests for pitfalls-lint: the stripper, each rule against known-good and
// known-bad fixtures under tests/lint_fixtures/, suppression handling, and
// the cross-file behaviours (sibling guards, header-scoped container names).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "lexer.hpp"
#include "linter.hpp"
#include "sarif.hpp"

namespace {

using pitfalls::lint::SourceFile;
using pitfalls::lint::Violation;
using pitfalls::lint::load_file;
using pitfalls::lint::run_lint;
using pitfalls::lint::strip_comments_and_strings;

std::string fixture(const std::string& name) {
  return std::string(LINT_FIXTURES_DIR) + "/" + name;
}

std::vector<Violation> lint_fixture(const std::string& name) {
  return run_lint({load_file(fixture(name))});
}

// Several rules are path-scoped (require-guard and scalar-query to src/,
// the layering DAG to src/<module>); the fixtures live under
// tests/lint_fixtures/ on disk, so present them under an in-scope path.
std::vector<Violation> lint_fixture_as(const std::string& name,
                                       const std::string& path) {
  SourceFile f = load_file(fixture(name));
  f.path = path;
  return run_lint({f});
}

std::vector<std::size_t> lines_of(const std::vector<Violation>& vs,
                                  const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const auto& v : vs)
    if (v.rule == rule) lines.push_back(v.line);
  return lines;
}

// ------------------------------------------------------------- stripper

TEST(LintStrip, RemovesLineAndBlockComments) {
  const std::string out = strip_comments_and_strings(
      "int a; // std::mt19937 here\nint b; /* rand() */ int c;\n");
  EXPECT_EQ(out.find("mt19937"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
}

TEST(LintStrip, PreservesLineStructure) {
  const std::string src = "a /* multi\nline\ncomment */ b\n";
  const std::string out = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
}

TEST(LintStrip, BlanksStringAndCharLiterals) {
  const std::string out = strip_comments_and_strings(
      "const char* s = \"std::chrono inside\"; char c = 'x';\n");
  EXPECT_EQ(out.find("chrono"), std::string::npos);
  EXPECT_EQ(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("const char* s ="), std::string::npos);
}

TEST(LintStrip, HandlesEscapesAndRawStrings) {
  EXPECT_EQ(strip_comments_and_strings("auto s = \"a\\\"rand()\\\"b\";\n")
                .find("rand"),
            std::string::npos);
  EXPECT_EQ(strip_comments_and_strings("auto r = R\"(std::mt19937 \" ')\";\n")
                .find("mt19937"),
            std::string::npos);
}

// ------------------------------------------------------------------ rng

TEST(LintRng, FlagsEveryRawPrimitive) {
  EXPECT_EQ(lines_of(lint_fixture("bad_rng.cpp"), "rng"),
            (std::vector<std::size_t>{6, 7, 8, 9}));
}

TEST(LintRng, CleanFileWithProseOnlyMentionsPasses) {
  EXPECT_TRUE(lint_fixture("good_rng.cpp").empty());
}

TEST(LintRng, ExemptsTheRngWrapperItself) {
  const SourceFile f{"src/support/rng.hpp",
                     "#include <random>\nstd::mt19937_64 engine_;\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ------------------------------------------------------------ wallclock

TEST(LintWallclock, FlagsChronoReads) {
  EXPECT_EQ(lines_of(lint_fixture("bad_wallclock.cpp"), "wallclock"),
            (std::vector<std::size_t>{6, 7}));
}

TEST(LintWallclock, CleanFilePasses) {
  EXPECT_TRUE(lint_fixture("good_wallclock.cpp").empty());
}

TEST(LintWallclock, ExemptsObsLayer) {
  const SourceFile f{"src/obs/timer.cpp",
                     "#include <chrono>\nauto t = "
                     "std::chrono::steady_clock::now();\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintWallclock, InstrumentedSatPlaneGetsNoBlanketExemption) {
  // The solver plane reports into src/obs but is not src/obs: raw chrono
  // there must still flag, both for a realistic fixture and for the actual
  // solver path.
  EXPECT_EQ(lines_of(lint_fixture("bad_sat_wallclock.cpp"), "wallclock"),
            (std::vector<std::size_t>{10, 12, 13}));
  const SourceFile f{"src/sat/solver.cpp",
                     "#include <chrono>\nauto t = "
                     "std::chrono::steady_clock::now();\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "wallclock"),
            (std::vector<std::size_t>{2}));
}

TEST(LintWallclock, PerLineAnnotationSuppressesExactlyThatLine) {
  const SourceFile annotated{
      "src/sat/solver.cpp",
      "#include <chrono>  // lint:wallclock-ok diagnostics only\n"
      "auto t = std::chrono::steady_clock::now();  // lint:wallclock-ok\n"};
  EXPECT_TRUE(run_lint({annotated}).empty());

  const SourceFile partial{
      "src/sat/solver.cpp",
      "#include <chrono>  // lint:wallclock-ok\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::steady_clock::now();  // lint:wallclock-ok\n"};
  // The annotation on lines 1 and 3 must not bleed onto line 2... except
  // that a tag also covers the immediately following line (the "annotation
  // above the statement" idiom), so line 2 rides on line 1 here.
  EXPECT_TRUE(run_lint({partial}).empty());
  const SourceFile bare{
      "src/sat/solver.cpp",
      "int x;\n"
      "auto a = std::chrono::steady_clock::now();\n"
      "auto b = std::chrono::steady_clock::now();  // lint:wallclock-ok\n"};
  EXPECT_EQ(lines_of(run_lint({bare}), "wallclock"),
            (std::vector<std::size_t>{2}));
}

// -------------------------------------------------------------- ordered

TEST(LintOrdered, FlagsRangeForOverUnorderedContainer) {
  EXPECT_EQ(lines_of(lint_fixture("bad_ordered.cpp"), "ordered"),
            (std::vector<std::size_t>{8}));
}

TEST(LintOrdered, LookupOnlyUsePasses) {
  EXPECT_TRUE(lint_fixture("good_ordered.cpp").empty());
}

TEST(LintOrdered, HeaderDeclaredNamesAreVisibleAcrossFiles) {
  // The member is declared unordered in the header; a .cpp iterating over it
  // must still be flagged even though the .cpp never names the type.
  const SourceFile hdr{"src/x/reg.hpp",
                       "#include <unordered_map>\n"
                       "struct Reg {\n"
                       "  std::unordered_map<int, int> table_;\n"
                       "};\n"};
  const SourceFile cpp{"src/x/reg.cpp",
                       "#include \"reg.hpp\"\n"
                       "int f(Reg& r) {\n"
                       "  int s = 0;\n"
                       "  for (auto& kv : r.table_) s += kv.second;\n"
                       "  return s;\n"
                       "}\n"};
  const auto vs = run_lint({hdr, cpp});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "ordered");
  EXPECT_EQ(vs[0].file, "src/x/reg.cpp");
  EXPECT_EQ(vs[0].line, 4u);
}

// ------------------------------------------------------------ chunk-rng

TEST(LintChunkRng, FlagsSharedRngAcrossChunks) {
  const auto lines = lines_of(lint_fixture("bad_chunk_rng.cpp"), "chunk-rng");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 11u);  // the parallel_for_chunks callsite
}

TEST(LintChunkRng, PerChunkStreamPasses) {
  EXPECT_TRUE(lint_fixture("good_chunk_rng.cpp").empty());
}

TEST(LintChunkRng, ParallelRegionWithoutRandomnessPasses) {
  const SourceFile f{"src/x/sum.cpp",
                     "double f(std::size_t n) {\n"
                     "  return pitfalls::support::parallel_reduce(\n"
                     "      n, 0.0, [](std::size_t i) { return double(i); },\n"
                     "      [](double a, double b) { return a + b; });\n"
                     "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// -------------------------------------------------------- require-guard

TEST(LintGuard, FlagsUnguardedPublicHeader) {
  const auto vs = lint_fixture_as("bad_guard.hpp", "src/x/bad_guard.hpp");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "require-guard");
  EXPECT_EQ(vs[0].line, 7u);  // the interpolate() declaration
}

TEST(LintGuard, GuardInHeaderPasses) {
  EXPECT_TRUE(
      lint_fixture_as("good_guard.hpp", "src/x/good_guard.hpp").empty());
}

TEST(LintGuard, GuardInSiblingCppPasses) {
  // Scanned together, the .cpp's PITFALLS_REQUIRE covers the header.
  SourceFile hpp = load_file(fixture("sibling_guard.hpp"));
  SourceFile cpp = load_file(fixture("sibling_guard.cpp"));
  hpp.path = "src/x/sibling_guard.hpp";
  cpp.path = "src/x/sibling_guard.cpp";
  EXPECT_TRUE(run_lint({hpp, cpp}).empty());
  // Scanned alone, the header is unguarded and must be flagged.
  EXPECT_EQ(lines_of(run_lint({hpp}), "require-guard"),
            (std::vector<std::size_t>{7}));
}

TEST(LintGuard, ToolAndTestHeadersAreOutOfScope) {
  // Contracts live in src/support/require.hpp; headers that cannot link the
  // support plane (the lint tool's own, test helpers) are exempt.
  EXPECT_TRUE(lint_fixture("bad_guard.hpp").empty());
  EXPECT_TRUE(
      lint_fixture_as("bad_guard.hpp", "tools/lint/bad_guard.hpp").empty());
}

// --------------------------------------------------------- scalar-query

TEST(LintScalarQuery, FlagsPerElementQueriesInParallelChunkBody) {
  const auto vs = lint_fixture_as("bad_scalar_query.cpp", "src/ml/agree.cpp");
  EXPECT_EQ(lines_of(vs, "scalar-query"), (std::vector<std::size_t>{20, 21}));
}

TEST(LintScalarQuery, AppliesUnderPufToo) {
  const auto vs =
      lint_fixture_as("bad_scalar_query.cpp", "src/puf/agree.cpp");
  EXPECT_EQ(lines_of(vs, "scalar-query").size(), 2u);
}

TEST(LintScalarQuery, BatchCallsPerChunkPass) {
  EXPECT_TRUE(
      lint_fixture_as("good_scalar_query.cpp", "src/ml/agree.cpp").empty());
}

TEST(LintScalarQuery, OutOfScopePathsAreExempt) {
  // The same scalar pattern outside src/ml and src/puf (benches, tests,
  // other layers) is allowed — only the query plane's own layers must batch.
  EXPECT_TRUE(lint_fixture("bad_scalar_query.cpp").empty());
  EXPECT_TRUE(
      lint_fixture_as("bad_scalar_query.cpp", "bench/bench_micro.cpp")
          .empty());
}

TEST(LintScalarQuery, ScalarQueryOutsideParallelRegionPasses) {
  const SourceFile f{"src/ml/serial.cpp",
                     "int probe(pitfalls::ml::MembershipOracle& o,\n"
                     "          const pitfalls::BitVec& x) {\n"
                     "  return o.query_pm(x);\n"
                     "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintScalarQuery, SuppressionTagSilencesTheRule) {
  const SourceFile f{
      "src/ml/agree.cpp",
      "void f(pitfalls::ml::MembershipOracle& o,\n"
      "       const std::vector<pitfalls::BitVec>& xs,\n"
      "       std::vector<int>& out) {\n"
      "  pitfalls::support::parallel_for_chunks(\n"
      "      xs.size(), [&](std::size_t c, std::size_t b, std::size_t e) {\n"
      "        (void)c;\n"
      "        for (std::size_t i = b; i < e; ++i)\n"
      "          out[i] = o.query_pm(xs[i]);  // lint:scalar-query-ok\n"
      "      });\n"
      "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ---------------------------------------------------------------- arena

TEST(LintArena, FlagsClauseContainerMemberOutsideArenaModule) {
  const auto vs = lint_fixture("bad_arena.cpp");
  EXPECT_EQ(lines_of(vs, "arena"), (std::vector<std::size_t>{9, 11, 15}));
}

TEST(LintArena, ClauseRefListsPass) {
  EXPECT_TRUE(lint_fixture("good_arena.cpp").empty());
}

TEST(LintArena, ArenaModuleItselfIsExempt) {
  const SourceFile f{"src/sat/clause_arena.hpp",
                     "class ClauseArena {\n"
                     "  int clauses_ = 0;\n"
                     "};\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintArena, SuppressionTagSilencesTheRule) {
  const SourceFile f{"src/x/t.cpp",
                     "struct S {\n"
                     "  int clauses_ = 0;  // lint:arena-ok\n"
                     "};\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// --------------------------------------------------------------- raw-io

TEST(LintRawIo, FlagsStreamAndCstdioOpens) {
  const SourceFile f{"src/ml/dump.cpp",
                     "#include <fstream>\n"
                     "void dump(const std::string& path) {\n"
                     "  std::ofstream out(path);\n"
                     "  std::FILE* f = std::fopen(path.c_str(), \"rb\");\n"
                     "  std::ifstream in(path);\n"
                     "}\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "raw-io"),
            (std::vector<std::size_t>{1, 3, 4, 5}));
}

TEST(LintRawIo, SnapshotAndObsModulesAreExempt) {
  const SourceFile snap{"src/support/snapshot/snapshot.cpp",
                        "#include <cstdio>\n"
                        "std::FILE* f = std::fopen(\"x\", \"rb\");\n"};
  const SourceFile obs{"src/obs/bench_reporter.cpp",
                       "#include <fstream>\n"
                       "std::ofstream out(\"x\");\n"};
  EXPECT_TRUE(run_lint({snap, obs}).empty());
}

TEST(LintRawIo, CatchesJournalingBypassInServeModule) {
  // The serve daemon journals finished jobs through store/snapshot; a
  // version that opens its own files must be caught when presented under
  // src/serve/ (the daemon's fd-based wire transport is not raw *file* I/O
  // and stays clean — see serve/wire.hpp).
  EXPECT_EQ(
      lines_of(lint_fixture_as("bad_serve_io.cpp", "src/serve/bad_io.cpp"),
               "raw-io"),
      (std::vector<std::size_t>{4, 11, 16}));
}

TEST(LintRawIo, SuppressionTagSilencesTheRule) {
  const SourceFile f{"src/x/t.cpp",
                     "#include <fstream>  // lint:raw-io-ok\n"
                     "std::ifstream in(\"x\");  // lint:raw-io-ok\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintRawIo, NonIoIdentifiersDoNotMatch) {
  // `reopen`/`fopened` must not fire; neither must prose in comments or
  // string literals (stripped before matching).
  const SourceFile f{"src/x/t.cpp",
                     "void reopen_session();\n"
                     "bool fopened = false;\n"
                     "// talk about fopen and ofstream here\n"
                     "const char* s = \"std::ofstream\";\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ------------------------------------------------- chunk-rng (for_tasks)

TEST(LintChunkRng, CoversParallelForTasks) {
  const SourceFile f{
      "src/x/t.cpp",
      "void f(pitfalls::support::Rng& rng, std::vector<double>& out) {\n"
      "  pitfalls::support::parallel_for_tasks(\n"
      "      out.size(), [&](std::size_t task) {\n"
      "        out[task] = rng.uniform01();\n"
      "      });\n"
      "}\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "chunk-rng"),
            (std::vector<std::size_t>{2}));
}

// ---------------------------------------------------------- suppression

TEST(LintSuppression, SameLineAndLineAboveTagsSilenceRules) {
  EXPECT_TRUE(lint_fixture("suppressed.cpp").empty());
}

TEST(LintSuppression, TagIsPerRule) {
  // An ordered-ok tag must NOT silence a wallclock finding on the same line
  // — and, since it then suppresses nothing, it is itself stale.
  const SourceFile f{"src/x/t.cpp",
                     "#include <chrono>\n"
                     "auto t = std::chrono::steady_clock::now();"
                     "  // lint:ordered-ok\n"};
  const auto vs = run_lint({f});
  EXPECT_EQ(lines_of(vs, "wallclock"), (std::vector<std::size_t>{2}));
  EXPECT_EQ(lines_of(vs, "stale-suppression"),
            (std::vector<std::size_t>{2}));
  EXPECT_EQ(vs.size(), 2u);
}

TEST(LintSuppression, TagTwoLinesAboveDoesNotApply) {
  // The tag reaches only its own line and the next one; two lines up it
  // neither suppresses the chrono read nor stays legitimate itself.
  const SourceFile f{"src/x/t.cpp",
                     "// lint:wallclock-ok\n"
                     "int unrelated;\n"
                     "#include <chrono>\n"
                     "auto t = std::chrono::steady_clock::now();\n"};
  const auto vs = run_lint({f});
  EXPECT_EQ(lines_of(vs, "wallclock"), (std::vector<std::size_t>{4}));
  EXPECT_EQ(lines_of(vs, "stale-suppression"),
            (std::vector<std::size_t>{1}));
}

// ----------------------------------------------------------- lexer/tokens

TEST(LintLexer, RawStringWithDelimiterAndQuotesInside) {
  // )"-lookalikes inside a delimited raw string must not terminate it.
  const std::string out = strip_comments_and_strings(
      "auto r = R\"x(quote \" close )\" rand() )x\";\nint keep;\n");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int keep;"), std::string::npos);
}

TEST(LintLexer, EncodingPrefixedRawAndOrdinaryStrings) {
  for (const char* src :
       {"auto a = u8R\"(std::mt19937)\";\n", "auto b = LR\"(std::mt19937)\";\n",
        "auto c = u8\"std::mt19937\";\n", "auto d = L\"std::mt19937\";\n"}) {
    EXPECT_EQ(strip_comments_and_strings(src).find("mt19937"),
              std::string::npos)
        << src;
  }
}

TEST(LintLexer, TokensRecordRawStringContentAndLine) {
  const auto lexed = pitfalls::lint::lex("int a;\nauto s = R\"(p.q)\";\n");
  bool found = false;
  for (const auto& t : lexed.tokens) {
    if (t.kind == pitfalls::lint::Token::Kind::String) {
      EXPECT_EQ(t.text, "p.q");
      EXPECT_EQ(t.line, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintLexer, DigraphsNormaliseToPrimaryPunctuators) {
  const auto lexed =
      pitfalls::lint::lex("int a<:3:>;\nvoid f() <% %>\n%:define X\n");
  std::vector<std::string> puncts;
  for (const auto& t : lexed.tokens)
    if (t.kind == pitfalls::lint::Token::Kind::Punct)
      puncts.push_back(t.text);
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "["), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "]"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "{"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "}"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "#"), puncts.end());
  // Stripped text keeps the physical byte count per line.
  EXPECT_EQ(std::count(strip_comments_and_strings("a<:b:>").begin(),
                       strip_comments_and_strings("a<:b:>").end(), '\n'),
            0);
}

TEST(LintLexer, DigraphLessColonColonStaysTemplateSyntax) {
  // `<::` followed by a scope name is `<` + `::`, not the `[` digraph.
  const auto lexed = pitfalls::lint::lex("A<::B> x;\n");
  std::vector<std::string> puncts;
  for (const auto& t : lexed.tokens)
    if (t.kind == pitfalls::lint::Token::Kind::Punct)
      puncts.push_back(t.text);
  EXPECT_EQ(std::find(puncts.begin(), puncts.end(), "["), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "::"), puncts.end());
}

TEST(LintLexer, BackslashContinuationExtendsLineComment) {
  // The splice glues the second physical line into the comment, so the
  // chrono read there is commentary, not code — but line structure (and
  // with it every later line number) survives.
  const std::string src =
      "// hidden \\\nstd::chrono::steady_clock::now();\nint live;\n";
  const std::string out = strip_comments_and_strings(src);
  EXPECT_EQ(out.find("chrono"), std::string::npos);
  EXPECT_NE(out.find("int live;"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  const SourceFile f{"src/x/t.cpp", src};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintLexer, SplicedStringAndIdentifierHoldTogether) {
  // A splice mid-identifier must not split it into two tokens; a splice
  // mid-string must stay inside the literal.
  const auto lexed = pitfalls::lint::lex("int ab\\\ncd = 0;\n");
  bool whole = false;
  for (const auto& t : lexed.tokens)
    if (t.kind == pitfalls::lint::Token::Kind::Identifier &&
        t.text == "abcd")
      whole = true;
  EXPECT_TRUE(whole);
  EXPECT_EQ(strip_comments_and_strings("auto s = \"ra\\\nnd()\";\n")
                .find("rand"),
            std::string::npos);
}

TEST(LintLexer, SuppressionTagsInsideStringLiteralsDoNotCount) {
  // A tag-shaped substring in a string literal is prose: it neither
  // suppresses the violation nor registers as a (stale) tag.
  const SourceFile f{"src/x/t.cpp",
                     "const char* doc = \"use lint:wallclock-ok here\";\n"
                     "auto t = std::chrono::steady_clock::now();\n"};
  const auto vs = run_lint({f});
  EXPECT_EQ(lines_of(vs, "wallclock"), (std::vector<std::size_t>{2}));
  EXPECT_TRUE(lines_of(vs, "stale-suppression").empty());
}

TEST(LintLexer, TagInMultiLineBlockCommentAttachesToItsOwnLine) {
  const SourceFile f{"src/x/t.cpp",
                     "/* audit trail\n"
                     "   lint:wallclock-ok\n"
                     "*/\n"
                     "auto t = std::chrono::steady_clock::now();\n"};
  // The tag sits on physical line 2; it reaches lines 2-3 only, so the
  // read on line 4 still flags and the tag is stale.
  const auto vs = run_lint({f});
  EXPECT_EQ(lines_of(vs, "wallclock"), (std::vector<std::size_t>{4}));
  EXPECT_EQ(lines_of(vs, "stale-suppression"),
            (std::vector<std::size_t>{2}));
}

// --------------------------------------------------------- capture-race

TEST(LintCaptureRace, FlagsTsanCleanButOrderDependentFixture) {
  // The fixture guards every shared write with a mutex — ThreadSanitizer
  // passes it — yet the result depends on chunk execution order, which is
  // exactly what the rule rejects.
  const auto vs = lint_fixture("bad_capture_race.cpp");
  // sum += local; order.push_back(chunk); ++chunks_seen;
  EXPECT_EQ(lines_of(vs, "capture-race"),
            (std::vector<std::size_t>{24, 25, 26}));
}

TEST(LintCaptureRace, PerSlotWritesAndParallelReducePass) {
  EXPECT_TRUE(lint_fixture("good_capture_race.cpp").empty());
}

TEST(LintCaptureRace, ByValueCaptureIsNotARace) {
  const SourceFile f{"src/x/t.cpp",
                     "void f(std::vector<double>& out, double bias) {\n"
                     "  pitfalls::support::parallel_for(\n"
                     "      out.size(), [&out, bias](std::size_t i) {\n"
                     "        out[i] = bias;\n"
                     "      });\n"
                     "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintCaptureRace, ExplicitRefCaptureMutationFlags) {
  const SourceFile f{"src/x/t.cpp",
                     "void f(std::size_t n) {\n"
                     "  double sum = 0.0;\n"
                     "  pitfalls::support::parallel_for(\n"
                     "      n, [&sum](std::size_t i) {\n"
                     "        sum += static_cast<double>(i);\n"
                     "      });\n"
                     "}\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "capture-race"),
            (std::vector<std::size_t>{5}));
}

TEST(LintCaptureRace, ParallelReduceCombineIsExempt) {
  // parallel_reduce IS the sanctioned chunk-order reduction — mutation in
  // its lambdas is not this rule's business.
  const SourceFile f{"src/x/t.cpp",
                     "double f(std::size_t n) {\n"
                     "  double extra = 0.0;\n"
                     "  return pitfalls::support::parallel_reduce(\n"
                     "      n, 0.0,\n"
                     "      [&](std::size_t i) { extra += 1.0; return extra; }"
                     ",\n"
                     "      [](double a, double b) { return a + b; });\n"
                     "}\n"};
  EXPECT_TRUE(lines_of(run_lint({f}), "capture-race").empty());
}

TEST(LintCaptureRace, MembersAndLocalDeclarationsAreSkipped) {
  const SourceFile f{
      "src/x/t.cpp",
      "void g(std::size_t n) {\n"
      "  pitfalls::support::parallel_for_tasks(n, [&](std::size_t task) {\n"
      "    double acc = 0.0;\n"
      "    acc += static_cast<double>(task);\n"  // declared in body: fine
      "    counter_ += acc;\n"  // trailing underscore: member convention
      "  });\n"
      "}\n"};
  EXPECT_TRUE(lines_of(run_lint({f}), "capture-race").empty());
}

TEST(LintCaptureRace, SuppressionTagSilencesTheRule) {
  const SourceFile f{
      "src/x/t.cpp",
      "void f(std::size_t n) {\n"
      "  std::atomic<int> calls{0};\n"
      "  pitfalls::support::parallel_for(n, [&](std::size_t) {\n"
      "    ++calls;  // lint:capture-race-ok (atomic counter)\n"
      "  });\n"
      "}\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ------------------------------------------------------------- layering

TEST(LintLayering, UpwardEdgeIsRejected) {
  const SourceFile f{"src/support/pool.hpp",
                     "#include \"obs/metrics.hpp\"\n"};
  const auto vs = run_lint({f});
  ASSERT_EQ(lines_of(vs, "layering"), (std::vector<std::size_t>{1}));
}

TEST(LintLayering, UnsanctionedSameLayerEdgeIsRejected) {
  // puf and circuit share layer 3 but have no sanctioned edge.
  const SourceFile f{"src/puf/arbiter.hpp",
                     "#include \"circuit/netlist.hpp\"\n"};
  EXPECT_EQ(lines_of(run_lint({f}), "layering"),
            (std::vector<std::size_t>{1}));
}

TEST(LintLayering, DownwardAndSanctionedEdgesPass) {
  const SourceFile a{"src/attack/sat_attack.hpp",
                     "#include \"ml/oracle.hpp\"\n"
                     "#include \"lock/xor.hpp\"\n"
                     "#include \"sat/solver.hpp\"\n"
                     "#include \"support/rng.hpp\"\n"};
  const SourceFile b{"src/sat/cnf.hpp",
                     "#include \"circuit/netlist.hpp\"\n"};
  const SourceFile c{"src/store/serialize.hpp",
                     "#include \"attack/sat_attack.hpp\"\n"};
  EXPECT_TRUE(lines_of(run_lint({a, b, c}), "layering").empty());
}

TEST(LintLayering, IntraModuleAndSystemIncludesPass) {
  const SourceFile f{"src/sat/solver.cpp",
                     "#include \"sat/solver.hpp\"\n"
                     "#include <vector>\n"};
  EXPECT_TRUE(lines_of(run_lint({f}), "layering").empty());
}

TEST(LintLayering, UnknownModulesAreOutOfScope) {
  // Paths outside the named src/ modules (tests, tools, scratch dirs) and
  // includes of unknown first segments are not the DAG's business.
  const SourceFile a{"src/x/t.hpp", "#include \"obs/metrics.hpp\"\n"};
  const SourceFile b{"tools/lint/linter.cpp",
                     "#include \"support/rng.hpp\"\n"};
  EXPECT_TRUE(lines_of(run_lint({a, b}), "layering").empty());
}

TEST(LintLayering, SuppressionTagSilencesTheRule) {
  const SourceFile f{
      "src/support/pool.hpp",
      "#include \"obs/metrics.hpp\"  // lint:layering-ok (transition)\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

TEST(LintLayering, DagDescriptionNamesEveryModuleInLayerOrder) {
  const std::string dag = pitfalls::lint::dag_description();
  for (const char* m : {"support: layer 0", "obs: layer 1", "core: layer 2",
                        "boolfn: layer 2", "puf: layer 3", "circuit: layer 3",
                        "sat: layer 3", "ml: layer 4", "lock: layer 4",
                        "attack: layer 4", "store: layer 5"})
    EXPECT_NE(dag.find(m), std::string::npos) << m;
  EXPECT_NE(dag.find("attack -> ml"), std::string::npos);
}

// ------------------------------------------------------- metric-registry

const char* kRegistryText =
    "#pragma once\n"
    "inline constexpr const char* kRegistered[] = {\n"
    "    \"ml.fits\",\n"
    "    \"sat.conflicts\",\n"
    "};\n";

TEST(LintMetricRegistry, InertWithoutRegistryInFileSet) {
  const SourceFile f{"src/ml/fit.cpp",
                     "void f(Registry& r) { r.counter(\"ml.unknown\"); }\n"};
  EXPECT_TRUE(lines_of(run_lint({f}), "metric-registry").empty());
}

TEST(LintMetricRegistry, UnregisteredNameFlagsAtTheCallsite) {
  const SourceFile reg{"src/obs/names.hpp", kRegistryText};
  const SourceFile f{"src/ml/fit.cpp",
                     "void f(Registry& r) {\n"
                     "  r.counter(\"ml.fits\");\n"
                     "  r.histogram(\"ml.not_registered\");\n"
                     "}\n"};
  const auto vs = run_lint({reg, f});
  const auto lines = lines_of(vs, "metric-registry");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 3u);
}

TEST(LintMetricRegistry, SpanTimerAndBatchCallsitesAreScanned) {
  const SourceFile reg{"src/obs/names.hpp", kRegistryText};
  const SourceFile f{
      "src/sat/solve.cpp",
      "void f(Registry& r, Tracer& t) {\n"
      "  obs::TraceSpan span(\"sat.conflicts\");\n"
      "  obs::ScopedTimer timer(r, \"sat.unregistered_timer\");\n"
      "  obs::observe_batch(\"ml.fits\", 3);\n"
      "}\n"};
  const auto lines = lines_of(run_lint({reg, f}), "metric-registry");
  EXPECT_EQ(lines, (std::vector<std::size_t>{3}));
}

TEST(LintMetricRegistry, DuplicateRegistryEntryFlags) {
  const SourceFile reg{"src/obs/names.hpp",
                       "inline constexpr const char* kRegistered[] = {\n"
                       "    \"ml.fits\",\n"
                       "    \"ml.fits\",\n"
                       "};\n"};
  const SourceFile use{"src/ml/fit.cpp",
                       "void f(Registry& r) { r.counter(\"ml.fits\"); }\n"};
  EXPECT_EQ(lines_of(run_lint({reg, use}), "metric-registry"),
            (std::vector<std::size_t>{3}));
}

TEST(LintMetricRegistry, UnusedEntryFlagsOnlyWhenBenchPlaneIsScanned) {
  const SourceFile reg{"src/obs/names.hpp", kRegistryText};
  const SourceFile use{"src/ml/fit.cpp",
                       "void f(Registry& r) { r.counter(\"ml.fits\"); }\n"};
  // Without bench/ in the set, a registry entry may simply live in the
  // unscanned plane — stay silent.
  EXPECT_TRUE(lines_of(run_lint({reg, use}), "metric-registry").empty());
  // With a bench file present the whole namespace was scanned, so the
  // unused "sat.conflicts" entry must flag (at its registry line).
  const SourceFile bench{"bench/bench_x.cpp",
                         "void g(Registry& r) { r.counter(\"ml.fits\"); }\n"};
  const auto vs = run_lint({reg, use, bench});
  const auto lines = lines_of(vs, "metric-registry");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(vs[0].file, "src/obs/names.hpp");
  EXPECT_EQ(lines[0], 4u);
}

TEST(LintMetricRegistry, DynamicNamesAndOutOfScopeFilesAreSkipped) {
  const SourceFile reg{"src/obs/names.hpp", kRegistryText};
  const SourceFile dynamic{
      "src/ml/fit.cpp",
      "void f(Registry& r, const std::string& n) { r.counter(n); }\n"};
  const SourceFile test_file{
      "tests/obs_test.cpp",
      "void f(Registry& r) { r.counter(\"scratch.name\"); }\n"};
  EXPECT_TRUE(
      lines_of(run_lint({reg, dynamic, test_file}), "metric-registry")
          .empty());
}

TEST(LintMetricRegistry, SuppressionTagSilencesTheRule) {
  const SourceFile reg{"src/obs/names.hpp", kRegistryText};
  const SourceFile f{
      "src/ml/fit.cpp",
      "void f(Registry& r) {\n"
      "  r.counter(\"ml.migrating\");  // lint:metric-registry-ok\n"
      "}\n"};
  EXPECT_TRUE(run_lint({reg, f}).empty());
}

TEST(LintMetricRegistry, WriteNamesHeaderCollectsAndSortsUses) {
  const std::vector<SourceFile> files = {
      {"src/ml/fit.cpp",
       "void f(Registry& r) { r.counter(\"ml.fits\"); }\n"},
      {"bench/bench_x.cpp",
       "void g() { obs::TraceSpan s(\"bench.span\"); }\n"},
      {"tests/t.cpp", "void h(Registry& r) { r.counter(\"scratch\"); }\n"}};
  const std::string header = pitfalls::lint::write_names_header(files);
  EXPECT_NE(header.find("\"bench.span\",  // span"), std::string::npos);
  EXPECT_NE(header.find("\"ml.fits\",  // counter"), std::string::npos);
  EXPECT_EQ(header.find("scratch"), std::string::npos);  // tests out of scope
  EXPECT_LT(header.find("bench.span"), header.find("ml.fits"));  // sorted
  EXPECT_EQ(header, pitfalls::lint::write_names_header(files));
}

// ----------------------------------------------------- stale-suppression

TEST(LintStale, UnknownRuleTagFlags) {
  const SourceFile f{"src/x/t.cpp",
                     "int a;  // lint:no-such-rule-ok\n"};
  const auto vs = run_lint({f});
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "stale-suppression");
  EXPECT_NE(vs[0].message.find("unknown rule"), std::string::npos);
}

TEST(LintStale, StaleTagCannotSuppressItself) {
  // There is deliberately no opt-out for this rule: tagging the stale tag
  // line only adds a second stale tag.
  const SourceFile f{"src/x/t.cpp",
                     "int a;  // lint:rng-ok lint:stale-suppression-ok\n"};
  const auto vs = run_lint({f});
  EXPECT_EQ(lines_of(vs, "stale-suppression").size(), 2u);
}

TEST(LintStale, TagConsumedByEitherCoveredLineIsNotStale) {
  // One tag, two covered lines, violation only on the second: still used.
  const SourceFile f{"src/x/t.cpp",
                     "// lint:wallclock-ok\n"
                     "auto t = std::chrono::steady_clock::now();\n"};
  EXPECT_TRUE(run_lint({f}).empty());
}

// ----------------------------------------------------------------- sarif

TEST(LintSarif, EmitsRulesAndResultsWithLocations) {
  const std::vector<Violation> vs = {
      {"src/ml/fit.cpp", 7, "rng", "raw \"RNG\" primitive"}};
  const std::string log = pitfalls::lint::to_sarif(vs);
  EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("\"name\": \"pitfalls-lint\""), std::string::npos);
  EXPECT_NE(log.find("\"ruleId\": \"rng\""), std::string::npos);
  EXPECT_NE(log.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(log.find("\"uri\": \"src/ml/fit.cpp\""), std::string::npos);
  // Quotes in messages are escaped, and every rule is described.
  EXPECT_NE(log.find("raw \\\"RNG\\\" primitive"), std::string::npos);
  for (const auto& rule : pitfalls::lint::rule_names())
    EXPECT_NE(log.find("\"id\": \"" + rule + "\""), std::string::npos);
}

TEST(LintSarif, EmptyRunIsStillValid) {
  const std::string log = pitfalls::lint::to_sarif({});
  EXPECT_NE(log.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(log.find("ruleId"), std::string::npos);
}

// ------------------------------------------------------------ machinery

TEST(LintApi, ViolationsAreSortedAndRulesEnumerated) {
  const auto vs = run_lint({load_file(fixture("bad_wallclock.cpp")),
                            load_file(fixture("bad_rng.cpp"))});
  ASSERT_GE(vs.size(), 2u);
  EXPECT_TRUE(std::is_sorted(vs.begin(), vs.end(),
                             [](const Violation& a, const Violation& b) {
                               return std::tie(a.file, a.line, a.rule) <
                                      std::tie(b.file, b.line, b.rule);
                             }));
  const auto names = pitfalls::lint::rule_names();
  for (const char* r :
       {"rng", "wallclock", "ordered", "chunk-rng", "require-guard",
        "scalar-query", "arena", "raw-io", "capture-race", "layering",
        "metric-registry", "stale-suppression"})
    EXPECT_NE(std::find(names.begin(), names.end(), r), names.end())
        << "missing rule " << r;
  for (const auto& rule : names)
    EXPECT_FALSE(pitfalls::lint::rule_summary(rule).empty()) << rule;
}

TEST(LintApi, CollectSourcesFindsAllFixtures) {
  const auto paths =
      pitfalls::lint::collect_sources({std::string(LINT_FIXTURES_DIR)});
  EXPECT_GE(paths.size(), 15u);
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
}

TEST(LintApi, CollectSourcesPrunesFixtureTreesUnlessExplicit) {
  // Walking the parent (tests/) must skip the deliberate-violation tree;
  // only naming it as a root reaches inside (previous test).
  const std::string tests_dir = std::filesystem::path(LINT_FIXTURES_DIR)
                                    .parent_path()
                                    .string();
  const auto paths = pitfalls::lint::collect_sources({tests_dir});
  EXPECT_FALSE(paths.empty());
  for (const auto& p : paths)
    EXPECT_EQ(p.find("lint_fixtures"), std::string::npos) << p;
}

}  // namespace
