// Thread-aware tracer: logical-clock determinism across pool sizes, the
// bounded flight-recorder ring, and the Chrome trace-event exporter.
#include <fstream>  // lint:raw-io-ok (tests read back exported traces)
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"

namespace {

using namespace pitfalls;
using obs::JsonValue;
using obs::JsonWriter;
using obs::TraceClock;
using obs::TraceEventKind;
using obs::Tracer;
using obs::TraceSpan;

/// One traced workload: an enclosing span, a parallel sweep with a span +
/// counter per iteration, and a final instant. Exercises both the serial
/// and the chunk-window paths of the logical clock.
void traced_workload(Tracer& tracer) {
  const TraceSpan top("work.top", tracer);
  support::parallel_for(
      256,
      [&tracer](std::size_t i) {
        const TraceSpan item("work.item", tracer);
        tracer.counter("work.value", static_cast<double>(i % 7));
      },
      "trace_test.workload");
  tracer.instant("work.done");
}

std::string export_json(Tracer& tracer) {
  JsonWriter w;
  tracer.write_json(w);
  return w.str();
}

TEST(TraceDeterminismTest, LogicalClockExportIsByteStableAcrossThreadCounts) {
  std::vector<std::string> exports;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    support::set_pool_thread_count(threads);
    Tracer tracer(TraceClock::kLogical, 1 << 12);
    traced_workload(tracer);
    exports.push_back(export_json(tracer));
    EXPECT_EQ(tracer.dropped_events(), 0u) << threads << " threads";
  }
  support::set_pool_thread_count(1);
  for (std::size_t i = 1; i < exports.size(); ++i)
    EXPECT_EQ(exports[0], exports[i]) << "thread count #" << i;

  // Sanity: the export actually contains the workload.
  const JsonValue doc = JsonValue::parse(exports[0]);
  ASSERT_TRUE(doc.is_array());
  // 1 top span + 256 item spans + 256 counters + 1 instant.
  EXPECT_EQ(doc.items.size(), 514u);
}

TEST(TraceDeterminismTest, ChromeExportIsByteStableAcrossThreadCounts) {
  std::vector<std::string> exports;
  for (const std::size_t threads : {1u, 4u}) {
    support::set_pool_thread_count(threads);
    Tracer tracer(TraceClock::kLogical, 1 << 12);
    traced_workload(tracer);
    exports.push_back(obs::chrome_trace_json(tracer, "trace_test"));
  }
  support::set_pool_thread_count(1);
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(TraceDeterminismTest, SnapshotSortsByStartAndRenumbersIds) {
  support::set_pool_thread_count(4);
  Tracer tracer(TraceClock::kLogical, 1 << 12);
  traced_workload(tracer);
  support::set_pool_thread_count(1);

  const auto events = tracer.events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i);
    if (i > 0) {
      EXPECT_GE(events[i].start_seconds, events[i - 1].start_seconds);
    }
    // Parents precede children in the renumbered snapshot.
    if (events[i].parent >= 0) {
      EXPECT_LT(events[i].parent, static_cast<std::ptrdiff_t>(i));
    }
  }
  // Spans opened inside pool chunks root fresh trees (parentage never
  // crosses a chunk boundary), while the counters nest under their item.
  const auto& top = events[0];
  EXPECT_EQ(top.name, "work.top");
  EXPECT_EQ(top.parent, -1);
  std::size_t items = 0, values = 0;
  for (const auto& e : events) {
    if (e.name == "work.item") {
      ++items;
      EXPECT_EQ(e.parent, -1);
      EXPECT_EQ(e.depth, 0u);
    }
    if (e.name == "work.value") {
      ++values;
      EXPECT_GE(e.parent, 0);
      EXPECT_EQ(e.depth, 1u);
    }
  }
  EXPECT_EQ(items, 256u);
  EXPECT_EQ(values, 256u);
}

TEST(TraceRingTest, CapacityIsClampedAndOldestEventsAreEvicted) {
  Tracer tracer(TraceClock::kLogical, 1);  // clamped up to the minimum
  EXPECT_GE(tracer.capacity(), 16u);
  const std::size_t cap = tracer.capacity();

  for (std::size_t i = 0; i < cap + 10; ++i)
    tracer.instant("evt" + std::to_string(i));

  EXPECT_EQ(tracer.dropped_events(), 10u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), cap);
  // The ring keeps the newest `cap` events: evt10 .. evt(cap+9).
  EXPECT_EQ(events.front().name, "evt10");
  EXPECT_EQ(events.back().name, "evt" + std::to_string(cap + 9));
}

TEST(TraceRingTest, EvictedParentLinksDegradeToRoots) {
  Tracer tracer(TraceClock::kLogical, 1);
  const std::size_t cap = tracer.capacity();
  {
    const TraceSpan outer("outer", tracer);
    // Flood the ring so "outer"'s slot is long gone by snapshot time.
    for (std::size_t i = 0; i < cap * 2; ++i) {
      const TraceSpan inner("inner", tracer);
    }
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), cap);
  for (const auto& e : events)
    if (e.name == "inner" && e.parent >= 0) {
      EXPECT_LT(e.parent, static_cast<std::ptrdiff_t>(events.size()));
    }
}

TEST(TraceRingTest, PerThreadSpansStayIndependent) {
  support::set_pool_thread_count(4);
  Tracer tracer(TraceClock::kLogical, 1 << 12);
  support::parallel_for(64, [&tracer](std::size_t) {
    const TraceSpan a("a", tracer);
    const TraceSpan b("b", tracer);
    // LIFO within this thread; other threads' stacks are invisible here.
  });
  support::set_pool_thread_count(1);
  EXPECT_EQ(tracer.open_spans(), 0u);
  const auto events = tracer.events();
  EXPECT_EQ(events.size(), 128u);
  for (const auto& e : events)
    if (e.name == "b") {
      EXPECT_GE(e.depth, 1u);
    }
}

TEST(ChromeTraceTest, ExportIsStructurallyValidTraceEventJson) {
  Tracer tracer(TraceClock::kLogical, 1 << 10);
  {
    const TraceSpan outer("outer", tracer);
    tracer.counter("queue", 3.0);
    tracer.instant("tick");
  }
  const std::string json = obs::chrome_trace_json(tracer, "trace_test");
  const JsonValue doc = JsonValue::parse(json);

  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_EQ(doc.find("displayTimeUnit")->string_value, "ms");
  const JsonValue& events = *doc.find("traceEvents");
  ASSERT_TRUE(events.is_array());
  // Metadata + span + counter + instant.
  ASSERT_EQ(events.items.size(), 4u);

  std::set<std::string> phases;
  for (const auto& e : events.items) {
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    phases.insert(e.find("ph")->string_value);
    if (e.find("ph")->string_value != "M") {
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("tid"), nullptr);
      EXPECT_GE(e.find("ts")->number_value, 0.0);
    }
  }
  EXPECT_EQ(phases, (std::set<std::string>{"M", "X", "i", "C"}));

  // The complete event carries a duration; the counter carries its value.
  for (const auto& e : events.items) {
    if (e.find("ph")->string_value == "X") {
      ASSERT_NE(e.find("dur"), nullptr);
    }
    if (e.find("ph")->string_value == "C") {
      EXPECT_DOUBLE_EQ(e.find("args")->find("value")->number_value, 3.0);
    }
  }
}

TEST(ChromeTraceTest, ExportFileRoundTrips) {
  Tracer tracer(TraceClock::kLogical, 1 << 10);
  tracer.instant("only");
  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  ASSERT_TRUE(obs::export_chrome_trace(path, tracer, "roundtrip"));
  std::ifstream in(path);  // lint:raw-io-ok
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_EQ(doc.find("traceEvents")->items.size(), 2u);  // metadata + instant
}

TEST(TracerConfigTest, ClockIsSwitchableOnlyWhileEmpty) {
  Tracer tracer(TraceClock::kWall, 64);
  tracer.set_clock(TraceClock::kLogical);
  EXPECT_EQ(tracer.clock(), TraceClock::kLogical);
  tracer.instant("x");
  EXPECT_THROW(tracer.set_clock(TraceClock::kWall), std::invalid_argument);
  tracer.clear();
  tracer.set_clock(TraceClock::kWall);
  EXPECT_EQ(tracer.clock(), TraceClock::kWall);
}

}  // namespace
