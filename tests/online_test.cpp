// Tests for online (mistake-bound) learning and the online-to-PAC
// conversion — the Section V-A machinery ("representation size = mistake
// budget").
#include <gtest/gtest.h>

#include <cmath>

#include "boolfn/ltf.hpp"
#include "boolfn/truth_table.hpp"
#include "ml/online.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::ml;
using pitfalls::boolfn::FunctionView;
using pitfalls::boolfn::TruthTable;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

/// Monotone disjunction OR_{i in vars} x_i in the chi encoding
/// (true -> -1).
FunctionView disjunction(std::size_t n, std::vector<std::size_t> vars) {
  return FunctionView(
      n,
      [vars = std::move(vars)](const BitVec& x) {
        for (auto v : vars)
          if (x.get(v)) return -1;
        return +1;
      },
      "disjunction");
}

// --------------------------------------------------------------- Winnow

TEST(Winnow, LearnsSparseDisjunctionWithFewMistakes) {
  const std::size_t n = 64;
  const std::vector<std::size_t> relevant{3, 17, 42};
  const auto target = disjunction(n, relevant);

  Winnow learner(n);
  Rng rng(1);
  for (int t = 0; t < 4000; ++t) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng.bernoulli(0.1));
    learner.observe(x, target.eval_pm(x));
  }
  // Winnow bound: O(r log n) with small constants; allow 3 r log2 n + 10.
  const double bound = 3.0 * 3.0 * std::log2(64.0) + 10.0;
  EXPECT_LE(static_cast<double>(learner.mistakes()), bound);

  // And the final hypothesis is accurate on the sampling distribution.
  const auto hypothesis = learner.hypothesis();
  std::size_t agree = 0;
  for (int t = 0; t < 2000; ++t) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng.bernoulli(0.1));
    if (hypothesis->eval_pm(x) == target.eval_pm(x)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / 2000.0, 0.97);
}

TEST(Winnow, MistakesScaleWithSparsityNotDimension) {
  // Double the dimension: mistakes grow by ~log factor only.
  auto mistakes_for = [](std::size_t n) {
    const auto target = disjunction(n, {0, 1});
    Winnow learner(n);
    Rng rng(7);
    for (int t = 0; t < 3000; ++t) {
      BitVec x(n);
      for (std::size_t b = 0; b < n; ++b) x.set(b, rng.bernoulli(0.1));
      learner.observe(x, target.eval_pm(x));
    }
    return learner.mistakes();
  };
  const auto small = mistakes_for(32);
  const auto large = mistakes_for(512);
  EXPECT_LE(large, 4 * small + 20);  // far from the 16x dimension blowup
}

TEST(Winnow, PredictObserveContract) {
  Winnow learner(4);
  const BitVec x = BitVec::from_string("1000");
  const int before = learner.predict(x);
  const bool mistake = learner.observe(x, -before);
  EXPECT_TRUE(mistake);
  EXPECT_EQ(learner.mistakes(), 1u);
  EXPECT_THROW(learner.observe(x, 0), std::invalid_argument);
}

// -------------------------------------------------------------- Halving

TEST(Halving, MistakeBoundIsLogOfClassSize) {
  // Class: all 2n dictators and anti-dictators over n vars.
  const std::size_t n = 16;
  std::vector<std::shared_ptr<const pitfalls::boolfn::BooleanFunction>> hs;
  for (std::size_t i = 0; i < n; ++i) {
    hs.push_back(std::make_shared<FunctionView>(
        n, [i](const BitVec& x) { return x.pm_one(i); }, "dict"));
    hs.push_back(std::make_shared<FunctionView>(
        n, [i](const BitVec& x) { return -x.pm_one(i); }, "anti"));
  }
  const std::size_t class_size = hs.size();
  HalvingLearner learner(std::move(hs));

  const FunctionView target(
      n, [](const BitVec& x) { return x.pm_one(5); }, "dict5");
  Rng rng(11);
  for (int t = 0; t < 500; ++t) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng.coin());
    learner.observe(x, target.eval_pm(x));
  }
  EXPECT_LE(static_cast<double>(learner.mistakes()),
            std::log2(static_cast<double>(class_size)) + 1.0);
  EXPECT_GE(learner.surviving(), 1u);
}

TEST(Halving, ThrowsWhenTargetOutsideClass) {
  std::vector<std::shared_ptr<const pitfalls::boolfn::BooleanFunction>> hs;
  hs.push_back(std::make_shared<FunctionView>(
      2, [](const BitVec& x) { return x.pm_one(0); }, "d0"));
  HalvingLearner learner(std::move(hs));
  // Feed inconsistent labels: the version space empties.
  const BitVec x = BitVec::from_string("10");
  learner.observe(x, x.pm_one(0));
  EXPECT_THROW(learner.observe(x, -x.pm_one(0)), std::logic_error);
}

TEST(Halving, ValidatesConstruction) {
  EXPECT_THROW(HalvingLearner({}), std::invalid_argument);
}

// ------------------------------------------------------- online -> PAC

TEST(OnlineToPac, WinnowConvertsToAccuratePacHypothesis) {
  const std::size_t n = 32;
  const auto target = disjunction(n, {2, 9});
  Winnow learner(n);
  Rng rng(13);
  const auto result = online_to_pac(learner, target, /*mistake_bound=*/64,
                                    /*eps=*/0.05, /*delta=*/0.05, rng);
  ASSERT_TRUE(result.converged);
  // Validate eps-accuracy on the uniform distribution.
  std::size_t agree = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng.coin());
    if (result.hypothesis->eval_pm(x) == target.eval_pm(x)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / trials, 0.93);
}

TEST(OnlineToPac, ExampleBudgetScalesWithMistakeBound) {
  // The conversion's survival run is ~(1/eps) ln(M/delta): the concept-
  // representation size (through M) shows up in the PAC sample count —
  // Section V-A's claim in executable form.
  const std::size_t n = 16;
  const auto target = disjunction(n, {1});
  auto examples_for = [&](std::size_t mistake_bound) {
    Winnow learner(n);
    Rng rng(17);
    const auto result =
        online_to_pac(learner, target, mistake_bound, 0.1, 0.05, rng);
    EXPECT_TRUE(result.converged);
    return result.examples_used;
  };
  const auto small = examples_for(8);
  const auto large = examples_for(8192);
  EXPECT_GT(large, small);
}

TEST(OnlineToPac, ReportsNonConvergenceOnBudgetExhaustion) {
  const std::size_t n = 8;
  const auto target = disjunction(n, {0});
  Winnow learner(n);
  Rng rng(19);
  const auto result =
      online_to_pac(learner, target, 16, 0.01, 0.01, rng, /*max_examples=*/5);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.examples_used, 5u);
  EXPECT_NE(result.hypothesis, nullptr);
}

TEST(OnlineToPac, ValidatesParameters) {
  Winnow learner(4);
  const auto target = disjunction(4, {0});
  Rng rng(1);
  EXPECT_THROW(online_to_pac(learner, target, 4, 0.0, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(online_to_pac(learner, target, 4, 0.1, 1.0, rng),
               std::invalid_argument);
}

}  // namespace
