// Tests for DFAs and Angluin's L* (Section V-B machinery).
#include <gtest/gtest.h>

#include "circuit/dfa.hpp"
#include "ml/lstar.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::ml;
using pitfalls::support::Rng;

/// DFA over {0,1} accepting words with an odd number of 1s.
Dfa odd_ones_dfa() {
  Dfa dfa(2, 2, 0);
  dfa.set_transition(0, 0, 0);
  dfa.set_transition(0, 1, 1);
  dfa.set_transition(1, 0, 1);
  dfa.set_transition(1, 1, 0);
  dfa.set_accepting(1, true);
  return dfa;
}

/// DFA accepting words containing the substring "ab" (alphabet {a=0,b=1}).
Dfa contains_ab_dfa() {
  Dfa dfa(3, 2, 0);
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(0, 1, 0);
  dfa.set_transition(1, 0, 1);
  dfa.set_transition(1, 1, 2);
  dfa.set_transition(2, 0, 2);
  dfa.set_transition(2, 1, 2);
  dfa.set_accepting(2, true);
  return dfa;
}

// ------------------------------------------------------------------ Dfa

TEST(Dfa, RunsAndAccepts) {
  const Dfa dfa = odd_ones_dfa();
  EXPECT_FALSE(dfa.accepts({}));
  EXPECT_TRUE(dfa.accepts({1}));
  EXPECT_FALSE(dfa.accepts({1, 1}));
  EXPECT_TRUE(dfa.accepts({1, 0, 0, 1, 1}));
}

TEST(Dfa, ValidatesIndices) {
  Dfa dfa(2, 2, 0);
  EXPECT_THROW(dfa.set_transition(2, 0, 0), std::invalid_argument);
  EXPECT_THROW(dfa.set_transition(0, 2, 0), std::invalid_argument);
  EXPECT_THROW(dfa.accepts({5}), std::invalid_argument);
  EXPECT_THROW(Dfa(0, 2, 0), std::invalid_argument);
  EXPECT_THROW(Dfa(2, 2, 5), std::invalid_argument);
}

TEST(Dfa, ReachableStatesCountsConnectedComponent) {
  Dfa dfa(4, 1, 0);
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(1, 0, 0);
  // States 2, 3 unreachable (self-loops by default).
  EXPECT_EQ(dfa.reachable_states(), 2u);
}

TEST(Dfa, MinimizeMergesEquivalentStates) {
  // Two redundant accepting states with identical behaviour.
  Dfa dfa(4, 1, 0);
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(1, 0, 2);
  dfa.set_transition(2, 0, 3);
  dfa.set_transition(3, 0, 2);
  dfa.set_accepting(2, true);
  dfa.set_accepting(3, true);
  const Dfa minimal = dfa.minimized();
  EXPECT_LT(minimal.num_states(), dfa.num_states());
  EXPECT_FALSE(Dfa::distinguishing_word(dfa, minimal).has_value());
}

TEST(Dfa, DistinguishingWordIsShortestAndValid) {
  const Dfa a = odd_ones_dfa();
  const Dfa b = contains_ab_dfa();
  const auto word = Dfa::distinguishing_word(a, b);
  ASSERT_TRUE(word.has_value());
  EXPECT_NE(a.accepts(*word), b.accepts(*word));
  EXPECT_LE(word->size(), 2u);  // "1" already separates them
}

TEST(Dfa, EquivalentToItself) {
  const Dfa a = contains_ab_dfa();
  EXPECT_FALSE(Dfa::distinguishing_word(a, a).has_value());
}

TEST(Dfa, RandomHasBothAcceptingAndRejecting) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Dfa dfa = Dfa::random(6, 2, 0.5, rng);
    bool any_accept = false;
    bool any_reject = false;
    for (std::size_t s = 0; s < dfa.num_states(); ++s)
      (dfa.accepting(s) ? any_accept : any_reject) = true;
    EXPECT_TRUE(any_accept);
    EXPECT_TRUE(any_reject);
  }
}

// ---------------------------------------------------------------- L*

TEST(LStar, LearnsOddOnesExactly) {
  const Dfa target = odd_ones_dfa();
  ExactDfaTeacher teacher(target);
  LStarStats stats;
  const Dfa learned = LStarLearner().learn(teacher, &stats);
  EXPECT_FALSE(Dfa::distinguishing_word(target, learned).has_value());
  EXPECT_EQ(learned.num_states(), 2u);
  EXPECT_GT(stats.membership_queries, 0u);
}

TEST(LStar, LearnsSubstringLanguage) {
  const Dfa target = contains_ab_dfa();
  ExactDfaTeacher teacher(target);
  const Dfa learned = LStarLearner().learn(teacher, nullptr);
  EXPECT_FALSE(Dfa::distinguishing_word(target, learned).has_value());
  EXPECT_EQ(learned.num_states(), target.minimized().num_states());
}

class LStarRandom
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(LStarRandom, LearnsRandomDfasExactly) {
  const auto [states, alphabet] = GetParam();
  Rng rng(static_cast<std::uint64_t>(4000 + states * 10 + alphabet));
  const Dfa target = Dfa::random(states, alphabet, 0.4, rng);
  ExactDfaTeacher teacher(target);
  LStarStats stats;
  const Dfa learned = LStarLearner().learn(teacher, &stats);
  EXPECT_FALSE(Dfa::distinguishing_word(target, learned).has_value());
  // L* returns the minimal automaton.
  EXPECT_EQ(learned.num_states(), target.minimized().num_states());
  EXPECT_EQ(stats.states, learned.num_states());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LStarRandom,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 10, 20),
                       ::testing::Values<std::size_t>(2, 3)));

TEST(LStar, SampledTeacherYieldsApproximatelyCorrectDfa) {
  Rng rng(9);
  const Dfa target = Dfa::random(8, 2, 0.4, rng);
  SampledDfaTeacher teacher(target, 3000, 8.0, rng);
  const Dfa learned = LStarLearner().learn(teacher, nullptr);
  // Measure agreement over random words of the teacher's distribution.
  std::size_t agree = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    Word w;
    while (rng.bernoulli(8.0 / 9.0))
      w.push_back(static_cast<std::size_t>(rng.uniform_below(2)));
    if (target.accepts(w) == learned.accepts(w)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / trials, 0.97);
}

TEST(LStar, MembershipQueriesStayPolynomial) {
  Rng rng(10);
  const Dfa target = Dfa::random(16, 2, 0.5, rng);
  ExactDfaTeacher teacher(target);
  LStarStats stats;
  (void)LStarLearner().learn(teacher, &stats);
  const std::size_t m = target.minimized().num_states();
  // Crude sanity bound: far below exponential, polynomial-ish in m.
  EXPECT_LT(stats.membership_queries, 2000 * m * m);
}

}  // namespace
