// Dedicated suite for the rebuilt CDCL engine and the deterministic solver
// portfolio: differential checks against brute force (verdicts AND model
// validity, with and without assumptions), clause-database reduction safety,
// arena compaction, restart policy, portfolio byte-stability across pool
// thread counts, the reusable equivalence checker, and the oracle-lifetime
// regression.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "lock/combinational.hpp"
#include "obs/metrics.hpp"
#include "sat/encoder.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using sat::ClauseSink;
using sat::Lit;
using sat::PortfolioConfig;
using sat::PortfolioSolver;
using sat::Solver;
using sat::SolverConfig;
using sat::SolveResult;
using sat::Var;
using support::BitVec;
using support::Rng;

// ------------------------------------------------------------- utilities

struct Cnf {
  std::size_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

Cnf random_cnf(std::size_t num_vars, std::size_t num_clauses, Rng& rng) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (std::size_t c = 0; c < num_clauses; ++c) {
    const std::size_t width = 1 + rng.uniform_below(3);
    std::vector<Lit> clause;
    for (std::size_t l = 0; l < width; ++l)
      clause.push_back(Lit(static_cast<Var>(rng.uniform_below(num_vars)),
                           rng.coin()));
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

std::vector<Var> load_cnf(ClauseSink& sink, const Cnf& cnf) {
  std::vector<Var> vars(cnf.num_vars);
  for (auto& v : vars) v = sink.new_var();
  for (const auto& clause : cnf.clauses) {
    std::vector<Lit> mapped;
    for (const Lit l : clause) mapped.push_back(Lit(vars[l.var()], l.negated()));
    sink.add_clause(std::move(mapped));
  }
  return vars;
}

/// Hard random instances: width-3 clauses over distinct variables at the
/// satisfiability phase transition (m/n around 4.3).
Cnf random_3cnf(std::size_t num_vars, std::size_t num_clauses, Rng& rng) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (std::size_t c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    while (clause.size() < 3) {
      const Var v = static_cast<Var>(rng.uniform_below(num_vars));
      bool duplicate = false;
      for (const Lit l : clause) duplicate |= l.var() == v;
      if (!duplicate) clause.push_back(Lit(v, rng.coin()));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

bool clause_satisfied(const std::vector<Lit>& clause, std::uint64_t assignment) {
  for (const Lit l : clause) {
    const bool value = (assignment >> l.var()) & 1;
    if (value != l.negated()) return true;
  }
  return false;
}

/// Exhaustive satisfiability of `cnf` with some variables forced.
bool brute_force_sat(const Cnf& cnf, const std::vector<Lit>& forced) {
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << cnf.num_vars); ++a) {
    bool ok = true;
    for (const Lit f : forced)
      if ((((a >> f.var()) & 1) != 0) == f.negated()) {
        ok = false;
        break;
      }
    for (std::size_t c = 0; ok && c < cnf.clauses.size(); ++c)
      ok = clause_satisfied(cnf.clauses[c], a);
    if (ok) return true;
  }
  return false;
}

void expect_model_satisfies(const Cnf& cnf, const std::vector<Var>& vars,
                            const PortfolioSolver& p) {
  for (const auto& clause : cnf.clauses) {
    bool satisfied = false;
    for (const Lit l : clause)
      if (p.model_value(vars[l.var()]) != l.negated()) satisfied = true;
    EXPECT_TRUE(satisfied) << "model violates a clause";
  }
}

/// n+1 pigeons into n holes: UNSAT, and hard enough to force real search.
void encode_pigeonhole(ClauseSink& sink, std::size_t holes) {
  const std::size_t pigeons = holes + 1;
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = sink.new_var();
  for (std::size_t i = 0; i < pigeons; ++i) {
    std::vector<Lit> somewhere;
    for (std::size_t j = 0; j < holes; ++j) somewhere.push_back(sat::pos(p[i][j]));
    sink.add_clause(std::move(somewhere));
  }
  for (std::size_t j = 0; j < holes; ++j)
    for (std::size_t i1 = 0; i1 < pigeons; ++i1)
      for (std::size_t i2 = i1 + 1; i2 < pigeons; ++i2)
        sink.add_binary(sat::neg(p[i1][j]), sat::neg(p[i2][j]));
}

// ------------------------------------------------- differential solving

TEST(SolverDifferential, RandomCnfVerdictsAndModelsMatchBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t num_vars = 3 + rng.uniform_below(8);
    const std::size_t num_clauses = 2 + rng.uniform_below(4 * num_vars);
    const Cnf cnf = random_cnf(num_vars, num_clauses, rng);

    Solver s;
    const auto vars = load_cnf(s, cnf);
    const bool expected = brute_force_sat(cnf, {});
    ASSERT_EQ(s.solve() == SolveResult::kSat, expected) << "trial " << trial;
    if (!expected) continue;
    for (const auto& clause : cnf.clauses) {
      bool satisfied = false;
      for (const Lit l : clause)
        if (s.model_value(vars[l.var()]) != l.negated()) satisfied = true;
      EXPECT_TRUE(satisfied) << "trial " << trial;
    }
  }
}

TEST(SolverDifferential, AssumptionVerdictsMatchBruteForce) {
  Rng rng(77);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t num_vars = 4 + rng.uniform_below(6);
    const Cnf cnf = random_cnf(num_vars, 3 * num_vars, rng);
    Solver s;
    const auto vars = load_cnf(s, cnf);
    if (s.solve() == SolveResult::kUnsat) continue;  // root UNSAT: no reuse

    // Several assumption sets against ONE incrementally reused solver.
    for (int probe = 0; probe < 4; ++probe) {
      std::vector<Lit> forced;
      const std::size_t count = 1 + rng.uniform_below(3);
      for (std::size_t k = 0; k < count; ++k)
        forced.push_back(Lit(static_cast<Var>(rng.uniform_below(num_vars)),
                             rng.coin()));
      std::vector<Lit> assumptions;
      for (const Lit f : forced)
        assumptions.push_back(Lit(vars[f.var()], f.negated()));
      const bool expected = brute_force_sat(cnf, forced);
      ASSERT_EQ(s.solve(assumptions) == SolveResult::kSat, expected)
          << "trial " << trial << " probe " << probe;
      // UNSAT under assumptions must never poison the solver.
      ASSERT_EQ(s.solve(), SolveResult::kSat) << "trial " << trial;
    }
  }
}

TEST(Solver, FalsifiedAssumptionAtRootIsUnsatButRecoverable) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_unit(sat::pos(a));
  s.add_binary(sat::neg(a), sat::pos(b));
  EXPECT_EQ(s.solve({sat::neg(a)}), SolveResult::kUnsat);
  EXPECT_EQ(s.solve({sat::neg(b)}), SolveResult::kUnsat);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, DuplicateAndRedundantAssumptionsAreHarmless) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(sat::pos(a), sat::pos(b));
  const std::vector<Lit> assumptions{sat::pos(a), sat::pos(a), sat::pos(a),
                                     sat::neg(b)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));
}

TEST(Solver, ConflictBudgetReturnsUnknownAndSearchResumes) {
  SolverConfig config;
  Solver s(config);
  encode_pigeonhole(s, 6);
  EXPECT_EQ(s.solve_limited(1, {}), SolveResult::kUnknown);
  // Resuming with an unlimited budget completes the proof.
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

// ------------------------------------------- clause-DB reduction and GC

TEST(SolverReduceDb, AggressiveReductionKeepsVerdictsCorrect) {
  // A tiny reduce limit forces constant clause-database churn; the solver
  // carries an always-on ENSURE that no reason clause is ever deleted, so
  // simply completing these searches exercises the safety property.
  SolverConfig aggressive;
  aggressive.reduce_base = 4;
  aggressive.reduce_increment = 2;

  Rng rng(99);
  std::uint64_t reductions = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_vars = 12 + rng.uniform_below(4);
    const Cnf cnf = random_3cnf(num_vars, (43 * num_vars) / 10, rng);
    Solver s(aggressive);
    load_cnf(s, cnf);
    const bool expected = brute_force_sat(cnf, {});
    ASSERT_EQ(s.solve() == SolveResult::kSat, expected) << "trial " << trial;
    reductions += s.stats().db_reductions;
  }
  EXPECT_GT(reductions, 0u);
}

TEST(SolverReduceDb, PigeonholeUnderChurnStaysUnsat) {
  SolverConfig aggressive;
  aggressive.reduce_base = 4;
  aggressive.reduce_increment = 1;
  aggressive.luby_base = 2;  // restart often: exercises arena GC paths too
  Solver s(aggressive);
  encode_pigeonhole(s, 7);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().db_reductions, 0u);
  EXPECT_GT(s.stats().deleted_clauses, 0u);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(SolverStats, LearningAndMinimisationAreObservable) {
  Solver s;
  encode_pigeonhole(s, 6);
  ASSERT_EQ(s.solve(), SolveResult::kUnsat);
  const auto& st = s.stats();
  EXPECT_GT(st.conflicts, 0u);
  EXPECT_GT(st.decisions, 0u);
  EXPECT_GT(st.propagations, 0u);
  EXPECT_GT(st.learned_clauses, 0u);
  EXPECT_GE(st.learned_literals, st.learned_clauses);
  EXPECT_GT(st.max_decision_level, 0u);
}

// ------------------------------------------------------------ portfolio

TEST(Portfolio, DiversifiedConfigsAreAPureFunctionOfWorkerIndex) {
  PortfolioConfig pc;
  pc.workers = 8;
  const SolverConfig reference = sat::diversified_config(pc, 0);
  EXPECT_EQ(reference.var_decay, pc.base.var_decay);
  EXPECT_EQ(reference.luby_base, pc.base.luby_base);
  for (std::size_t w = 0; w < 8; ++w) {
    const SolverConfig once = sat::diversified_config(pc, w);
    const SolverConfig twice = sat::diversified_config(pc, w);
    EXPECT_EQ(once.var_decay, twice.var_decay);
    EXPECT_EQ(once.luby_base, twice.luby_base);
    EXPECT_EQ(once.initial_phase, twice.initial_phase);
    EXPECT_EQ(once.seed, twice.seed);
    if (w > 0) {
      EXPECT_NE(once.seed, reference.seed);
    }
  }
}

TEST(Portfolio, VerdictsMatchBruteForceAndModelsAreValid) {
  Rng rng(512);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t num_vars = 4 + rng.uniform_below(7);
    const Cnf cnf = random_cnf(num_vars, 3 * num_vars, rng);
    PortfolioConfig pc;
    pc.workers = 4;
    pc.round_base_conflicts = 4;  // force multiple race rounds
    PortfolioSolver p(pc);
    const auto vars = load_cnf(p, cnf);
    const bool expected = brute_force_sat(cnf, {});
    ASSERT_EQ(p.solve() == SolveResult::kSat, expected) << "trial " << trial;
    if (expected) expect_model_satisfies(cnf, vars, p);
  }
}

TEST(Portfolio, ByteIdenticalAcrossPoolThreadCounts) {
  struct Snapshot {
    SolveResult sat_verdict;
    SolveResult unsat_verdict;
    std::size_t winner;
    std::vector<bool> model;
    std::uint64_t summed_conflicts;
    std::string counters;
  };

  Rng cnf_rng(31337);
  const Cnf sat_instance = random_cnf(24, 70, cnf_rng);

  std::vector<Snapshot> snapshots;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    support::set_pool_thread_count(threads);
    obs::MetricsRegistry::global().reset_values();

    Snapshot snap;
    {
      PortfolioConfig pc;
      pc.workers = 4;
      pc.round_base_conflicts = 8;
      PortfolioSolver p(pc);
      const auto vars = load_cnf(p, sat_instance);
      snap.sat_verdict = p.solve();
      snap.winner = p.last_winner();
      if (snap.sat_verdict == SolveResult::kSat)
        for (const Var v : vars) snap.model.push_back(p.model_value(v));
      snap.summed_conflicts = p.stats().conflicts;
    }
    {
      PortfolioConfig pc;
      pc.workers = 4;
      pc.round_base_conflicts = 8;
      PortfolioSolver p(pc);
      encode_pigeonhole(p, 6);
      snap.unsat_verdict = p.solve();
      snap.summed_conflicts += p.stats().conflicts;
    }
    snap.counters = obs::MetricsRegistry::global().counters_json();
    snapshots.push_back(std::move(snap));
  }
  support::set_pool_thread_count(1);

  ASSERT_EQ(snapshots.size(), 4u);
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].sat_verdict, snapshots[0].sat_verdict);
    EXPECT_EQ(snapshots[i].unsat_verdict, snapshots[0].unsat_verdict);
    EXPECT_EQ(snapshots[i].winner, snapshots[0].winner);
    EXPECT_EQ(snapshots[i].model, snapshots[0].model);
    EXPECT_EQ(snapshots[i].summed_conflicts, snapshots[0].summed_conflicts);
    EXPECT_EQ(snapshots[i].counters, snapshots[0].counters);
  }
  EXPECT_EQ(snapshots[0].unsat_verdict, SolveResult::kUnsat);
}

TEST(Portfolio, SingleWorkerMatchesPlainSolver) {
  Rng rng(7);
  const Cnf cnf = random_cnf(10, 30, rng);
  Solver plain;
  const auto plain_vars = load_cnf(plain, cnf);
  PortfolioSolver single;  // default config: one worker
  const auto port_vars = load_cnf(single, cnf);
  const SolveResult a = plain.solve();
  const SolveResult b = single.solve();
  ASSERT_EQ(a, b);
  if (a == SolveResult::kSat) {
    for (std::size_t i = 0; i < plain_vars.size(); ++i)
      EXPECT_EQ(plain.model_value(plain_vars[i]),
                single.model_value(port_vars[i]));
  }
}

// ----------------------------------------- attack-plane integration

TEST(OracleLifetime, OracleOwnsItsNetlistCopy) {
  // Regression: from_netlist used to capture the argument by reference, so
  // querying the oracle after the netlist died was a use-after-free.
  std::unique_ptr<attack::CircuitOracle> oracle;
  {
    const circuit::Netlist original = circuit::ripple_carry_adder(2);
    oracle = std::make_unique<attack::CircuitOracle>(
        attack::CircuitOracle::from_netlist(original));
  }
  // 1 + 1 = 2 on the 2-bit adder (inputs a | b << 2, 3 sum outputs).
  const BitVec out = oracle->query(BitVec(4, 0b0101));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FALSE(out.get(0));
  EXPECT_TRUE(out.get(1));
  EXPECT_FALSE(out.get(2));
  EXPECT_EQ(oracle->queries(), 1u);
}

TEST(EquivalenceChecker, AnswersManyKeysFromOneEncoding) {
  const circuit::Netlist original = circuit::ripple_carry_adder(3);
  Rng rng(42);
  const lock::LockedCircuit locked = lock::lock_random_xor(original, 8, rng);
  attack::EquivalenceChecker checker(original, locked);

  EXPECT_TRUE(checker.equivalent(locked.correct_key));
  for (std::size_t bit = 0; bit < 8; ++bit) {
    BitVec wrong = locked.correct_key;
    wrong.set(bit, !wrong.get(bit));
    EXPECT_FALSE(checker.equivalent(wrong)) << "flipped bit " << bit;
  }
  // The one-shot wrapper agrees.
  EXPECT_TRUE(attack::keys_equivalent(original, locked, locked.correct_key));
}

TEST(SatAttackPortfolio, PortfolioAndInlineAttacksRecoverEquivalentKeys) {
  const circuit::Netlist original = circuit::ripple_carry_adder(4);
  Rng rng(2718);
  const lock::LockedCircuit locked = lock::lock_random_xor(original, 10, rng);

  attack::CircuitOracle oracle_a = attack::CircuitOracle::from_netlist(original);
  const auto inline_result = attack::sat_attack(locked, oracle_a);
  ASSERT_TRUE(inline_result.success);
  EXPECT_TRUE(attack::keys_equivalent(original, locked, inline_result.key));

  attack::SatAttackConfig config;
  config.portfolio_workers = 4;
  config.portfolio_round_conflicts = 64;
  attack::CircuitOracle oracle_b = attack::CircuitOracle::from_netlist(original);
  const auto portfolio_result = attack::sat_attack(locked, oracle_b, config);
  ASSERT_TRUE(portfolio_result.success);
  EXPECT_TRUE(attack::keys_equivalent(original, locked, portfolio_result.key));
}

}  // namespace
