// Tests for the linear learners: feature maps, Perceptron, logistic
// regression — including the representation pitfall (Section V-A): the same
// Perceptron that masters an arbiter PUF in parity-feature space fails in
// raw challenge space.
#include <gtest/gtest.h>

#include "ml/features.hpp"
#include "ml/linear_model.hpp"
#include "ml/logistic.hpp"
#include "ml/perceptron.hpp"
#include "puf/arbiter.hpp"
#include "puf/crp.hpp"
#include "support/combinatorics.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::ml;
using pitfalls::puf::ArbiterPuf;
using pitfalls::puf::CrpSet;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// ------------------------------------------------------------- features

TEST(Features, PmWithBias) {
  const auto phi = pm_with_bias(BitVec::from_string("011"));
  EXPECT_EQ(phi, (std::vector<double>{1.0, -1.0, -1.0, 1.0}));
}

TEST(Features, ParityWithBiasMatchesArbiterMap) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec c(9);
    for (std::size_t i = 0; i < 9; ++i) c.set(i, rng.coin());
    const auto phi = parity_with_bias(c);
    const auto reference = ArbiterPuf::feature_map(c);
    ASSERT_EQ(phi.size(), reference.size());
    for (std::size_t i = 0; i < phi.size(); ++i)
      EXPECT_DOUBLE_EQ(phi[i], static_cast<double>(reference[i]));
  }
}

TEST(Features, MonomialFeaturesMatchCharacters) {
  const BitVec x = BitVec::from_string("01");
  const auto phi = monomial_features(x, 2);
  // Subsets in order: {}, {0}, {1}, {0,1}.
  EXPECT_EQ(phi, (std::vector<double>{1.0, 1.0, -1.0, -1.0}));
  EXPECT_EQ(monomial_features(x, 1).size(),
            pitfalls::support::binomial_sum(2, 1));
}

TEST(LinearModel, ScoreAndSign) {
  LinearModel model(2, {1.0, -2.0, 0.5}, pm_with_bias, "test");
  const BitVec x = BitVec::from_string("01");  // phi = (1, -1, 1)
  EXPECT_DOUBLE_EQ(model.score(x), 1.0 + 2.0 + 0.5);
  EXPECT_EQ(model.eval_pm(x), +1);
}

TEST(LinearModel, ValidatesDimensions) {
  EXPECT_THROW(LinearModel(2, {}, pm_with_bias), std::invalid_argument);
  LinearModel model(2, {1.0, 1.0}, pm_with_bias);  // wrong dim discovered on use
  EXPECT_THROW(model.score(BitVec(2)), std::invalid_argument);
}

// ----------------------------------------------------------- perceptron

TEST(Perceptron, ConvergesOnSeparableData) {
  Rng rng(11);
  // Labels from a planted LTF in pm-feature space.
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  const std::vector<double> w{1.5, -2.0, 0.7, 0.1, 0.5};
  for (int i = 0; i < 300; ++i) {
    std::vector<double> row(5);
    for (auto& v : row) v = rng.gaussian();
    double score = 0.0;
    for (std::size_t j = 0; j < 5; ++j) score += w[j] * row[j];
    if (std::abs(score) < 0.1) continue;  // keep a margin
    X.push_back(row);
    y.push_back(score < 0 ? -1 : +1);
  }
  const Perceptron learner;
  const auto result = learner.fit(X, y, rng);
  EXPECT_TRUE(result.converged);
  // Zero training error after convergence.
  for (std::size_t i = 0; i < X.size(); ++i) {
    double score = 0.0;
    for (std::size_t j = 0; j < 5; ++j) score += result.weights[j] * X[i][j];
    EXPECT_EQ(score < 0 ? -1 : +1, y[i]);
  }
}

TEST(Perceptron, LearnsArbiterPufInParityFeatures) {
  Rng rng(13);
  const ArbiterPuf puf(24, 0.0, rng);
  Rng collect(14);
  const CrpSet all = CrpSet::collect_uniform(puf, 3000, collect);
  const auto [train, test] = all.split_at(2000);

  Rng train_rng(15);
  const Perceptron learner;
  const LinearModel model = learner.fit_model(
      train.challenges(), train.responses(), parity_with_bias, train_rng);
  EXPECT_GT(test.accuracy_of(model), 0.95);
}

TEST(Perceptron, RawFeaturesFailOnArbiterPuf) {
  // Representation pitfall: in raw +/-1 challenge space the arbiter PUF is
  // not linearly separable and accuracy stalls far below the parity-feature
  // result.
  Rng rng(17);
  const ArbiterPuf puf(24, 0.0, rng);
  Rng collect(18);
  const CrpSet all = CrpSet::collect_uniform(puf, 3000, collect);
  const auto [train, test] = all.split_at(2000);

  Rng train_rng(19);
  const Perceptron learner;
  const LinearModel raw = learner.fit_model(
      train.challenges(), train.responses(), pm_with_bias, train_rng);
  const LinearModel parity = learner.fit_model(
      train.challenges(), train.responses(), parity_with_bias, train_rng);
  EXPECT_LT(test.accuracy_of(raw), test.accuracy_of(parity) - 0.15);
}

TEST(Perceptron, AveragedVariantAlsoLearns) {
  Rng rng(21);
  const ArbiterPuf puf(16, 0.0, rng);
  Rng collect(22);
  const CrpSet all = CrpSet::collect_uniform(puf, 2000, collect);
  const auto [train, test] = all.split_at(1500);

  PerceptronConfig config;
  config.averaged = true;
  Rng train_rng(23);
  const LinearModel model =
      Perceptron(config).fit_model(train.challenges(), train.responses(),
                                   parity_with_bias, train_rng);
  EXPECT_GT(test.accuracy_of(model), 0.93);
}

TEST(Perceptron, TracksMistakes) {
  Rng rng(25);
  std::vector<std::vector<double>> X{{1.0, 1.0}, {-1.0, 1.0}};
  std::vector<int> y{+1, -1};
  const auto result = Perceptron().fit(X, y, rng);
  EXPECT_GT(result.mistakes, 0u);  // at least the first update
  EXPECT_TRUE(result.converged);
}

TEST(Perceptron, ValidatesInputs) {
  Rng rng(1);
  const Perceptron learner;
  EXPECT_THROW(learner.fit({}, {}, rng), std::invalid_argument);
  EXPECT_THROW(learner.fit({{1.0}}, {2}, rng), std::invalid_argument);
  EXPECT_THROW(learner.fit({{1.0}, {1.0, 2.0}}, {1, -1}, rng),
               std::invalid_argument);
}

// ------------------------------------------------------------- logistic

TEST(Logistic, LearnsArbiterPufInParityFeatures) {
  Rng rng(27);
  const ArbiterPuf puf(24, 0.0, rng);
  Rng collect(28);
  const CrpSet all = CrpSet::collect_uniform(puf, 4000, collect);
  const auto [train, test] = all.split_at(3000);

  Rng train_rng(29);
  const LogisticRegression learner;
  const LinearModel model = learner.fit_model(
      train.challenges(), train.responses(), parity_with_bias, train_rng);
  EXPECT_GT(test.accuracy_of(model), 0.95);
}

TEST(Logistic, ToleratesResponseNoiseBetterThanItsTrainingError) {
  // The classic empirical modeling-attack setting [8]: noisy CRPs in, still
  // a high-accuracy model of the ideal PUF out.
  Rng rng(31);
  const ArbiterPuf puf(16, 0.5, rng);
  Rng collect(32);
  const CrpSet noisy_train = CrpSet::collect_noisy(puf, 3000, collect);
  const CrpSet clean_test = CrpSet::collect_uniform(puf, 1500, collect);

  Rng train_rng(33);
  const LinearModel model =
      LogisticRegression().fit_model(noisy_train.challenges(),
                                     noisy_train.responses(),
                                     parity_with_bias, train_rng);
  EXPECT_GT(clean_test.accuracy_of(model), 0.9);
}

TEST(Logistic, ReportsLossAndIterations) {
  Rng rng(35);
  std::vector<std::vector<double>> X{{1.0, 1.0}, {-1.0, 1.0}, {0.5, 1.0}};
  std::vector<int> y{+1, -1, +1};
  LogisticResult stats;
  const auto result = LogisticRegression().fit(X, y, rng);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_GE(result.final_loss, 0.0);
  (void)stats;
}

TEST(Logistic, ValidatesInputs) {
  Rng rng(1);
  const LogisticRegression learner;
  EXPECT_THROW(learner.fit({}, {}, rng), std::invalid_argument);
  EXPECT_THROW(learner.fit({{1.0}}, {0}, rng), std::invalid_argument);
}

}  // namespace
