// Tests for DIMACS CNF I/O and the structural netlist analysis utilities.
#include <gtest/gtest.h>

#include "circuit/analysis.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/generator.hpp"
#include "lock/combinational.hpp"
#include "sat/dimacs.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using circuit::GateType;
using circuit::Netlist;
using support::BitVec;
using support::Rng;

// --------------------------------------------------------------- DIMACS

TEST(Dimacs, ParsesWellFormedInstance) {
  const auto instance = sat::read_dimacs(R"(
c a comment
p cnf 3 2
1 -2 0
2 3 0
)");
  EXPECT_EQ(instance.num_vars, 3u);
  ASSERT_EQ(instance.clauses.size(), 2u);
  EXPECT_EQ(instance.clauses[0].size(), 2u);
  EXPECT_EQ(instance.clauses[0][0].var(), 0u);
  EXPECT_FALSE(instance.clauses[0][0].negated());
  EXPECT_TRUE(instance.clauses[0][1].negated());
}

TEST(Dimacs, RoundTripPreservesInstance) {
  Rng rng(1);
  sat::DimacsInstance instance;
  instance.num_vars = 12;
  for (int c = 0; c < 30; ++c) {
    std::vector<sat::Lit> clause;
    for (int l = 0; l < 3; ++l)
      clause.push_back(sat::Lit(static_cast<sat::Var>(rng.uniform_below(12)),
                                rng.coin()));
    instance.clauses.push_back(clause);
  }
  const auto reparsed = sat::read_dimacs(sat::write_dimacs(instance));
  EXPECT_EQ(reparsed.num_vars, instance.num_vars);
  ASSERT_EQ(reparsed.clauses.size(), instance.clauses.size());
  for (std::size_t c = 0; c < instance.clauses.size(); ++c)
    EXPECT_EQ(reparsed.clauses[c], instance.clauses[c]);
}

TEST(Dimacs, LoadIntoSolverSolves) {
  // (x1 | x2) & (~x1) & (~x2 | x3): forced model x1=0, x2=1, x3=1.
  const auto instance = sat::read_dimacs("p cnf 3 3\n1 2 0\n-1 0\n-2 3 0\n");
  sat::Solver solver;
  const auto vars = sat::load_into(solver, instance);
  ASSERT_EQ(solver.solve(), sat::SolveResult::kSat);
  EXPECT_FALSE(solver.model_value(vars[0]));
  EXPECT_TRUE(solver.model_value(vars[1]));
  EXPECT_TRUE(solver.model_value(vars[2]));
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(sat::read_dimacs("1 2 0\n"), std::invalid_argument);  // no hdr
  EXPECT_THROW(sat::read_dimacs("p cnf 2 1\n3 0\n"),
               std::invalid_argument);  // var out of range
  EXPECT_THROW(sat::read_dimacs("p cnf 2 2\n1 0\n"),
               std::invalid_argument);  // clause count mismatch
  EXPECT_THROW(sat::read_dimacs("p cnf 2 1\n1 2\n"),
               std::invalid_argument);  // unterminated clause
  EXPECT_THROW(sat::read_dimacs("p cnf 2 1\np cnf 2 1\n1 0\n"),
               std::invalid_argument);  // duplicate header
}

// ------------------------------------------------------------- analysis

TEST(Analysis, StatsOfC17) {
  const auto stats = circuit::analyze(circuit::c17());
  EXPECT_EQ(stats.inputs, 5u);
  EXPECT_EQ(stats.outputs, 2u);
  EXPECT_EQ(stats.logic_gates, 6u);
  EXPECT_EQ(stats.depth, 3u);      // NAND chains of depth 3
  EXPECT_EQ(stats.dead_gates, 0u); // every c17 gate feeds an output
  EXPECT_GE(stats.max_fanout, 2u); // G11/G16 fan out twice
}

TEST(Analysis, DepthAndFanout) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g1 = n.add_gate(GateType::kAnd, {a, b});
  const auto g2 = n.add_gate(GateType::kNot, {g1});
  const auto g3 = n.add_gate(GateType::kOr, {g1, g2});
  n.mark_output(g3);
  const auto depth = circuit::gate_depths(n);
  EXPECT_EQ(depth[a], 0u);
  EXPECT_EQ(depth[g1], 1u);
  EXPECT_EQ(depth[g2], 2u);
  EXPECT_EQ(depth[g3], 3u);
  const auto fanout = circuit::fanouts(n);
  EXPECT_EQ(fanout[g1], 2u);
  EXPECT_EQ(fanout[g3], 0u);
}

TEST(Analysis, DeadGateDetection) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto live = n.add_gate(GateType::kNot, {a});
  const auto dead = n.add_gate(GateType::kNot, {live});
  n.mark_output(live);
  (void)dead;
  const auto stats = circuit::analyze(n);
  EXPECT_EQ(stats.dead_gates, 1u);
  const auto cone = circuit::output_cone(n);
  EXPECT_TRUE(cone[live]);
  EXPECT_FALSE(cone[dead]);
}

TEST(Analysis, SimplifyFoldsConstants) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto one = n.add_gate(GateType::kConst1, {});
  const auto zero = n.add_gate(GateType::kConst0, {});
  const auto and_gate = n.add_gate(GateType::kAnd, {a, one});   // = a
  const auto or_gate = n.add_gate(GateType::kOr, {and_gate, zero});  // = a
  const auto xor_gate = n.add_gate(GateType::kXor, {or_gate, one});  // = !a
  n.mark_output(xor_gate);

  const Netlist simplified = circuit::simplify(n);
  EXPECT_TRUE(circuit::equivalent_exhaustive(n, simplified));
  // One NOT gate should remain.
  EXPECT_LE(simplified.logic_gate_count(), 1u);
}

TEST(Analysis, SimplifyRemovesDeadLogic) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto live = n.add_gate(GateType::kXor, {a, b});
  // A dead cone of 3 gates.
  const auto d1 = n.add_gate(GateType::kAnd, {a, b});
  const auto d2 = n.add_gate(GateType::kNot, {d1});
  (void)n.add_gate(GateType::kOr, {d1, d2});
  n.mark_output(live);

  const Netlist simplified = circuit::simplify(n);
  EXPECT_TRUE(circuit::equivalent_exhaustive(n, simplified));
  EXPECT_EQ(simplified.logic_gate_count(), 1u);
  EXPECT_EQ(simplified.num_inputs(), 2u);  // inputs always preserved
}

TEST(Analysis, SimplifyHandlesAliasedOutputs) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto buf1 = n.add_gate(GateType::kBuf, {a});
  const auto buf2 = n.add_gate(GateType::kBuf, {a});
  n.mark_output(buf1);
  n.mark_output(buf2);
  const Netlist simplified = circuit::simplify(n);
  EXPECT_EQ(simplified.num_outputs(), 2u);
  EXPECT_TRUE(circuit::equivalent_exhaustive(n, simplified));
}

class SimplifyProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyProperty, PreservesFunctionOnRandomCircuits) {
  Rng rng(1000 + GetParam());
  circuit::RandomCircuitConfig config;
  config.inputs = 6;
  config.gates = 40;
  config.outputs = 3;
  const Netlist original = circuit::random_circuit(config, rng);
  const Netlist simplified = circuit::simplify(original);
  EXPECT_TRUE(circuit::equivalent_exhaustive(original, simplified));
  EXPECT_LE(simplified.logic_gate_count(), original.logic_gate_count() + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty, ::testing::Range(0, 10));

TEST(Analysis, SimplifyIsIdempotentOnFunction) {
  Rng rng(99);
  circuit::RandomCircuitConfig config;
  config.inputs = 5;
  config.gates = 30;
  const Netlist original = circuit::random_circuit(config, rng);
  const Netlist once = circuit::simplify(original);
  const Netlist twice = circuit::simplify(once);
  EXPECT_TRUE(circuit::equivalent_exhaustive(once, twice));
  EXPECT_EQ(once.logic_gate_count(), twice.logic_gate_count());
}

TEST(Analysis, SpecializePinsInputsToConstants) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g);
  // Pin b = 1: function becomes identity on a, with one remaining input.
  const Netlist special = circuit::specialize(n, {{1, true}});
  EXPECT_EQ(special.num_inputs(), 1u);
  EXPECT_FALSE(special.evaluate(BitVec(1, 0)).get(0));
  EXPECT_TRUE(special.evaluate(BitVec(1, 1)).get(0));
  EXPECT_THROW(circuit::specialize(n, {{5, true}}), std::invalid_argument);
  EXPECT_THROW(circuit::specialize(n, {{0, true}, {0, false}}),
               std::invalid_argument);
}

TEST(Analysis, SpecializeHandlesPinnedOutputs) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.mark_output(a);
  n.mark_output(b);
  const Netlist special = circuit::specialize(n, {{0, true}, {1, true}});
  EXPECT_EQ(special.num_inputs(), 0u);
  EXPECT_EQ(special.num_outputs(), 2u);
  const BitVec out = special.evaluate(BitVec(0));
  EXPECT_TRUE(out.get(0));
  EXPECT_TRUE(out.get(1));
}

TEST(Analysis, ActivatedLockedCircuitSimplifiesToOriginal) {
  // Burn the correct key into a locked netlist and simplify: the result
  // must compute the original function — the "vendor activation" path.
  pitfalls::support::Rng rng(7);
  const Netlist original = circuit::c17();
  const auto locked = pitfalls::lock::lock_random_xor(original, 5, rng);

  std::vector<std::pair<std::size_t, bool>> pins;
  for (std::size_t i = 0; i < locked.num_key_inputs(); ++i)
    pins.emplace_back(locked.key_input_positions[i],
                      locked.correct_key.get(i));
  const Netlist activated =
      circuit::simplify(circuit::specialize(locked.netlist, pins));

  EXPECT_EQ(activated.num_inputs(), original.num_inputs());
  EXPECT_TRUE(circuit::equivalent_exhaustive(original, activated));
  // The key gates must have melted away (close to the original size).
  EXPECT_LE(activated.logic_gate_count(), original.logic_gate_count() + 1);
}

TEST(Analysis, EquivalentExhaustiveDetectsDifferences) {
  const Netlist adder3 = circuit::ripple_carry_adder(3);
  const Netlist cmp3 = circuit::equality_comparator(3);
  EXPECT_FALSE(circuit::equivalent_exhaustive(adder3, cmp3));
  EXPECT_TRUE(circuit::equivalent_exhaustive(adder3, adder3));
}

}  // namespace
