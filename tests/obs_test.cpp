// The observability layer: JSON writer/parser, metrics registry, trace
// spans, oracle query accounting, CSV export and the bench reporter's
// JSON files.
#include <cstdio>
#include <fstream>  // lint:raw-io-ok (tests read back reporter artefacts)
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boolfn/boolean_function.hpp"
#include "ml/oracle.hpp"
#include "obs/bench_reporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using obs::JsonValue;
using obs::JsonWriter;
using support::BitVec;
using support::Table;

// ------------------------------------------------------------- JSON writer

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(JsonWriter::escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // UTF-8 bytes pass through untouched.
  EXPECT_EQ(JsonWriter::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeQuotedMarkers) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(-std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(1.5)
      .end_array();
  EXPECT_EQ(w.str(), "[\"inf\",\"-inf\",\"nan\",1.5]");
}

TEST(JsonWriterTest, ManagesCommasAndNesting) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array().value(true).null_value().end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[true,null],\"c\":{}}");
}

TEST(JsonWriterTest, RejectsMalformedDocuments) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::invalid_argument);  // unclosed container
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::invalid_argument);  // value without key
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.end_object(), std::invalid_argument);
  }
}

// ------------------------------------------------------------- JSON parser

TEST(JsonParserTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("bench \"x\"\n");
  w.key("pi").value(3.25);
  w.key("n").value(std::uint64_t{42});
  w.key("ok").value(false);
  w.key("rows").begin_array().value("a,b").value("-inf").end_array();
  w.end_object();

  const JsonValue doc = JsonValue::parse(w.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->string_value, "bench \"x\"\n");
  EXPECT_DOUBLE_EQ(doc.find("pi")->number_value, 3.25);
  EXPECT_DOUBLE_EQ(doc.find("n")->number_value, 42.0);
  EXPECT_FALSE(doc.find("ok")->bool_value);
  ASSERT_EQ(doc.find("rows")->items.size(), 2u);
  EXPECT_EQ(doc.find("rows")->items[1].string_value, "-inf");
}

TEST(JsonParserTest, DecodesUnicodeEscapesIncludingSurrogatePairs) {
  const JsonValue v = JsonValue::parse("\"\\u0041\\u00e9\\u20ac\"");
  EXPECT_EQ(v.string_value, "A\xc3\xa9\xe2\x82\xac");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  const JsonValue emoji = JsonValue::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(emoji.string_value, "\xf0\x9f\x98\x80");
}

TEST(JsonParserTest, ThrowsOnMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);  // trailing
  EXPECT_THROW(JsonValue::parse("truth"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"\\ude00\""), std::runtime_error);
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, HistogramSummaryOnEmptySingleAndSkewedData) {
  obs::Histogram h;
  const auto empty = h.summary();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p50, 0.0);
  EXPECT_EQ(empty.p95, 0.0);

  h.observe(7.0);
  const auto single = h.summary();
  EXPECT_EQ(single.count, 1u);
  EXPECT_EQ(single.min, 7.0);
  EXPECT_EQ(single.p50, 7.0);
  EXPECT_EQ(single.p95, 7.0);
  EXPECT_EQ(single.max, 7.0);

  h.reset();
  for (int i = 0; i < 9; ++i) h.observe(1.0);
  h.observe(100.0);  // one outlier dominates mean and p95 but not p50
  const auto skew = h.summary();
  EXPECT_EQ(skew.count, 10u);
  EXPECT_DOUBLE_EQ(skew.mean, 10.9);
  EXPECT_EQ(skew.p50, 1.0);
  EXPECT_EQ(skew.p95, 100.0);
  EXPECT_EQ(skew.max, 100.0);
}

TEST(MetricsTest, NearestRankPercentiles) {
  obs::Histogram h;
  for (const double v : {40.0, 10.0, 30.0, 20.0}) h.observe(v);
  const auto s = h.summary();
  // nearest-rank: sorted[ceil(q * 4) - 1] over {10,20,30,40}.
  EXPECT_EQ(s.p50, 20.0);
  EXPECT_EQ(s.p95, 40.0);
  EXPECT_EQ(s.min, 10.0);
  EXPECT_EQ(s.max, 40.0);
}

TEST(MetricsTest, RegistryResetValuesKeepsReferencesAlive) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("c");
  obs::Gauge& g = registry.gauge("g");
  obs::Histogram& h = registry.histogram("h");
  c.add(5);
  g.set(2.5);
  h.observe(1.0);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // The same reference is still wired to the same name.
  c.add(1);
  EXPECT_EQ(registry.counter("c").value(), 1u);
}

TEST(MetricsTest, SnapshotIsDeterministicAcrossRegistrationOrder) {
  obs::MetricsRegistry a;
  a.counter("zeta").add(3);
  a.counter("alpha").add(1);
  a.gauge("mid").set(0.5);
  a.histogram("t").observe(2.0);

  obs::MetricsRegistry b;
  b.histogram("t").observe(2.0);
  b.gauge("mid").set(0.5);
  b.counter("alpha").add(1);
  b.counter("zeta").add(3);

  EXPECT_EQ(a.snapshot_json(), b.snapshot_json());

  const JsonValue doc = JsonValue::parse(a.snapshot_json());
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->members.size(), 2u);
  EXPECT_EQ(counters->members[0].first, "alpha");  // name-sorted
  EXPECT_EQ(counters->members[1].first, "zeta");
  const JsonValue* hist = doc.find("histograms")->find("t");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number_value, 1.0);
  EXPECT_DOUBLE_EQ(hist->find("p50")->number_value, 2.0);
}

// ------------------------------------------------------------------- traces

TEST(TraceTest, NestedSpansRecordParentDepthAndOrdering) {
  obs::Tracer tracer;
  {
    obs::TraceSpan outer("outer", tracer);
    EXPECT_EQ(tracer.open_spans(), 1u);
    {
      obs::TraceSpan inner("inner", tracer);
      EXPECT_EQ(tracer.open_spans(), 2u);
      obs::TraceSpan leaf("leaf", tracer);
      EXPECT_EQ(tracer.open_spans(), 3u);
    }
    {
      obs::TraceSpan sibling("sibling", tracer);
    }
  }
  EXPECT_EQ(tracer.open_spans(), 0u);

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Snapshot order: sorted by start time, ids renumbered 0..n-1, so
  // parents precede their children.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "leaf");
  EXPECT_EQ(events[3].name, "sibling");

  const auto& outer = events[0];
  const auto& inner = events[1];
  const auto& leaf = events[2];
  const auto& sibling = events[3];
  EXPECT_EQ(outer.id, 0u);
  EXPECT_EQ(sibling.id, 3u);
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent, static_cast<std::ptrdiff_t>(outer.id));
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(leaf.parent, static_cast<std::ptrdiff_t>(inner.id));
  EXPECT_EQ(leaf.depth, 2u);
  EXPECT_EQ(sibling.parent, static_cast<std::ptrdiff_t>(outer.id));

  for (const auto& e : events) {
    EXPECT_GE(e.start_seconds, 0.0);
    EXPECT_GE(e.duration_seconds, 0.0);
  }
  // A child starts no earlier and ends no later than its parent.
  EXPECT_GE(inner.start_seconds, outer.start_seconds);
  EXPECT_LE(inner.start_seconds + inner.duration_seconds,
            outer.start_seconds + outer.duration_seconds + 1e-9);

  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TraceTest, WriteJsonEmitsOneObjectPerEvent) {
  obs::Tracer tracer;
  {
    obs::TraceSpan a("a", tracer);
    obs::TraceSpan b("b", tracer);
  }
  JsonWriter w;
  tracer.write_json(w);
  const JsonValue doc = JsonValue::parse(w.str());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.items.size(), 2u);
  // Start-sorted: the enclosing span "a" first, then its child "b".
  EXPECT_EQ(doc.items[0].find("name")->string_value, "a");
  EXPECT_EQ(doc.items[1].find("name")->string_value, "b");
  EXPECT_DOUBLE_EQ(doc.items[0].find("parent")->number_value, -1.0);
  EXPECT_DOUBLE_EQ(doc.items[1].find("parent")->number_value,
                   doc.items[0].find("id")->number_value);
  EXPECT_EQ(doc.items[0].find("kind")->string_value, "span");
}

TEST(TraceTest, ScopedTimerObservesUnlessCancelled) {
  obs::Histogram h;
  {
    obs::ScopedTimer t(h);
    EXPECT_GE(t.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.summary().min, 0.0);
  {
    obs::ScopedTimer t(h);
    t.cancel();
  }
  EXPECT_EQ(h.count(), 1u);
}

// --------------------------------------------------------- oracle counting

TEST(OracleCountingTest, PerPhaseResetKeepsLifetimeCount) {
  const boolfn::FunctionView parity(
      4, [](const BitVec& x) { return x.parity() ? -1 : +1; }, "parity");
  ml::FunctionMembershipOracle oracle(parity);

  BitVec x(4);
  for (int i = 0; i < 5; ++i) oracle.query_pm(x);
  EXPECT_EQ(oracle.queries(), 5u);
  EXPECT_EQ(oracle.lifetime_queries(), 5u);

  oracle.reset_queries();
  EXPECT_EQ(oracle.queries(), 0u);
  EXPECT_EQ(oracle.lifetime_queries(), 5u);

  for (int i = 0; i < 3; ++i) oracle.query_pm(x);
  EXPECT_EQ(oracle.queries(), 3u);
  EXPECT_EQ(oracle.lifetime_queries(), 8u);
}

TEST(OracleCountingTest, QueriesFeedTheGlobalRegistry) {
  const boolfn::FunctionView constant(
      3, [](const BitVec&) { return +1; }, "const");
  obs::Counter& global =
      obs::MetricsRegistry::global().counter("oracle.membership_queries");
  const std::uint64_t before = global.value();
  ml::FunctionMembershipOracle oracle(constant);
  BitVec x(3);
  oracle.query_pm(x);
  oracle.query_pm(x);
  EXPECT_EQ(global.value(), before + 2);
}

// -------------------------------------------------------------- CSV export

TEST(TableCsvTest, QuotesDelimitersQuotesAndNewlines) {
  Table table({"name", "value, unit", "note"});
  table.add_row({"plain", "1", "ok"});
  table.add_row({"com,ma", "say \"hi\"", "two\nlines"});
  EXPECT_EQ(table.to_csv(),
            "name,\"value, unit\",note\n"
            "plain,1,ok\n"
            "\"com,ma\",\"say \"\"hi\"\"\",\"two\nlines\"\n");
}

// ---------------------------------------------------------- bench reporter

TEST(BenchReporterTest, FinishWritesSchemaV1Json) {
  const std::string path = testing::TempDir() + "/BENCH_obs_test.json";
  std::remove(path.c_str());

  const std::string json_flag = "--json=" + path;
  const char* argv[] = {"bench_obs_test", json_flag.c_str(), "--smoke"};
  obs::BenchReporter reporter("obs_test", 3, const_cast<char**>(argv));
  EXPECT_TRUE(reporter.smoke());
  EXPECT_TRUE(reporter.json_enabled());

  Table table({"k", "accuracy [%]"});
  table.add_row({"1", "99.0"});
  table.add_row({"2", "75.5"});
  std::ostringstream sink;
  reporter.print(sink, table, "-- demo --");
  // print() emits exactly Table::print's bytes.
  std::ostringstream expected;
  table.print(expected, "-- demo --");
  EXPECT_EQ(sink.str(), expected.str());

  reporter.note("n", 14.0);
  reporter.note("mode", "unit-test");
  ASSERT_EQ(reporter.finish(), 0);

  std::ifstream in(path);  // lint:raw-io-ok
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buffer.str());

  EXPECT_DOUBLE_EQ(doc.find("schema_version")->number_value, 1.0);
  EXPECT_EQ(doc.find("bench")->string_value, "obs_test");
  EXPECT_TRUE(doc.find("smoke")->bool_value);
  EXPECT_GE(doc.find("wall_seconds")->number_value, 0.0);

  const JsonValue* notes = doc.find("notes");
  ASSERT_NE(notes, nullptr);
  EXPECT_DOUBLE_EQ(notes->find("n")->number_value, 14.0);
  EXPECT_EQ(notes->find("mode")->string_value, "unit-test");

  const JsonValue* tables = doc.find("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->items.size(), 1u);
  const JsonValue& recorded = tables->items[0];
  EXPECT_EQ(recorded.find("title")->string_value, "-- demo --");
  ASSERT_EQ(recorded.find("headers")->items.size(), 2u);
  EXPECT_EQ(recorded.find("headers")->items[1].string_value, "accuracy [%]");
  ASSERT_EQ(recorded.find("rows")->items.size(), 2u);
  EXPECT_EQ(recorded.find("rows")->items[1].items[1].string_value, "75.5");

  // finish() pre-registers the oracle counters: the core key set is shared
  // by every bench JSON, oracle-driven or not.
  const JsonValue* counters = doc.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("oracle.membership_queries"), nullptr);
  EXPECT_NE(counters->find("oracle.equivalence_calls"), nullptr);

  ASSERT_NE(doc.find("trace"), nullptr);
  EXPECT_TRUE(doc.find("trace")->is_array());

  std::remove(path.c_str());
}

TEST(BenchReporterTest, NoJsonFlagWritesNothing) {
  const char* argv[] = {"bench_obs_test"};
  obs::BenchReporter reporter("obs_test_nojson", 1, const_cast<char**>(argv));
  EXPECT_FALSE(reporter.smoke());
  EXPECT_FALSE(reporter.json_enabled());
  EXPECT_EQ(reporter.finish(), 0);
  std::ifstream in("BENCH_obs_test_nojson.json");  // lint:raw-io-ok
  EXPECT_FALSE(in.good());
}

}  // namespace
