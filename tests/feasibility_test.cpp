// Tests for the LMN-feasibility estimator and the applicable-bound planner.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adversary.hpp"
#include "core/bounds.hpp"
#include "core/feasibility.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using core::AdversaryModel;
using core::estimate_lmn_feasibility;
using core::LmnFeasibilityConfig;
using support::BitVec;
using support::Rng;

// ----------------------------------------------------------- feasibility

TEST(Feasibility, EffectiveKTracksChainCount) {
  // NS(h) = O(k sqrt(eps)) for k-XOR LTFs: the estimated effective k must
  // grow with the real k.
  Rng rng(1);
  Rng probe(2);
  const auto puf1 = puf::XorArbiterPuf::independent(24, 1, 0.0, rng);
  const auto puf4 = puf::XorArbiterPuf::independent(24, 4, 0.0, rng);
  const auto view1 = puf1.feature_space_view();
  const auto view4 = puf4.feature_space_view();
  const auto r1 = estimate_lmn_feasibility(view1, 1000000, probe);
  const auto r4 = estimate_lmn_feasibility(view4, 1000000, probe);
  EXPECT_GT(r4.effective_k, 1.5 * r1.effective_k);
  EXPECT_GT(r4.degree_cutoff, r1.degree_cutoff);
}

TEST(Feasibility, ParityIsMaximallyInfeasible) {
  // Full parity has NS ~ (1-(1-2eps)^n)/2 — huge effective k, astronomical
  // sample bound.
  const boolfn::FunctionView parity(
      24, [](const BitVec& x) { return x.parity() ? -1 : +1; }, "parity");
  Rng rng(3);
  const auto report = estimate_lmn_feasibility(parity, 1000000000, rng);
  EXPECT_FALSE(report.feasible_at_budget);
  EXPECT_TRUE(std::isinf(report.sample_bound) || report.sample_bound > 1e9);
}

TEST(Feasibility, DictatorIsFeasible) {
  // A dictator has NS = eps: effective k ~ sqrt(eps) << 1, tiny cutoff.
  const boolfn::FunctionView dictator(
      16, [](const BitVec& x) { return x.pm_one(0); }, "dictator");
  Rng rng(5);
  LmnFeasibilityConfig config;
  config.attack_eps = 0.25;
  const auto report =
      estimate_lmn_feasibility(dictator, 1000000, rng, config);
  EXPECT_LT(report.degree_cutoff, 2.0);
  EXPECT_TRUE(report.feasible_at_budget);
}

TEST(Feasibility, ReportContainsProbes) {
  const boolfn::FunctionView dictator(
      8, [](const BitVec& x) { return x.pm_one(0); }, "dictator");
  Rng rng(7);
  LmnFeasibilityConfig config;
  config.probe_eps = {0.01, 0.1};
  const auto report = estimate_lmn_feasibility(dictator, 1000, rng, config);
  ASSERT_EQ(report.noise_sensitivity.size(), 2u);
  EXPECT_NEAR(report.noise_sensitivity[0].second, 0.01, 0.01);
  EXPECT_NEAR(report.noise_sensitivity[1].second, 0.1, 0.02);
}

TEST(Feasibility, ValidatesConfig) {
  const boolfn::FunctionView f(4, [](const BitVec&) { return +1; }, "one");
  Rng rng(9);
  LmnFeasibilityConfig config;
  config.probe_eps = {};
  EXPECT_THROW(estimate_lmn_feasibility(f, 100, rng, config),
               std::invalid_argument);
  config.probe_eps = {0.6};
  EXPECT_THROW(estimate_lmn_feasibility(f, 100, rng, config),
               std::invalid_argument);
}

// ------------------------------------------------------ applicable bound

TEST(ApplicableBound, MembershipQueriesSelectCorollaryTwo) {
  AdversaryModel attacker;
  attacker.access = core::AccessType::kMembershipQueries;
  std::string rationale;
  const auto row =
      core::applicable_bound(attacker, 64, 4, 0.25, 0.01, &rationale);
  EXPECT_EQ(row.source, "Corollary 2");
  EXPECT_NE(rationale.find("membership"), std::string::npos);
}

TEST(ApplicableBound, UniformSamplesSelectGeneralBound) {
  AdversaryModel attacker;
  attacker.distribution = core::DistributionAssumption::kUniform;
  attacker.access = core::AccessType::kRandomExamples;
  const auto row = core::applicable_bound(attacker, 64, 4, 0.05, 0.01);
  EXPECT_EQ(row.source, "General");
}

TEST(ApplicableBound, DistributionFreeSelectsPerceptronRow) {
  AdversaryModel attacker;  // defaults: arbitrary distribution, random ex.
  std::string rationale;
  const auto row =
      core::applicable_bound(attacker, 64, 4, 0.05, 0.01, &rationale);
  EXPECT_EQ(row.source, "[9]");
  EXPECT_NE(rationale.find("algorithm-specific"), std::string::npos);
}

TEST(ApplicableBound, StrongerAccessYieldsSmallerBoundHere) {
  // For these parameters the MQ bound is far below the distribution-free
  // one — the access axis pays.
  AdversaryModel passive;
  AdversaryModel active;
  active.access = core::AccessType::kMembershipAndEquivalence;
  const double passive_bound =
      core::applicable_bound(passive, 64, 5, 0.25, 0.01).value;
  const double active_bound =
      core::applicable_bound(active, 64, 5, 0.25, 0.01).value;
  EXPECT_LT(active_bound, passive_bound);
}

}  // namespace
