// Tests for the empirical XOR-PUF modeling attack (Ruehrmair et al. [8]).
#include <gtest/gtest.h>

#include "ml/xor_model.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::ml;
using pitfalls::puf::CrpSet;
using pitfalls::puf::XorArbiterPuf;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

TEST(XorChainModel, EvaluatesProductOfSigns) {
  // Two dictator chains: chain 0 = sign of phi_0, chain 1 = sign of phi_1.
  std::vector<std::vector<double>> w{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const XorChainModel model(2, std::move(w), pm_with_bias);
  // pm features: (chi(x0), chi(x1), 1).
  EXPECT_EQ(model.eval_pm(BitVec::from_string("00")), +1);  // +1 * +1
  EXPECT_EQ(model.eval_pm(BitVec::from_string("10")), -1);  // -1 * +1
  EXPECT_EQ(model.eval_pm(BitVec::from_string("11")), +1);  // -1 * -1
}

TEST(XorChainModel, SoftResponseBounded) {
  std::vector<std::vector<double>> w{{3.0, -2.0, 0.5}};
  const XorChainModel model(2, std::move(w), pm_with_bias);
  Rng rng(1);
  for (int t = 0; t < 50; ++t) {
    BitVec x(2);
    x.set(0, rng.coin());
    x.set(1, rng.coin());
    const double soft = model.soft_response(x);
    EXPECT_GE(soft, -1.0);
    EXPECT_LE(soft, 1.0);
    // Sign of the soft response matches the hard response.
    EXPECT_EQ(soft < 0 ? -1 : +1, model.eval_pm(x));
  }
}

TEST(XorChainModel, ValidatesConstruction) {
  EXPECT_THROW(XorChainModel(2, {}, pm_with_bias), std::invalid_argument);
  EXPECT_THROW(XorChainModel(2, {{1.0, 2.0}, {1.0}}, pm_with_bias),
               std::invalid_argument);
}

class XorAttackRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XorAttackRecovery, LearnsKXorArbiterPufs) {
  const std::size_t k = GetParam();
  Rng rng(100 + k);
  const XorArbiterPuf puf = XorArbiterPuf::independent(32, k, 0.0, rng);
  Rng collect(200 + k);
  const std::size_t budget = 2000 * k * k;  // empirical scaling
  const CrpSet train = CrpSet::collect_uniform(puf, budget, collect);
  const CrpSet test = CrpSet::collect_uniform(puf, 3000, collect);

  XorModelConfig config;
  config.chains = k;
  config.restarts = 5;
  Rng attack_rng(300 + k);
  XorModelResult stats;
  const XorChainModel model = XorModelAttack(config).fit(
      train.challenges(), train.responses(), parity_with_bias, attack_rng,
      &stats);
  EXPECT_GT(test.accuracy_of(model), 0.9)
      << "k=" << k << " train acc " << stats.train_accuracy;
}

INSTANTIATE_TEST_SUITE_P(Chains, XorAttackRecovery,
                         ::testing::Values(1, 2, 3));

TEST(XorAttack, SingleChainMatchesLogisticQuality) {
  Rng rng(11);
  const XorArbiterPuf puf = XorArbiterPuf::independent(48, 1, 0.0, rng);
  Rng collect(12);
  const CrpSet train = CrpSet::collect_uniform(puf, 3000, collect);
  const CrpSet test = CrpSet::collect_uniform(puf, 2000, collect);
  XorModelConfig config;
  config.chains = 1;
  Rng attack_rng(13);
  const XorChainModel model = XorModelAttack(config).fit(
      train.challenges(), train.responses(), parity_with_bias, attack_rng);
  EXPECT_GT(test.accuracy_of(model), 0.95);
}

TEST(XorAttack, ReportsStats) {
  Rng rng(21);
  const XorArbiterPuf puf = XorArbiterPuf::independent(16, 2, 0.0, rng);
  Rng collect(22);
  const CrpSet train = CrpSet::collect_uniform(puf, 4000, collect);
  XorModelConfig config;
  config.chains = 2;
  Rng attack_rng(23);
  XorModelResult stats;
  (void)XorModelAttack(config).fit(train.challenges(), train.responses(),
                                   parity_with_bias, attack_rng, &stats);
  EXPECT_GE(stats.restarts_used, 1u);
  EXPECT_GT(stats.train_accuracy, 0.5);
}

TEST(XorAttack, NoiseToleranceDegradesGracefully) {
  // The [8] observation: the attack tolerates measurement noise in the
  // training labels.
  Rng rng(31);
  const XorArbiterPuf puf = XorArbiterPuf::independent(32, 2, 0.5, rng);
  Rng collect(32);
  const CrpSet noisy_train = CrpSet::collect_noisy(puf, 8000, collect);
  const CrpSet clean_test = CrpSet::collect_uniform(puf, 3000, collect);
  XorModelConfig config;
  config.chains = 2;
  config.restarts = 5;
  config.target_train_accuracy = 0.95;  // noise caps attainable train acc
  Rng attack_rng(33);
  const XorChainModel model =
      XorModelAttack(config).fit(noisy_train.challenges(),
                                 noisy_train.responses(), parity_with_bias,
                                 attack_rng);
  EXPECT_GT(clean_test.accuracy_of(model), 0.85);
}

TEST(XorAttack, ValidatesInputs) {
  Rng rng(1);
  XorModelConfig config;
  const XorModelAttack attack(config);
  EXPECT_THROW(attack.fit({}, {}, pm_with_bias, rng), std::invalid_argument);
  EXPECT_THROW(attack.fit({BitVec(4)}, {2}, pm_with_bias, rng),
               std::invalid_argument);
}

}  // namespace
