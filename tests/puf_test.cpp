// Unit and property tests for pitfalls::puf: arbiter, XOR-arbiter and
// bistable-ring simulators, CRP collection and PUF metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "boolfn/fourier.hpp"
#include "boolfn/truth_table.hpp"
#include "puf/arbiter.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "puf/metrics.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::puf;
using pitfalls::boolfn::FourierSpectrum;
using pitfalls::boolfn::TruthTable;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// -------------------------------------------------------------- Arbiter

TEST(ArbiterPuf, FeatureMapIsSuffixParity) {
  const BitVec c = BitVec::from_string("0110");
  const auto phi = ArbiterPuf::feature_map(c);
  ASSERT_EQ(phi.size(), 5u);
  // phi_i = prod_{j>=i} (1-2c_j): c = 0,1,1,0 -> signs +,-,-,+
  EXPECT_EQ(phi[3], +1);           // (1-2*0)
  EXPECT_EQ(phi[2], -1);           // (1-2*1)*(+1)
  EXPECT_EQ(phi[1], +1);           // (1-2*1)*(-1)
  EXPECT_EQ(phi[0], +1);           // (1-2*0)*(+1)
  EXPECT_EQ(phi[4], 1);            // bias feature
}

TEST(ArbiterPuf, DeterministicWithoutNoise) {
  Rng rng(1);
  const ArbiterPuf puf(16, 0.0, rng);
  Rng noise(2);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec c(16);
    for (std::size_t i = 0; i < 16; ++i) c.set(i, noise.coin());
    EXPECT_EQ(puf.eval_pm(c), puf.eval_noisy(c, noise));
  }
}

TEST(ArbiterPuf, ExplicitWeightsControlResponse) {
  // Single stage, weights (w0, bias): phi = ((1-2c0), 1).
  const ArbiterPuf puf({1.0, 0.5}, 0.0);
  EXPECT_EQ(puf.eval_pm(BitVec::from_string("0")), +1);  // 1 + 0.5 > 0
  EXPECT_EQ(puf.eval_pm(BitVec::from_string("1")), -1);  // -1 + 0.5 < 0
}

TEST(ArbiterPuf, NoiseReducesReliability) {
  Rng rng(3);
  const ArbiterPuf quiet(24, 0.01, rng);
  const ArbiterPuf noisy(24, 2.0, rng);
  Rng eval(4);
  const double rel_quiet = reliability(quiet, 300, 11, eval);
  const double rel_noisy = reliability(noisy, 300, 11, eval);
  EXPECT_GT(rel_quiet, 0.98);
  EXPECT_LT(rel_noisy, rel_quiet);
  EXPECT_GT(rel_noisy, 0.5);  // still better than coin flipping
}

TEST(ArbiterPuf, IsExactlyAnLtfInFeatureSpace) {
  // The arbiter response equals the sign of w . phi, so learning in feature
  // space must achieve 100% with the true weights.
  Rng rng(5);
  const ArbiterPuf puf(12, 0.0, rng);
  Rng eval(6);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec c(12);
    for (std::size_t i = 0; i < 12; ++i) c.set(i, eval.coin());
    const auto phi = ArbiterPuf::feature_map(c);
    double margin = 0.0;
    for (std::size_t i = 0; i < phi.size(); ++i)
      margin += puf.weights()[i] * phi[i];
    EXPECT_EQ(puf.eval_pm(c), margin < 0 ? -1 : +1);
  }
}

TEST(ArbiterPuf, RejectsBadConstruction) {
  Rng rng(1);
  EXPECT_THROW(ArbiterPuf(0, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(ArbiterPuf(8, -1.0, rng), std::invalid_argument);
  EXPECT_THROW(ArbiterPuf({1.0}, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------- XOR arbiter

TEST(XorArbiterPuf, XorOfChainResponses) {
  Rng rng(7);
  const XorArbiterPuf puf = XorArbiterPuf::independent(10, 3, 0.0, rng);
  Rng eval(8);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec c(10);
    for (std::size_t i = 0; i < 10; ++i) c.set(i, eval.coin());
    int expected = 1;
    for (std::size_t k = 0; k < 3; ++k) expected *= puf.chain(k).eval_pm(c);
    EXPECT_EQ(puf.eval_pm(c), expected);
  }
}

TEST(XorArbiterPuf, SingleChainEqualsArbiter) {
  Rng rng(9);
  const XorArbiterPuf puf = XorArbiterPuf::independent(8, 1, 0.0, rng);
  Rng eval(10);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec c(8);
    for (std::size_t i = 0; i < 8; ++i) c.set(i, eval.coin());
    EXPECT_EQ(puf.eval_pm(c), puf.chain(0).eval_pm(c));
  }
}

TEST(XorArbiterPuf, MoreChainsAreMoreNoiseSensitive) {
  // XOR amplifies noise: NS grows with k (the KOS bound NS <= O(k sqrt(eps))
  // is tight enough to see monotonicity).
  Rng rng(11);
  double previous = 0.0;
  for (std::size_t k : {1u, 3u, 6u}) {
    Rng instance(100);  // same chains prefix for comparability
    const XorArbiterPuf puf = XorArbiterPuf::independent(10, k, 0.0, instance);
    const auto spec =
        FourierSpectrum::of(TruthTable::from_function(puf.feature_space_view()));
    const double ns = spec.noise_sensitivity(0.05);
    EXPECT_GT(ns, previous);
    previous = ns;
  }
}

TEST(XorArbiterPuf, FeatureSpaceViewMatchesChainLtfs) {
  Rng rng(12);
  const XorArbiterPuf puf = XorArbiterPuf::independent(10, 3, 0.0, rng);
  const auto view = puf.feature_space_view();
  Rng eval(120);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec x(10);
    for (std::size_t i = 0; i < 10; ++i) x.set(i, eval.coin());
    int expected = 1;
    for (std::size_t k = 0; k < 3; ++k)
      expected *= puf.chain(k).as_feature_space_ltf().eval_pm(x);
    EXPECT_EQ(view.eval_pm(x), expected);
  }
}

TEST(XorArbiterPuf, IndependentChainsKillLowDegreeWeight) {
  // In the paper's feature-space coordinates each chain is an LTF; XORing
  // independent chains collapses the degree-1 Fourier weight — the reason
  // Corollary 1's bound blows up with k.
  Rng rng(13);
  const XorArbiterPuf single = XorArbiterPuf::independent(10, 1, 0.0, rng);
  const XorArbiterPuf triple = XorArbiterPuf::independent(10, 3, 0.0, rng);
  const double w1_single =
      FourierSpectrum::of(TruthTable::from_function(single.feature_space_view()))
          .weight_up_to_degree(1);
  const double w1_triple =
      FourierSpectrum::of(TruthTable::from_function(triple.feature_space_view()))
          .weight_up_to_degree(1);
  EXPECT_GT(w1_single, 0.3);
  EXPECT_LT(w1_triple, w1_single / 2.0);
}

TEST(XorArbiterPuf, CorrelatedChainsKeepLowDegreeWeight) {
  // The RocknRoll regime [17]: strong chain correlation re-concentrates
  // Fourier weight at low degree even for larger k.
  Rng rng(17);
  const XorArbiterPuf indep = XorArbiterPuf::independent(10, 5, 0.0, rng);
  const XorArbiterPuf corr = XorArbiterPuf::correlated(10, 5, 0.9, 0.0, rng);
  const double low_indep =
      FourierSpectrum::of(TruthTable::from_function(indep.feature_space_view()))
          .weight_up_to_degree(2);
  const double low_corr =
      FourierSpectrum::of(TruthTable::from_function(corr.feature_space_view()))
          .weight_up_to_degree(2);
  EXPECT_GT(low_corr, low_indep + 0.1);
}

TEST(XorArbiterPuf, RejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(XorArbiterPuf::independent(8, 0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(XorArbiterPuf::correlated(8, 2, 1.0, 0.0, rng),
               std::invalid_argument);
}

// --------------------------------------------------------- BistableRing

TEST(BistableRingPuf, PaperInstanceSharesGrowWithN) {
  const auto c16 = BistableRingConfig::paper_instance(16);
  const auto c32 = BistableRingConfig::paper_instance(32);
  const auto c64 = BistableRingConfig::paper_instance(64);
  EXPECT_LT(c16.nonlinear_share, c32.nonlinear_share);
  EXPECT_LT(c32.nonlinear_share, c64.nonlinear_share);
}

TEST(BistableRingPuf, ZeroShareIsAHalfspace) {
  // With no interaction weight the model degenerates to an LTF over the
  // +/-1 challenge bits: the degree-0/1 Fourier weight must sit near the
  // Gaussian-LTF value 2/pi (plus bias^2).
  Rng rng(19);
  BistableRingConfig cfg;
  cfg.bits = 10;
  cfg.nonlinear_share = 0.0;
  const BistableRingPuf puf(cfg, rng);
  const auto spec = FourierSpectrum::of(TruthTable::from_function(puf));
  EXPECT_GT(spec.weight_up_to_degree(1), 0.5);
}

TEST(BistableRingPuf, NonlinearShareDrainsDegreeOneWeight) {
  Rng rng(23);
  BistableRingConfig weak;
  weak.bits = 12;
  weak.nonlinear_share = 0.1;
  BistableRingConfig strong = weak;
  strong.nonlinear_share = 0.6;
  const BistableRingPuf puf_weak(weak, rng);
  const BistableRingPuf puf_strong(strong, rng);
  const double w1_weak = FourierSpectrum::of(TruthTable::from_function(puf_weak))
                             .weight_at_degree(1);
  const double w1_strong =
      FourierSpectrum::of(TruthTable::from_function(puf_strong))
          .weight_at_degree(1);
  EXPECT_GT(w1_weak, w1_strong + 0.15);
}

TEST(BistableRingPuf, RoughlyBalanced) {
  Rng rng(29);
  const BistableRingPuf puf(BistableRingConfig::paper_instance(16), rng);
  Rng eval(30);
  const double u = uniformity(puf, 20000, eval);
  EXPECT_NEAR(u, 0.5, 0.1);
}

TEST(BistableRingPuf, DeterministicWithoutNoise) {
  Rng rng(31);
  BistableRingConfig cfg = BistableRingConfig::paper_instance(16);
  cfg.noise_sigma = 0.0;
  const BistableRingPuf puf(cfg, rng);
  Rng eval(32);
  BitVec c(16);
  for (std::size_t i = 0; i < 16; ++i) c.set(i, eval.coin());
  const int first = puf.eval_noisy(c, eval);
  for (int trial = 0; trial < 20; ++trial)
    EXPECT_EQ(puf.eval_noisy(c, eval), first);
}

TEST(BistableRingPuf, RejectsTinyRings) {
  Rng rng(1);
  BistableRingConfig cfg;
  cfg.bits = 3;
  EXPECT_THROW(BistableRingPuf(cfg, rng), std::invalid_argument);
}

// ------------------------------------------------------------------ CRP

TEST(CrpSet, UniformCollectionLabelsIdeally) {
  Rng rng(33);
  const ArbiterPuf puf(12, 0.5, rng);
  Rng collect(34);
  const CrpSet set = CrpSet::collect_uniform(puf, 500, collect);
  EXPECT_EQ(set.size(), 500u);
  EXPECT_DOUBLE_EQ(set.accuracy_of(puf), 1.0);
}

TEST(CrpSet, StableCollectionAgreesWithIdealOnLowNoise) {
  Rng rng(35);
  const ArbiterPuf puf(12, 0.2, rng);
  Rng collect(36);
  const CrpSet set = CrpSet::collect_stable(puf, 300, 5, collect);
  // Stable CRPs are overwhelmingly the high-margin ones, which match the
  // ideal response.
  EXPECT_GT(set.accuracy_of(puf), 0.98);
}

TEST(CrpSet, StableCollectionThrowsOnHopelessNoise) {
  Rng rng(37);
  // Zero weights + big noise: every measurement is a coin flip, so 25
  // consecutive agreements essentially never happen.
  const ArbiterPuf puf({1e-9, 1e-9, 1e-9}, 100.0);
  Rng collect(38);
  EXPECT_THROW(CrpSet::collect_stable(puf, 50, 25, collect),
               std::invalid_argument);
}

TEST(CrpSet, SplitPrefixRelabel) {
  Rng rng(39);
  const ArbiterPuf puf(8, 0.0, rng);
  Rng collect(40);
  CrpSet set = CrpSet::collect_uniform(puf, 100, collect);
  const auto [train, test] = set.split_at(60);
  EXPECT_EQ(train.size(), 60u);
  EXPECT_EQ(test.size(), 40u);
  EXPECT_EQ(set.prefix(10).size(), 10u);
  EXPECT_THROW(set.prefix(101), std::invalid_argument);

  const pitfalls::boolfn::FunctionView constant(
      8, [](const BitVec&) { return +1; }, "one");
  const CrpSet relabeled = set.relabel(constant);
  EXPECT_DOUBLE_EQ(relabeled.accuracy_of(constant), 1.0);
}

TEST(CrpSet, ShuffleKeepsPairsTogether) {
  Rng rng(41);
  const ArbiterPuf puf(10, 0.0, rng);
  Rng collect(42);
  CrpSet set = CrpSet::collect_uniform(puf, 200, collect);
  Rng shuffler(43);
  set.shuffle(shuffler);
  EXPECT_DOUBLE_EQ(set.accuracy_of(puf), 1.0);  // labels still match
}

TEST(CrpSet, AddValidatesResponses) {
  CrpSet set;
  EXPECT_THROW(set.add(BitVec(4), 0), std::invalid_argument);
  set.add(BitVec(4), +1);
  EXPECT_THROW(set.add(BitVec(5), -1), std::invalid_argument);
}

// -------------------------------------------------------------- Metrics

TEST(Metrics, UniformityOfBalancedPuf) {
  Rng rng(45);
  const ArbiterPuf puf(32, 0.0, rng);
  Rng eval(46);
  EXPECT_NEAR(uniformity(puf, 20000, eval), 0.5, 0.05);
}

TEST(Metrics, UniquenessOfIndependentInstances) {
  Rng rng(47);
  const ArbiterPuf a(16, 0.0, rng);
  const ArbiterPuf b(16, 0.0, rng);
  const ArbiterPuf c(16, 0.0, rng);
  Rng eval(48);
  const double u = uniqueness({&a, &b, &c}, 4000, eval);
  EXPECT_NEAR(u, 0.5, 0.08);
}

TEST(Metrics, ReliabilityPerfectWithoutNoise) {
  Rng rng(49);
  const ArbiterPuf puf(16, 0.0, rng);
  Rng eval(50);
  EXPECT_DOUBLE_EQ(reliability(puf, 200, 5, eval), 1.0);
}

TEST(Metrics, ExpectedBiasTracksIdealBias) {
  // A single instance carries its own bias (the threshold weight); the
  // *expected* bias under attribute noise must stay close to it for small
  // noise — the quantity the paper's Section III-A excludes from its bounds.
  Rng rng(51);
  const ArbiterPuf puf(16, 0.3, rng);
  Rng eval(52);
  const double ideal = 1.0 - 2.0 * uniformity(puf, 20000, eval);
  EXPECT_NEAR(expected_bias(puf, 20000, eval), ideal, 0.05);
}

TEST(Metrics, MajorityVoteBeatsOneShot) {
  Rng rng(53);
  const ArbiterPuf puf(16, 1.0, rng);
  Rng eval(54);
  std::size_t correct_single = 0;
  std::size_t correct_majority = 0;
  for (int trial = 0; trial < 400; ++trial) {
    BitVec c(16);
    for (std::size_t i = 0; i < 16; ++i) c.set(i, eval.coin());
    const int ideal = puf.eval_pm(c);
    if (puf.eval_noisy(c, eval) == ideal) ++correct_single;
    if (puf.eval_majority(c, 15, eval) == ideal) ++correct_majority;
  }
  EXPECT_GE(correct_majority, correct_single);
}

}  // namespace
