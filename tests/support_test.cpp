// Unit and property tests for pitfalls::support.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "support/bitvec.hpp"
#include "support/combinatorics.hpp"
#include "support/require.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls::support;

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i)
    if (a() != b()) ++differences;
  EXPECT_GT(differences, 0);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_below(13), 13u);
}

TEST(Rng, UniformBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_below(0), std::invalid_argument);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.variance(), 1.0, 0.05);
}

TEST(Rng, GaussianScalesMeanAndSigma) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.06);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.06);
}

TEST(Rng, GaussianRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, CoinIsRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.coin()) ++heads;
  EXPECT_NEAR(heads / 20000.0, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng rng(21);
  Rng child = rng.split();
  // The child should not replay the parent's stream.
  Rng parent_copy(21);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 32; ++i)
    if (child() == rng()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ---------------------------------------------------------------- BitVec

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVec, ConstructFromValue) {
  BitVec v(8, 0b10110010ULL);
  EXPECT_EQ(v.to_string(), "01001101");  // index 0 first
  EXPECT_EQ(v.to_uint64(), 0b10110010ULL);
}

TEST(BitVec, ValueConstructorMasksPadding) {
  BitVec v(4, 0xffULL);
  EXPECT_EQ(v.to_uint64(), 0xfULL);
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(70);
  v.set(69, true);
  EXPECT_TRUE(v.get(69));
  v.flip(69);
  EXPECT_FALSE(v.get(69));
  v.flip(0);
  EXPECT_TRUE(v.get(0));
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.get(8), std::invalid_argument);
  EXPECT_THROW(v.set(8, true), std::invalid_argument);
  EXPECT_THROW(v.flip(100), std::invalid_argument);
}

TEST(BitVec, PmOneEncoding) {
  BitVec v = BitVec::from_string("01");
  EXPECT_EQ(v.pm_one(0), +1);
  EXPECT_EQ(v.pm_one(1), -1);
}

TEST(BitVec, FromStringRejectsJunk) {
  EXPECT_THROW(BitVec::from_string("01x"), std::invalid_argument);
}

TEST(BitVec, PopcountAcrossWords) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_EQ(v.popcount(), 3u);
  EXPECT_EQ(v.parity(), 1);
}

TEST(BitVec, MaskedParityMatchesNaive) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec x(80);
    BitVec mask(80);
    for (std::size_t i = 0; i < 80; ++i) {
      x.set(i, rng.coin());
      mask.set(i, rng.coin());
    }
    int naive = 0;
    for (std::size_t i = 0; i < 80; ++i)
      if (x.get(i) && mask.get(i)) naive ^= 1;
    EXPECT_EQ(x.masked_parity(mask), naive);
  }
}

TEST(BitVec, SubsetRelation) {
  BitVec a = BitVec::from_string("0110");
  BitVec b = BitVec::from_string("0111");
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
}

TEST(BitVec, BitwiseOperators) {
  BitVec a = BitVec::from_string("0101");
  BitVec b = BitVec::from_string("0011");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a & b).to_string(), "0001");
  EXPECT_EQ((a | b).to_string(), "0111");
  EXPECT_EQ((~a).to_string(), "1010");
}

TEST(BitVec, ComplementClearsPadding) {
  BitVec v(5);
  BitVec full = ~v;
  EXPECT_EQ(full.popcount(), 5u);
}

TEST(BitVec, SizeMismatchThrows) {
  BitVec a(4);
  BitVec b(5);
  EXPECT_THROW((void)(a ^ b), std::invalid_argument);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
}

TEST(BitVec, SetBitsAscending) {
  BitVec v(100);
  v.set(3, true);
  v.set(77, true);
  v.set(99, true);
  EXPECT_EQ(v.set_bits(), (std::vector<std::size_t>{3, 77, 99}));
}

TEST(BitVec, OrderingIsTotal) {
  BitVec a = BitVec::from_string("10");
  BitVec b = BitVec::from_string("01");
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(BitVec, HashDistinguishesTypicalValues) {
  BitVec a = BitVec::from_string("0101");
  BitVec b = BitVec::from_string("1010");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), BitVec::from_string("0101").hash());
}

// ------------------------------------------------------- combinatorics

TEST(Combinatorics, BinomialSmallValues) {
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(64, 32), 1832624140942590534ULL);
}

TEST(Combinatorics, BinomialSaturatesOnOverflow) {
  EXPECT_EQ(binomial(1000, 500), UINT64_MAX);
}

TEST(Combinatorics, BinomialSumMatchesManual) {
  EXPECT_EQ(binomial_sum(10, 2), 1u + 10u + 45u);
  EXPECT_EQ(binomial_sum(4, 10), 16u);
}

TEST(Combinatorics, SubsetsOfSizeCountAndOrder) {
  const auto subsets = subsets_of_size(5, 3);
  EXPECT_EQ(subsets.size(), 10u);
  EXPECT_EQ(subsets.front(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(subsets.back(), (std::vector<std::size_t>{2, 3, 4}));
  // All distinct.
  std::set<std::vector<std::size_t>> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), subsets.size());
}

TEST(Combinatorics, SubsetsUpToSizeOrderedByCardinality) {
  const auto subsets = subsets_up_to_size(4, 2);
  EXPECT_EQ(subsets.size(), binomial_sum(4, 2));
  EXPECT_TRUE(subsets.front().empty());
  for (std::size_t i = 1; i < subsets.size(); ++i)
    EXPECT_LE(subsets[i - 1].size(), subsets[i].size());
}

TEST(Combinatorics, SubsetMaskRoundTrip) {
  const BitVec mask = subset_mask(6, {1, 4});
  EXPECT_EQ(mask.to_string(), "010010");
  EXPECT_THROW(subset_mask(3, {5}), std::invalid_argument);
}

TEST(Combinatorics, ForEachSubmaskEnumeratesAll) {
  std::set<std::uint64_t> seen;
  for_each_submask(0b1011ULL, [&](std::uint64_t sub) { seen.insert(sub); });
  EXPECT_EQ(seen.size(), 8u);
  for (auto sub : seen) EXPECT_EQ(sub & ~0b1011ULL, 0u);
}

// -------------------------------------------------------------- stats

TEST(Stats, RunningStatsMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, EmptyStatsThrow) {
  RunningStats s;
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.min(), std::invalid_argument);
}

TEST(Stats, HoeffdingWidthShrinksWithSamples) {
  const double wide = hoeffding_half_width(100, 0.05);
  const double narrow = hoeffding_half_width(10000, 0.05);
  EXPECT_GT(wide, narrow);
  EXPECT_NEAR(narrow, wide / 10.0, 1e-12);
}

TEST(Stats, HoeffdingSampleSizeInvertsWidth) {
  const std::size_t m = hoeffding_sample_size(0.05, 0.01);
  EXPECT_LE(hoeffding_half_width(m, 0.01), 0.05 + 1e-9);
}

TEST(Stats, WilsonIntervalBracketsProportion) {
  const auto iv = wilson_interval(80, 100, 1.96);
  EXPECT_LT(iv.lo, 0.8);
  EXPECT_GT(iv.hi, 0.8);
  EXPECT_GT(iv.lo, 0.69);
  EXPECT_LT(iv.hi, 0.89);
}

TEST(Stats, AccuracyCountsAgreements) {
  EXPECT_DOUBLE_EQ(accuracy({1, -1, 1, -1}, {1, 1, 1, -1}), 0.75);
  EXPECT_THROW(accuracy({}, {}), std::invalid_argument);
  EXPECT_THROW(accuracy({1}, {1, 1}), std::invalid_argument);
}

TEST(Stats, NormalPdfCdfBasics) {
  EXPECT_NEAR(normal_pdf(0.0), 0.39894228, 1e-7);
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 0.0249979, 1e-6);
}

TEST(Stats, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

// -------------------------------------------------------------- table

TEST(Table, RendersHeaderAndRows) {
  Table t({"n", "accuracy"});
  t.add_row({"16", "71.93"});
  t.add_row({"32", "91.52"});
  const std::string out = t.render("Demo");
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("accuracy"), std::string::npos);
  EXPECT_NE(out.find("91.52"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_or_inf(std::numeric_limits<double>::infinity()),
            ">1e18");
  EXPECT_EQ(Table::fmt_or_inf(1e19), ">1e18");
}

// ------------------------------------------------------------ require

TEST(Require, MacrosThrowTypedExceptions) {
  EXPECT_THROW(PITFALLS_REQUIRE(false, "nope"), std::invalid_argument);
  EXPECT_THROW(PITFALLS_ENSURE(false, "nope"), std::logic_error);
  EXPECT_NO_THROW(PITFALLS_REQUIRE(true, ""));
}

}  // namespace
