// The deterministic parallel execution layer (support/parallel): the chunk
// policy, per-chunk RNG streams, the pool's execution semantics (inline
// degeneration, nested regions, exception propagation) and — the actual
// contract — byte-identical results for every thread count from every
// parallelised hot path: CRP collection, the pooled WHT, coefficient
// estimation, accuracy and the PUF metric sweeps.
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boolfn/fourier.hpp"
#include "boolfn/truth_table.hpp"
#include "obs/metrics.hpp"
#include "puf/arbiter.hpp"
#include "puf/crp.hpp"
#include "puf/metrics.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/combinatorics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using support::BitVec;
using support::ChunkPlan;
using support::Rng;

// Restores the ambient pool size when a test that resizes it exits, so test
// order never leaks thread-count state.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : saved_(support::pool_thread_count()) {}
  ~PoolSizeGuard() { support::set_pool_thread_count(saved_); }

 private:
  std::size_t saved_;
};

// Runs `make()` under each thread count and asserts every result is
// byte-identical to the single-threaded one.
template <typename Make>
void expect_identical_across_thread_counts(Make&& make) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(1);
  const auto reference = make();
  for (const std::size_t threads : {2, 4, 8}) {
    support::set_pool_thread_count(threads);
    EXPECT_EQ(make(), reference) << "threads=" << threads;
  }
}

// --------------------------------------------------------------- chunk plan

TEST(ChunkPlanTest, EmptyRangeHasNoChunks) {
  const ChunkPlan plan = support::plan_chunks(0);
  EXPECT_EQ(plan.count, 0u);
}

TEST(ChunkPlanTest, CoversRangeExactlyWithoutOverlap) {
  for (const std::size_t n :
       {1ul, 2ul, 63ul, 64ul, 65ul, 1000ul, 4096ul, 4097ul, 100000ul}) {
    const ChunkPlan plan = support::plan_chunks(n);
    ASSERT_GT(plan.count, 0u) << "n=" << n;
    ASSERT_GT(plan.size, 0u) << "n=" << n;
    // Chunk c is [c*size, min(n, (c+1)*size)): contiguous, disjoint, total n.
    EXPECT_GE(plan.count * plan.size, n) << "n=" << n;
    EXPECT_LT((plan.count - 1) * plan.size, n) << "n=" << n;
  }
}

TEST(ChunkPlanTest, SmallRangesStaySingleChunk) {
  // At least 64 items per chunk, so n <= 64 is one chunk — tiny ranges never
  // pay pool overhead.
  for (const std::size_t n : {1ul, 7ul, 64ul}) {
    EXPECT_EQ(support::plan_chunks(n).count, 1u) << "n=" << n;
  }
}

TEST(ChunkPlanTest, DependsOnlyOnRangeLength) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(1);
  const ChunkPlan at_one = support::plan_chunks(100000);
  support::set_pool_thread_count(8);
  const ChunkPlan at_eight = support::plan_chunks(100000);
  EXPECT_EQ(at_one.count, at_eight.count);
  EXPECT_EQ(at_one.size, at_eight.size);
}

// --------------------------------------------------------- per-chunk streams

TEST(RngForChunkTest, StreamsAreDeterministicAndDistinct) {
  Rng a = support::rng_for_chunk(42, 0);
  Rng a2 = support::rng_for_chunk(42, 0);
  Rng b = support::rng_for_chunk(42, 1);
  Rng c = support::rng_for_chunk(43, 0);
  const std::uint64_t a_first = a();
  EXPECT_EQ(a_first, a2());
  EXPECT_NE(a_first, b());
  EXPECT_NE(a_first, c());
}

// ------------------------------------------------------------ pool mechanics

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  support::parallel_for_chunks(
      0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });  // lint:capture-race-ok (atomic call counter)
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, OneElementRangeRunsInlineOnce) {
  std::atomic<int> calls{0};
  support::parallel_for_chunks(1,
                               [&](std::size_t chunk, std::size_t begin,
                                   std::size_t end) {
                                 ++calls;  // lint:capture-race-ok (atomic call counter)
                                 EXPECT_EQ(chunk, 0u);
                                 EXPECT_EQ(begin, 0u);
                                 EXPECT_EQ(end, 1u);
                                 EXPECT_TRUE(support::in_parallel_region());
                               });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_FALSE(support::in_parallel_region());
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(4);
  const std::size_t n = 50000;
  std::vector<std::atomic<int>> visits(n);
  support::parallel_for(n, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(visits[i].load(), 1) << "i=" << i;
}

TEST(ParallelForTest, NestedCallsRunInline) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(4);
  std::atomic<int> inner_calls{0};
  support::parallel_for_chunks(
      10000, [&](std::size_t, std::size_t begin, std::size_t end) {
        EXPECT_TRUE(support::in_parallel_region());
        // A nested region must degenerate to a plain loop on this thread —
        // no new pool tasks, no deadlock.
        support::parallel_for_chunks(
            end - begin, [&](std::size_t, std::size_t b, std::size_t e) {
              EXPECT_TRUE(support::in_parallel_region());
              inner_calls += static_cast<int>(e - b);  // lint:capture-race-ok (atomic)
            });
      });
  EXPECT_EQ(inner_calls.load(), 10000);
}

TEST(ParallelForTest, FirstChunkExceptionPropagatesToCaller) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(4);
  EXPECT_THROW(
      support::parallel_for_chunks(
          100000,
          [&](std::size_t chunk, std::size_t, std::size_t) {
            if (chunk % 2 == 1)
              throw std::invalid_argument("chunk failure " +
                                          std::to_string(chunk));
          }),
      std::invalid_argument);
  // The pool survives an exceptional region.
  std::atomic<int> calls{0};
  support::parallel_for(1000, [&](std::size_t) { ++calls; });  // lint:capture-race-ok (atomic call counter)
  EXPECT_EQ(calls.load(), 1000);
}

TEST(ParallelReduceTest, CombinesInChunkOrder) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(4);
  // Concatenation is non-commutative, so any out-of-order combine changes
  // the string.
  const std::string combined = support::parallel_reduce<std::string>(
      10000, std::string(),
      [](std::size_t chunk, std::size_t, std::size_t) {
        return std::to_string(chunk) + ";";
      },
      [](std::string acc, std::string part) { return acc + part; });
  const ChunkPlan plan = support::plan_chunks(10000);
  std::string expected;
  for (std::size_t c = 0; c < plan.count; ++c)
    expected += std::to_string(c) + ";";
  EXPECT_EQ(combined, expected);
}

TEST(ParallelReduceTest, IntegerSumMatchesSerial) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(8);
  const std::size_t n = 123457;
  const std::uint64_t sum = support::parallel_reduce<std::uint64_t>(
      n, 0ull,
      [](std::size_t, std::size_t begin, std::size_t end) {
        std::uint64_t s = 0;
        for (std::size_t i = begin; i < end; ++i) s += i;
        return s;
      },
      [](std::uint64_t acc, std::uint64_t p) { return acc + p; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

// ------------------------------------------- thread-count invariance: paths

TEST(ThreadInvarianceTest, CollectUniformIsByteIdentical) {
  Rng setup(7);
  const puf::XorArbiterPuf puf =
      puf::XorArbiterPuf::independent(32, 3, 0.0, setup);
  expect_identical_across_thread_counts([&] {
    Rng rng(123);
    const puf::CrpSet set = puf::CrpSet::collect_uniform(puf, 20000, rng);
    return std::make_pair(set.challenges(), set.responses());
  });
}

TEST(ThreadInvarianceTest, CollectNoisyIsByteIdentical) {
  Rng setup(7);
  const puf::ArbiterPuf puf(32, 0.05, setup);
  expect_identical_across_thread_counts([&] {
    Rng rng(321);
    const puf::CrpSet set = puf::CrpSet::collect_noisy(puf, 20000, rng);
    return std::make_pair(set.challenges(), set.responses());
  });
}

TEST(ThreadInvarianceTest, CollectStableIsByteIdentical) {
  Rng setup(7);
  const puf::ArbiterPuf puf(32, 0.08, setup);
  expect_identical_across_thread_counts([&] {
    Rng rng(55);
    const puf::CrpSet set = puf::CrpSet::collect_stable(puf, 5000, 5, rng);
    return std::make_pair(set.challenges(), set.responses());
  });
}

TEST(ThreadInvarianceTest, CollectStableRejectionAccountingIsByteIdentical) {
  // The unstable-challenge rejection tally feeds the global
  // "puf.crp.unstable_rejected" counter from inside pooled chunks; the delta
  // booked per collection must not depend on the thread count.
  Rng setup(7);
  const puf::ArbiterPuf puf(32, 0.3, setup);
  auto& counter =
      obs::MetricsRegistry::global().counter("puf.crp.unstable_rejected");
  expect_identical_across_thread_counts([&] {
    Rng rng(77);
    const std::uint64_t before = counter.value();
    const puf::CrpSet set = puf::CrpSet::collect_stable(puf, 500, 9, rng);
    const std::uint64_t rejected = counter.value() - before;
    EXPECT_GT(rejected, 0u);  // sigma 0.3 must reject some challenges
    return std::make_pair(rejected, set.challenges());
  });
}

TEST(ThreadInvarianceTest, CollectStableGuardTripsUnderThePool) {
  // Hopeless noise (tiny weights, huge sigma): the collector's progress
  // guard must trip with the configuration error, not hang or deadlock,
  // even when the rejection loop runs across pooled chunks.
  const puf::ArbiterPuf puf({1e-9, 1e-9, 1e-9}, 100.0);
  PoolSizeGuard guard;
  for (const std::size_t threads : {1, 4, 8}) {
    support::set_pool_thread_count(threads);
    Rng rng(13);
    EXPECT_THROW((void)puf::CrpSet::collect_stable(puf, 100, 25, rng),
                 std::invalid_argument)
        << "threads=" << threads;
  }
}

TEST(ThreadInvarianceTest, CallerRngAdvancesExactlyOneDraw) {
  Rng setup(7);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  Rng expected(99);
  (void)expected();  // the one seed draw the collector takes
  Rng rng(99);
  (void)puf::CrpSet::collect_uniform(puf, 10000, rng);
  EXPECT_EQ(rng(), expected());
}

TEST(ThreadInvarianceTest, PooledWhtIsByteIdentical) {
  // n = 14 crosses the pooled-WHT row threshold (2^14 rows).
  Rng rng(5);
  boolfn::TruthTable tt(14);
  for (std::uint64_t row = 0; row < tt.num_rows(); ++row)
    tt.set(row, rng.coin() ? 1 : -1);
  expect_identical_across_thread_counts(
      [&] { return boolfn::FourierSpectrum::of(tt).coefficients(); });
}

TEST(ThreadInvarianceTest, TruncatedSignIsByteIdentical) {
  Rng rng(6);
  boolfn::TruthTable tt(14);
  for (std::uint64_t row = 0; row < tt.num_rows(); ++row)
    tt.set(row, rng.coin() ? 1 : -1);
  const auto spectrum = boolfn::FourierSpectrum::of(tt);
  expect_identical_across_thread_counts([&] {
    const boolfn::TruthTable truncated = spectrum.truncated_sign(2);
    std::vector<int> values(truncated.num_rows());
    for (std::uint64_t row = 0; row < truncated.num_rows(); ++row)
      values[row] = truncated.at(row);
    return values;
  });
}

TEST(ThreadInvarianceTest, EstimateCoefficientsIsByteIdentical) {
  Rng setup(8);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  std::vector<BitVec> subsets;
  for (const auto& s : support::subsets_up_to_size(16, 2))
    subsets.push_back(support::subset_mask(16, s));
  expect_identical_across_thread_counts([&] {
    Rng rng(77);
    return boolfn::estimate_coefficients(puf, subsets, 20000, rng);
  });
}

TEST(ThreadInvarianceTest, EstimateFromDataIsByteIdentical) {
  Rng setup(8);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  Rng rng(78);
  const puf::CrpSet crps = puf::CrpSet::collect_uniform(puf, 20000, rng);
  std::vector<BitVec> subsets;
  for (const auto& s : support::subsets_up_to_size(16, 2))
    subsets.push_back(support::subset_mask(16, s));
  expect_identical_across_thread_counts([&] {
    return boolfn::estimate_coefficients_from_data(crps.challenges(),
                                                   crps.responses(), subsets);
  });
}

TEST(ThreadInvarianceTest, AccuracyIsByteIdentical) {
  Rng setup(9);
  const puf::ArbiterPuf puf(32, 0.0, setup);
  Rng noisy_setup(10);
  const puf::ArbiterPuf other(32, 0.0, noisy_setup);
  Rng rng(11);
  const puf::CrpSet set = puf::CrpSet::collect_uniform(puf, 50000, rng);
  expect_identical_across_thread_counts(
      [&] { return set.accuracy_of(other); });
}

TEST(ThreadInvarianceTest, PufMetricsAreByteIdentical) {
  Rng setup(12);
  const puf::ArbiterPuf a(32, 0.05, setup);
  const puf::ArbiterPuf b(32, 0.05, setup);
  const puf::ArbiterPuf c(32, 0.05, setup);
  const std::vector<const puf::Puf*> instances{&a, &b, &c};
  expect_identical_across_thread_counts([&] {
    Rng rng(13);
    std::vector<double> out;
    out.push_back(puf::uniformity(a, 20000, rng));
    out.push_back(puf::reliability(a, 5000, 5, rng));
    out.push_back(puf::uniqueness(instances, 10000, rng));
    out.push_back(puf::expected_bias(a, 20000, rng));
    return out;
  });
}

}  // namespace
