// Tests for the attack-service plane (DESIGN.md §16): wire-stream
// byte-stability across PITFALLS_THREADS, token-fleet LRU eviction and
// re-materialization determinism, malformed-request rejection, cooperative
// termination drain, journaled-outcome resume, and the budget-refill
// continuation contract (replayed queries charge nothing).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/daemon.hpp"
#include "serve/token_fleet.hpp"
#include "serve/wire.hpp"
#include "store/checkpoint.hpp"
#include "support/bitvec.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// Restore the worker-pool size on exit (parallel_test idiom).
class PoolSizeGuard {
 public:
  PoolSizeGuard() : saved_(support::pool_thread_count()) {}
  ~PoolSizeGuard() { support::set_pool_thread_count(saved_); }

 private:
  std::size_t saved_;
};

// Always leave the cooperative-termination flag clear, even on test failure.
struct TerminationGuard {
  TerminationGuard() { store::clear_termination(); }
  ~TerminationGuard() { store::clear_termination(); }
};

// Scratch daemon checkpoint removed (with its .tmp and any per-job session
// files) when the test exits.
class TempCheckpoint {
 public:
  explicit TempCheckpoint(const std::string& name,
                          std::vector<std::string> sessions = {})
      : path_("serve_test_" + name + ".snap"), sessions_(std::move(sessions)) {
    remove_all();
  }
  ~TempCheckpoint() { remove_all(); }
  const std::string& path() const { return path_; }

 private:
  void remove_all() {
    const auto drop = [](const std::string& p) {
      std::remove(p.c_str());
      std::remove((p + ".tmp").c_str());
    };
    drop(path_);
    for (const std::string& s : sessions_) drop(path_ + ".sess-" + s + ".snap");
  }

  std::string path_;
  std::vector<std::string> sessions_;
};

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

// A small (32-stage) fleet: materialization stays cheap while the token-id
// space keeps the full million-instance population.
serve::TokenFleetConfig small_fleet() {
  serve::TokenFleetConfig config;
  config.seed = 42;
  config.tokens = 1'000'000;
  config.spec.stages = 32;
  config.spec.chains = 2;
  config.spec.noise_sigma = 0.0;
  config.resident_limit = 64;
  config.shards = 8;
  return config;
}

BitVec make_bitvec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.coin());
  return v;
}

std::string challenge_string(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string text(n, '0');
  for (std::size_t i = 0; i < n; ++i)
    if (rng.coin()) text[i] = '1';
  return text;
}

// ------------------------------------------------------- request builders

std::string auth_job(const std::string& id, std::uint64_t token,
                     std::uint64_t seed, std::uint64_t rounds) {
  return "{\"type\":\"job\",\"id\":\"" + id + "\",\"kind\":\"auth\",\"token\":" +
         std::to_string(token) + ",\"seed\":" + std::to_string(seed) +
         ",\"rounds\":" + std::to_string(rounds) + "}";
}

/// `extra` is a raw JSON tail (",\"policy\":{...}" / ",\"session\":\"s\"").
std::string attack_job(const std::string& id, std::uint64_t token,
                       std::uint64_t seed, std::uint64_t budget,
                       std::uint64_t eval, const std::string& extra) {
  return "{\"type\":\"job\",\"id\":\"" + id +
         "\",\"kind\":\"attack\",\"token\":" + std::to_string(token) +
         ",\"seed\":" + std::to_string(seed) +
         ",\"budget\":" + std::to_string(budget) +
         ",\"eval\":" + std::to_string(eval) + extra + "}";
}

std::string query_job(const std::string& id, std::uint64_t token,
                      std::uint64_t seed,
                      const std::vector<std::string>& challenges) {
  std::string line = "{\"type\":\"job\",\"id\":\"" + id +
                     "\",\"kind\":\"query\",\"token\":" +
                     std::to_string(token) +
                     ",\"seed\":" + std::to_string(seed) + ",\"challenges\":[";
  for (std::size_t i = 0; i < challenges.size(); ++i) {
    if (i != 0) line += ",";
    line += "\"" + challenges[i] + "\"";
  }
  return line + "]}";
}

const std::string kRun = R"({"type":"run"})";
const std::string kDrain = R"({"type":"drain"})";

// ------------------------------------------------------------ run helpers

struct ServeRun {
  int status = 0;
  std::vector<std::string> lines;
  std::string joined;
};

ServeRun run_daemon(const serve::DaemonConfig& config,
                    std::vector<std::string> input) {
  serve::Daemon daemon(config);
  serve::MemoryChannel channel(std::move(input));
  ServeRun run;
  run.status = daemon.serve(channel);
  run.lines = channel.output();
  run.joined = channel.joined_output();
  return run;
}

std::string type_of(const obs::JsonValue& doc) {
  const obs::JsonValue* type = doc.find("type");
  return type != nullptr && type->is_string() ? type->string_value : "";
}

std::size_t count_type(const std::vector<std::string>& lines,
                       std::string_view type) {
  std::size_t count = 0;
  for (const std::string& line : lines)
    if (type_of(obs::JsonValue::parse(line)) == type) ++count;
  return count;
}

/// First output line with this wire type and job id ("" when absent).
std::string find_line(const std::vector<std::string>& lines,
                      std::string_view type, std::string_view id) {
  for (const std::string& line : lines) {
    const obs::JsonValue doc = obs::JsonValue::parse(line);
    if (type_of(doc) != type) continue;
    const obs::JsonValue* field = doc.find("id");
    if (field != nullptr && field->is_string() && field->string_value == id)
      return line;
  }
  return {};
}

std::uint64_t u64_of(const std::string& line, const char* name) {
  const obs::JsonValue doc = obs::JsonValue::parse(line);
  const obs::JsonValue* value = doc.find(name);
  if (value == nullptr || !value->is_number()) {
    ADD_FAILURE() << "no numeric \"" << name << "\" in: " << line;
    return 0;
  }
  return static_cast<std::uint64_t>(value->number_value);
}

std::string str_of(const std::string& line, const char* name) {
  const obs::JsonValue doc = obs::JsonValue::parse(line);
  const obs::JsonValue* value = doc.find(name);
  if (value == nullptr || !value->is_string()) {
    ADD_FAILURE() << "no string \"" << name << "\" in: " << line;
    return {};
  }
  return value->string_value;
}

// A LineChannel that raises the cooperative-termination flag after serving
// its N-th input line — the in-process stand-in for SIGTERM arriving while
// the daemon is mid-protocol.
class TerminatingChannel final : public serve::LineChannel {
 public:
  TerminatingChannel(std::vector<std::string> input, std::size_t request_after)
      : inner_(std::move(input)), request_after_(request_after) {}

  bool read_line(std::string& line) override {
    const bool ok = inner_.read_line(line);
    if (ok && ++reads_ == request_after_) store::request_termination();
    return ok;
  }
  void write_line(std::string_view line) override { inner_.write_line(line); }

  const std::vector<std::string>& output() const { return inner_.output(); }

 private:
  serve::MemoryChannel inner_;
  std::size_t request_after_;
  std::size_t reads_ = 0;
};

// ----------------------------------------------------------- token fleet

TEST(TokenFleet, EvictionRematerializesIdenticalModels) {
  serve::TokenFleetConfig config = small_fleet();
  config.resident_limit = 8;
  config.shards = 2;
  serve::TokenFleet fleet(config);
  EXPECT_NE(fleet.fingerprint().find("fleet/v1"), std::string::npos);
  EXPECT_NE(fleet.fingerprint().find("seed=42"), std::string::npos);

  const auto first = fleet.acquire(1);
  std::vector<BitVec> probes;
  std::vector<int> expected;
  for (std::uint64_t i = 0; i < 6; ++i) {
    probes.push_back(make_bitvec(32, 100 + i));
    expected.push_back(first->eval_pm(probes.back()));
  }

  // Sweep enough other tokens through both shards to evict token 1.
  const std::uint64_t evictions_before = counter_value("serve.fleet.evictions");
  for (std::uint64_t token = 2; token <= 100; ++token) fleet.acquire(token);
  EXPECT_LE(fleet.resident(), 8u);
  EXPECT_GT(counter_value("serve.fleet.evictions"), evictions_before);

  // Materialization is pure: the re-materialized model answers identically,
  // and the pre-eviction handle stays alive and consistent.
  const auto again = fleet.acquire(1);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(again->eval_pm(probes[i]), expected[i]) << "probe " << i;
    EXPECT_EQ(first->eval_pm(probes[i]), expected[i]) << "probe " << i;
  }
}

// ------------------------------------------------------- byte stability

TEST(ServeDaemon, OutputStreamIsByteStableAcrossThreadCounts) {
  PoolSizeGuard guard;
  const std::vector<std::string> input = {
      auth_job("a1", 999983, 7, 12),
      attack_job("x1", 12, 3, 40, 60,
                 R"(,"policy":{"flip_rate":0.05,"drop_rate":0.02})"),
      query_job("q1", 5, 1,
                {challenge_string(32, 61), challenge_string(32, 62)}),
      kRun,
      auth_job("a2", 31337, 9, 8),
      attack_job("x2", 77, 4, 30, 40, ""),
      kDrain,
  };

  serve::DaemonConfig config;
  config.fleet = small_fleet();

  support::set_pool_thread_count(1);
  const ServeRun reference = run_daemon(config, input);
  ASSERT_EQ(reference.status, 0);
  ASSERT_FALSE(reference.lines.empty());
  EXPECT_EQ(type_of(obs::JsonValue::parse(reference.lines.front())), "hello");
  EXPECT_EQ(type_of(obs::JsonValue::parse(reference.lines.back())), "drained");
  EXPECT_EQ(count_type(reference.lines, "outcome"), 5u);
  EXPECT_EQ(count_type(reference.lines, "error"), 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    support::set_pool_thread_count(threads);
    const ServeRun run = run_daemon(config, input);
    EXPECT_EQ(run.status, 0);
    EXPECT_EQ(run.joined, reference.joined) << "threads=" << threads;
  }
}

// --------------------------------------------------- malformed requests

TEST(ServeDaemon, MalformedRequestsAreRejectedWithErrorLines) {
  const std::vector<std::string> input = {
      "this is not json",
      R"({"nope":1})",
      R"({"type":"frobnicate"})",
      R"({"type":"job"})",
      R"({"type":"job","id":"b1","kind":"dance","token":1,"seed":1})",
      auth_job("ok1", 3, 5, 4),
      auth_job("ok1", 3, 5, 4),           // duplicate id
      auth_job("b2", 1'000'000, 5, 4),    // token == population
      attack_job("b3", 1, 1, 8, 8, R"(,"session":"s1")"),  // no checkpoint
      query_job("b4", 1, 1, {"01x"}),     // bad challenge alphabet
      query_job("q_short", 1, 1, {"0101"}),  // wrong arity: fails at run
      kDrain,
  };

  serve::DaemonConfig config;
  config.fleet = small_fleet();
  const ServeRun run = run_daemon(config, input);
  EXPECT_EQ(run.status, 0);
  ASSERT_FALSE(run.lines.empty());
  EXPECT_EQ(type_of(obs::JsonValue::parse(run.lines.front())), "hello");
  EXPECT_EQ(type_of(obs::JsonValue::parse(run.lines.back())), "drained");

  // Nine rejected submissions plus the arity failure caught at run time.
  EXPECT_EQ(count_type(run.lines, "error"), 10u);
  EXPECT_EQ(count_type(run.lines, "ack"), 2u);
  EXPECT_EQ(count_type(run.lines, "outcome"), 1u);
  EXPECT_FALSE(find_line(run.lines, "outcome", "ok1").empty());
  const std::string arity_error = find_line(run.lines, "error", "q_short");
  ASSERT_FALSE(arity_error.empty());
  EXPECT_NE(str_of(arity_error, "message").find("arity"), std::string::npos);
  EXPECT_EQ(u64_of(run.lines.back(), "jobs"), 2u);
}

// ---------------------------------------------- termination and resume

TEST(ServeDaemon, TerminationDrainFlushesJournalAndResumeReplaysOutcomes) {
  TerminationGuard termination;
  TempCheckpoint file("term");
  serve::DaemonConfig config;
  config.fleet = small_fleet();
  config.checkpoint_path = file.path();

  const std::string a1 = attack_job("a1", 12, 3, 30, 40, "");
  const std::string q1 = query_job("q1", 5, 1, {challenge_string(32, 9)});
  const std::string a2 = auth_job("a2", 44, 2, 6);

  // The flag goes up as the "run" line (3rd read) is served: the daemon
  // finishes the wave it was asked to run, then drains with status 143
  // without touching the rest of the input.
  ServeRun first;
  {
    serve::Daemon daemon(config);
    TerminatingChannel channel({a1, q1, kRun, a2, kDrain}, 3);
    first.status = daemon.serve(channel);
    first.lines = channel.output();
  }
  EXPECT_EQ(first.status, 143);
  ASSERT_FALSE(first.lines.empty());
  const obs::JsonValue last = obs::JsonValue::parse(first.lines.back());
  EXPECT_EQ(type_of(last), "drained");
  const obs::JsonValue* terminated = last.find("terminated");
  ASSERT_NE(terminated, nullptr);
  EXPECT_TRUE(terminated->is_bool() && terminated->bool_value);
  const std::string outcome_a1 = find_line(first.lines, "outcome", "a1");
  const std::string outcome_q1 = find_line(first.lines, "outcome", "q1");
  ASSERT_FALSE(outcome_a1.empty());
  ASSERT_FALSE(outcome_q1.empty());
  EXPECT_TRUE(find_line(first.lines, "ack", "a2").empty());

  // Resume: the journaled jobs come back byte-identical without
  // re-executing, the never-started job runs fresh.
  store::clear_termination();
  config.resume = true;
  const ServeRun resumed = run_daemon(config, {a1, q1, a2, kDrain});
  EXPECT_EQ(resumed.status, 0);
  EXPECT_FALSE(find_line(resumed.lines, "resumed", "a1").empty());
  EXPECT_FALSE(find_line(resumed.lines, "resumed", "q1").empty());
  EXPECT_TRUE(find_line(resumed.lines, "resumed", "a2").empty());
  EXPECT_EQ(find_line(resumed.lines, "outcome", "a1"), outcome_a1);
  EXPECT_EQ(find_line(resumed.lines, "outcome", "q1"), outcome_q1);
  EXPECT_FALSE(find_line(resumed.lines, "outcome", "a2").empty());
}

TEST(ServeDaemon, ResumeRefusesMismatchedSpecFingerprint) {
  TempCheckpoint file("mismatch");
  serve::DaemonConfig config;
  config.fleet = small_fleet();
  config.checkpoint_path = file.path();

  const ServeRun first = run_daemon(config, {auth_job("a1", 5, 1, 8), kDrain});
  ASSERT_EQ(first.status, 0);
  ASSERT_FALSE(find_line(first.lines, "outcome", "a1").empty());

  // Same id, different seed: serving the journaled outcome would silently
  // attribute another spec's result, so the submission is refused.
  config.resume = true;
  const ServeRun second =
      run_daemon(config, {auth_job("a1", 5, 2, 8), kDrain});
  EXPECT_EQ(second.status, 0);
  const std::string error = find_line(second.lines, "error", "a1");
  ASSERT_FALSE(error.empty());
  EXPECT_NE(str_of(error, "message").find("different spec"),
            std::string::npos);
  EXPECT_TRUE(find_line(second.lines, "ack", "a1").empty());
  EXPECT_TRUE(find_line(second.lines, "outcome", "a1").empty());
  EXPECT_TRUE(find_line(second.lines, "resumed", "a1").empty());
}

// ------------------------------------------- budget-refill continuation

// Satellite regression (ROADMAP item 5 / DESIGN.md §16): a lockdown-tripped
// attack session continued with a refilled budget replays its recorded
// prefix for free — the continuation charges the physical-query counter
// exactly as much as the original lockdown leg did, and its outcome is
// byte-identical to an uninterrupted run with the larger budget.
TEST(ServeDaemon, BudgetRefillContinuationChargesNothingForReplayedQueries) {
  TempCheckpoint file("refill", {"L1"});
  serve::DaemonConfig config;
  config.fleet = small_fleet();
  config.checkpoint_path = file.path();

  // Leg 1: budget 120 wanted, lifetime query budget 60 — lockdown halfway.
  const std::uint64_t before_locked = counter_value("oracle.membership_queries");
  const ServeRun locked = run_daemon(
      config,
      {attack_job("L1a", 7, 11, 120, 80,
                  R"(,"policy":{"flip_rate":0.03,"query_budget":60},)"
                  R"("session":"L1")"),
       kDrain});
  const std::uint64_t charged_locked =
      counter_value("oracle.membership_queries") - before_locked;
  ASSERT_EQ(locked.status, 0);
  const std::string locked_outcome = find_line(locked.lines, "outcome", "L1a");
  ASSERT_FALSE(locked_outcome.empty());
  EXPECT_EQ(str_of(locked_outcome, "status"), "lockdown");
  EXPECT_EQ(u64_of(locked_outcome, "collected"), 60u);
  EXPECT_EQ(u64_of(locked_outcome, "queries"), 60u);

  // Leg 2: same session and seed, refilled query budget. The 60 recorded
  // queries replay without charging; only the 60 new ones are physical.
  config.resume = true;
  const std::uint64_t before_refill = counter_value("oracle.membership_queries");
  const ServeRun refilled = run_daemon(
      config,
      {attack_job("L1b", 7, 11, 120, 80,
                  R"(,"policy":{"flip_rate":0.03,"query_budget":300},)"
                  R"("session":"L1")"),
       kDrain});
  const std::uint64_t charged_refill =
      counter_value("oracle.membership_queries") - before_refill;
  ASSERT_EQ(refilled.status, 0);
  const std::string obs_line = find_line(refilled.lines, "obs", "L1b");
  ASSERT_FALSE(obs_line.empty());
  EXPECT_EQ(u64_of(obs_line, "queries"), 120u);
  EXPECT_EQ(u64_of(obs_line, "replayed"), 60u);
  EXPECT_EQ(charged_refill, charged_locked)
      << "replayed queries must not hit the physical counter";

  // Reference: the same spec run uninterrupted, no session, no checkpoint.
  // The continuation outcome line must be byte-identical.
  serve::DaemonConfig fresh_config;
  fresh_config.fleet = small_fleet();
  const std::uint64_t before_fresh = counter_value("oracle.membership_queries");
  const ServeRun fresh = run_daemon(
      fresh_config,
      {attack_job("L1b", 7, 11, 120, 80,
                  R"(,"policy":{"flip_rate":0.03,"query_budget":300})"),
       kDrain});
  const std::uint64_t charged_fresh =
      counter_value("oracle.membership_queries") - before_fresh;
  ASSERT_EQ(fresh.status, 0);
  const std::string fresh_outcome = find_line(fresh.lines, "outcome", "L1b");
  const std::string refill_outcome = find_line(refilled.lines, "outcome", "L1b");
  ASSERT_FALSE(fresh_outcome.empty());
  EXPECT_EQ(refill_outcome, fresh_outcome);
  EXPECT_EQ(str_of(fresh_outcome, "status"), "modeled");
  EXPECT_EQ(u64_of(fresh_outcome, "collected"), 120u);
  EXPECT_GT(charged_fresh, charged_refill)
      << "the uninterrupted run pays for all 120 queries";
}

}  // namespace
