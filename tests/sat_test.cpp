// Tests for the CDCL SAT solver and the Tseitin circuit encoder.
#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::sat;
using pitfalls::circuit::Netlist;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// --------------------------------------------------------------- Solver

TEST(Solver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  s.add_unit(neg(a));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(Solver, DirectContradictionIsUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  EXPECT_FALSE(s.add_unit(neg(a)));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, EmptyClauseAfterSimplificationIsUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  // (~a) simplifies to the empty clause at root level.
  EXPECT_FALSE(s.add_clause({neg(a)}));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, TautologiesAreDropped) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, XorChainForcesUniqueModel) {
  // x0 xor x1 = 1, x1 xor x2 = 1, x0 = 1  =>  x1 = 0, x2 = 1.
  Solver s;
  const Var x0 = s.new_var();
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  auto add_xor1 = [&](Var u, Var v) {  // u xor v = 1
    s.add_binary(pos(u), pos(v));
    s.add_binary(neg(u), neg(v));
  };
  add_xor1(x0, x1);
  add_xor1(x1, x2);
  s.add_unit(pos(x0));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(x0));
  EXPECT_FALSE(s.model_value(x1));
  EXPECT_TRUE(s.model_value(x2));
}

TEST(Solver, PigeonholePrinciple) {
  // PHP(n+1, n): n+1 pigeons into n holes — UNSAT, needs real search.
  const int holes = 5;
  const int pigeons = 6;
  Solver s;
  std::vector<std::vector<Var>> at(pigeons, std::vector<Var>(holes));
  for (auto& row : at)
    for (auto& v : row) v = s.new_var();
  // Every pigeon sits somewhere.
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(at[p][h]));
    s.add_clause(clause);
  }
  // No two pigeons share a hole.
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_binary(neg(at[p1][h]), neg(at[p2][h]));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, SatisfiablePigeonhole) {
  // n pigeons into n holes — SAT with a perfect matching.
  const int n = 5;
  Solver s;
  std::vector<std::vector<Var>> at(n, std::vector<Var>(n));
  for (auto& row : at)
    for (auto& v : row) v = s.new_var();
  for (int p = 0; p < n; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < n; ++h) clause.push_back(pos(at[p][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < n; ++h)
    for (int p1 = 0; p1 < n; ++p1)
      for (int p2 = p1 + 1; p2 < n; ++p2)
        s.add_binary(neg(at[p1][h]), neg(at[p2][h]));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  // Verify the model is a valid assignment.
  for (int p = 0; p < n; ++p) {
    int count = 0;
    for (int h = 0; h < n; ++h)
      if (s.model_value(at[p][h])) ++count;
    EXPECT_GE(count, 1);
  }
}

TEST(Solver, RandomInstancesMatchBruteForce) {
  // Property test: on random 3-CNF over 10 vars, CDCL must agree with
  // exhaustive enumeration.
  Rng rng(77);
  for (int instance = 0; instance < 30; ++instance) {
    const std::size_t num_vars = 10;
    const std::size_t num_clauses = 38 + rng.uniform_below(12);
    std::vector<std::vector<std::pair<std::size_t, bool>>> cnf;
    for (std::size_t c = 0; c < num_clauses; ++c) {
      std::vector<std::pair<std::size_t, bool>> clause;
      for (int l = 0; l < 3; ++l)
        clause.emplace_back(rng.uniform_below(num_vars), rng.coin());
      cnf.push_back(clause);
    }
    // Brute force.
    bool brute_sat = false;
    for (std::uint64_t assignment = 0; assignment < (1u << num_vars);
         ++assignment) {
      bool all = true;
      for (const auto& clause : cnf) {
        bool any = false;
        for (const auto& [v, negated] : clause) {
          const bool value = (assignment >> v) & 1;
          if (value != negated) any = true;
        }
        if (!any) {
          all = false;
          break;
        }
      }
      if (all) {
        brute_sat = true;
        break;
      }
    }
    // CDCL.
    Solver s;
    std::vector<Var> vars(num_vars);
    for (auto& v : vars) v = s.new_var();
    for (const auto& clause : cnf) {
      std::vector<Lit> lits;
      for (const auto& [v, negated] : clause)
        lits.push_back(Lit(vars[v], negated));
      s.add_clause(lits);
    }
    EXPECT_EQ(s.solve() == SolveResult::kSat, brute_sat)
        << "instance " << instance;
  }
}

TEST(Solver, IncrementalSolvingNarrowsModels) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  // Now force a = 0 — still SAT via b.
  s.add_unit(neg(a));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(b));
  // Now force b = 0 — UNSAT.
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, RejectsUnknownVariables) {
  Solver s;
  (void)s.new_var();
  EXPECT_THROW(s.add_unit(pos(5)), std::invalid_argument);
}

// -------------------------------------------------------------- Encoder

TEST(Encoder, CircuitEncodingAgreesWithSimulation) {
  // For every input pattern, fixing the input vars must force the encoded
  // outputs to the simulated values.
  Rng rng(5);
  pitfalls::circuit::RandomCircuitConfig config;
  config.inputs = 6;
  config.gates = 30;
  config.outputs = 2;
  const Netlist n = pitfalls::circuit::random_circuit(config, rng);

  for (std::uint64_t v = 0; v < 64; ++v) {
    Solver s;
    const auto enc = encode_netlist(s, n);
    const BitVec in(6, v);
    for (std::size_t i = 0; i < 6; ++i) fix_var(s, enc.input_vars[i], in.get(i));
    ASSERT_EQ(s.solve(), SolveResult::kSat);
    const BitVec expected = n.evaluate(in);
    for (std::size_t o = 0; o < enc.output_vars.size(); ++o)
      EXPECT_EQ(s.model_value(enc.output_vars[o]), expected.get(o))
          << "v=" << v;
  }
}

TEST(Encoder, MiterOfIdenticalCopiesIsUnsat) {
  const Netlist n = pitfalls::circuit::c17();
  Solver s;
  std::vector<Var> shared;
  for (std::size_t i = 0; i < n.num_inputs(); ++i) shared.push_back(s.new_var());
  const auto enc1 = encode_netlist(s, n, shared);
  const auto enc2 = encode_netlist(s, n, shared);
  add_miter(s, enc1.output_vars, enc2.output_vars);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Encoder, MiterFindsFunctionalDifference) {
  // c17 vs c17 with one output inverted: the miter must find a witness.
  const Netlist n = pitfalls::circuit::c17();
  Netlist inverted = pitfalls::circuit::c17();
  // Build an inverted copy manually.
  Netlist m;
  std::vector<std::size_t> remap(n.num_gates());
  for (std::size_t id = 0; id < n.num_gates(); ++id) {
    const auto& g = n.gate(id);
    if (g.type == pitfalls::circuit::GateType::kInput) {
      remap[id] = m.add_input(g.name);
    } else {
      std::vector<std::size_t> fanins;
      for (auto f : g.fanins) fanins.push_back(remap[f]);
      remap[id] = m.add_gate(g.type, fanins, g.name);
    }
  }
  m.mark_output(remap[n.outputs()[0]]);
  const auto inverted_out = m.add_gate(pitfalls::circuit::GateType::kNot,
                                       {remap[n.outputs()[1]]});
  m.mark_output(inverted_out);

  Solver s;
  std::vector<Var> shared;
  for (std::size_t i = 0; i < n.num_inputs(); ++i) shared.push_back(s.new_var());
  const auto enc1 = encode_netlist(s, n, shared);
  const auto enc2 = encode_netlist(s, m, shared);
  add_miter(s, enc1.output_vars, enc2.output_vars);
  ASSERT_EQ(s.solve(), SolveResult::kSat);

  // The witness must really distinguish the circuits.
  BitVec witness(n.num_inputs());
  for (std::size_t i = 0; i < shared.size(); ++i)
    witness.set(i, s.model_value(shared[i]));
  EXPECT_NE(n.evaluate(witness), m.evaluate(witness));
}

TEST(Encoder, EquateAndFixHelpers) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  equate(s, a, b);
  fix_var(s, a, true);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(b));
}

TEST(Encoder, AdderEncodingMatchesArithmetic) {
  const Netlist adder = pitfalls::circuit::ripple_carry_adder(3);
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t a = rng.uniform_below(8);
    const std::uint64_t b = rng.uniform_below(8);
    Solver s;
    const auto enc = encode_netlist(s, adder);
    const BitVec in(6, a | (b << 3));
    for (std::size_t i = 0; i < 6; ++i)
      fix_var(s, enc.input_vars[i], in.get(i));
    ASSERT_EQ(s.solve(), SolveResult::kSat);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 4; ++i)
      if (s.model_value(enc.output_vars[i])) sum |= std::uint64_t{1} << i;
    EXPECT_EQ(sum, a + b);
  }
}

}  // namespace
