// Observability parity for the SAT/locking plane: the solver and attack
// layers mirror their work into the global metrics registry and tracer,
// and the deterministic slices (counters, logical-clock traces) are
// byte-identical across pool thread counts.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "lock/combinational.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using obs::JsonValue;
using obs::JsonWriter;
using obs::MetricsRegistry;
using obs::Tracer;

double counter_value(const std::string& name) {
  return static_cast<double>(MetricsRegistry::global().counter(name).value());
}

/// One deterministic end-to-end run: lock a fixed adder, attack it with the
/// oracle-guided SAT attack. Seeds are pinned so every run consumes the
/// same DIP sequence.
void run_attack_workload() {
  const circuit::Netlist original = circuit::ripple_carry_adder(4);
  support::Rng lock_rng(42);
  const lock::LockedCircuit locked =
      lock::lock_random_xor(original, 6, lock_rng);
  attack::CircuitOracle oracle =
      attack::CircuitOracle::from_netlist(original);
  const auto result = attack::sat_attack(locked, oracle);
  ASSERT_TRUE(result.success);
}

TEST(SatObsTest, SolverAndAttackCountersAreNonzeroAfterAnAttack) {
  MetricsRegistry::global().reset_values();
  Tracer::global().clear();
  run_attack_workload();

  EXPECT_GT(counter_value("sat.solver.decisions"), 0.0);
  EXPECT_GT(counter_value("sat.solver.propagations"), 0.0);
  EXPECT_GT(counter_value("sat.solver.conflicts"), 0.0);
  EXPECT_GT(counter_value("sat.solver.learned_clauses"), 0.0);
  EXPECT_GT(counter_value("sat.solver.learned_literals"), 0.0);
  EXPECT_GT(counter_value("attack.dips"), 0.0);
  EXPECT_GT(counter_value("attack.miter_clauses"), 0.0);
  EXPECT_DOUBLE_EQ(counter_value("attack.key_bits_fixed"), 6.0);
  EXPECT_DOUBLE_EQ(counter_value("lock.xor.key_gates"), 6.0);
  EXPECT_GT(
      MetricsRegistry::global().gauge("sat.solver.max_decision_level").value(),
      0.0);
}

TEST(SatObsTest, SolverStatsMirrorTheGlobalCounters) {
  MetricsRegistry::global().reset_values();
  Tracer::global().clear();

  const circuit::Netlist original = circuit::ripple_carry_adder(4);
  support::Rng lock_rng(42);
  const lock::LockedCircuit locked =
      lock::lock_random_xor(original, 6, lock_rng);
  attack::CircuitOracle oracle =
      attack::CircuitOracle::from_netlist(original);
  const auto result = attack::sat_attack(locked, oracle);
  ASSERT_TRUE(result.success);

  // The main solver's local stats are a lower bound on the global mirror
  // (the key solver and the equivalence check also flush into it).
  EXPECT_GE(counter_value("sat.solver.conflicts"),
            static_cast<double>(result.solver_stats.conflicts));
  EXPECT_GE(counter_value("sat.solver.decisions"),
            static_cast<double>(result.solver_stats.decisions));
}

TEST(SatObsTest, CountersAndTraceAreDeterministicAcrossThreadCounts) {
  std::vector<std::string> counter_snapshots;
  std::vector<std::string> trace_snapshots;
  for (const std::size_t threads : {1u, 4u}) {
    support::set_pool_thread_count(threads);
    MetricsRegistry::global().reset_values();
    Tracer::global().clear();
    Tracer::global().set_clock(obs::TraceClock::kLogical);
    run_attack_workload();
    counter_snapshots.push_back(MetricsRegistry::global().counters_json());
    JsonWriter w;
    Tracer::global().write_json(w);
    trace_snapshots.push_back(w.str());
    Tracer::global().clear();
    Tracer::global().set_clock(obs::TraceClock::kWall);
  }
  support::set_pool_thread_count(1);

  ASSERT_EQ(counter_snapshots.size(), 2u);
  EXPECT_EQ(counter_snapshots[0], counter_snapshots[1]);
  EXPECT_EQ(trace_snapshots[0], trace_snapshots[1]);

  // And the deterministic slice is real JSON with the expected keys.
  const JsonValue doc = JsonValue::parse(counter_snapshots[0]);
  ASSERT_NE(doc.find("sat.solver.conflicts"), nullptr);
  EXPECT_GT(doc.find("sat.solver.conflicts")->number_value, 0.0);
  ASSERT_NE(doc.find("attack.dips"), nullptr);
  EXPECT_GT(doc.find("attack.dips")->number_value, 0.0);
}

TEST(SatObsTest, AttackEmitsSpansIntoTheGlobalTracer) {
  MetricsRegistry::global().reset_values();
  Tracer::global().clear();
  run_attack_workload();

  const auto events = Tracer::global().events();
  bool saw_attack = false, saw_encode = false, saw_dip = false,
       saw_extract = false, saw_lock = false;
  for (const auto& e : events) {
    if (e.name == "attack.sat_attack") saw_attack = true;
    if (e.name == "attack.sat_attack.encode_miter") saw_encode = true;
    if (e.name == "attack.sat_attack.dip") saw_dip = true;
    if (e.name == "attack.sat_attack.extract_key") saw_extract = true;
    if (e.name == "lock.random_xor") saw_lock = true;
  }
  EXPECT_TRUE(saw_attack);
  EXPECT_TRUE(saw_encode);
  EXPECT_TRUE(saw_dip);
  EXPECT_TRUE(saw_extract);
  EXPECT_TRUE(saw_lock);
  Tracer::global().clear();
}

}  // namespace
