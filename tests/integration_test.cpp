// Cross-module integration tests: each one runs a shrunken version of a
// paper experiment end-to-end, tying PUF simulators, learners, locking,
// SAT machinery and the audit framework together.
#include <gtest/gtest.h>

#include "attack/sat_attack.hpp"
#include "boolfn/truth_table.hpp"
#include "circuit/generator.hpp"
#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "core/pitfalls.hpp"
#include "lock/combinational.hpp"
#include "lock/fsm_obfuscation.hpp"
#include "ml/anf_learner.hpp"
#include "ml/chow.hpp"
#include "ml/halfspace_tester.hpp"
#include "ml/lmn.hpp"
#include "ml/lstar.hpp"
#include "ml/perceptron.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/combinatorics.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using boolfn::TruthTable;
using puf::BistableRingConfig;
using puf::BistableRingPuf;
using puf::CrpSet;
using puf::XorArbiterPuf;
using support::BitVec;
using support::Rng;

// --------------------------------------------------- Table II pipeline

TEST(Integration, TableTwoPipelinePlateausBelowPerfect) {
  // Full Table II pipeline at n=16: estimate Chow parameters from BR-PUF
  // CRPs, build f', train a Perceptron on f'-labelled challenges, test
  // against the real PUF. More CRPs must NOT push accuracy to ~100%.
  Rng rng(1);
  const BistableRingPuf br(BistableRingConfig::paper_instance(16), rng);
  Rng collect(2);
  const CrpSet chow_set = CrpSet::collect_uniform(br, 10000, collect);
  const CrpSet test_set = CrpSet::collect_uniform(br, 8000, collect);

  const auto chow = ml::estimate_chow(chow_set.challenges(), chow_set.responses());
  const boolfn::Ltf f_prime = ml::reconstruct_ltf(chow);

  // Train the Perceptron on challenges re-labelled by f'.
  const CrpSet train = chow_set.relabel(f_prime);
  Rng train_rng(3);
  const ml::LinearModel model =
      ml::Perceptron({.max_epochs = 32}).fit_model(
          train.challenges(), train.responses(), ml::pm_with_bias, train_rng);

  const double accuracy = test_set.accuracy_of(model);
  EXPECT_GT(accuracy, 0.7);   // far better than chance...
  EXPECT_LT(accuracy, 0.97);  // ...but the plateau is real: BR != LTF
}

TEST(Integration, TableTwoPlateauIsRepresentationNotSampleSize) {
  // Against a *true* LTF the very same pipeline does converge toward
  // perfect accuracy — isolating the representation as the culprit.
  Rng rng(5);
  BistableRingConfig cfg;
  cfg.bits = 16;
  cfg.nonlinear_share = 0.0;  // exact halfspace
  const BistableRingPuf ltf_like(cfg, rng);
  Rng collect(6);
  const CrpSet chow_set = CrpSet::collect_uniform(ltf_like, 20000, collect);
  const CrpSet test_set = CrpSet::collect_uniform(ltf_like, 8000, collect);

  const auto chow = ml::estimate_chow(chow_set.challenges(), chow_set.responses());
  const boolfn::Ltf f_prime = ml::reconstruct_ltf(chow);
  EXPECT_GT(test_set.accuracy_of(f_prime), 0.95);
}

// -------------------------------------------------- Table III pipeline

TEST(Integration, TableThreeTesterSeparatesBrFromLtf) {
  Rng rng(7);
  const BistableRingPuf br(BistableRingConfig::paper_instance(16), rng);
  BistableRingConfig ltf_cfg;
  ltf_cfg.bits = 16;
  ltf_cfg.nonlinear_share = 0.0;
  const BistableRingPuf ltf_like(ltf_cfg, rng);

  const ml::HalfspaceTester tester(0.12);
  Rng test_rng(8);
  const auto br_report = tester.test(br, 40000, test_rng);
  const auto ltf_report = tester.test(ltf_like, 40000, test_rng);
  EXPECT_FALSE(br_report.accepted);
  EXPECT_TRUE(ltf_report.accepted);
  EXPECT_GT(br_report.far_from_halfspace,
            ltf_report.far_from_halfspace + 0.1);
}

// ------------------------------------------- Corollary 1 demonstration

TEST(Integration, LmnSampleDemandTracksCorollaryOneShape) {
  // With a fixed sample budget, LMN accuracy decays as k rises (its demand
  // is n^{O(k^2/eps^2)}), matching the analytic bound's blow-up.
  Rng rng(9);
  Rng learn_rng(10);
  const ml::LmnLearner learner({.degree = 2, .prune_below = 0.0});
  std::vector<double> accuracies;
  for (std::size_t k : {1u, 2u, 4u}) {
    const XorArbiterPuf puf = XorArbiterPuf::independent(10, k, 0.0, rng);
    const auto view = puf.feature_space_view();
    const auto h = learner.learn(view, 8000, learn_rng);
    accuracies.push_back(1.0 - TruthTable::from_function(h).distance(
                                   TruthTable::from_function(view)));
  }
  EXPECT_GT(accuracies[0], accuracies[2] + 0.1);

  // And the analytic Table I row must blow up accordingly.
  const double bound_k1 = core::lmn_crp_bound(10, 1, 0.5, 0.01);
  const double bound_k4 = core::lmn_crp_bound(10, 4, 0.5, 0.01);
  EXPECT_GT(bound_k4 / bound_k1, 1e6);
}

// ------------------------------------------- Corollary 2 demonstration

TEST(Integration, MembershipQueriesLearnXorOfNearJuntaChains) {
  // Corollary 2's pipeline made concrete: XOR of decaying-weight chains ~=
  // sparse low-degree polynomial in the dominant variables; the
  // bounded-degree ANF learner + MQ access recovers a high-accuracy model
  // with polynomially many queries.
  Rng rng(11);
  const std::size_t n = 14;
  // Build 2 chains with sharply decaying weights (near 2-juntas each).
  std::vector<puf::ArbiterPuf> chains;
  for (int c = 0; c < 2; ++c) {
    std::vector<double> w(n + 1, 0.0);
    w[0] = 2.0 + rng.uniform01();
    w[1] = 1.0 + rng.uniform01();
    for (std::size_t i = 2; i <= n; ++i) w[i] = 0.02 * rng.gaussian();
    chains.emplace_back(std::move(w), 0.0);
  }
  const XorArbiterPuf puf{std::move(chains)};
  const auto target = puf.feature_space_view();

  // The feature-space function is (nearly) a function of 4 variables;
  // interpolate its ANF at degree 4.
  ml::FunctionMembershipOracle oracle(target);
  const auto result = ml::learn_anf_bounded_degree(oracle, 4);
  Rng eval(12);
  std::size_t agree = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, eval.coin());
    if (result.polynomial.eval_pm(x) == target.eval_pm(x)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / 4000.0, 0.95);
  EXPECT_EQ(result.membership_queries,
            pitfalls::support::binomial_sum(n, 4));
}

// ------------------------------------ SAT attack as exact MQ learning

TEST(Integration, SatAttackIsExactLearningWithMembershipQueries) {
  // The Section IV point: with chosen inputs (DIPs are chosen challenges),
  // the attacker learns the locked circuit *exactly* — and needs far fewer
  // queries than the 2^n random-example coupon-collector would.
  Rng rng(13);
  circuit::RandomCircuitConfig config;
  config.inputs = 12;
  config.gates = 60;
  config.outputs = 2;
  const circuit::Netlist original = circuit::random_circuit(config, rng);
  const std::size_t key_bits =
      std::min<std::size_t>(12, lock::lockable_gate_count(original));
  const lock::LockedCircuit locked =
      lock::lock_random_xor(original, key_bits, rng);
  attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(original);
  const auto result = attack::sat_attack(locked, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(attack::keys_equivalent(original, locked, result.key));
  EXPECT_LT(result.oracle_queries, 100u);  // << 2^12 inputs
}

// --------------------------------------------- L* on obfuscated FSMs

TEST(Integration, LStarDefeatsFsmObfuscationEndToEnd) {
  Rng rng(17);
  const circuit::MealyMachine functional =
      circuit::MealyMachine::random(8, 2, 2, rng);
  const lock::ObfuscatedFsm obf = lock::obfuscate_fsm(functional, 5, rng);
  const circuit::Dfa target = obf.functional_mode_dfa();

  ml::ExactDfaTeacher teacher(target);
  ml::LStarStats stats;
  const circuit::Dfa learned = ml::LStarLearner().learn(teacher, &stats);
  EXPECT_FALSE(circuit::Dfa::distinguishing_word(target, learned).has_value());
  // Membership queries stay polynomial in the machine size.
  EXPECT_LT(stats.membership_queries, 100000u);
}

// ------------------------------------------------- audit consistency

TEST(Integration, AuditFindingsMatchObservedPhenomena) {
  // The auditor flags the BR-as-LTF claim; the tester empirically confirms
  // the same pitfall. Keeping them consistent is the library's raison
  // d'etre.
  const core::PitfallAuditor auditor;
  const auto findings = auditor.audit(core::claims::xu2015_br_ltf(),
                                      core::realistic_hardware_attacker());
  bool representation_flagged = false;
  for (const auto& f : findings)
    if (f.kind == core::PitfallKind::kRepresentationUnvalidated)
      representation_flagged = true;
  ASSERT_TRUE(representation_flagged);

  Rng rng(19);
  const BistableRingPuf br(BistableRingConfig::paper_instance(16), rng);
  Rng test_rng(20);
  const auto report = ml::HalfspaceTester(0.12).test(br, 40000, test_rng);
  EXPECT_FALSE(report.accepted);  // the empirical side of the same finding
}

// ------------------------------------------------- bounds sanity check

TEST(Integration, EmpiricalPerceptronNeedsFarFewerCrpsThanTheBound) {
  // Upper bounds are upper bounds: the empirical CRP demand for a single
  // arbiter chain sits far below the [9] formula — worth checking, since
  // the paper warns against reading bounds as predictions.
  Rng rng(21);
  const puf::ArbiterPuf puf(16, 0.0, rng);
  Rng collect(22);
  const CrpSet all = CrpSet::collect_uniform(puf, 3000, collect);
  const auto [train, test] = all.split_at(2000);
  Rng train_rng(23);
  const ml::LinearModel model = ml::Perceptron().fit_model(
      train.challenges(), train.responses(), ml::parity_with_bias, train_rng);
  EXPECT_GT(test.accuracy_of(model), 0.95);
  EXPECT_LT(2000.0, core::perceptron_crp_bound(16, 1, 0.05, 0.01));
}

}  // namespace
