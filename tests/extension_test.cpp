// Tests for the extension substrates: SARLock point-function locking, the
// lockdown authentication protocol and the feed-forward arbiter PUF.
#include <gtest/gtest.h>

#include "attack/appsat.hpp"
#include "attack/sat_attack.hpp"
#include "boolfn/truth_table.hpp"
#include "circuit/generator.hpp"
#include "lock/antisat.hpp"
#include "lock/sarlock.hpp"
#include "ml/chow.hpp"
#include "ml/features.hpp"
#include "ml/halfspace_tester.hpp"
#include "ml/logistic.hpp"
#include "puf/crp.hpp"
#include "puf/feed_forward.hpp"
#include "puf/lockdown.hpp"
#include "puf/metrics.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using lock::LockedCircuit;
using puf::CrpSet;
using support::BitVec;
using support::Rng;

// -------------------------------------------------------------- SARLock

TEST(SarLock, CorrectKeyPreservesFunction) {
  Rng rng(1);
  const circuit::Netlist original = circuit::ripple_carry_adder(3);
  const LockedCircuit locked = lock::lock_sarlock(original, 6, rng);
  EXPECT_EQ(locked.num_key_inputs(), 6u);
  for (std::uint64_t v = 0; v < 64; ++v) {
    const BitVec data(6, v);
    EXPECT_EQ(locked.evaluate(data, locked.correct_key),
              original.evaluate(data))
        << "v=" << v;
  }
}

TEST(SarLock, WrongKeyFlipsExactlyTheProtectedPattern) {
  // With sar_bits == data inputs, a wrong key corrupts exactly the inputs
  // whose guarded bits equal the key — one pattern here.
  Rng rng(2);
  const circuit::Netlist original = circuit::equality_comparator(3);  // 6 in
  const LockedCircuit locked = lock::lock_sarlock(original, 6, rng);
  Rng key_rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    BitVec key(6);
    for (std::size_t i = 0; i < 6; ++i) key.set(i, key_rng.coin());
    if (key == locked.correct_key) continue;
    std::size_t wrong_outputs = 0;
    for (std::uint64_t v = 0; v < 64; ++v) {
      const BitVec data(6, v);
      if (locked.evaluate(data, key) != original.evaluate(data))
        ++wrong_outputs;
    }
    EXPECT_EQ(wrong_outputs, 1u) << "key " << key.to_string();
  }
}

TEST(SarLock, SatAttackNeedsDipPerWrongKey) {
  // The SAT-resilience property: DIP count ~ 2^sar_bits, in stark contrast
  // with random XOR locking.
  Rng rng(5);
  const circuit::Netlist original = circuit::ripple_carry_adder(3);
  const LockedCircuit sar = lock::lock_sarlock(original, 6, rng);
  attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(original);
  const auto result = attack::sat_attack(sar, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(attack::keys_equivalent(original, sar, result.key));
  EXPECT_GE(result.dip_iterations, 30u);  // ~2^6 - something
}

TEST(SarLock, AppSatSettlesEarlyWithLowErrorKey) {
  Rng rng(7);
  const circuit::Netlist original = circuit::ripple_carry_adder(4);  // 8 in
  const LockedCircuit sar = lock::lock_sarlock(original, 8, rng);
  attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(original);
  Rng attack_rng(8);
  attack::AppSatConfig config;
  config.dips_per_round = 4;
  config.random_queries = 64;
  config.error_threshold = 0.02;
  config.max_rounds = 8;
  const auto result = attack::appsat(sar, oracle, attack_rng, config);
  // AppSAT stops long before the 2^8 DIPs the exact attack would need...
  EXPECT_LT(result.dip_iterations, 64u);
  // ...and its key is wrong on at most a 2^-8-ish fraction of inputs.
  Rng eval(9);
  const double acc = lock::key_accuracy(original, sar, result.key, 8192, eval);
  EXPECT_GT(acc, 0.98);
}

TEST(SarLock, ComposesWithXorLocking) {
  Rng rng(11);
  const circuit::Netlist original = circuit::ripple_carry_adder(3);
  const LockedCircuit combo = lock::lock_sarlock_plus_xor(original, 4, 5, rng);
  EXPECT_EQ(combo.num_key_inputs(), 9u);
  for (std::uint64_t v = 0; v < 64; ++v) {
    const BitVec data(6, v);
    EXPECT_EQ(combo.evaluate(data, combo.correct_key),
              original.evaluate(data));
  }
  // The SAT attack still recovers a functionally exact key.
  attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(original);
  const auto result = attack::sat_attack(combo, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(attack::keys_equivalent(original, combo, result.key));
}

TEST(SarLock, ValidatesParameters) {
  Rng rng(13);
  const circuit::Netlist original = circuit::equality_comparator(2);  // 4 in
  EXPECT_THROW(lock::lock_sarlock(original, 0, rng), std::invalid_argument);
  EXPECT_THROW(lock::lock_sarlock(original, 5, rng), std::invalid_argument);
}

// -------------------------------------------------------------- Anti-SAT

TEST(AntiSat, CorrectKeyPreservesFunction) {
  Rng rng(101);
  const circuit::Netlist original = circuit::ripple_carry_adder(3);
  const LockedCircuit locked = lock::lock_antisat(original, 6, rng);
  EXPECT_EQ(locked.num_key_inputs(), 12u);  // KA + KB
  for (std::uint64_t v = 0; v < 64; ++v) {
    const BitVec data(6, v);
    EXPECT_EQ(locked.evaluate(data, locked.correct_key),
              original.evaluate(data));
  }
}

TEST(AntiSat, AnyEqualKeyPairIsCorrect) {
  // The correct-key SET of Anti-SAT is {KA == KB}: every agreeing pair
  // leaves the circuit intact.
  Rng rng(102);
  const circuit::Netlist original = circuit::equality_comparator(3);
  const LockedCircuit locked = lock::lock_antisat(original, 6, rng);
  Rng key_rng(103);
  for (int trial = 0; trial < 5; ++trial) {
    BitVec key(12);
    for (std::size_t i = 0; i < 6; ++i) {
      const bool bit = key_rng.coin();
      key.set(i, bit);
      key.set(6 + i, bit);
    }
    EXPECT_DOUBLE_EQ(key_accuracy(original, locked, key, 4096, key_rng), 1.0);
  }
}

TEST(AntiSat, MismatchedKeysFlipExactlyOnePattern) {
  Rng rng(104);
  const circuit::Netlist original = circuit::ripple_carry_adder(3);
  const LockedCircuit locked = lock::lock_antisat(original, 6, rng);
  Rng key_rng(105);
  for (int trial = 0; trial < 5; ++trial) {
    BitVec key(12);
    for (std::size_t i = 0; i < 12; ++i) key.set(i, key_rng.coin());
    // Skip the measure-zero case KA == KB.
    bool equal = true;
    for (std::size_t i = 0; i < 6; ++i)
      equal = equal && key.get(i) == key.get(6 + i);
    if (equal) continue;
    std::size_t wrong = 0;
    for (std::uint64_t v = 0; v < 64; ++v) {
      const BitVec data(6, v);
      if (locked.evaluate(data, key) != original.evaluate(data)) ++wrong;
    }
    EXPECT_EQ(wrong, 1u);
  }
}

TEST(AntiSat, SatAttackPaysExponentialDips) {
  Rng rng(106);
  const circuit::Netlist original = circuit::ripple_carry_adder(3);
  const LockedCircuit locked = lock::lock_antisat(original, 6, rng);
  attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(original);
  const auto result = attack::sat_attack(locked, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(attack::keys_equivalent(original, locked, result.key));
  EXPECT_GE(result.dip_iterations, 30u);  // ~2^6 protected patterns
}

TEST(AntiSat, ValidatesParameters) {
  Rng rng(107);
  const circuit::Netlist original = circuit::equality_comparator(2);
  EXPECT_THROW(lock::lock_antisat(original, 0, rng), std::invalid_argument);
  EXPECT_THROW(lock::lock_antisat(original, 5, rng), std::invalid_argument);
}

// ------------------------------------------------------------- lockdown

TEST(Lockdown, BudgetIsEnforced) {
  Rng rng(17);
  puf::LockdownConfig config;
  config.stages = 16;
  config.chains = 2;
  config.crp_budget = 5;
  puf::LockdownToken token(config, rng);
  Rng proto(18);
  const BitVec nonce(8);
  for (int round = 0; round < 5; ++round)
    EXPECT_TRUE(token.authenticate(nonce, proto).has_value());
  EXPECT_FALSE(token.authenticate(nonce, proto).has_value());
  EXPECT_EQ(token.remaining_budget(), 0u);
}

TEST(Lockdown, TranscriptChallengeContainsVerifierNonce) {
  Rng rng(19);
  puf::LockdownConfig config;
  config.stages = 16;
  config.crp_budget = 10;
  puf::LockdownToken token(config, rng);
  Rng proto(20);
  BitVec nonce(8, 0b10110101);
  const auto transcript = token.authenticate(nonce, proto);
  ASSERT_TRUE(transcript.has_value());
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(transcript->challenge.get(i), nonce.get(i));
}

TEST(Lockdown, TokenNonceDeniesChosenChallenges) {
  // Even replaying the same verifier nonce, the applied challenges differ:
  // the adversary cannot realise a membership query.
  Rng rng(21);
  puf::LockdownConfig config;
  config.stages = 32;
  config.crp_budget = 50;
  puf::LockdownToken token(config, rng);
  Rng proto(22);
  const BitVec nonce(16, 0xabcd);
  std::set<std::string> seen;
  for (int round = 0; round < 20; ++round) {
    const auto t = token.authenticate(nonce, proto);
    ASSERT_TRUE(t.has_value());
    seen.insert(t->challenge.to_string());
  }
  EXPECT_GT(seen.size(), 15u);  // token half re-randomised every round
}

TEST(Lockdown, ResponsesMatchThePuf) {
  Rng rng(23);
  puf::LockdownConfig config;
  config.stages = 16;
  config.chains = 2;
  config.noise_sigma = 0.0;
  config.crp_budget = 30;
  puf::LockdownToken token(config, rng);
  Rng proto(24);
  for (int round = 0; round < 30; ++round) {
    BitVec nonce(8);
    for (std::size_t i = 0; i < 8; ++i) nonce.set(i, proto.coin());
    const auto t = token.authenticate(nonce, proto);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->response, token.puf().eval_pm(t->challenge));
  }
}

TEST(Lockdown, EavesdropperAccuracyGrowsWithBudget) {
  // The design premise of [10]: fewer exposed CRPs, worse model. Compare a
  // starved budget with a generous one on the same construction size.
  auto accuracy_with_budget = [](std::size_t budget) {
    Rng rng(25);
    puf::LockdownConfig config;
    config.stages = 32;
    config.chains = 1;  // single chain: the classic modeling-attack target
    config.crp_budget = budget;
    puf::LockdownToken token(config, rng);
    Rng proto(26);

    CrpSet transcript_crps;
    for (std::size_t round = 0; round < budget; ++round) {
      BitVec nonce(16);
      for (std::size_t i = 0; i < 16; ++i) nonce.set(i, proto.coin());
      const auto t = token.authenticate(nonce, proto);
      transcript_crps.add(t->challenge, t->response);
    }
    Rng train_rng(27);
    const ml::LinearModel model = ml::LogisticRegression().fit_model(
        transcript_crps.challenges(), transcript_crps.responses(),
        ml::parity_with_bias, train_rng);
    const CrpSet eval = CrpSet::collect_uniform(token.puf(), 4000, train_rng);
    return eval.accuracy_of(model);
  };
  const double starved = accuracy_with_budget(40);
  const double generous = accuracy_with_budget(2000);
  EXPECT_GT(generous, 0.95);
  EXPECT_LT(starved, generous - 0.05);
}

// --------------------------------------------------------- feed-forward

TEST(FeedForward, ZeroLoopsMatchesPlainChainStructure) {
  // Without loops the recursion is the plain arbiter model: the
  // parity-feature representation must be exact.
  Rng rng(31);
  const puf::FeedForwardArbiterPuf puf(16, 0, 0.0, rng);
  Rng collect(32);
  const CrpSet train = CrpSet::collect_uniform(puf, 3000, collect);
  const CrpSet test = CrpSet::collect_uniform(puf, 1500, collect);
  Rng train_rng(33);
  const ml::LinearModel model = ml::LogisticRegression().fit_model(
      train.challenges(), train.responses(), ml::parity_with_bias, train_rng);
  EXPECT_GT(test.accuracy_of(model), 0.95);
}

TEST(FeedForward, LoopsBreakTheLtfRepresentation) {
  Rng rng(35);
  const puf::FeedForwardArbiterPuf puf(16, 4, 0.0, rng);
  Rng collect(36);
  const CrpSet train = CrpSet::collect_uniform(puf, 6000, collect);
  const CrpSet test = CrpSet::collect_uniform(puf, 3000, collect);
  Rng train_rng(37);
  const ml::LinearModel model = ml::LogisticRegression().fit_model(
      train.challenges(), train.responses(), ml::parity_with_bias, train_rng);
  // Clearly better than chance, clearly below the plain-chain accuracy.
  const double acc = test.accuracy_of(model);
  EXPECT_GT(acc, 0.6);
  EXPECT_LT(acc, 0.97);
}

TEST(FeedForward, DeterministicWithoutNoise) {
  Rng rng(39);
  const puf::FeedForwardArbiterPuf puf(12, 2, 0.0, rng);
  Rng eval(40);
  BitVec c(12);
  for (std::size_t i = 0; i < 12; ++i) c.set(i, eval.coin());
  const int first = puf.eval_noisy(c, eval);
  for (int t = 0; t < 10; ++t) EXPECT_EQ(puf.eval_noisy(c, eval), first);
}

TEST(FeedForward, RoughlyUniformOnAverage) {
  // Individual feed-forward instances are noticeably biased (the loops pin
  // select bits toward dominant signs — a known weakness of the
  // construction); the ensemble average must still be near 1/2.
  Rng rng(41);
  Rng eval(42);
  double total = 0.0;
  const int instances = 10;
  for (int i = 0; i < instances; ++i) {
    const puf::FeedForwardArbiterPuf puf(24, 3, 0.0, rng);
    total += puf::uniformity(puf, 4000, eval);
  }
  EXPECT_NEAR(total / instances, 0.5, 0.1);
}

TEST(FeedForward, ValidatesConstruction) {
  Rng rng(43);
  EXPECT_THROW(puf::FeedForwardArbiterPuf(3, 0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(puf::FeedForwardArbiterPuf(8, 4, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(puf::FeedForwardArbiterPuf({1.0, 2.0, 3.0, 4.0, 5.0},
                                          {{3, 2}}, 0.0),
               std::invalid_argument);
}

TEST(FeedForward, ExplicitLoopsAreApplied) {
  // Construct two instances differing only in one loop and find a
  // challenge where they disagree.
  std::vector<double> w{0.5, -1.0, 0.8, -0.3, 1.2, 0.1, -0.7, 0.9, 0.2};
  const puf::FeedForwardArbiterPuf plain(w, {}, 0.0);
  const puf::FeedForwardArbiterPuf looped(w, {{1, 5}}, 0.0);
  bool differs = false;
  for (std::uint64_t v = 0; v < 256 && !differs; ++v) {
    const BitVec c(8, v);
    differs = plain.eval_pm(c) != looped.eval_pm(c);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
