// Tests for the membership/equivalence-query machinery: oracles, the
// bounded-degree ANF interpolator, the Schapire–Sellie-style sparse
// polynomial learner and the junta learner (Corollary 2's toolchain).
#include <gtest/gtest.h>

#include "boolfn/anf.hpp"
#include "boolfn/ltf.hpp"
#include "boolfn/truth_table.hpp"
#include "ml/anf_learner.hpp"
#include "ml/junta.hpp"
#include "ml/oracle.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/combinatorics.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::ml;
using pitfalls::boolfn::AnfPolynomial;
using pitfalls::boolfn::FunctionView;
using pitfalls::boolfn::Ltf;
using pitfalls::boolfn::TruthTable;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// -------------------------------------------------------------- oracles

TEST(Oracle, MembershipCountsQueries) {
  const FunctionView f(3, [](const BitVec& x) { return x.pm_one(0); }, "d");
  FunctionMembershipOracle oracle(f);
  EXPECT_EQ(oracle.queries(), 0u);
  oracle.query_pm(BitVec(3));
  oracle.query_f2(BitVec(3, 1));
  EXPECT_EQ(oracle.queries(), 2u);
}

TEST(Oracle, LifetimeCountersSurviveResets) {
  const FunctionView f(3, [](const BitVec& x) { return x.pm_one(0); }, "d");
  FunctionMembershipOracle mq(f);
  mq.query_pm(BitVec(3));
  mq.query_pm(BitVec(3, 1));
  mq.reset_queries();
  mq.query_pm(BitVec(3));
  EXPECT_EQ(mq.queries(), 1u);
  EXPECT_EQ(mq.lifetime_queries(), 3u);

  // EquivalenceOracle mirrors the same per-phase / lifetime split.
  ExhaustiveEquivalenceOracle eq(f);
  (void)eq.counterexample(f);
  (void)eq.counterexample(f);
  eq.reset_calls();
  (void)eq.counterexample(f);
  EXPECT_EQ(eq.calls(), 1u);
  EXPECT_EQ(eq.lifetime_calls(), 3u);
}

TEST(Oracle, ExhaustiveEquivalenceFindsDifference) {
  const FunctionView f(4, [](const BitVec& x) { return x.pm_one(0); }, "d0");
  const FunctionView g(4, [](const BitVec& x) { return x.pm_one(1); }, "d1");
  ExhaustiveEquivalenceOracle oracle(f);
  const auto cex = oracle.counterexample(g);
  ASSERT_TRUE(cex.has_value());
  EXPECT_NE(f.eval_pm(*cex), g.eval_pm(*cex));
  EXPECT_FALSE(oracle.counterexample(f).has_value());
  EXPECT_EQ(oracle.calls(), 2u);
}

TEST(Oracle, SampledEquivalenceAcceptsEqualFunctions) {
  const FunctionView f(16, [](const BitVec& x) { return x.pm_one(3); }, "d");
  Rng rng(1);
  SampledEquivalenceOracle oracle(f, 0.05, 0.01, rng);
  EXPECT_FALSE(oracle.counterexample(f).has_value());
  EXPECT_GT(oracle.samples_used(), 0u);
}

TEST(Oracle, SampledEquivalenceCatchesFarHypotheses) {
  const FunctionView f(16, [](const BitVec& x) { return x.pm_one(0); }, "d");
  const FunctionView not_f(
      16, [](const BitVec& x) { return -x.pm_one(0); }, "~d");
  Rng rng(2);
  SampledEquivalenceOracle oracle(f, 0.05, 0.01, rng);
  const auto cex = oracle.counterexample(not_f);
  ASSERT_TRUE(cex.has_value());
  EXPECT_NE(f.eval_pm(*cex), not_f.eval_pm(*cex));
}

// ----------------------------------------------- bounded-degree learner

class AnfInterpolation
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AnfInterpolation, RecoversRandomSparsePolynomials) {
  const auto [n, degree] = GetParam();
  Rng rng(static_cast<std::uint64_t>(1000 + n * 10 + degree));
  // Keep the term count below the number of available distinct monomials
  // (degree 1 offers only n of them).
  const std::size_t terms = degree == 1 ? n / 2 : 2 * n;
  const AnfPolynomial target = AnfPolynomial::random(n, terms, degree, rng);
  FunctionMembershipOracle oracle(target);
  const auto result = learn_anf_bounded_degree(oracle, degree);
  EXPECT_EQ(result.polynomial, target);
  EXPECT_EQ(result.membership_queries,
            pitfalls::support::binomial_sum(n, degree));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnfInterpolation,
    ::testing::Combine(::testing::Values<std::size_t>(6, 10, 16),
                       ::testing::Values<std::size_t>(1, 2, 3)));

TEST(AnfLearner, PolyQueryCountIsPolynomialInN) {
  // The Corollary 2 headline: fixed degree -> poly(n) membership queries.
  Rng rng(3);
  std::size_t previous = 0;
  for (std::size_t n : {8, 16, 32}) {
    const AnfPolynomial target = AnfPolynomial::random(n, 5, 2, rng);
    FunctionMembershipOracle oracle(target);
    const auto result = learn_anf_bounded_degree(oracle, 2);
    EXPECT_EQ(result.membership_queries, 1 + n + n * (n - 1) / 2);
    EXPECT_GT(result.membership_queries, previous);
    previous = result.membership_queries;
  }
}

TEST(AnfLearner, UnderestimatedDegreeIsDetectableViaEq) {
  // Degree-3 target interpolated at degree 2: the EQ oracle must refute it.
  Rng rng(4);
  AnfPolynomial target(8);
  target.toggle_monomial(BitVec::from_string("11100000"));
  FunctionMembershipOracle oracle(target);
  const auto result = learn_anf_bounded_degree(oracle, 2);
  ExhaustiveEquivalenceOracle eq(target);
  EXPECT_TRUE(eq.counterexample(result.polynomial).has_value());
}

TEST(AnfLearner, RefusesAbsurdBudgets) {
  const AnfPolynomial target(40);
  FunctionMembershipOracle oracle(target);
  EXPECT_THROW(learn_anf_bounded_degree(oracle, 20), std::invalid_argument);
}

// ------------------------------------------------- sparse-poly learner

class SparsePoly
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SparsePoly, ExactWithExhaustiveEq) {
  const auto [terms, degree] = GetParam();
  Rng rng(static_cast<std::uint64_t>(2000 + terms * 10 + degree));
  const std::size_t n = 12;
  const AnfPolynomial target = AnfPolynomial::random(n, terms, degree, rng);
  FunctionMembershipOracle mq(target);
  ExhaustiveEquivalenceOracle eq(target);
  const auto result = SparsePolyLearner().learn(mq, eq);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.hypothesis, target);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SparsePoly,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4, 8),
                       ::testing::Values<std::size_t>(1, 2, 4)));

TEST(SparsePolyLearner, HandlesParityViaGroupDescent) {
  // Parity = n degree-1 monomials; single-bit descent stalls at full
  // support, the pair descent must escape.
  const std::size_t n = 10;
  std::vector<BitVec> singletons;
  for (std::size_t i = 0; i < n; ++i) {
    BitVec m(n);
    m.set(i, true);
    singletons.push_back(m);
  }
  const AnfPolynomial parity(n, singletons);
  FunctionMembershipOracle mq(parity);
  ExhaustiveEquivalenceOracle eq(parity);
  const auto result = SparsePolyLearner().learn(mq, eq);
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.hypothesis, parity);
}

TEST(SparsePolyLearner, ApproximateWithSampledEq) {
  Rng rng(5);
  const AnfPolynomial target = AnfPolynomial::random(16, 6, 3, rng);
  FunctionMembershipOracle mq(target);
  SampledEquivalenceOracle eq(target, 0.02, 0.01, rng);
  const auto result = SparsePolyLearner().learn(mq, eq);
  EXPECT_TRUE(result.exact);  // oracle accepted
  // Verify the hypothesis really is close by sampling.
  std::size_t agree = 0;
  for (int i = 0; i < 4000; ++i) {
    BitVec x(16);
    for (std::size_t b = 0; b < 16; ++b) x.set(b, rng.coin());
    if (target.eval_f2(x) == result.hypothesis.eval_f2(x)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / 4000.0, 0.97);
}

TEST(SparsePolyLearner, RefusesOversizedMinimalPoints) {
  // A single degree-18 monomial: the minimal true point has 18 set bits,
  // beyond the downset-interpolation cap — the learner must refuse loudly
  // instead of looping or exploding.
  const std::size_t n = 24;
  BitVec monomial(n);
  for (std::size_t i = 0; i < 18; ++i) monomial.set(i, true);
  const AnfPolynomial target(n, {monomial});
  FunctionMembershipOracle mq(target);
  ExhaustiveEquivalenceOracle eq(target);
  SparsePolyConfig config;
  config.max_minimal_support = 12;
  config.descent_group_size = 2;
  EXPECT_THROW(SparsePolyLearner(config).learn(mq, eq),
               std::invalid_argument);
}

TEST(SparsePolyLearner, CountsQueries) {
  Rng rng(6);
  const AnfPolynomial target = AnfPolynomial::random(10, 3, 2, rng);
  FunctionMembershipOracle mq(target);
  ExhaustiveEquivalenceOracle eq(target);
  const auto result = SparsePolyLearner().learn(mq, eq);
  EXPECT_GT(result.membership_queries, 0u);
  EXPECT_GE(result.equivalence_queries, 2u);  // at least one cex + accept
}

// --------------------------------------------------------- junta learner

TEST(JuntaHypothesis, ProjectsOntoRelevantVariables) {
  // table over vars {1,3}: row bit0 <- var1, bit1 <- var3.
  TruthTable table(2);
  table.set(0b00, +1);
  table.set(0b01, -1);
  table.set(0b10, -1);
  table.set(0b11, +1);
  const JuntaHypothesis h(5, {1, 3}, table);
  BitVec x(5);
  x.set(1, true);  // row 0b01 -> -1
  EXPECT_EQ(h.eval_pm(x), -1);
  x.set(3, true);  // row 0b11 -> +1
  EXPECT_EQ(h.eval_pm(x), +1);
  x.set(0, true);  // irrelevant variable: no change
  EXPECT_EQ(h.eval_pm(x), +1);
}

class JuntaRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JuntaRecovery, FindsPlantedJunta) {
  const std::size_t k = GetParam();
  const std::size_t n = 24;
  Rng rng(3000 + k);
  // Plant a random function on k random variables.
  std::vector<std::size_t> planted;
  while (planted.size() < k) {
    const auto v = static_cast<std::size_t>(rng.uniform_below(n));
    bool dup = false;
    for (auto p : planted) dup = dup || (p == v);
    if (!dup) planted.push_back(v);
  }
  std::sort(planted.begin(), planted.end());
  TruthTable table(k);
  // Parity on the planted variables: every variable relevant.
  for (std::uint64_t row = 0; row < table.num_rows(); ++row)
    table.set(row, (std::popcount(row) & 1) ? -1 : +1);
  const JuntaHypothesis target(n, planted, table);

  FunctionMembershipOracle oracle(target);
  JuntaLearnResult stats;
  const JuntaHypothesis learned =
      JuntaLearner({.probes_per_round = 256, .max_junta = 16})
          .learn(oracle, rng, &stats);
  EXPECT_EQ(learned.relevant(), planted);
  EXPECT_FALSE(stats.hit_cap);
  // Exact recovery.
  for (int trial = 0; trial < 500; ++trial) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng.coin());
    EXPECT_EQ(learned.eval_pm(x), target.eval_pm(x));
  }
}

INSTANTIATE_TEST_SUITE_P(JuntaSizes, JuntaRecovery,
                         ::testing::Values(1, 2, 4, 6));

TEST(JuntaLearner, ConstantFunctionHasNoRelevantVariables) {
  const FunctionView constant(12, [](const BitVec&) { return +1; }, "one");
  FunctionMembershipOracle oracle(constant);
  Rng rng(7);
  JuntaLearnResult stats;
  const auto h = JuntaLearner().learn(oracle, rng, &stats);
  EXPECT_TRUE(stats.relevant.empty());
  EXPECT_EQ(h.eval_pm(BitVec(12, 0xfff)), +1);
}

TEST(JuntaLearner, NearJuntaLtfChainsAreLearnable) {
  // The regime Corollary 2 implicitly needs: decaying-weight arbiter chains
  // are close to juntas on their leading feature bits. We learn the
  // dominating junta and check useful accuracy — and note that *regular*
  // chains would not satisfy this premise (a pitfall in itself).
  Rng rng(8);
  const Ltf near_junta = Ltf::random_decaying(16, 0.35, rng);
  FunctionMembershipOracle oracle(near_junta);
  JuntaLearnResult stats;
  const auto h = JuntaLearner({.probes_per_round = 128, .max_junta = 8})
                     .learn(oracle, rng, &stats);
  std::size_t agree = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    BitVec x(16);
    for (std::size_t b = 0; b < 16; ++b) x.set(b, rng.coin());
    if (h.eval_pm(x) == near_junta.eval_pm(x)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / 4000.0, 0.9);
}

}  // namespace
