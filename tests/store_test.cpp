// Tests for the crash-safe experiment store (DESIGN.md §14): snapshot
// format integrity (corruption torture sweeps), bit-exact codec round
// trips, checkpoint sessions, oracle journal record/replay, and the
// resume-determinism + budget-accounting contracts the benches rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "lock/combinational.hpp"
#include "ml/features.hpp"
#include "ml/robust/learners.hpp"
#include "obs/metrics.hpp"
#include "puf/arbiter.hpp"
#include "store/checkpoint.hpp"
#include "store/observation_journal.hpp"
#include "store/serialize.hpp"
#include "support/rng.hpp"
#include "support/snapshot/snapshot.hpp"

namespace {

using namespace pitfalls;
using namespace pitfalls::support::snapshot;
using pitfalls::ml::robust::FaultConfig;
using pitfalls::ml::robust::FaultyMembershipOracle;
using pitfalls::ml::robust::LearnOutcome;
using pitfalls::ml::robust::QueryBudgetExhaustedError;
using pitfalls::ml::robust::RobustLearnConfig;
using pitfalls::ml::robust::TransientFaultError;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// Scratch snapshot path removed (with its .tmp) when the test exits.
class TempSnapshot {
 public:
  explicit TempSnapshot(const std::string& name)
      : path_("store_test_" + name + ".snap") {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~TempSnapshot() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

BitVec make_bitvec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.coin());
  return v;
}

// A small reference snapshot image shared by the corruption sweeps.
std::string reference_image() {
  SnapshotWriter w(42, "store_test.v1");
  SectionWriter& a = w.section("alpha");
  a.u32(7);
  a.str("payload");
  SectionWriter& b = w.section("beta");
  for (int i = 0; i < 32; ++i) b.u8(static_cast<std::uint8_t>(i));
  return w.encode();
}

// ---------------------------------------------------------------- format

TEST(SnapshotFormat, RoundTripsSeedProvenanceAndSections) {
  SnapshotWriter w(9001, "bench_x.v1.smoke=1");
  SectionWriter& s = w.section("s");
  s.u8(7);
  s.u32(0xDEADBEEFU);
  s.u64(0x0123456789ABCDEFULL);
  s.i64(-17);
  s.f64(-0.0);
  s.str("hello");
  w.section("empty");

  const SnapshotReader r(w.encode());
  EXPECT_EQ(r.seed(), 9001u);
  EXPECT_EQ(r.provenance(), "bench_x.v1.smoke=1");
  EXPECT_EQ(r.section_names(), (std::vector<std::string>{"s", "empty"}));

  SectionReader cur = r.section("s");
  EXPECT_EQ(cur.u8(), 7u);
  EXPECT_EQ(cur.u32(), 0xDEADBEEFU);
  EXPECT_EQ(cur.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(cur.i64(), -17);
  const double neg_zero = cur.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(cur.str(), "hello");
  EXPECT_TRUE(cur.at_end());
  EXPECT_TRUE(r.section("empty").at_end());
}

TEST(SnapshotFormat, EncodeIsDeterministic) {
  EXPECT_EQ(reference_image(), reference_image());
}

TEST(SnapshotFormat, SectionLifecycle) {
  SnapshotWriter w(1, "p");
  w.section("a").u8(1);
  w.section("a").u8(2);  // get-or-create appends
  EXPECT_EQ(w.section("a").size(), 2u);
  w.reset_section("a").u8(3);  // create-or-clear
  EXPECT_EQ(w.section("a").size(), 1u);
  EXPECT_TRUE(w.has_section("a"));
  w.remove_section("a");
  EXPECT_FALSE(w.has_section("a"));
  w.remove_section("never-existed");  // ignored
}

TEST(SnapshotFormat, RejectsWrongMagic) {
  std::string image = reference_image();
  image[0] = 'X';
  try {
    SnapshotReader r(image);
    FAIL() << "bad magic accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.fault(), SnapshotFault::bad_magic);
  }
}

TEST(SnapshotFormat, RejectsUnknownVersion) {
  std::string image = reference_image();
  image[8] = static_cast<char>(SnapshotReader::kFormatVersion + 1);
  try {
    SnapshotReader r(image);
    FAIL() << "unknown version accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.fault(), SnapshotFault::bad_version);
  }
}

TEST(SnapshotFormat, TruncationAtEveryByteOffsetIsDetected) {
  const std::string image = reference_image();
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_THROW(SnapshotReader(image.substr(0, len)), SnapshotError)
        << "prefix of " << len << " bytes accepted";
  }
  EXPECT_NO_THROW(SnapshotReader{image});
  // Trailing garbage is corruption too, not silently ignored.
  EXPECT_THROW(SnapshotReader(image + "x"), SnapshotError);
}

TEST(SnapshotFormat, BitFlipAtEveryByteOffsetIsDetected) {
  const std::string image = reference_image();
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string mutated = image;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    EXPECT_THROW(SnapshotReader{mutated}, SnapshotError)
        << "bit flip at byte " << i << " accepted";
  }
}

TEST(SnapshotFormat, SectionReaderNeverReadsPastTheEnd) {
  SnapshotWriter w(1, "p");
  w.section("s").u32(5);
  const SnapshotReader r(w.encode());
  SectionReader cur = r.section("s");
  EXPECT_EQ(cur.u32(), 5u);
  try {
    cur.u8();
    FAIL() << "read past end succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.fault(), SnapshotFault::bad_section);
  }
  // A length-prefixed string whose declared length exceeds the payload.
  SnapshotWriter w2(1, "p");
  w2.section("s").u32(1000);
  SectionReader cur2 = SnapshotReader(w2.encode()).section("s");
  EXPECT_THROW(cur2.str(), SnapshotError);
}

TEST(SnapshotFormat, MissingSectionIsATypedError) {
  const SnapshotReader r(reference_image());
  try {
    r.section("nope");
    FAIL() << "missing section returned";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.fault(), SnapshotFault::bad_section);
  }
}

TEST(SnapshotFormat, AtomicWriteReplacesAndCleansUp) {
  TempSnapshot file("atomic");
  write_file_atomic(file.path(), "first");
  EXPECT_EQ(read_file_bytes(file.path()), "first");
  write_file_atomic(file.path(), "second, longer than the first");
  EXPECT_EQ(read_file_bytes(file.path()), "second, longer than the first");
  // The staging file never survives a completed write.
  EXPECT_THROW(read_file_bytes(file.path() + ".tmp"), SnapshotError);
}

TEST(SnapshotFormat, StrayTmpFromAKilledWriterIsHarmless) {
  TempSnapshot file("straytmp");
  const std::string image = reference_image();
  write_file_atomic(file.path(), image);
  // A writer killed mid-write leaves a torn .tmp; the published path is
  // untouched and the next atomic write simply overwrites the leftovers.
  write_file_atomic(file.path() + ".tm", "partial gar");  // any bytes
  std::rename((file.path() + ".tm").c_str(), (file.path() + ".tmp").c_str());
  EXPECT_EQ(read_file_bytes(file.path()), image);
  write_file_atomic(file.path(), "fresh");
  EXPECT_EQ(read_file_bytes(file.path()), "fresh");
}

// ---------------------------------------------------------------- codecs

TEST(StoreCodecs, BitVecRoundTripsAllSizes) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{13},
                              std::size_t{64}, std::size_t{65},
                              std::size_t{130}}) {
    const BitVec v = make_bitvec(n, 77 + n);
    SectionWriter w;
    store::put_bitvec(w, v);
    SectionReader r(w.bytes(), "t");
    EXPECT_EQ(store::get_bitvec(r), v) << "n=" << n;
    EXPECT_TRUE(r.at_end());
  }
}

TEST(StoreCodecs, DoublesRoundTripBitExactly) {
  const std::vector<double> values = {0.0, -0.0, 1.0, -1.5,
                                      1e-308, 1e308, 0.1};
  SectionWriter w;
  store::put_doubles(w, values);
  SectionReader r(w.bytes(), "t");
  const std::vector<double> back = store::get_doubles(r);
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "index " << i;
  }
}

TEST(StoreCodecs, RngRoundTripContinuesTheExactStream) {
  Rng original(123);
  (void)original.gaussian();  // populate the spare-gaussian cache
  (void)original.uniform01();

  SectionWriter w;
  store::put_rng(w, original);
  SectionReader r(w.bytes(), "t");
  Rng restored(999);  // wrong seed, fully overwritten by restore
  store::get_rng(r, restored);

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(original.gaussian()),
              std::bit_cast<std::uint64_t>(restored.gaussian()));
    EXPECT_EQ(original.uniform_below(1000), restored.uniform_below(1000));
  }
}

TEST(StoreCodecs, CrpSetRoundTrips) {
  Rng rng(5);
  const puf::ArbiterPuf target(10, 0.0, rng);
  const puf::CrpSet crps = puf::CrpSet::collect_uniform(target, 50, rng);

  SectionWriter w;
  store::put_crp_set(w, crps);
  SectionReader r(w.bytes(), "t");
  const puf::CrpSet back = store::get_crp_set(r);
  ASSERT_EQ(back.size(), crps.size());
  for (std::size_t i = 0; i < crps.size(); ++i) {
    EXPECT_EQ(back.challenge(i), crps.challenge(i));
    EXPECT_EQ(back.response(i), crps.response(i));
  }
}

TEST(StoreCodecs, HypothesisClassesRoundTrip) {
  const BitVec probe = make_bitvec(6, 3);

  const ml::LinearModel model(6, {0.5, -1.25, 0.0, 2.0, -0.75, 0.25, 1.0},
                              ml::parity_with_bias, "test model");
  SectionWriter wm;
  store::put_linear_model(wm, model);
  SectionReader rm(wm.bytes(), "t");
  const ml::LinearModel model2 =
      store::get_linear_model(rm, ml::parity_with_bias);
  EXPECT_EQ(model2.weights(), model.weights());
  EXPECT_EQ(model2.describe(), model.describe());
  EXPECT_EQ(model2.eval_pm(probe), model.eval_pm(probe));

  const ml::SparseFourierHypothesis fourier(
      6, {make_bitvec(6, 1), make_bitvec(6, 2)}, {0.75, -0.5});
  SectionWriter wf;
  store::put_sparse_fourier(wf, fourier);
  SectionReader rf(wf.bytes(), "t");
  const ml::SparseFourierHypothesis fourier2 = store::get_sparse_fourier(rf);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(fourier2.approximation(probe)),
            std::bit_cast<std::uint64_t>(fourier.approximation(probe)));

  const boolfn::Ltf ltf({1.0, -2.5, 0.5, 0.0, 3.0, -1.0}, 0.25);
  SectionWriter wl;
  store::put_ltf(wl, ltf);
  SectionReader rl(wl.bytes(), "t");
  EXPECT_EQ(store::get_ltf(rl).eval_pm(probe), ltf.eval_pm(probe));

  const boolfn::AnfPolynomial anf(
      6, {make_bitvec(6, 4), make_bitvec(6, 5), BitVec(6)});
  SectionWriter wa;
  store::put_anf(wa, anf);
  SectionReader ra(wa.bytes(), "t");
  EXPECT_EQ(store::get_anf(ra).eval_pm(probe), anf.eval_pm(probe));
}

TEST(StoreCodecs, DfaRoundTrips) {
  circuit::Dfa dfa(3, 2, 0);
  dfa.set_transition(0, 1, 1);
  dfa.set_transition(1, 0, 2);
  dfa.set_transition(2, 1, 0);
  dfa.set_accepting(2, true);

  SectionWriter w;
  store::put_dfa(w, dfa);
  SectionReader r(w.bytes(), "t");
  const circuit::Dfa back = store::get_dfa(r);
  EXPECT_EQ(back.num_states(), 3u);
  EXPECT_EQ(back.start(), 0u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(back.accepting(s), dfa.accepting(s));
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_EQ(back.transition(s, c), dfa.transition(s, c));
  }
}

TEST(StoreCodecs, FaultStateAndOutcomeRoundTrip) {
  const FaultyMembershipOracle::State state{17, 3, 5, 2};
  SectionWriter ws;
  store::put_fault_state(ws, state);
  SectionReader rs(ws.bytes(), "t");
  const auto state2 = store::get_fault_state(rs);
  EXPECT_EQ(state2.raw_queries, 17u);
  EXPECT_EQ(state2.burst_remaining, 3u);
  EXPECT_EQ(state2.flips, 5u);
  EXPECT_EQ(state2.drops, 2u);

  LearnOutcome<ml::LinearModel> outcome;
  outcome.status = ml::robust::LearnStatus::budget_exhausted;
  outcome.best_hypothesis.emplace(
      ml::LinearModel(4, {1.0, 2.0, 3.0, 4.0, 5.0},
                      ml::parity_with_bias, "h"));
  outcome.queries_spent = 321;
  outcome.diagnostics["heldout_accuracy"] = 0.9375;
  outcome.diagnostics["train_examples"] = 300.0;

  SectionWriter w;
  store::put_outcome(w, outcome,
                     [](SectionWriter& hw, const ml::LinearModel& m) {
                       store::put_linear_model(hw, m);
                     });
  SectionReader r(w.bytes(), "t");
  const auto back = store::get_outcome<ml::LinearModel>(
      r, [](SectionReader& hr) {
        return store::get_linear_model(hr, ml::parity_with_bias);
      });
  EXPECT_EQ(back.status, outcome.status);
  ASSERT_TRUE(back.best_hypothesis.has_value());
  EXPECT_EQ(back.best_hypothesis->weights(), outcome.best_hypothesis->weights());
  EXPECT_EQ(back.queries_spent, 321u);
  EXPECT_EQ(back.diagnostics, outcome.diagnostics);
}

// ------------------------------------------------------ checkpoint session

TEST(CheckpointSession, FreshStartWhenNoSnapshotExists) {
  TempSnapshot file("fresh");
  store::CheckpointSession session(file.path(), 7, "p", /*resume=*/true);
  EXPECT_FALSE(session.resumed());
}

TEST(CheckpointSession, UnwritablePathFailsAtConstruction) {
  // The probe must reject a doomed path up front (catchable, so benches can
  // print a diagnostic and exit cleanly), not at the first cadence flush.
  try {
    store::CheckpointSession session("/nonexistent-dir/depth/x.snap", 7, "p",
                                     false);
    FAIL() << "expected SnapshotError{io}";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.fault(), SnapshotFault::io);
  }
}

TEST(CheckpointSession, FlushThenResumeRestoresSections) {
  TempSnapshot file("resume");
  const std::uint64_t loads0 = counter_value("store.snapshot.loads");
  const std::uint64_t resumed0 = counter_value("store.snapshot.resumed");
  const std::uint64_t writes0 = counter_value("store.snapshot.writes");
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    session.section("cell.0.outcome").str("done");
    session.flush();
  }
  EXPECT_EQ(counter_value("store.snapshot.writes"), writes0 + 1);

  store::CheckpointSession session(file.path(), 7, "p", true);
  EXPECT_TRUE(session.resumed());
  ASSERT_TRUE(session.has_section("cell.0.outcome"));
  EXPECT_EQ(session.reader("cell.0.outcome").str(), "done");
  EXPECT_EQ(counter_value("store.snapshot.loads"), loads0 + 1);
  EXPECT_EQ(counter_value("store.snapshot.resumed"), resumed0 + 1);
}

TEST(CheckpointSession, CorruptSnapshotDegradesToCleanStart) {
  TempSnapshot file("corrupt");
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    session.section("s").u64(1);
    session.flush();
  }
  // Flip a payload byte on disk (the section's CRC must catch it).
  std::string bytes = read_file_bytes(file.path());
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  write_file_atomic(file.path(), bytes);

  const std::uint64_t corrupt0 = counter_value("store.snapshot.corrupt");
  store::CheckpointSession session(file.path(), 7, "p", true);
  EXPECT_FALSE(session.resumed());
  EXPECT_FALSE(session.has_section("s"));
  EXPECT_EQ(counter_value("store.snapshot.corrupt"), corrupt0 + 1);
}

TEST(CheckpointSession, IdentityMismatchStartsCleanWithoutCorruptFlag) {
  TempSnapshot file("mismatch");
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    session.section("s").u64(1);
    session.flush();
  }
  const std::uint64_t corrupt0 = counter_value("store.snapshot.corrupt");
  const std::uint64_t mismatch0 = counter_value("store.snapshot.mismatch");
  store::CheckpointSession other_seed(file.path(), 8, "p", true);
  EXPECT_FALSE(other_seed.resumed());
  store::CheckpointSession other_prov(file.path(), 7, "q", true);
  EXPECT_FALSE(other_prov.resumed());
  EXPECT_EQ(counter_value("store.snapshot.mismatch"), mismatch0 + 2);
  EXPECT_EQ(counter_value("store.snapshot.corrupt"), corrupt0);
}

TEST(CheckpointSession, CheckpointWithoutResumeIgnoresExistingSnapshot) {
  TempSnapshot file("noresume");
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    session.section("s").u64(1);
    session.flush();
  }
  store::CheckpointSession session(file.path(), 7, "p", /*resume=*/false);
  EXPECT_FALSE(session.resumed());
  EXPECT_FALSE(session.has_section("s"));
}

// ------------------------------------------------------- recording oracle

TEST(RecordingOracle, ReplayServesRecordedAnswersWithoutPhysicalQueries) {
  TempSnapshot file("replay");
  Rng setup(11);
  const puf::ArbiterPuf target(8, 0.0, setup);
  const std::size_t kQueries = 40;
  std::vector<BitVec> challenges;
  for (std::size_t i = 0; i < kQueries; ++i)
    challenges.push_back(make_bitvec(8, 500 + i));

  std::vector<int> recorded;
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    ml::FunctionMembershipOracle inner(target);
    store::RecordingOracle oracle(inner, session, "u.log", nullptr, 8);
    for (const BitVec& x : challenges) recorded.push_back(oracle.query_pm(x));
    oracle.flush_now();
    EXPECT_EQ(inner.queries(), kQueries);
    EXPECT_EQ(oracle.recorded_events(), kQueries);
    EXPECT_FALSE(oracle.replaying());
  }

  const std::uint64_t replayed0 =
      counter_value("store.snapshot.replayed_queries");
  store::CheckpointSession session(file.path(), 7, "p", true);
  ml::FunctionMembershipOracle inner(target);
  store::RecordingOracle oracle(inner, session, "u.log", nullptr, 8);
  EXPECT_TRUE(oracle.replaying());
  for (std::size_t i = 0; i < kQueries; ++i)
    EXPECT_EQ(oracle.query_pm(challenges[i]), recorded[i]) << "query " << i;
  EXPECT_FALSE(oracle.replaying());
  EXPECT_EQ(oracle.replayed_queries(), kQueries);
  EXPECT_EQ(inner.queries(), 0u) << "replay touched the physical oracle";
  EXPECT_EQ(oracle.queries(), kQueries) << "replay must still count locally";
  EXPECT_EQ(counter_value("store.snapshot.replayed_queries"),
            replayed0 + kQueries);
}

TEST(RecordingOracle, BudgetIsNotDoubleChargedAcrossResume) {
  // Satellite regression: a budget-B channel interrupted after k queries
  // must have exactly B-k answers left after resume — replayed queries
  // charge nothing, and the fault streams continue from the recorded
  // position as if the run had never stopped.
  TempSnapshot file("budget");
  Rng setup(13);
  const puf::ArbiterPuf target(8, 0.0, setup);
  const std::size_t kBudget = 12;
  const std::size_t kBeforeCrash = 5;
  FaultConfig fc;
  fc.flip_rate = 0.3;
  fc.query_budget = kBudget;

  std::vector<BitVec> challenges;
  for (std::size_t i = 0; i < kBudget; ++i)
    challenges.push_back(make_bitvec(8, 900 + i));

  // Uninterrupted reference: all kBudget answers, then refusal.
  std::vector<int> reference;
  {
    ml::FunctionMembershipOracle inner(target);
    FaultyMembershipOracle oracle(inner, fc, 4242);
    for (const BitVec& x : challenges) reference.push_back(oracle.query_pm(x));
    EXPECT_THROW(oracle.query_pm(challenges[0]), QueryBudgetExhaustedError);
  }

  {  // Interrupted run: k queries, flush, "crash".
    store::CheckpointSession session(file.path(), 7, "p", true);
    ml::FunctionMembershipOracle inner(target);
    FaultyMembershipOracle faulty(inner, fc, 4242);
    store::RecordingOracle oracle(faulty, session, "u.log", &faulty, 4);
    for (std::size_t i = 0; i < kBeforeCrash; ++i)
      EXPECT_EQ(oracle.query_pm(challenges[i]), reference[i]);
    oracle.flush_now();
    EXPECT_EQ(faulty.remaining_budget(), kBudget - kBeforeCrash);
  }

  // Resume: a FRESH fault channel (budget back at B) plus the journal.
  store::CheckpointSession session(file.path(), 7, "p", true);
  ml::FunctionMembershipOracle inner(target);
  FaultyMembershipOracle faulty(inner, fc, 4242);
  store::RecordingOracle oracle(faulty, session, "u.log", &faulty, 4);
  for (std::size_t i = 0; i < kBeforeCrash; ++i)
    EXPECT_EQ(oracle.query_pm(challenges[i]), reference[i]);
  // Replay complete: the channel sits exactly where the crash left it.
  EXPECT_EQ(faulty.remaining_budget(), kBudget - kBeforeCrash);
  EXPECT_EQ(inner.queries(), 0u);
  // The remaining budget serves the remaining queries with the same fault
  // pattern as the uninterrupted run, then refuses.
  for (std::size_t i = kBeforeCrash; i < kBudget; ++i)
    EXPECT_EQ(oracle.query_pm(challenges[i]), reference[i]) << "query " << i;
  EXPECT_THROW(oracle.query_pm(challenges[0]), QueryBudgetExhaustedError);
  EXPECT_EQ(inner.queries(), kBudget - kBeforeCrash);
}

TEST(RecordingOracle, BudgetRefusalsAndDropsReplayAsEvents) {
  TempSnapshot file("events");
  Rng setup(17);
  const puf::ArbiterPuf target(8, 0.0, setup);
  FaultConfig fc;
  fc.drop_rate = 0.5;
  fc.query_budget = 6;
  std::vector<BitVec> challenges;
  for (std::size_t i = 0; i < 10; ++i)
    challenges.push_back(make_bitvec(8, 700 + i));

  // Record interactions until the budget refuses a few times.
  std::vector<int> kinds;  // +1/-1 answer, 0 drop, 9 refusal
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    ml::FunctionMembershipOracle inner(target);
    FaultyMembershipOracle faulty(inner, fc, 99);
    store::RecordingOracle oracle(faulty, session, "u.log", &faulty, 2);
    for (const BitVec& x : challenges) {
      try {
        kinds.push_back(oracle.query_pm(x));
      } catch (const TransientFaultError&) {
        kinds.push_back(0);
      } catch (const QueryBudgetExhaustedError&) {
        kinds.push_back(9);
      }
    }
    oracle.flush_now();
  }
  EXPECT_NE(std::count(kinds.begin(), kinds.end(), 9), 0)
      << "test setup never exhausted the budget";

  store::CheckpointSession session(file.path(), 7, "p", true);
  ml::FunctionMembershipOracle inner(target);
  FaultyMembershipOracle faulty(inner, fc, 99);
  store::RecordingOracle oracle(faulty, session, "u.log", &faulty, 2);
  for (std::size_t i = 0; i < challenges.size(); ++i) {
    int kind = 0;
    try {
      kind = oracle.query_pm(challenges[i]);
    } catch (const TransientFaultError&) {
      kind = 0;
    } catch (const QueryBudgetExhaustedError&) {
      kind = 9;
    }
    EXPECT_EQ(kind, kinds[i]) << "event " << i;
  }
  EXPECT_EQ(inner.queries(), 0u);
}

// Satellite regression (DESIGN.md §16): a lockdown-tripped recording can be
// continued against a refilled budget. Recorded refusals are stripped from
// the replay queue (drop_recorded_refusals), recorded answers replay free,
// and only the continuation queries reach the physical oracle.
TEST(RecordingOracle, RefilledBudgetContinuationChargesOnlyLiveQueries) {
  TempSnapshot file("refill");
  Rng setup(23);
  const puf::ArbiterPuf target(8, 0.0, setup);
  FaultConfig fc;
  fc.query_budget = 5;
  std::vector<BitVec> challenges;
  for (std::size_t i = 0; i < 12; ++i)
    challenges.push_back(make_bitvec(8, 900 + i));

  // Leg 1: answer until the lockdown trips (5 answers, then a recorded
  // budget refusal).
  std::vector<int> first_answers;
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    ml::FunctionMembershipOracle inner(target);
    FaultyMembershipOracle faulty(inner, fc, 5);
    store::RecordingOracle oracle(faulty, session, "u.log", &faulty, 2);
    for (const BitVec& x : challenges) {
      try {
        first_answers.push_back(oracle.query_pm(x));
      } catch (const QueryBudgetExhaustedError&) {
        break;
      }
    }
    oracle.flush_now();
  }
  ASSERT_EQ(first_answers.size(), 5u);

  // Leg 2: refilled channel, refusals stripped. The recorded prefix replays
  // byte-identically without touching the inner oracle; the remaining
  // challenges are answered live against the refilled budget.
  store::CheckpointSession session(file.path(), 7, "p", true);
  ml::FunctionMembershipOracle inner(target);
  FaultyMembershipOracle faulty(inner, fc, 5);
  faulty.refill_budget(20);
  store::RecordingOracle oracle(faulty, session, "u.log", &faulty, 2, true);
  std::vector<int> answers;
  for (const BitVec& x : challenges) answers.push_back(oracle.query_pm(x));
  ASSERT_EQ(answers.size(), challenges.size());
  for (std::size_t i = 0; i < first_answers.size(); ++i)
    EXPECT_EQ(answers[i], first_answers[i]) << "replayed answer " << i;
  EXPECT_EQ(oracle.replayed_queries(), 5u);
  EXPECT_EQ(inner.queries(), challenges.size() - first_answers.size());
}

TEST(RecordingOracle, DivergenceThrowsAndBooksTheMetric) {
  TempSnapshot file("diverge");
  Rng setup(19);
  const puf::ArbiterPuf target(8, 0.0, setup);
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    ml::FunctionMembershipOracle inner(target);
    store::RecordingOracle oracle(inner, session, "u.log", nullptr, 2);
    (void)oracle.query_pm(make_bitvec(8, 1));
    oracle.flush_now();
  }
  const std::uint64_t divergence0 = counter_value("store.snapshot.divergence");
  store::CheckpointSession session(file.path(), 7, "p", true);
  ml::FunctionMembershipOracle inner(target);
  store::RecordingOracle oracle(inner, session, "u.log", nullptr, 2);
  EXPECT_THROW(oracle.query_pm(make_bitvec(8, 2)),
               store::ReplayDivergenceError);
  EXPECT_EQ(counter_value("store.snapshot.divergence"), divergence0 + 1);
  EXPECT_EQ(inner.queries(), 0u);
}

// ------------------------------------------------------ checkpointed units

TEST(CheckpointedUnit, StoredOutcomeShortCircuitsTheRun) {
  TempSnapshot file("unit");
  int runs = 0;
  const auto run = [&] {
    ++runs;
    LearnOutcome<ml::LinearModel> outcome;
    outcome.status = ml::robust::LearnStatus::converged;
    outcome.queries_spent = 5;
    return outcome;
  };
  const auto put = [](SectionWriter& w,
                      const LearnOutcome<ml::LinearModel>& o) {
    store::put_outcome(w, o, [](SectionWriter&, const ml::LinearModel&) {});
  };
  const auto get = [](SectionReader& r) {
    return store::get_outcome<ml::LinearModel>(
        r, [](SectionReader&) -> ml::LinearModel {
          return ml::LinearModel(1, {0.0, 0.0}, ml::parity_with_bias);
        });
  };

  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    const auto o = store::checkpointed_unit<LearnOutcome<ml::LinearModel>>(
        &session, "cell.0", run, put, get);
    EXPECT_EQ(o.queries_spent, 5u);
    EXPECT_EQ(runs, 1);
    EXPECT_FALSE(session.has_section("cell.0.log"));
  }
  store::CheckpointSession session(file.path(), 7, "p", true);
  const auto o = store::checkpointed_unit<LearnOutcome<ml::LinearModel>>(
      &session, "cell.0", run, put, get);
  EXPECT_EQ(o.queries_spent, 5u);
  EXPECT_EQ(runs, 1) << "stored outcome re-ran the unit";
}

// Serialized image of an outcome — byte equality is the strongest
// observable identity the resume contract promises.
template <typename H, typename PutH>
std::string outcome_bytes(const LearnOutcome<H>& outcome, PutH&& put) {
  SectionWriter w;
  store::put_outcome(w, outcome, put);
  return w.bytes();
}

TEST(ResumeDeterminism, LearnerRerunFromJournalIsByteIdentical) {
  // Full-journal replay is the resume path's worst case: the learner
  // re-runs from scratch with every oracle answer served from the log. The
  // outcome must serialize to the same bytes and cost zero physical
  // queries.
  TempSnapshot file("learner");
  Rng setup(7);
  const puf::ArbiterPuf target(10, 0.0, setup);
  FaultConfig fc;
  fc.flip_rate = 0.1;
  fc.query_budget = 900;
  RobustLearnConfig config;
  config.train_queries = 600;
  config.holdout_queries = 120;

  const auto run_once = [&](store::CheckpointSession* session,
                            std::size_t& physical) {
    ml::FunctionMembershipOracle inner(target);
    FaultyMembershipOracle faulty(inner, fc, 31337);
    Rng rng(41);
    if (session == nullptr) {
      const auto o = robust_perceptron(faulty, ml::parity_with_bias, config,
                                       rng);
      physical = inner.queries();
      return o;
    }
    store::RecordingOracle journal(faulty, *session, "cell.log", &faulty, 64);
    const auto o = robust_perceptron(journal, ml::parity_with_bias, config,
                                     rng);
    journal.flush_now();
    physical = inner.queries();
    return o;
  };
  const auto put = [](SectionWriter& w, const ml::LinearModel& m) {
    store::put_linear_model(w, m);
  };

  std::size_t physical_plain = 0;
  const auto plain = run_once(nullptr, physical_plain);

  std::size_t physical_recorded = 0;
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    const auto recorded = run_once(&session, physical_recorded);
    EXPECT_EQ(outcome_bytes(recorded, put), outcome_bytes(plain, put));
    EXPECT_EQ(physical_recorded, physical_plain);
  }

  std::size_t physical_replayed = 0;
  store::CheckpointSession session(file.path(), 7, "p", true);
  ASSERT_TRUE(session.resumed());
  const auto replayed = run_once(&session, physical_replayed);
  EXPECT_EQ(outcome_bytes(replayed, put), outcome_bytes(plain, put));
  EXPECT_EQ(physical_replayed, 0u)
      << "resume re-queried the physical oracle";
}

TEST(ResumeDeterminism, SatAttackRerunFromJournalMatches) {
  TempSnapshot file("sat");
  const circuit::Netlist netlist = circuit::c17();
  Rng lock_rng(1004);
  const lock::LockedCircuit locked =
      lock::lock_random_xor(netlist, 4, lock_rng);

  attack::SatAttackConfig config;
  attack::SatAttackResult first;
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(netlist);
    store::AttackObservationJournal journal(&session, "cell.log", 2);
    config.journal = &journal;
    first = attack::sat_attack(locked, oracle, config);
    session.flush();
  }
  ASSERT_TRUE(first.success);
  EXPECT_EQ(first.replayed_queries, 0u);

  store::CheckpointSession session(file.path(), 7, "p", true);
  ASSERT_TRUE(session.resumed());
  attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(netlist);
  store::AttackObservationJournal journal(&session, "cell.log", 2);
  config.journal = &journal;
  const attack::SatAttackResult second = attack::sat_attack(locked, oracle,
                                                            config);
  EXPECT_EQ(second.key, first.key);
  EXPECT_EQ(second.dip_iterations, first.dip_iterations);
  EXPECT_EQ(second.oracle_queries, first.oracle_queries);
  EXPECT_EQ(second.solver_stats.conflicts, first.solver_stats.conflicts);
  EXPECT_EQ(second.replayed_queries, first.oracle_queries)
      << "the rerun should be served entirely from the journal";
}

// -------------------------------------------------------------- termination

TEST(Termination, RequestFlagTriggersJournalFlush) {
  TempSnapshot file("term");
  Rng setup(23);
  const puf::ArbiterPuf target(8, 0.0, setup);
  store::clear_termination();
  const std::uint64_t writes0 = counter_value("store.snapshot.writes");
  {
    store::CheckpointSession session(file.path(), 7, "p", true);
    ml::FunctionMembershipOracle inner(target);
    // Cadence of 1000 would never flush on its own in 3 queries...
    store::RecordingOracle oracle(inner, session, "u.log", nullptr, 1000);
    (void)oracle.query_pm(make_bitvec(8, 1));
    EXPECT_EQ(counter_value("store.snapshot.writes"), writes0);
    store::request_termination();  // ...until the termination flag is up.
    (void)oracle.query_pm(make_bitvec(8, 2));
    EXPECT_GT(counter_value("store.snapshot.writes"), writes0);
  }
  store::clear_termination();
  // The flushed journal is complete: both events replay.
  store::CheckpointSession session(file.path(), 7, "p", true);
  ml::FunctionMembershipOracle inner(target);
  store::RecordingOracle oracle(inner, session, "u.log", nullptr, 1000);
  (void)oracle.query_pm(make_bitvec(8, 1));
  (void)oracle.query_pm(make_bitvec(8, 2));
  EXPECT_EQ(oracle.replayed_queries(), 2u);
  EXPECT_EQ(inner.queries(), 0u);
}

}  // namespace
