// Tests for pitfalls::circuit: netlists, .bench I/O, generators, FSMs.
#include <gtest/gtest.h>

#include "circuit/bench_io.hpp"
#include "circuit/fsm.hpp"
#include "circuit/generator.hpp"
#include "circuit/netlist.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::circuit;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// -------------------------------------------------------------- Netlist

TEST(Netlist, BuildsAndEvaluatesGateTypes) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto and_g = n.add_gate(GateType::kAnd, {a, b});
  const auto or_g = n.add_gate(GateType::kOr, {a, b});
  const auto xor_g = n.add_gate(GateType::kXor, {a, b});
  const auto nand_g = n.add_gate(GateType::kNand, {a, b});
  const auto nor_g = n.add_gate(GateType::kNor, {a, b});
  const auto xnor_g = n.add_gate(GateType::kXnor, {a, b});
  const auto not_g = n.add_gate(GateType::kNot, {a});
  for (auto g : {and_g, or_g, xor_g, nand_g, nor_g, xnor_g, not_g})
    n.mark_output(g);

  struct Row {
    bool a, b;
    bool expect[7];  // and or xor nand nor xnor not(a)
  };
  const Row rows[] = {
      {false, false, {false, false, false, true, true, true, true}},
      {false, true, {false, true, true, true, false, false, true}},
      {true, false, {false, true, true, true, false, false, false}},
      {true, true, {true, true, false, false, false, true, false}},
  };
  for (const auto& row : rows) {
    BitVec in(2);
    in.set(0, row.a);
    in.set(1, row.b);
    const BitVec out = n.evaluate(in);
    for (std::size_t i = 0; i < 7; ++i)
      EXPECT_EQ(out.get(i), row.expect[i]) << "a=" << row.a << " b=" << row.b;
  }
}

TEST(Netlist, ConstantsAndBuffers) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto c0 = n.add_gate(GateType::kConst0, {});
  const auto c1 = n.add_gate(GateType::kConst1, {});
  const auto buf = n.add_gate(GateType::kBuf, {a});
  n.mark_output(c0);
  n.mark_output(c1);
  n.mark_output(buf);
  const BitVec out = n.evaluate(BitVec(1, 1));
  EXPECT_FALSE(out.get(0));
  EXPECT_TRUE(out.get(1));
  EXPECT_TRUE(out.get(2));
}

TEST(Netlist, TopologicalDisciplineEnforced) {
  Netlist n;
  const auto a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kNot, {a + 5}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a}), std::invalid_argument);
  const auto g = n.add_gate(GateType::kNot, {a});
  n.mark_output(g);
  EXPECT_THROW(n.mark_output(g), std::invalid_argument);
}

TEST(Netlist, InputIndexAndNameLookup) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  EXPECT_EQ(n.input_index(a), 0u);
  EXPECT_EQ(n.input_index(b), 1u);
  EXPECT_EQ(n.find_by_name("b"), b);
  EXPECT_EQ(n.find_by_name("zzz"), SIZE_MAX);
}

TEST(NetlistFunction, PinsInputsAndUsesChiEncoding) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g);
  // Pin b = 1: output = a.
  const NetlistFunction f(n, 0, {{1, true}});
  EXPECT_EQ(f.num_vars(), 1u);
  EXPECT_EQ(f.eval_pm(BitVec(1, 0)), +1);  // a=0 -> out 0 -> chi +1
  EXPECT_EQ(f.eval_pm(BitVec(1, 1)), -1);  // a=1 -> out 1 -> chi -1
}

// --------------------------------------------------------------- .bench

TEST(BenchIo, RoundTripC17) {
  const Netlist original = c17();
  EXPECT_EQ(original.num_inputs(), 5u);
  EXPECT_EQ(original.num_outputs(), 2u);
  EXPECT_EQ(original.logic_gate_count(), 6u);

  const Netlist reparsed = read_bench(write_bench(original));
  EXPECT_EQ(reparsed.num_inputs(), original.num_inputs());
  EXPECT_EQ(reparsed.num_outputs(), original.num_outputs());
  for (std::uint64_t v = 0; v < 32; ++v) {
    const BitVec in(5, v);
    EXPECT_EQ(original.evaluate(in), reparsed.evaluate(in)) << "v=" << v;
  }
}

TEST(BenchIo, HandlesOutOfOrderDefinitions) {
  const Netlist n = read_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(t, b)
t = NOT(a)
)");
  BitVec in(2);
  in.set(1, true);  // a=0, b=1 -> t=1 -> y=1
  EXPECT_TRUE(n.evaluate(in).get(0));
}

TEST(BenchIo, DetectsCycles) {
  EXPECT_THROW(read_bench(R"(
INPUT(a)
OUTPUT(y)
y = AND(a, z)
z = NOT(y)
)"),
               std::invalid_argument);
}

TEST(BenchIo, DetectsUndefinedNets) {
  EXPECT_THROW(read_bench("OUTPUT(y)\ny = NOT(ghost)\n"),
               std::invalid_argument);
}

TEST(BenchIo, DetectsDuplicateDefinitions) {
  EXPECT_THROW(read_bench(R"(
INPUT(a)
y = NOT(a)
y = BUF(a)
)"),
               std::invalid_argument);
}

TEST(BenchIo, RejectsUnknownGateTypes) {
  EXPECT_THROW(read_bench("INPUT(a)\ny = FROB(a)\n"), std::invalid_argument);
}

TEST(BenchIo, RoundTripsConstantGates) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto c1 = n.add_gate(GateType::kConst1, {});
  const auto g = n.add_gate(GateType::kXor, {a, c1});
  n.mark_output(g);
  const Netlist reparsed = read_bench(write_bench(n));
  EXPECT_EQ(reparsed.num_inputs(), 1u);
  EXPECT_TRUE(reparsed.evaluate(BitVec(1, 0)).get(0));   // 0 xor 1
  EXPECT_FALSE(reparsed.evaluate(BitVec(1, 1)).get(0));  // 1 xor 1
}

TEST(BenchIo, IgnoresCommentsAndBlanks) {
  const Netlist n = read_bench(R"(
# a comment
INPUT(a)   # trailing comment

OUTPUT(y)
y = NOT(a)
)");
  EXPECT_EQ(n.num_inputs(), 1u);
}

// ------------------------------------------------------------ generators

TEST(Generator, RandomCircuitShapeMatchesConfig) {
  Rng rng(1);
  RandomCircuitConfig config;
  config.inputs = 6;
  config.gates = 40;
  config.outputs = 3;
  const Netlist n = random_circuit(config, rng);
  EXPECT_EQ(n.num_inputs(), 6u);
  EXPECT_EQ(n.num_outputs(), 3u);
  EXPECT_EQ(n.logic_gate_count(), 40u);
  // Must evaluate without throwing.
  (void)n.evaluate(BitVec(6, 0b101010));
}

TEST(Generator, RandomCircuitsAreDeterministicPerSeed) {
  RandomCircuitConfig config;
  Rng a(7);
  Rng b(7);
  const Netlist na = random_circuit(config, a);
  const Netlist nb = random_circuit(config, b);
  for (std::uint64_t v = 0; v < 256; ++v)
    EXPECT_EQ(na.evaluate(BitVec(8, v)), nb.evaluate(BitVec(8, v)));
}

TEST(Generator, RippleCarryAdderAddsCorrectly) {
  const Netlist adder = ripple_carry_adder(4);
  EXPECT_EQ(adder.num_inputs(), 8u);
  EXPECT_EQ(adder.num_outputs(), 5u);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      BitVec in(8, a | (b << 4));
      const BitVec out = adder.evaluate(in);
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < 5; ++i)
        if (out.get(i)) sum |= std::uint64_t{1} << i;
      EXPECT_EQ(sum, a + b) << a << "+" << b;
    }
  }
}

TEST(Generator, EqualityComparatorComparesCorrectly) {
  const Netlist cmp = equality_comparator(3);
  for (std::uint64_t a = 0; a < 8; ++a)
    for (std::uint64_t b = 0; b < 8; ++b) {
      const BitVec in(6, a | (b << 3));
      EXPECT_EQ(cmp.evaluate(in).get(0), a == b);
    }
}

// ------------------------------------------------------------------ FSM

TEST(MealyMachine, RunsAndTraces) {
  // Two-state toggle machine: input 1 toggles, outputs the old state.
  MealyMachine m(2, 2, 2, 0);
  m.set_transition(0, 0, 0, 0);
  m.set_transition(0, 1, 1, 0);
  m.set_transition(1, 0, 1, 1);
  m.set_transition(1, 1, 0, 1);
  EXPECT_EQ(m.run({1, 1, 1}), 1u);
  EXPECT_EQ(m.trace({1, 0, 1}), (std::vector<std::size_t>{0, 1, 1}));
}

TEST(MealyMachine, ValidatesArguments) {
  EXPECT_THROW(MealyMachine(0, 2, 2, 0), std::invalid_argument);
  EXPECT_THROW(MealyMachine(2, 2, 2, 5), std::invalid_argument);
  MealyMachine m(2, 2, 2, 0);
  EXPECT_THROW(m.set_transition(3, 0, 0, 0), std::invalid_argument);
  EXPECT_THROW(m.set_transition(0, 0, 0, 5), std::invalid_argument);
}

TEST(MealyMachine, AcceptanceDfaMirrorsTransitions) {
  MealyMachine m(3, 2, 2, 0);
  m.set_transition(0, 1, 1, 0);
  m.set_transition(1, 1, 2, 0);
  const auto dfa = m.to_acceptance_dfa({2});
  EXPECT_TRUE(dfa.accepts({1, 1}));
  EXPECT_FALSE(dfa.accepts({1}));
  EXPECT_FALSE(dfa.accepts({}));
}

TEST(MealyMachine, RandomIsComplete) {
  Rng rng(9);
  const MealyMachine m = MealyMachine::random(6, 3, 2, rng);
  for (std::size_t s = 0; s < 6; ++s)
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_LT(m.next_state(s, i), 6u);
      EXPECT_LT(m.output(s, i), 2u);
    }
}

}  // namespace
