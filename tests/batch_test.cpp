// The batched query plane (DESIGN.md §11): for every PUF simulator and
// oracle decorator the batch entry points must be byte-identical to the
// per-element scalar loop — same responses, same rng draw sequence, same
// query accounting, same fault sequence — for empty, odd-sized and
// multi-block batches, at every thread count.
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "ml/oracle.hpp"
#include "ml/robust/faults.hpp"
#include "ml/robust/resilient.hpp"
#include "obs/metrics.hpp"
#include "puf/arbiter.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "puf/feed_forward.hpp"
#include "puf/interpose.hpp"
#include "puf/puf.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using support::BitVec;
using support::Rng;

std::vector<BitVec> random_challenges(std::size_t n, std::size_t m,
                                      Rng& rng) {
  std::vector<BitVec> xs;
  xs.reserve(m);
  for (std::size_t s = 0; s < m; ++s) {
    BitVec x(n);
    for (std::size_t b = 0; b < n; ++b) x.set(b, rng.coin());
    xs.push_back(std::move(x));
  }
  return xs;
}

// Batch sizes covering the bit-slicing block structure: empty, single,
// odd partial block, exactly one 64-block, and a multi-block remainder.
const std::size_t kBatchSizes[] = {0, 1, 7, 64, 130};

// eval_pm_batch must equal the per-element scalar loop exactly.
void expect_ideal_batch_parity(const puf::Puf& puf, std::uint64_t seed) {
  for (const std::size_t m : kBatchSizes) {
    Rng rng(seed);
    const auto xs = random_challenges(puf.num_vars(), m, rng);
    std::vector<int> scalar(m), batch(m, 0);
    for (std::size_t i = 0; i < m; ++i) scalar[i] = puf.eval_pm(xs[i]);
    puf.eval_pm_batch(xs, batch);
    EXPECT_EQ(batch, scalar) << puf.describe() << " m=" << m;
  }
}

// eval_noisy_batch must equal the scalar loop *including* the rng draw
// sequence: identical responses from same-seeded streams, and both streams
// must land in the same state afterwards.
void expect_noisy_batch_parity(const puf::Puf& puf, std::uint64_t seed) {
  for (const std::size_t m : kBatchSizes) {
    Rng gen(seed);
    const auto xs = random_challenges(puf.num_vars(), m, gen);
    std::vector<int> scalar(m), batch(m, 0);
    Rng a(seed + 1), b(seed + 1);
    for (std::size_t i = 0; i < m; ++i) scalar[i] = puf.eval_noisy(xs[i], a);
    puf.eval_noisy_batch(xs, batch, b);
    EXPECT_EQ(batch, scalar) << puf.describe() << " m=" << m;
    for (int draws = 0; draws < 64; ++draws)
      ASSERT_EQ(a.coin(), b.coin())
          << puf.describe() << " m=" << m << ": rng streams diverged";
  }
}

// ----------------------------------------------------------- PUF parity

TEST(BatchPuf, ArbiterMatchesScalar) {
  Rng rng(11);
  const puf::ArbiterPuf puf(40, 0.05, rng);
  expect_ideal_batch_parity(puf, 101);
  expect_noisy_batch_parity(puf, 102);
}

TEST(BatchPuf, XorArbiterMatchesScalar) {
  Rng rng(12);
  std::vector<puf::ArbiterPuf> chains;
  for (int k = 0; k < 4; ++k) chains.emplace_back(32, 0.05, rng);
  const puf::XorArbiterPuf puf(std::move(chains));
  expect_ideal_batch_parity(puf, 201);
  expect_noisy_batch_parity(puf, 202);
}

TEST(BatchPuf, FeedForwardMatchesScalar) {
  Rng rng(13);
  const puf::FeedForwardArbiterPuf puf(48, 5, 0.05, rng);
  expect_ideal_batch_parity(puf, 301);
  expect_noisy_batch_parity(puf, 302);
}

TEST(BatchPuf, InterposeMatchesScalar) {
  Rng rng(14);
  const puf::InterposePuf puf(32, 2, 2, 0.05, rng);
  expect_ideal_batch_parity(puf, 401);
  // No batch override for the noisy channel (the upper draw feeds the lower
  // challenge) — the inherited scalar default must still satisfy parity.
  expect_noisy_batch_parity(puf, 402);
}

TEST(BatchPuf, BistableRingMatchesScalar) {
  Rng rng(15);
  puf::BistableRingConfig config = puf::BistableRingConfig::paper_instance(32);
  config.noise_sigma = 0.05;
  const puf::BistableRingPuf puf(config, rng);
  expect_ideal_batch_parity(puf, 501);
  expect_noisy_batch_parity(puf, 502);
}

TEST(BatchPuf, WideArbiterCrossesWordBoundary) {
  // >64 stages: the challenge itself spans two BitVec words, exercising the
  // plane-building path over multiple words.
  Rng rng(16);
  const puf::ArbiterPuf puf(100, 0.0, rng);
  expect_ideal_batch_parity(puf, 601);
}

// ----------------------------------------------------- membership oracle

TEST(BatchOracle, FunctionOracleCountsOncePerElement) {
  Rng rng(21);
  const puf::ArbiterPuf puf(24, 0.0, rng);
  ml::FunctionMembershipOracle oracle(puf);

  const auto xs = random_challenges(24, 130, rng);
  std::vector<int> batch(xs.size()), scalar(xs.size());
  oracle.query_pm_batch(xs, batch);
  EXPECT_EQ(oracle.queries(), xs.size());
  EXPECT_EQ(oracle.lifetime_queries(), xs.size());

  for (std::size_t i = 0; i < xs.size(); ++i)
    scalar[i] = oracle.query_pm(xs[i]);
  EXPECT_EQ(batch, scalar);
  EXPECT_EQ(oracle.queries(), 2 * xs.size());

  oracle.reset_queries();
  EXPECT_EQ(oracle.queries(), 0u);
  EXPECT_EQ(oracle.lifetime_queries(), 2 * xs.size());
}

TEST(BatchOracle, EmptyBatchIsFree) {
  Rng rng(22);
  const puf::ArbiterPuf puf(16, 0.0, rng);
  ml::FunctionMembershipOracle oracle(puf);
  const std::uint64_t calls_before =
      obs::MetricsRegistry::global().counter("oracle.batch.calls").value();
  std::vector<BitVec> xs;
  std::vector<int> out;
  oracle.query_pm_batch(xs, out);
  EXPECT_EQ(oracle.queries(), 0u);
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("oracle.batch.calls").value(),
      calls_before);
}

TEST(BatchOracle, BatchMetricsAreBooked) {
  Rng rng(23);
  const puf::ArbiterPuf puf(16, 0.0, rng);
  ml::FunctionMembershipOracle oracle(puf);
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t calls_before =
      registry.counter("oracle.batch.calls").value();
  const std::uint64_t elements_before =
      registry.counter("oracle.batch.elements").value();

  const auto xs = random_challenges(16, 7, rng);
  std::vector<int> out(xs.size());
  oracle.query_pm_batch(xs, out);
  EXPECT_EQ(registry.counter("oracle.batch.calls").value(), calls_before + 1);
  EXPECT_EQ(registry.counter("oracle.batch.elements").value(),
            elements_before + 7);
}

// --------------------------------------------------- faulty oracle parity

// Drives a FaultyMembershipOracle over `xs`, element by element through
// query_pm, recording each answer (0 marks a dropped response).
std::vector<int> drive_scalar(ml::robust::FaultyMembershipOracle& oracle,
                              const std::vector<BitVec>& xs) {
  std::vector<int> out(xs.size(), 0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    try {
      out[i] = oracle.query_pm(xs[i]);
    } catch (const ml::robust::TransientFaultError&) {
      out[i] = 0;
    }
  }
  return out;
}

// Drives the same workload through query_pm_batch, resuming after each
// TransientFaultError. Per the batch contract the elements before the
// faulting one are answered; the faulting element consumed one raw query,
// so the answered-prefix length is (raw_queries delta - 1).
std::vector<int> drive_batch(ml::robust::FaultyMembershipOracle& oracle,
                             const std::vector<BitVec>& xs) {
  std::vector<int> out(xs.size(), 0);
  std::size_t i = 0;
  while (i < xs.size()) {
    const std::span<const BitVec> tail(xs.data() + i, xs.size() - i);
    const std::span<int> tail_out(out.data() + i, xs.size() - i);
    const std::size_t raw_before = oracle.raw_queries();
    try {
      oracle.query_pm_batch(tail, tail_out);
      break;
    } catch (const ml::robust::TransientFaultError&) {
      const std::size_t answered = oracle.raw_queries() - raw_before - 1;
      out[i + answered] = 0;  // the dropped element
      i += answered + 1;
    }
  }
  return out;
}

TEST(BatchFaults, BatchReplaysScalarFaultSequence) {
  Rng rng(31);
  const puf::ArbiterPuf puf(20, 0.0, rng);
  ml::FunctionMembershipOracle inner_a(puf), inner_b(puf);
  ml::robust::FaultConfig config;
  config.flip_rate = 0.05;
  config.burst_rate = 0.02;
  config.burst_length = 4;
  config.metastable_sigma = 0.3;
  config.drop_rate = 0.1;
  ml::robust::FaultyMembershipOracle scalar(inner_a, config, 777);
  ml::robust::FaultyMembershipOracle batch(inner_b, config, 777);

  const auto xs = random_challenges(20, 200, rng);
  const auto scalar_out = drive_scalar(scalar, xs);
  const auto batch_out = drive_batch(batch, xs);

  EXPECT_EQ(batch_out, scalar_out);
  EXPECT_EQ(batch.raw_queries(), scalar.raw_queries());
  EXPECT_EQ(batch.faults_injected(), scalar.faults_injected());
  EXPECT_EQ(batch.responses_dropped(), scalar.responses_dropped());
  EXPECT_EQ(inner_b.queries(), inner_a.queries());
}

TEST(BatchFaults, BudgetExhaustsAtTheSameElement) {
  Rng rng(32);
  const puf::ArbiterPuf puf(20, 0.0, rng);
  ml::FunctionMembershipOracle inner_a(puf), inner_b(puf);
  ml::robust::FaultConfig config;
  config.query_budget = 25;
  ml::robust::FaultyMembershipOracle scalar(inner_a, config, 99);
  ml::robust::FaultyMembershipOracle batch(inner_b, config, 99);

  const auto xs = random_challenges(20, 40, rng);
  std::vector<int> scalar_out(xs.size(), 0);
  std::size_t scalar_answered = 0;
  try {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      scalar_out[i] = scalar.query_pm(xs[i]);
      ++scalar_answered;
    }
    FAIL() << "scalar loop should exhaust the budget";
  } catch (const ml::robust::QueryBudgetExhaustedError&) {
  }

  std::vector<int> batch_out(xs.size(), 0);
  EXPECT_THROW(batch.query_pm_batch(xs, batch_out),
               ml::robust::QueryBudgetExhaustedError);
  EXPECT_EQ(scalar_answered, config.query_budget);
  EXPECT_EQ(batch.raw_queries(), scalar.raw_queries());
  for (std::size_t i = 0; i < scalar_answered; ++i)
    EXPECT_EQ(batch_out[i], scalar_out[i]) << "i=" << i;
}

TEST(BatchFaults, MajorityVoteBatchMatchesScalarVoteForVote) {
  Rng rng(33);
  const puf::ArbiterPuf puf(20, 0.0, rng);
  ml::FunctionMembershipOracle inner_a(puf), inner_b(puf);
  ml::robust::FaultConfig config;
  config.flip_rate = 0.1;
  ml::robust::FaultyMembershipOracle faulty_a(inner_a, config, 5);
  ml::robust::FaultyMembershipOracle faulty_b(inner_b, config, 5);
  ml::robust::MajorityVoteConfig vote;
  vote.assumed_flip_rate = 0.1;
  vote.confidence = 0.95;
  ml::robust::MajorityVoteOracle scalar(faulty_a, vote);
  ml::robust::MajorityVoteOracle batch(faulty_b, vote);

  const auto xs = random_challenges(20, 50, rng);
  std::vector<int> scalar_out(xs.size()), batch_out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    scalar_out[i] = scalar.query_pm(xs[i]);
  batch.query_pm_batch(xs, batch_out);

  EXPECT_EQ(batch_out, scalar_out);
  EXPECT_EQ(batch.votes_cast(), scalar.votes_cast());
  EXPECT_EQ(faulty_b.raw_queries(), faulty_a.raw_queries());
}

// ----------------------------------------------------- equivalence oracle

TEST(BatchOracle, EquivalenceCallCountersResetAndPersist) {
  Rng rng(41);
  const puf::ArbiterPuf target(10, 0.0, rng);
  const puf::ArbiterPuf other(10, 0.0, rng);
  ml::ExhaustiveEquivalenceOracle oracle(target);

  EXPECT_FALSE(oracle.counterexample(target).has_value());
  EXPECT_TRUE(oracle.counterexample(other).has_value());
  EXPECT_EQ(oracle.calls(), 2u);
  EXPECT_EQ(oracle.lifetime_calls(), 2u);

  oracle.reset_calls();
  EXPECT_EQ(oracle.calls(), 0u);
  EXPECT_EQ(oracle.lifetime_calls(), 2u);

  EXPECT_FALSE(oracle.counterexample(target).has_value());
  EXPECT_EQ(oracle.calls(), 1u);
  EXPECT_EQ(oracle.lifetime_calls(), 3u);
}

// ------------------------------------------------- chunk/batch composition

class PoolSizeGuard {
 public:
  PoolSizeGuard() : saved_(support::pool_thread_count()) {}
  ~PoolSizeGuard() { support::set_pool_thread_count(saved_); }

 private:
  std::size_t saved_;
};

template <typename Make>
void expect_identical_across_thread_counts(Make&& make) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(1);
  const auto reference = make();
  for (const std::size_t threads : {2, 4, 8}) {
    support::set_pool_thread_count(threads);
    EXPECT_EQ(make(), reference) << "threads=" << threads;
  }
}

TEST(BatchCompose, CollectUniformLabelsMatchScalarEvaluation) {
  Rng rng(51);
  const puf::ArbiterPuf puf(32, 0.0, rng);
  Rng collect_rng(52);
  const puf::CrpSet crps = puf::CrpSet::collect_uniform(puf, 500, collect_rng);
  ASSERT_EQ(crps.size(), 500u);
  for (std::size_t i = 0; i < crps.size(); ++i)
    ASSERT_EQ(crps.response(i), puf.eval_pm(crps.challenge(i))) << "i=" << i;
}

TEST(BatchCompose, CollectorsAreThreadCountInvariant) {
  Rng rng(53);
  const puf::ArbiterPuf puf(32, 0.02, rng);
  expect_identical_across_thread_counts([&] {
    Rng r(54);
    const auto crps = puf::CrpSet::collect_uniform(puf, 700, r);
    return crps.responses();
  });
  expect_identical_across_thread_counts([&] {
    Rng r(55);
    const auto crps = puf::CrpSet::collect_noisy(puf, 700, r);
    return crps.responses();
  });
  expect_identical_across_thread_counts([&] {
    Rng r(56);
    const auto crps = puf::CrpSet::collect_stable(puf, 200, 3, r);
    return crps.responses();
  });
}

TEST(BatchCompose, AccuracyIsThreadCountInvariant) {
  PoolSizeGuard guard;
  Rng rng(57);
  const puf::ArbiterPuf puf(24, 0.0, rng);
  const puf::ArbiterPuf model(24, 0.0, rng);
  Rng collect_rng(58);
  const puf::CrpSet crps = puf::CrpSet::collect_uniform(puf, 900, collect_rng);
  expect_identical_across_thread_counts([&] {
    return crps.accuracy_of(model);
  });
  // The batched accuracy path must agree with a plain scalar count.
  std::size_t agree = 0;
  for (std::size_t i = 0; i < crps.size(); ++i)
    if (model.eval_pm(crps.challenge(i)) == crps.response(i)) ++agree;
  support::set_pool_thread_count(1);
  EXPECT_DOUBLE_EQ(crps.accuracy_of(model),
                   static_cast<double>(agree) /
                       static_cast<double>(crps.size()));
}

}  // namespace
