// Cross-cutting property tests: randomised invariants spanning modules.
// Each suite draws many random instances and checks a mathematical identity
// or contract the rest of the library silently relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "boolfn/anf.hpp"
#include "boolfn/fourier.hpp"
#include "boolfn/influence.hpp"
#include "boolfn/ltf.hpp"
#include "boolfn/truth_table.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/generator.hpp"
#include "ml/chow.hpp"
#include "circuit/dfa.hpp"
#include "ml/lstar.hpp"
#include "ml/oracle.hpp"
#include "ml/perceptron.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using boolfn::AnfPolynomial;
using boolfn::FourierSpectrum;
using boolfn::TruthTable;
using support::BitVec;
using support::Rng;

TruthTable random_table(std::size_t n, Rng& rng) {
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    t.set(row, rng.coin() ? +1 : -1);
  return t;
}

// ------------------------------------------------- Fourier identities

class FourierIdentity : public ::testing::TestWithParam<int> {};

TEST_P(FourierIdentity, TotalInfluenceEqualsSumDegreeTimesWeight) {
  // I(f) = sum_S |S| fhat(S)^2 — the Poincare identity connecting the
  // influence module and the spectrum module.
  Rng rng(1000 + GetParam());
  const std::size_t n = 4 + GetParam() % 5;
  const TruthTable t = random_table(n, rng);
  const auto spec = FourierSpectrum::of(t);
  double weighted = 0.0;
  for (std::size_t d = 1; d <= n; ++d)
    weighted += static_cast<double>(d) * spec.weight_at_degree(d);
  EXPECT_NEAR(boolfn::total_influence(t), weighted, 1e-9);
}

TEST_P(FourierIdentity, BiasIsDegreeZeroCoefficient) {
  Rng rng(2000 + GetParam());
  const TruthTable t = random_table(6, rng);
  EXPECT_NEAR(t.bias(), FourierSpectrum::of(t).coefficient(0), 1e-12);
}

TEST_P(FourierIdentity, NoiseSensitivityZeroAtEpsZero) {
  Rng rng(3000 + GetParam());
  const TruthTable t = random_table(6, rng);
  const auto spec = FourierSpectrum::of(t);
  EXPECT_NEAR(spec.noise_sensitivity(0.0), 0.0, 1e-9);
  // At eps = 1/2 the noisy copy is independent: NS = (1 - bias^2)/2.
  EXPECT_NEAR(spec.noise_sensitivity(0.5),
              0.5 * (1.0 - t.bias() * t.bias()), 1e-9);
}

TEST_P(FourierIdentity, ChowParametersMatchSpectrum) {
  Rng rng(4000 + GetParam());
  const std::size_t n = 5;
  const TruthTable t = random_table(n, rng);
  const auto spec = FourierSpectrum::of(t);
  const auto chow = ml::exact_chow(t);
  EXPECT_NEAR(chow.degree0, spec.coefficient(0), 1e-12);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(chow.degree1[i], spec.coefficient(1ull << i), 1e-12);
}

TEST_P(FourierIdentity, AnfAndTruthTableAgreeEverywhere) {
  Rng rng(5000 + GetParam());
  const std::size_t n = 6;
  const TruthTable t = random_table(n, rng);
  const AnfPolynomial p = AnfPolynomial::from_truth_table(t);
  // Round trip through the pm adapter.
  EXPECT_EQ(TruthTable::from_function(p), t);
  // ANF degree never exceeds n; sparsity never exceeds 2^n.
  EXPECT_LE(p.degree(), n);
  EXPECT_LE(p.sparsity(), t.num_rows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourierIdentity, ::testing::Range(0, 8));

// ---------------------------------------------- Chow's theorem (approx)

class ChowTheorem : public ::testing::TestWithParam<int> {};

TEST_P(ChowTheorem, ChowParametersDetermineLtfsUpToSmallError) {
  // Two random LTFs with (numerically) close Chow parameters must be close
  // as functions; equivalently the reconstruction from exact parameters is
  // close to the original (Chow's uniqueness, De et al. effectivised).
  Rng rng(6000 + GetParam());
  const boolfn::Ltf f = boolfn::Ltf::random(9, rng);
  const TruthTable tf = TruthTable::from_function(f);
  const boolfn::Ltf rebuilt = ml::reconstruct_ltf(ml::exact_chow(tf));
  EXPECT_LT(tf.distance(TruthTable::from_function(rebuilt)), 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChowTheorem, ::testing::Range(0, 10));

// ------------------------------------------- Perceptron mistake bound

TEST(PerceptronTheory, MistakeBoundRespectedOnSeparableData) {
  // Novikoff: mistakes <= (R / gamma)^2 for margin-gamma separable data of
  // radius R. Verified on random LTF-labelled data with enforced margin.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t dim = 8;
    std::vector<double> w(dim);
    double norm = 0.0;
    for (auto& weight : w) {
      weight = rng.gaussian();
      norm += weight * weight;
    }
    norm = std::sqrt(norm);
    for (auto& weight : w) weight /= norm;

    const double gamma = 0.1;
    std::vector<std::vector<double>> X;
    std::vector<int> y;
    double radius_sq = 0.0;
    while (X.size() < 200) {
      std::vector<double> x(dim);
      double r2 = 0.0;
      for (auto& value : x) {
        value = rng.gaussian();
        r2 += value * value;
      }
      double score = 0.0;
      for (std::size_t i = 0; i < dim; ++i) score += w[i] * x[i];
      if (std::abs(score) < gamma) continue;  // enforce the margin
      radius_sq = std::max(radius_sq, r2);
      X.push_back(std::move(x));
      y.push_back(score < 0 ? -1 : +1);
    }

    ml::PerceptronConfig config;
    config.max_epochs = 10000;
    config.shuffle_each_epoch = true;
    Rng train_rng(100 + trial);
    const auto result = ml::Perceptron(config).fit(X, y, train_rng);
    ASSERT_TRUE(result.converged);
    EXPECT_LE(static_cast<double>(result.mistakes),
              radius_sq / (gamma * gamma) + 1.0)
        << "trial " << trial;
  }
}

// ------------------------------------- netlist <-> .bench <-> CNF triangle

class CircuitTriangle : public ::testing::TestWithParam<int> {};

TEST_P(CircuitTriangle, BenchRoundTripPreservesFunction) {
  Rng rng(8000 + GetParam());
  circuit::RandomCircuitConfig config;
  config.inputs = 6;
  config.gates = 25 + GetParam() * 7;
  config.outputs = 3;
  const circuit::Netlist original = circuit::random_circuit(config, rng);
  const circuit::Netlist reparsed =
      circuit::read_bench(circuit::write_bench(original));
  for (std::uint64_t v = 0; v < 64; ++v) {
    const BitVec in(6, v);
    EXPECT_EQ(original.evaluate(in), reparsed.evaluate(in)) << "v=" << v;
  }
}

TEST_P(CircuitTriangle, CnfEncodingIsFunctionallyFaithful) {
  // SAT-check: no input exists on which the encoding and the simulator
  // disagree (a miter between the circuit and its own encoding, realised
  // by solving for each output value and comparing).
  Rng rng(9000 + GetParam());
  circuit::RandomCircuitConfig config;
  config.inputs = 7;
  config.gates = 30 + GetParam() * 5;
  config.outputs = 2;
  const circuit::Netlist netlist = circuit::random_circuit(config, rng);

  // Encode twice with shared inputs and miter the two encodings: must be
  // UNSAT (an encoding is equivalent to itself) — catches nondeterminism
  // or aux-var leakage in the encoder.
  sat::Solver solver;
  std::vector<sat::Var> shared;
  for (std::size_t i = 0; i < netlist.num_inputs(); ++i)
    shared.push_back(solver.new_var());
  const auto enc1 = sat::encode_netlist(solver, netlist, shared);
  const auto enc2 = sat::encode_netlist(solver, netlist, shared);
  sat::add_miter(solver, enc1.output_vars, enc2.output_vars);
  EXPECT_EQ(solver.solve(), sat::SolveResult::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitTriangle, ::testing::Range(0, 6));

// -------------------------------------------------- DFA / L* invariants

class DfaInvariant : public ::testing::TestWithParam<int> {};

TEST_P(DfaInvariant, MinimizationIsIdempotentAndEquivalent) {
  Rng rng(10000 + GetParam());
  const circuit::Dfa dfa = circuit::Dfa::random(12, 2, 0.4, rng);
  const circuit::Dfa minimal = dfa.minimized();
  EXPECT_FALSE(circuit::Dfa::distinguishing_word(dfa, minimal).has_value());
  const circuit::Dfa twice = minimal.minimized();
  EXPECT_EQ(twice.num_states(), minimal.num_states());
  EXPECT_LE(minimal.num_states(), dfa.reachable_states());
}

TEST_P(DfaInvariant, LStarNeverOvershootsMinimalSize) {
  Rng rng(11000 + GetParam());
  const circuit::Dfa target = circuit::Dfa::random(10, 2, 0.5, rng);
  ml::ExactDfaTeacher teacher(target);
  const circuit::Dfa learned = ml::LStarLearner().learn(teacher, nullptr);
  EXPECT_EQ(learned.num_states(), target.minimized().num_states());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfaInvariant, ::testing::Range(0, 8));

// --------------------------------------- Angluin EQ-simulation guarantee

TEST(EqSimulation, AcceptedHypothesesAreEpsAccurate) {
  // Run the sampled EQ oracle many times on hypotheses of known distance;
  // hypotheses farther than eps must essentially never be accepted.
  Rng rng(13);
  const double eps = 0.1;
  std::size_t false_accepts = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const boolfn::Ltf target = boolfn::Ltf::random(10, rng);
    // A hypothesis at distance ~0.25: flip the sign on a quarter of inputs
    // via XOR with an independent biased mask function.
    const boolfn::FunctionView far_hypothesis(
        10,
        [&target](const BitVec& x) {
          // Deterministic "corruption" on a quarter of the space.
          const bool corrupt = x.get(0) && x.get(1);
          const int base = target.eval_pm(x);
          return corrupt ? -base : base;
        },
        "corrupted");
    ml::SampledEquivalenceOracle oracle(target, eps, 0.05, rng);
    if (!oracle.counterexample(far_hypothesis).has_value()) ++false_accepts;
  }
  // delta = 0.05 per construction; allow generous slack.
  EXPECT_LE(false_accepts, 4);
}

// ----------------------------------------- solver learned-clause safety

TEST(SolverInvariant, LearnedClausesPreserveSatisfiability) {
  // Solve, then re-solve with extra constraints consistent with the found
  // model: must stay SAT (learned clauses must not over-constrain).
  Rng rng(17);
  for (int instance = 0; instance < 10; ++instance) {
    sat::Solver solver;
    std::vector<sat::Var> vars(30);
    for (auto& v : vars) v = solver.new_var();
    for (int c = 0; c < 100; ++c) {
      std::vector<sat::Lit> clause;
      for (int l = 0; l < 3; ++l)
        clause.push_back(sat::Lit(vars[rng.uniform_below(30)], rng.coin()));
      solver.add_clause(clause);
    }
    if (solver.solve() != sat::SolveResult::kSat) continue;
    // Pin half the variables to their model values.
    for (int i = 0; i < 15; ++i)
      solver.add_unit(sat::Lit(vars[i], !solver.model_value(vars[i])));
    EXPECT_EQ(solver.solve(), sat::SolveResult::kSat)
        << "instance " << instance;
  }
}

}  // namespace
