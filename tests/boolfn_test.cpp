// Unit and property tests for pitfalls::boolfn: truth tables, the Fourier
// transform, LTFs, ANF polynomials and influence machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "boolfn/anf.hpp"
#include "boolfn/boolean_function.hpp"
#include "boolfn/fourier.hpp"
#include "boolfn/influence.hpp"
#include "boolfn/ltf.hpp"
#include "boolfn/truth_table.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::boolfn;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

FunctionView parity_fn(std::size_t n) {
  return FunctionView(
      n, [](const BitVec& x) { return x.parity() ? -1 : +1; }, "parity");
}

FunctionView dictator_fn(std::size_t n, std::size_t i) {
  return FunctionView(
      n, [i](const BitVec& x) { return x.pm_one(i); }, "dictator");
}

TruthTable random_table(std::size_t n, Rng& rng) {
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    t.set(row, rng.coin() ? +1 : -1);
  return t;
}

// ----------------------------------------------------------- TruthTable

TEST(TruthTable, ConstantByDefault) {
  TruthTable t(3);
  EXPECT_EQ(t.num_rows(), 8u);
  for (std::uint64_t r = 0; r < 8; ++r) EXPECT_EQ(t.at(r), +1);
  EXPECT_DOUBLE_EQ(t.bias(), 1.0);
}

TEST(TruthTable, FromFunctionRoundTrip) {
  const auto parity = parity_fn(4);
  const TruthTable t = TruthTable::from_function(parity);
  for (std::uint64_t r = 0; r < t.num_rows(); ++r) {
    const BitVec x(4, r);
    EXPECT_EQ(t.eval_pm(x), parity.eval_pm(x));
  }
}

TEST(TruthTable, FromValuesValidates) {
  EXPECT_THROW(TruthTable::from_values(2, {1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(TruthTable::from_values(1, {1, 2}), std::invalid_argument);
  const TruthTable t = TruthTable::from_values(1, {1, -1});
  EXPECT_EQ(t.at(1), -1);
}

TEST(TruthTable, DistanceCountsDisagreements) {
  const TruthTable a = TruthTable::from_values(2, {1, 1, 1, 1});
  const TruthTable b = TruthTable::from_values(2, {1, -1, 1, -1});
  EXPECT_DOUBLE_EQ(a.distance(b), 0.5);
  EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
}

TEST(TruthTable, BiasOfParityIsZero) {
  EXPECT_DOUBLE_EQ(TruthTable::from_function(parity_fn(5)).bias(), 0.0);
}

TEST(TruthTable, ArityMismatchThrows) {
  TruthTable t(3);
  EXPECT_THROW(t.eval_pm(BitVec(4)), std::invalid_argument);
}

// -------------------------------------------------------------- Fourier

TEST(Fourier, ConstantFunctionSpectrum) {
  const auto spec = FourierSpectrum::of(TruthTable(4));
  EXPECT_DOUBLE_EQ(spec.coefficient(0), 1.0);
  for (std::uint64_t s = 1; s < 16; ++s)
    EXPECT_DOUBLE_EQ(spec.coefficient(s), 0.0);
}

TEST(Fourier, ParityConcentratesOnFullSet) {
  const auto spec =
      FourierSpectrum::of(TruthTable::from_function(parity_fn(5)));
  EXPECT_DOUBLE_EQ(spec.coefficient((1u << 5) - 1), 1.0);
  EXPECT_DOUBLE_EQ(spec.weight_at_degree(5), 1.0);
  EXPECT_DOUBLE_EQ(spec.weight_up_to_degree(4), 0.0);
}

TEST(Fourier, DictatorConcentratesOnSingleton) {
  const auto spec =
      FourierSpectrum::of(TruthTable::from_function(dictator_fn(4, 2)));
  EXPECT_DOUBLE_EQ(spec.coefficient(1u << 2), 1.0);
  EXPECT_DOUBLE_EQ(spec.weight_at_degree(1), 1.0);
}

class FourierProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FourierProperty, ParsevalHoldsForRandomFunctions) {
  Rng rng(100 + GetParam());
  const TruthTable t = random_table(GetParam(), rng);
  const auto spec = FourierSpectrum::of(t);
  EXPECT_NEAR(spec.total_weight(), 1.0, 1e-9);
}

TEST_P(FourierProperty, WhtMatchesNaiveDefinition) {
  const std::size_t n = GetParam();
  Rng rng(200 + n);
  const TruthTable t = random_table(n, rng);
  const auto spec = FourierSpectrum::of(t);
  // Check a handful of subsets against E[f chi_S] computed directly.
  for (std::uint64_t mask : {0ULL, 1ULL, 3ULL, (1ULL << n) - 1}) {
    double sum = 0.0;
    for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
      const int chi = (std::popcount(row & mask) & 1) ? -1 : +1;
      sum += t.at(row) * chi;
    }
    EXPECT_NEAR(spec.coefficient(mask),
                sum / static_cast<double>(t.num_rows()), 1e-12);
  }
}

TEST_P(FourierProperty, InversionViaTruncatedSign) {
  const std::size_t n = GetParam();
  Rng rng(300 + n);
  const TruthTable t = random_table(n, rng);
  // Truncating at full degree must reproduce the function exactly.
  const TruthTable back = FourierSpectrum::of(t).truncated_sign(n);
  EXPECT_DOUBLE_EQ(t.distance(back), 0.0);
}

INSTANTIATE_TEST_SUITE_P(SmallArities, FourierProperty,
                         ::testing::Values(2, 3, 4, 6, 8, 10));

TEST(Fourier, NoiseSensitivityExactMatchesSampled) {
  Rng rng(42);
  const auto parity = parity_fn(6);
  const TruthTable t = TruthTable::from_function(parity);
  const auto spec = FourierSpectrum::of(t);
  for (double eps : {0.05, 0.1, 0.25}) {
    const double exact = spec.noise_sensitivity(eps);
    const double sampled = estimate_noise_sensitivity(parity, eps, 40000, rng);
    EXPECT_NEAR(exact, sampled, 0.01) << "eps=" << eps;
  }
}

TEST(Fourier, NoiseSensitivityOfParityFormula) {
  // For parity on n bits NS_eps = (1 - (1-2eps)^n)/2.
  const auto spec =
      FourierSpectrum::of(TruthTable::from_function(parity_fn(7)));
  for (double eps : {0.01, 0.1, 0.3}) {
    const double expected = 0.5 * (1.0 - std::pow(1.0 - 2.0 * eps, 7));
    EXPECT_NEAR(spec.noise_sensitivity(eps), expected, 1e-12);
  }
}

TEST(Fourier, LtfNoiseSensitivityIsOrderSqrtEps) {
  // Klivans–O'Donnell–Servedio: NS_eps(LTF) = O(sqrt(eps)). Check the
  // constant empirically for majority-like random LTFs.
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const Ltf ltf = Ltf::random(12, rng);
    const auto spec = FourierSpectrum::of(TruthTable::from_function(ltf));
    for (double eps : {0.01, 0.04, 0.09}) {
      EXPECT_LE(spec.noise_sensitivity(eps), 1.5 * std::sqrt(eps))
          << "trial=" << trial << " eps=" << eps;
    }
  }
}

TEST(Fourier, EstimatedCoefficientConvergesToExact) {
  Rng rng(55);
  const Ltf ltf = Ltf::random(8, rng);
  const auto spec = FourierSpectrum::of(TruthTable::from_function(ltf));
  BitVec subset(8);
  subset.set(3, true);
  const double estimate = estimate_coefficient(ltf, subset, 60000, rng);
  EXPECT_NEAR(estimate, spec.coefficient(1u << 3), 0.02);
}

TEST(Fourier, BatchEstimationMatchesDataEstimation) {
  Rng rng(66);
  const auto parity = parity_fn(5);
  std::vector<BitVec> subsets{BitVec(5, 0), BitVec(5, 0b11111)};
  const auto coeffs = estimate_coefficients(parity, subsets, 5000, rng);
  EXPECT_NEAR(coeffs[0], 0.0, 0.05);
  EXPECT_NEAR(coeffs[1], 1.0, 1e-12);
}

TEST(Fourier, EstimateBiasOfConstant) {
  Rng rng(1);
  const FunctionView one(6, [](const BitVec&) { return +1; }, "one");
  EXPECT_DOUBLE_EQ(estimate_bias(one, 100, rng), 1.0);
}

// ------------------------------------------------------------------ Ltf

TEST(Ltf, EvalMatchesMarginSign) {
  const Ltf ltf({1.0, -2.0, 0.5}, 0.25);
  Rng rng(5);
  for (int trial = 0; trial < 64; ++trial) {
    BitVec x(3);
    for (std::size_t i = 0; i < 3; ++i) x.set(i, rng.coin());
    EXPECT_EQ(ltf.eval_pm(x), ltf.margin(x) < 0 ? -1 : +1);
  }
}

TEST(Ltf, SignOfZeroIsPlusOne) {
  const Ltf ltf({1.0, 1.0}, 2.0);
  const BitVec both_zero(2);  // x = (+1, +1), margin = 0
  EXPECT_EQ(ltf.eval_pm(both_zero), +1);
}

TEST(Ltf, RejectsEmptyWeights) {
  EXPECT_THROW(Ltf({}, 0.0), std::invalid_argument);
}

TEST(Ltf, RandomIsBalancedOnAverage) {
  Rng rng(10);
  double total_bias = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Ltf ltf = Ltf::random(10, rng);
    total_bias += TruthTable::from_function(ltf).bias();
  }
  EXPECT_NEAR(total_bias / 10.0, 0.0, 0.25);
}

TEST(Ltf, DecayingWeightsActLikeJunta) {
  Rng rng(20);
  const Ltf ltf = Ltf::random_decaying(14, 0.4, rng);
  // Flipping a deep tail variable should almost never change the output.
  const double tail_influence = estimate_influence(ltf, 13, 20000, rng);
  const double head_influence = estimate_influence(ltf, 0, 20000, rng);
  EXPECT_LT(tail_influence, 0.01);
  EXPECT_GT(head_influence, 0.05);
}

TEST(Ltf, WeightNormIsEuclidean) {
  const Ltf ltf({3.0, 4.0}, 1.0);
  EXPECT_DOUBLE_EQ(ltf.weight_norm(), 5.0);
}

// ------------------------------------------------------------------ Anf

TEST(Anf, ZeroPolynomialIsConstantPlusOne) {
  const AnfPolynomial p(4);
  EXPECT_EQ(p.sparsity(), 0u);
  EXPECT_EQ(p.eval_pm(BitVec(4, 0b1010)), +1);
}

TEST(Anf, SingleMonomialIsConjunction) {
  const AnfPolynomial p(4, {BitVec::from_string("1100")});
  EXPECT_TRUE(p.eval_f2(BitVec::from_string("1100")));
  EXPECT_TRUE(p.eval_f2(BitVec::from_string("1111")));
  EXPECT_FALSE(p.eval_f2(BitVec::from_string("1000")));
}

TEST(Anf, ConstantTermMonomial) {
  const AnfPolynomial p(3, {BitVec(3)});
  EXPECT_TRUE(p.eval_f2(BitVec(3)));  // empty monomial = 1 everywhere
  EXPECT_TRUE(p.eval_f2(BitVec(3, 0b111)));
}

TEST(Anf, DuplicateMonomialsCancel) {
  const BitVec m = BitVec::from_string("101");
  const AnfPolynomial p(3, {m, m});
  EXPECT_EQ(p.sparsity(), 0u);
}

TEST(Anf, MoebiusRoundTrip) {
  Rng rng(33);
  for (std::size_t n : {2, 4, 6, 8}) {
    const TruthTable t = random_table(n, rng);
    const AnfPolynomial p = AnfPolynomial::from_truth_table(t);
    EXPECT_DOUBLE_EQ(TruthTable::from_function(p).distance(t), 0.0)
        << "n=" << n;
  }
}

TEST(Anf, ParityHasAllSingletons) {
  const AnfPolynomial p =
      AnfPolynomial::from_truth_table(TruthTable::from_function(parity_fn(5)));
  EXPECT_EQ(p.sparsity(), 5u);
  EXPECT_EQ(p.degree(), 1u);
}

TEST(Anf, XorOperatorMatchesPointwiseXor) {
  Rng rng(44);
  const TruthTable ta = random_table(5, rng);
  const TruthTable tb = random_table(5, rng);
  const AnfPolynomial pa = AnfPolynomial::from_truth_table(ta);
  const AnfPolynomial pb = AnfPolynomial::from_truth_table(tb);
  const AnfPolynomial px = pa ^ pb;
  for (std::uint64_t row = 0; row < ta.num_rows(); ++row) {
    const BitVec x(5, row);
    EXPECT_EQ(px.eval_f2(x), pa.eval_f2(x) != pb.eval_f2(x));
  }
}

TEST(Anf, RandomRespectsSparsityAndDegree) {
  Rng rng(50);
  const AnfPolynomial p = AnfPolynomial::random(12, 7, 3, rng);
  EXPECT_EQ(p.sparsity(), 7u);
  EXPECT_LE(p.degree(), 3u);
  EXPECT_GE(p.degree(), 1u);
}

TEST(Anf, ToggleInsertsAndRemoves) {
  AnfPolynomial p(3);
  const BitVec m = BitVec::from_string("110");
  p.toggle_monomial(m);
  EXPECT_TRUE(p.has_monomial(m));
  p.toggle_monomial(m);
  EXPECT_FALSE(p.has_monomial(m));
}

// ------------------------------------------------------------ Influence

TEST(Influence, ParityHasFullInfluences) {
  const TruthTable t = TruthTable::from_function(parity_fn(4));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(influence(t, i), 1.0);
  EXPECT_DOUBLE_EQ(total_influence(t), 4.0);
}

TEST(Influence, DictatorIsOneJunta) {
  const TruthTable t = TruthTable::from_function(dictator_fn(5, 3));
  EXPECT_EQ(relevant_variables(t), (std::vector<std::size_t>{3}));
  EXPECT_TRUE(is_junta(t, 1));
  EXPECT_FALSE(is_junta(t, 0));
}

TEST(Influence, SampledMatchesExact) {
  Rng rng(60);
  const Ltf ltf = Ltf::random(8, rng);
  const TruthTable t = TruthTable::from_function(ltf);
  for (std::size_t i : {0u, 4u, 7u}) {
    EXPECT_NEAR(estimate_influence(ltf, i, 30000, rng), influence(t, i), 0.02);
  }
}

TEST(Influence, RestrictToKeepsSubfunction) {
  // f = x0 XOR x2 restricted to {0, 2} is parity of two bits.
  const FunctionView f(
      4, [](const BitVec& x) { return (x.get(0) != x.get(2)) ? -1 : +1; },
      "x0^x2");
  const TruthTable restricted = restrict_to(f, {0, 2}, false);
  EXPECT_EQ(restricted.num_vars(), 2u);
  EXPECT_EQ(restricted.at(0b00), +1);
  EXPECT_EQ(restricted.at(0b01), -1);
  EXPECT_EQ(restricted.at(0b10), -1);
  EXPECT_EQ(restricted.at(0b11), +1);
}

TEST(Influence, MajorityInfluencesAreEqual) {
  const FunctionView maj(
      3, [](const BitVec& x) { return x.popcount() >= 2 ? -1 : +1; }, "maj3");
  const TruthTable t = TruthTable::from_function(maj);
  EXPECT_DOUBLE_EQ(influence(t, 0), influence(t, 1));
  EXPECT_DOUBLE_EQ(influence(t, 1), influence(t, 2));
  EXPECT_DOUBLE_EQ(influence(t, 0), 0.5);
}

}  // namespace
