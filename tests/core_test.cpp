// Tests for pitfalls::core: the Table I bound formulas, adversary-model
// algebra, the pitfall auditor and the experiment harness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adversary.hpp"
#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "core/pitfalls.hpp"
#include "ml/features.hpp"
#include "ml/perceptron.hpp"
#include "puf/arbiter.hpp"
#include "puf/crp.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::core;
using pitfalls::puf::ArbiterPuf;
using pitfalls::puf::CrpSet;
using pitfalls::support::Rng;

// The harness is dataset-generic (core sits below puf in the module DAG);
// the tests instantiate it with the CRP-set dataset every bench uses.
using Trainer = pitfalls::core::TrainerFor<CrpSet>;

// --------------------------------------------------------------- bounds

TEST(Bounds, VcDimGrowsInBothParameters) {
  EXPECT_LT(vc_dim_xor_arbiter(16, 1), vc_dim_xor_arbiter(64, 1));
  EXPECT_LT(vc_dim_xor_arbiter(16, 1), vc_dim_xor_arbiter(16, 4));
  EXPECT_GT(vc_dim_xor_arbiter(16, 1), 16.0);
}

TEST(Bounds, PerceptronBoundIsExponentialInK) {
  const double k2 = perceptron_crp_bound(64, 2, 0.05, 0.01);
  const double k4 = perceptron_crp_bound(64, 4, 0.05, 0.01);
  // (n+1)^k growth: quadrupling k squares the dominant term.
  EXPECT_GT(k4 / k2, 1000.0);
}

TEST(Bounds, GeneralBoundIsPolynomialInK) {
  const double k2 = general_crp_bound(64, 2, 0.05, 0.01);
  const double k8 = general_crp_bound(64, 8, 0.05, 0.01);
  EXPECT_LT(k8 / k2, 10.0);  // linear-ish in k
}

TEST(Bounds, GeneralBeatsPerceptronForLargeK) {
  // The paper's point about algorithm-specific bounds: the VC bound is
  // exponentially smaller once k grows.
  const double perceptron = perceptron_crp_bound(64, 6, 0.05, 0.01);
  const double general = general_crp_bound(64, 6, 0.05, 0.01);
  EXPECT_LT(general * 1000.0, perceptron);
}

TEST(Bounds, LmnCutoffMatchesCorollaryFormula) {
  EXPECT_NEAR(lmn_degree_cutoff(2, 0.25), 2.32 * 4 / 0.0625, 1e-9);
}

TEST(Bounds, LmnBoundFeasibleForConstantKInfeasibleForLarge) {
  const double small = lmn_crp_bound(64, 1, 0.5, 0.01);
  EXPECT_TRUE(std::isfinite(small));
  const double large = lmn_crp_bound(64, 8, 0.1, 0.01);
  EXPECT_TRUE(std::isinf(large));
}

TEST(Bounds, LearnPolyBoundPolynomialInN) {
  const double n16 = learnpoly_query_bound(16, 2, 0.5, 0.01);
  const double n64 = learnpoly_query_bound(64, 2, 0.5, 0.01);
  EXPECT_TRUE(std::isfinite(n16));
  EXPECT_LT(n64 / n16, 8.0);  // ~linear in n for fixed eps
}

TEST(Bounds, Table1HasFourRowsInPaperOrder) {
  const auto rows = table1_rows(64, 4, 0.05, 0.01);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].source, "[9]");
  EXPECT_EQ(rows[0].distribution, "Arbitrary");
  EXPECT_EQ(rows[1].source, "General");
  EXPECT_EQ(rows[2].algorithm, "LMN [16]");
  EXPECT_EQ(rows[3].access, "Membership queries");
  for (const auto& row : rows) EXPECT_GT(row.value, 0.0);
}

TEST(Bounds, ValidateParameters) {
  EXPECT_THROW(perceptron_crp_bound(0, 1, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(general_crp_bound(16, 1, 1.5, 0.1), std::invalid_argument);
  EXPECT_THROW(lmn_crp_bound(16, 1, 0.1, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------ adversary

TEST(Adversary, DescribeMentionsEveryAxis) {
  AdversaryModel model;
  const std::string text = model.describe();
  EXPECT_NE(text.find("arbitrary distribution"), std::string::npos);
  EXPECT_NE(text.find("random examples"), std::string::npos);
  EXPECT_NE(text.find("approximate"), std::string::npos);
  EXPECT_NE(text.find("proper"), std::string::npos);
}

TEST(Adversary, StrengthOrderOnAccess) {
  AdversaryModel weak;
  weak.access = AccessType::kRandomExamples;
  AdversaryModel strong = weak;
  strong.access = AccessType::kMembershipAndEquivalence;
  EXPECT_TRUE(at_least_as_strong(strong, weak));
  EXPECT_FALSE(at_least_as_strong(weak, strong));
}

TEST(Adversary, EquivalenceQueriesAddNoPowerOverRandomExamples) {
  // Angluin's simulation: EQ ~ random examples.
  AdversaryModel random_ex;
  random_ex.access = AccessType::kRandomExamples;
  AdversaryModel eq = random_ex;
  eq.access = AccessType::kEquivalenceQueries;
  EXPECT_TRUE(at_least_as_strong(random_ex, eq));
  EXPECT_TRUE(at_least_as_strong(eq, random_ex));
}

TEST(Adversary, ImproperDominatesProper) {
  AdversaryModel proper;
  proper.hypothesis = HypothesisRestriction::kProper;
  AdversaryModel improper = proper;
  improper.hypothesis = HypothesisRestriction::kImproper;
  EXPECT_TRUE(at_least_as_strong(improper, proper));
  EXPECT_FALSE(at_least_as_strong(proper, improper));
}

TEST(Adversary, ExactImpliesApproximate) {
  AdversaryModel exact;
  exact.goal = InferenceGoal::kExact;
  AdversaryModel approx = exact;
  approx.goal = InferenceGoal::kApproximate;
  EXPECT_TRUE(at_least_as_strong(exact, approx));
  EXPECT_FALSE(at_least_as_strong(approx, exact));
}

// -------------------------------------------------------------- auditor

TEST(Auditor, FlagsAllPitfallsOfGanji2015AgainstRealisticAttacker) {
  const PitfallAuditor auditor;
  const auto findings =
      auditor.audit(claims::ganji2015_xor_bound(), realistic_hardware_attacker());
  // Distribution mismatch + access underestimated + algorithm-specific +
  // hypothesis restriction.
  EXPECT_EQ(findings.size(), 4u);
  bool has_distribution = false;
  bool has_access = false;
  for (const auto& f : findings) {
    if (f.kind == PitfallKind::kDistributionMismatch) has_distribution = true;
    if (f.kind == PitfallKind::kAccessUnderestimated) has_access = true;
  }
  EXPECT_TRUE(has_distribution);
  EXPECT_TRUE(has_access);
}

TEST(Auditor, FlagsExactOnlyArgumentOfShamsi2019) {
  const PitfallAuditor auditor;
  const auto findings = auditor.audit(claims::shamsi2019_impossibility(),
                                      realistic_hardware_attacker());
  bool found = false;
  for (const auto& f : findings)
    if (f.kind == PitfallKind::kExactApproximateConfusion) {
      found = true;
      EXPECT_EQ(f.severity, Severity::kCritical);  // attacker has MQs
    }
  EXPECT_TRUE(found);
}

TEST(Auditor, FlagsUnvalidatedBrRepresentation) {
  const PitfallAuditor auditor;
  const auto findings =
      auditor.audit(claims::xu2015_br_ltf(), realistic_hardware_attacker());
  bool found = false;
  for (const auto& f : findings)
    if (f.kind == PitfallKind::kRepresentationUnvalidated) found = true;
  EXPECT_TRUE(found);
}

TEST(Auditor, AppSatClaimIsLargelyClean) {
  // AppSAT already assumes the strong model: the audit should come back
  // (nearly) empty.
  const PitfallAuditor auditor;
  const auto findings = auditor.audit(claims::appsat2017_online_model(),
                                      realistic_hardware_attacker());
  EXPECT_TRUE(findings.empty());
}

TEST(Auditor, WeakAttackerTriggersFewerFindings) {
  const PitfallAuditor auditor;
  AdversaryModel weak;  // arbitrary distribution, random examples, proper
  const auto strong_findings =
      auditor.audit(claims::ganji2015_xor_bound(), realistic_hardware_attacker());
  const auto weak_findings =
      auditor.audit(claims::ganji2015_xor_bound(), weak);
  EXPECT_LT(weak_findings.size(), strong_findings.size());
}

TEST(Auditor, StringsAreHumanReadable) {
  EXPECT_EQ(to_string(PitfallKind::kDistributionMismatch),
            "distribution mismatch");
  EXPECT_EQ(to_string(Severity::kCritical), "critical");
}

// ------------------------------------------------------------ experiment

TEST(Experiment, EvaluateReportsBothAccuracies) {
  Rng rng(1);
  const ArbiterPuf puf(16, 0.0, rng);
  Rng collect(2);
  const CrpSet all = CrpSet::collect_uniform(puf, 1500, collect);
  const auto [train, test] = all.split_at(1000);

  Rng train_rng(3);
  const Trainer trainer = [&train_rng](const CrpSet& data) {
    pitfalls::ml::Perceptron learner;
    auto model = learner.fit_model(data.challenges(), data.responses(),
                                   pitfalls::ml::parity_with_bias, train_rng);
    return std::make_unique<pitfalls::ml::LinearModel>(std::move(model));
  };
  const auto report = evaluate(trainer, train, test);
  EXPECT_EQ(report.train_size, 1000u);
  EXPECT_EQ(report.test_size, 500u);
  EXPECT_GT(report.train_accuracy, 0.95);
  EXPECT_GT(report.test_accuracy, 0.9);
  EXPECT_GE(report.train_seconds, 0.0);
}

TEST(Experiment, LearningCurveImprovesWithBudget) {
  Rng rng(5);
  const ArbiterPuf puf(24, 0.0, rng);
  Rng collect(6);
  const CrpSet all = CrpSet::collect_uniform(puf, 4500, collect);
  const auto [train, test] = all.split_at(4000);

  Rng train_rng(7);
  const Trainer trainer = [&train_rng](const CrpSet& data) {
    pitfalls::ml::Perceptron learner;
    auto model = learner.fit_model(data.challenges(), data.responses(),
                                   pitfalls::ml::parity_with_bias, train_rng);
    return std::make_unique<pitfalls::ml::LinearModel>(std::move(model));
  };
  const auto curve = learning_curve(trainer, train, test, {50, 400, 4000});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_GT(curve[2].test_accuracy, curve[0].test_accuracy);
  EXPECT_GT(curve[2].test_accuracy, 0.93);
}

TEST(Experiment, MeanOfAveragesRuns) {
  const double mean =
      mean_of(4, [](std::size_t r) { return static_cast<double>(r); });
  EXPECT_DOUBLE_EQ(mean, 1.5);
  EXPECT_THROW(mean_of(0, [](std::size_t) { return 0.0; }),
               std::invalid_argument);
}

TEST(Experiment, LearningCurveValidatesBudgets) {
  Rng rng(9);
  const ArbiterPuf puf(8, 0.0, rng);
  Rng collect(10);
  const CrpSet all = CrpSet::collect_uniform(puf, 100, collect);
  const Trainer trainer = [](const CrpSet&) {
    return std::make_unique<pitfalls::boolfn::FunctionView>(
        8, [](const pitfalls::support::BitVec&) { return +1; }, "const");
  };
  EXPECT_THROW(learning_curve(trainer, all, all, {200}),
               std::invalid_argument);
}

}  // namespace
