// Fixture: the batched counterpart of bad_scalar_query.cpp — one
// query_pm_batch/eval_pm_batch call per chunk, which is exactly what the
// scalar-query rule asks for (the `_batch(` suffix never matches the rule's
// query_pm/eval_pm pattern).
#include <cstddef>
#include <span>
#include <vector>

#include "ml/oracle.hpp"
#include "puf/arbiter.hpp"
#include "support/parallel.hpp"

std::size_t count_agreements(pitfalls::ml::MembershipOracle& oracle,
                             const pitfalls::puf::ArbiterPuf& puf,
                             const std::vector<pitfalls::BitVec>& xs) {
  std::vector<int> a(xs.size()), b(xs.size());
  pitfalls::support::parallel_for_chunks(
      xs.size(), [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)chunk;
        const std::span<const pitfalls::BitVec> slice(xs.data() + begin,
                                                      end - begin);
        oracle.query_pm_batch(slice, std::span<int>(a.data() + begin,
                                                    end - begin));
        puf.eval_pm_batch(slice, std::span<int>(b.data() + begin,
                                                end - begin));
      });
  std::size_t agree = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (a[i] == b[i]) ++agree;
  return agree;
}
