// Fixture: the declaration lives here, the contract lives in the sibling
// .cpp — the require-guard rule must look across the file pair.
#pragma once

namespace fixture {

double scale(double value, double factor);

}  // namespace fixture
