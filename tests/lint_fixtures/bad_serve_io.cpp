// The tempting serve-plane mistake: journaling finished jobs through raw
// file streams instead of the crash-safe snapshot layer. The lint tests
// present this file under src/serve/ — every open below must flag raw-io.
#include <fstream>
#include <cstdio>
#include <string>

namespace pitfalls::serve {

void journal_block_torn(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);
  out << line << '\n';
}

bool journal_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace pitfalls::serve
