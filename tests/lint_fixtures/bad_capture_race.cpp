// Fixture: order-dependent mutation of by-reference captures inside
// parallel_for_chunks lambdas. Every shared write below is guarded by a
// mutex, so ThreadSanitizer reports NOTHING — the program is data-race-free.
// It is still wrong: the mutex serialises the writes in whatever order the
// chunks happen to run, so `sum` (floating-point, non-associative) and
// `order` (append order) change with PITFALLS_THREADS. This is exactly the
// class of bug the capture-race rule exists to reject statically.
#include <cstddef>
#include <mutex>
#include <vector>

#include "support/parallel.hpp"

double tsan_clean_but_order_dependent(const std::vector<double>& xs) {
  double sum = 0.0;
  std::vector<std::size_t> order;
  std::size_t chunks_seen = 0;
  std::mutex m;
  pitfalls::support::parallel_for_chunks(
      xs.size(), [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        double local = 0.0;
        for (std::size_t i = begin; i < end; ++i) local += xs[i];
        const std::lock_guard<std::mutex> lock(m);
        sum += local;
        order.push_back(chunk);
        ++chunks_seen;
      });
  return sum + static_cast<double>(order.size() + chunks_seen);
}
