// Fixture: the instrumented SAT plane gets NO blanket wallclock exemption.
// A solver that times itself with raw chrono must still be flagged — solver
// timing belongs in src/obs (TraceSpan / ScopedTimer), where the logical
// clock keeps exports deterministic.
#include <chrono>

namespace pitfalls::sat {

int solve_with_timeout() {
  const auto start = std::chrono::steady_clock::now();
  int conflicts = 0;
  while (std::chrono::steady_clock::now() - start <
         std::chrono::seconds(10)) {
    ++conflicts;
  }
  return conflicts;
}

}  // namespace pitfalls::sat
