// Fixture: a solver-like type resurrecting the pre-arena clause container.
#include <cstddef>
#include <vector>

struct Lit {};

class BadSolver {
 public:
  std::size_t count() const { return clauses_.size(); }
  void visit() {
    for (const auto& clause : clauses_) (void)clause;
  }

 private:
  std::vector<std::vector<Lit>> clauses_;
};
