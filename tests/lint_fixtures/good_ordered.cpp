// Fixture: unordered_map used for O(1) lookup only — no iteration, so the
// hash order can never reach an output.
#include <string>
#include <unordered_map>

bool contains(const std::unordered_map<std::string, int>& index,
              const std::string& key) {
  return index.find(key) != index.end();
}
