// Fixture: hash-order iteration leaking into output.
#include <cstddef>
#include <string>
#include <unordered_map>

std::size_t total(const std::unordered_map<std::string, std::size_t>& counts) {
  std::size_t sum = 0;
  for (const auto& kv : counts) sum += kv.second;  // line 8: ordered violation
  return sum;
}
