// Fixture: per-element oracle/PUF queries inside a parallel chunk body —
// pays per-challenge dispatch and skips the bit-sliced kernels; the
// scalar-query rule exists to force one batch call per chunk. The test
// presents this file under a src/ml path to land inside the rule's scope.
#include <cstddef>
#include <vector>

#include "ml/oracle.hpp"
#include "puf/arbiter.hpp"
#include "support/parallel.hpp"

std::size_t count_agreements(pitfalls::ml::MembershipOracle& oracle,
                             const pitfalls::puf::ArbiterPuf& puf,
                             const std::vector<pitfalls::BitVec>& xs) {
  std::vector<int> a(xs.size()), b(xs.size());
  pitfalls::support::parallel_for_chunks(
      xs.size(), [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)chunk;
        for (std::size_t i = begin; i < end; ++i) {
          a[i] = oracle.query_pm(xs[i]);
          b[i] = puf.eval_pm(xs[i]);
        }
      });
  std::size_t agree = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (a[i] == b[i]) ++agree;
  return agree;
}
