// Fixture: clean randomness — everything flows through support::Rng, and
// prose mentions of std::mt19937 or rand() live in comments/strings only.
#include "support/rng.hpp"

const char* kDoc = "never call rand() or std::random_device directly";

double draw(pitfalls::support::Rng& rng) { return rng.uniform01(); }
