// Fixture: wall-clock reads in result-affecting code outside src/obs.
#include <chrono>
#include <cstdint>

std::int64_t stamp() {
  const auto now = std::chrono::steady_clock::now();  // line 6: wallclock
  return std::chrono::duration_cast<std::chrono::nanoseconds>(  // line 7
             now.time_since_epoch())
      .count();
}
