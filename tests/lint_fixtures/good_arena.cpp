// Fixture: clause storage addressed through the arena — no per-clause
// container member in sight. Mentions of clauses_ in comments are fine.
#include <cstdint>
#include <vector>

using ClauseRef = std::uint32_t;

class GoodSolver {
 public:
  std::size_t count() const { return refs_.size(); }

 private:
  std::vector<ClauseRef> refs_;  // literals live in the arena, not here
};
