// Fixture: each chunk derives its own stream with rng_for_chunk — draws are
// a pure function of (seed, chunk), independent of PITFALLS_THREADS.
#include <cstddef>
#include <vector>

#include "support/parallel.hpp"
#include "support/rng.hpp"

double noisy_sum(std::size_t n, std::uint64_t seed) {
  std::vector<double> out(n, 0.0);
  pitfalls::support::parallel_for_chunks(
      n, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        auto rng = pitfalls::support::rng_for_chunk(seed, chunk);
        for (std::size_t i = begin; i < end; ++i) out[i] = rng.gaussian();
      });
  double sum = 0.0;
  for (double v : out) sum += v;
  return sum;
}
