// Fixture: one Rng& shared across parallel chunks — thread-count-dependent
// draw order, the exact bug the chunk-rng rule exists to catch.
#include <cstddef>
#include <vector>

#include "support/parallel.hpp"
#include "support/rng.hpp"

double noisy_sum(std::size_t n, pitfalls::support::Rng& rng) {
  std::vector<double> out(n, 0.0);
  pitfalls::support::parallel_for_chunks(
      n, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)chunk;
        for (std::size_t i = begin; i < end; ++i) out[i] = rng.gaussian();
      });
  double sum = 0.0;
  for (double v : out) sum += v;
  return sum;
}
