// Fixture: no time dependence at all — pure arithmetic.
int add(int a, int b) { return a + b; }
