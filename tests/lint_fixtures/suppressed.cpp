// Fixture: every would-be violation below carries an audited suppression —
// the file must lint clean. Exercises both same-line and line-above tags.
#include <chrono>
#include <cstddef>
#include <string>
#include <unordered_map>

double seconds_since(std::chrono::steady_clock::time_point t0) {  // lint:wallclock-ok
  const auto now = std::chrono::steady_clock::now();  // lint:wallclock-ok
  // lint:wallclock-ok — line-above form covers the next line.
  return std::chrono::duration<double>(now - t0).count();
}

std::size_t total(const std::unordered_map<std::string, std::size_t>& counts) {
  std::size_t sum = 0;
  for (const auto& kv : counts) sum += kv.second;  // lint:ordered-ok
  return sum;
}
