// Fixture: public header with a parameterised API and no PITFALLS_REQUIRE
// contract anywhere in the header or a sibling .cpp.
#pragma once

namespace fixture {

double interpolate(double lo, double hi, double t);

}  // namespace fixture
