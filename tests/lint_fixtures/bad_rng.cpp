// Fixture: raw standard-library RNG use outside src/support/rng.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;          // line 6: rng violation
  std::mt19937 gen(rd());         // line 7: rng violation
  srand(42);                      // line 8: rng violation
  return rand() % 10;             // line 9: rng violation
}
