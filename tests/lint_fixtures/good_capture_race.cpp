// Fixture: the sanctioned parallel accumulation patterns — writes go
// through per-index slots (each iteration owns its element, no cross-chunk
// ordering can leak), and the scalar reduction runs through
// parallel_reduce, whose combine step executes in chunk order by
// construction. The capture-race rule must stay silent on all of it.
#include <cstddef>
#include <vector>

#include "support/parallel.hpp"

double per_slot_then_reduce(const std::vector<double>& xs) {
  std::vector<double> squared(xs.size(), 0.0);
  pitfalls::support::parallel_for(
      xs.size(), [&](std::size_t i) { squared[i] = xs[i] * xs[i]; });

  const double scale = 2.0;  // read-only by-ref capture: fine
  pitfalls::support::parallel_for_chunks(
      xs.size(), [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        (void)chunk;
        for (std::size_t i = begin; i < end; ++i) squared[i] *= scale;
      });

  return pitfalls::support::parallel_reduce(
      xs.size(), 0.0,
      [&](std::size_t i) { return squared[i]; },
      [](double a, double b) { return a + b; });
}
