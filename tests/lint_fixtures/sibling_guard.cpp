// Fixture: sibling implementation carrying the PITFALLS_REQUIRE guard for
// the API declared in sibling_guard.hpp.
#include "sibling_guard.hpp"

#include "support/require.hpp"

namespace fixture {

double scale(double value, double factor) {
  PITFALLS_REQUIRE(factor > 0.0, "factor must be positive");
  return value * factor;
}

}  // namespace fixture
