// Fixture: parameterised API guarded in the header itself.
#pragma once

#include "support/require.hpp"

namespace fixture {

inline double clamp01(double t) {
  PITFALLS_REQUIRE(t == t, "t must not be NaN");
  return t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
}

}  // namespace fixture
