// Tests for the fault-injection oracle layer and the budgeted,
// gracefully-degrading learner runs (DESIGN.md §9): deterministic fault
// replay across thread counts, budget lockdowns that degrade instead of
// throwing, Chernoff-sized majority voting, and retry-with-backoff.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "boolfn/anf.hpp"
#include "boolfn/boolean_function.hpp"
#include "ml/features.hpp"
#include "ml/robust/learners.hpp"
#include "puf/arbiter.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using namespace pitfalls::ml::robust;
using pitfalls::boolfn::AnfPolynomial;
using pitfalls::boolfn::FunctionView;
using pitfalls::ml::FunctionMembershipOracle;
using pitfalls::ml::MembershipOracle;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// Restores the ambient pool size when a test that resizes it exits (same
// guard parallel_test.cpp uses), so test order never leaks state.
class PoolSizeGuard {
 public:
  PoolSizeGuard() : saved_(support::pool_thread_count()) {}
  ~PoolSizeGuard() { support::set_pool_thread_count(saved_); }

 private:
  std::size_t saved_;
};

template <typename Make>
void expect_identical_across_thread_counts(Make&& make) {
  PoolSizeGuard guard;
  support::set_pool_thread_count(1);
  const auto reference = make();
  for (const std::size_t threads : {2, 4, 8}) {
    support::set_pool_thread_count(threads);
    EXPECT_EQ(make(), reference) << "threads=" << threads;
  }
}

std::vector<BitVec> random_challenges(std::size_t count, std::size_t n,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVec> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    BitVec c(n);
    for (std::size_t b = 0; b < n; ++b) c.set(b, rng.coin());
    out.push_back(std::move(c));
  }
  return out;
}

// ------------------------------------------------------- fault injection

TEST(FaultyOracle, NoFaultsPassesThrough) {
  Rng rng(1);
  const puf::ArbiterPuf puf(12, 0.0, rng);
  FunctionMembershipOracle inner(puf);
  FaultyMembershipOracle oracle(inner, FaultConfig{}, 7);
  for (const auto& c : random_challenges(200, 12, 2))
    EXPECT_EQ(oracle.query_pm(c), puf.eval_pm(c));
  EXPECT_EQ(oracle.queries(), 200u);
  EXPECT_EQ(oracle.faults_injected(), 0u);
}

TEST(FaultyOracle, IidFlipRateMatchesEta) {
  const FunctionView one(8, [](const BitVec&) { return +1; }, "one");
  FunctionMembershipOracle inner(one);
  FaultConfig config;
  config.flip_rate = 0.2;
  FaultyMembershipOracle oracle(inner, config, 11);
  std::size_t flipped = 0;
  for (const auto& c : random_challenges(10000, 8, 3))
    if (oracle.query_pm(c) < 0) ++flipped;
  const double rate = static_cast<double>(flipped) / 10000.0;
  EXPECT_NEAR(rate, 0.2, 0.03);
  EXPECT_EQ(oracle.faults_injected(), flipped);
}

TEST(FaultyOracle, BudgetTripsExactlyAndStaysTripped) {
  const FunctionView one(6, [](const BitVec&) { return +1; }, "one");
  FunctionMembershipOracle inner(one);
  FaultConfig config;
  config.query_budget = 5;
  FaultyMembershipOracle oracle(inner, config, 13);
  const BitVec c(6);
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(oracle.query_pm(c));
  EXPECT_EQ(oracle.remaining_budget(), 0u);
  EXPECT_THROW(oracle.query_pm(c), QueryBudgetExhaustedError);
  EXPECT_THROW(oracle.query_pm(c), QueryBudgetExhaustedError);
}

TEST(FaultyOracle, DropsConsumeBudgetAndThrowTransient) {
  const FunctionView one(6, [](const BitVec&) { return +1; }, "one");
  FunctionMembershipOracle inner(one);
  FaultConfig config;
  config.drop_rate = 0.5;
  FaultyMembershipOracle oracle(inner, config, 17);
  std::size_t drops = 0;
  const BitVec c(6);
  for (int i = 0; i < 200; ++i) {
    try {
      oracle.query_pm(c);
    } catch (const TransientFaultError&) {
      ++drops;
    }
  }
  EXPECT_GT(drops, 50u);
  EXPECT_LT(drops, 150u);
  EXPECT_EQ(oracle.responses_dropped(), drops);
  // Dropped rounds still consumed physical budget.
  EXPECT_EQ(oracle.raw_queries(), 200u);
}

TEST(FaultyOracle, BurstFaultsFlipConsecutiveResponses) {
  const FunctionView one(6, [](const BitVec&) { return +1; }, "one");
  FunctionMembershipOracle inner(one);
  FaultConfig config;
  config.burst_rate = 0.01;
  config.burst_length = 5;
  FaultyMembershipOracle oracle(inner, config, 19);
  std::vector<int> responses;
  const BitVec c(6);
  for (int i = 0; i < 3000; ++i) responses.push_back(oracle.query_pm(c));
  // Find the longest run of flipped (-1) responses: bursts make runs of
  // (at least) burst_length, which iid noise at this volume would not.
  std::size_t longest = 0;
  std::size_t current = 0;
  for (const int r : responses) {
    current = r < 0 ? current + 1 : 0;
    longest = std::max(longest, current);
  }
  EXPECT_GE(longest, 5u);
  EXPECT_GT(oracle.faults_injected(), 0u);
}

TEST(FaultyOracle, MetastabilityIsChallengeCorrelated) {
  const FunctionView one(16, [](const BitVec&) { return +1; }, "one");
  FunctionMembershipOracle inner(one);
  FaultConfig config;
  config.metastable_sigma = 0.25;
  FaultyMembershipOracle oracle(inner, config, 23);
  // Re-measure each challenge 40 times: metastable (small-margin)
  // challenges flip often, large-margin ones essentially never — the
  // error is attached to the challenge, not the query.
  const auto challenges = random_challenges(40, 16, 5);
  std::size_t always_stable = 0;
  std::size_t unstable = 0;
  for (const auto& c : challenges) {
    std::size_t flips = 0;
    for (int rep = 0; rep < 40; ++rep)
      if (oracle.query_pm(c) < 0) ++flips;
    if (flips == 0) ++always_stable;
    if (flips >= 8) ++unstable;
  }
  EXPECT_GT(always_stable, 5u);
  EXPECT_GT(unstable, 2u);
}

TEST(FaultyOracle, IdenticalSeedReplaysIdenticalFaultSequence) {
  Rng setup(3);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  const auto challenges = random_challenges(600, 16, 7);
  FaultConfig config;
  config.flip_rate = 0.1;
  config.drop_rate = 0.05;
  config.burst_rate = 0.01;
  config.metastable_sigma = 0.5;
  // The full observable channel (responses, drops, fault tallies) must be
  // byte-identical for every PITFALLS_THREADS value: queries are serial and
  // each fault is a pure function of (seed, query index, challenge).
  expect_identical_across_thread_counts([&] {
    FunctionMembershipOracle inner(puf);
    FaultyMembershipOracle oracle(inner, config, 42);
    std::vector<int> sequence;
    sequence.reserve(challenges.size());
    for (const auto& c : challenges) {
      try {
        sequence.push_back(oracle.query_pm(c));
      } catch (const TransientFaultError&) {
        sequence.push_back(0);
      }
    }
    return std::make_tuple(sequence, oracle.faults_injected(),
                           oracle.responses_dropped());
  });
}

// --------------------------------------------------- resilient strategies

TEST(ChernoffVotes, SizesAreOddAndMonotone) {
  EXPECT_EQ(chernoff_votes(0.1, 0.99) % 2, 1u);
  EXPECT_EQ(chernoff_votes(0.1, 0.99), 15u);
  EXPECT_GE(chernoff_votes(0.2, 0.99), chernoff_votes(0.1, 0.99));
  EXPECT_GE(chernoff_votes(0.1, 0.999), chernoff_votes(0.1, 0.99));
  EXPECT_THROW(chernoff_votes(0.5, 0.99), std::invalid_argument);
}

TEST(MajorityVote, RecoversTargetConfidenceAtEtaTenPercent) {
  Rng setup(5);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  FunctionMembershipOracle inner(puf);
  FaultConfig config;
  config.flip_rate = 0.1;
  FaultyMembershipOracle faulty(inner, config, 29);
  MajorityVoteOracle voter(faulty, {.assumed_flip_rate = 0.1,
                                    .confidence = 0.99});
  const auto challenges = random_challenges(1500, 16, 9);
  std::size_t correct = 0;
  for (const auto& c : challenges)
    if (voter.query_pm(c) == puf.eval_pm(c)) ++correct;
  // Chernoff sizing guarantees >= 0.99 per-query confidence; leave margin
  // for sampling error at 1500 queries.
  EXPECT_GE(static_cast<double>(correct) / 1500.0, 0.98);
  EXPECT_EQ(voter.queries(), 1500u);
}

TEST(MajorityVote, EarlyStoppingNeverCastsNeedlessVotes) {
  Rng setup(6);
  const puf::ArbiterPuf puf(12, 0.0, setup);
  FunctionMembershipOracle inner(puf);  // noise-free channel
  MajorityVoteOracle voter(inner, {.assumed_flip_rate = 0.1,
                                   .confidence = 0.99});
  EXPECT_EQ(voter.votes_per_query(), 15u);
  for (const auto& c : random_challenges(100, 12, 11))
    (void)voter.query_pm(c);
  // Unanimous votes stop at a bare majority: 8 of 15.
  EXPECT_EQ(voter.votes_cast(), 800u);
  EXPECT_EQ(inner.queries(), 800u);
}

TEST(RetryWithBackoff, SurvivesTransientDropsAndGivesUpCleanly) {
  const FunctionView one(6, [](const BitVec&) { return +1; }, "one");

  // A channel that always drops: retry must give up after max_attempts.
  class AlwaysDropOracle final : public MembershipOracle {
   public:
    std::size_t num_vars() const override { return 6; }
    int query_pm(const BitVec&) override {
      count();
      throw TransientFaultError("drop");
    }
  } always_drop;
  EXPECT_THROW(query_with_retry(always_drop, BitVec(6), {.max_attempts = 4}),
               TransientFaultError);
  EXPECT_EQ(always_drop.queries(), 4u);

  // A lossy-but-alive channel: bounded retry rides through.
  FunctionMembershipOracle inner(one);
  FaultConfig config;
  config.drop_rate = 0.5;
  FaultyMembershipOracle faulty(inner, config, 31);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(query_with_retry(faulty, BitVec(6), {.max_attempts = 16}), +1);
}

// --------------------------------------------- graceful degradation

RobustLearnConfig small_config(std::size_t train, std::size_t holdout) {
  RobustLearnConfig config;
  config.train_queries = train;
  config.holdout_queries = holdout;
  return config;
}

TEST(RobustLearners, EveryLearnerDegradesToBudgetExhausted) {
  Rng setup(8);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  const auto make_oracle = [&](FunctionMembershipOracle& inner) {
    FaultConfig config;
    config.query_budget = 150;  // below holdout(100) + train(1000)
    return FaultyMembershipOracle(inner, config, 37);
  };
  const RobustLearnConfig config = small_config(1000, 100);

  {
    FunctionMembershipOracle inner(puf);
    auto oracle = make_oracle(inner);
    Rng rng(101);
    const auto outcome =
        robust_perceptron(oracle, ml::parity_with_bias, config, rng);
    EXPECT_EQ(outcome.status, LearnStatus::budget_exhausted);
    ASSERT_TRUE(outcome.best_hypothesis.has_value());
    EXPECT_GT(outcome.diagnostics.at("heldout_accuracy"), 0.0);
    EXPECT_EQ(outcome.queries_spent, 150u);
  }
  {
    FunctionMembershipOracle inner(puf);
    auto oracle = make_oracle(inner);
    Rng rng(102);
    const auto outcome =
        robust_logistic(oracle, ml::parity_with_bias, config, rng);
    EXPECT_EQ(outcome.status, LearnStatus::budget_exhausted);
    EXPECT_TRUE(outcome.best_hypothesis.has_value());
  }
  {
    FunctionMembershipOracle inner(puf);
    auto oracle = make_oracle(inner);
    Rng rng(103);
    const auto outcome = robust_lmn(oracle, 2, config, rng);
    EXPECT_EQ(outcome.status, LearnStatus::budget_exhausted);
    EXPECT_TRUE(outcome.best_hypothesis.has_value());
  }
  {
    FunctionMembershipOracle inner(puf);
    auto oracle = make_oracle(inner);
    Rng rng(104);
    const auto outcome = robust_chow(oracle, config, rng);
    EXPECT_EQ(outcome.status, LearnStatus::budget_exhausted);
    EXPECT_TRUE(outcome.best_hypothesis.has_value());
  }
  {
    FunctionMembershipOracle inner(puf);
    auto oracle = make_oracle(inner);
    Rng rng(105);
    // Degree-2 ANF on n=16 needs 137 interpolation points + 100 holdout.
    const auto outcome = robust_anf(oracle, 2, config, rng);
    EXPECT_EQ(outcome.status, LearnStatus::budget_exhausted);
    EXPECT_TRUE(outcome.best_hypothesis.has_value());
    EXPECT_GT(outcome.diagnostics.at("coefficients_interpolated"), 0.0);
  }
}

TEST(RobustLearners, StarvedBudgetStillReturnsWithoutHypothesis) {
  Rng setup(9);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  FunctionMembershipOracle inner(puf);
  FaultConfig fc;
  fc.query_budget = 20;  // dies inside the held-out collection
  FaultyMembershipOracle oracle(inner, fc, 41);
  Rng rng(110);
  const auto outcome = robust_perceptron(oracle, ml::parity_with_bias,
                                         small_config(1000, 100), rng);
  EXPECT_EQ(outcome.status, LearnStatus::budget_exhausted);
  EXPECT_FALSE(outcome.best_hypothesis.has_value());
  EXPECT_EQ(outcome.queries_spent, 20u);
}

TEST(RobustLearners, LstarDegradesToBudgetExhausted) {
  Rng rng(11);
  const circuit::Dfa target = circuit::Dfa::random(12, 2, 0.4, rng);
  ml::ExactDfaTeacher teacher(target);
  RobustLearnConfig config;
  config.train_queries = 10;  // far below L*'s membership-query need
  const auto outcome = robust_lstar(teacher, config);
  EXPECT_EQ(outcome.status, LearnStatus::budget_exhausted);
  EXPECT_EQ(outcome.queries_spent, 10u);
}

TEST(RobustLearners, LstarConvergesWithAmpleBudget) {
  Rng rng(12);
  const circuit::Dfa target = circuit::Dfa::random(6, 2, 0.4, rng);
  ml::ExactDfaTeacher teacher(target);
  RobustLearnConfig config;
  config.train_queries = 1000000;
  const auto outcome = robust_lstar(teacher, config);
  EXPECT_EQ(outcome.status, LearnStatus::converged);
  ASSERT_TRUE(outcome.best_hypothesis.has_value());
  EXPECT_FALSE(circuit::Dfa::distinguishing_word(target, *outcome.best_hypothesis)
                   .has_value());
}

TEST(RobustLearners, DeadlineZeroReportsDeadlineExceeded) {
  Rng setup(13);
  const puf::ArbiterPuf puf(12, 0.0, setup);
  FunctionMembershipOracle oracle(puf);
  RobustLearnConfig config = small_config(500, 100);
  config.deadline_seconds = 0.0;
  Rng rng(113);
  const auto outcome =
      robust_perceptron(oracle, ml::parity_with_bias, config, rng);
  EXPECT_EQ(outcome.status, LearnStatus::deadline_exceeded);

  circuit::Dfa target = circuit::Dfa::random(6, 2, 0.4, rng);
  ml::ExactDfaTeacher teacher(target);
  const auto lstar_outcome = robust_lstar(teacher, config);
  EXPECT_EQ(lstar_outcome.status, LearnStatus::deadline_exceeded);
}

TEST(RobustLearners, CleanChannelConverges) {
  Rng setup(14);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  FunctionMembershipOracle oracle(puf);
  Rng rng(114);
  const auto outcome = robust_perceptron(oracle, ml::parity_with_bias,
                                         small_config(2000, 400), rng);
  EXPECT_EQ(outcome.status, LearnStatus::converged);
  EXPECT_GE(outcome.diagnostics.at("heldout_accuracy"), 0.9);
  EXPECT_EQ(outcome.queries_spent, 2400u);
}

TEST(RobustLearners, AnfExactOnCleanSparseTarget) {
  Rng rng(15);
  const AnfPolynomial target = AnfPolynomial::random(12, 5, 2, rng);
  FunctionMembershipOracle oracle(target);
  Rng learn(115);
  const auto outcome = robust_anf(oracle, 2, small_config(0, 200), learn);
  EXPECT_EQ(outcome.status, LearnStatus::converged);
  ASSERT_TRUE(outcome.best_hypothesis.has_value());
  EXPECT_EQ(*outcome.best_hypothesis, target);
  EXPECT_DOUBLE_EQ(outcome.diagnostics.at("heldout_accuracy"), 1.0);
}

TEST(RobustLearners, UnreachableTargetReportsNoiseCeiling) {
  // A 2-XOR arbiter PUF is not a halfspace in parity features: the
  // Perceptron completes its epochs with full budget and still plateaus —
  // the run must say noise_ceiling, not pretend convergence.
  Rng setup(16);
  const puf::XorArbiterPuf puf =
      puf::XorArbiterPuf::independent(12, 2, 0.0, setup);
  FunctionMembershipOracle oracle(puf);
  RobustLearnConfig config = small_config(2000, 400);
  config.max_iterations = 16;
  Rng rng(116);
  const auto outcome =
      robust_perceptron(oracle, ml::parity_with_bias, config, rng);
  EXPECT_EQ(outcome.status, LearnStatus::noise_ceiling);
  EXPECT_LT(outcome.diagnostics.at("heldout_accuracy"), 0.9);
}

// ------------------------------------- outcome identity across threads

TEST(RobustLearners, OutcomeIsByteIdenticalAcrossThreadCounts) {
  Rng setup(17);
  const puf::ArbiterPuf puf(16, 0.0, setup);
  FaultConfig fc;
  fc.flip_rate = 0.05;
  fc.drop_rate = 0.02;
  fc.query_budget = 2500;

  expect_identical_across_thread_counts([&] {
    FunctionMembershipOracle inner(puf);
    FaultyMembershipOracle oracle(inner, fc, 51);
    Rng rng(117);
    const auto outcome = robust_perceptron(oracle, ml::parity_with_bias,
                                           small_config(1500, 300), rng);
    return std::make_tuple(
        static_cast<int>(outcome.status), outcome.queries_spent,
        outcome.diagnostics,
        outcome.best_hypothesis ? outcome.best_hypothesis->weights()
                                : std::vector<double>{});
  });

  // The LMN path funnels through the pooled Fourier estimators, so it
  // exercises the chunk-order reduction contract end to end.
  expect_identical_across_thread_counts([&] {
    FunctionMembershipOracle inner(puf);
    FaultyMembershipOracle oracle(inner, fc, 53);
    Rng rng(118);
    const auto outcome = robust_lmn(oracle, 2, small_config(1500, 300), rng);
    return std::make_tuple(
        static_cast<int>(outcome.status), outcome.queries_spent,
        outcome.diagnostics,
        outcome.best_hypothesis ? outcome.best_hypothesis->coefficients()
                                : std::vector<double>{});
  });
}

}  // namespace
