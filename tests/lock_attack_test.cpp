// Tests for logic locking (combinational + FSM) and the oracle-guided
// attacks (SAT attack, AppSAT, L* on obfuscated FSMs).
#include <gtest/gtest.h>

#include "attack/appsat.hpp"
#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "lock/combinational.hpp"
#include "lock/fsm_obfuscation.hpp"
#include "ml/lstar.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::lock;
using namespace pitfalls::attack;
using pitfalls::circuit::MealyMachine;
using pitfalls::circuit::Netlist;
using pitfalls::circuit::Dfa;
using pitfalls::ml::ExactDfaTeacher;
using pitfalls::ml::LStarLearner;
using pitfalls::circuit::Word;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// -------------------------------------------------------- combinational

TEST(CombinationalLock, CorrectKeyPreservesFunction) {
  Rng rng(1);
  const Netlist original = pitfalls::circuit::c17();
  const LockedCircuit locked = lock_random_xor(original, 4, rng);
  EXPECT_EQ(locked.num_key_inputs(), 4u);
  EXPECT_EQ(locked.num_data_inputs(), 5u);
  for (std::uint64_t v = 0; v < 32; ++v) {
    const BitVec data(5, v);
    EXPECT_EQ(locked.evaluate(data, locked.correct_key),
              original.evaluate(data))
        << "v=" << v;
  }
}

TEST(CombinationalLock, WrongKeysCorruptOutputs) {
  Rng rng(2);
  const Netlist original = pitfalls::circuit::c17();
  const LockedCircuit locked = lock_random_xor(original, 6, rng);
  Rng key_rng(3);
  std::size_t corrupted_keys = 0;
  for (int trial = 0; trial < 20; ++trial) {
    BitVec key(6);
    for (std::size_t i = 0; i < 6; ++i) key.set(i, key_rng.coin());
    if (key == locked.correct_key) continue;
    const double acc = key_accuracy(original, locked, key, 32, key_rng);
    if (acc < 1.0) ++corrupted_keys;
  }
  EXPECT_GT(corrupted_keys, 10u);
}

TEST(CombinationalLock, KeyAccuracyOfCorrectKeyIsOne) {
  Rng rng(4);
  pitfalls::circuit::RandomCircuitConfig config;
  config.inputs = 8;
  config.gates = 40;
  config.outputs = 3;
  const Netlist original = pitfalls::circuit::random_circuit(config, rng);
  const LockedCircuit locked = lock_random_xor(original, 8, rng);
  EXPECT_DOUBLE_EQ(
      key_accuracy(original, locked, locked.correct_key, 4096, rng), 1.0);
}

TEST(CombinationalLock, RejectsOversizedKeys) {
  Rng rng(5);
  const Netlist original = pitfalls::circuit::c17();  // 6 logic gates
  EXPECT_THROW(lock_random_xor(original, 7, rng), std::invalid_argument);
}

// ----------------------------------------------------------- SAT attack

TEST(SatAttack, RecoversFunctionOnC17) {
  Rng rng(7);
  const Netlist original = pitfalls::circuit::c17();
  const LockedCircuit locked = lock_random_xor(original, 5, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(original);
  const SatAttackResult result = sat_attack(locked, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(keys_equivalent(original, locked, result.key));
  EXPECT_GT(result.dip_iterations, 0u);
  EXPECT_EQ(result.oracle_queries, result.dip_iterations);
}

class SatAttackGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SatAttackGrid, RecoversFunctionOnRandomCircuits) {
  const auto [gates, requested_key_bits] = GetParam();
  Rng rng(static_cast<std::uint64_t>(5000 + gates + requested_key_bits));
  pitfalls::circuit::RandomCircuitConfig config;
  config.inputs = 8;
  config.gates = gates;
  config.outputs = 2;
  const Netlist original = pitfalls::circuit::random_circuit(config, rng);
  // Small random circuits can have shallow output cones; clamp the key.
  const std::size_t key_bits =
      std::min(requested_key_bits, lockable_gate_count(original));
  const LockedCircuit locked = lock_random_xor(original, key_bits, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(original);
  const SatAttackResult result = sat_attack(locked, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(keys_equivalent(original, locked, result.key));
  // Exponentially fewer queries than brute force over inputs.
  EXPECT_LT(result.oracle_queries, 256u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SatAttackGrid,
    ::testing::Combine(::testing::Values<std::size_t>(20, 40, 80),
                       ::testing::Values<std::size_t>(4, 8, 12)));

TEST(SatAttack, RecoveredKeyMayDifferButFunctionMatches) {
  // Locking can admit multiple functionally correct keys; the attack only
  // promises functional equivalence.
  Rng rng(11);
  pitfalls::circuit::RandomCircuitConfig config;
  config.inputs = 6;
  config.gates = 24;
  const Netlist original = pitfalls::circuit::random_circuit(config, rng);
  const std::size_t key_bits =
      std::min<std::size_t>(10, lockable_gate_count(original));
  const LockedCircuit locked = lock_random_xor(original, key_bits, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(original);
  const SatAttackResult result = sat_attack(locked, oracle);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(keys_equivalent(original, locked, result.key));
}

TEST(SatAttack, IterationCapAborts) {
  Rng rng(13);
  pitfalls::circuit::RandomCircuitConfig config;
  config.inputs = 10;
  config.gates = 60;
  const Netlist original = pitfalls::circuit::random_circuit(config, rng);
  const std::size_t key_bits =
      std::min<std::size_t>(16, lockable_gate_count(original));
  const LockedCircuit locked = lock_random_xor(original, key_bits, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(original);
  SatAttackConfig attack_config;
  attack_config.max_iterations = 1;
  const SatAttackResult result = sat_attack(locked, oracle, attack_config);
  // With one allowed iteration on a 16-bit key the loop all but surely
  // aborts; either way the flag must be consistent.
  if (!result.success) {
    EXPECT_LE(result.dip_iterations, 2u);
  }
}

// --------------------------------------------------------------- AppSAT

TEST(AppSat, SettlesOrSolvesExactly) {
  Rng rng(17);
  pitfalls::circuit::RandomCircuitConfig config;
  config.inputs = 8;
  config.gates = 50;
  config.outputs = 2;
  const Netlist original = pitfalls::circuit::random_circuit(config, rng);
  const std::size_t key_bits =
      std::min<std::size_t>(10, lockable_gate_count(original));
  const LockedCircuit locked = lock_random_xor(original, key_bits, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(original);
  Rng attack_rng(18);
  const AppSatResult result = appsat(locked, oracle, attack_rng);
  EXPECT_TRUE(result.exact || result.settled);
  const double acc =
      key_accuracy(original, locked, result.key, 4096, attack_rng);
  EXPECT_GT(acc, 0.95);
}

TEST(AppSat, ExactWhenDipLoopExhausts) {
  Rng rng(19);
  const Netlist original = pitfalls::circuit::c17();
  const LockedCircuit locked = lock_random_xor(original, 4, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(original);
  Rng attack_rng(20);
  AppSatConfig config;
  config.dips_per_round = 64;  // enough to drain all DIPs in round one
  const AppSatResult result = appsat(locked, oracle, attack_rng, config);
  EXPECT_TRUE(result.exact);
  EXPECT_TRUE(keys_equivalent(original, locked, result.key));
}

TEST(AppSat, ApproximateKeyOnPointFunctionCircuit) {
  // A comparator hides one "secret" pattern: SAT attacks need many DIPs,
  // AppSAT settles early with a low-error (but possibly wrong-on-the-
  // point) key — exactly the AppSAT tradeoff from [5].
  const Netlist cmp = pitfalls::circuit::equality_comparator(6);
  Rng rng(21);
  const LockedCircuit locked = lock_random_xor(cmp, 8, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(cmp);
  Rng attack_rng(22);
  AppSatConfig config;
  config.dips_per_round = 2;
  config.random_queries = 64;
  config.error_threshold = 0.03;
  const AppSatResult result = appsat(locked, oracle, attack_rng, config);
  const double acc = key_accuracy(cmp, locked, result.key, 4096, attack_rng);
  EXPECT_GT(acc, 0.9);
}

TEST(AppSat, ValidatesConfig) {
  Rng rng(23);
  const Netlist original = pitfalls::circuit::c17();
  const LockedCircuit locked = lock_random_xor(original, 2, rng);
  CircuitOracle oracle = CircuitOracle::from_netlist(original);
  AppSatConfig config;
  config.dips_per_round = 0;
  EXPECT_THROW(appsat(locked, oracle, rng, config), std::invalid_argument);
}

// ------------------------------------------------------ FSM obfuscation

TEST(FsmObfuscation, UnlockSequenceReachesFunctionalMode) {
  Rng rng(29);
  const MealyMachine functional = MealyMachine::random(5, 3, 2, rng);
  const ObfuscatedFsm obf = obfuscate_fsm(functional, 4, rng);
  EXPECT_EQ(obf.unlock_sequence.size(), 4u);
  const std::size_t state = obf.machine.run(obf.unlock_sequence);
  EXPECT_TRUE(obf.functional_states.contains(state));
}

TEST(FsmObfuscation, WrongPrefixStaysObfuscated) {
  Rng rng(31);
  const MealyMachine functional = MealyMachine::random(5, 3, 2, rng);
  const ObfuscatedFsm obf = obfuscate_fsm(functional, 4, rng);
  // Mutate the first symbol of the unlock word.
  Word wrong = obf.unlock_sequence;
  wrong[0] = (wrong[0] + 1) % 3;
  const std::size_t state = obf.machine.run(wrong);
  EXPECT_FALSE(obf.functional_states.contains(state));
}

TEST(FsmObfuscation, FunctionalCoreBehaviourPreservedAfterUnlock) {
  Rng rng(37);
  const MealyMachine functional = MealyMachine::random(6, 2, 3, rng);
  const ObfuscatedFsm obf = obfuscate_fsm(functional, 3, rng);
  Rng word_rng(38);
  for (int trial = 0; trial < 50; ++trial) {
    Word payload;
    for (int i = 0; i < 10; ++i)
      payload.push_back(static_cast<std::size_t>(word_rng.uniform_below(2)));
    Word full = obf.unlock_sequence;
    full.insert(full.end(), payload.begin(), payload.end());
    // Outputs after unlock must match the functional machine's trace.
    const auto obf_trace = obf.machine.trace(full);
    const auto expected = functional.trace(payload);
    for (std::size_t i = 0; i < payload.size(); ++i)
      EXPECT_EQ(obf_trace[obf.unlock_sequence.size() + i], expected[i]);
  }
}

TEST(FsmObfuscation, LStarRecoversUnlockSequence) {
  // Section V-B: L* learns the obfuscated machine's functional-mode DFA —
  // the shortest accepted word IS an unlock sequence.
  Rng rng(41);
  const MealyMachine functional = MealyMachine::random(4, 2, 2, rng);
  const ObfuscatedFsm obf = obfuscate_fsm(functional, 3, rng);
  const Dfa target = obf.functional_mode_dfa();

  ExactDfaTeacher teacher(target);
  const Dfa learned = LStarLearner().learn(teacher, nullptr);
  EXPECT_FALSE(Dfa::distinguishing_word(target, learned).has_value());

  // Find the shortest accepted word of the learned DFA by BFS through a
  // distinguishing query against the empty language.
  Dfa empty(1, 2, 0);
  const auto unlock = Dfa::distinguishing_word(learned, empty);
  ASSERT_TRUE(unlock.has_value());
  EXPECT_TRUE(
      obf.functional_states.contains(obf.machine.run(*unlock)));
  EXPECT_EQ(unlock->size(), obf.unlock_sequence.size());
}

TEST(FsmObfuscation, ValidatesArguments) {
  Rng rng(43);
  const MealyMachine functional = MealyMachine::random(3, 2, 2, rng);
  EXPECT_THROW(obfuscate_fsm(functional, 0, rng), std::invalid_argument);
  const MealyMachine one_input(3, 1, 2, 0);
  EXPECT_THROW(obfuscate_fsm(one_input, 2, rng), std::invalid_argument);
}

}  // namespace
