// Tests for FSM synthesis, the BMC reachability attack, and the interpose
// PUF composition.
#include <gtest/gtest.h>

#include "attack/fsm_bmc.hpp"
#include "circuit/fsm_synth.hpp"
#include "lock/fsm_obfuscation.hpp"
#include "ml/features.hpp"
#include "ml/logistic.hpp"
#include "ml/lstar.hpp"
#include "puf/crp.hpp"
#include "puf/interpose.hpp"
#include "puf/metrics.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using circuit::MealyMachine;
using support::BitVec;
using support::Rng;

// -------------------------------------------------------------- synthesis

TEST(FsmSynth, EncodingWidths) {
  EXPECT_EQ(circuit::encoding_width(1), 1u);
  EXPECT_EQ(circuit::encoding_width(2), 1u);
  EXPECT_EQ(circuit::encoding_width(3), 2u);
  EXPECT_EQ(circuit::encoding_width(8), 3u);
  EXPECT_EQ(circuit::encoding_width(9), 4u);
  EXPECT_THROW(circuit::encoding_width(0), std::invalid_argument);
}

TEST(FsmSynth, NetlistMatchesBehaviouralModel) {
  Rng rng(1);
  const MealyMachine machine = MealyMachine::random(6, 3, 4, rng);
  const auto synth = circuit::synthesize_fsm(machine);
  ASSERT_EQ(synth.netlist.num_inputs(), synth.state_bits + synth.input_bits);
  ASSERT_EQ(synth.netlist.num_outputs(),
            synth.state_bits + synth.output_bits);

  for (std::size_t s = 0; s < machine.num_states(); ++s) {
    for (std::size_t i = 0; i < machine.num_inputs(); ++i) {
      BitVec in(synth.state_bits + synth.input_bits);
      for (std::size_t b = 0; b < synth.state_bits; ++b)
        in.set(b, (s >> b) & 1);
      for (std::size_t b = 0; b < synth.input_bits; ++b)
        in.set(synth.state_bits + b, (i >> b) & 1);
      const BitVec out = synth.netlist.evaluate(in);

      std::size_t next = 0;
      for (std::size_t b = 0; b < synth.state_bits; ++b)
        if (out.get(b)) next |= std::size_t{1} << b;
      std::size_t output = 0;
      for (std::size_t b = 0; b < synth.output_bits; ++b)
        if (out.get(synth.state_bits + b)) output |= std::size_t{1} << b;

      EXPECT_EQ(next, machine.next_state(s, i)) << "s=" << s << " i=" << i;
      EXPECT_EQ(output, machine.output(s, i)) << "s=" << s << " i=" << i;
    }
  }
}

TEST(FsmSynth, PowerOfTwoSizesToo) {
  Rng rng(2);
  const MealyMachine machine = MealyMachine::random(8, 2, 2, rng);
  const auto synth = circuit::synthesize_fsm(machine);
  EXPECT_EQ(synth.state_bits, 3u);
  EXPECT_EQ(synth.input_bits, 1u);
  // Spot check a transition.
  BitVec in(4);
  const BitVec out = synth.netlist.evaluate(in);
  std::size_t next = 0;
  for (std::size_t b = 0; b < 3; ++b)
    if (out.get(b)) next |= std::size_t{1} << b;
  EXPECT_EQ(next, machine.next_state(0, 0));
}

// -------------------------------------------------------------------- BMC

TEST(FsmBmc, EmptyWordWhenResetIsTarget) {
  Rng rng(3);
  const MealyMachine machine = MealyMachine::random(4, 2, 2, rng);
  const auto result = attack::bmc_reach(machine, {machine.reset_state()}, 4);
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.word.empty());
}

TEST(FsmBmc, FindsShortestPathInAChain) {
  // 0 -1-> 1 -1-> 2 -1-> 3; symbol 0 loops back to 0.
  MealyMachine machine(4, 2, 2, 0);
  for (std::size_t s = 0; s < 3; ++s) {
    machine.set_transition(s, 1, s + 1, 0);
    machine.set_transition(s, 0, 0, 0);
  }
  const auto result = attack::bmc_reach(machine, {3}, 8);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.word, (circuit::Word{1, 1, 1}));
  EXPECT_EQ(result.frames_solved, 3u);  // depths 1, 2 unsat, 3 sat
}

TEST(FsmBmc, ReportsFailureBeyondBound) {
  MealyMachine machine(4, 2, 2, 0);
  for (std::size_t s = 0; s < 3; ++s) {
    machine.set_transition(s, 1, s + 1, 0);
    machine.set_transition(s, 0, 0, 0);
  }
  const auto result = attack::bmc_reach(machine, {3}, 2);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.frames_solved, 2u);
}

TEST(FsmBmc, RecoversUnlockSequenceOfObfuscatedFsm) {
  Rng rng(5);
  const MealyMachine functional = MealyMachine::random(6, 3, 2, rng);
  const auto obf = lock::obfuscate_fsm(functional, 4, rng);
  const auto result =
      attack::bmc_reach(obf.machine, obf.functional_states, 8);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.word.size(), obf.unlock_sequence.size());
  EXPECT_TRUE(obf.functional_states.contains(obf.machine.run(result.word)));
}

TEST(FsmBmc, AgreesWithLStarOnUnlockLength) {
  // White-box BMC and black-box L* must find unlock words of equal length.
  Rng rng(7);
  const MealyMachine functional = MealyMachine::random(5, 2, 2, rng);
  const auto obf = lock::obfuscate_fsm(functional, 5, rng);

  const auto bmc = attack::bmc_reach(obf.machine, obf.functional_states, 10);
  ASSERT_TRUE(bmc.found);

  const circuit::Dfa target = obf.functional_mode_dfa();
  ml::ExactDfaTeacher teacher(target);
  const circuit::Dfa learned = ml::LStarLearner().learn(teacher, nullptr);
  const circuit::Dfa empty(1, 2, 0);
  const auto lstar_word = circuit::Dfa::distinguishing_word(learned, empty);
  ASSERT_TRUE(lstar_word.has_value());
  EXPECT_EQ(bmc.word.size(), lstar_word->size());
}

TEST(FsmBmc, ValidatesTargets) {
  Rng rng(9);
  const MealyMachine machine = MealyMachine::random(4, 2, 2, rng);
  EXPECT_THROW(attack::bmc_reach(machine, {}, 4), std::invalid_argument);
  EXPECT_THROW(attack::bmc_reach(machine, {9}, 4), std::invalid_argument);
}

// ------------------------------------------------------------- interpose

TEST(InterposePuf, ExtendChallengeInsertsAtMiddle) {
  Rng rng(11);
  const puf::InterposePuf ipuf(8, 1, 1, 0.0, rng);
  const BitVec c = BitVec::from_string("10110011");
  const BitVec plus = ipuf.extend_challenge(c, -1);  // response 1 -> bit 1
  ASSERT_EQ(plus.size(), 9u);
  EXPECT_TRUE(plus.get(4));
  EXPECT_EQ(plus.to_string(), "101110011");
  const BitVec minus = ipuf.extend_challenge(c, +1);
  EXPECT_FALSE(minus.get(4));
}

TEST(InterposePuf, CompositionMatchesManualEvaluation) {
  Rng rng(13);
  const puf::InterposePuf ipuf(10, 2, 2, 0.0, rng);
  Rng eval(14);
  for (int t = 0; t < 100; ++t) {
    BitVec c(10);
    for (std::size_t b = 0; b < 10; ++b) c.set(b, eval.coin());
    const int up = ipuf.upper().eval_pm(c);
    const int expected = ipuf.lower().eval_pm(ipuf.extend_challenge(c, up));
    EXPECT_EQ(ipuf.eval_pm(c), expected);
  }
}

TEST(InterposePuf, RoughlyUniform) {
  Rng rng(15);
  const puf::InterposePuf ipuf(16, 1, 1, 0.0, rng);
  Rng eval(16);
  EXPECT_NEAR(puf::uniformity(ipuf, 20000, eval), 0.5, 0.12);
}

TEST(InterposePuf, HarderThanPlainChainForNaiveAttack) {
  // A single-LTF model in parity features masters a plain chain but not a
  // (1,1)-iPUF — the interposed bit breaks the clean feature map.
  Rng rng(17);
  const puf::InterposePuf ipuf(24, 1, 1, 0.0, rng);
  Rng collect(18);
  const puf::CrpSet train = puf::CrpSet::collect_uniform(ipuf, 6000, collect);
  const puf::CrpSet test = puf::CrpSet::collect_uniform(ipuf, 3000, collect);
  Rng train_rng(19);
  const ml::LinearModel model = ml::LogisticRegression().fit_model(
      train.challenges(), train.responses(), ml::parity_with_bias, train_rng);
  const double acc = test.accuracy_of(model);
  EXPECT_LT(acc, 0.95);
  EXPECT_GT(acc, 0.55);  // but far from unlearnable
}

TEST(InterposePuf, ValidatesConstruction) {
  Rng rng(21);
  EXPECT_THROW(puf::InterposePuf(1, 1, 1, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(puf::InterposePuf(8, 0, 1, 0.0, rng), std::invalid_argument);
}

}  // namespace
