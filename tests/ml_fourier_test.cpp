// Tests for the Fourier-analytic learners: LMN, Chow-parameter LTF
// reconstruction and the halfspace property tester — the machinery behind
// Corollary 1 and Tables II/III.
#include <gtest/gtest.h>

#include <cmath>

#include "boolfn/ltf.hpp"
#include "boolfn/truth_table.hpp"
#include "ml/chow.hpp"
#include "ml/halfspace_tester.hpp"
#include "ml/lmn.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls::ml;
using pitfalls::boolfn::FunctionView;
using pitfalls::boolfn::Ltf;
using pitfalls::boolfn::TruthTable;
using pitfalls::puf::BistableRingConfig;
using pitfalls::puf::BistableRingPuf;
using pitfalls::puf::CrpSet;
using pitfalls::puf::XorArbiterPuf;
using pitfalls::support::BitVec;
using pitfalls::support::Rng;

// ------------------------------------------------------------------ LMN

TEST(Lmn, HypothesisEvaluatesStoredExpansion) {
  // 0.8*chi_{} - 0.5*chi_{0}
  SparseFourierHypothesis h(2, {BitVec(2, 0), BitVec(2, 1)}, {0.8, -0.5});
  EXPECT_DOUBLE_EQ(h.approximation(BitVec::from_string("00")), 0.3);
  EXPECT_DOUBLE_EQ(h.approximation(BitVec::from_string("10")), 1.3);
  EXPECT_EQ(h.eval_pm(BitVec::from_string("00")), +1);
  EXPECT_DOUBLE_EQ(h.captured_weight(), 0.64 + 0.25);
}

TEST(Lmn, LearnsLowDegreeTargetExactly) {
  // x0 XOR x1 has its whole spectrum at degree 2.
  const FunctionView target(
      4, [](const BitVec& x) { return (x.get(0) != x.get(1)) ? -1 : +1; },
      "x0^x1");
  Rng rng(1);
  const LmnLearner learner({.degree = 2, .prune_below = 0.0});
  const auto h = learner.learn(target, 4000, rng);
  const TruthTable ht = TruthTable::from_function(h);
  const TruthTable tt = TruthTable::from_function(target);
  EXPECT_DOUBLE_EQ(ht.distance(tt), 0.0);
}

TEST(Lmn, DegreeCutoffBelowSpectrumFails) {
  // The same XOR target is invisible at degree 1: accuracy ~ 1/2.
  const FunctionView target(
      6, [](const BitVec& x) { return (x.get(0) != x.get(1)) ? -1 : +1; },
      "x0^x1");
  Rng rng(2);
  const LmnLearner learner({.degree = 1, .prune_below = 0.0});
  const auto h = learner.learn(target, 4000, rng);
  const double acc =
      1.0 - TruthTable::from_function(h).distance(TruthTable::from_function(target));
  EXPECT_LT(acc, 0.65);
}

TEST(Lmn, LearnsSingleArbiterChainWell) {
  // k=1: in the paper's feature-space coordinates the chain is one LTF,
  // whose spectrum concentrates at degree <= 1; LMN at degree 2 beats 90%.
  Rng rng(3);
  const XorArbiterPuf puf = XorArbiterPuf::independent(12, 1, 0.0, rng);
  const auto target = puf.feature_space_view();
  Rng learn_rng(4);
  const LmnLearner learner({.degree = 2, .prune_below = 0.0});
  const auto h = learner.learn(target, 30000, learn_rng);
  const double acc = 1.0 - TruthTable::from_function(h).distance(
                               TruthTable::from_function(target));
  EXPECT_GT(acc, 0.9);
}

TEST(Lmn, IndependentXorChainsDegradeAccuracy) {
  // Corollary 1's blow-up, observed: fixed degree + fixed samples, rising k.
  Rng rng(5);
  Rng learn_rng(6);
  const LmnLearner learner({.degree = 2, .prune_below = 0.0});
  const XorArbiterPuf puf1 = XorArbiterPuf::independent(12, 1, 0.0, rng);
  const XorArbiterPuf puf4 = XorArbiterPuf::independent(12, 4, 0.0, rng);
  const auto t1 = puf1.feature_space_view();
  const auto t4 = puf4.feature_space_view();
  const double acc_k1 =
      1.0 - TruthTable::from_function(learner.learn(t1, 20000, learn_rng))
                .distance(TruthTable::from_function(t1));
  const double acc_k4 =
      1.0 - TruthTable::from_function(learner.learn(t4, 20000, learn_rng))
                .distance(TruthTable::from_function(t4));
  EXPECT_GT(acc_k1, acc_k4 + 0.15);
}

TEST(Lmn, CorrelatedChainsStayLearnable) {
  // The [17] observation: correlation keeps large-k XOR PUFs learnable to
  // a useful accuracy (~75% in the paper).
  Rng rng(7);
  const XorArbiterPuf corr = XorArbiterPuf::correlated(12, 6, 0.95, 0.0, rng);
  const auto target = corr.feature_space_view();
  Rng learn_rng(8);
  const LmnLearner learner({.degree = 2, .prune_below = 0.0});
  const auto h = learner.learn(target, 30000, learn_rng);
  const double acc = 1.0 - TruthTable::from_function(h).distance(
                               TruthTable::from_function(target));
  EXPECT_GT(acc, 0.7);
}

TEST(Lmn, FromDataMatchesFromOracle) {
  const FunctionView target(
      5, [](const BitVec& x) { return x.pm_one(2); }, "dictator");
  Rng rng(9);
  std::vector<BitVec> challenges;
  std::vector<int> responses;
  for (int i = 0; i < 2000; ++i) {
    BitVec x(5);
    for (std::size_t b = 0; b < 5; ++b) x.set(b, rng.coin());
    responses.push_back(target.eval_pm(x));
    challenges.push_back(std::move(x));
  }
  const LmnLearner learner({.degree = 1, .prune_below = 0.0});
  const auto h = learner.learn_from_data(challenges, responses);
  EXPECT_DOUBLE_EQ(TruthTable::from_function(h).distance(
                       TruthTable::from_function(target)),
                   0.0);
}

TEST(Lmn, PruningDropsSmallCoefficients) {
  const FunctionView target(
      4, [](const BitVec& x) { return x.pm_one(0); }, "dictator");
  Rng rng(10);
  const LmnLearner learner({.degree = 2, .prune_below = 0.3});
  const auto h = learner.learn(target, 5000, rng);
  EXPECT_EQ(h.num_terms(), 1u);  // only chi_{0} survives
}

TEST(Lmn, SampleBookkeeping) {
  const LmnLearner learner({.degree = 2, .prune_below = 0.0});
  EXPECT_EQ(learner.num_coefficients(10), 1u + 10u + 45u);
  EXPECT_GT(learner.recommended_samples(10, 0.1, 0.01), 56u);
}

// ----------------------------------------------------------------- Chow

TEST(Chow, ExactChowOfDictator) {
  const FunctionView f(
      3, [](const BitVec& x) { return x.pm_one(1); }, "dictator");
  const auto chow = exact_chow(TruthTable::from_function(f));
  EXPECT_DOUBLE_EQ(chow.degree0, 0.0);
  EXPECT_DOUBLE_EQ(chow.degree1[1], 1.0);
  EXPECT_DOUBLE_EQ(chow.degree1[0], 0.0);
  EXPECT_DOUBLE_EQ(chow.degree1_weight(), 1.0);
}

TEST(Chow, EstimateConvergesToExact) {
  Rng rng(11);
  const Ltf ltf = Ltf::random(8, rng);
  const auto exact = exact_chow(TruthTable::from_function(ltf));
  std::vector<BitVec> challenges;
  std::vector<int> responses;
  for (int i = 0; i < 60000; ++i) {
    BitVec x(8);
    for (std::size_t b = 0; b < 8; ++b) x.set(b, rng.coin());
    responses.push_back(ltf.eval_pm(x));
    challenges.push_back(std::move(x));
  }
  const auto estimated = estimate_chow(challenges, responses);
  EXPECT_NEAR(estimated.degree0, exact.degree0, 0.02);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(estimated.degree1[i], exact.degree1[i], 0.02);
}

class ChowReconstruction : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChowReconstruction, RecoversRandomLtfs) {
  // Chow's theorem in action: the reconstruction from exact Chow parameters
  // must be close to the original LTF.
  Rng rng(100 + GetParam());
  const Ltf target = Ltf::random(GetParam(), rng);
  const TruthTable tt = TruthTable::from_function(target);
  const auto chow = exact_chow(tt);
  const Ltf rebuilt = reconstruct_ltf(chow);
  const double acc = 1.0 - tt.distance(TruthTable::from_function(rebuilt));
  EXPECT_GT(acc, 0.93) << "n=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Arities, ChowReconstruction,
                         ::testing::Values(6, 8, 10, 12));

TEST(Chow, CorrectionRoundsDoNotHurt) {
  Rng rng(13);
  const Ltf target = Ltf::random(10, rng);
  const TruthTable tt = TruthTable::from_function(target);
  const auto chow = exact_chow(tt);

  std::vector<BitVec> challenges;
  for (int i = 0; i < 4000; ++i) {
    BitVec x(10);
    for (std::size_t b = 0; b < 10; ++b) x.set(b, rng.coin());
    challenges.push_back(std::move(x));
  }
  const Ltf plain = reconstruct_ltf(chow);
  const Ltf corrected =
      reconstruct_ltf(chow, {.correction_rounds = 5, .step = 0.5}, challenges);
  const double acc_plain = 1.0 - tt.distance(TruthTable::from_function(plain));
  const double acc_corr =
      1.0 - tt.distance(TruthTable::from_function(corrected));
  EXPECT_GE(acc_corr, acc_plain - 0.02);
}

TEST(Chow, BiasedLtfThresholdMatched) {
  // A heavily biased LTF: the reconstruction must reproduce the bias sign.
  const Ltf target({1.0, 1.0, 1.0, 1.0}, 2.5);  // mostly -1... check
  const TruthTable tt = TruthTable::from_function(target);
  const auto chow = exact_chow(tt);
  const Ltf rebuilt = reconstruct_ltf(chow);
  const TruthTable rt = TruthTable::from_function(rebuilt);
  EXPECT_LT(tt.distance(rt), 0.15);
  EXPECT_EQ(tt.bias() > 0, rt.bias() > 0);
}

TEST(Chow, DegenerateChowFallsBackToConstant) {
  ChowParameters chow;
  chow.degree0 = 1.0;
  chow.degree1 = {0.0, 0.0, 0.0};
  const Ltf rebuilt = reconstruct_ltf(chow);
  // Constant +1 function expected.
  EXPECT_EQ(rebuilt.eval_pm(BitVec(3, 0b101)), +1);
  EXPECT_EQ(rebuilt.eval_pm(BitVec(3, 0b010)), +1);
}

// ------------------------------------------------------ halfspace tester

TEST(HalfspaceTester, AcceptsRandomLtfs) {
  Rng rng(17);
  const HalfspaceTester tester(0.15);
  for (int trial = 0; trial < 3; ++trial) {
    const Ltf ltf = Ltf::random(16, rng);
    const auto report = tester.test(ltf, 60000, rng);
    EXPECT_TRUE(report.accepted) << "gap=" << report.gap;
    EXPECT_LT(report.far_from_halfspace, 0.15);
  }
}

TEST(HalfspaceTester, RejectsParity) {
  // Parity has zero degree-1 weight: maximal gap.
  const FunctionView parity(
      16, [](const BitVec& x) { return x.parity() ? -1 : +1; }, "parity");
  Rng rng(19);
  const HalfspaceTester tester(0.15);
  const auto report = tester.test(parity, 20000, rng);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.far_from_halfspace, 0.8);
}

TEST(HalfspaceTester, GapTracksBrNonlinearShare) {
  Rng rng(23);
  const HalfspaceTester tester(0.1);
  double previous = -1.0;
  for (double share : {0.1, 0.3, 0.5}) {
    BistableRingConfig cfg;
    cfg.bits = 16;
    cfg.nonlinear_share = share;
    const BistableRingPuf puf(cfg, rng);
    Rng test_rng(24);
    const auto report = tester.test(puf, 60000, test_rng);
    EXPECT_GT(report.gap, previous) << "share=" << share;
    EXPECT_NEAR(report.gap, share, 0.12) << "share=" << share;
    previous = report.gap;
  }
}

TEST(HalfspaceTester, SmallSampleBiasCorrectionKeepsLtfAccepted) {
  // With only ~100 CRPs the raw W1 estimate of an LTF on n=16 inputs is
  // inflated by ~n/m; the corrected statistic must still accept.
  Rng rng(29);
  const Ltf ltf = Ltf::random(16, rng);
  const HalfspaceTester tester(0.35);
  const auto report = tester.test(ltf, 120, rng);
  EXPECT_LT(report.w1, report.w1_raw);
  EXPECT_TRUE(report.accepted) << "gap=" << report.gap;
}

TEST(HalfspaceTester, ReportsBias) {
  const FunctionView constant(8, [](const BitVec&) { return +1; }, "one");
  Rng rng(31);
  const auto report = HalfspaceTester(0.2).test(constant, 2000, rng);
  EXPECT_DOUBLE_EQ(report.bias, 1.0);
}

TEST(HalfspaceTester, RecommendedSamplesGrowWithDimension) {
  const auto small = HalfspaceTester::recommended_samples(16, 0.1, 0.01);
  const auto large = HalfspaceTester::recommended_samples(64, 0.1, 0.01);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 100u);
}

TEST(HalfspaceTester, ValidatesParameters) {
  EXPECT_THROW(HalfspaceTester(0.0), std::invalid_argument);
  EXPECT_THROW(HalfspaceTester(1.0), std::invalid_argument);
  const HalfspaceTester tester(0.1);
  EXPECT_THROW(tester.test({}, {}), std::invalid_argument);
}

}  // namespace
