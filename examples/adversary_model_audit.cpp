// Adversary-model audit: the workflow the paper's conclusion proposes,
// applied to a designer's own security claim.
//
// A (fictional) design team claims: "Our 64-stage 5-XOR Arbiter PUF is
// ML-resistant — the bound of [9] says provable learners need too many
// CRPs." This example runs that claim through the audit pipeline:
//
//   1. Encode the claim as a core::SecurityClaim.
//   2. Audit it against the realistic hardware attacker.
//   3. Print the Table I bounds for THEIR parameters to show which row the
//      claim silently relied on.
//   4. Run the empirical confirmation: the LMN learner and the
//      membership-query learner on a simulated instance.
//
// Build & run:  ./build/examples/adversary_model_audit
#include <iostream>

#include "boolfn/truth_table.hpp"
#include "core/bounds.hpp"
#include "core/pitfalls.hpp"
#include "ml/lmn.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace pitfalls;
  using support::Table;

  // ------------------------------------------------------------ 1. claim
  core::SecurityClaim claim;
  claim.primitive = "64-stage 5-XOR Arbiter PUF";
  claim.statement =
      "resistant to ML modeling: the provable-learner CRP bound is "
      "prohibitively large";
  claim.source = "design team";
  claim.model.distribution = core::DistributionAssumption::kArbitrary;
  claim.model.access = core::AccessType::kRandomExamples;
  claim.model.goal = core::InferenceGoal::kApproximate;
  claim.model.hypothesis = core::HypothesisRestriction::kProper;
  claim.algorithm_specific = true;  // it cites the Perceptron bound of [9]

  std::cout << "Claim under audit: \"" << claim.statement << "\"\n"
            << "Proved in model:   " << claim.model.describe() << "\n\n";

  // ------------------------------------------------------------ 2. audit
  const core::PitfallAuditor auditor;
  const auto findings =
      auditor.audit(claim, core::realistic_hardware_attacker());
  std::cout << "Audit against the realistic hardware attacker ("
            << core::realistic_hardware_attacker().describe() << "):\n";
  for (const auto& finding : findings)
    std::cout << "  [" << core::to_string(finding.severity) << "] "
              << core::to_string(finding.kind) << "\n";
  std::cout << "\n";

  // --------------------------------------------------------- 3. bounds
  Table table({"source", "algorithm", "access", "bound (#CRPs)"});
  for (const auto& row : core::table1_rows(64, 5, 0.05, 0.01))
    table.add_row({row.source, row.algorithm, row.access,
                   Table::fmt_or_inf(row.value, 1)});
  table.print(std::cout, "Table I rows at the claim's parameters "
                         "(n=64, k=5, eps=0.05, delta=0.01):");
  std::cout << "The claim cites row 1; rows 2-4 are the models the audit "
               "says were ignored.\n\n";

  // ----------------------------------------------- 4. empirical evidence
  // Small-scale empirical confirmation on a simulated instance (n scaled
  // down so the truth-table comparison stays exact).
  support::Rng rng(1);
  const puf::XorArbiterPuf indep =
      puf::XorArbiterPuf::independent(12, 5, 0.0, rng);
  const puf::XorArbiterPuf corr =
      puf::XorArbiterPuf::correlated(12, 5, 0.95, 0.0, rng);
  const ml::LmnLearner lmn({.degree = 2, .prune_below = 0.0});
  support::Rng learn(2);
  const auto acc = [&](const puf::XorArbiterPuf& p) {
    const auto view = p.feature_space_view();
    const auto h = lmn.learn(view, 25000, learn);
    return 100.0 * (1.0 - boolfn::TruthTable::from_function(h).distance(
                              boolfn::TruthTable::from_function(view)));
  };
  std::cout << "Empirical check (scaled to n=12 for exact evaluation):\n"
            << "  LMN vs independent 5-XOR : " << acc(indep) << "%\n"
            << "  LMN vs correlated  5-XOR : " << acc(corr) << "%\n\n";

  std::cout
      << "Verdict: the claim holds only inside its own adversary model.\n"
      << "Against uniform-distribution learners, correlated manufacturing\n"
      << "artifacts, or chosen-challenge access, the cited bound is simply\n"
      << "the wrong row of the table.\n";
  return 0;
}
