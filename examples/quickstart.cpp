// Quickstart: simulate an Arbiter PUF, mount the classic modeling attack,
// and see why the adversary model matters.
//
//   1. Instantiate a 64-stage Arbiter PUF with attribute noise.
//   2. Eavesdrop 4000 noisy CRPs (random-example access).
//   3. Train logistic regression in the parity-feature representation.
//   4. Evaluate on fresh noiseless CRPs.
//   5. Repeat with the WRONG representation (raw challenge bits) and watch
//      the same learner fail — the paper's Section V-A pitfall in 20 lines.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "ml/features.hpp"
#include "ml/logistic.hpp"
#include "puf/arbiter.hpp"
#include "puf/crp.hpp"
#include "puf/metrics.hpp"
#include "support/rng.hpp"

int main() {
  using namespace pitfalls;
  support::Rng rng(2020);

  // 1. The device under attack.
  const puf::ArbiterPuf device(64, /*noise_sigma=*/0.5, rng);
  std::cout << "Device: " << device.describe() << "\n";
  std::cout << "  uniformity : " << puf::uniformity(device, 20000, rng)
            << " (0.5 is ideal)\n";
  std::cout << "  reliability: " << puf::reliability(device, 2000, 7, rng)
            << " (1.0 is noise-free)\n\n";

  // 2. Eavesdropped (noisy) training CRPs + clean evaluation CRPs.
  const puf::CrpSet train = puf::CrpSet::collect_noisy(device, 4000, rng);
  const puf::CrpSet test = puf::CrpSet::collect_uniform(device, 2000, rng);

  // 3./4. Modeling attack in the correct (parity-feature) representation.
  const ml::LogisticRegression attacker;
  const ml::LinearModel good_model = attacker.fit_model(
      train.challenges(), train.responses(), ml::parity_with_bias, rng);
  std::cout << "Attack with parity features  : "
            << 100.0 * test.accuracy_of(good_model) << "% accuracy\n";

  // 5. Same learner, wrong representation.
  const ml::LinearModel bad_model = attacker.fit_model(
      train.challenges(), train.responses(), ml::pm_with_bias, rng);
  std::cout << "Attack with raw challenge bits: "
            << 100.0 * test.accuracy_of(bad_model) << "% accuracy\n\n";

  std::cout
      << "Same device, same CRPs, same algorithm — only the concept\n"
      << "representation changed. An evaluation that had only tried the\n"
      << "second model would have certified this PUF as 'ML-resistant'.\n"
      << "That is the paper's point: state the adversary model, then test\n"
      << "the strongest representation the attacker could use.\n";
  return 0;
}
