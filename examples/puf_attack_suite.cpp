// PUF attack suite: one scenario per adversary-model axis of the paper.
//
//   Scenario A (distribution axis)  — XOR Arbiter PUFs under the LMN
//     uniform-distribution learner: feasible for small k, infeasible for
//     large k with independent chains, feasible again with correlated
//     chains.
//   Scenario B (access axis)       — the same XOR construction with
//     near-junta chains falls to membership-query ANF interpolation.
//   Scenario C (representation axis) — BR PUFs: the Chow/LTF pipeline
//     plateaus, and the halfspace tester explains why before a single
//     learner is run.
//
// Build & run:  ./build/examples/puf_attack_suite
#include <iostream>

#include "boolfn/truth_table.hpp"
#include "ml/anf_learner.hpp"
#include "ml/chow.hpp"
#include "ml/halfspace_tester.hpp"
#include "ml/lmn.hpp"
#include "ml/oracle.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using boolfn::TruthTable;
using support::BitVec;
using support::Rng;
using support::Table;

double lmn_accuracy(const boolfn::BooleanFunction& target, Rng& rng) {
  const ml::LmnLearner learner({.degree = 2, .prune_below = 0.0});
  const auto h = learner.learn(target, 25000, rng);
  return 1.0 - TruthTable::from_function(h).distance(
                   TruthTable::from_function(target));
}

}  // namespace

int main() {
  Rng rng(7);

  // ---------------------------------------------------------- Scenario A
  std::cout << "--- A: distribution axis — LMN vs XOR Arbiter PUFs ---\n";
  {
    Table table({"construction", "k", "LMN accuracy [%]"});
    for (const std::size_t k : {1u, 5u}) {
      const auto puf = puf::XorArbiterPuf::independent(12, k, 0.0, rng);
      Rng learn(100 + k);
      table.add_row({"independent", std::to_string(k),
                     Table::fmt(100.0 * lmn_accuracy(puf.feature_space_view(),
                                                     learn),
                                1)});
    }
    const auto corr = puf::XorArbiterPuf::correlated(12, 8, 0.95, 0.0, rng);
    Rng learn(200);
    table.add_row({"correlated (rho=0.95)", "8",
                   Table::fmt(100.0 * lmn_accuracy(corr.feature_space_view(),
                                                   learn),
                              1)});
    table.print(std::cout);
    std::cout << "The k=5 failure is NOT a security proof: it holds only\n"
                 "for this algorithm, this distribution, these chains.\n\n";
  }

  // ---------------------------------------------------------- Scenario B
  std::cout << "--- B: access axis — membership queries change everything ---\n";
  {
    // Near-junta chains (decaying weights) XORed together.
    std::vector<puf::ArbiterPuf> chains;
    Rng chain_rng(33);
    for (int c = 0; c < 3; ++c) {
      std::vector<double> w(13, 0.0);
      double scale = 1.5;
      for (std::size_t i = 0; i < 13; ++i) {
        w[i] = scale * chain_rng.gaussian();
        scale *= 0.4;
      }
      chains.emplace_back(std::move(w), 0.0);
    }
    const puf::XorArbiterPuf puf(std::move(chains));
    const auto target = puf.feature_space_view();

    ml::FunctionMembershipOracle oracle(target);
    const auto result = ml::learn_anf_bounded_degree(oracle, 4);
    Rng eval(44);
    std::size_t agree = 0;
    for (int t = 0; t < 5000; ++t) {
      BitVec x(12);
      for (std::size_t b = 0; b < 12; ++b) x.set(b, eval.coin());
      if (result.polynomial.eval_pm(x) == target.eval_pm(x)) ++agree;
    }
    std::cout << "ANF interpolation with " << result.membership_queries
              << " chosen challenges: "
              << 100.0 * static_cast<double>(agree) / 5000.0
              << "% accuracy on a 3-XOR PUF.\n"
              << "Any analysis that assumed 'random CRPs only' missed this\n"
              << "attacker entirely (Corollary 2).\n\n";
  }

  // ---------------------------------------------------------- Scenario C
  std::cout << "--- C: representation axis — BR PUFs are not halfspaces ---\n";
  {
    const puf::BistableRingPuf br(puf::BistableRingConfig::paper_instance(32),
                                  rng);
    Rng collect(55);
    const puf::CrpSet crps = puf::CrpSet::collect_uniform(br, 30000, collect);

    // Step 1: test the representation BEFORE learning.
    const auto report =
        ml::HalfspaceTester(0.12).test(crps.challenges(), crps.responses());
    std::cout << "Halfspace tester: far-from-halfspace estimate = "
              << 100.0 * report.far_from_halfspace << "% ("
              << (report.accepted ? "accepted" : "REJECTED") << ")\n";

    // Step 2: the LTF pipeline anyway — and its plateau.
    const auto chow = ml::estimate_chow(crps.challenges(), crps.responses());
    const boolfn::Ltf f_prime = ml::reconstruct_ltf(chow);
    const puf::CrpSet eval = puf::CrpSet::collect_uniform(br, 10000, collect);
    std::cout << "Best Chow-parameter LTF accuracy: "
              << 100.0 * eval.accuracy_of(f_prime) << "%\n"
              << "No amount of extra CRPs will push this to ~100% — the\n"
              << "tester already told us the concept class was wrong\n"
              << "(Tables II and III of the paper).\n";
  }
  return 0;
}
