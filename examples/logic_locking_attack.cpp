// Logic-locking end-to-end: lock a netlist (parsed from .bench text), break
// it with the SAT attack and with AppSAT, then obfuscate an FSM and break
// that with Angluin's L*.
//
// Build & run:  ./build/examples/logic_locking_attack
#include <iostream>

#include "attack/appsat.hpp"
#include "attack/sat_attack.hpp"
#include "circuit/bench_io.hpp"
#include "circuit/fsm.hpp"
#include "lock/combinational.hpp"
#include "lock/fsm_obfuscation.hpp"
#include "ml/lstar.hpp"
#include "support/rng.hpp"

namespace {

// A small ALU-ish slice in .bench format — the sort of IP a designer would
// send to an untrusted foundry.
const char* kBenchText = R"(
# 4-bit combinational slice
INPUT(a0)
INPUT(a1)
INPUT(a2)
INPUT(a3)
INPUT(b0)
INPUT(b1)
INPUT(b2)
INPUT(b3)
OUTPUT(y0)
OUTPUT(y1)
x0 = XOR(a0, b0)
x1 = XOR(a1, b1)
x2 = XOR(a2, b2)
x3 = XOR(a3, b3)
c0 = AND(a0, b0)
s1 = XOR(x1, c0)
c1 = OR(c0, x1)
m0 = NAND(x2, x3)
m1 = NOR(s1, m0)
y0 = XOR(m1, c1)
y1 = AND(m0, x0)
)";

}  // namespace

int main() {
  using namespace pitfalls;
  support::Rng rng(99);

  const circuit::Netlist original = circuit::read_bench(kBenchText);
  std::cout << "Parsed netlist: " << original.num_inputs() << " inputs, "
            << original.logic_gate_count() << " gates, "
            << original.num_outputs() << " outputs\n";

  // ------------------------------------------------------------- locking
  const lock::LockedCircuit locked = lock::lock_random_xor(original, 8, rng);
  std::cout << "Locked with 8 XOR/XNOR key gates; correct key = "
            << locked.correct_key.to_string() << "\n\n";

  // ----------------------------------------------------------- SAT attack
  {
    attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(original);
    const auto result = attack::sat_attack(locked, oracle);
    std::cout << "SAT attack: " << result.dip_iterations << " DIPs, "
              << result.oracle_queries << " oracle queries\n"
              << "  recovered key = " << result.key.to_string() << "\n"
              << "  functionally exact: "
              << (attack::keys_equivalent(original, locked, result.key)
                      ? "yes (SAT-proved)"
                      : "NO")
              << "\n\n";
  }

  // --------------------------------------------------------------- AppSAT
  {
    attack::CircuitOracle oracle = attack::CircuitOracle::from_netlist(original);
    support::Rng attack_rng(7);
    const auto result = attack::appsat(locked, oracle, attack_rng);
    support::Rng eval(8);
    std::cout << "AppSAT: " << result.dip_iterations << " DIPs + "
              << result.oracle_queries - result.dip_iterations
              << " random queries, "
              << (result.exact ? "terminated exactly"
                               : "settled approximately")
              << "\n  key accuracy = "
              << 100.0 * lock::key_accuracy(original, locked, result.key,
                                            4096, eval)
              << "%\n\n";
  }

  // ------------------------------------------------------ FSM obfuscation
  support::Rng fsm_rng(17);
  const circuit::MealyMachine controller =
      circuit::MealyMachine::random(12, 2, 2, fsm_rng);
  const lock::ObfuscatedFsm obf = lock::obfuscate_fsm(controller, 5, fsm_rng);
  std::cout << "Obfuscated a 12-state controller behind a 5-symbol unlock "
               "sequence.\n";

  const circuit::Dfa target = obf.functional_mode_dfa();
  ml::ExactDfaTeacher teacher(target);
  ml::LStarStats stats;
  const circuit::Dfa learned = ml::LStarLearner().learn(teacher, &stats);
  const circuit::Dfa empty(1, 2, 0);
  const auto unlock = circuit::Dfa::distinguishing_word(learned, empty);
  std::cout << "L*: " << stats.membership_queries << " membership queries, "
            << stats.equivalence_queries << " equivalence queries.\n";
  if (unlock.has_value()) {
    std::string word;
    for (auto s : *unlock) word += std::to_string(s);
    const bool works =
        obf.functional_states.contains(obf.machine.run(*unlock));
    std::cout << "Recovered unlock sequence: " << word
              << (works ? "  (verified: reaches functional mode)" : "") << "\n";
  }
  std::cout << "\nThe attacker never saw the gate-level FSM — a DFA\n"
               "hypothesis (improper representation) was enough.\n";
  return 0;
}
