// Feasibility probe: the designer-side workflow the library enables.
//
// Scenario: a team is choosing between three candidate primitives for a
// key-storage RoT. Before any formal argument, they (1) probe each
// candidate's noise sensitivity black-box, (2) check the halfspace
// representation, (3) ask the bound planner which Table I row applies to
// their declared attacker, and (4) get the audit verdict — the full
// adversary-model workflow of the paper in one program.
//
// Build & run:  ./build/examples/feasibility_probe
#include <iostream>

#include "core/adversary.hpp"
#include "core/bounds.hpp"
#include "core/feasibility.hpp"
#include "core/pitfalls.hpp"
#include "ml/halfspace_tester.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/interpose.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace pitfalls;
  using support::Rng;
  using support::Table;

  Rng rng(2026);
  const std::size_t n = 24;

  // The three candidates.
  const auto xor4 = puf::XorArbiterPuf::independent(n, 4, 0.0, rng);
  const auto xor4_view = xor4.feature_space_view();
  const puf::BistableRingPuf br(puf::BistableRingConfig::paper_instance(16),
                                rng);
  const puf::InterposePuf ipuf(n, 1, 2, 0.0, rng);

  struct Candidate {
    std::string name;
    const boolfn::BooleanFunction* fn;
  };
  const Candidate candidates[] = {
      {"4-XOR arbiter PUF", &xor4_view},
      {"BR PUF (n=16)", &br},
      {"(1,2)-interpose PUF", &ipuf},
  };

  // 1 + 2: black-box probes.
  Table table({"candidate", "effective k (NS probe)", "LMN degree cutoff",
               "halfspace tester", "tester gap [%]"});
  for (const auto& candidate : candidates) {
    Rng probe(7);
    core::LmnFeasibilityConfig config;
    config.attack_eps = 0.45;
    const auto feas =
        core::estimate_lmn_feasibility(*candidate.fn, 1000000, probe, config);
    const auto half = ml::HalfspaceTester(0.12).test(*candidate.fn, 40000,
                                                     probe);
    table.add_row({candidate.name, Table::fmt(feas.effective_k, 2),
                   Table::fmt(feas.degree_cutoff, 1),
                   half.accepted ? "close to an LTF" : "NOT an LTF",
                   Table::fmt(100.0 * half.gap, 1)});
  }
  table.print(std::cout, "Black-box probes (no structural knowledge used):");

  // 3: which bound governs the declared attacker?
  core::AdversaryModel attacker;
  attacker.distribution = core::DistributionAssumption::kUniform;
  attacker.access = core::AccessType::kMembershipQueries;
  attacker.hypothesis = core::HypothesisRestriction::kImproper;
  std::string rationale;
  const auto row = core::applicable_bound(attacker, n, 4, 0.25, 0.01,
                                          &rationale);
  std::cout << "\nDeclared attacker: " << attacker.describe() << "\n"
            << "Governing Table I row: " << row.source << " ("
            << row.algorithm << "), bound = "
            << Table::fmt_or_inf(row.value, 0) << " queries\n"
            << "Why: " << rationale << "\n";

  // 4: audit a would-be security claim for the winning candidate.
  core::SecurityClaim claim;
  claim.primitive = "4-XOR arbiter PUF";
  claim.statement = "secure because LMN needs too many uniform CRPs";
  claim.source = "design review";
  claim.model.distribution = core::DistributionAssumption::kUniform;
  claim.model.access = core::AccessType::kRandomExamples;
  claim.algorithm_specific = true;
  const auto findings = core::PitfallAuditor().audit(claim, attacker);
  std::cout << "\nAudit of the draft claim \"" << claim.statement << "\":\n";
  for (const auto& finding : findings)
    std::cout << "  [" << core::to_string(finding.severity) << "] "
              << core::to_string(finding.kind) << "\n";
  std::cout << "\nConclusion: the NS probe ranks the candidates' low-degree\n"
            << "hardness, the tester rules the LTF story in or out, and the\n"
            << "planner + auditor pin the claim to the attacker it actually\n"
            << "covers — the paper's workflow, end to end.\n";
  return 0;
}
