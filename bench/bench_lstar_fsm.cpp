// Demo V-B: Angluin's L* against HARPOON-style obfuscated FSMs.
//
// The paper's representation point: [4] reasons about learnability of
// FSMs via DFA representations and input-pattern counts; but L* delivers a
// DFA regardless of how the design is represented, and with it the unlock
// sequence. We sweep FSM size and unlock length and report query counts —
// polynomial throughout — plus the recovered unlock sequences.
#include <iostream>
#include <vector>

#include "attack/fsm_bmc.hpp"
#include "circuit/fsm.hpp"
#include "core/experiment.hpp"
#include "lock/fsm_obfuscation.hpp"
#include "ml/lstar.hpp"
#include "obs/bench_reporter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using circuit::MealyMachine;
using lock::ObfuscatedFsm;
using ml::Dfa;
using ml::Word;
using support::Rng;
using support::Table;

std::string word_to_string(const Word& word) {
  std::string out;
  for (auto symbol : word) out += std::to_string(symbol);
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("lstar_fsm", argc, argv);

  std::cout << "== L* vs HARPOON-style FSM obfuscation ==\n\n";

  const bool smoke = reporter.smoke();
  const std::vector<std::size_t> state_sweep =
      smoke ? std::vector<std::size_t>{4, 8}
            : std::vector<std::size_t>{4, 8, 16, 32};
  const std::vector<std::size_t> unlock_sweep =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 6};
  const std::vector<std::size_t> duel_states =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 32};
  const std::vector<std::size_t> duel_unlocks =
      smoke ? std::vector<std::size_t>{4} : std::vector<std::size_t>{4, 6};

  Table table({"functional states", "unlock length", "DFA states (target)",
               "MQs", "EQs", "time [s]", "unlock recovered", "sequence"});

  for (const std::size_t states : state_sweep) {
    for (const std::size_t unlock_len : unlock_sweep) {
      Rng rng(100 * states + unlock_len);
      const MealyMachine functional =
          MealyMachine::random(states, 2, 2, rng);
      const ObfuscatedFsm obf = lock::obfuscate_fsm(functional, unlock_len, rng);
      // Accept only the "authorized" half of the functional states, so the
      // learned DFA must capture the functional core's structure rather
      // than collapsing it into one accepting sink.
      std::set<std::size_t> accepting;
      for (auto s : obf.functional_states)
        if ((s - obf.num_obfuscation_states) % 2 == 0) accepting.insert(s);
      const Dfa target = obf.machine.to_acceptance_dfa(accepting);

      ml::ExactDfaTeacher teacher(target);
      ml::LStarStats stats;
      core::Stopwatch watch;
      const Dfa learned = ml::LStarLearner().learn(teacher, &stats);
      const double seconds = watch.seconds();

      // Shortest accepted word of the learned DFA = an unlock sequence.
      Dfa empty(1, target.alphabet_size(), 0);
      const auto unlock = Dfa::distinguishing_word(learned, empty);
      const bool recovered =
          unlock.has_value() &&
          obf.functional_states.contains(obf.machine.run(*unlock));

      table.add_row({std::to_string(states), std::to_string(unlock_len),
                     std::to_string(target.minimized().num_states()),
                     std::to_string(stats.membership_queries),
                     std::to_string(stats.equivalence_queries),
                     Table::fmt(seconds, 3), recovered ? "yes" : "NO",
                     unlock.has_value() ? word_to_string(*unlock) : "-"});
    }
  }
  reporter.print(std::cout, table);

  std::cout
      << "\nReading guide: the obfuscated FSM's functional-mode language is\n"
      << "regular; L* needs polynomially many membership queries in the\n"
      << "minimal-DFA size, irrespective of the gate-level representation.\n"
      << "Impossibility arguments quantifying over 'input patterns to the\n"
      << "FSM' miss this improper-representation attacker (Section V-B).\n\n";

  // Second axis: what the attacker HOLDS. The white-box structural
  // attacker (a foundry with the netlist) needs zero device queries — BMC
  // on the unrolled transition relation finds the unlock word directly.
  Table duel({"functional states", "unlock length", "L* MQs",
              "BMC queries", "BMC solver conflicts", "both recover?"});
  for (const std::size_t states : duel_states) {
    for (const std::size_t unlock_len : duel_unlocks) {
      Rng rng(500 * states + unlock_len);
      const MealyMachine functional =
          MealyMachine::random(states, 2, 2, rng);
      const ObfuscatedFsm obf =
          lock::obfuscate_fsm(functional, unlock_len, rng);

      const Dfa duel_target = obf.functional_mode_dfa();
      ml::ExactDfaTeacher teacher(duel_target);
      ml::LStarStats stats;
      (void)ml::LStarLearner().learn(teacher, &stats);

      const auto bmc =
          attack::bmc_reach(obf.machine, obf.functional_states,
                            unlock_len + 2);
      const bool both =
          bmc.found &&
          obf.functional_states.contains(obf.machine.run(bmc.word)) &&
          bmc.word.size() == obf.unlock_sequence.size();
      duel.add_row({std::to_string(states), std::to_string(unlock_len),
                    std::to_string(stats.membership_queries), "0",
                    std::to_string(bmc.conflicts), both ? "yes" : "NO"});
    }
  }
  reporter.print(std::cout, duel,
                 "-- black-box query attacker (L*) vs white-box structural "
                 "attacker (BMC on the synthesized netlist) --");
  std::cout
      << "\nBoth recover the unlock sequence; they differ in WHAT the\n"
      << "adversary model grants — queries vs structure. A security claim\n"
      << "must state both axes to be meaningful.\n";
  return reporter.finish();
}
