// Demo V-B: Angluin's L* against HARPOON-style obfuscated FSMs.
//
// The paper's representation point: [4] reasons about learnability of
// FSMs via DFA representations and input-pattern counts; but L* delivers a
// DFA regardless of how the design is represented, and with it the unlock
// sequence. We sweep FSM size and unlock length and report query counts —
// polynomial throughout — plus the recovered unlock sequences.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "attack/fsm_bmc.hpp"
#include "circuit/fsm.hpp"
#include "lock/fsm_obfuscation.hpp"
#include "ml/lstar.hpp"
#include "obs/bench_reporter.hpp"
#include "store/checkpoint.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using circuit::MealyMachine;
using lock::ObfuscatedFsm;
using circuit::Dfa;
using circuit::Word;
using support::Rng;
using support::Table;

std::string word_to_string(const Word& word) {
  std::string out;
  for (auto symbol : word) out += std::to_string(symbol);
  return out.empty() ? "(empty)" : out;
}

/// Outcome of one (states, unlock_len) sweep cell. Learn time lives in the
/// ml.lstar.learn_seconds metric (timed inside the learner), not the table:
/// metric planes are run-dependent, table text must be resume-identical.
struct SweepCell {
  std::uint64_t dfa_states = 0;
  std::uint64_t mqs = 0;
  std::uint64_t eqs = 0;
  std::uint8_t recovered = 0;
  std::string sequence;
};

void put_sweep_cell(support::snapshot::SectionWriter& w, const SweepCell& c) {
  w.u64(c.dfa_states);
  w.u64(c.mqs);
  w.u64(c.eqs);
  w.u8(c.recovered);
  w.str(c.sequence);
}

SweepCell get_sweep_cell(support::snapshot::SectionReader& r) {
  SweepCell c;
  c.dfa_states = r.u64();
  c.mqs = r.u64();
  c.eqs = r.u64();
  c.recovered = r.u8();
  c.sequence = r.str();
  return c;
}

/// Outcome of one (states, unlock_len) duel cell (L* vs BMC).
struct DuelCell {
  std::uint64_t mqs = 0;
  std::uint64_t conflicts = 0;
  std::uint8_t both = 0;
};

void put_duel_cell(support::snapshot::SectionWriter& w, const DuelCell& c) {
  w.u64(c.mqs);
  w.u64(c.conflicts);
  w.u8(c.both);
}

DuelCell get_duel_cell(support::snapshot::SectionReader& r) {
  DuelCell c;
  c.mqs = r.u64();
  c.conflicts = r.u64();
  c.both = r.u8();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("lstar_fsm", argc, argv);

  // Crash-safe sweeps (--checkpoint/--resume): one cell per table row;
  // finished cells replay their stored outcome instead of re-learning, and
  // the table text comes out byte-identical either way.
  std::unique_ptr<store::CheckpointSession> session;
  if (reporter.checkpoint_enabled()) {
    store::install_termination_handler();
    try {
      session = std::make_unique<store::CheckpointSession>(
          reporter.checkpoint_path(), 17,
          std::string("lstar_fsm.v1.smoke=") + (reporter.smoke() ? "1" : "0"),
          reporter.resume());
    } catch (const support::snapshot::SnapshotError& error) {
      std::cerr << "bench_lstar_fsm: unusable checkpoint path "
                << reporter.checkpoint_path() << ": " << error.what() << "\n";
      return 1;
    }
  }
  const auto after_cell = [&session] {
    store::note_cell_completed(session.get());
    if (session != nullptr && store::termination_requested()) {
      std::cerr << "bench_lstar_fsm: termination requested; checkpoint "
                   "flushed, resume with --resume\n";
      std::exit(143);
    }
  };

  std::cout << "== L* vs HARPOON-style FSM obfuscation ==\n\n";

  const bool smoke = reporter.smoke();
  const std::vector<std::size_t> state_sweep =
      smoke ? std::vector<std::size_t>{4, 8}
            : std::vector<std::size_t>{4, 8, 16, 32};
  const std::vector<std::size_t> unlock_sweep =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 6};
  const std::vector<std::size_t> duel_states =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 32};
  const std::vector<std::size_t> duel_unlocks =
      smoke ? std::vector<std::size_t>{4} : std::vector<std::size_t>{4, 6};

  Table table({"functional states", "unlock length", "DFA states (target)",
               "MQs", "EQs", "unlock recovered", "sequence"});

  for (const std::size_t states : state_sweep) {
    for (const std::size_t unlock_len : unlock_sweep) {
      const SweepCell cell = store::checkpointed_unit<SweepCell>(
          session.get(),
          "sweep." + std::to_string(states) + "." + std::to_string(unlock_len),
          [&] {
            Rng rng(100 * states + unlock_len);
            const MealyMachine functional =
                MealyMachine::random(states, 2, 2, rng);
            const ObfuscatedFsm obf =
                lock::obfuscate_fsm(functional, unlock_len, rng);
            // Accept only the "authorized" half of the functional states,
            // so the learned DFA must capture the functional core's
            // structure rather than collapsing it into one accepting sink.
            std::set<std::size_t> accepting;
            for (auto s : obf.functional_states)
              if ((s - obf.num_obfuscation_states) % 2 == 0)
                accepting.insert(s);
            const Dfa target = obf.machine.to_acceptance_dfa(accepting);

            ml::ExactDfaTeacher teacher(target);
            ml::LStarStats stats;
            const Dfa learned = ml::LStarLearner().learn(teacher, &stats);

            // Shortest accepted word of the learned DFA = an unlock
            // sequence.
            Dfa empty(1, target.alphabet_size(), 0);
            const auto unlock = Dfa::distinguishing_word(learned, empty);
            const bool recovered =
                unlock.has_value() &&
                obf.functional_states.contains(obf.machine.run(*unlock));

            SweepCell out;
            out.dfa_states = target.minimized().num_states();
            out.mqs = stats.membership_queries;
            out.eqs = stats.equivalence_queries;
            out.recovered = recovered ? 1 : 0;
            out.sequence =
                unlock.has_value() ? word_to_string(*unlock) : "-";
            return out;
          },
          put_sweep_cell, get_sweep_cell);
      after_cell();

      table.add_row({std::to_string(states), std::to_string(unlock_len),
                     std::to_string(cell.dfa_states),
                     std::to_string(cell.mqs), std::to_string(cell.eqs),
                     cell.recovered != 0 ? "yes" : "NO", cell.sequence});
    }
  }
  reporter.print(std::cout, table);

  std::cout
      << "\nReading guide: the obfuscated FSM's functional-mode language is\n"
      << "regular; L* needs polynomially many membership queries in the\n"
      << "minimal-DFA size, irrespective of the gate-level representation.\n"
      << "Impossibility arguments quantifying over 'input patterns to the\n"
      << "FSM' miss this improper-representation attacker (Section V-B).\n\n";

  // Second axis: what the attacker HOLDS. The white-box structural
  // attacker (a foundry with the netlist) needs zero device queries — BMC
  // on the unrolled transition relation finds the unlock word directly.
  Table duel({"functional states", "unlock length", "L* MQs",
              "BMC queries", "BMC solver conflicts", "both recover?"});
  for (const std::size_t states : duel_states) {
    for (const std::size_t unlock_len : duel_unlocks) {
      const DuelCell cell = store::checkpointed_unit<DuelCell>(
          session.get(),
          "duel." + std::to_string(states) + "." + std::to_string(unlock_len),
          [&] {
            Rng rng(500 * states + unlock_len);
            const MealyMachine functional =
                MealyMachine::random(states, 2, 2, rng);
            const ObfuscatedFsm obf =
                lock::obfuscate_fsm(functional, unlock_len, rng);

            const Dfa duel_target = obf.functional_mode_dfa();
            ml::ExactDfaTeacher teacher(duel_target);
            ml::LStarStats stats;
            (void)ml::LStarLearner().learn(teacher, &stats);

            const auto bmc = attack::bmc_reach(
                obf.machine, obf.functional_states, unlock_len + 2);
            const bool both =
                bmc.found &&
                obf.functional_states.contains(obf.machine.run(bmc.word)) &&
                bmc.word.size() == obf.unlock_sequence.size();

            DuelCell out;
            out.mqs = stats.membership_queries;
            out.conflicts = bmc.conflicts;
            out.both = both ? 1 : 0;
            return out;
          },
          put_duel_cell, get_duel_cell);
      after_cell();
      duel.add_row({std::to_string(states), std::to_string(unlock_len),
                    std::to_string(cell.mqs), "0",
                    std::to_string(cell.conflicts),
                    cell.both != 0 ? "yes" : "NO"});
    }
  }
  reporter.print(std::cout, duel,
                 "-- black-box query attacker (L*) vs white-box structural "
                 "attacker (BMC on the synthesized netlist) --");
  std::cout
      << "\nBoth recover the unlock sequence; they differ in WHAT the\n"
      << "adversary model grants — queries vs structure. A security claim\n"
      << "must state both axes to be meaningful.\n";
  return reporter.finish();
}
