// The Corollary 1 pipeline as a designer's tool: probe a black-box
// primitive's noise sensitivity, derive the implied LMN degree cutoff and
// sample bound, and judge feasibility at a CRP budget — for a zoo of
// primitives of graded hardness.
#include <cmath>
#include <iostream>

#include "core/feasibility.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pitfalls;
  using support::BitVec;
  using support::Rng;
  using support::Table;

  obs::BenchReporter reporter("feasibility", argc, argv);

  std::cout << "== Black-box LMN feasibility estimates (Corollary 1 as a "
               "measurement) ==\n"
            << "(budget 10^6 uniform CRPs, attack eps = 0.45)\n\n";

  const bool smoke = reporter.smoke();

  Rng instance_rng(1);
  const std::size_t n = 24;

  struct Probe {
    std::string name;
    const boolfn::BooleanFunction* fn;
  };

  const auto x1 = puf::XorArbiterPuf::independent(n, 1, 0.0, instance_rng);
  const auto x2 = puf::XorArbiterPuf::independent(n, 2, 0.0, instance_rng);
  const auto x4 = puf::XorArbiterPuf::independent(n, 4, 0.0, instance_rng);
  const auto x8c = puf::XorArbiterPuf::correlated(n, 8, 0.95, 0.0, instance_rng);
  const auto v1 = x1.feature_space_view();
  const auto v2 = x2.feature_space_view();
  const auto v4 = x4.feature_space_view();
  const auto v8c = x8c.feature_space_view();
  const puf::BistableRingPuf br(puf::BistableRingConfig::paper_instance(16),
                                instance_rng);
  const boolfn::FunctionView parity(
      n, [](const BitVec& x) { return x.parity() ? -1 : +1; }, "parity");

  const Probe probes[] = {
      {"arbiter chain (k=1)", &v1},
      {"2-XOR arbiter", &v2},
      {"4-XOR arbiter", &v4},
      {"8-XOR correlated (rho=0.95)", &v8c},
      {"BR PUF (n=16)", &br},
      {"parity (worst case)", &parity},
  };

  Table table({"primitive", "NS @0.05", "effective k", "degree cutoff m",
               "LMN sample bound", "feasible @1e6?"});
  for (const auto& probe : probes) {
    Rng rng(7);
    // Corollary 1's constants are brutal at tight eps; probe at the loose
    // end (eps = 0.45, i.e. "noticeably better than guessing") where the
    // feasibility frontier actually separates the primitives.
    core::LmnFeasibilityConfig config;
    config.attack_eps = 0.45;
    if (smoke) config.samples_per_probe = 1000;
    const auto report =
        core::estimate_lmn_feasibility(*probe.fn, 1000000, rng, config);
    double ns05 = 0.0;
    for (const auto& [eps, ns] : report.noise_sensitivity)
      if (std::abs(eps - 0.05) < 1e-9) ns05 = ns;
    table.add_row({probe.name, Table::fmt(ns05, 3),
                   Table::fmt(report.effective_k, 2),
                   Table::fmt(report.degree_cutoff, 1),
                   Table::fmt_or_inf(report.sample_bound, 0),
                   report.feasible_at_budget ? "yes" : "no"});
    reporter.note("effective_k(" + probe.name + ")", report.effective_k);
    reporter.note("feasible(" + probe.name + ")",
                  report.feasible_at_budget ? 1.0 : 0.0);
  }
  reporter.print(std::cout, table);
  reporter.note("attack_eps", 0.45);
  reporter.note("budget", 1000000.0);

  std::cout
      << "\nReading guide: effective k (the KOS constant NS/sqrt(eps))\n"
      << "orders the primitives exactly as Corollary 1 predicts — low for\n"
      << "single chains and correlated XORs (attackable), growing with\n"
      << "independent chains, unbounded for parity. A designer can run\n"
      << "this probe against ANY black-box primitive before trusting an\n"
      << "LTF/low-degree hardness argument.\n";
  return reporter.finish();
}
