// Microbenchmarks (google-benchmark) for the computational kernels that
// dominate the table reproductions: the fast Walsh–Hadamard transform, PUF
// evaluation, CDCL solving, netlist simulation, Perceptron epochs and
// Fourier-coefficient estimation. Useful when scaling the experiments up
// (larger n, more CRPs) to know what each knob costs.
#include <benchmark/benchmark.h>

#include "boolfn/fourier.hpp"
#include "boolfn/truth_table.hpp"
#include "circuit/generator.hpp"
#include "ml/features.hpp"
#include "ml/perceptron.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"
#include "support/combinatorics.hpp"
#include "support/rng.hpp"

namespace {

using namespace pitfalls;
using support::BitVec;
using support::Rng;

void BM_WalshHadamard(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  boolfn::TruthTable table(n);
  for (std::uint64_t row = 0; row < table.num_rows(); ++row)
    table.set(row, rng.coin() ? 1 : -1);
  for (auto _ : state) {
    auto spectrum = boolfn::FourierSpectrum::of(table);
    benchmark::DoNotOptimize(spectrum.coefficient(0));
  }
  state.SetComplexityN(static_cast<std::int64_t>(table.num_rows()));
}
BENCHMARK(BM_WalshHadamard)->DenseRange(10, 20, 2)->Complexity();

void BM_XorArbiterEval(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const puf::XorArbiterPuf puf = puf::XorArbiterPuf::independent(64, k, 0.0, rng);
  BitVec c(64);
  for (std::size_t i = 0; i < 64; ++i) c.set(i, rng.coin());
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf.eval_pm(c));
    c.flip(static_cast<std::size_t>(state.iterations() % 64));
  }
}
BENCHMARK(BM_XorArbiterEval)->Arg(1)->Arg(4)->Arg(8);

void BM_BistableRingEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const puf::BistableRingPuf puf(puf::BistableRingConfig::paper_instance(n),
                                 rng);
  BitVec c(n);
  for (std::size_t i = 0; i < n; ++i) c.set(i, rng.coin());
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf.eval_pm(c));
    c.flip(static_cast<std::size_t>(state.iterations() % n));
  }
}
BENCHMARK(BM_BistableRingEval)->Arg(16)->Arg(32)->Arg(64);

void BM_NetlistEvaluate(benchmark::State& state) {
  const auto gates = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  circuit::RandomCircuitConfig config;
  config.inputs = 16;
  config.gates = gates;
  config.outputs = 4;
  const circuit::Netlist netlist = circuit::random_circuit(config, rng);
  BitVec in(16, 0xabcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist.evaluate(in));
    in.flip(static_cast<std::size_t>(state.iterations() % 16));
  }
}
BENCHMARK(BM_NetlistEvaluate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CdclRandom3Sat(benchmark::State& state) {
  const auto vars = static_cast<std::size_t>(state.range(0));
  const std::size_t clauses = vars * 4;  // near the threshold
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(5 + state.iterations());
    sat::Solver solver;
    std::vector<sat::Var> v(vars);
    for (auto& var : v) var = solver.new_var();
    for (std::size_t c = 0; c < clauses; ++c) {
      std::vector<sat::Lit> lits;
      for (int l = 0; l < 3; ++l)
        lits.push_back(sat::Lit(v[rng.uniform_below(vars)], rng.coin()));
      solver.add_clause(lits);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_CdclRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

void BM_TseitinEncode(benchmark::State& state) {
  const auto gates = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  circuit::RandomCircuitConfig config;
  config.inputs = 16;
  config.gates = gates;
  config.outputs = 4;
  const circuit::Netlist netlist = circuit::random_circuit(config, rng);
  for (auto _ : state) {
    sat::Solver solver;
    const auto enc = sat::encode_netlist(solver, netlist);
    benchmark::DoNotOptimize(enc.output_vars.size());
  }
}
BENCHMARK(BM_TseitinEncode)->Arg(100)->Arg(1000);

void BM_PerceptronEpoch(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const puf::ArbiterPuf puf(64, 0.0, rng);
  const puf::CrpSet crps = puf::CrpSet::collect_uniform(puf, samples, rng);
  std::vector<std::vector<double>> X;
  X.reserve(samples);
  for (const auto& c : crps.challenges())
    X.push_back(ml::parity_with_bias(c));
  ml::PerceptronConfig config;
  config.max_epochs = 1;
  config.shuffle_each_epoch = false;
  const ml::Perceptron learner(config);
  for (auto _ : state) {
    Rng train_rng(8);
    benchmark::DoNotOptimize(learner.fit(X, crps.responses(), train_rng));
  }
}
BENCHMARK(BM_PerceptronEpoch)->Arg(1000)->Arg(10000);

void BM_FourierEstimateFromData(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  const puf::XorArbiterPuf puf = puf::XorArbiterPuf::independent(16, 2, 0.0, rng);
  const puf::CrpSet crps = puf::CrpSet::collect_uniform(puf, samples, rng);
  std::vector<BitVec> subsets;
  for (const auto& s : support::subsets_up_to_size(16, 2))
    subsets.push_back(support::subset_mask(16, s));
  for (auto _ : state) {
    benchmark::DoNotOptimize(boolfn::estimate_coefficients_from_data(
        crps.challenges(), crps.responses(), subsets));
  }
}
BENCHMARK(BM_FourierEstimateFromData)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
