// Microbenchmarks for the computational kernels that dominate the table
// reproductions, reported through the shared BenchReporter harness
// (--smoke/--json) like every other bench so kernel timings land in
// schema-v1 BENCH_micro_kernels.json and can be diffed across PRs with
// scripts/compare_bench.py.
//
// Each row times the *seed* implementation (the pre-parallel-layer loop,
// kept here as the baseline) against the optimized kernel shipped in the
// library — radix-4 + pooled WHT, the bit-sliced parity-cache coefficient
// estimator, the rho^d-table noise sensitivity, chunk-parallel CRP
// collection and the fanned-out accuracy pass — and reports wall-clock for
// both plus the speedup. Where the optimization is contractually
// bit-identical (WHT, estimation, noise sensitivity) the bench also
// verifies the outputs match before trusting the timing.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <vector>

#include "boolfn/fourier.hpp"
#include "boolfn/truth_table.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/arbiter.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/combinatorics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using support::BitVec;
using support::Rng;
using support::Table;

// Kernel timing harness: the measured seconds are the bench's OUTPUT (a
// speedup table), never an input to any computation, so the wall-clock
// reads are annotated as audited exceptions.
template <typename Fn>
double best_seconds(std::size_t reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();  // lint:wallclock-ok
    fn();
    const double elapsed =
        std::chrono::duration<double>(  // lint:wallclock-ok
            std::chrono::steady_clock::now() - start)
            .count();
    best = std::min(best, elapsed);
  }
  return best;
}

// ---- seed implementations, kept verbatim as baselines ----

std::vector<double> legacy_wht(const boolfn::TruthTable& table) {
  const std::uint64_t rows = table.num_rows();
  std::vector<double> data(rows);
  for (std::uint64_t row = 0; row < rows; ++row)
    data[row] = static_cast<double>(table.at(row));
  for (std::uint64_t len = 1; len < rows; len <<= 1)
    for (std::uint64_t block = 0; block < rows; block += len << 1)
      for (std::uint64_t i = block; i < block + len; ++i) {
        const double a = data[i];
        const double b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
  const double scale = 1.0 / static_cast<double>(rows);
  for (auto& value : data) value *= scale;
  return data;
}

std::vector<double> legacy_estimate_from_data(
    const std::vector<BitVec>& challenges, const std::vector<int>& responses,
    const std::vector<BitVec>& subsets) {
  std::vector<double> out(subsets.size(), 0.0);
  for (std::size_t s = 0; s < subsets.size(); ++s) {
    double sum = 0.0;
    for (std::size_t i = 0; i < challenges.size(); ++i) {
      const int chi = challenges[i].masked_parity(subsets[s]) ? -1 : +1;
      sum += static_cast<double>(responses[i] * chi);
    }
    out[s] = sum / static_cast<double>(challenges.size());
  }
  return out;
}

double legacy_noise_sensitivity(const std::vector<double>& coeffs,
                                double eps) {
  const double rho = 1.0 - 2.0 * eps;
  double stability = 0.0;
  for (std::uint64_t mask = 0; mask < coeffs.size(); ++mask) {
    const int degree = std::popcount(mask);
    stability += std::pow(rho, degree) * coeffs[mask] * coeffs[mask];
  }
  return 0.5 - 0.5 * stability;
}

puf::CrpSet legacy_collect_uniform(const puf::Puf& puf, std::size_t m,
                                   Rng& rng) {
  puf::CrpSet set;
  for (std::size_t i = 0; i < m; ++i) {
    BitVec c(puf.num_vars());
    for (std::size_t b = 0; b < c.size(); ++b) c.set(b, rng.coin());
    const int r = puf.eval_pm(c);
    set.add(std::move(c), r);
  }
  return set;
}

double legacy_accuracy(const puf::CrpSet& set,
                       const boolfn::BooleanFunction& f) {
  std::size_t agree = 0;
  for (std::size_t i = 0; i < set.size(); ++i)
    if (f.eval_pm(set.challenge(i)) == set.response(i)) ++agree;
  return static_cast<double>(agree) / static_cast<double>(set.size());
}

struct KernelRow {
  std::string kernel;
  std::string param;
  double baseline_seconds;
  double optimized_seconds;
  bool verified;  // outputs compared and equal (or no comparison applies)
};

void add_row(Table& table, obs::BenchReporter& reporter, const KernelRow& row) {
  const double speedup = row.optimized_seconds > 0.0
                             ? row.baseline_seconds / row.optimized_seconds
                             : 0.0;
  table.add_row({row.kernel, row.param, Table::fmt(1e3 * row.baseline_seconds, 3),
                 Table::fmt(1e3 * row.optimized_seconds, 3),
                 Table::fmt(speedup, 2), row.verified ? "yes" : "NO"});
  reporter.note(row.kernel + "(" + row.param + ").speedup", speedup);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("micro_kernels", argc, argv);
  const bool smoke = reporter.smoke();
  const std::size_t reps = smoke ? 2 : 5;

  std::cout << "== Micro-kernels: seed baseline vs optimized/parallel ==\n\n";

  Table table({"kernel", "param", "baseline [ms]", "optimized [ms]", "speedup",
               "outputs match"});

  // WHT: radix-4 fused butterflies + pooled sweeps vs the seed's radix-2
  // stage-by-stage kernel. Bit-identical by construction.
  const std::vector<std::size_t> wht_ns =
      smoke ? std::vector<std::size_t>{12} : std::vector<std::size_t>{16, 18, 20};
  for (const std::size_t n : wht_ns) {
    Rng rng(1);
    boolfn::TruthTable tt(n);
    for (std::uint64_t row = 0; row < tt.num_rows(); ++row)
      tt.set(row, rng.coin() ? 1 : -1);
    std::vector<double> legacy;
    const double base =
        best_seconds(reps, [&] { legacy = legacy_wht(tt); });
    std::vector<double> optimized;
    const double opt = best_seconds(reps, [&] {
      optimized = boolfn::FourierSpectrum::of(tt).coefficients();
    });
    add_row(table, reporter,
            {"wht", "n=" + std::to_string(n), base, opt, legacy == optimized});
  }

  // Coefficient estimation from a fixed CRP set: bit-sliced parity cache +
  // parallel subsets vs the seed's per-(subset, sample) masked_parity loop.
  {
    const std::size_t n = smoke ? 12 : 20;
    const std::size_t m = smoke ? 2000 : 20000;
    Rng rng(9);
    const puf::XorArbiterPuf puf =
        puf::XorArbiterPuf::independent(n, 2, 0.0, rng);
    const puf::CrpSet crps = puf::CrpSet::collect_uniform(puf, m, rng);
    std::vector<BitVec> subsets;
    for (const auto& s : support::subsets_up_to_size(n, 2))
      subsets.push_back(support::subset_mask(n, s));
    std::vector<double> legacy;
    const double base = best_seconds(reps, [&] {
      legacy = legacy_estimate_from_data(crps.challenges(), crps.responses(),
                                         subsets);
    });
    std::vector<double> optimized;
    const double opt = best_seconds(reps, [&] {
      optimized = boolfn::estimate_coefficients_from_data(
          crps.challenges(), crps.responses(), subsets);
    });
    add_row(table, reporter,
            {"estimate_coeffs",
             "n=" + std::to_string(n) + ",m=" + std::to_string(m) + ",|S|=" +
                 std::to_string(subsets.size()),
             base, opt, legacy == optimized});
  }

  // Exact noise sensitivity: rho^d lookup table vs std::pow per mask.
  {
    const std::size_t n = smoke ? 10 : 16;
    Rng rng(11);
    boolfn::TruthTable tt(n);
    for (std::uint64_t row = 0; row < tt.num_rows(); ++row)
      tt.set(row, rng.coin() ? 1 : -1);
    const auto spectrum = boolfn::FourierSpectrum::of(tt);
    double legacy = 0.0;
    const double base = best_seconds(reps, [&] {
      legacy = legacy_noise_sensitivity(spectrum.coefficients(), 0.05);
    });
    double optimized = 0.0;
    const double opt =
        best_seconds(reps, [&] { optimized = spectrum.noise_sensitivity(0.05); });
    add_row(table, reporter,
            {"noise_sensitivity", "n=" + std::to_string(n), base, opt,
             legacy == optimized});
  }

  // CRP collection: chunk-parallel deterministic streams vs the seed's
  // single-stream loop. Streams differ by design, so no output comparison —
  // the byte-identity across thread counts is asserted in
  // tests/parallel_test.cpp instead.
  {
    const std::size_t m = smoke ? 5000 : 100000;
    Rng rng(2);
    const puf::XorArbiterPuf puf =
        puf::XorArbiterPuf::independent(64, 4, 0.0, rng);
    const double base = best_seconds(reps, [&] {
      Rng collect(3);
      const auto set = legacy_collect_uniform(puf, m, collect);
      if (set.size() != m) std::abort();
    });
    const double opt = best_seconds(reps, [&] {
      Rng collect(3);
      const auto set = puf::CrpSet::collect_uniform(puf, m, collect);
      if (set.size() != m) std::abort();
    });
    add_row(table, reporter,
            {"collect_uniform", "n=64,k=4,m=" + std::to_string(m), base, opt,
             true});
  }

  // Batched PUF evaluation: the bit-sliced eval_pm_batch kernel vs the
  // per-element scalar loop, single batch (no parallel layer) so the row
  // isolates the batch plane itself. Contractually bit-identical.
  {
    const std::size_t m = smoke ? 5000 : 100000;
    Rng rng(6);
    const puf::ArbiterPuf puf(64, 0.0, rng);
    Rng gen(7);
    std::vector<BitVec> challenges;
    challenges.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      BitVec c(64);
      for (std::size_t b = 0; b < c.size(); ++b) c.set(b, gen.coin());
      challenges.push_back(std::move(c));
    }
    std::vector<int> scalar(m), batch(m);
    const double base = best_seconds(reps, [&] {
      for (std::size_t i = 0; i < m; ++i) scalar[i] = puf.eval_pm(challenges[i]);
    });
    const double opt =
        best_seconds(reps, [&] { puf.eval_pm_batch(challenges, batch); });
    add_row(table, reporter,
            {"arbiter_batch", "n=64,m=" + std::to_string(m), base, opt,
             scalar == batch});
  }
  {
    const std::size_t m = smoke ? 5000 : 100000;
    Rng rng(8);
    const puf::XorArbiterPuf puf =
        puf::XorArbiterPuf::independent(64, 4, 0.0, rng);
    Rng gen(10);
    std::vector<BitVec> challenges;
    challenges.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      BitVec c(64);
      for (std::size_t b = 0; b < c.size(); ++b) c.set(b, gen.coin());
      challenges.push_back(std::move(c));
    }
    std::vector<int> scalar(m), batch(m);
    const double base = best_seconds(reps, [&] {
      for (std::size_t i = 0; i < m; ++i) scalar[i] = puf.eval_pm(challenges[i]);
    });
    const double opt =
        best_seconds(reps, [&] { puf.eval_pm_batch(challenges, batch); });
    add_row(table, reporter,
            {"xor_batch", "n=64,k=4,m=" + std::to_string(m), base, opt,
             scalar == batch});
  }

  // Held-out accuracy pass (the core::evaluate test phase).
  {
    const std::size_t m = smoke ? 5000 : 100000;
    Rng rng(4);
    const puf::ArbiterPuf puf(64, 0.0, rng);
    const puf::CrpSet set = puf::CrpSet::collect_uniform(puf, m, rng);
    double legacy = 0.0;
    const double base =
        best_seconds(reps, [&] { legacy = legacy_accuracy(set, puf); });
    double optimized = 0.0;
    const double opt =
        best_seconds(reps, [&] { optimized = set.accuracy_of(puf); });
    add_row(table, reporter,
            {"accuracy", "n=64,m=" + std::to_string(m), base, opt,
             legacy == optimized});
  }

  reporter.print(std::cout, table);
  reporter.note("threads", static_cast<double>(support::pool_thread_count()));

  std::cout << "\nBaselines are the seed (pre-parallel-layer) loops; the\n"
               "optimized kernels are what the library now ships. WHT,\n"
               "estimation and noise sensitivity are bit-identical to their\n"
               "baselines ('outputs match'); collection intentionally uses\n"
               "different (chunk-seeded) random streams.\n";
  return reporter.finish();
}
