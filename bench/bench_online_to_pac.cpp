// Demo V-A: online-ML and the representation-size/mistake-budget bridge.
//
// The paper notes that AppSAT's analysis lives in the online (mistake-
// bound) model, where "the impact of the size of the concept
// representation is reflected by the number of mistakes the algorithm is
// allowed to make," and that online learners convert to PAC learners. This
// bench makes all three legs measurable:
//
//   1. Halving over hypothesis classes of growing size: mistakes track
//      log2 |H| (representation size -> mistake budget).
//   2. Winnow on r-literal disjunctions over n variables: mistakes scale
//      with r log n, not with n (attribute-efficient online learning).
//   3. online_to_pac: the PAC example budget of the converted learner
//      grows with the assumed mistake bound (mistake budget -> sample
//      complexity).
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "boolfn/boolean_function.hpp"
#include "ml/online.hpp"
#include "obs/bench_reporter.hpp"
#include "support/combinatorics.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using boolfn::FunctionView;
using ml::HalvingLearner;
using ml::Winnow;
using support::BitVec;
using support::Rng;
using support::Table;

FunctionView disjunction(std::size_t n, std::vector<std::size_t> vars) {
  return FunctionView(
      n,
      [vars = std::move(vars)](const BitVec& x) {
        for (auto v : vars)
          if (x.get(v)) return -1;
        return +1;
      },
      "disjunction");
}

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("online_to_pac", argc, argv);

  std::cout << "== Online ML: representation size <-> mistake budget <-> "
               "PAC samples ==\n\n";

  const bool smoke = reporter.smoke();
  const std::vector<std::size_t> halving_widths =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 3};
  const int halving_rounds = smoke ? 500 : 3000;
  const std::vector<std::size_t> winnow_ns =
      smoke ? std::vector<std::size_t>{32, 128}
            : std::vector<std::size_t>{32, 128, 512};
  const std::vector<std::size_t> winnow_rs =
      smoke ? std::vector<std::size_t>{1, 3} : std::vector<std::size_t>{1, 3, 5};
  const int winnow_rounds = smoke ? 1000 : 4000;
  const std::vector<std::size_t> mistake_bounds =
      smoke ? std::vector<std::size_t>{8, 128}
            : std::vector<std::size_t>{8, 128, 4096, 1u << 16};

  // ------------------------------------------------------------- Halving
  {
    Table table({"|H| (conjunction class size)", "log2 |H|",
                 "halving mistakes"});
    const std::size_t n = 12;
    Rng rng(1);
    for (const std::size_t width : halving_widths) {
      // Class: all conjunctions of exactly `width` positive literals.
      std::vector<std::shared_ptr<const boolfn::BooleanFunction>> hs;
      const auto combos = support::subsets_of_size(n, width);
      for (const auto& combo : combos) {
        hs.push_back(std::make_shared<FunctionView>(
            n,
            [combo](const BitVec& x) {
              for (auto v : combo)
                if (!x.get(v)) return +1;
              return -1;
            },
            "conj"));
      }
      const std::size_t class_size = hs.size();
      HalvingLearner learner(std::move(hs));
      // Target: the lexicographically first conjunction in the class.
      const auto& target_vars = combos.front();
      const FunctionView target(
          n,
          [target_vars](const BitVec& x) {
            for (auto v : target_vars)
              if (!x.get(v)) return +1;
            return -1;
          },
          "target");
      for (int t = 0; t < halving_rounds; ++t) {
        BitVec x(n);
        for (std::size_t b = 0; b < n; ++b) x.set(b, rng.bernoulli(0.7));
        learner.observe(x, target.eval_pm(x));
      }
      table.add_row({std::to_string(class_size),
                     Table::fmt(std::log2(static_cast<double>(class_size)), 1),
                     std::to_string(learner.mistakes())});
    }
    reporter.print(std::cout, table,
                   "-- 1: halving mistakes track log2 of the representation "
                   "class size --");
    std::cout << "\n";
  }

  // -------------------------------------------------------------- Winnow
  {
    Table table({"n", "relevant literals r", "winnow mistakes",
                 "r * log2(n)"});
    for (const std::size_t n : winnow_ns) {
      for (const std::size_t r : winnow_rs) {
        std::vector<std::size_t> vars;
        for (std::size_t i = 0; i < r; ++i) vars.push_back(i * (n / r));
        const auto target = disjunction(n, vars);
        Winnow learner(n);
        Rng rng(10 * n + r);
        for (int t = 0; t < winnow_rounds; ++t) {
          BitVec x(n);
          for (std::size_t b = 0; b < n; ++b) x.set(b, rng.bernoulli(0.08));
          learner.observe(x, target.eval_pm(x));
        }
        table.add_row({std::to_string(n), std::to_string(r),
                       std::to_string(learner.mistakes()),
                       Table::fmt(static_cast<double>(r) * std::log2(static_cast<double>(n)), 1)});
      }
    }
    reporter.print(std::cout, table,
                   "-- 2: Winnow mistakes scale with r log n, not n --");
    std::cout << "\n";
  }

  // ------------------------------------------------------- online -> PAC
  {
    Table table({"assumed mistake bound M", "PAC examples used",
                 "converged"});
    const std::size_t n = 24;
    const auto target = disjunction(n, {3, 11});
    for (const std::size_t mistake_bound : mistake_bounds) {
      Winnow learner(n);
      Rng rng(77);
      const auto result =
          ml::online_to_pac(learner, target, mistake_bound, 0.05, 0.05, rng);
      table.add_row({std::to_string(mistake_bound),
                     std::to_string(result.examples_used),
                     result.converged ? "yes" : "no"});
    }
    reporter.print(std::cout, table,
                   "-- 3: the PAC sample budget of the converted learner "
                   "grows with M --");
  }

  std::cout
      << "\nReading guide: chaining the three tables gives Section V-A's\n"
      << "argument: a bigger concept representation -> larger mistake\n"
      << "budget (tables 1-2) -> more PAC examples after conversion\n"
      << "(table 3). Claims that ignore the representation size silently\n"
      << "assume a small mistake budget — AppSAT's circuit-size dependence\n"
      << "enters exactly here.\n";
  return reporter.finish();
}
