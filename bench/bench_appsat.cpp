// Demo II-A / IV-A: AppSAT vs the full SAT attack — Rivest's exact-vs-
// approximate distinction made measurable.
//
// On ordinary circuits both attacks recover (near-)perfect keys; on
// point-function-style circuits (equality comparators) the exact SAT
// attack pays many DIPs while AppSAT settles early with an approximate key
// whose error is tiny on the uniform distribution — the [5] tradeoff the
// paper builds its Section IV-A argument on.
#include <iostream>

#include "attack/appsat.hpp"
#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "core/experiment.hpp"
#include "lock/combinational.hpp"
#include "obs/bench_reporter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using attack::AppSatConfig;
using attack::CircuitOracle;
using circuit::Netlist;
using lock::LockedCircuit;
using support::Rng;
using support::Table;

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("appsat", argc, argv);

  std::cout << "== AppSAT (approximate) vs SAT attack (exact) ==\n\n";

  struct Workload {
    std::string name;
    Netlist netlist;
  };
  Rng gen_rng(11);
  std::vector<Workload> workloads;
  if (!reporter.smoke()) {
    circuit::RandomCircuitConfig config;
    config.inputs = 12;
    config.gates = 100;
    config.outputs = 3;
    workloads.push_back({"rand12x100", circuit::random_circuit(config, gen_rng)});
    workloads.push_back({"comparator10", circuit::equality_comparator(10)});
  }
  workloads.push_back({"adder6", circuit::ripple_carry_adder(6)});

  Table table({"circuit", "key bits", "attack", "DIPs", "oracle queries",
               "time [s]", "key accuracy [%]", "terminated"});

  for (const auto& workload : workloads) {
    const std::size_t key_bits = 12;
    Rng lock_rng(2000);
    const LockedCircuit locked =
        lock::lock_random_xor(workload.netlist, key_bits, lock_rng);

    {
      CircuitOracle oracle = CircuitOracle::from_netlist(workload.netlist);
      core::Stopwatch watch;
      const auto result = attack::sat_attack(locked, oracle);
      Rng eval(1);
      const double acc = lock::key_accuracy(workload.netlist, locked,
                                            result.key, 8192, eval);
      table.add_row({workload.name, std::to_string(key_bits), "SAT (exact)",
                     std::to_string(result.dip_iterations),
                     std::to_string(result.oracle_queries),
                     Table::fmt(watch.seconds(), 3),
                     Table::fmt(100.0 * acc, 2),
                     result.success ? "UNSAT (proof)" : "aborted"});
    }
    {
      CircuitOracle oracle = CircuitOracle::from_netlist(workload.netlist);
      Rng attack_rng(3);
      AppSatConfig config;
      config.dips_per_round = 3;
      config.random_queries = 48;
      config.error_threshold = 0.02;
      core::Stopwatch watch;
      const auto result = attack::appsat(locked, oracle, attack_rng, config);
      Rng eval(2);
      const double acc = lock::key_accuracy(workload.netlist, locked,
                                            result.key, 8192, eval);
      table.add_row(
          {workload.name, std::to_string(key_bits), "AppSAT (approx)",
           std::to_string(result.dip_iterations),
           std::to_string(result.oracle_queries),
           Table::fmt(watch.seconds(), 3), Table::fmt(100.0 * acc, 2),
           result.exact ? "UNSAT (proof)"
                        : (result.settled ? "settled (err est. " +
                                                Table::fmt(result.estimated_error, 3) +
                                                ")"
                                          : "budget")});
    }
  }
  reporter.print(std::cout, table);
  reporter.note("workloads", static_cast<double>(workloads.size()));

  std::cout
      << "\nReading guide: 'exact-inference resilience' (the comparator's\n"
      << "hidden point survives AppSAT with noticeable probability) does\n"
      << "NOT imply approximation resilience — AppSAT's key is >98%\n"
      << "accurate everywhere else. And with membership queries the full\n"
      << "SAT attack converts approximate learning into exact recovery,\n"
      << "which is the paper's Section IV-A argument against [4]'s\n"
      << "impossibility framing.\n";
  return reporter.finish();
}
