// Extension bench: the lockdown protocol ([10]) and the paper's Section III
// warning about which bound the CRP budget is derived from.
//
// An eavesdropper collects authentication transcripts up to the token's CRP
// budget and trains the standard modeling attack. We sweep the budget and
// print model accuracy, annotated with two candidate "provably safe"
// budgets: one derived from the Perceptron bound of [9] (exponential in k,
// hence astronomically permissive) and one from the algorithm-independent
// uniform bound. A budget justified by the wrong row of Table I leaks far
// more than intended.
#include <iostream>
#include <vector>

#include "core/bounds.hpp"
#include "ml/features.hpp"
#include "ml/logistic.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/crp.hpp"
#include "puf/lockdown.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using puf::CrpSet;
using support::BitVec;
using support::Rng;
using support::Table;

double eavesdropper_accuracy(std::size_t stages, std::size_t chains,
                             std::size_t budget, std::size_t eval_size,
                             std::size_t seed) {
  Rng rng(seed);
  puf::LockdownConfig config;
  config.stages = stages;
  config.chains = chains;
  config.crp_budget = budget;
  puf::LockdownToken token(config, rng);
  Rng proto(seed + 1);

  CrpSet transcripts;
  for (std::size_t round = 0; round < budget; ++round) {
    BitVec nonce(stages / 2);
    for (std::size_t i = 0; i < nonce.size(); ++i)
      nonce.set(i, proto.coin());
    const auto t = token.authenticate(nonce, proto);
    transcripts.add(t->challenge, t->response);
  }

  Rng train_rng(seed + 2);
  const ml::LinearModel model = ml::LogisticRegression().fit_model(
      transcripts.challenges(), transcripts.responses(),
      ml::parity_with_bias, train_rng);
  const CrpSet eval =
      CrpSet::collect_uniform(token.puf(), eval_size, train_rng);
  return eval.accuracy_of(model);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("lockdown", argc, argv);
  const bool smoke = reporter.smoke();

  std::cout << "== Lockdown protocol: eavesdropper model accuracy vs CRP "
               "budget ==\n\n";

  const std::size_t stages = 32;
  const std::size_t chains = 1;  // classic single-chain modeling target
  const std::size_t repeats = smoke ? 1 : 3;
  const std::size_t eval_size = smoke ? 1000 : 4000;
  const std::vector<std::size_t> budgets =
      smoke ? std::vector<std::size_t>{25, 100, 400}
            : std::vector<std::size_t>{25, 50, 100, 200, 400, 800, 1600};
  reporter.note("repeats", static_cast<double>(repeats));

  Table table({"CRP budget", "model accuracy [%] (instance mean)"});
  for (const std::size_t budget : budgets) {
    double total = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep)
      total += eavesdropper_accuracy(stages, chains, budget, eval_size,
                                     100 * rep + 7);
    table.add_row({std::to_string(budget),
                   Table::fmt(100.0 * total / static_cast<double>(repeats),
                              1)});
  }
  reporter.print(std::cout, table);

  const double bound_general = core::general_crp_bound(stages, chains, 0.05, 0.01);
  const double bound_perceptron =
      core::perceptron_crp_bound(stages, chains, 0.05, 0.01);
  reporter.note("general_crp_bound", bound_general);
  std::cout << "\nCandidate 'safe' budgets for this construction "
               "(eps=0.05, delta=0.01):\n"
            << "  algorithm-independent uniform bound : "
            << Table::fmt_or_inf(bound_general, 0) << " CRPs\n"
            << "  Perceptron bound of [9]             : "
            << Table::fmt_or_inf(bound_perceptron, 0) << " CRPs\n"
            << "\nReading guide: the empirical learner reaches ~95% with a\n"
            << "few hundred CRPs — orders of magnitude below BOTH bounds\n"
            << "(they are upper bounds on a sufficient number, not lower\n"
            << "bounds on a necessary one). Lockdown budgets must therefore\n"
            << "be set from empirical learning curves like this one, in the\n"
            << "strongest adversary model — the paper's core prescription.\n";
  return reporter.finish();
}
