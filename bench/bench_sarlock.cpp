// Extension bench: SARLock — SAT-attack resilience vs approximate attacks.
//
// Sweeps the SARLock key width and contrasts the exact SAT attack's DIP
// count (≈ one DIP per wrong key: exponential) with plain XOR locking
// (logarithmic-ish) and with AppSAT (constant-ish rounds, approximate key).
// This is the quantitative backdrop of the paper's Section IV-A argument:
// "exact-inference resilience" is a real phenomenon, and it is exactly the
// thing approximate attackers do not care about.
#include <iostream>

#include "attack/appsat.hpp"
#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "core/experiment.hpp"
#include "lock/antisat.hpp"
#include "lock/sarlock.hpp"
#include "obs/bench_reporter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pitfalls;
  using support::Rng;
  using support::Table;

  obs::BenchReporter reporter("sarlock", argc, argv);

  std::cout << "== SARLock vs XOR locking under exact and approximate "
               "attacks ==\n\n";

  const circuit::Netlist original = circuit::ripple_carry_adder(4);  // 8 in

  Table table({"scheme", "key bits", "attack", "DIPs", "oracle queries",
               "time [s]", "key accuracy [%]"});

  const std::vector<std::size_t> bit_sweep =
      reporter.smoke() ? std::vector<std::size_t>{4}
                       : std::vector<std::size_t>{4, 6, 8};
  for (const std::size_t bits : bit_sweep) {
    for (const int scheme_id : {0, 1, 2}) {
      Rng lock_rng(100 + bits);
      const lock::LockedCircuit locked =
          scheme_id == 0 ? lock::lock_random_xor(original, bits, lock_rng)
          : scheme_id == 1
              ? lock::lock_sarlock(original, bits, lock_rng)
              : lock::lock_antisat(original, bits, lock_rng);
      const std::string scheme = scheme_id == 0   ? "XOR lock"
                                 : scheme_id == 1 ? "SARLock"
                                                  : "Anti-SAT";

      {
        attack::CircuitOracle oracle =
            attack::CircuitOracle::from_netlist(original);
        core::Stopwatch watch;
        const auto result = attack::sat_attack(locked, oracle);
        Rng eval(1);
        const double acc = lock::key_accuracy(original, locked, result.key,
                                              8192, eval);
        table.add_row({scheme, std::to_string(bits), "SAT (exact)",
                       std::to_string(result.dip_iterations),
                       std::to_string(result.oracle_queries),
                       Table::fmt(watch.seconds(), 3),
                       Table::fmt(100.0 * acc, 2)});
      }
      {
        attack::CircuitOracle oracle =
            attack::CircuitOracle::from_netlist(original);
        Rng attack_rng(2);
        attack::AppSatConfig config;
        config.dips_per_round = 4;
        config.random_queries = 48;
        config.error_threshold = 0.02;
        config.max_rounds = 8;
        core::Stopwatch watch;
        const auto result = attack::appsat(locked, oracle, attack_rng, config);
        Rng eval(3);
        const double acc = lock::key_accuracy(original, locked, result.key,
                                              8192, eval);
        table.add_row({scheme, std::to_string(bits), "AppSAT (approx)",
                       std::to_string(result.dip_iterations),
                       std::to_string(result.oracle_queries),
                       Table::fmt(watch.seconds(), 3),
                       Table::fmt(100.0 * acc, 2)});
      }
    }
  }
  reporter.print(std::cout, table);
  reporter.note("schemes", 3.0);
  reporter.note("key_widths", static_cast<double>(bit_sweep.size()));

  std::cout
      << "\nShape to observe: SAT-attack DIPs grow ~2^bits on SARLock but\n"
      << "stay near-constant on XOR locking; AppSAT needs a handful of\n"
      << "rounds on both and returns keys >98% accurate — wrong on (at\n"
      << "most) the protected pattern. Security against exact inference,\n"
      << "insecurity against approximation: Rivest's distinction, measured.\n";
  return reporter.finish();
}
