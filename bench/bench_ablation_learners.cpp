// Ablation bench: learner variants used in the table reproductions.
//
//   A. Perceptron raw vs averaged vs margin — Table II's plateau must be a
//      property of the problem, not the Perceptron flavour.
//   B. Chow reconstruction with 0/2/8 correction rounds — the De et al.
//      refinement matters for true LTFs, not for BR PUFs (you cannot
//      correct your way out of a wrong concept class).
//   C. LMN degree cutoff — the accuracy/sample tradeoff behind choosing m.
#include <iostream>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "ml/chow.hpp"
#include "ml/features.hpp"
#include "ml/lmn.hpp"
#include "ml/perceptron.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using boolfn::TruthTable;
using puf::BistableRingConfig;
using puf::BistableRingPuf;
using puf::CrpSet;
using support::Rng;
using support::Table;

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("ablation_learners", argc, argv);
  const bool smoke = reporter.smoke();
  std::cout << "== Learner ablations ==\n\n";

  // ------------------------------------------------------- A. Perceptron
  {
    const std::size_t bits = smoke ? 12 : 16;
    const std::size_t crp_count = smoke ? 2000 : 8000;
    Rng rng(1);
    const BistableRingPuf br(BistableRingConfig::paper_instance(bits), rng);
    Rng collect(2);
    const CrpSet crps = CrpSet::collect_stable(br, crp_count, 11, collect);
    const CrpSet test = CrpSet::collect_stable(br, crp_count, 11, collect);
    const auto chow = ml::estimate_chow(crps.challenges(), crps.responses());
    const boolfn::Ltf f_prime = ml::reconstruct_ltf(chow);
    const CrpSet train = crps.relabel(f_prime);

    Table table({"Perceptron variant", "test accuracy vs BR PUF [%]"});
    struct Variant {
      std::string name;
      ml::PerceptronConfig config;
    };
    const Variant variants[] = {
        {"raw", {.max_epochs = 48}},
        {"averaged", {.max_epochs = 48, .averaged = true}},
        {"margin 0.5", {.max_epochs = 48, .averaged = false, .margin = 0.5}},
        {"averaged + margin", {.max_epochs = 48, .averaged = true, .margin = 0.5}},
    };
    for (const auto& variant : variants) {
      Rng train_rng(3);
      const ml::LinearModel model =
          ml::Perceptron(variant.config)
              .fit_model(train.challenges(), train.responses(),
                         ml::pm_with_bias, train_rng);
      table.add_row({variant.name,
                     Table::fmt(100.0 * test.accuracy_of(model), 2)});
    }
    reporter.print(std::cout, table,
                   "-- A: Table II plateau is robust to the Perceptron "
                   "flavour (BR PUF) --");
    std::cout << "\n";
  }

  // ------------------------------------------------------------- B. Chow
  {
    Table table({"target", "correction rounds", "accuracy [%]"});
    for (const bool br_target : {false, true}) {
      Rng rng(4);
      BistableRingConfig cfg;
      cfg.bits = 14;
      cfg.nonlinear_share = br_target ? 0.4 : 0.0;  // 0.0 = true LTF
      const BistableRingPuf target(cfg, rng);
      Rng collect(5);
      const CrpSet crps =
          CrpSet::collect_uniform(target, smoke ? 1000 : 4000, collect);
      const CrpSet test =
          CrpSet::collect_uniform(target, smoke ? 2000 : 8000, collect);
      const auto chow = ml::estimate_chow(crps.challenges(), crps.responses());
      for (const std::size_t rounds : {0u, 2u, 8u}) {
        const boolfn::Ltf f_prime = ml::reconstruct_ltf(
            chow, {.correction_rounds = rounds, .step = 0.5},
            crps.challenges());
        table.add_row({br_target ? "BR PUF (share 0.4)" : "true LTF",
                       std::to_string(rounds),
                       Table::fmt(100.0 * test.accuracy_of(f_prime), 2)});
      }
    }
    reporter.print(std::cout, table,
                   "-- B: Chow-matching correction helps true LTFs, cannot "
                   "fix a wrong concept class --");
    std::cout << "\n";
  }

  // -------------------------------------------------------------- C. LMN
  {
    Rng rng(6);
    const puf::XorArbiterPuf puf =
        puf::XorArbiterPuf::independent(12, 2, 0.0, rng);
    const auto target = puf.feature_space_view();
    const TruthTable tt = TruthTable::from_function(target);

    Table table({"LMN degree m", "#coefficients", "samples",
                 "accuracy [%]"});
    const std::vector<std::size_t> degrees =
        smoke ? std::vector<std::size_t>{1, 2}
              : std::vector<std::size_t>{1, 2, 3, 4};
    const std::vector<std::size_t> sample_sweep =
        smoke ? std::vector<std::size_t>{1000, 4000}
              : std::vector<std::size_t>{2000, 20000};
    for (const std::size_t degree : degrees) {
      const ml::LmnLearner learner({.degree = degree, .prune_below = 0.0});
      for (const std::size_t samples : sample_sweep) {
        Rng learn(7);
        const auto h = learner.learn(target, samples, learn);
        table.add_row(
            {std::to_string(degree),
             std::to_string(learner.num_coefficients(12)),
             std::to_string(samples),
             Table::fmt(100.0 * (1.0 -
                                 TruthTable::from_function(h).distance(tt)),
                        1)});
      }
    }
    reporter.print(std::cout, table,
                   "-- C: LMN degree cutoff vs samples (2-XOR PUF, n=12) --");
  }

  std::cout
      << "\nTakeaways: (A) no Perceptron flavour escapes the plateau;\n"
      << "(B) correction rounds refine LTF fits but cannot repair the\n"
      << "BR-as-LTF representation error; (C) raising the LMN degree only\n"
      << "pays once the sample budget supports the larger coefficient set —\n"
      << "the concrete face of the n^{O(m)} sample bound.\n";
  return reporter.finish();
}
