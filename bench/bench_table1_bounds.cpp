// Reproduces Table I: "Summary of the upper bounds on the number of CRPs
// required to PAC learn XOR Arbiter PUFs".
//
// The paper's table is symbolic; this bench prints the same four rows
// (bound of [9] / general VC bound / Corollary 1 LMN / Corollary 2
// LearnPoly) evaluated over a parameter sweep, so the growth regimes the
// paper contrasts become concrete numbers: the [9] bound explodes
// exponentially in k, the algorithm-independent bound stays polynomial,
// the LMN bound explodes in k^2/eps^2, and the membership-query bound
// stays polynomial in n.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/bounds.hpp"
#include "obs/bench_reporter.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using pitfalls::core::table1_rows;
  using pitfalls::support::Table;

  pitfalls::obs::BenchReporter reporter("table1_bounds", argc, argv);

  std::cout << "== Table I: CRP upper bounds for PAC learning n-bit k-XOR "
               "Arbiter PUFs ==\n\n";

  const double delta = 0.01;
  const bool smoke = reporter.smoke();
  const std::vector<double> eps_sweep =
      smoke ? std::vector<double>{0.25} : std::vector<double>{0.05, 0.25, 0.50};
  const std::vector<std::size_t> n_sweep =
      smoke ? std::vector<std::size_t>{16, 32}
            : std::vector<std::size_t>{16, 32, 64, 128};
  const std::vector<std::size_t> k_sweep =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 6};
  reporter.note("delta", delta);

  // The LMN constant m = 2.32 k^2/eps^2 makes tight-eps cells astronomical
  // even for k = 1; the eps = 0.50 block exposes the "feasible for constant
  // k" regime of Corollary 1.
  for (const double eps : eps_sweep) {
    Table table({"n", "k", "source", "distribution", "algorithm",
                 "attacker's access", "bound (#CRPs)"});
    for (const std::size_t n : n_sweep) {
      for (const std::size_t k : k_sweep) {
        for (const auto& row : table1_rows(n, k, eps, delta)) {
          table.add_row({std::to_string(n), std::to_string(k), row.source,
                         row.distribution, row.algorithm, row.access,
                         Table::fmt_or_inf(row.value, 1)});
        }
      }
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "-- eps = %.2f, delta = %.2f --", eps, delta);
    reporter.print(std::cout, table, title);
    std::cout << "\n";
  }

  std::cout
      << "Reading guide (the paper's Section III / IV narrative):\n"
      << "  * [9] (Perceptron, distribution-free): exponential in k — the\n"
      << "    basis of the claimed k upper bound.\n"
      << "  * General (VC, uniform): polynomial in k — switching to an\n"
      << "    algorithm-independent bound removes the exponential wall.\n"
      << "  * Corollary 1 (LMN): feasible for constant k, infeasible once\n"
      << "    k >> sqrt(ln n) (values saturate to >1e18).\n"
      << "  * Corollary 2 (LearnPoly + membership queries): polynomial in\n"
      << "    n — chosen-challenge access collapses the hardness.\n";
  return reporter.finish();
}
