// Ablation bench: the BR PUF model's nonlinearity knob.
//
// DESIGN.md's central substitution claim is that the interaction-term
// variance share `nonlinear_share` is the single parameter driving both
// Table II (best-LTF accuracy plateau) and Table III (halfspace-tester
// distance). This bench sweeps the knob and prints all derived quantities,
// so the calibration chosen in BistableRingConfig::paper_instance can be
// audited — and so downstream users can dial in their own BR corpus.
#include <iostream>
#include <vector>

#include "boolfn/fourier.hpp"
#include "boolfn/truth_table.hpp"
#include "ml/chow.hpp"
#include "ml/halfspace_tester.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pitfalls;
  using boolfn::FourierSpectrum;
  using boolfn::TruthTable;
  using puf::BistableRingConfig;
  using puf::BistableRingPuf;
  using puf::CrpSet;
  using support::Rng;
  using support::Table;

  obs::BenchReporter reporter("ablation_br", argc, argv);
  const bool smoke = reporter.smoke();
  const std::size_t bits = smoke ? 12 : 14;
  const std::size_t repeats = smoke ? 1 : 3;
  const std::size_t tester_queries = smoke ? 8000 : 40000;
  const std::vector<double> shares =
      smoke ? std::vector<double>{0.0, 0.4}
            : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7};
  reporter.note("bits", static_cast<double>(bits));
  reporter.note("repeats", static_cast<double>(repeats));

  std::cout << "== BR PUF ablation: nonlinear share -> spectrum, tester, "
               "best-LTF accuracy ==\n(n = " << bits
            << " so the spectrum is exact; " << repeats
            << " instance(s) per row)\n\n";

  Table table({"nonlinear share", "W1 (degree-0/1 weight)",
               "tester gap [%]", "best Chow-LTF accuracy [%]",
               "noise sensitivity @0.05"});

  for (const double share : shares) {
    double w1 = 0.0;
    double gap = 0.0;
    double acc = 0.0;
    double ns = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      Rng rng(100 * rep + 3);
      BistableRingConfig cfg;
      cfg.bits = bits;
      cfg.nonlinear_share = share;
      const BistableRingPuf br(cfg, rng);
      const TruthTable tt = TruthTable::from_function(br);
      const auto spec = FourierSpectrum::of(tt);
      w1 += spec.weight_up_to_degree(1);
      ns += spec.noise_sensitivity(0.05);

      Rng test_rng(200 * rep + 5);
      const auto report =
          ml::HalfspaceTester(0.1).test(br, tester_queries, test_rng);
      gap += report.gap;

      const auto chow = ml::exact_chow(tt);
      const boolfn::Ltf f_prime = ml::reconstruct_ltf(chow);
      acc += 1.0 - tt.distance(TruthTable::from_function(f_prime));
    }
    const double reps = static_cast<double>(repeats);
    table.add_row({Table::fmt(share, 2), Table::fmt(w1 / reps, 3),
                   Table::fmt(100.0 * gap / reps, 1),
                   Table::fmt(100.0 * acc / reps, 1),
                   Table::fmt(ns / reps, 3)});
  }
  reporter.print(std::cout, table);

  std::cout
      << "\nReading guide: the tester gap tracks the share almost linearly\n"
      << "(gap ~ share, the calibration identity used for Table III), while\n"
      << "best-LTF accuracy decays much more slowly — witnessing that the\n"
      << "tester's statistic is a conservative distance estimate and that\n"
      << "Tables II and III are consistent with each other.\n";
  return reporter.finish();
}
