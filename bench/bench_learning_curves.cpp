// Learning-curve bench: the figure-style series behind every CRP-budget
// argument in the paper — empirical modeling-attack accuracy vs number of
// (uniform, random-example) CRPs, for arbiter-PUF variants of growing
// claimed hardness.
//
// Series printed (accuracy % per budget):
//   * 64-stage arbiter chain, logistic regression, parity features;
//   * k-XOR arbiter PUFs, k = 2, 3 (same attack);
//   * feed-forward arbiter PUF (representation mismatch: same attack);
//   * and the Table I "general bound" per construction as the analytic
//     anchor the curves should be compared against.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/bounds.hpp"
#include "core/experiment.hpp"
#include "ml/features.hpp"
#include "ml/logistic.hpp"
#include "ml/xor_model.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/crp.hpp"
#include "puf/feed_forward.hpp"
#include "puf/interpose.hpp"
#include "puf/xor_arbiter.hpp"
#include "store/checkpoint.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using puf::CrpSet;
using support::Rng;
using support::Table;

/// Modeling-attack accuracy with a k-chain product model (k=1 is ordinary
/// logistic-style regression; k>1 is the Ruehrmair XOR attack [8]).
double attack_accuracy(const puf::Puf& target, std::size_t chains,
                       std::size_t budget, std::size_t seed,
                       std::size_t restarts, std::size_t test_size) {
  Rng collect(seed);
  const CrpSet train = CrpSet::collect_uniform(target, budget, collect);
  const CrpSet test = CrpSet::collect_uniform(target, test_size, collect);
  Rng train_rng(seed + 1);
  ml::XorModelConfig config;
  config.chains = chains;
  config.restarts = restarts;
  const ml::XorChainModel model =
      ml::XorModelAttack(config).fit(train.challenges(), train.responses(),
                                     ml::parity_with_bias, train_rng);
  return test.accuracy_of(model);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("learning_curves", argc, argv);
  const bool smoke = reporter.smoke();

  // Crash-safe sweep (--checkpoint/--resume): each accuracy cell is one
  // (series, budget) attack; finished cells store their accuracy and are
  // not re-fit on resume. All table values are deterministic, so a resumed
  // run is byte-identical to an uninterrupted one (the kill/resume gate
  // asserts exactly that).
  std::unique_ptr<store::CheckpointSession> session;
  if (reporter.checkpoint_enabled()) {
    store::install_termination_handler();
    try {
      session = std::make_unique<store::CheckpointSession>(
          reporter.checkpoint_path(), 11,
          std::string("learning_curves.v1.smoke=") +
              (reporter.smoke() ? "1" : "0"),
          reporter.resume());
    } catch (const support::snapshot::SnapshotError& error) {
      std::cerr << "bench_learning_curves: unusable checkpoint path "
                << reporter.checkpoint_path() << ": " << error.what() << "\n";
      return 1;
    }
  }
  std::cout << "== Modeling-attack learning curves (Ruehrmair product-of-"
               "LTFs model [8], parity features, n = 64) ==\n\n";

  const std::vector<std::size_t> budgets =
      smoke ? std::vector<std::size_t>{250, 1000, 4000}
            : std::vector<std::size_t>{250, 500,  1000, 2000,
                                       4000, 8000, 16000};
  const std::size_t restarts = smoke ? 1 : 4;
  const std::size_t test_size = smoke ? 500 : 3000;

  Rng rng(1);
  const puf::XorArbiterPuf chain1 =
      puf::XorArbiterPuf::independent(64, 1, 0.0, rng);
  const puf::XorArbiterPuf chain2 =
      puf::XorArbiterPuf::independent(64, 2, 0.0, rng);
  const puf::XorArbiterPuf chain3 =
      puf::XorArbiterPuf::independent(64, 3, 0.0, rng);
  const puf::FeedForwardArbiterPuf ff(64, 4, 0.0, rng);
  const puf::InterposePuf ipuf(64, 1, 1, 0.0, rng);

  Table table({"# CRPs", "arbiter (k=1)", "2-XOR (2-chain model)",
               "3-XOR (3-chain model)", "feed-forward (1-chain model)",
               "(1,1)-iPUF (2-chain model)"});

  // One checkpointable cell per (series, budget): resume returns the stored
  // accuracy without re-collecting CRPs or re-fitting.
  const auto cell = [&](const char* series, const puf::Puf& target,
                        std::size_t chains, std::size_t budget,
                        std::size_t seed) {
    const double accuracy = store::checkpointed_unit<double>(
        session.get(),
        std::string("cell.") + series + "." + std::to_string(budget),
        [&] {
          return attack_accuracy(target, chains, budget, seed, restarts,
                                 test_size);
        },
        [](support::snapshot::SectionWriter& w, const double& v) {
          w.f64(v);
        },
        [](support::snapshot::SectionReader& r) { return r.f64(); });
    store::note_cell_completed(session.get());
    if (session != nullptr && store::termination_requested()) {
      std::cerr << "bench_learning_curves: termination requested; "
                   "checkpoint flushed, resume with --resume\n";
      std::exit(143);
    }
    return accuracy;
  };

  double final_k1 = 0.0, final_k2 = 0.0, final_k3 = 0.0;
  for (const auto budget : budgets) {
    const double k1 = cell("k1", chain1, 1, budget, 10);
    const double k2 = cell("k2", chain2, 2, budget, 20);
    const double k3 = cell("k3", chain3, 3, budget, 30);
    const double ff_acc = cell("ff", ff, 1, budget, 40);
    const double ipuf_acc = cell("ipuf", ipuf, 2, budget, 50);
    table.add_row({std::to_string(budget), Table::fmt(100.0 * k1, 1),
                   Table::fmt(100.0 * k2, 1), Table::fmt(100.0 * k3, 1),
                   Table::fmt(100.0 * ff_acc, 1),
                   Table::fmt(100.0 * ipuf_acc, 1)});
    final_k1 = k1;
    final_k2 = k2;
    final_k3 = k3;
  }
  reporter.print(std::cout, table);
  reporter.note("budget.max", static_cast<double>(budgets.back()));
  reporter.note("accuracy.arbiter.final", final_k1);
  reporter.note("accuracy.2xor.final", final_k2);
  reporter.note("accuracy.3xor.final", final_k3);

  std::cout << "\nAnalytic anchors (general uniform bound, eps=0.05, "
               "delta=0.01):\n";
  for (const std::size_t k : {1u, 2u, 3u}) {
    const double bound = core::general_crp_bound(64, k, 0.05, 0.01);
    std::cout << "  k=" << k << ": " << Table::fmt_or_inf(bound, 0)
              << " CRPs sufficient\n";
    reporter.note("general_crp_bound.k" + std::to_string(k), bound);
  }
  std::cout
      << "\nShapes to observe: (a) the k=1 curve saturates with ~20x fewer\n"
      << "CRPs than the bound guarantees — bounds are sufficiency, not\n"
      << "necessity; (b) each extra XOR chain shifts the phase transition\n"
      << "right (2-XOR breaks at ~1k CRPs, 3-XOR at ~4k) — the empirical\n"
      << "face of the exponential-in-k hardness the paper's Table I traces;\n"
      << "(c) the feed-forward curve saturates far below 100% under the\n"
      << "1-chain model: a representation mismatch, not a sample-size\n"
      << "effect — more CRPs cannot fix it (Section V-A).\n";
  return reporter.finish();
}
