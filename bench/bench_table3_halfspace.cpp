// Reproduces Table III: "Results of testing how far BR PUFs are to LTFs."
//
// The Matulef et al. halfspace tester is fed uniformly drawn noiseless
// CRPs from simulated BR PUFs with the paper's per-n sample sizes
// (100 / 1339 / 63434) and prints its minimum-distance estimate, exactly
// the table's "How far from any halfspace (min.) [%]" column.
//
// Paper values: n=16 -> 20%, n=32 -> 40%, n=64 -> 50% (delta = 0.99).
//
// For context the bench also prints the *achievable agreement* of the best
// Chow-direction LTF: this shows the tester's gap statistic is a
// conservative distance witness (large even while an LTF still agrees on
// ~80-90% of inputs), which is also how the paper's Tables II and III
// coexist.
#include <iostream>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "ml/chow.hpp"
#include "ml/halfspace_tester.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using puf::BistableRingConfig;
using puf::BistableRingPuf;
using puf::CrpSet;
using support::Rng;
using support::Table;

std::size_t paper_crps(std::size_t n) {
  if (n <= 16) return 100;
  if (n <= 32) return 1339;
  return 63434;
}

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("table3_halfspace", argc, argv);

  std::cout << "== Table III: halfspace tester on BR PUFs (noiseless "
               "uniform CRPs) ==\n\n";

  const bool smoke = reporter.smoke();
  const std::vector<std::size_t> ns = smoke ? std::vector<std::size_t>{16}
                                            : std::vector<std::size_t>{16, 32, 64};
  const std::size_t context_crps = smoke ? 2000 : 20000;

  Table table({"n", "# CRPs", "far from any halfspace (min.) [%]",
               "tester verdict", "best Chow-LTF agreement [%]"});

  for (const std::size_t n : ns) {
    // Average the tester statistic over a few instances (the paper reports
    // one FPGA instance per n).
    const std::size_t repeats = smoke ? 1 : 3;
    double far_total = 0.0;
    double agree_total = 0.0;
    bool accepted_any = false;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      Rng instance_rng(1000 * n + rep);
      const BistableRingPuf br(BistableRingConfig::paper_instance(n),
                               instance_rng);
      Rng collect(2000 * n + rep);
      const CrpSet crps =
          CrpSet::collect_uniform(br, paper_crps(n), collect);

      const ml::HalfspaceTester tester(0.12);
      const auto report = tester.test(crps.challenges(), crps.responses());
      far_total += report.far_from_halfspace;
      accepted_any = accepted_any || report.accepted;

      // Context column: what an actual LTF hypothesis achieves.
      const CrpSet big = CrpSet::collect_uniform(br, context_crps, collect);
      const auto chow = ml::estimate_chow(big.challenges(), big.responses());
      const boolfn::Ltf f_prime = ml::reconstruct_ltf(chow);
      const CrpSet eval = CrpSet::collect_uniform(br, context_crps, collect);
      agree_total += eval.accuracy_of(f_prime);
    }
    table.add_row({std::to_string(n), std::to_string(paper_crps(n)),
                   Table::fmt(100.0 * far_total / static_cast<double>(repeats), 0),
                   accepted_any ? "close to a halfspace" : "NOT a halfspace",
                   Table::fmt(100.0 * agree_total / static_cast<double>(repeats), 1)});
  }
  reporter.print(std::cout, table);

  std::cout
      << "\nPaper values: 20 / 40 / 50 % (delta = 0.99).\n"
      << "Shape to reproduce: the distance estimate GROWS with n — larger\n"
      << "BR rings drift further from the halfspace class, so the LTF\n"
      << "representation used by [11] degrades with scale.\n"
      << "The last column explains the Table II/III coexistence: the gap\n"
      << "statistic is a conservative witness; an LTF can still agree on\n"
      << "most inputs while the tester certifies non-membership.\n";
  return reporter.finish();
}
