// Demo III-A / V-B: the LMN algorithm against XOR Arbiter PUFs.
//
// Reproduces the paper's in-text claims around Corollary 1:
//   1. With independent chains, LMN accuracy collapses as k grows (the
//      n^{O(k^2/eps^2)} sample demand) — "if k >> sqrt(ln n), applying this
//      algorithm becomes infeasible".
//   2. With intentionally *correlated* chains (the RocknRoll construction
//      of [17]), XOR Arbiter PUFs with k >> ln n are still learned to a
//      reasonable accuracy (~75% in the paper) — resolving the apparent
//      contradiction with [9] via the distribution/algorithm axes.
// All learning happens in the paper's feature-space coordinates, where
// each chain is an LTF.
#include <iostream>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "ml/lmn.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using boolfn::TruthTable;
using puf::XorArbiterPuf;
using support::Rng;
using support::Table;

double lmn_accuracy(const XorArbiterPuf& puf, std::size_t degree,
                    std::size_t samples, Rng& rng) {
  const auto target = puf.feature_space_view();
  const ml::LmnLearner learner({.degree = degree, .prune_below = 0.0});
  const auto h = learner.learn(target, samples, rng);
  return 1.0 - TruthTable::from_function(h).distance(
                   TruthTable::from_function(target));
}

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("lmn_xorpuf", argc, argv);

  std::cout << "== LMN (low-degree) algorithm vs XOR Arbiter PUFs ==\n\n";

  const bool smoke = reporter.smoke();
  const std::size_t n = smoke ? 10 : 14;
  const std::size_t samples = smoke ? 2000 : 30000;
  const std::size_t repeats = smoke ? 1 : 3;
  const std::vector<std::size_t> independent_ks =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 3, 4, 6};
  const std::vector<std::size_t> correlated_ks =
      smoke ? std::vector<std::size_t>{4}
            : std::vector<std::size_t>{4, 6, 8, 12};
  reporter.note("n", static_cast<double>(n));
  reporter.note("samples", static_cast<double>(samples));

  {
    Table table({"k (independent chains)", "LMN degree", "samples",
                 "accuracy [%]"});
    for (const std::size_t k : independent_ks) {
      double total = 0.0;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        Rng rng(100 * k + rep);
        const XorArbiterPuf puf = XorArbiterPuf::independent(n, k, 0.0, rng);
        Rng learn(200 * k + rep);
        total += lmn_accuracy(puf, 2, samples, learn);
      }
      table.add_row({std::to_string(k), "2", std::to_string(samples),
                     Table::fmt(100.0 * total / static_cast<double>(repeats), 1)});
    }
    reporter.print(
        std::cout, table,
        "-- independent chains (n = 14): accuracy collapses in k --");
  }

  std::cout << "\n";

  {
    Table table({"k (correlated chains, rho=0.95)", "LMN degree", "samples",
                 "accuracy [%]"});
    for (const std::size_t k : correlated_ks) {
      double total = 0.0;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        Rng rng(300 * k + rep);
        const XorArbiterPuf puf =
            XorArbiterPuf::correlated(n, k, 0.95, 0.0, rng);
        Rng learn(400 * k + rep);
        total += lmn_accuracy(puf, 2, samples, learn);
      }
      table.add_row({std::to_string(k), "2", std::to_string(samples),
                     Table::fmt(100.0 * total / static_cast<double>(repeats), 1)});
    }
    reporter.print(
        std::cout, table,
        "-- correlated chains (RocknRoll regime of [17], k >> ln n) --");
  }

  std::cout
      << "\nPaper reference points: independent chains become infeasible\n"
      << "for k >> sqrt(ln n); correlated chains were learned to ~75%\n"
      << "accuracy in [17] despite k >> ln n. The two tables above live in\n"
      << "different adversary models — exactly why the paper insists the\n"
      << "model be stated before comparing results.\n";
  return reporter.finish();
}
