// Ablation bench: attribute-noise tolerance of the LMN algorithm
// (advantage (1) in the paper's Corollary 1 discussion: "the LMN algorithm
// can tolerate the noise in its given examples").
//
// Protocol: train LMN and the Perceptron on CRPs whose labels come from
// ONE noisy measurement each (attribute noise per footnote 1), evaluate
// against the ideal PUF. LMN's coefficient estimates average the noise
// away; the Perceptron chases every mislabelled example.
#include <iostream>

#include "boolfn/truth_table.hpp"
#include "ml/features.hpp"
#include "ml/lmn.hpp"
#include "ml/perceptron.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using boolfn::TruthTable;
using puf::CrpSet;
using support::BitVec;
using support::Rng;
using support::Table;

}  // namespace

int main() {
  std::cout << "== Attribute-noise tolerance: LMN vs Perceptron ==\n"
            << "(2-XOR arbiter PUF, n=12, feature-space view, 20000 noisy "
               "training CRPs)\n\n";

  const std::size_t n = 12;
  const std::size_t k = 2;
  const std::size_t samples = 20000;

  Table table({"noise sigma", "label error rate [%]",
               "LMN accuracy [%]", "Perceptron accuracy [%]"});

  for (const double sigma : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    double label_err = 0.0;
    double lmn_acc = 0.0;
    double perc_acc = 0.0;
    const std::size_t repeats = 3;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      Rng rng(100 * rep + 17);
      const puf::XorArbiterPuf puf =
          puf::XorArbiterPuf::independent(n, k, sigma, rng);
      const auto ideal = puf.feature_space_view();

      // Noisy labels over uniform feature-space inputs. We sample inputs in
      // feature space directly: Phi is a bijection, so per-chain evaluation
      // via the LTF view plus margin noise reproduces eval_noisy.
      Rng collect(200 * rep + 19);
      std::vector<BitVec> challenges;
      std::vector<int> labels;
      std::size_t mislabeled = 0;
      for (std::size_t s = 0; s < samples; ++s) {
        BitVec x(n);
        for (std::size_t b = 0; b < n; ++b) x.set(b, collect.coin());
        int noisy = 1;
        for (std::size_t c = 0; c < k; ++c) {
          const auto ltf = puf.chain(c).as_feature_space_ltf();
          const double margin =
              ltf.margin(x) + collect.gaussian(0.0, sigma);
          noisy *= margin < 0 ? -1 : +1;
        }
        if (noisy != ideal.eval_pm(x)) ++mislabeled;
        labels.push_back(noisy);
        challenges.push_back(std::move(x));
      }
      label_err += static_cast<double>(mislabeled) / samples;

      // LMN from the noisy data.
      const ml::LmnLearner lmn({.degree = 2, .prune_below = 0.0});
      const auto h = lmn.learn_from_data(challenges, labels);
      lmn_acc += 1.0 - TruthTable::from_function(h).distance(
                           TruthTable::from_function(ideal));

      // Perceptron from the same noisy data (degree-2 monomial features so
      // the hypothesis class is comparable).
      Rng train_rng(300 * rep + 23);
      const auto features = [](const BitVec& x) {
        return ml::monomial_features(x, 2);
      };
      const ml::LinearModel model =
          ml::Perceptron({.max_epochs = 24}).fit_model(
              challenges, labels, features, train_rng);
      perc_acc += 1.0 - TruthTable::from_function(model).distance(
                            TruthTable::from_function(ideal));
    }
    table.add_row({Table::fmt(sigma, 2),
                   Table::fmt(100.0 * label_err / repeats, 1),
                   Table::fmt(100.0 * lmn_acc / repeats, 1),
                   Table::fmt(100.0 * perc_acc / repeats, 1)});
  }
  table.print(std::cout);

  std::cout
      << "\nShape to observe: as attribute noise rises, the Perceptron's\n"
      << "accuracy falls with the label error (it fits the noise), while\n"
      << "LMN's coefficient averaging degrades gracefully — the reason the\n"
      << "paper prefers LMN-style learners for bounding noisy hardware.\n";
  return 0;
}
