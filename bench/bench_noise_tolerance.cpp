// Ablation bench: attribute-noise tolerance of the LMN algorithm
// (advantage (1) in the paper's Corollary 1 discussion: "the LMN algorithm
// can tolerate the noise in its given examples").
//
// Protocol, part 1: train LMN and the Perceptron on CRPs whose labels come
// from ONE noisy measurement each (attribute noise per footnote 1),
// evaluate against the ideal PUF. LMN's coefficient estimates average the
// noise away; the Perceptron chases every mislabelled example.
//
// Part 2 (η-sweep × budget-sweep): the same learners driven through the
// fault-injection oracle layer (ml/robust) against an arbiter PUF. Each row
// reports the degradation status, the held-out accuracy the attacker can
// measure, the true accuracy against the ideal PUF, and the security
// conclusion an evaluator would draw — the table shows exactly where a
// flipped classification-noise rate or a lockdown budget flips the verdict
// from "attack succeeds" to "attack fails" (the paper's pitfall).
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "ml/features.hpp"
#include "ml/lmn.hpp"
#include "ml/perceptron.hpp"
#include "ml/robust/learners.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/arbiter.hpp"
#include "puf/crp.hpp"
#include "puf/xor_arbiter.hpp"
#include "store/checkpoint.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using namespace pitfalls::ml::robust;
using boolfn::BooleanFunction;
using boolfn::TruthTable;
using puf::CrpSet;
using support::BitVec;
using support::Rng;
using support::Table;

double ideal_accuracy(const BooleanFunction& hypothesis,
                      const BooleanFunction& target) {
  return 1.0 - TruthTable::from_function(hypothesis)
                   .distance(TruthTable::from_function(target));
}

const char* verdict(double accuracy) {
  return accuracy >= 0.9 ? "attack succeeds" : "attack fails";
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchReporter reporter("noise_tolerance", argc, argv);
  const bool smoke = reporter.smoke();

  // Crash-safe sweep (--checkpoint/--resume): part 2's cells journal their
  // oracle traffic and store their outcomes; a killed run resumed from the
  // snapshot replays the in-flight cell's journal (charging no budget) and
  // skips completed cells, ending byte-identical to an uninterrupted run.
  std::unique_ptr<store::CheckpointSession> session;
  if (reporter.checkpoint_enabled()) {
    store::install_termination_handler();
    try {
      session = std::make_unique<store::CheckpointSession>(
          reporter.checkpoint_path(), 7,
          std::string("noise_tolerance.v1.smoke=") + (smoke ? "1" : "0"),
          reporter.resume());
    } catch (const support::snapshot::SnapshotError& error) {
      std::cerr << "bench_noise_tolerance: unusable checkpoint path "
                << reporter.checkpoint_path() << ": " << error.what() << "\n";
      return 1;
    }
  }

  std::cout << "== Attribute-noise tolerance: LMN vs Perceptron ==\n"
            << "(2-XOR arbiter PUF, n=12, feature-space view, noisy "
               "training CRPs)\n\n";

  const std::size_t n = 12;
  const std::size_t k = 2;
  const std::size_t samples = smoke ? 3000 : 20000;
  const std::size_t repeats = smoke ? 1 : 3;
  reporter.note("samples", static_cast<double>(samples));

  {
    Table table({"noise sigma", "label error rate [%]",
                 "LMN accuracy [%]", "Perceptron accuracy [%]"});
    const std::vector<double> sigmas =
        smoke ? std::vector<double>{0.0, 0.5}
              : std::vector<double>{0.0, 0.25, 0.5, 1.0, 2.0};
    for (const double sigma : sigmas) {
      double label_err = 0.0;
      double lmn_acc = 0.0;
      double perc_acc = 0.0;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        Rng rng(100 * rep + 17);
        const puf::XorArbiterPuf puf =
            puf::XorArbiterPuf::independent(n, k, sigma, rng);
        const auto ideal = puf.feature_space_view();

        // Noisy labels over uniform feature-space inputs. We sample inputs
        // in feature space directly: Phi is a bijection, so per-chain
        // evaluation via the LTF view plus margin noise reproduces
        // eval_noisy.
        Rng collect(200 * rep + 19);
        std::vector<BitVec> challenges;
        std::vector<int> labels;
        std::size_t mislabeled = 0;
        for (std::size_t s = 0; s < samples; ++s) {
          BitVec x(n);
          for (std::size_t b = 0; b < n; ++b) x.set(b, collect.coin());
          int noisy = 1;
          for (std::size_t c = 0; c < k; ++c) {
            const auto ltf = puf.chain(c).as_feature_space_ltf();
            const double margin =
                ltf.margin(x) + collect.gaussian(0.0, sigma);
            noisy *= margin < 0 ? -1 : +1;
          }
          if (noisy != ideal.eval_pm(x)) ++mislabeled;
          labels.push_back(noisy);
          challenges.push_back(std::move(x));
        }
        label_err += static_cast<double>(mislabeled) / static_cast<double>(samples);

        // LMN from the noisy data.
        const ml::LmnLearner lmn({.degree = 2, .prune_below = 0.0});
        const auto h = lmn.learn_from_data(challenges, labels);
        lmn_acc += ideal_accuracy(h, ideal);

        // Perceptron from the same noisy data (degree-2 monomial features
        // so the hypothesis class is comparable).
        Rng train_rng(300 * rep + 23);
        const auto features = [](const BitVec& x) {
          return ml::monomial_features(x, 2);
        };
        const ml::LinearModel model =
            ml::Perceptron({.max_epochs = 24}).fit_model(
                challenges, labels, features, train_rng);
        perc_acc += ideal_accuracy(model, ideal);
      }
      table.add_row({Table::fmt(sigma, 2),
                     Table::fmt(100.0 * label_err / static_cast<double>(repeats), 1),
                     Table::fmt(100.0 * lmn_acc / static_cast<double>(repeats), 1),
                     Table::fmt(100.0 * perc_acc / static_cast<double>(repeats), 1)});
    }
    reporter.print(std::cout, table,
                   "-- attribute noise (one noisy measurement per label) --");
  }

  // ---- part 2: classification noise η × query budget, via ml/robust ----

  std::cout << "\n== Fault-injected oracle: eta-sweep x budget-sweep ==\n"
            << "(arbiter PUF, parity features / degree-2 LMN; status is the\n"
            << " LearnOutcome the budgeted run reports)\n\n";

  const std::size_t rn = smoke ? 10 : 14;
  Rng setup(7);
  const puf::ArbiterPuf target(rn, 0.0, setup);
  const std::vector<double> etas =
      smoke ? std::vector<double>{0.0, 0.2}
            : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3};
  const std::vector<std::size_t> budgets =
      smoke ? std::vector<std::size_t>{200, 2000}
            : std::vector<std::size_t>{500, 2000, 8000};
  const std::size_t want_train = smoke ? 1500 : 6000;
  const std::size_t want_holdout = smoke ? 300 : 1000;

  Table sweep({"eta", "budget", "learner", "status", "heldout [%]",
               "ideal acc [%]", "conclusion"});
  // Row renderer shared by both learners (hypothesis types differ).
  const auto add_sweep_row = [&](double eta, std::size_t budget,
                                 const char* learner, const auto& outcome) {
    const double heldout = outcome.diagnostics.count("heldout_accuracy")
                               ? outcome.diagnostics.at("heldout_accuracy")
                               : 0.0;
    const double ideal =
        outcome.best_hypothesis
            ? ideal_accuracy(*outcome.best_hypothesis, target)
            : 0.5;
    sweep.add_row({Table::fmt(eta, 2), std::to_string(budget), learner,
                   to_string(outcome.status), Table::fmt(100.0 * heldout, 1),
                   Table::fmt(100.0 * ideal, 1), verdict(ideal)});
  };
  // Cooperative SIGTERM flush: the outcome of every finished cell is already
  // persisted, so exit at the cell boundary and let --resume continue.
  const auto stop_if_terminating = [&] {
    if (session != nullptr && store::termination_requested()) {
      std::cerr << "bench_noise_tolerance: termination requested; checkpoint "
                   "flushed, resume with --resume\n";
      std::exit(143);
    }
  };
  std::size_t cell_index = 0;
  for (const double eta : etas) {
    for (const std::size_t budget : budgets) {
      FaultConfig fc;
      fc.flip_rate = eta;
      fc.query_budget = budget;
      RobustLearnConfig config;
      config.train_queries = want_train;
      config.holdout_queries = want_holdout;

      {
        const std::string cell = "cell." + std::to_string(cell_index++);
        const auto outcome = store::checkpointed_unit<
            LearnOutcome<ml::LinearModel>>(
            session.get(), cell,
            [&] {
              ml::FunctionMembershipOracle inner(target);
              FaultyMembershipOracle oracle(inner, fc, 1000 + budget);
              Rng rng(41);
              if (session == nullptr)
                return robust_perceptron(oracle, ml::parity_with_bias, config,
                                         rng);
              store::RecordingOracle journal(oracle, *session, cell + ".log",
                                             &oracle,
                                             reporter.checkpoint_every());
              return robust_perceptron(journal, ml::parity_with_bias, config,
                                       rng);
            },
            [](auto& w, const LearnOutcome<ml::LinearModel>& o) {
              store::put_outcome(w, o, [](auto& hw, const ml::LinearModel& m) {
                store::put_linear_model(hw, m);
              });
            },
            [](auto& r) {
              return store::get_outcome<ml::LinearModel>(r, [](auto& hr) {
                return store::get_linear_model(hr, ml::parity_with_bias);
              });
            });
        add_sweep_row(eta, budget, "perceptron", outcome);
        stop_if_terminating();
      }
      {
        const std::string cell = "cell." + std::to_string(cell_index++);
        const auto outcome = store::checkpointed_unit<
            LearnOutcome<ml::SparseFourierHypothesis>>(
            session.get(), cell,
            [&] {
              ml::FunctionMembershipOracle inner(target);
              FaultyMembershipOracle oracle(inner, fc, 2000 + budget);
              Rng rng(43);
              if (session == nullptr) return robust_lmn(oracle, 2, config, rng);
              store::RecordingOracle journal(oracle, *session, cell + ".log",
                                             &oracle,
                                             reporter.checkpoint_every());
              return robust_lmn(journal, 2, config, rng);
            },
            [](auto& w, const LearnOutcome<ml::SparseFourierHypothesis>& o) {
              store::put_outcome(
                  w, o, [](auto& hw, const ml::SparseFourierHypothesis& h) {
                    store::put_sparse_fourier(hw, h);
                  });
            },
            [](auto& r) {
              return store::get_outcome<ml::SparseFourierHypothesis>(
                  r,
                  [](auto& hr) { return store::get_sparse_fourier(hr); });
            });
        add_sweep_row(eta, budget, "lmn", outcome);
        stop_if_terminating();
      }
    }
  }
  reporter.print(std::cout, sweep,
                 "-- where the security conclusion flips --");

  std::cout
      << "\nShape to observe: the ideal-model rows (eta=0, large budget) say\n"
      << "\"attack succeeds\" — the PUF is modelable. Raising eta or locking\n"
      << "the query budget flips rows to \"attack fails\" without the target\n"
      << "getting any stronger: an evaluation that silently assumes a clean,\n"
      << "unthrottled oracle overstates the attack, and one that measures\n"
      << "only the faulty channel overstates the defence. The status column\n"
      << "shows which resource ran out first.\n";
  return reporter.finish();
}
