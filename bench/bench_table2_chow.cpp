// Reproduces Table II: "Results of learning an LTF f' built upon Chow
// parameters approximated by using the CRPs collected from BR PUFs."
//
// Pipeline (exactly the paper's): collect noiseless-and-stable CRPs from a
// BR PUF; estimate the Chow parameters; construct the LTF f' (De et al.
// [25] reconstruction); train a Perceptron on challenges re-labelled by f';
// test against held-out stable CRPs of the real PUF.
//
// Paper numbers (FPGA BR PUFs):      n=16    n=32    n=64
//   1000 CRPs                        71.93   91.52   92.55
//   2500 CRPs                        81.02   92.04   93.80
//   5000 CRPs                        84.94   91.45   93.57
//   10000 CRPs                       88.65   91.85   93.69
// Shape to reproduce: accuracy rises with the CRP budget but PLATEAUS well
// below 100% — because BR PUFs are not LTFs. Absolute cells depend on the
// FPGA instances; our simulated instances are calibrated per DESIGN.md §3.
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "ml/chow.hpp"
#include "obs/bench_reporter.hpp"
#include "ml/features.hpp"
#include "ml/perceptron.hpp"
#include "puf/bistable_ring.hpp"
#include "puf/crp.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using puf::BistableRingConfig;
using puf::BistableRingPuf;
using puf::CrpSet;
using support::Rng;
using support::Table;

// Paper's held-out stable test-set sizes for n = 16 / 32 / 64.
std::size_t paper_test_size(std::size_t n) {
  if (n <= 16) return 44834;
  if (n <= 32) return 35876;
  return 31375;
}

double run_cell(std::size_t n, std::size_t budget, std::size_t repeats,
                std::size_t test_size) {
  double total = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    Rng instance_rng(1000 * n + rep);
    const BistableRingPuf br(BistableRingConfig::paper_instance(n),
                             instance_rng);

    Rng collect(2000 * n + rep);
    const CrpSet train_crps = CrpSet::collect_stable(br, budget, 11, collect);
    const CrpSet test_crps = CrpSet::collect_stable(br, test_size, 11, collect);

    // Chow parameters from the collected CRPs -> f'.
    const auto chow =
        ml::estimate_chow(train_crps.challenges(), train_crps.responses());
    const boolfn::Ltf f_prime = ml::reconstruct_ltf(chow);

    // Perceptron trained on CRPs re-labelled by f' (the paper's protocol).
    const CrpSet relabelled = train_crps.relabel(f_prime);
    Rng train_rng(3000 * n + rep);
    const ml::LinearModel model =
        ml::Perceptron({.max_epochs = 48}).fit_model(
            relabelled.challenges(), relabelled.responses(),
            ml::pm_with_bias, train_rng);

    total += test_crps.accuracy_of(model);
  }
  return 100.0 * total / static_cast<double>(repeats);
}

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("table2_chow", argc, argv);

  std::cout << "== Table II: Perceptron on the Chow-parameter LTF f' vs. "
               "real BR PUF responses ==\n"
            << "(accuracy %, averaged over 3 simulated BR instances per "
               "cell; test sets are the\n"
            << " paper's stable-CRP sizes: 44834 / 35876 / 31375)\n\n";

  const bool smoke = reporter.smoke();
  const std::size_t repeats = smoke ? 1 : 3;
  const std::vector<std::size_t> budgets =
      smoke ? std::vector<std::size_t>{500}
            : std::vector<std::size_t>{1000, 2500, 5000, 10000};
  const std::vector<std::size_t> ns = smoke ? std::vector<std::size_t>{16}
                                            : std::vector<std::size_t>{16, 32, 64};
  reporter.note("repeats", static_cast<double>(repeats));

  std::vector<std::string> headers{"# CRPs (Chow + training)"};
  for (const std::size_t n : ns) headers.push_back("n=" + std::to_string(n));
  Table table(headers);
  for (const std::size_t budget : budgets) {
    std::vector<std::string> row{std::to_string(budget)};
    for (const std::size_t n : ns) {
      const std::size_t test_size = smoke ? 2000 : paper_test_size(n);
      row.push_back(Table::fmt(run_cell(n, budget, repeats, test_size), 2));
    }
    table.add_row(row);
  }
  reporter.print(std::cout, table);

  std::cout
      << "\nPaper (FPGA) values for comparison:\n"
      << "  1000: 71.93 / 91.52 / 92.55      2500: 81.02 / 92.04 / 93.80\n"
      << "  5000: 84.94 / 91.45 / 93.57     10000: 88.65 / 91.85 / 93.69\n"
      << "\nKey insight (paper Section V-A): the accuracy cannot be\n"
      << "increased arbitrarily by adding CRPs — the plateau certifies that\n"
      << "the LTF representation of BR PUFs is invalid.\n";
  return reporter.finish();
}
