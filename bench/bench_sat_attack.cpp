// Demo II-A: the oracle-guided SAT attack on combinational logic locking.
//
// For each (circuit, key size): run the full DIP loop, report iterations,
// oracle queries, solver conflicts, wall time, and verify the recovered key
// is *functionally exact* (SAT-based equivalence check). The point the
// paper takes from [4]/[5]: with membership-query access (DIPs are chosen
// inputs), locking reduces to exact learning and falls in minutes —
// "random examples only" adversary models drastically understate this.
//
// The smoke tier deliberately includes an 80-bit key (adder32): the CDCL
// arena solver plus the diversified portfolio makes keys an order of
// magnitude past the seed's 8-bit smoke ceiling routine, and the committed
// baseline pins that down. Per-attack wall time feeds the
// attack.sat_attack.seconds histogram so compare_bench.py (diff and
// --trend) tracks the p50 across snapshots.
#include <iostream>

#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "core/experiment.hpp"
#include "lock/combinational.hpp"
#include "obs/bench_reporter.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using attack::CircuitOracle;
using circuit::Netlist;
using lock::LockedCircuit;
using support::Rng;
using support::Table;

struct Workload {
  std::string name;
  Netlist netlist;
};

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("sat_attack", argc, argv);

  std::cout << "== SAT attack on XOR/XNOR-locked circuits ==\n\n";

  Rng gen_rng(7);
  std::vector<Workload> workloads;
  workloads.push_back({"c17", circuit::c17()});
  workloads.push_back({"adder8 (ripple)", circuit::ripple_carry_adder(8)});
  workloads.push_back({"adder32 (ripple)", circuit::ripple_carry_adder(32)});
  if (!reporter.smoke()) {
    workloads.push_back({"comparator8", circuit::equality_comparator(8)});
    {
      circuit::RandomCircuitConfig config;
      config.inputs = 12;
      config.gates = 120;
      config.outputs = 4;
      workloads.push_back(
          {"rand12x120", circuit::random_circuit(config, gen_rng)});
    }
    {
      circuit::RandomCircuitConfig config;
      config.inputs = 16;
      config.gates = 250;
      config.outputs = 6;
      workloads.push_back(
          {"rand16x250", circuit::random_circuit(config, gen_rng)});
    }
  }
  const std::vector<std::size_t> key_sweep =
      reporter.smoke() ? std::vector<std::size_t>{4, 8, 80}
                       : std::vector<std::size_t>{4, 8, 16, 32, 80, 128};

  attack::SatAttackConfig attack_config;
  attack_config.portfolio_workers = 4;

  auto& attack_seconds =
      obs::MetricsRegistry::global().histogram("attack.sat_attack.seconds");

  std::size_t total_dips = 0;
  Table table({"circuit", "inputs", "gates", "key bits", "DIPs",
               "oracle queries", "solver conflicts", "time [s]",
               "exact?"});
  for (const auto& workload : workloads) {
    const std::size_t max_key = std::min<std::size_t>(
        pitfalls::lock::lockable_gate_count(workload.netlist), 128);
    for (std::size_t key_bits : key_sweep) {
      if (key_bits > max_key) continue;
      Rng lock_rng(1000 + key_bits);
      const LockedCircuit locked =
          lock::lock_random_xor(workload.netlist, key_bits, lock_rng);
      CircuitOracle oracle = CircuitOracle::from_netlist(workload.netlist);

      core::Stopwatch watch;
      const auto result = attack::sat_attack(locked, oracle, attack_config);
      const double seconds = watch.seconds();
      attack_seconds.observe(seconds);

      const bool exact =
          result.success &&
          attack::keys_equivalent(workload.netlist, locked, result.key);
      total_dips += result.dip_iterations;
      table.add_row({workload.name,
                     std::to_string(workload.netlist.num_inputs()),
                     std::to_string(workload.netlist.logic_gate_count()),
                     std::to_string(key_bits),
                     std::to_string(result.dip_iterations),
                     std::to_string(result.oracle_queries),
                     std::to_string(result.solver_stats.conflicts),
                     Table::fmt(seconds, 3), exact ? "yes" : "NO"});
    }
  }
  reporter.print(std::cout, table);
  reporter.note("workloads", static_cast<double>(workloads.size()));
  reporter.note("total_dips", static_cast<double>(total_dips));
  reporter.note("portfolio_workers",
                static_cast<double>(attack_config.portfolio_workers));

  std::cout
      << "\nObservations to compare with the literature: DIP counts stay\n"
      << "far below 2^inputs (the attack is exact learning with chosen\n"
      << "queries, not coupon collection), and the comparator — a point\n"
      << "function — needs disproportionately many DIPs for its size,\n"
      << "which is precisely the weakness AppSAT [5] exploits (see\n"
      << "bench_appsat). The 80/128-bit adder keys fall in the same few\n"
      << "DIPs as the 8-bit ones: key count alone is no security metric.\n";
  return reporter.finish();
}
