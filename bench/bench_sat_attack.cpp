// Demo II-A: the oracle-guided SAT attack on combinational logic locking.
//
// For each (circuit, key size): run the full DIP loop, report iterations,
// oracle queries, solver conflicts, wall time, and verify the recovered key
// is *functionally exact* (SAT-based equivalence check). The point the
// paper takes from [4]/[5]: with membership-query access (DIPs are chosen
// inputs), locking reduces to exact learning and falls in minutes —
// "random examples only" adversary models drastically understate this.
//
// The smoke tier deliberately includes an 80-bit key (adder32): the CDCL
// arena solver plus the diversified portfolio makes keys an order of
// magnitude past the seed's 8-bit smoke ceiling routine, and the committed
// baseline pins that down. Per-attack wall time feeds the
// attack.sat_attack.seconds histogram so compare_bench.py (diff and
// --trend) tracks the p50 across snapshots.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "attack/sat_attack.hpp"
#include "circuit/generator.hpp"
#include "core/experiment.hpp"
#include "lock/combinational.hpp"
#include "obs/bench_reporter.hpp"
#include "obs/metrics.hpp"
#include "store/checkpoint.hpp"
#include "store/observation_journal.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using attack::CircuitOracle;
using circuit::Netlist;
using lock::LockedCircuit;
using support::Rng;
using support::Table;

struct Workload {
  std::string name;
  Netlist netlist;
};

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("sat_attack", argc, argv);

  // Crash-safe sweep (--checkpoint/--resume): in-flight attacks journal
  // their DIP observations (resume replays them — same key, DIPs and
  // conflicts, no repeated oracle queries); finished cells store their full
  // result row, including the measured seconds, and are not re-run.
  std::unique_ptr<store::CheckpointSession> session;
  if (reporter.checkpoint_enabled()) {
    store::install_termination_handler();
    try {
      session = std::make_unique<store::CheckpointSession>(
          reporter.checkpoint_path(), 7,
          std::string("sat_attack.v1.smoke=") + (reporter.smoke() ? "1" : "0"),
          reporter.resume());
    } catch (const support::snapshot::SnapshotError& error) {
      std::cerr << "bench_sat_attack: unusable checkpoint path "
                << reporter.checkpoint_path() << ": " << error.what() << "\n";
      return 1;
    }
  }

  std::cout << "== SAT attack on XOR/XNOR-locked circuits ==\n\n";

  Rng gen_rng(7);
  std::vector<Workload> workloads;
  workloads.push_back({"c17", circuit::c17()});
  workloads.push_back({"adder8 (ripple)", circuit::ripple_carry_adder(8)});
  workloads.push_back({"adder32 (ripple)", circuit::ripple_carry_adder(32)});
  if (!reporter.smoke()) {
    workloads.push_back({"comparator8", circuit::equality_comparator(8)});
    {
      circuit::RandomCircuitConfig config;
      config.inputs = 12;
      config.gates = 120;
      config.outputs = 4;
      workloads.push_back(
          {"rand12x120", circuit::random_circuit(config, gen_rng)});
    }
    {
      circuit::RandomCircuitConfig config;
      config.inputs = 16;
      config.gates = 250;
      config.outputs = 6;
      workloads.push_back(
          {"rand16x250", circuit::random_circuit(config, gen_rng)});
    }
  }
  const std::vector<std::size_t> key_sweep =
      reporter.smoke() ? std::vector<std::size_t>{4, 8, 80}
                       : std::vector<std::size_t>{4, 8, 16, 32, 80, 128};

  attack::SatAttackConfig attack_config;
  attack_config.portfolio_workers = 4;

  auto& attack_seconds =
      obs::MetricsRegistry::global().histogram("attack.sat_attack.seconds");

  std::size_t total_dips = 0;
  Table table({"circuit", "inputs", "gates", "key bits", "DIPs",
               "oracle queries", "solver conflicts", "time [s]",
               "exact?"});
  std::size_t cell_index = 0;
  for (const auto& workload : workloads) {
    const std::size_t max_key = std::min<std::size_t>(
        pitfalls::lock::lockable_gate_count(workload.netlist), 128);
    for (std::size_t key_bits : key_sweep) {
      if (key_bits > max_key) continue;
      const std::string cell = "cell." + std::to_string(cell_index++);
      Rng lock_rng(1000 + key_bits);
      const LockedCircuit locked =
          lock::lock_random_xor(workload.netlist, key_bits, lock_rng);

      attack::SatAttackResult result;
      double seconds = 0.0;
      bool exact = false;
      if (session != nullptr && session->has_section(cell + ".result")) {
        auto r = session->reader(cell + ".result");
        result.key = store::get_bitvec(r);
        result.dip_iterations = static_cast<std::size_t>(r.u64());
        result.oracle_queries = static_cast<std::size_t>(r.u64());
        result.solver_stats.conflicts = r.u64();
        result.success = r.u8() != 0;
        exact = r.u8() != 0;
        seconds = r.f64();
      } else {
        CircuitOracle oracle = CircuitOracle::from_netlist(workload.netlist);
        store::AttackObservationJournal journal(session.get(), cell + ".log");
        attack_config.journal = &journal;

        core::Stopwatch watch;
        try {
          result = attack::sat_attack(locked, oracle, attack_config);
        } catch (const store::ReplayDivergenceError&) {
          // Stale journal (config/code drift): drop it, run the cell clean.
          session->remove_section(cell + ".log");
          CircuitOracle retry_oracle =
              CircuitOracle::from_netlist(workload.netlist);
          store::AttackObservationJournal clean_journal(session.get(),
                                                        cell + ".log");
          attack_config.journal = &clean_journal;
          result = attack::sat_attack(locked, retry_oracle, attack_config);
        }
        seconds = watch.seconds();

        exact = result.success &&
                attack::keys_equivalent(workload.netlist, locked, result.key);
        if (session != nullptr) {
          auto& w = session->reset_section(cell + ".result");
          store::put_bitvec(w, result.key);
          w.u64(result.dip_iterations);
          w.u64(result.oracle_queries);
          w.u64(result.solver_stats.conflicts);
          w.u8(result.success ? 1 : 0);
          w.u8(exact ? 1 : 0);
          w.f64(seconds);
          session->remove_section(cell + ".log");
          session->flush();
        }
      }
      attack_seconds.observe(seconds);
      total_dips += result.dip_iterations;
      table.add_row({workload.name,
                     std::to_string(workload.netlist.num_inputs()),
                     std::to_string(workload.netlist.logic_gate_count()),
                     std::to_string(key_bits),
                     std::to_string(result.dip_iterations),
                     std::to_string(result.oracle_queries),
                     std::to_string(result.solver_stats.conflicts),
                     Table::fmt(seconds, 3), exact ? "yes" : "NO"});
      if (session != nullptr && store::termination_requested()) {
        std::cerr << "bench_sat_attack: termination requested; checkpoint "
                     "flushed, resume with --resume\n";
        std::exit(143);
      }
    }
  }
  reporter.print(std::cout, table);
  reporter.note("workloads", static_cast<double>(workloads.size()));
  reporter.note("total_dips", static_cast<double>(total_dips));
  reporter.note("portfolio_workers",
                static_cast<double>(attack_config.portfolio_workers));

  std::cout
      << "\nObservations to compare with the literature: DIP counts stay\n"
      << "far below 2^inputs (the attack is exact learning with chosen\n"
      << "queries, not coupon collection), and the comparator — a point\n"
      << "function — needs disproportionately many DIPs for its size,\n"
      << "which is precisely the weakness AppSAT [5] exploits (see\n"
      << "bench_appsat). The 80/128-bit adder keys fall in the same few\n"
      << "DIPs as the 8-bit ones: key count alone is no security metric.\n";
  return reporter.finish();
}
