// Section VI as an executable: audit the paper's four case-study claims
// against the realistic hardware attacker and print every pitfall finding.
#include <iostream>

#include "core/pitfalls.hpp"
#include "support/table.hpp"

int main() {
  using namespace pitfalls::core;
  using pitfalls::support::Table;

  std::cout << "== Pitfall audit of published ML-based security claims ==\n\n";

  const AdversaryModel attacker = realistic_hardware_attacker();
  std::cout << "Attacker model: " << attacker.describe() << "\n\n";

  const PitfallAuditor auditor;
  const SecurityClaim cases[] = {
      claims::ganji2015_xor_bound(),
      claims::shamsi2019_impossibility(),
      claims::appsat2017_online_model(),
      claims::xu2015_br_ltf(),
  };

  Table table({"source", "primitive", "pitfall", "severity"});
  for (const auto& claim : cases) {
    const auto findings = auditor.audit(claim, attacker);
    if (findings.empty()) {
      table.add_row({claim.source, claim.primitive, "(none)", "-"});
      continue;
    }
    for (const auto& finding : findings)
      table.add_row({claim.source, claim.primitive, to_string(finding.kind),
                     to_string(finding.severity)});
  }
  table.print(std::cout);

  std::cout << "\nDetailed findings:\n";
  for (const auto& claim : cases) {
    std::cout << "\n" << claim.source << " — " << claim.statement << "\n"
              << "  claim's model: " << claim.model.describe() << "\n";
    const auto findings = auditor.audit(claim, attacker);
    if (findings.empty()) {
      std::cout << "  audit: clean — the claim already assumes the strong "
                   "attacker.\n";
      continue;
    }
    for (const auto& finding : findings)
      std::cout << "  [" << to_string(finding.severity) << "] "
                << to_string(finding.kind) << ": " << finding.explanation
                << "\n";
  }
  return 0;
}
