// Section VI as an executable: audit the paper's four case-study claims
// against the realistic hardware attacker and print every pitfall finding.
//
// The second half runs the audit empirically: the textbook "arbiter PUFs
// are learnable" claim is re-evaluated through the fault-injection oracle
// layer (ml/robust) over an η × budget grid. Each cell shows the conclusion
// an evaluator would publish if that cell happened to be their lab setup —
// making the paper's point that a security verdict without its adversary
// model (noise rate, query budget) attached is not reproducible.
#include <iostream>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "core/pitfalls.hpp"
#include "ml/features.hpp"
#include "ml/robust/learners.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/arbiter.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using namespace pitfalls::ml::robust;
using pitfalls::support::Rng;
using pitfalls::support::Table;

double ideal_accuracy(const boolfn::BooleanFunction& hypothesis,
                      const boolfn::BooleanFunction& target) {
  return 1.0 - boolfn::TruthTable::from_function(hypothesis)
                   .distance(boolfn::TruthTable::from_function(target));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pitfalls::core;
  obs::BenchReporter reporter("pitfall_audit", argc, argv);
  const bool smoke = reporter.smoke();

  std::cout << "== Pitfall audit of published ML-based security claims ==\n\n";

  const AdversaryModel attacker = realistic_hardware_attacker();
  std::cout << "Attacker model: " << attacker.describe() << "\n\n";

  const PitfallAuditor auditor;
  const SecurityClaim cases[] = {
      claims::ganji2015_xor_bound(),
      claims::shamsi2019_impossibility(),
      claims::appsat2017_online_model(),
      claims::xu2015_br_ltf(),
  };

  Table table({"source", "primitive", "pitfall", "severity"});
  for (const auto& claim : cases) {
    const auto findings = auditor.audit(claim, attacker);
    if (findings.empty()) {
      table.add_row({claim.source, claim.primitive, "(none)", "-"});
      continue;
    }
    for (const auto& finding : findings)
      table.add_row({claim.source, claim.primitive, to_string(finding.kind),
                     to_string(finding.severity)});
  }
  reporter.print(std::cout, table, "-- static audit findings --");

  std::cout << "\nDetailed findings:\n";
  for (const auto& claim : cases) {
    std::cout << "\n" << claim.source << " — " << claim.statement << "\n"
              << "  claim's model: " << claim.model.describe() << "\n";
    const auto findings = auditor.audit(claim, attacker);
    if (findings.empty()) {
      std::cout << "  audit: clean — the claim already assumes the strong "
                   "attacker.\n";
      continue;
    }
    for (const auto& finding : findings)
      std::cout << "  [" << to_string(finding.severity) << "] "
                << to_string(finding.kind) << ": " << finding.explanation
                << "\n";
  }

  // ---- empirical audit: the same claim under eta x budget adversaries ----

  std::cout << "\n== Empirical audit: \"arbiter PUFs are learnable\" under "
               "realistic channels ==\n\n";

  const std::size_t n = smoke ? 10 : 14;
  Rng setup(3);
  const puf::ArbiterPuf device(n, 0.0, setup);
  // Audit in the paper's feature-space coordinates, where the arbiter PUF
  // is exactly an LTF — so both learners genuinely break the ideal model
  // and the grid isolates the adversary-model axes.
  const boolfn::Ltf target = device.as_feature_space_ltf();
  const std::vector<double> etas =
      smoke ? std::vector<double>{0.0, 0.25}
            : std::vector<double>{0.0, 0.1, 0.25, 0.4};
  const std::vector<std::size_t> budgets =
      smoke ? std::vector<std::size_t>{150, 2500}
            : std::vector<std::size_t>{500, 2500, 10000};
  reporter.note("n", static_cast<double>(n));

  Table grid({"eta", "budget", "learner", "status", "ideal acc [%]",
              "published verdict"});
  for (const double eta : etas) {
    for (const std::size_t budget : budgets) {
      FaultConfig fc;
      fc.flip_rate = eta;
      fc.query_budget = budget;
      RobustLearnConfig config;
      config.train_queries = smoke ? 1500 : 8000;
      config.holdout_queries = smoke ? 200 : 800;

      const auto add = [&](const char* name, double ideal,
                           LearnStatus status) {
        grid.add_row({Table::fmt(eta, 2), std::to_string(budget), name,
                      to_string(status), Table::fmt(100.0 * ideal, 1),
                      ideal >= 0.9 ? "PUF broken" : "PUF secure"});
      };
      {
        ml::FunctionMembershipOracle inner(target);
        FaultyMembershipOracle oracle(inner, fc, 100 + budget);
        Rng rng(11);
        const auto outcome =
            robust_perceptron(oracle, ml::pm_with_bias, config, rng);
        add("perceptron",
            outcome.best_hypothesis
                ? ideal_accuracy(*outcome.best_hypothesis, target)
                : 0.5,
            outcome.status);
      }
      {
        ml::FunctionMembershipOracle inner(target);
        FaultyMembershipOracle oracle(inner, fc, 200 + budget);
        Rng rng(13);
        const auto outcome = robust_chow(oracle, config, rng);
        add("chow",
            outcome.best_hypothesis
                ? ideal_accuracy(*outcome.best_hypothesis, target)
                : 0.5,
            outcome.status);
      }
    }
  }
  reporter.print(std::cout, grid,
                 "-- verdict grid: same PUF, different adversary models --");

  std::cout
      << "\nEvery row models the SAME device. The verdict column changes\n"
      << "only because the adversary model does — noise rate eta and the\n"
      << "interface's query budget. A published claim that omits those two\n"
      << "numbers (the paper's Section VI pitfall) is a claim about an\n"
      << "unstated row of this table.\n";
  return reporter.finish();
}
