// Schema validator for the BENCH_*.json files written by obs::BenchReporter.
//
// Usage: check_bench_json <file.json> [<file.json> ...]
// Exits 0 when every file parses and matches schema v1, 1 otherwise, with
// one diagnostic line per violation. Used by the bench_smoke ctest target
// (scripts/run_benches.sh) and usable standalone against any BENCH_*.json.
#include <iostream>
#include <string>

#include "obs/json.hpp"
#include "support/snapshot/snapshot.hpp"

namespace {

using pitfalls::obs::JsonValue;

int g_errors = 0;

void fail(const std::string& file, const std::string& what) {
  std::cerr << file << ": " << what << "\n";
  ++g_errors;
}

const JsonValue* require_member(const std::string& file, const JsonValue& doc,
                                const char* name, JsonValue::Kind kind,
                                const char* kind_name) {
  const JsonValue* member = doc.find(name);
  if (member == nullptr) {
    fail(file, std::string("missing member \"") + name + "\"");
    return nullptr;
  }
  if (member->kind != kind) {
    fail(file, std::string("member \"") + name + "\" is not " + kind_name);
    return nullptr;
  }
  return member;
}

void check_tables(const std::string& file, const JsonValue& tables) {
  if (tables.items.empty()) {
    fail(file, "\"tables\" is empty — every bench prints at least one table");
    return;
  }
  for (std::size_t t = 0; t < tables.items.size(); ++t) {
    const JsonValue& table = tables.items[t];
    const std::string where = "tables[" + std::to_string(t) + "]";
    if (!table.is_object()) {
      fail(file, where + " is not an object");
      continue;
    }
    const JsonValue* title = table.find("title");
    if (title == nullptr || !title->is_string())
      fail(file, where + ".title missing or not a string");
    const JsonValue* headers = table.find("headers");
    const JsonValue* rows = table.find("rows");
    if (headers == nullptr || !headers->is_array() || headers->items.empty()) {
      fail(file, where + ".headers missing, not an array, or empty");
      continue;
    }
    if (rows == nullptr || !rows->is_array()) {
      fail(file, where + ".rows missing or not an array");
      continue;
    }
    for (std::size_t r = 0; r < rows->items.size(); ++r) {
      const JsonValue& row = rows->items[r];
      if (!row.is_array() || row.items.size() != headers->items.size()) {
        fail(file, where + ".rows[" + std::to_string(r) +
                       "] width does not match headers");
        continue;
      }
      for (const JsonValue& cell : row.items)
        if (!cell.is_string()) {
          fail(file, where + ".rows[" + std::to_string(r) +
                         "] has a non-string cell");
          break;
        }
    }
  }
}

void check_metrics(const std::string& file, const JsonValue& metrics) {
  const JsonValue* counters = require_member(file, metrics, "counters",
                                             JsonValue::Kind::Object,
                                             "an object");
  require_member(file, metrics, "gauges", JsonValue::Kind::Object,
                 "an object");
  const JsonValue* histograms = require_member(
      file, metrics, "histograms", JsonValue::Kind::Object, "an object");
  if (counters != nullptr) {
    for (const auto& [name, value] : counters->members)
      if (!value.is_number())
        fail(file, "counter \"" + name + "\" is not a number");
    // finish() pre-registers the oracle counters so every bench JSON shares
    // this core key even when the bench never touches an oracle.
    if (counters->find("oracle.membership_queries") == nullptr)
      fail(file, "counters lack \"oracle.membership_queries\"");
  }
  if (histograms != nullptr) {
    for (const auto& [name, value] : histograms->members) {
      if (!value.is_object()) {
        fail(file, "histogram \"" + name + "\" is not an object");
        continue;
      }
      for (const char* field :
           {"count", "total", "mean", "min", "p50", "p95", "max"}) {
        const JsonValue* member = value.find(field);
        if (member == nullptr || !(member->is_number() || member->is_string()))
          fail(file, "histogram \"" + name + "\" lacks numeric \"" +
                         field + "\"");
      }
    }
  }
}

void check_trace(const std::string& file, const JsonValue& trace) {
  for (std::size_t i = 0; i < trace.items.size(); ++i) {
    const JsonValue& event = trace.items[i];
    const std::string where = "trace[" + std::to_string(i) + "]";
    if (!event.is_object()) {
      fail(file, where + " is not an object");
      continue;
    }
    for (const char* field : {"id", "parent", "depth", "start_seconds",
                              "duration_seconds"}) {
      const JsonValue* member = event.find(field);
      if (member == nullptr || !member->is_number())
        fail(file, where + " lacks numeric \"" + std::string(field) + "\"");
    }
    const JsonValue* name = event.find("name");
    if (name == nullptr || !name->is_string())
      fail(file, where + " lacks string \"name\"");
  }
}

void check_file(const std::string& file) {
  std::string text;
  try {
    text = pitfalls::support::snapshot::read_file_bytes(file);
  } catch (const pitfalls::support::snapshot::SnapshotError&) {
    fail(file, "cannot open");
    return;
  }

  JsonValue doc;
  try {
    doc = JsonValue::parse(text);
  } catch (const std::exception& e) {
    fail(file, std::string("parse error: ") + e.what());
    return;
  }
  if (!doc.is_object()) {
    fail(file, "root is not an object");
    return;
  }

  const JsonValue* version =
      require_member(file, doc, "schema_version", JsonValue::Kind::Number,
                     "a number");
  if (version != nullptr && version->number_value != 1.0)
    fail(file, "schema_version is not 1");

  const JsonValue* bench =
      require_member(file, doc, "bench", JsonValue::Kind::String, "a string");
  if (bench != nullptr && bench->string_value.empty())
    fail(file, "\"bench\" is empty");

  require_member(file, doc, "smoke", JsonValue::Kind::Bool, "a bool");

  const JsonValue* wall = require_member(file, doc, "wall_seconds",
                                         JsonValue::Kind::Number, "a number");
  if (wall != nullptr && wall->number_value < 0.0)
    fail(file, "wall_seconds is negative");

  require_member(file, doc, "notes", JsonValue::Kind::Object, "an object");

  const JsonValue* tables =
      require_member(file, doc, "tables", JsonValue::Kind::Array, "an array");
  if (tables != nullptr) check_tables(file, *tables);

  const JsonValue* metrics = require_member(file, doc, "metrics",
                                            JsonValue::Kind::Object,
                                            "an object");
  if (metrics != nullptr) check_metrics(file, *metrics);

  const JsonValue* trace =
      require_member(file, doc, "trace", JsonValue::Kind::Array, "an array");
  if (trace != nullptr) check_trace(file, *trace);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: check_bench_json <file.json> [<file.json> ...]\n";
    return 2;
  }
  for (int i = 1; i < argc; ++i) check_file(argv[i]);
  if (g_errors != 0) {
    std::cerr << g_errors << " schema violation(s)\n";
    return 1;
  }
  return 0;
}
