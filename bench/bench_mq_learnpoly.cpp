// Demo IV-B (Corollary 2): membership queries make sparse-polynomial
// targets — and XORs of near-junta arbiter chains — exactly learnable in
// polynomial time.
//
// Three measurements:
//   1. Query count of the bounded-degree ANF interpolator vs n at fixed
//      degree: the poly(n) scaling the corollary promises.
//   2. The Schapire–Sellie-style MQ+EQ learner on random sparse
//      polynomials: exact recovery with query counts driven by sparsity.
//   3. XORs of weight-decaying ("near-junta") arbiter chains learned to
//      high accuracy — plus the control the paper glosses over: for
//      *regular* (i.i.d. Gaussian) chains, the small-junta premise fails
//      and accuracy drops, a pitfall inside Corollary 2's own premise.
#include <iostream>
#include <vector>

#include "boolfn/anf.hpp"
#include "ml/anf_learner.hpp"
#include "ml/junta.hpp"
#include "ml/oracle.hpp"
#include "obs/bench_reporter.hpp"
#include "puf/xor_arbiter.hpp"
#include "support/combinatorics.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace pitfalls;
using boolfn::AnfPolynomial;
using puf::ArbiterPuf;
using puf::XorArbiterPuf;
using support::BitVec;
using support::Rng;
using support::Table;

XorArbiterPuf make_xor_puf(std::size_t n, std::size_t k, double decay,
                           Rng& rng) {
  std::vector<ArbiterPuf> chains;
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> w(n + 1);
    double scale = 1.0;
    for (std::size_t i = 0; i <= n; ++i) {
      w[i] = scale * rng.gaussian();
      scale *= decay;
    }
    w[n] *= 0.25;  // modest bias term
    chains.emplace_back(std::move(w), 0.0);
  }
  return XorArbiterPuf(std::move(chains));
}

double sampled_accuracy(const boolfn::BooleanFunction& a,
                        const boolfn::BooleanFunction& b, std::size_t m,
                        Rng& rng) {
  std::size_t agree = 0;
  for (std::size_t i = 0; i < m; ++i) {
    BitVec x(a.num_vars());
    for (std::size_t bit = 0; bit < x.size(); ++bit) x.set(bit, rng.coin());
    if (a.eval_pm(x) == b.eval_pm(x)) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(m);
}

}  // namespace

int main(int argc, char** argv) {
  pitfalls::obs::BenchReporter reporter("mq_learnpoly", argc, argv);

  std::cout << "== Corollary 2: learning with membership queries ==\n\n";

  const bool smoke = reporter.smoke();
  const std::vector<std::size_t> interpolation_ns =
      smoke ? std::vector<std::size_t>{16}
            : std::vector<std::size_t>{16, 32, 64};
  const std::vector<std::size_t> interpolation_rs =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 3};
  const std::vector<std::size_t> sparsities =
      smoke ? std::vector<std::size_t>{2, 8}
            : std::vector<std::size_t>{2, 8, 32};
  const std::vector<std::size_t> sparse_degrees =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  const std::vector<std::size_t> xor_ks =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 3};
  const std::size_t accuracy_samples = smoke ? 1000 : 6000;

  {
    Table table({"n", "degree r", "MQ count = sum C(n,i)", "exact?"});
    Rng rng(1);
    for (const std::size_t n : interpolation_ns) {
      for (const std::size_t r : interpolation_rs) {
        const AnfPolynomial target = AnfPolynomial::random(n, 3 * n, r, rng);
        ml::FunctionMembershipOracle oracle(target);
        const auto result = ml::learn_anf_bounded_degree(oracle, r);
        table.add_row({std::to_string(n), std::to_string(r),
                       std::to_string(result.membership_queries),
                       result.polynomial == target ? "yes" : "NO"});
      }
    }
    reporter.print(
        std::cout, table,
        "-- bounded-degree ANF interpolation: poly(n) MQs, exact --");
  }

  std::cout << "\n";

  {
    Table table({"sparsity s", "degree", "MQs", "EQs", "exact?"});
    Rng rng(2);
    for (const std::size_t s : sparsities) {
      for (const std::size_t d : sparse_degrees) {
        const AnfPolynomial target = AnfPolynomial::random(16, s, d, rng);
        ml::FunctionMembershipOracle mq(target);
        ml::ExhaustiveEquivalenceOracle eq(target);
        const auto result = ml::SparsePolyLearner().learn(mq, eq);
        table.add_row({std::to_string(s), std::to_string(d),
                       std::to_string(result.membership_queries),
                       std::to_string(result.equivalence_queries),
                       result.exact && result.hypothesis == target ? "yes"
                                                                   : "NO"});
      }
    }
    reporter.print(std::cout, table,
                   "-- Schapire–Sellie-style MQ+EQ learner (n = 16) --");
  }

  std::cout << "\n";

  {
    Table table({"chain weights", "k", "ANF degree", "MQs", "accuracy [%]"});
    const std::size_t n = 14;
    for (const bool decaying : {true, false}) {
      for (const std::size_t k : xor_ks) {
        Rng rng(decaying ? 300 + k : 400 + k);
        const XorArbiterPuf puf =
            make_xor_puf(n, k, decaying ? 0.45 : 1.0, rng);
        const auto target = puf.feature_space_view();
        ml::FunctionMembershipOracle oracle(target);
        const auto result = ml::learn_anf_bounded_degree(oracle, 4);
        Rng eval(500 + k);
        const double acc =
            sampled_accuracy(result.polynomial, target, accuracy_samples, eval);
        table.add_row({decaying ? "decaying (near-junta)" : "regular (iid)",
                       std::to_string(k), "4",
                       std::to_string(result.membership_queries),
                       Table::fmt(100.0 * acc, 1)});
      }
    }
    reporter.print(
        std::cout, table,
        "-- XOR arbiter chains in feature space, degree-4 interpolation --");
  }

  std::cout
      << "\nReading guide: Corollary 2's chain LTF -> small junta -> sparse\n"
      << "polynomial argument holds for weight-decaying chains (high\n"
      << "accuracy above) but NOT for regular i.i.d. Gaussian chains —\n"
      << "Bourgain's theorem gives small juntas only when the LTF is far\n"
      << "from regular. Membership queries are powerful, but the premise\n"
      << "must be checked against the device, which is the paper's own\n"
      << "representation-pitfall applied to its Corollary 2.\n";
  return reporter.finish();
}
