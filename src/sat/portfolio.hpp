// Deterministic solver portfolio: K diversified CDCL configurations over
// one broadcast clause stream, raced in fixed conflict-budget rounds on the
// support/parallel pool.
//
// Determinism contract (the same one DESIGN.md §8 proves for the PUF
// plane): the number of workers K and every worker's SolverConfig are pure
// functions of (PortfolioConfig, worker index) — never of the thread count
// or of which pool thread runs a worker. A solve proceeds in rounds; in
// round r EVERY undecided worker runs solve_limited with the same budget
// B(r), and the winner is the lowest-indexed worker that decides in the
// earliest round. Workers that would have "finished first" on a faster
// thread still run their full budget, so the chosen winner, its model, and
// every per-worker counter are byte-identical for any PITFALLS_THREADS —
// the pool only decides who executes a worker's round, not what it
// computes.
#pragma once

#include <cstddef>
#include <vector>

#include "sat/solver.hpp"

namespace pitfalls::sat {

struct PortfolioConfig {
  /// Worker count. Fixed by the caller — NEVER derived from the pool size.
  std::size_t workers = 1;
  /// Diversification seed; worker w's config derives from (seed, w).
  std::uint64_t seed = 0x7e1f0110ULL;
  /// Conflict budget of round 0; round r gets base << min(r, 14).
  std::uint64_t round_base_conflicts = 2048;
  /// Baseline configuration; worker 0 runs it verbatim.
  SolverConfig base;
};

/// Derive worker w's configuration: worker 0 is the reference config, the
/// others perturb polarity, decay, restart cadence and random-decision
/// noise as a pure function of (config.seed, w).
SolverConfig diversified_config(const PortfolioConfig& config, std::size_t w);

class PortfolioSolver : public ClauseSink {
 public:
  explicit PortfolioSolver(PortfolioConfig config = {});

  Var new_var() override;
  bool add_clause(std::vector<Lit> literals) override;
  std::size_t num_vars() const override;

  /// Race the workers (see header comment). With one worker this is a
  /// plain Solver::solve and no parallel region is entered.
  SolveResult solve() { return solve(std::vector<Lit>{}); }
  SolveResult solve(const std::vector<Lit>& assumptions);

  /// Model of the winning worker after kSat.
  bool model_value(Var v) const;

  /// Stats summed across workers (total work, thread-count invariant).
  SolverStats stats() const;

  std::size_t num_workers() const { return workers_.size(); }
  /// Winner of the most recent solve() call.
  std::size_t last_winner() const { return last_winner_; }
  std::size_t num_clauses() const { return workers_[0].num_clauses(); }
  const Solver& worker(std::size_t w) const { return workers_[w]; }

 private:
  PortfolioConfig config_;
  std::vector<Solver> workers_;
  std::size_t last_winner_ = 0;
};

}  // namespace pitfalls::sat
