// DIMACS CNF interchange: parse instances into a Solver and serialise a
// clause list back out. Standard substrate for comparing the built-in CDCL
// solver against external tools and for archiving attack instances.
#pragma once

#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace pitfalls::sat {

struct DimacsInstance {
  std::size_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parse DIMACS text ("c" comments, "p cnf V C" header, zero-terminated
/// clauses). Throws std::invalid_argument on malformed input, literals out
/// of range, or a clause count that contradicts the header.
DimacsInstance read_dimacs(const std::string& text);

/// Serialise an instance to DIMACS text.
std::string write_dimacs(const DimacsInstance& instance);

/// Load an instance into a fresh region of `solver` (allocates
/// instance.num_vars variables); returns the variable handles in order.
/// Accepts any ClauseSink, so instances load into a PortfolioSolver too.
std::vector<Var> load_into(ClauseSink& solver, const DimacsInstance& instance);

}  // namespace pitfalls::sat
