// Tseitin encoding of combinational netlists into CNF — the bridge between
// the circuit substrate and the SAT attack.
//
// Each gate gets a fresh solver variable constrained to equal its function
// of the fanin variables. Multiple copies of a circuit can share input
// variables (the attack encodes two key-copies over one input vector) by
// passing pre-allocated variables for the primary inputs.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "sat/solver.hpp"

namespace pitfalls::sat {

struct CircuitEncoding {
  std::vector<Var> gate_vars;    // one per netlist gate
  std::vector<Var> input_vars;   // per primary input, in input order
  std::vector<Var> output_vars;  // per primary output, in output order
};

/// Encode `netlist` into `sink` (a Solver or a PortfolioSolver). If
/// `shared_inputs` is non-empty it must contain one existing variable per
/// primary input; otherwise fresh input variables are allocated.
CircuitEncoding encode_netlist(ClauseSink& sink,
                               const circuit::Netlist& netlist,
                               const std::vector<Var>& shared_inputs = {});

/// Add clauses forcing at least one of the given output pairs to differ
/// (a "miter": XOR the pairs and OR the XORs). Returns the miter variable
/// that was constrained true.
Var add_miter(ClauseSink& sink, const std::vector<Var>& outputs_a,
              const std::vector<Var>& outputs_b);

/// Like add_miter, but leave the miter variable FREE: m is biconditionally
/// tied to "some output pair differs" without asserting it. Solving under
/// the assumption pos(m) searches for a difference; dropping the
/// assumption lets the same incrementally-grown encoding answer other
/// queries (key extraction, equivalence) — this is what lets the attacks
/// keep one solver instead of re-encoding netlists per call.
Var add_conditional_miter(ClauseSink& sink, const std::vector<Var>& outputs_a,
                          const std::vector<Var>& outputs_b);

/// Constrain variable `v` to the given constant.
void fix_var(ClauseSink& sink, Var v, bool value);

/// Constrain two variables to be equal.
void equate(ClauseSink& sink, Var a, Var b);

}  // namespace pitfalls::sat
