// CDCL SAT solver built from scratch for the oracle-guided deobfuscation
// attacks (Section II-A of the paper: the SAT attack of [4]/[5] reduces
// logic-locking security to satisfiability).
//
// Feature set (rebuilt from the 354-line seed engine for order-of-magnitude
// larger locking instances):
//  - flat clause arena (ClauseArena, 32-bit refs) instead of per-clause
//    vectors, with lazy deletion and level-0 compaction;
//  - two-watched-literal propagation with blocker literals and
//    special-cased binary-clause watch lists;
//  - first-UIP conflict analysis with self-subsumption minimisation and
//    LBD (literal block distance) stamping of learned clauses;
//  - glucose-style clause-database reduction keeping glue clauses and
//    every locked (reason) clause;
//  - VSIDS decision heuristic on an indexed max-heap with phase saving;
//  - Luby restart schedule with an LBD-based restart *block*: restarts are
//    postponed while recently learned clauses are markedly better (lower
//    LBD) than the historical average;
//  - assumptions and conflict-budgeted solving (solve/solve_limited), so
//    the attacks grow one incremental encoding instead of re-encoding
//    netlists per query, and the portfolio can timeslice workers
//    deterministically.
//
// Everything is deterministic: given the same clause stream, assumptions
// and SolverConfig, every run takes the same search path on every machine.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/clause_arena.hpp"
#include "sat/literal.hpp"

namespace pitfalls::sat {

enum class SolveResult {
  kSat,
  kUnsat,
  kUnknown,  // conflict budget exhausted (solve_limited only)
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;  // total literals across learned clauses
  std::uint64_t minimized_literals = 0;  // removed by clause minimisation
  std::uint64_t restarts = 0;
  std::uint64_t blocked_restarts = 0;  // Luby points skipped by the LBD block
  std::uint64_t db_reductions = 0;     // reduce-DB passes
  std::uint64_t deleted_clauses = 0;   // learned clauses dropped by reduce-DB
  std::uint64_t arena_collections = 0;   // level-0 arena compactions
  std::uint64_t max_decision_level = 0;  // deepest decision level reached
};

/// Search-shaping knobs. The defaults are the reference configuration; the
/// portfolio derives diversified variants as a pure function of the worker
/// index (never of thread identity).
struct SolverConfig {
  double var_decay = 0.95;         // VSIDS activity decay per conflict
  std::uint64_t luby_base = 64;    // conflicts per Luby unit
  bool initial_phase = false;      // first decision polarity per variable
  double random_decision_freq = 0.0;  // fraction of random decisions
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  // random-decision stream
  std::uint64_t reduce_base = 2000;      // live learned clauses at first reduce
  std::uint64_t reduce_increment = 512;  // growth of the limit per reduce
  /// Block a due restart while the recent-window LBD average is below
  /// margin * historical average (the solver is currently learning
  /// unusually good clauses). 0 disables blocking.
  double restart_block_margin = 0.8;
};

/// Anything that accepts fresh variables and clauses. encode_netlist and
/// the attack plumbing target this interface so a single Solver and the
/// PortfolioSolver (which broadcasts to K diversified solvers) are
/// interchangeable encoding sinks.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Allocate a fresh variable; returns its index.
  virtual Var new_var() = 0;

  /// Add a clause over existing variables. Returns false if the clause is
  /// trivially unsatisfiable at the root (empty after simplification) —
  /// the sink is then permanently UNSAT.
  virtual bool add_clause(std::vector<Lit> literals) = 0;

  virtual std::size_t num_vars() const = 0;

  /// Convenience forms.
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }
};

class Solver : public ClauseSink {
 public:
  Solver() = default;
  explicit Solver(const SolverConfig& config);

  Var new_var() override;
  std::size_t num_vars() const override { return assigns_.size(); }
  bool add_clause(std::vector<Lit> literals) override;

  /// Solve the current clause set, optionally under assumptions. May be
  /// called repeatedly with clauses added in between; learned clauses are
  /// kept. Assumptions hold for this call only: kUnsat with a non-empty
  /// assumption set means "UNSAT under these assumptions" and the solver
  /// stays usable. Each call mirrors the per-call stat deltas into the
  /// global `sat.solver.*` metrics.
  SolveResult solve() { return solve_limited(0, {}); }
  SolveResult solve(const std::vector<Lit>& assumptions) {
    return solve_limited(0, assumptions);
  }

  /// Like solve(), but give up with kUnknown after `max_conflicts`
  /// conflicts (0 = unlimited). Consecutive budgeted calls resume the
  /// search: learned clauses and activities persist across calls.
  SolveResult solve_limited(std::uint64_t max_conflicts,
                            const std::vector<Lit>& assumptions);

  /// Model access after kSat.
  bool model_value(Var v) const;

  const SolverStats& stats() const { return stats_; }
  const SolverConfig& config() const { return config_; }

  /// Attached (>= 2-literal) clauses currently held, learned included.
  std::size_t num_clauses() const {
    return problem_refs_.size() + learned_refs_.size();
  }

 private:
  enum : std::uint8_t { kUndef = 2 };

  // Watcher for clauses of size >= 3: `blocker` is some literal of the
  // clause; when it is already true the clause is satisfied and the watch
  // walk skips the arena load entirely.
  struct Watcher {
    ClauseRef clause_ref;
    Lit blocker;
  };
  // Binary clauses keep the other literal inline; propagation never
  // touches the arena for them. `clause_ref` backs uniform reasons.
  struct BinaryWatcher {
    Lit other;
    ClauseRef clause_ref;
  };

  /// Indexed max-heap over variable activities; contains() and the
  /// percolations make decisions O(log n) instead of the seed's O(n) scan.
  class VarHeap {
   public:
    bool empty() const { return heap_.empty(); }
    bool contains(Var v) const { return v < pos_.size() && pos_[v] >= 0; }
    void grow(std::size_t vars) {
      pos_.resize(vars, -1);
    }
    void insert(Var v, const std::vector<double>& act);
    Var pop(const std::vector<double>& act);
    void increased(Var v, const std::vector<double>& act);

   private:
    bool before(Var a, Var b, const std::vector<double>& act) const {
      return act[a] > act[b] || (act[a] == act[b] && a < b);
    }
    void up(std::size_t i, const std::vector<double>& act);
    void down(std::size_t i, const std::vector<double>& act);

    std::vector<Var> heap_;
    std::vector<std::int32_t> pos_;  // -1 = not in heap
  };

  bool enqueue(Lit literal, ClauseRef reason);
  ClauseRef propagate();  // returns conflicting ClauseRef or kNoClause
  void analyze(ClauseRef conflict, std::vector<Lit>& learned,
               std::uint32_t& backtrack_level, std::uint32_t& lbd);
  bool literal_redundant(Lit l);
  std::uint32_t compute_lbd(const std::vector<Lit>& literals);
  void record_lbd(std::uint32_t lbd);
  void backtrack(std::uint32_t level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_activities();
  std::uint8_t value_of(Lit literal) const;
  std::uint32_t level_of(Var v) const { return level_[v]; }
  ClauseRef attach_clause(const std::vector<Lit>& literals, bool learned,
                          std::uint32_t lbd);
  void attach_watches(ClauseRef ref);
  bool clause_is_reason(ClauseRef ref) const;
  void reduce_db();
  void collect_garbage();
  bool restart_blocked() const;
  std::uint64_t next_random();  // deterministic per-solver decision stream

  SolverConfig config_;

  // Clause storage. The arena owns the literals; these lists hold the live
  // references (problem clauses and learned clauses separately — reduce-DB
  // only ever scans the learned list).
  ClauseArena arena_;
  std::vector<ClauseRef> problem_refs_;
  std::vector<ClauseRef> learned_refs_;

  std::vector<std::vector<Watcher>> watches_;  // indexed by literal index
  std::vector<std::vector<BinaryWatcher>> binary_watches_;
  std::vector<std::uint8_t> assigns_;  // 0=false 1=true 2=undef
  std::vector<std::uint8_t> saved_phase_;
  std::vector<std::uint32_t> level_;
  std::vector<ClauseRef> reason_;  // ClauseRef or kNoClause
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  VarHeap order_;

  // Conflict-analysis scratch (persists to avoid per-conflict allocation).
  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_buffer_;
  std::vector<std::uint32_t> level_stamp_;
  std::uint32_t stamp_epoch_ = 0;

  // Restart / reduce policy state.
  std::uint64_t luby_index_ = 0;
  double recent_lbd_sum_ = 0.0;
  std::vector<std::uint32_t> recent_lbds_;  // ring, capacity kLbdWindow
  std::size_t recent_lbd_next_ = 0;
  bool recent_lbd_full_ = false;
  double total_lbd_sum_ = 0.0;
  std::uint64_t total_lbd_count_ = 0;
  std::uint64_t reduce_limit_ = 0;
  std::uint64_t random_state_ = 0x9e3779b97f4a7c15ULL;

  bool unsat_at_root_ = false;
  std::vector<std::uint8_t> model_;
  SolverStats stats_;
  std::vector<std::uint32_t> lbd_samples_;  // per-solve, flushed to metrics
};

}  // namespace pitfalls::sat
