// CDCL SAT solver built from scratch for the oracle-guided deobfuscation
// attacks (Section II-A of the paper: the SAT attack of [4]/[5] reduces
// logic-locking security to satisfiability).
//
// Feature set: two-watched-literal propagation, first-UIP conflict
// analysis with clause learning, VSIDS-style activity decision heuristic,
// phase saving, geometric restarts, and incremental clause addition between
// solve() calls (the DIP loop of the SAT attack adds constraints each
// round). No preprocessing — the instances the attack generates are small
// enough that plain CDCL solves them in milliseconds.
#pragma once

#include <cstdint>
#include <vector>

namespace pitfalls::sat {

using Var = std::uint32_t;

/// MiniSat-style literal: 2*var + sign, sign 1 = negated.
class Lit {
 public:
  Lit() = default;
  Lit(Var var, bool negated) : x_(2 * var + (negated ? 1 : 0)) {}

  Var var() const { return x_ >> 1; }
  bool negated() const { return (x_ & 1) != 0; }
  Lit operator~() const {
    Lit flipped;
    flipped.x_ = x_ ^ 1;
    return flipped;
  }
  std::uint32_t index() const { return x_; }
  bool operator==(const Lit& other) const = default;

 private:
  std::uint32_t x_ = 0;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class SolveResult { kSat, kUnsat };

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;  // total literals across learned clauses
  std::uint64_t restarts = 0;
  std::uint64_t max_decision_level = 0;  // deepest decision level reached
};

class Solver {
 public:
  Solver() = default;

  /// Allocate a fresh variable; returns its index.
  Var new_var();

  std::size_t num_vars() const { return assigns_.size(); }

  /// Add a clause over existing variables. Returns false if the clause is
  /// trivially unsatisfiable at the root (empty after simplification) —
  /// the solver is then permanently UNSAT.
  bool add_clause(std::vector<Lit> literals);

  /// Convenience forms.
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve the current clause set. May be called repeatedly with clauses
  /// added in between; learned clauses are kept. Each call mirrors the
  /// per-call stat deltas into the global `sat.solver.*` metrics.
  SolveResult solve();

  /// Model access after kSat.
  bool model_value(Var v) const;

  const SolverStats& stats() const { return stats_; }

  /// Attached (>= 2-literal) clauses currently held, learned included.
  std::size_t num_clauses() const { return clauses_.size(); }

 private:
  enum : std::uint8_t { kUndef = 2 };

  struct Clause {
    std::vector<Lit> literals;
    bool learned = false;
  };

  struct Watcher {
    std::uint32_t clause_index;
  };

  bool enqueue(Lit literal, std::int64_t reason);
  std::int64_t propagate();  // returns conflicting clause index or -1
  void analyze(std::int64_t conflict, std::vector<Lit>& learned,
               std::uint32_t& backtrack_level);
  void backtrack(std::uint32_t level);
  Lit pick_branch();
  void bump_var(Var v);
  void decay_activities();
  std::uint8_t value_of(Lit literal) const;
  std::uint32_t level_of(Var v) const { return level_[v]; }
  void attach(std::uint32_t clause_index);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal index
  std::vector<std::uint8_t> assigns_;          // 0=false 1=true 2=undef
  std::vector<std::uint8_t> saved_phase_;
  std::vector<std::uint32_t> level_;
  std::vector<std::int64_t> reason_;           // clause index or -1
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t propagate_head_ = 0;
  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  bool unsat_at_root_ = false;
  std::vector<std::uint8_t> model_;
  SolverStats stats_;
};

}  // namespace pitfalls::sat
