// SAT variables and literals, shared by the solver core and the clause
// arena. Split out of solver.hpp so the arena can store literals without a
// circular include.
#pragma once

#include <cstdint>

namespace pitfalls::sat {

using Var = std::uint32_t;

/// MiniSat-style literal: 2*var + sign, sign 1 = negated.
class Lit {
 public:
  Lit() = default;
  // Pure value type on the propagation hot path: contracts live at the
  // arena/solver entry points instead.  lint:require-guard-ok
  Lit(Var var, bool negated) : x_(2 * var + (negated ? 1 : 0)) {}

  Var var() const { return x_ >> 1; }
  bool negated() const { return (x_ & 1) != 0; }
  Lit operator~() const { return from_index(x_ ^ 1); }
  std::uint32_t index() const { return x_; }
  /// Rebuild a literal from its index() encoding (arena storage).
  static Lit from_index(std::uint32_t index) {
    Lit l;
    l.x_ = index;
    return l;
  }
  bool operator==(const Lit& other) const = default;

 private:
  std::uint32_t x_ = 0;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

}  // namespace pitfalls::sat
