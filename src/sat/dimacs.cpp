#include "sat/dimacs.hpp"

#include <sstream>

#include "support/require.hpp"

namespace pitfalls::sat {

DimacsInstance read_dimacs(const std::string& text) {
  DimacsInstance instance;
  std::istringstream stream(text);
  std::string line;
  bool header_seen = false;
  std::size_t declared_clauses = 0;
  std::vector<Lit> current;

  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      PITFALLS_REQUIRE(!header_seen, "duplicate DIMACS header");
      std::istringstream hs(line);
      std::string p;
      std::string cnf;
      long long vars = 0;
      long long clauses = 0;
      hs >> p >> cnf >> vars >> clauses;
      PITFALLS_REQUIRE(p == "p" && cnf == "cnf" && vars >= 0 && clauses >= 0 &&
                           !hs.fail(),
                       "malformed DIMACS header: " + line);
      instance.num_vars = static_cast<std::size_t>(vars);
      declared_clauses = static_cast<std::size_t>(clauses);
      header_seen = true;
      continue;
    }
    PITFALLS_REQUIRE(header_seen, "clause before DIMACS header");
    std::istringstream ls(line);
    long long lit = 0;
    while (ls >> lit) {
      if (lit == 0) {
        instance.clauses.push_back(current);
        current.clear();
        continue;
      }
      const long long var = lit > 0 ? lit : -lit;
      PITFALLS_REQUIRE(var >= 1 &&
                           static_cast<std::size_t>(var) <= instance.num_vars,
                       "literal out of range: " + std::to_string(lit));
      current.push_back(Lit(static_cast<Var>(var - 1), lit < 0));
    }
  }
  PITFALLS_REQUIRE(header_seen, "missing DIMACS header");
  PITFALLS_REQUIRE(current.empty(), "unterminated clause at end of input");
  PITFALLS_REQUIRE(instance.clauses.size() == declared_clauses,
                   "clause count disagrees with the header");
  return instance;
}

std::string write_dimacs(const DimacsInstance& instance) {
  std::ostringstream os;
  os << "c written by pitfalls::sat\n";
  os << "p cnf " << instance.num_vars << " " << instance.clauses.size()
     << "\n";
  for (const auto& clause : instance.clauses) {
    for (const auto lit : clause) {
      PITFALLS_REQUIRE(lit.var() < instance.num_vars,
                       "clause literal out of range");
      os << (lit.negated() ? "-" : "") << (lit.var() + 1) << " ";
    }
    os << "0\n";
  }
  return os.str();
}

std::vector<Var> load_into(ClauseSink& solver, const DimacsInstance& instance) {
  std::vector<Var> vars(instance.num_vars);
  for (auto& v : vars) v = solver.new_var();
  for (const auto& clause : instance.clauses) {
    std::vector<Lit> mapped;
    mapped.reserve(clause.size());
    for (const auto lit : clause)
      mapped.push_back(Lit(vars[lit.var()], lit.negated()));
    solver.add_clause(std::move(mapped));
  }
  return vars;
}

}  // namespace pitfalls::sat
