#include "sat/solver.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/require.hpp"

namespace pitfalls::sat {

namespace {

// Global mirrors of the per-solver stats, resolved once (the registry hands
// out stable references). Counters accumulate deltas per solve() call;
// max_decision_level is a high-water gauge across every solver in the
// process. All values derive from the deterministic search, so they honor
// the byte-identical-across-thread-counts contract.
struct GlobalSolverMetrics {
  obs::Counter& decisions;
  obs::Counter& propagations;
  obs::Counter& conflicts;
  obs::Counter& learned_clauses;
  obs::Counter& learned_literals;
  obs::Counter& restarts;
  obs::Gauge& max_decision_level;

  static GlobalSolverMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static GlobalSolverMetrics metrics{
        registry.counter("sat.solver.decisions"),
        registry.counter("sat.solver.propagations"),
        registry.counter("sat.solver.conflicts"),
        registry.counter("sat.solver.learned_clauses"),
        registry.counter("sat.solver.learned_literals"),
        registry.counter("sat.solver.restarts"),
        registry.gauge("sat.solver.max_decision_level")};
    return metrics;
  }

  void flush(const SolverStats& before, const SolverStats& after) {
    decisions.add(after.decisions - before.decisions);
    propagations.add(after.propagations - before.propagations);
    conflicts.add(after.conflicts - before.conflicts);
    learned_clauses.add(after.learned_clauses - before.learned_clauses);
    learned_literals.add(after.learned_literals - before.learned_literals);
    restarts.add(after.restarts - before.restarts);
    if (static_cast<double>(after.max_decision_level) >
        max_decision_level.value())
      max_decision_level.set(static_cast<double>(after.max_decision_level));
  }
};

/// Mirrors one solve() call's stat deltas on every exit path.
struct StatsFlusher {
  const SolverStats& stats;
  SolverStats before;
  explicit StatsFlusher(const SolverStats& s) : stats(s), before(s) {}
  ~StatsFlusher() { GlobalSolverMetrics::get().flush(before, stats); }
};

}  // namespace

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(kUndef);
  saved_phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

std::uint8_t Solver::value_of(Lit literal) const {
  const std::uint8_t a = assigns_[literal.var()];
  if (a == kUndef) return kUndef;
  return literal.negated() ? static_cast<std::uint8_t>(1 - a) : a;
}

bool Solver::add_clause(std::vector<Lit> literals) {
  PITFALLS_REQUIRE(trail_lim_.empty(), "clauses may only be added at level 0");
  if (unsat_at_root_) return false;

  // Simplify: sort, dedupe, drop root-false literals, detect tautologies and
  // root-true literals.
  std::sort(literals.begin(), literals.end(),
            [](Lit a, Lit b) { return a.index() < b.index(); });
  std::vector<Lit> cleaned;
  for (std::size_t i = 0; i < literals.size(); ++i) {
    const Lit l = literals[i];
    PITFALLS_REQUIRE(l.var() < num_vars(), "literal over unknown variable");
    if (i + 1 < literals.size() && literals[i + 1] == l) continue;  // dup
    if (i + 1 < literals.size() && literals[i + 1] == ~l) return true;  // taut
    const std::uint8_t v = value_of(l);
    if (v == 1) return true;   // already satisfied at root
    if (v == 0) continue;      // falsified at root: drop
    cleaned.push_back(l);
  }

  if (cleaned.empty()) {
    unsat_at_root_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    if (!enqueue(cleaned[0], -1)) {
      unsat_at_root_ = true;
      return false;
    }
    if (propagate() >= 0) {
      unsat_at_root_ = true;
      return false;
    }
    return true;
  }

  clauses_.push_back({std::move(cleaned), false});
  attach(static_cast<std::uint32_t>(clauses_.size() - 1));
  return true;
}

void Solver::attach(std::uint32_t clause_index) {
  const auto& c = clauses_[clause_index].literals;
  PITFALLS_ENSURE(c.size() >= 2, "attached clause must have >= 2 literals");
  watches_[c[0].index()].push_back({clause_index});
  watches_[c[1].index()].push_back({clause_index});
}

bool Solver::enqueue(Lit literal, std::int64_t reason) {
  const std::uint8_t v = value_of(literal);
  if (v == 0) return false;  // conflicting assignment
  if (v == 1) return true;   // already set
  assigns_[literal.var()] = literal.negated() ? 0 : 1;
  level_[literal.var()] =
      static_cast<std::uint32_t>(trail_lim_.size());
  reason_[literal.var()] = reason;
  trail_.push_back(literal);
  return true;
}

std::int64_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    const Lit falsified = ~p;
    auto& watch_list = watches_[falsified.index()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const std::uint32_t ci = watch_list[i].clause_index;
      auto& lits = clauses_[ci].literals;
      // Normalise: the falsified literal sits at position 1.
      if (lits[0] == falsified) std::swap(lits[0], lits[1]);

      if (value_of(lits[0]) == 1) {
        watch_list[keep++] = watch_list[i];  // clause satisfied
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value_of(lits[k]) != 0) {
          std::swap(lits[1], lits[k]);
          watches_[lits[1].index()].push_back({ci});
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Clause is unit or conflicting.
      watch_list[keep++] = watch_list[i];
      if (value_of(lits[0]) == 0) {
        // Conflict: restore the remaining watchers and report.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j)
          watch_list[keep++] = watch_list[j];
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return static_cast<std::int64_t>(ci);
      }
      const bool ok = enqueue(lits[0], static_cast<std::int64_t>(ci));
      PITFALLS_ENSURE(ok, "unit enqueue failed unexpectedly");
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::bump_var(Var v) {
  activity_[v] += activity_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() { activity_inc_ /= 0.95; }

void Solver::analyze(std::int64_t conflict, std::vector<Lit>& learned,
                     std::uint32_t& backtrack_level) {
  learned.clear();
  learned.push_back(Lit());  // slot for the asserting literal
  std::vector<bool> seen(num_vars(), false);
  const std::uint32_t current_level =
      static_cast<std::uint32_t>(trail_lim_.size());
  std::size_t counter = 0;
  std::size_t trail_index = trail_.size();
  Lit uip;
  std::int64_t reason_clause = conflict;
  bool first = true;

  for (;;) {
    PITFALLS_ENSURE(reason_clause >= 0, "reason chain broken in analyze");
    const auto& lits = clauses_[static_cast<std::size_t>(reason_clause)].literals;
    // Skip the asserting literal itself on non-first iterations (lits[0]).
    for (std::size_t i = first ? 0 : 1; i < lits.size(); ++i) {
      const Lit q = lits[i];
      if (seen[q.var()] || level_of(q.var()) == 0) continue;
      seen[q.var()] = true;
      bump_var(q.var());
      if (level_of(q.var()) == current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    first = false;

    // Walk the trail back to the next marked literal.
    do {
      --trail_index;
    } while (!seen[trail_[trail_index].var()]);
    uip = trail_[trail_index];
    seen[uip.var()] = false;
    --counter;
    if (counter == 0) break;
    reason_clause = reason_[uip.var()];
  }
  learned[0] = ~uip;

  // Backtrack level = highest level among the other literals.
  backtrack_level = 0;
  std::size_t max_pos = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    if (level_of(learned[i].var()) > backtrack_level) {
      backtrack_level = level_of(learned[i].var());
      max_pos = i;
    }
  }
  if (learned.size() > 1) std::swap(learned[1], learned[max_pos]);
}

void Solver::backtrack(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  const std::uint32_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    saved_phase_[v] = assigns_[v];
    assigns_[v] = kUndef;
    reason_[v] = -1;
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  double best = -1.0;
  Var best_var = 0;
  bool found = false;
  for (Var v = 0; v < num_vars(); ++v) {
    if (assigns_[v] == kUndef && activity_[v] > best) {
      best = activity_[v];
      best_var = v;
      found = true;
    }
  }
  if (!found) return Lit();  // all assigned; caller checks
  return Lit(best_var, saved_phase_[best_var] == 0);
}

SolveResult Solver::solve() {
  if (unsat_at_root_) return SolveResult::kUnsat;
  PITFALLS_ENSURE(trail_lim_.empty(), "solve must start at level 0");
  const StatsFlusher flusher(stats_);

  std::uint64_t conflicts_since_restart = 0;
  double restart_budget = 100.0;
  std::vector<Lit> learned;

  for (;;) {
    const std::int64_t conflict = propagate();
    if (conflict >= 0) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        unsat_at_root_ = true;
        return SolveResult::kUnsat;
      }
      std::uint32_t backtrack_level = 0;
      analyze(conflict, learned, backtrack_level);
      backtrack(backtrack_level);
      if (learned.size() == 1) {
        const bool ok = enqueue(learned[0], -1);
        PITFALLS_ENSURE(ok, "asserting unit conflicted after backtrack");
        ++stats_.learned_literals;
      } else {
        clauses_.push_back({learned, true});
        ++stats_.learned_clauses;
        stats_.learned_literals += learned.size();
        attach(static_cast<std::uint32_t>(clauses_.size() - 1));
        const bool ok = enqueue(learned[0],
                                static_cast<std::int64_t>(clauses_.size() - 1));
        PITFALLS_ENSURE(ok, "asserting literal conflicted after backtrack");
      }
      decay_activities();
      continue;
    }

    if (conflicts_since_restart >= static_cast<std::uint64_t>(restart_budget)) {
      conflicts_since_restart = 0;
      restart_budget *= 1.5;
      ++stats_.restarts;
      backtrack(0);
      continue;
    }

    // Decision.
    bool all_assigned = true;
    for (Var v = 0; v < num_vars(); ++v)
      if (assigns_[v] == kUndef) {
        all_assigned = false;
        break;
      }
    if (all_assigned) {
      model_ = assigns_;
      backtrack(0);
      return SolveResult::kSat;
    }
    const Lit decision = pick_branch();
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    stats_.max_decision_level =
        std::max(stats_.max_decision_level,
                 static_cast<std::uint64_t>(trail_lim_.size()));
    const bool ok = enqueue(decision, -1);
    PITFALLS_ENSURE(ok, "decision literal was already assigned");
  }
}

bool Solver::model_value(Var v) const {
  PITFALLS_REQUIRE(v < model_.size(), "no model available for this variable");
  return model_[v] == 1;
}

}  // namespace pitfalls::sat
