#include "sat/solver.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::sat {

namespace {

// LBD window driving the restart block: Luby restarts are postponed while
// the average LBD of the last kLbdWindow learned clauses is clearly below
// the historical average (the solver is in a productive learning streak).
constexpr std::size_t kLbdWindow = 50;

// Per-solve cap on LBD samples mirrored into the global histogram; keeps
// long searches from growing the (raw-sample) histogram unboundedly while
// staying a deterministic first-N policy.
constexpr std::size_t kMaxLbdSamples = 4096;

std::uint64_t splitmix64_step(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Luby sequence value at 0-based index x: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
std::uint64_t luby_value(std::uint64_t x) {
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x = x % size;
  }
  return std::uint64_t{1} << seq;
}

// Global mirrors of the per-solver stats, resolved once (the registry hands
// out stable references). Counters accumulate deltas per solve() call;
// max_decision_level is a high-water gauge across every solver in the
// process. All values derive from the deterministic search, so they honor
// the byte-identical-across-thread-counts contract (the lbd histogram is
// outside the deterministic counters_json slice, but its sorted summary is
// thread-count invariant too).
struct GlobalSolverMetrics {
  obs::Counter& decisions;
  obs::Counter& propagations;
  obs::Counter& conflicts;
  obs::Counter& learned_clauses;
  obs::Counter& learned_literals;
  obs::Counter& minimized_literals;
  obs::Counter& restarts;
  obs::Counter& blocked_restarts;
  obs::Counter& db_reductions;
  obs::Counter& deleted_clauses;
  obs::Counter& arena_collections;
  obs::Gauge& max_decision_level;
  obs::Histogram& lbd;

  static GlobalSolverMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static GlobalSolverMetrics metrics{
        registry.counter("sat.solver.decisions"),
        registry.counter("sat.solver.propagations"),
        registry.counter("sat.solver.conflicts"),
        registry.counter("sat.solver.learned_clauses"),
        registry.counter("sat.solver.learned_literals"),
        registry.counter("sat.solver.minimized_literals"),
        registry.counter("sat.solver.restarts"),
        registry.counter("sat.solver.blocked_restarts"),
        registry.counter("sat.solver.db_reductions"),
        registry.counter("sat.solver.deleted_clauses"),
        registry.counter("sat.solver.arena_collections"),
        registry.gauge("sat.solver.max_decision_level"),
        registry.histogram("sat.solver.lbd")};
    return metrics;
  }

  void flush(const SolverStats& before, const SolverStats& after,
             const std::vector<std::uint32_t>& lbd_samples) {
    decisions.add(after.decisions - before.decisions);
    propagations.add(after.propagations - before.propagations);
    conflicts.add(after.conflicts - before.conflicts);
    learned_clauses.add(after.learned_clauses - before.learned_clauses);
    learned_literals.add(after.learned_literals - before.learned_literals);
    minimized_literals.add(after.minimized_literals -
                           before.minimized_literals);
    restarts.add(after.restarts - before.restarts);
    blocked_restarts.add(after.blocked_restarts - before.blocked_restarts);
    db_reductions.add(after.db_reductions - before.db_reductions);
    deleted_clauses.add(after.deleted_clauses - before.deleted_clauses);
    arena_collections.add(after.arena_collections -
                          before.arena_collections);
    if (static_cast<double>(after.max_decision_level) >
        max_decision_level.value())
      max_decision_level.set(static_cast<double>(after.max_decision_level));
    for (const std::uint32_t sample : lbd_samples)
      lbd.observe(static_cast<double>(sample));
  }
};

/// Mirrors one solve() call's stat deltas on every exit path.
struct StatsFlusher {
  const SolverStats& stats;
  std::vector<std::uint32_t>& lbd_samples;
  SolverStats before;
  StatsFlusher(const SolverStats& s, std::vector<std::uint32_t>& lbds)
      : stats(s), lbd_samples(lbds), before(s) {}
  ~StatsFlusher() {
    GlobalSolverMetrics::get().flush(before, stats, lbd_samples);
    lbd_samples.clear();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// VarHeap
// ---------------------------------------------------------------------------

void Solver::VarHeap::insert(Var v, const std::vector<double>& act) {
  if (contains(v)) return;
  const std::size_t i = heap_.size();
  heap_.push_back(v);
  pos_[v] = static_cast<std::int32_t>(i);
  up(i, act);
}

Var Solver::VarHeap::pop(const std::vector<double>& act) {
  const Var top = heap_[0];
  const Var last = heap_.back();
  heap_.pop_back();
  pos_[top] = -1;
  if (!heap_.empty()) {
    heap_[0] = last;
    pos_[last] = 0;
    down(0, act);
  }
  return top;
}

void Solver::VarHeap::increased(Var v, const std::vector<double>& act) {
  if (contains(v)) up(static_cast<std::size_t>(pos_[v]), act);
}

void Solver::VarHeap::up(std::size_t i, const std::vector<double>& act) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(v, heap_[parent], act)) break;
    heap_[i] = heap_[parent];
    pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  pos_[v] = static_cast<std::int32_t>(i);
}

void Solver::VarHeap::down(std::size_t i, const std::vector<double>& act) {
  const Var v = heap_[i];
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    const std::size_t child =
        (left + 1 < heap_.size() && before(heap_[left + 1], heap_[left], act))
            ? left + 1
            : left;
    if (!before(heap_[child], v, act)) break;
    heap_[i] = heap_[child];
    pos_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  pos_[v] = static_cast<std::int32_t>(i);
}

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

Solver::Solver(const SolverConfig& config)
    : config_(config),
      random_state_(config.seed != 0 ? config.seed : 0x9e3779b97f4a7c15ULL) {}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(kUndef);
  saved_phase_.push_back(config_.initial_phase ? 1 : 0);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  binary_watches_.emplace_back();
  binary_watches_.emplace_back();
  seen_.push_back(0);
  level_stamp_.push_back(0);
  return v;
}

std::uint8_t Solver::value_of(Lit literal) const {
  const std::uint8_t a = assigns_[literal.var()];
  if (a == kUndef) return kUndef;
  return literal.negated() ? static_cast<std::uint8_t>(1 - a) : a;
}

std::uint64_t Solver::next_random() { return splitmix64_step(random_state_); }

bool Solver::add_clause(std::vector<Lit> literals) {
  PITFALLS_REQUIRE(trail_lim_.empty(), "clauses may only be added at level 0");
  if (unsat_at_root_) return false;

  // Simplify: sort, dedupe, drop root-false literals, detect tautologies and
  // root-true literals.
  std::sort(literals.begin(), literals.end(),
            [](Lit a, Lit b) { return a.index() < b.index(); });
  std::vector<Lit> cleaned;
  for (std::size_t i = 0; i < literals.size(); ++i) {
    const Lit l = literals[i];
    PITFALLS_REQUIRE(l.var() < num_vars(), "literal over unknown variable");
    if (i + 1 < literals.size() && literals[i + 1] == l) continue;  // dup
    if (i + 1 < literals.size() && literals[i + 1] == ~l) return true;  // taut
    const std::uint8_t v = value_of(l);
    if (v == 1) return true;   // already satisfied at root
    if (v == 0) continue;      // falsified at root: drop
    cleaned.push_back(l);
  }

  if (cleaned.empty()) {
    unsat_at_root_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    if (!enqueue(cleaned[0], kNoClause)) {
      unsat_at_root_ = true;
      return false;
    }
    if (propagate() != kNoClause) {
      unsat_at_root_ = true;
      return false;
    }
    return true;
  }

  const ClauseRef ref = attach_clause(cleaned, false, 0);
  problem_refs_.push_back(ref);
  return true;
}

ClauseRef Solver::attach_clause(const std::vector<Lit>& literals, bool learned,
                                std::uint32_t lbd) {
  const ClauseRef ref =
      arena_.alloc(literals.data(),
                   static_cast<std::uint32_t>(literals.size()), learned);
  if (learned) arena_.set_lbd(ref, lbd);
  attach_watches(ref);
  return ref;
}

void Solver::attach_watches(ClauseRef ref) {
  const Lit l0 = arena_.lit(ref, 0);
  const Lit l1 = arena_.lit(ref, 1);
  if (arena_.size(ref) == 2) {
    binary_watches_[l0.index()].push_back({l1, ref});
    binary_watches_[l1.index()].push_back({l0, ref});
  } else {
    watches_[l0.index()].push_back({ref, l1});
    watches_[l1.index()].push_back({ref, l0});
  }
}

bool Solver::enqueue(Lit literal, ClauseRef reason) {
  const std::uint8_t v = value_of(literal);
  if (v == 0) return false;  // conflicting assignment
  if (v == 1) return true;   // already set
  assigns_[literal.var()] = literal.negated() ? 0 : 1;
  level_[literal.var()] = static_cast<std::uint32_t>(trail_lim_.size());
  reason_[literal.var()] = reason;
  trail_.push_back(literal);
  return true;
}

ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    const Lit falsified = ~p;

    // Binary clauses first: the other literal is inline in the watcher, so
    // this pass never touches the arena.
    {
      auto& watch_list = binary_watches_[falsified.index()];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < watch_list.size(); ++i) {
        const BinaryWatcher w = watch_list[i];
        if (arena_.deleted(w.clause_ref)) continue;  // dropped lazily
        watch_list[keep++] = w;
        const std::uint8_t v = value_of(w.other);
        if (v == 1) continue;
        if (v == 0) {
          for (std::size_t j = i + 1; j < watch_list.size(); ++j)
            if (!arena_.deleted(watch_list[j].clause_ref))
              watch_list[keep++] = watch_list[j];
          watch_list.resize(keep);
          propagate_head_ = trail_.size();
          return w.clause_ref;
        }
        const bool ok = enqueue(w.other, w.clause_ref);
        PITFALLS_ENSURE(ok, "binary unit enqueue failed unexpectedly");
      }
      watch_list.resize(keep);
    }

    auto& watch_list = watches_[falsified.index()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (arena_.deleted(w.clause_ref)) continue;  // dropped lazily
      if (value_of(w.blocker) == 1) {
        watch_list[keep++] = w;  // clause satisfied; arena untouched
        continue;
      }
      const ClauseRef c = w.clause_ref;
      // Normalise: the falsified literal sits at position 1.
      if (arena_.lit(c, 0) == falsified) arena_.swap_lits(c, 0, 1);
      const Lit first = arena_.lit(c, 0);
      if (value_of(first) == 1) {
        watch_list[keep++] = {c, first};
        continue;
      }
      // Look for a replacement watch.
      const std::uint32_t size = arena_.size(c);
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        const Lit cand = arena_.lit(c, k);
        if (value_of(cand) != 0) {
          arena_.swap_lits(c, 1, k);
          watches_[cand.index()].push_back({c, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Clause is unit or conflicting.
      watch_list[keep++] = {c, first};
      if (value_of(first) == 0) {
        // Conflict: restore the remaining watchers and report.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j)
          if (!arena_.deleted(watch_list[j].clause_ref))
            watch_list[keep++] = watch_list[j];
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return c;
      }
      const bool ok = enqueue(first, c);
      PITFALLS_ENSURE(ok, "unit enqueue failed unexpectedly");
    }
    watch_list.resize(keep);
  }
  return kNoClause;
}

void Solver::bump_var(Var v) {
  activity_[v] += activity_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
  order_.increased(v, activity_);
}

void Solver::decay_activities() { activity_inc_ /= config_.var_decay; }

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& literals) {
  // Indexed by decision level; dummy assumption levels can push the level
  // count past num_vars, so grow on demand (fresh slots read as epoch 0).
  if (level_stamp_.size() <= trail_lim_.size())
    level_stamp_.resize(trail_lim_.size() + 1, 0);
  ++stamp_epoch_;
  std::uint32_t distinct = 0;
  for (const Lit l : literals) {
    const std::uint32_t lev = level_of(l.var());
    if (level_stamp_[lev] != stamp_epoch_) {
      level_stamp_[lev] = stamp_epoch_;
      ++distinct;
    }
  }
  return distinct;
}

void Solver::record_lbd(std::uint32_t lbd) {
  total_lbd_sum_ += static_cast<double>(lbd);
  ++total_lbd_count_;
  if (recent_lbds_.size() < kLbdWindow) {
    recent_lbds_.push_back(lbd);
    recent_lbd_sum_ += static_cast<double>(lbd);
    recent_lbd_full_ = recent_lbds_.size() == kLbdWindow;
  } else {
    recent_lbd_sum_ += static_cast<double>(lbd) -
                       static_cast<double>(recent_lbds_[recent_lbd_next_]);
    recent_lbds_[recent_lbd_next_] = lbd;
    recent_lbd_next_ = (recent_lbd_next_ + 1) % kLbdWindow;
  }
  if (lbd_samples_.size() < kMaxLbdSamples) lbd_samples_.push_back(lbd);
}

bool Solver::restart_blocked() const {
  if (config_.restart_block_margin <= 0.0 || !recent_lbd_full_ ||
      total_lbd_count_ == 0)
    return false;
  const double recent_avg =
      recent_lbd_sum_ / static_cast<double>(recent_lbds_.size());
  const double global_avg =
      total_lbd_sum_ / static_cast<double>(total_lbd_count_);
  return recent_avg < config_.restart_block_margin * global_avg;
}

bool Solver::literal_redundant(Lit l) {
  const ClauseRef r = reason_[l.var()];
  if (r == kNoClause) return false;  // decision or root unit
  const std::uint32_t size = arena_.size(r);
  for (std::uint32_t i = 0; i < size; ++i) {
    const Lit q = arena_.lit(r, i);
    if (q.var() == l.var()) continue;
    if (seen_[q.var()] == 0 && level_of(q.var()) != 0) return false;
  }
  return true;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learned,
                     std::uint32_t& backtrack_level, std::uint32_t& lbd) {
  learned.clear();
  learned.push_back(Lit());  // slot for the asserting literal
  const std::uint32_t current_level =
      static_cast<std::uint32_t>(trail_lim_.size());
  std::size_t counter = 0;
  std::size_t trail_index = trail_.size();
  Lit uip;
  ClauseRef reason_clause = conflict;
  bool first = true;
  Var expanded_var = 0;  // var whose reason is being expanded (skip it)

  for (;;) {
    PITFALLS_ENSURE(reason_clause != kNoClause, "reason chain broken");
    const std::uint32_t size = arena_.size(reason_clause);
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit q = arena_.lit(reason_clause, i);
      // Binary reasons do not keep the implied literal at a fixed slot, so
      // skip by variable instead of by position.
      if (!first && q.var() == expanded_var) continue;
      if (seen_[q.var()] != 0 || level_of(q.var()) == 0) continue;
      seen_[q.var()] = 1;
      bump_var(q.var());
      if (level_of(q.var()) == current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    first = false;

    // Walk the trail back to the next marked literal.
    do {
      --trail_index;
    } while (seen_[trail_[trail_index].var()] == 0);
    uip = trail_[trail_index];
    seen_[uip.var()] = 0;
    --counter;
    if (counter == 0) break;
    reason_clause = reason_[uip.var()];
    expanded_var = uip.var();
  }
  learned[0] = ~uip;

  // Self-subsumption minimisation: drop literals whose reason clause is
  // covered by the rest of the learned clause. Flags stay set for the
  // whole pass and are cleared from the pre-filter buffer afterwards.
  analyze_buffer_.assign(learned.begin() + 1, learned.end());
  learned.resize(1);
  for (const Lit l : analyze_buffer_) {
    if (literal_redundant(l)) {
      ++stats_.minimized_literals;
    } else {
      learned.push_back(l);
    }
  }
  for (const Lit l : analyze_buffer_) seen_[l.var()] = 0;

  // Backtrack level = highest level among the other literals; that literal
  // moves to slot 1 so it becomes the second watch.
  backtrack_level = 0;
  std::size_t max_pos = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    if (level_of(learned[i].var()) > backtrack_level) {
      backtrack_level = level_of(learned[i].var());
      max_pos = i;
    }
  }
  if (learned.size() > 1) std::swap(learned[1], learned[max_pos]);
  lbd = compute_lbd(learned);
}

void Solver::backtrack(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  const std::uint32_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    saved_phase_[v] = assigns_[v];
    assigns_[v] = kUndef;
    reason_[v] = kNoClause;
    if (!order_.contains(v)) order_.insert(v, activity_);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch() {
  if (config_.random_decision_freq > 0.0) {
    const double draw =
        static_cast<double>(next_random() >> 11) / 9007199254740992.0;
    if (draw < config_.random_decision_freq) {
      const Var v =
          static_cast<Var>(next_random() % static_cast<std::uint64_t>(
                                               num_vars()));
      if (assigns_[v] == kUndef) return Lit(v, saved_phase_[v] == 0);
    }
  }
  for (;;) {
    PITFALLS_ENSURE(!order_.empty(), "decision requested with no free var");
    const Var v = order_.pop(activity_);
    if (assigns_[v] == kUndef) return Lit(v, saved_phase_[v] == 0);
  }
}

bool Solver::clause_is_reason(ClauseRef ref) const {
  const Lit implied = arena_.lit(ref, 0);
  const Var v = implied.var();
  return assigns_[v] != kUndef && reason_[v] == ref;
}

void Solver::reduce_db() {
  ++stats_.db_reductions;
  obs::Tracer::global().instant("sat.solver.reduce_db");

  // Candidates: long learned clauses that are neither glue (LBD <= 2) nor
  // currently the reason of a trail literal. Binaries never reach the
  // arena-deletion path at all.
  std::vector<ClauseRef> candidates;
  candidates.reserve(learned_refs_.size());
  for (const ClauseRef ref : learned_refs_) {
    if (arena_.deleted(ref)) continue;
    if (arena_.size(ref) <= 2) continue;
    if (arena_.lbd(ref) <= 2) continue;
    if (clause_is_reason(ref)) continue;
    candidates.push_back(ref);
  }
  // Worst first: highest LBD, then longest, then youngest (highest ref).
  std::sort(candidates.begin(), candidates.end(),
            [this](ClauseRef a, ClauseRef b) {
              if (arena_.lbd(a) != arena_.lbd(b))
                return arena_.lbd(a) > arena_.lbd(b);
              if (arena_.size(a) != arena_.size(b))
                return arena_.size(a) > arena_.size(b);
              return a > b;
            });
  const std::size_t victims = candidates.size() / 2;
  for (std::size_t i = 0; i < victims; ++i) {
    arena_.mark_deleted(candidates[i]);
    ++stats_.deleted_clauses;
  }
  std::erase_if(learned_refs_,
                [this](ClauseRef ref) { return arena_.deleted(ref); });

  // Always-on safety net: a reason clause must never be deleted — a deleted
  // reason would break every later conflict analysis through it.
  for (const Lit l : trail_) {
    const ClauseRef r = reason_[l.var()];
    if (r != kNoClause)
      PITFALLS_ENSURE(!arena_.deleted(r), "reduce-DB deleted a reason clause");
  }
}

void Solver::collect_garbage() {
  PITFALLS_ENSURE(trail_lim_.empty(), "arena GC requires decision level 0");
  ++stats_.arena_collections;

  // Root-implied literals never participate in conflict analysis again;
  // clearing their reasons frees those clauses for collection.
  for (const Lit l : trail_) reason_[l.var()] = kNoClause;

  ClauseArena fresh;
  fresh.reserve(arena_.used_words() - arena_.wasted_words());
  auto sweep = [this, &fresh](std::vector<ClauseRef>& refs) {
    std::size_t kept = 0;
    for (const ClauseRef ref : refs) {
      if (arena_.deleted(ref)) continue;
      const std::uint32_t size = arena_.size(ref);
      bool satisfied = false;
      std::uint32_t live = 0;
      for (std::uint32_t i = 0; i < size && !satisfied; ++i) {
        const std::uint8_t v = value_of(arena_.lit(ref, i));
        if (v == 1) satisfied = true;
        if (v != 0) ++live;
      }
      if (satisfied) continue;  // true at the root forever
      if (live != size) {
        // Strip root-false literals in place before relocating.
        std::uint32_t w = 0;
        for (std::uint32_t i = 0; i < size; ++i) {
          const Lit l = arena_.lit(ref, i);
          if (value_of(l) != 0) arena_.set_lit(ref, w++, l);
        }
        PITFALLS_ENSURE(w >= 2, "sub-binary clause survived to arena GC");
        arena_.shrink(ref, w);
      }
      refs[kept++] = fresh.relocate(arena_, ref);
    }
    refs.resize(kept);
  };
  sweep(problem_refs_);
  sweep(learned_refs_);
  arena_ = std::move(fresh);

  for (auto& list : watches_) list.clear();
  for (auto& list : binary_watches_) list.clear();
  for (const ClauseRef ref : problem_refs_) attach_watches(ref);
  for (const ClauseRef ref : learned_refs_) attach_watches(ref);
}

SolveResult Solver::solve_limited(std::uint64_t max_conflicts,
                                  const std::vector<Lit>& assumptions) {
  if (unsat_at_root_) return SolveResult::kUnsat;
  PITFALLS_ENSURE(trail_lim_.empty(), "solve must start at level 0");
  for (const Lit a : assumptions)
    PITFALLS_REQUIRE(a.var() < num_vars(), "assumption over unknown variable");
  const StatsFlusher flusher(stats_, lbd_samples_);

  // Every unassigned variable must be decidable.
  order_.grow(num_vars());
  for (Var v = 0; v < num_vars(); ++v)
    if (assigns_[v] == kUndef && !order_.contains(v))
      order_.insert(v, activity_);
  if (reduce_limit_ == 0) reduce_limit_ = config_.reduce_base;

  std::uint64_t conflicts_this_call = 0;
  std::uint64_t conflicts_since_restart = 0;
  std::uint64_t restart_budget = config_.luby_base * luby_value(luby_index_);
  std::vector<Lit> learned;

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_this_call;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        unsat_at_root_ = true;
        return SolveResult::kUnsat;
      }
      std::uint32_t backtrack_level = 0;
      std::uint32_t lbd = 0;
      analyze(conflict, learned, backtrack_level, lbd);
      record_lbd(lbd);
      backtrack(backtrack_level);
      if (learned.size() == 1) {
        const bool ok = enqueue(learned[0], kNoClause);
        PITFALLS_ENSURE(ok, "asserting unit conflicted after backtrack");
        ++stats_.learned_literals;
      } else {
        const ClauseRef ref = attach_clause(learned, true, lbd);
        learned_refs_.push_back(ref);
        ++stats_.learned_clauses;
        stats_.learned_literals += learned.size();
        const bool ok = enqueue(learned[0], ref);
        PITFALLS_ENSURE(ok, "asserting literal conflicted after backtrack");
      }
      decay_activities();
      if (config_.reduce_base != 0 && learned_refs_.size() >= reduce_limit_) {
        reduce_db();
        reduce_limit_ += config_.reduce_increment;
      }
      if (max_conflicts != 0 && conflicts_this_call >= max_conflicts) {
        backtrack(0);
        return SolveResult::kUnknown;
      }
      continue;
    }

    if (conflicts_since_restart >= restart_budget) {
      conflicts_since_restart = 0;
      if (restart_blocked()) {
        ++stats_.blocked_restarts;
      } else {
        ++stats_.restarts;
        backtrack(0);
        if (arena_.wasted_words() > 1024 &&
            arena_.wasted_words() * 2 > arena_.used_words())
          collect_garbage();
      }
      ++luby_index_;
      restart_budget = config_.luby_base * luby_value(luby_index_);
      continue;
    }

    // Re-push assumptions as pseudo-decisions, then decide.
    Lit next;
    bool have_next = false;
    while (trail_lim_.size() < assumptions.size()) {
      const Lit p = assumptions[trail_lim_.size()];
      const std::uint8_t v = value_of(p);
      if (v == 1) {
        // Already satisfied: open a dummy level to keep the invariant
        // "assumption i sits at level i+1".
        trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
        continue;
      }
      if (v == 0) {
        // The clause set forces ~p: UNSAT under these assumptions, but the
        // solver itself stays usable.
        backtrack(0);
        return SolveResult::kUnsat;
      }
      next = p;
      have_next = true;
      break;
    }
    if (!have_next) {
      if (trail_.size() == num_vars()) {
        model_ = assigns_;
        backtrack(0);
        return SolveResult::kSat;
      }
      next = pick_branch();
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    stats_.max_decision_level =
        std::max(stats_.max_decision_level,
                 static_cast<std::uint64_t>(trail_lim_.size()));
    const bool ok = enqueue(next, kNoClause);
    PITFALLS_ENSURE(ok, "decision literal was already assigned");
  }
}

bool Solver::model_value(Var v) const {
  PITFALLS_REQUIRE(v < model_.size(), "no model available for this variable");
  return model_[v] == 1;
}

}  // namespace pitfalls::sat
