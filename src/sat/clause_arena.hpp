// Flat clause storage for the CDCL solver: every clause lives in one
// contiguous buffer and is addressed by a 32-bit word offset (ClauseRef).
// Replacing the seed's vector<vector<Lit>> removes a pointer chase per
// clause visit and keeps the watch-list walk cache-resident — the property
// the larger bench_sat_attack instances need.
//
// Layout per clause, in 32-bit words:
//   [0] size          (number of literals)
//   [1] flags         bits 0..27 LBD (saturating), bit 30 learned,
//                     bit 31 deleted
//   [2..2+size)       literals (Lit::index() encoding)
//
// Deletion is lazy: reduce-DB marks clauses deleted and watch lists drop
// them on their next visit. The solver compacts the arena (collect())
// only at decision level 0, remapping every live reference it holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sat/literal.hpp"
#include "support/require.hpp"

namespace pitfalls::sat {

using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kNoClause = 0xffffffffU;

class ClauseArena {
 public:
  static constexpr std::uint32_t kHeaderWords = 2;
  static constexpr std::uint32_t kLbdMask = 0x0fffffffU;
  static constexpr std::uint32_t kLearnedBit = 1U << 30;
  static constexpr std::uint32_t kDeletedBit = 1U << 31;

  /// Append a clause; returns its reference. `size` must be >= 2 (units go
  /// straight onto the trail and never reach the arena).
  ClauseRef alloc(const Lit* lits, std::uint32_t size, bool learned) {
    PITFALLS_REQUIRE(size >= 2, "arena clauses carry at least two literals");
    const std::size_t at = words_.size();
    PITFALLS_ENSURE(at + kHeaderWords + size < kNoClause,
                    "clause arena exceeded 32-bit addressing");
    words_.push_back(size);
    words_.push_back(learned ? kLearnedBit : 0U);
    for (std::uint32_t i = 0; i < size; ++i)
      words_.push_back(lits[i].index());
    return static_cast<ClauseRef>(at);
  }

  std::uint32_t size(ClauseRef c) const { return words_[c]; }
  bool learned(ClauseRef c) const {
    return (words_[c + 1] & kLearnedBit) != 0;
  }
  bool deleted(ClauseRef c) const {
    return (words_[c + 1] & kDeletedBit) != 0;
  }
  std::uint32_t lbd(ClauseRef c) const { return words_[c + 1] & kLbdMask; }

  void set_lbd(ClauseRef c, std::uint32_t lbd) {
    if (lbd > kLbdMask) lbd = kLbdMask;  // saturate, never overflow flags
    words_[c + 1] = (words_[c + 1] & ~kLbdMask) | lbd;
  }

  /// Lazy delete: the clause stays in place until the next collect().
  void mark_deleted(ClauseRef c) {
    PITFALLS_ENSURE(!deleted(c), "double clause deletion");
    words_[c + 1] |= kDeletedBit;
    wasted_ += kHeaderWords + size(c);
  }

  Lit lit(ClauseRef c, std::uint32_t i) const {
    return Lit::from_index(words_[c + kHeaderWords + i]);
  }
  void set_lit(ClauseRef c, std::uint32_t i, Lit l) {
    words_[c + kHeaderWords + i] = l.index();
  }
  void swap_lits(ClauseRef c, std::uint32_t i, std::uint32_t j) {
    std::swap(words_[c + kHeaderWords + i], words_[c + kHeaderWords + j]);
  }

  /// Shrink a clause in place (root-false literals stripped at GC). The
  /// freed tail is accounted as waste and reclaimed by the next collect().
  void shrink(ClauseRef c, std::uint32_t new_size) {
    PITFALLS_REQUIRE(new_size >= 2 && new_size <= size(c),
                     "invalid clause shrink");
    wasted_ += size(c) - new_size;
    words_[c] = new_size;
  }

  std::size_t used_words() const { return words_.size(); }
  std::size_t wasted_words() const { return wasted_; }

  void reserve(std::size_t words) { words_.reserve(words); }

  /// Move a live clause from `from` into this arena; returns its new ref.
  ClauseRef relocate(const ClauseArena& from, ClauseRef c) {
    PITFALLS_REQUIRE(!from.deleted(c), "relocating a deleted clause");
    const std::uint32_t n = from.size(c);
    const std::size_t at = words_.size();
    words_.push_back(from.words_[c]);
    words_.push_back(from.words_[c + 1]);
    for (std::uint32_t i = 0; i < n; ++i)
      words_.push_back(from.words_[c + kHeaderWords + i]);
    return static_cast<ClauseRef>(at);
  }

 private:
  std::vector<std::uint32_t> words_;
  std::size_t wasted_ = 0;  // words owned by deleted/shrunk clauses
};

}  // namespace pitfalls::sat
