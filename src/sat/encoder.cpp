#include "sat/encoder.hpp"

#include "support/require.hpp"

namespace pitfalls::sat {

namespace {

using circuit::Gate;
using circuit::GateType;

/// y <-> AND(fanins): (~y v f_i) for each i; (y v ~f_1 v ... v ~f_n).
void encode_and(ClauseSink& s, Var y, const std::vector<Var>& f, bool invert) {
  const Lit ly = invert ? neg(y) : pos(y);
  std::vector<Lit> big{ly};
  for (auto fv : f) {
    s.add_binary(~ly, pos(fv));
    big.push_back(neg(fv));
  }
  s.add_clause(std::move(big));
}

/// y <-> OR(fanins): (y v ~f_i) for each i; (~y v f_1 v ... v f_n).
void encode_or(ClauseSink& s, Var y, const std::vector<Var>& f, bool invert) {
  const Lit ly = invert ? neg(y) : pos(y);
  std::vector<Lit> big{~ly};
  for (auto fv : f) {
    s.add_binary(ly, neg(fv));
    big.push_back(pos(fv));
  }
  s.add_clause(std::move(big));
}

/// y <-> a XOR b (4 clauses).
void encode_xor2(ClauseSink& s, Var y, Var a, Var b) {
  s.add_ternary(neg(y), pos(a), pos(b));
  s.add_ternary(neg(y), neg(a), neg(b));
  s.add_ternary(pos(y), pos(a), neg(b));
  s.add_ternary(pos(y), neg(a), pos(b));
}

/// y <-> XOR of fanins, chaining auxiliaries for arity > 2.
Var encode_xor_chain(ClauseSink& s, const std::vector<Var>& f) {
  Var acc = f[0];
  for (std::size_t i = 1; i < f.size(); ++i) {
    const Var next = s.new_var();
    encode_xor2(s, next, acc, f[i]);
    acc = next;
  }
  return acc;
}

void encode_equal(ClauseSink& s, Var a, Var b) {
  s.add_binary(neg(a), pos(b));
  s.add_binary(pos(a), neg(b));
}

void encode_not_equal(ClauseSink& s, Var a, Var b) {
  s.add_binary(pos(a), pos(b));
  s.add_binary(neg(a), neg(b));
}

}  // namespace

CircuitEncoding encode_netlist(ClauseSink& solver,
                               const circuit::Netlist& netlist,
                               const std::vector<Var>& shared_inputs) {
  if (!shared_inputs.empty())
    PITFALLS_REQUIRE(shared_inputs.size() == netlist.num_inputs(),
                     "shared input variable count mismatch");

  CircuitEncoding enc;
  enc.gate_vars.resize(netlist.num_gates());
  std::size_t next_input = 0;

  for (std::size_t id = 0; id < netlist.num_gates(); ++id) {
    const Gate& g = netlist.gate(id);
    std::vector<Var> f;
    f.reserve(g.fanins.size());
    for (auto fanin : g.fanins) f.push_back(enc.gate_vars[fanin]);

    switch (g.type) {
      case GateType::kInput: {
        const Var v = shared_inputs.empty() ? solver.new_var()
                                            : shared_inputs[next_input];
        ++next_input;
        enc.gate_vars[id] = v;
        enc.input_vars.push_back(v);
        break;
      }
      case GateType::kConst0: {
        const Var v = solver.new_var();
        solver.add_unit(neg(v));
        enc.gate_vars[id] = v;
        break;
      }
      case GateType::kConst1: {
        const Var v = solver.new_var();
        solver.add_unit(pos(v));
        enc.gate_vars[id] = v;
        break;
      }
      case GateType::kBuf: {
        enc.gate_vars[id] = f[0];  // alias, no new variable needed
        break;
      }
      case GateType::kNot: {
        const Var v = solver.new_var();
        encode_not_equal(solver, v, f[0]);
        enc.gate_vars[id] = v;
        break;
      }
      case GateType::kAnd:
      case GateType::kNand: {
        const Var v = solver.new_var();
        encode_and(solver, v, f, g.type == GateType::kNand);
        enc.gate_vars[id] = v;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        const Var v = solver.new_var();
        encode_or(solver, v, f, g.type == GateType::kNor);
        enc.gate_vars[id] = v;
        break;
      }
      case GateType::kXor: {
        enc.gate_vars[id] = encode_xor_chain(solver, f);
        break;
      }
      case GateType::kXnor: {
        const Var x = encode_xor_chain(solver, f);
        const Var v = solver.new_var();
        encode_not_equal(solver, v, x);
        enc.gate_vars[id] = v;
        break;
      }
    }
  }

  for (auto output : netlist.outputs())
    enc.output_vars.push_back(enc.gate_vars[output]);
  return enc;
}

Var add_conditional_miter(ClauseSink& solver,
                          const std::vector<Var>& outputs_a,
                          const std::vector<Var>& outputs_b) {
  PITFALLS_REQUIRE(outputs_a.size() == outputs_b.size(),
                   "miter output count mismatch");
  PITFALLS_REQUIRE(!outputs_a.empty(), "miter over zero outputs");
  std::vector<Lit> any_diff;
  for (std::size_t i = 0; i < outputs_a.size(); ++i) {
    const Var diff = solver.new_var();
    encode_xor2(solver, diff, outputs_a[i], outputs_b[i]);
    any_diff.push_back(pos(diff));
  }
  const Var miter = solver.new_var();
  // miter -> (d1 v ... v dn)
  std::vector<Lit> clause{neg(miter)};
  for (auto l : any_diff) clause.push_back(l);
  solver.add_clause(std::move(clause));
  // d_i -> miter
  for (auto l : any_diff) solver.add_binary(~l, pos(miter));
  return miter;
}

Var add_miter(ClauseSink& solver, const std::vector<Var>& outputs_a,
              const std::vector<Var>& outputs_b) {
  const Var miter = add_conditional_miter(solver, outputs_a, outputs_b);
  solver.add_unit(pos(miter));
  return miter;
}

void fix_var(ClauseSink& solver, Var v, bool value) {
  solver.add_unit(value ? pos(v) : neg(v));
}

void equate(ClauseSink& solver, Var a, Var b) { encode_equal(solver, a, b); }

}  // namespace pitfalls::sat
