#include "sat/portfolio.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::sat {

namespace {

std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct PortfolioMetrics {
  obs::Counter& solves;
  obs::Counter& rounds;
  obs::Gauge& winner;

  static PortfolioMetrics& get() {
    static auto& registry = obs::MetricsRegistry::global();
    static PortfolioMetrics metrics{
        registry.counter("sat.solver.portfolio_solves"),
        registry.counter("sat.solver.portfolio_rounds"),
        registry.gauge("sat.solver.portfolio_winner")};
    return metrics;
  }
};

}  // namespace

SolverConfig diversified_config(const PortfolioConfig& config, std::size_t w) {
  SolverConfig c = config.base;
  // Every worker gets its own random-decision stream seed regardless of
  // diversification, so enabling random decisions later stays decorrelated.
  c.seed = splitmix64_mix(config.seed +
                          0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(w) + 1));
  if (w == 0) return c;  // reference configuration

  // Pure functions of the worker index: polarity flips on odd workers,
  // decay and restart cadence cycle through small palettes, and the upper
  // half of the portfolio adds a pinch of random decisions.
  c.initial_phase = (w % 2) == 1;
  constexpr double kDecays[] = {0.95, 0.91, 0.97, 0.93};
  c.var_decay = kDecays[w % 4];
  constexpr std::uint64_t kLubyBases[] = {64, 128, 32, 256};
  c.luby_base = kLubyBases[(w / 2) % 4];
  if (w >= 3) c.random_decision_freq = 0.02;
  if (w % 3 == 2) c.restart_block_margin = 0.0;  // pure Luby, no blocking
  return c;
}

PortfolioSolver::PortfolioSolver(PortfolioConfig config)
    : config_(config) {
  PITFALLS_REQUIRE(config_.workers >= 1, "portfolio needs >= 1 worker");
  PITFALLS_REQUIRE(config_.round_base_conflicts >= 1,
                   "round budget must be positive");
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    workers_.emplace_back(diversified_config(config_, w));
}

Var PortfolioSolver::new_var() {
  const Var v = workers_[0].new_var();
  for (std::size_t w = 1; w < workers_.size(); ++w) {
    const Var mirrored = workers_[w].new_var();
    PITFALLS_ENSURE(mirrored == v, "portfolio variable spaces diverged");
  }
  return v;
}

std::size_t PortfolioSolver::num_vars() const {
  return workers_[0].num_vars();
}

bool PortfolioSolver::add_clause(std::vector<Lit> literals) {
  bool ok = true;
  for (std::size_t w = 0; w + 1 < workers_.size(); ++w)
    ok = workers_[w].add_clause(literals) && ok;  // broadcast keeps a copy
  ok = workers_.back().add_clause(std::move(literals)) && ok;
  return ok;
}

SolveResult PortfolioSolver::solve(const std::vector<Lit>& assumptions) {
  PortfolioMetrics& metrics = PortfolioMetrics::get();
  metrics.solves.add(1);

  if (workers_.size() == 1) {
    last_winner_ = 0;
    metrics.winner.set(0.0);
    return workers_[0].solve(assumptions);
  }

  std::vector<SolveResult> results(workers_.size(), SolveResult::kUnknown);
  for (std::uint64_t round = 0;; ++round) {
    metrics.rounds.add(1);
    const std::uint64_t budget = config_.round_base_conflicts
                                 << std::min<std::uint64_t>(round, 14);
    // Every worker runs its full budget each round — a worker that decides
    // early in wall-clock still charges the same deterministic conflict
    // budget, which is what makes the winner thread-count invariant.
    support::parallel_for_tasks(
        workers_.size(),
        [this, &results, &assumptions, budget](std::size_t w) {
          results[w] = workers_[w].solve_limited(budget, assumptions);
        },
        "sat.portfolio");
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (results[w] == SolveResult::kUnknown) continue;
      last_winner_ = w;  // earliest round, lowest index
      metrics.winner.set(static_cast<double>(w));
      return results[w];
    }
  }
}

bool PortfolioSolver::model_value(Var v) const {
  return workers_[last_winner_].model_value(v);
}

SolverStats PortfolioSolver::stats() const {
  SolverStats total;
  for (const Solver& worker : workers_) {
    const SolverStats& s = worker.stats();
    total.decisions += s.decisions;
    total.propagations += s.propagations;
    total.conflicts += s.conflicts;
    total.learned_clauses += s.learned_clauses;
    total.learned_literals += s.learned_literals;
    total.minimized_literals += s.minimized_literals;
    total.restarts += s.restarts;
    total.blocked_restarts += s.blocked_restarts;
    total.db_reductions += s.db_reductions;
    total.deleted_clauses += s.deleted_clauses;
    total.arena_collections += s.arena_collections;
    total.max_decision_level =
        std::max(total.max_decision_level, s.max_decision_level);
  }
  return total;
}

}  // namespace pitfalls::sat
