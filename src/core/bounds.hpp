// Sample-complexity bounds for PAC learning XOR Arbiter PUFs — all four
// rows of the paper's Table I, as executable formulas.
//
// Every function returns the bound as a double (possibly huge/inf: the
// whole point of the table is contrasting growth regimes), together with
// enough metadata to print the table exactly as the paper does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pitfalls::core {

/// VC dimension bound for n-bit k-XOR arbiter PUFs (cf. [17] in the paper):
/// VCdim = O(k (n+1) (1 + log(kn + k))).
double vc_dim_xor_arbiter(std::size_t n, std::size_t k);

/// Row 1 — the bound of [9] (Ganji et al., TRUST'15), built on the
/// Perceptron mistake bound: O((n+1)^k / eps^3 + ln(1/delta)/eps).
/// Distribution-free, algorithm-specific, random examples.
double perceptron_crp_bound(std::size_t n, std::size_t k, double eps,
                            double delta);

/// Row 2 — the paper's "general bound": algorithm-independent uniform PAC
/// bound from Blumer et al. [12] with the XOR-arbiter VC dimension:
/// O((VCdim ln(1/eps) + ln(1/delta)) / eps).
double general_crp_bound(std::size_t n, std::size_t k, double eps,
                         double delta);

/// The LMN degree cutoff from the paper's Corollary 1 proof:
/// m = 2.32 k^2 / eps^2 (requires eps <= 1/k^2 in the derivation).
double lmn_degree_cutoff(std::size_t k, double eps);

/// Row 3 — Corollary 1: the LMN algorithm needs n^{O(m)} ln(1/delta)
/// examples with m as above: O(n^{k^2/eps^2} ln(1/delta)).
double lmn_crp_bound(std::size_t n, std::size_t k, double eps, double delta);

/// Junta size from Corollary 2's use of Bourgain's theorem:
/// r = O(eps^{-3/2}).
double bourgain_junta_size(double eps);

/// Row 4 — Corollary 2: membership-query learning of the sparse-polynomial
/// representation (Schapire–Sellie [21]). Concrete instantiation:
/// s = k 2^r monomials of degree <= r, query count ~ n r s + s ln(1/delta)/eps,
/// which is poly(n, k, 1/eps, log(1/delta)) for constant eps.
double learnpoly_query_bound(std::size_t n, std::size_t k, double eps,
                             double delta);

/// One printable row of Table I.
struct BoundRow {
  std::string source;        // "[9]", "General", "Corollary 1", "Corollary 2"
  std::string distribution;  // "Arbitrary" / "Uniform"
  std::string algorithm;     // "Perceptron" / "Independent" / "LMN" / "LearnPoly"
  std::string access;        // as printed in the paper
  double value = 0.0;        // evaluated bound
};

/// All four rows evaluated at (n, k, eps, delta), in the paper's order.
std::vector<BoundRow> table1_rows(std::size_t n, std::size_t k, double eps,
                                  double delta);

struct AdversaryModel;  // adversary.hpp

/// The Table I row that actually applies to a given attacker — the paper's
/// prescription ("pick the bound whose adversary model matches yours")
/// as an API:
///   * membership-query access      -> Corollary 2 (LearnPoly),
///   * uniform-distribution samples -> the algorithm-independent bound,
///   * distribution-free samples    -> the [9] row (the only row proved in
///     that model — with its algorithm-specific caveat).
/// `rationale` (optional) receives a one-line explanation.
BoundRow applicable_bound(const AdversaryModel& attacker, std::size_t n,
                          std::size_t k, double eps, double delta,
                          std::string* rationale = nullptr);

}  // namespace pitfalls::core
