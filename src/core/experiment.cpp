#include "core/experiment.hpp"

#include "support/require.hpp"

namespace pitfalls::core {

double mean_of(std::size_t repeats,
               const std::function<double(std::size_t)>& experiment) {
  PITFALLS_REQUIRE(repeats > 0, "need at least one repeat");
  double sum = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) sum += experiment(r);
  return sum / static_cast<double>(repeats);
}

}  // namespace pitfalls::core
