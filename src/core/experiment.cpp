#include "core/experiment.hpp"

#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::core {

EvaluationReport evaluate(const Trainer& trainer, const CrpSet& train,
                          const CrpSet& test) {
  PITFALLS_REQUIRE(!train.empty(), "empty training set");
  PITFALLS_REQUIRE(!test.empty(), "empty test set");
  auto& registry = obs::MetricsRegistry::global();
  obs::TraceSpan span("core.evaluate");
  Stopwatch watch;
  const std::unique_ptr<BooleanFunction> hypothesis = [&] {
    obs::TraceSpan train_span("core.evaluate.train");
    return trainer(train);
  }();
  PITFALLS_ENSURE(hypothesis != nullptr, "trainer returned no hypothesis");

  EvaluationReport report;
  report.train_seconds = watch.seconds();
  report.train_size = train.size();
  report.test_size = test.size();
  {
    obs::TraceSpan eval_span("core.evaluate.test");
    obs::ScopedTimer eval_timer(registry, "core.eval_seconds");
    report.train_accuracy = train.accuracy_of(*hypothesis);
    report.test_accuracy = test.accuracy_of(*hypothesis);
  }
  registry.counter("core.evaluations").add(1);
  registry.histogram("core.train_seconds").observe(report.train_seconds);
  return report;
}

std::vector<LearningCurvePoint> learning_curve(
    const Trainer& trainer, const CrpSet& train, const CrpSet& test,
    const std::vector<std::size_t>& budgets) {
  obs::TraceSpan span("core.learning_curve");
  std::vector<LearningCurvePoint> curve;
  curve.reserve(budgets.size());
  for (auto budget : budgets) {
    PITFALLS_REQUIRE(budget > 0 && budget <= train.size(),
                     "budget exceeds available training CRPs");
    const CrpSet subset = train.prefix(budget);
    const EvaluationReport report = evaluate(trainer, subset, test);
    curve.push_back({budget, report.test_accuracy, report.train_seconds});
  }
  return curve;
}

double mean_of(std::size_t repeats,
               const std::function<double(std::size_t)>& experiment) {
  PITFALLS_REQUIRE(repeats > 0, "need at least one repeat");
  double sum = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) sum += experiment(r);
  return sum / static_cast<double>(repeats);
}

}  // namespace pitfalls::core
