// Experiment harness shared by the benches: train/test evaluation with
// timing, learning curves over CRP budgets, and repeated-instance averaging
// — the plumbing every table reproduction uses.
//
// The harness is dataset-generic on purpose: core sits below the puf plane
// in the module DAG (DESIGN.md §15), so it cannot name puf::CrpSet. Any
// dataset with empty()/size()/prefix()/accuracy_of() — CrpSet in every
// current caller — instantiates the templates.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "boolfn/boolean_function.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::core {

using boolfn::BooleanFunction;

/// Anything that turns a training dataset into a hypothesis.
template <typename Dataset>
using TrainerFor =
    std::function<std::unique_ptr<BooleanFunction>(const Dataset& train)>;

struct EvaluationReport {
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double train_seconds = 0.0;
};

struct LearningCurvePoint {
  std::size_t train_size = 0;
  double test_accuracy = 0.0;
  double train_seconds = 0.0;
};

/// Mean of `repeats` runs of `experiment` (each receiving the repeat index),
/// for instance-averaged table cells.
double mean_of(std::size_t repeats,
               const std::function<double(std::size_t)>& experiment);

/// Wall-clock helper for reported runtimes (table "seconds" columns and
/// bench wall_seconds). Diagnostics only — no experiment result may branch
/// on it, which is why these reads carry the wallclock suppression tag.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}  // lint:wallclock-ok
  double seconds() const {
    return std::chrono::duration<double>(  // lint:wallclock-ok
               std::chrono::steady_clock::now() - start_)  // lint:wallclock-ok
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // lint:wallclock-ok
};

/// Train on `train`, evaluate on both sets, time the training call.
template <typename Dataset>
EvaluationReport evaluate(const TrainerFor<Dataset>& trainer,
                          const Dataset& train, const Dataset& test) {
  PITFALLS_REQUIRE(!train.empty(), "empty training set");
  PITFALLS_REQUIRE(!test.empty(), "empty test set");
  auto& registry = obs::MetricsRegistry::global();
  obs::TraceSpan span("core.evaluate");
  Stopwatch watch;
  const std::unique_ptr<BooleanFunction> hypothesis = [&] {
    obs::TraceSpan train_span("core.evaluate.train");
    return trainer(train);
  }();
  PITFALLS_ENSURE(hypothesis != nullptr, "trainer returned no hypothesis");

  EvaluationReport report;
  report.train_seconds = watch.seconds();
  report.train_size = train.size();
  report.test_size = test.size();
  {
    obs::TraceSpan eval_span("core.evaluate.test");
    obs::ScopedTimer eval_timer(registry, "core.eval_seconds");
    report.train_accuracy = train.accuracy_of(*hypothesis);
    report.test_accuracy = test.accuracy_of(*hypothesis);
  }
  registry.counter("core.evaluations").add(1);
  registry.histogram("core.train_seconds").observe(report.train_seconds);
  return report;
}

/// Run the trainer on growing prefixes of `train` and report test accuracy
/// at each budget.
template <typename Dataset>
std::vector<LearningCurvePoint> learning_curve(
    const TrainerFor<Dataset>& trainer, const Dataset& train,
    const Dataset& test, const std::vector<std::size_t>& budgets) {
  obs::TraceSpan span("core.learning_curve");
  std::vector<LearningCurvePoint> curve;
  curve.reserve(budgets.size());
  for (auto budget : budgets) {
    PITFALLS_REQUIRE(budget > 0 && budget <= train.size(),
                     "budget exceeds available training CRPs");
    const Dataset subset = train.prefix(budget);
    const EvaluationReport report = evaluate(trainer, subset, test);
    curve.push_back({budget, report.test_accuracy, report.train_seconds});
  }
  return curve;
}

}  // namespace pitfalls::core
