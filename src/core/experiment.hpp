// Experiment harness shared by the benches: train/test evaluation with
// timing, learning curves over CRP budgets, and repeated-instance averaging
// — the plumbing every table reproduction uses.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "boolfn/boolean_function.hpp"
#include "puf/crp.hpp"

namespace pitfalls::core {

using boolfn::BooleanFunction;
using puf::CrpSet;

/// Anything that turns a training CRP set into a hypothesis.
using Trainer =
    std::function<std::unique_ptr<BooleanFunction>(const CrpSet& train)>;

struct EvaluationReport {
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  double train_seconds = 0.0;
};

/// Train on `train`, evaluate on both sets, time the training call.
EvaluationReport evaluate(const Trainer& trainer, const CrpSet& train,
                          const CrpSet& test);

struct LearningCurvePoint {
  std::size_t train_size = 0;
  double test_accuracy = 0.0;
  double train_seconds = 0.0;
};

/// Run the trainer on growing prefixes of `train` and report test accuracy
/// at each budget.
std::vector<LearningCurvePoint> learning_curve(
    const Trainer& trainer, const CrpSet& train, const CrpSet& test,
    const std::vector<std::size_t>& budgets);

/// Mean of `repeats` runs of `experiment` (each receiving the repeat index),
/// for instance-averaged table cells.
double mean_of(std::size_t repeats,
               const std::function<double(std::size_t)>& experiment);

/// Wall-clock helper for reported runtimes (table "seconds" columns and
/// bench wall_seconds). Diagnostics only — no experiment result may branch
/// on it, which is why these reads carry lint:wallclock-ok.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}  // lint:wallclock-ok
  double seconds() const {
    return std::chrono::duration<double>(  // lint:wallclock-ok
               std::chrono::steady_clock::now() - start_)  // lint:wallclock-ok
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // lint:wallclock-ok
};

}  // namespace pitfalls::core
