// The adversary model, made explicit.
//
// The paper's thesis is that an ML-based security claim is only meaningful
// relative to a fully specified adversary model along three axes (plus the
// inference goal Rivest [2] distinguishes). This header turns those axes
// into types so that claims and attackers can be compared mechanically by
// the pitfall auditor.
#pragma once

#include <string>

namespace pitfalls::core {

/// Section III: what the example distribution is assumed to be.
enum class DistributionAssumption {
  kArbitrary,  // distribution-free PAC (any fixed D)
  kUniform,    // uniform-distribution PAC
  kSpecific,   // some other fixed, known distribution
};

/// Section IV: how the attacker may interact with the device.
enum class AccessType {
  kRandomExamples,            // passive CRP eavesdropping
  kMembershipQueries,         // chosen challenges
  kEquivalenceQueries,        // hypothesis validation
  kMembershipAndEquivalence,  // the full Angluin teacher
};

/// Rivest's exact-vs-approximate distinction (Sections IV-A, V).
enum class InferenceGoal {
  kExact,        // recover the function exactly
  kApproximate,  // PAC: eps-close with confidence 1-delta
};

/// Section V-B: is the learner restricted to output hypotheses from the
/// target's own representation class?
enum class HypothesisRestriction {
  kProper,    // hypothesis must come from the concept class
  kImproper,  // any efficiently evaluable hypothesis allowed
};

std::string to_string(DistributionAssumption d);
std::string to_string(AccessType a);
std::string to_string(InferenceGoal g);
std::string to_string(HypothesisRestriction h);

struct AdversaryModel {
  DistributionAssumption distribution = DistributionAssumption::kArbitrary;
  AccessType access = AccessType::kRandomExamples;
  InferenceGoal goal = InferenceGoal::kApproximate;
  HypothesisRestriction hypothesis = HypothesisRestriction::kProper;

  std::string describe() const;
  bool operator==(const AdversaryModel& other) const = default;
};

/// Partial order on attacker power per axis: returns true when `stronger`
/// dominates `weaker` on every axis (more access, fewer distributional
/// demands satisfied by uniform, improper >= proper, approximate goals are
/// implied by exact learners).
bool at_least_as_strong(const AdversaryModel& stronger,
                        const AdversaryModel& weaker);

}  // namespace pitfalls::core
