#include "core/bounds.hpp"

#include <cmath>
#include <limits>

#include "core/adversary.hpp"
#include "support/require.hpp"

namespace pitfalls::core {

namespace {

void check_params(std::size_t n, std::size_t k, double eps, double delta) {
  PITFALLS_REQUIRE(n >= 1, "need at least one stage");
  PITFALLS_REQUIRE(k >= 1, "need at least one chain");
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  PITFALLS_REQUIRE(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
}

}  // namespace

double vc_dim_xor_arbiter(std::size_t n, std::size_t k) {
  PITFALLS_REQUIRE(n >= 1 && k >= 1, "need n >= 1 and k >= 1");
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return kd * (nd + 1.0) * (1.0 + std::log(kd * nd + kd));
}

double perceptron_crp_bound(std::size_t n, std::size_t k, double eps,
                            double delta) {
  check_params(n, k, eps, delta);
  const double nd = static_cast<double>(n);
  return std::pow(nd + 1.0, static_cast<double>(k)) / (eps * eps * eps) +
         std::log(1.0 / delta) / eps;
}

double general_crp_bound(std::size_t n, std::size_t k, double eps,
                         double delta) {
  check_params(n, k, eps, delta);
  return (vc_dim_xor_arbiter(n, k) * std::log(1.0 / eps) +
          std::log(1.0 / delta)) /
         eps;
}

double lmn_degree_cutoff(std::size_t k, double eps) {
  PITFALLS_REQUIRE(k >= 1, "need at least one chain");
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  const double kd = static_cast<double>(k);
  return 2.32 * kd * kd / (eps * eps);
}

double lmn_crp_bound(std::size_t n, std::size_t k, double eps, double delta) {
  check_params(n, k, eps, delta);
  const double m = lmn_degree_cutoff(k, eps);
  // n^m ln(1/delta), computed in log space to survive the astronomical range.
  const double log_value =
      m * std::log(static_cast<double>(n)) +
      std::log(std::log(1.0 / delta));
  if (log_value > 700.0) return std::numeric_limits<double>::infinity();
  return std::exp(log_value);
}

double bourgain_junta_size(double eps) {
  PITFALLS_REQUIRE(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
  return std::pow(eps, -1.5);
}

double learnpoly_query_bound(std::size_t n, std::size_t k, double eps,
                             double delta) {
  check_params(n, k, eps, delta);
  const double r = std::ceil(bourgain_junta_size(eps));
  const double log_s = std::log(static_cast<double>(k)) + r * std::log(2.0);
  if (log_s > 700.0) return std::numeric_limits<double>::infinity();
  const double s = std::exp(log_s);  // k 2^r monomials
  return static_cast<double>(n) * r * s + s * std::log(1.0 / delta) / eps;
}

std::vector<BoundRow> table1_rows(std::size_t n, std::size_t k, double eps,
                                  double delta) {
  return {
      {"[9]", "Arbitrary", "Perceptron", "Random examples",
       perceptron_crp_bound(n, k, eps, delta)},
      {"General", "Uniform", "Independent", "Uniformly-distributed examples",
       general_crp_bound(n, k, eps, delta)},
      {"Corollary 1", "Uniform", "LMN [16]", "Uniformly-distributed examples",
       lmn_crp_bound(n, k, eps, delta)},
      {"Corollary 2", "Uniform", "LearnPoly [21]", "Membership queries",
       learnpoly_query_bound(n, k, eps, delta)},
  };
}

BoundRow applicable_bound(const AdversaryModel& attacker, std::size_t n,
                          std::size_t k, double eps, double delta,
                          std::string* rationale) {
  const auto rows = table1_rows(n, k, eps, delta);
  const bool has_mq =
      attacker.access == AccessType::kMembershipQueries ||
      attacker.access == AccessType::kMembershipAndEquivalence;
  if (has_mq) {
    if (rationale != nullptr)
      *rationale =
          "attacker has chosen-challenge access: the membership-query row "
          "(Corollary 2) governs";
    return rows[3];
  }
  if (attacker.distribution == DistributionAssumption::kUniform) {
    if (rationale != nullptr)
      *rationale =
          "uniform random examples only: the algorithm-independent uniform "
          "bound governs (the LMN row is an algorithm-specific alternative)";
    return rows[1];
  }
  if (rationale != nullptr)
    *rationale =
        "distribution-free random examples: only the [9] row was proved in "
        "this model — and it is algorithm-specific (Perceptron)";
  return rows[0];
}

}  // namespace pitfalls::core
