// The pitfall auditor — the paper's conclusion as an executable checklist.
//
// A SecurityClaim records the adversary model a published security argument
// was proved against, plus flags for the representational assumptions it
// makes. audit() compares the claim against a (realistic) attacker model
// and emits one finding per pitfall the paper identifies:
//
//   P1  distribution mismatch      (Section III)
//   P2  access underestimated      (Section IV)
//   P3  algorithm-specific bound   (Section III-A, Table I footnote)
//   P4  concept representation unvalidated  (Section V-A)
//   P5  hypothesis class restricted (improper learning ignored, Section V-B)
//   P6  exact/approximate confusion (Rivest's distinction, Section IV-A)
//
// The case studies the paper walks through ([9], [4], [5], [11]) ship as
// pre-built claims so the audit can be demonstrated end-to-end.
#pragma once

#include <string>
#include <vector>

#include "core/adversary.hpp"

namespace pitfalls::core {

struct SecurityClaim {
  std::string primitive;   // e.g. "n-bit k-XOR Arbiter PUF"
  std::string statement;   // the published claim, one line
  std::string source;      // citation tag, e.g. "[9]"
  AdversaryModel model;    // the adversary model the claim was proved in

  /// The proof's bound is tied to one algorithm's mistake/sample bound.
  bool algorithm_specific = false;
  /// The concept-class representation (e.g. "BR PUFs are LTFs") was assumed
  /// rather than validated against the device.
  bool representation_validated = true;
  /// The claim's impossibility/security argument is about exact inference
  /// only (approximation left open).
  bool exact_only_argument = false;
};

enum class PitfallKind {
  kDistributionMismatch,
  kAccessUnderestimated,
  kAlgorithmSpecificBound,
  kRepresentationUnvalidated,
  kHypothesisRestriction,
  kExactApproximateConfusion,
};

std::string to_string(PitfallKind kind);

enum class Severity { kInfo, kWarning, kCritical };

std::string to_string(Severity severity);

struct PitfallFinding {
  PitfallKind kind;
  Severity severity;
  std::string explanation;
};

class PitfallAuditor {
 public:
  /// Compare a published claim against an attacker and list every pitfall
  /// that makes the claim inapplicable to that attacker.
  std::vector<PitfallFinding> audit(const SecurityClaim& claim,
                                    const AdversaryModel& attacker) const;
};

/// The paper's case studies, ready for auditing.
namespace claims {

/// [9] Ganji et al.: "beyond k chains, the PAC learner fails" — proved via
/// the Perceptron mistake bound in the distribution-free model.
SecurityClaim ganji2015_xor_bound();

/// [4] Shamsi et al.: exact-inference resilience of some locked circuits.
SecurityClaim shamsi2019_impossibility();

/// [5] AppSAT's online-ML framing of approximate deobfuscation.
SecurityClaim appsat2017_online_model();

/// [11] Xu et al.: BR PUFs modeled (and defended) as LTFs.
SecurityClaim xu2015_br_ltf();

}  // namespace claims

/// The realistic hardware attacker the paper argues for: uniform examples
/// are what "random CRPs" mean in practice, hardware exposes chosen
/// challenges, and nothing restricts the hypothesis representation.
AdversaryModel realistic_hardware_attacker();

}  // namespace pitfalls::core
