#include "core/adversary.hpp"

namespace pitfalls::core {

std::string to_string(DistributionAssumption d) {
  switch (d) {
    case DistributionAssumption::kArbitrary: return "arbitrary distribution";
    case DistributionAssumption::kUniform: return "uniform distribution";
    case DistributionAssumption::kSpecific: return "specific distribution";
  }
  return "?";
}

std::string to_string(AccessType a) {
  switch (a) {
    case AccessType::kRandomExamples: return "random examples";
    case AccessType::kMembershipQueries: return "membership queries";
    case AccessType::kEquivalenceQueries: return "equivalence queries";
    case AccessType::kMembershipAndEquivalence:
      return "membership + equivalence queries";
  }
  return "?";
}

std::string to_string(InferenceGoal g) {
  switch (g) {
    case InferenceGoal::kExact: return "exact inference";
    case InferenceGoal::kApproximate: return "approximate inference";
  }
  return "?";
}

std::string to_string(HypothesisRestriction h) {
  switch (h) {
    case HypothesisRestriction::kProper: return "proper hypotheses";
    case HypothesisRestriction::kImproper: return "improper hypotheses";
  }
  return "?";
}

std::string AdversaryModel::describe() const {
  return to_string(distribution) + ", " + to_string(access) + ", " +
         to_string(goal) + ", " + to_string(hypothesis);
}

namespace {

int access_rank(AccessType a) {
  switch (a) {
    case AccessType::kRandomExamples: return 0;
    case AccessType::kEquivalenceQueries:
      // Angluin: EQ is simulable from random examples, so it does not add
      // power over them on its own.
      return 0;
    case AccessType::kMembershipQueries: return 1;
    case AccessType::kMembershipAndEquivalence: return 2;
  }
  return 0;
}

}  // namespace

bool at_least_as_strong(const AdversaryModel& stronger,
                        const AdversaryModel& weaker) {
  // Distribution: a distribution-free learner serves every distribution, so
  // "arbitrary" is the *stronger requirement on the learner* — an attacker
  // that only needs the uniform distribution is easier to realise. For
  // attacker power comparison: needing less (uniform) >= needing arbitrary.
  const auto dist_rank = [](DistributionAssumption d) {
    switch (d) {
      case DistributionAssumption::kArbitrary: return 0;  // hardest to run
      case DistributionAssumption::kSpecific: return 1;
      case DistributionAssumption::kUniform: return 2;    // easiest to run
    }
    return 0;
  };
  if (dist_rank(stronger.distribution) < dist_rank(weaker.distribution))
    return false;
  if (access_rank(stronger.access) < access_rank(weaker.access)) return false;
  // Exact learners imply approximate ones.
  if (stronger.goal == InferenceGoal::kApproximate &&
      weaker.goal == InferenceGoal::kExact)
    return false;
  if (stronger.hypothesis == HypothesisRestriction::kProper &&
      weaker.hypothesis == HypothesisRestriction::kImproper)
    return false;
  return true;
}

}  // namespace pitfalls::core
