#include "core/feasibility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "boolfn/fourier.hpp"
#include "support/combinatorics.hpp"
#include "support/require.hpp"

namespace pitfalls::core {

LmnFeasibilityReport estimate_lmn_feasibility(
    const boolfn::BooleanFunction& target, std::size_t budget,
    support::Rng& rng, const LmnFeasibilityConfig& config) {
  PITFALLS_REQUIRE(!config.probe_eps.empty(), "need at least one probe");
  PITFALLS_REQUIRE(config.samples_per_probe > 0, "need probe samples");
  PITFALLS_REQUIRE(config.attack_eps > 0.0 && config.attack_eps < 1.0,
                   "attack eps must be in (0,1)");
  PITFALLS_REQUIRE(config.attack_delta > 0.0 && config.attack_delta < 1.0,
                   "attack delta must be in (0,1)");
  PITFALLS_REQUIRE(budget > 0, "need a positive budget");

  LmnFeasibilityReport report;
  report.budget = budget;

  for (const double eps : config.probe_eps) {
    PITFALLS_REQUIRE(eps > 0.0 && eps < 0.5, "probe eps must be in (0,0.5)");
    const double ns = boolfn::estimate_noise_sensitivity(
        target, eps, config.samples_per_probe, rng);
    report.noise_sensitivity.emplace_back(eps, ns);
    report.effective_k =
        std::max(report.effective_k, ns / std::sqrt(eps));
  }

  // Corollary 1: m = 2.32 khat^2 / eps^2 at the attack accuracy.
  report.degree_cutoff = 2.32 * report.effective_k * report.effective_k /
                         (config.attack_eps * config.attack_eps);

  const double n = static_cast<double>(target.num_vars());
  const double log_bound =
      report.degree_cutoff * std::log(n) +
      std::log(std::log(1.0 / config.attack_delta));
  report.sample_bound = log_bound > 700.0
                            ? std::numeric_limits<double>::infinity()
                            : std::exp(log_bound);

  const auto degree = static_cast<std::uint64_t>(
      std::ceil(std::min(report.degree_cutoff, n)));
  report.coefficients =
      support::binomial_sum(target.num_vars(), degree);

  report.feasible_at_budget =
      std::isfinite(report.sample_bound) &&
      report.sample_bound <= static_cast<double>(budget);
  return report;
}

}  // namespace pitfalls::core
