#include "core/pitfalls.hpp"

namespace pitfalls::core {

std::string to_string(PitfallKind kind) {
  switch (kind) {
    case PitfallKind::kDistributionMismatch:
      return "distribution mismatch";
    case PitfallKind::kAccessUnderestimated:
      return "access underestimated";
    case PitfallKind::kAlgorithmSpecificBound:
      return "algorithm-specific bound";
    case PitfallKind::kRepresentationUnvalidated:
      return "concept representation unvalidated";
    case PitfallKind::kHypothesisRestriction:
      return "hypothesis class restricted";
    case PitfallKind::kExactApproximateConfusion:
      return "exact/approximate confusion";
  }
  return "?";
}

std::string to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

std::vector<PitfallFinding> PitfallAuditor::audit(
    const SecurityClaim& claim, const AdversaryModel& attacker) const {
  std::vector<PitfallFinding> findings;

  // P1 — Section III: a lower bound proved in the distribution-free model
  // says nothing about an attacker who only needs the uniform distribution;
  // positive uniform-PAC results (e.g. LMN for AC0) may exist.
  if (claim.model.distribution == DistributionAssumption::kArbitrary &&
      attacker.distribution == DistributionAssumption::kUniform) {
    findings.push_back(
        {PitfallKind::kDistributionMismatch, Severity::kCritical,
         "claim proved in the distribution-free PAC model, but the attacker "
         "samples uniformly: uniform-distribution PAC results (LMN-style) "
         "can invalidate the claimed hardness"});
  }

  // P2 — Section IV: hardware usually exposes chosen challenges, so a claim
  // assuming passive examples underestimates the attacker.
  const bool claim_assumes_passive =
      claim.model.access == AccessType::kRandomExamples ||
      claim.model.access == AccessType::kEquivalenceQueries;
  const bool attacker_has_mq =
      attacker.access == AccessType::kMembershipQueries ||
      attacker.access == AccessType::kMembershipAndEquivalence;
  if (claim_assumes_passive && attacker_has_mq) {
    findings.push_back(
        {PitfallKind::kAccessUnderestimated, Severity::kCritical,
         "claim assumes random examples only, but the device answers chosen "
         "challenges: membership-query learners (LearnPoly, L*) apply and "
         "can learn classes that are hard from random examples"});
  }

  // P3 — Table I footnote: a mistake-bound argument for one algorithm is
  // not a sample-complexity bound for the class.
  if (claim.algorithm_specific) {
    findings.push_back(
        {PitfallKind::kAlgorithmSpecificBound, Severity::kWarning,
         "the bound is tied to one algorithm's mistake bound; an "
         "algorithm-independent (VC) bound or a different algorithm (LMN) "
         "yields different — sometimes exponentially better — complexity"});
  }

  // P4 — Section V-A: using an unvalidated representation caps achievable
  // accuracy and misleads both attacks and defenses.
  if (!claim.representation_validated) {
    findings.push_back(
        {PitfallKind::kRepresentationUnvalidated, Severity::kCritical,
         "the concept-class representation was assumed, not validated: run "
         "a property tester (e.g. the halfspace tester) before concluding "
         "learnability or its absence"});
  }

  // P5 — Section V-B: impossibility for proper learners does not bind an
  // improper attacker.
  if (claim.model.hypothesis == HypothesisRestriction::kProper &&
      attacker.hypothesis == HypothesisRestriction::kImproper) {
    findings.push_back(
        {PitfallKind::kHypothesisRestriction, Severity::kWarning,
         "claim restricts the hypothesis representation; improper learners "
         "(LMN, L* DFAs) are strictly more powerful and remain available "
         "to the attacker"});
  }

  // P6 — Section IV-A: exact-inference resilience does not imply
  // approximation resilience, and uniform-PAC learners convert to exact
  // learners once membership queries are available.
  if (claim.exact_only_argument) {
    const Severity severity = attacker_has_mq ? Severity::kCritical
                                              : Severity::kWarning;
    findings.push_back(
        {PitfallKind::kExactApproximateConfusion, severity,
         "the argument addresses exact inference only; approximate learning "
         "may still succeed, and with membership queries approximate "
         "learners convert to exact ones, voiding the distinction"});
  }

  return findings;
}

namespace claims {

SecurityClaim ganji2015_xor_bound() {
  SecurityClaim claim;
  claim.primitive = "n-bit k-XOR Arbiter PUF";
  claim.statement =
      "beyond an upper bound on k, a provable ML algorithm cannot learn the "
      "PUF from random CRPs";
  claim.source = "[9]";
  claim.model.distribution = DistributionAssumption::kArbitrary;
  claim.model.access = AccessType::kRandomExamples;
  claim.model.goal = InferenceGoal::kApproximate;
  claim.model.hypothesis = HypothesisRestriction::kProper;
  claim.algorithm_specific = true;  // Perceptron mistake bound
  claim.representation_validated = true;  // arbiter chains ARE LTFs
  return claim;
}

SecurityClaim shamsi2019_impossibility() {
  SecurityClaim claim;
  claim.primitive = "combinationally locked circuit";
  claim.statement =
      "approximation-resilience is impossible, but exact-inference "
      "resilience can be ensured for some locked circuits";
  claim.source = "[4]";
  claim.model.distribution = DistributionAssumption::kArbitrary;
  claim.model.access = AccessType::kRandomExamples;
  claim.model.goal = InferenceGoal::kExact;
  claim.model.hypothesis = HypothesisRestriction::kProper;
  claim.exact_only_argument = true;
  return claim;
}

SecurityClaim appsat2017_online_model() {
  SecurityClaim claim;
  claim.primitive = "combinationally locked circuit";
  claim.statement =
      "online-ML deobfuscation approximates the locked circuit; circuit "
      "size enters only through the allowed mistake budget";
  claim.source = "[5]";
  claim.model.distribution = DistributionAssumption::kUniform;
  claim.model.access = AccessType::kMembershipQueries;
  claim.model.goal = InferenceGoal::kApproximate;
  claim.model.hypothesis = HypothesisRestriction::kImproper;
  return claim;
}

SecurityClaim xu2015_br_ltf() {
  SecurityClaim claim;
  claim.primitive = "Bistable Ring PUF";
  claim.statement =
      "BR PUFs can be represented by linear threshold functions and "
      "defended accordingly";
  claim.source = "[11]";
  claim.model.distribution = DistributionAssumption::kUniform;
  claim.model.access = AccessType::kRandomExamples;
  claim.model.goal = InferenceGoal::kApproximate;
  claim.model.hypothesis = HypothesisRestriction::kProper;
  claim.representation_validated = false;  // the pitfall Tables II/III expose
  return claim;
}

}  // namespace claims

AdversaryModel realistic_hardware_attacker() {
  AdversaryModel attacker;
  attacker.distribution = DistributionAssumption::kUniform;
  attacker.access = AccessType::kMembershipAndEquivalence;
  attacker.goal = InferenceGoal::kApproximate;
  attacker.hypothesis = HypothesisRestriction::kImproper;
  return attacker;
}

}  // namespace pitfalls::core
