// Black-box LMN-feasibility estimation — the paper's Corollary 1 pipeline
// packaged as a measurement tool.
//
// Corollary 1's logic: noise sensitivity NS_eps(h) <= alpha(eps) = k
// sqrt(eps) implies Fourier concentration below degree m = 1/alpha^{-1}
// (eps/2.32), hence an LMN sample bound n^{O(m)}. Given only oracle access
// to an unknown primitive, we estimate NS at several eps, fit the implied
// "effective k" (khat = NS/sqrt(eps)), derive the degree cutoff and the
// sample bound, and report whether a uniform-distribution LMN attacker is
// feasible at a given budget. This turns the paper's theory into the tool
// a designer would actually run against a candidate primitive.
#pragma once

#include <vector>

#include "boolfn/boolean_function.hpp"
#include "support/rng.hpp"

namespace pitfalls::core {

struct LmnFeasibilityConfig {
  /// Flip probabilities at which NS is measured.
  std::vector<double> probe_eps{0.01, 0.02, 0.05};
  /// Samples per NS probe.
  std::size_t samples_per_probe = 20000;
  /// Target accuracy/confidence of the hypothetical LMN attack.
  double attack_eps = 0.25;
  double attack_delta = 0.01;
};

struct LmnFeasibilityReport {
  /// (eps, measured NS) pairs.
  std::vector<std::pair<double, double>> noise_sensitivity;
  /// Effective KOS constant: max over probes of NS/sqrt(eps).
  double effective_k = 0.0;
  /// Degree cutoff m = 2.32 khat^2 / attack_eps^2 (Corollary 1's formula).
  double degree_cutoff = 0.0;
  /// Implied sample bound n^m ln(1/delta) (inf when astronomically large).
  double sample_bound = 0.0;
  /// Number of low-degree coefficients an LMN run would estimate
  /// (saturates at UINT64_MAX).
  std::uint64_t coefficients = 0;
  /// Feasible at the given budget?
  bool feasible_at_budget = false;
  std::size_t budget = 0;
};

/// Probe `target` and derive the Corollary 1 quantities. `budget` is the
/// CRP budget against which feasibility is judged.
LmnFeasibilityReport estimate_lmn_feasibility(
    const boolfn::BooleanFunction& target, std::size_t budget,
    support::Rng& rng, const LmnFeasibilityConfig& config = {});

}  // namespace pitfalls::core
