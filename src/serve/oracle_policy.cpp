#include "serve/oracle_policy.hpp"

#include <utility>

#include "support/require.hpp"

namespace pitfalls::serve {

ml::MembershipOracle& OracleStack::top() {
  if (recorder_) return *recorder_;
  return *faulty_;
}

std::size_t OracleStack::replayed_queries() const {
  return recorder_ ? recorder_->replayed_queries() : 0;
}

void OracleStack::flush() {
  if (recorder_) recorder_->flush_now();
}

OraclePolicy::OraclePolicy(std::string checkpoint_path,
                           std::string fleet_fingerprint)
    : checkpoint_path_(std::move(checkpoint_path)),
      fleet_fingerprint_(std::move(fleet_fingerprint)) {}

std::string OraclePolicy::session_path(const std::string& name) const {
  PITFALLS_REQUIRE(!checkpoint_path_.empty(),
                   "oracle sessions need the daemon --checkpoint path");
  return checkpoint_path_ + ".sess-" + name + ".snap";
}

std::unique_ptr<OracleStack> OraclePolicy::open(
    const JobSpec& spec, const boolfn::BooleanFunction& token) const {
  PITFALLS_REQUIRE(spec.kind == JobKind::kAttack,
                   "oracle stacks exist for attack jobs only");
  // Cannot use make_unique: the constructor is private to this factory.
  std::unique_ptr<OracleStack> stack(new OracleStack());
  stack->base_ = std::make_unique<ml::FunctionMembershipOracle>(token);
  // The fault stream is keyed by the job seed, not the daemon seed: the
  // fault sequence belongs to the spec, so resubmitting a spec (or resuming
  // its session on another daemon instance over the same fleet) replays the
  // identical channel.
  stack->faulty_ = std::make_unique<ml::robust::FaultyMembershipOracle>(
      *stack->base_, spec.faults, spec.seed);
  if (!spec.session.empty()) {
    // Sessions always resume when their file exists: a continuation job
    // with a refilled query_budget replays the journaled interactions for
    // free and answers the stripped refusals live (drop_recorded_refusals).
    stack->session_ = std::make_unique<store::CheckpointSession>(
        session_path(spec.session), spec.seed,
        fleet_fingerprint_ + " session=" + spec.session +
            " token=" + std::to_string(spec.token),
        /*resume=*/true);
    stack->recorder_ = std::make_unique<store::RecordingOracle>(
        *stack->faulty_, *stack->session_, "oracle.log",
        stack->faulty_.get(), /*flush_every=*/256,
        /*drop_recorded_refusals=*/true);
  }
  return stack;
}

}  // namespace pitfalls::serve
