// Sharded, LRU-bounded fleet of lazily-materialized PUF tokens —
// DESIGN.md §16.
//
// A fleet of millions of tokens costs nothing at rest: a token *is* its id
// (puf/token.hpp derives the full model from (fleet seed, id)). What must
// be bounded is the set of tokens resident in memory at once, because a
// materialized XorArbiterPuf carries stages*chains doubles. TokenFleet
// keeps residency behind `shards` independent shards (id % shards), each an
// ordered map plus an LRU index under its own mutex, so concurrent jobs
// touching different tokens never contend on one lock and the per-shard
// working set is evicted least-recently-used once the resident budget is
// exceeded.
//
// Determinism: materialization is pure, so eviction and re-materialization
// can never change a single response byte — the LRU only decides *when*
// the weights are recomputed, never what they are. Job outcomes therefore
// stay byte-identical for any resident_limit, shard count, access
// interleaving or PITFALLS_THREADS value. (The serve.fleet.* cache
// counters do depend on interleaving — which is why the daemon's wire
// stream never includes them; they live in the registry for diagnostics.)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "puf/token.hpp"

namespace pitfalls::serve {

struct TokenFleetConfig {
  std::uint64_t seed = 1;
  /// Fleet population: valid token ids are [0, tokens).
  std::uint64_t tokens = 1'000'000;
  puf::TokenSpec spec;
  /// Upper bound on simultaneously materialized token models, spread
  /// evenly over the shards (each shard holds at least one).
  std::size_t resident_limit = 4096;
  std::size_t shards = 64;
};

class TokenFleet {
 public:
  explicit TokenFleet(const TokenFleetConfig& config);

  /// The token's model, materializing (and possibly evicting) as needed.
  /// The returned pointer keeps the model alive even if the fleet evicts
  /// it concurrently; token_id must be < config().tokens.
  std::shared_ptr<const puf::XorArbiterPuf> acquire(std::uint64_t token_id);

  /// Tokens currently materialized across all shards.
  std::size_t resident() const;

  const TokenFleetConfig& config() const { return config_; }

  /// Canonical fleet identity (population, spec, seed) — the provenance
  /// string session snapshots are bound to, so a journal can never be
  /// replayed against a differently-configured fleet.
  std::string fingerprint() const;

 private:
  struct Entry {
    std::shared_ptr<const puf::XorArbiterPuf> model;
    std::uint64_t tick = 0;  // shard-local LRU position
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::uint64_t, Entry> entries;          // token id -> entry
    std::map<std::uint64_t, std::uint64_t> by_tick;  // tick -> token id
    std::uint64_t next_tick = 0;
  };

  TokenFleetConfig config_;
  std::size_t per_shard_limit_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pitfalls::serve
