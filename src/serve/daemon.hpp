// The serve daemon: protocol loop, journaling, and streamed obs —
// DESIGN.md §16.
//
// Wire protocol (one JSON document per line, both directions):
//
//   -> {"type":"job", "id":..., "kind":"auth|attack|query", ...}  queue a job
//   -> {"type":"run"}                    execute the queued wave
//   -> {"type":"drain"}                  run the wave, flush, exit 0
//   (end of input behaves like "drain")
//
//   <- {"type":"hello", "schema":1, "fleet":{...}, "checkpoint":bool}
//   <- {"type":"ack", "id":...}          job accepted into the wave
//   <- {"type":"obs", "scope":"job", "id":..., ...}   per-job accounting
//   <- {"type":"outcome", "id":..., ...} per-job result
//   <- {"type":"obs", "scope":"wave", "counters":{...}}  registry deltas
//   <- {"type":"error", "id":...|null, "message":...}
//   <- {"type":"resumed", "id":...}      outcome served from the journal
//   <- {"type":"drained", "jobs":N}      clean shutdown marker (last line)
//
// Jobs inside a wave run concurrently (serve/scheduler.hpp); blocks are
// emitted strictly in submission order, and the streamed obs deltas cover
// only the deterministic serve.jobs./serve.wire./serve.session. counter
// families — so the full output stream is byte-identical for any
// PITFALLS_THREADS value.
//
// Crash safety: with a checkpoint configured, every finished job block is
// journaled (sections job.<id>.spec / job.<id>.block) and the file is
// flushed after each job. A daemon restarted with --resume serves journaled
// outcomes back without re-executing — provided the resubmitted spec
// fingerprints identically — so kill -9 mid-run plus a resume replays the
// identical outcome stream. SIGTERM is cooperative (store termination
// flag): polled between protocol lines, it drains and exits 143.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/oracle_policy.hpp"
#include "serve/scheduler.hpp"
#include "serve/token_fleet.hpp"
#include "serve/wire.hpp"
#include "store/checkpoint.hpp"

namespace pitfalls::serve {

struct DaemonConfig {
  TokenFleetConfig fleet;
  /// Empty: no persistence (sessions and resume disabled).
  std::string checkpoint_path;
  /// Load an existing checkpoint and serve journaled outcomes back.
  bool resume = false;
};

class Daemon {
 public:
  explicit Daemon(const DaemonConfig& config);

  /// Serve one connection to completion. Returns the process exit status:
  /// 0 after drain/EOF, 143 after a cooperative SIGTERM drain.
  int serve(LineChannel& channel);

  const TokenFleet& fleet() const { return fleet_; }

 private:
  struct Pending {
    JobSpec spec;
    bool journaled = false;  // outcome already in the checkpoint journal
  };

  enum class Request { kContinue, kRanWave, kDrain };

  void emit_hello(LineChannel& channel);
  Request handle_request(LineChannel& channel, const std::string& line);
  void run_pending(LineChannel& channel);
  void journal_block(const JobSpec& spec, const JobResult& result);
  bool journaled_block(const JobSpec& spec, JobResult& out);
  int drain(LineChannel& channel, obs::StreamingReporter& reporter);

  DaemonConfig config_;
  TokenFleet fleet_;
  OraclePolicy policy_;
  JobScheduler scheduler_;
  std::unique_ptr<store::CheckpointSession> session_;
  std::vector<Pending> pending_;
  std::map<std::string, bool> seen_ids_;  // duplicate-submission guard
  std::uint64_t jobs_emitted_ = 0;
  /// PITFALLS_SERVE_KILL_AFTER_JOBS: deterministic kill -9 stand-in — after
  /// the N-th journaled job the daemon exits hard (status 137, SIGKILL's)
  /// without draining, landing the crash between journal flushes without
  /// signal-delivery races. 0 = disabled.
  std::uint64_t kill_after_jobs_ = 0;
  std::uint64_t jobs_journaled_ = 0;
};

}  // namespace pitfalls::serve
