#include "serve/wire.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "support/require.hpp"

namespace pitfalls::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

FdChannel::FdChannel(int in_fd, int out_fd) : in_fd_(in_fd), out_fd_(out_fd) {
  PITFALLS_REQUIRE(in_fd >= 0 && out_fd >= 0,
                   "channel needs valid file descriptors");
}

bool FdChannel::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);  // unterminated final line
      buffer_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::read(in_fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;  // e.g. SIGTERM — caller polls the flag
      throw_errno("serve wire read");
    }
    if (got == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

void FdChannel::write_line(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t put =
        ::write(out_fd_, framed.data() + written, framed.size() - written);
    if (put < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve wire write");
    }
    written += static_cast<std::size_t>(put);
  }
}

MemoryChannel::MemoryChannel(std::vector<std::string> input)
    : input_(std::move(input)) {}

bool MemoryChannel::read_line(std::string& line) {
  if (cursor_ >= input_.size()) return false;
  line = input_[cursor_++];
  return true;
}

void MemoryChannel::write_line(std::string_view line) {
  output_.emplace_back(line);
}

std::string MemoryChannel::joined_output() const {
  std::string joined;
  for (const std::string& line : output_) {
    joined += line;
    joined += '\n';
  }
  return joined;
}

int listen_unix(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  PITFALLS_REQUIRE(path.size() < sizeof(address.sun_path),
                   "unix socket path too long");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve socket");
  ::unlink(path.c_str());  // replace a stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve bind " + path);
  }
  if (::listen(fd, 8) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve listen " + path);
  }
  return fd;
}

int accept_unix(int listen_fd) {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client >= 0) return client;
    if (errno == EINTR) continue;
    throw_errno("serve accept");
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace pitfalls::serve
