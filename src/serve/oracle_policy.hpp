// Per-session oracle policy for attack jobs — DESIGN.md §16.
//
// Every attack job talks to its token through a private channel stack built
// here from the job spec alone:
//
//   FunctionMembershipOracle (the token's ideal CRP map)
//     -> FaultyMembershipOracle (the §9 fault layer: eta / bursts / drops /
//        lifetime query budget, seeded from the job seed so the fault
//        sequence is a pure function of the spec)
//     -> RecordingOracle (only when the spec names a session: journals every
//        interaction into the session's snapshot file, replays it for free
//        on resume, and strips recorded budget refusals so a continuation
//        job with a larger query_budget answers them live — the
//        budget-refill continuation of ROADMAP item 5)
//
// Each stack is owned by exactly one job; per-job session files
// (<checkpoint>.sess-<name>.snap) are never shared between concurrent jobs,
// which is what keeps journaling race-free on the scheduler's worker pool.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "ml/oracle.hpp"
#include "ml/robust/faults.hpp"
#include "serve/job.hpp"
#include "store/checkpoint.hpp"

namespace pitfalls::serve {

/// The channel stack for one attack job. Members are declared bottom-up so
/// construction/destruction order matches the decoration order.
class OracleStack {
 public:
  /// `top()` is what the learner queries: the recorder when the spec names
  /// a session, the bare fault channel otherwise.
  ml::MembershipOracle& top();

  /// Fault-channel accounting for the job's obs line (physical queries,
  /// injected flips, dropped responses).
  const ml::robust::FaultyMembershipOracle& faults() const { return *faulty_; }

  /// Journal-replay accounting (0 without a session).
  std::size_t replayed_queries() const;

  /// Persist the session journal now (no-op without a session). Called at
  /// job end and by the daemon's drain path.
  void flush();

 private:
  friend class OraclePolicy;
  OracleStack() = default;

  std::unique_ptr<ml::FunctionMembershipOracle> base_;
  std::unique_ptr<ml::robust::FaultyMembershipOracle> faulty_;
  std::unique_ptr<store::CheckpointSession> session_;
  std::unique_ptr<store::RecordingOracle> recorder_;
};

/// Daemon-level factory: binds the fleet identity and the checkpoint base
/// path, then opens one stack per attack job.
class OraclePolicy {
 public:
  /// `checkpoint_path` empty disables sessions (a spec naming one is
  /// rejected); otherwise session files live next to the daemon checkpoint
  /// as "<checkpoint_path>.sess-<name>.snap". `fleet_fingerprint` goes into
  /// each session's provenance so a journal can never be replayed against a
  /// differently-configured fleet.
  OraclePolicy(std::string checkpoint_path, std::string fleet_fingerprint);

  /// Build the channel stack for `spec` over the token's ideal CRP map.
  /// `token` must outlive the stack.
  std::unique_ptr<OracleStack> open(const JobSpec& spec,
                                    const boolfn::BooleanFunction& token) const;

  /// The snapshot file backing session `name`.
  std::string session_path(const std::string& name) const;

 private:
  std::string checkpoint_path_;
  std::string fleet_fingerprint_;
};

}  // namespace pitfalls::serve
