// Job specifications for the attack-service plane — DESIGN.md §16.
//
// A job is one unit of verifier- or adversary-side work against one fleet
// token, submitted as a single JSON object on the wire (serve/wire.hpp) and
// executed by the scheduler (serve/scheduler.hpp). Three kinds:
//
//   * auth   — `rounds` lockdown-style authentication rounds (§ lockdown.hpp
//              protocol shape: half the challenge from the verifier nonce,
//              half from the token nonce; no chosen challenges).
//   * attack — a modeling attack: collect `budget` chosen-challenge CRPs
//              through the per-job oracle policy (serve/oracle_policy.hpp),
//              fit a logistic model in the parity representation, score it
//              on `eval` fresh CRPs.
//   * query  — raw chosen-challenge evaluation of an explicit challenge
//              block (the §11 batch plane on the wire).
//
// Every outcome is a pure function of (fleet config, spec) — the spec
// carries its own `seed`, so two submissions of the same spec produce
// byte-identical output blocks at any PITFALLS_THREADS. canonical() renders
// the spec into a normal form whose crc32 (`fingerprint()`) guards journal
// resume: a journaled outcome is only served back when the resubmitted spec
// fingerprints identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/robust/faults.hpp"
#include "obs/json.hpp"
#include "support/bitvec.hpp"

namespace pitfalls::serve {

enum class JobKind { kAuth, kAttack, kQuery };

const char* to_string(JobKind kind);

struct JobSpec {
  std::string id;
  JobKind kind = JobKind::kQuery;
  /// Target token within the fleet population.
  std::uint64_t token = 0;
  /// Root of the job's private RNG stream (challenge/nonce draws).
  std::uint64_t seed = 0;

  // auth
  std::size_t rounds = 0;

  // attack
  std::size_t budget = 0;  // training CRPs to collect
  std::size_t eval = 0;    // fresh CRPs the hypothesis is scored on
  /// Per-job oracle policy: the §9 fault channel between the attacker and
  /// the token (eta, bursts, drops, lifetime query budget).
  ml::robust::FaultConfig faults;
  /// Non-empty: journal the oracle interaction into a named per-job session
  /// so a lockdown-tripped attack can be continued later with a refilled
  /// budget (replayed queries charge nothing — DESIGN.md §16).
  std::string session;

  // query
  std::vector<support::BitVec> challenges;

  /// Parse one wire request object ({"type":"job",...}). Throws
  /// std::invalid_argument with a caller-presentable message on any
  /// missing/ill-typed/out-of-range field.
  static JobSpec parse(const obs::JsonValue& request);

  /// Normal-form rendering of every outcome-relevant field (formatting of
  /// the original request does not matter).
  std::string canonical() const;

  /// crc32(canonical()) — the resume guard for journaled outcomes.
  std::uint32_t fingerprint() const;
};

}  // namespace pitfalls::serve
