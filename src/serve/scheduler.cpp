#include "serve/scheduler.hpp"

#include <exception>

#include "ml/features.hpp"
#include "ml/logistic.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "puf/crp.hpp"
#include "support/parallel.hpp"
#include "support/require.hpp"
#include "support/snapshot/snapshot.hpp"

namespace pitfalls::serve {

namespace {

// Salt separating the per-job RNG streams from the token-materialization
// streams (both are rng_for_chunk derivations off the fleet seed; without
// the salt, job seed j and token id j would share a stream).
constexpr std::uint64_t kJobStreamSalt = 0x6a6f622d73747265ULL;  // "job-stre"

support::Rng job_stream(TokenFleet& fleet, const JobSpec& spec) {
  return support::rng_for_chunk(fleet.config().seed ^ kJobStreamSalt,
                                spec.seed);
}

support::BitVec draw_challenge(std::size_t n, support::Rng& rng) {
  support::BitVec challenge(n);
  for (std::size_t i = 0; i < n; ++i) challenge.set(i, rng.coin());
  return challenge;
}

std::string pm_string(const std::vector<int>& responses) {
  std::string text;
  text.reserve(responses.size());
  for (const int r : responses) text.push_back(r < 0 ? '-' : '+');
  return text;
}

std::string hex32(std::uint32_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

struct JobTally {
  std::uint64_t queries = 0;
  std::uint64_t replayed = 0;
  std::uint64_t flips = 0;
  std::uint64_t drops = 0;
  std::vector<std::string> spans;
};

std::string obs_line(const JobSpec& spec, const JobTally& tally) {
  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("obs");
  writer.key("scope").value("job");
  writer.key("id").value(spec.id);
  writer.key("queries").value(tally.queries);
  writer.key("replayed").value(tally.replayed);
  writer.key("flips").value(tally.flips);
  writer.key("drops").value(tally.drops);
  writer.key("spans").begin_array();
  for (const std::string& span : tally.spans) writer.value(span);
  writer.end_array();
  writer.end_object();
  return writer.str();
}

JobResult run_query(TokenFleet& fleet, const JobSpec& spec) {
  const auto model = fleet.acquire(spec.token);
  const std::size_t n = model->num_vars();
  for (const support::BitVec& challenge : spec.challenges)
    PITFALLS_REQUIRE(challenge.size() == n,
                     "query challenge arity does not match the fleet tokens");
  obs::TraceSpan span("serve.job.query");
  std::vector<int> responses(spec.challenges.size());
  model->eval_pm_batch(spec.challenges, responses);
  const std::string block = pm_string(responses);

  JobTally tally;
  tally.queries = spec.challenges.size();
  tally.spans = {"serve.job.query"};

  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("outcome");
  writer.key("id").value(spec.id);
  writer.key("kind").value("query");
  writer.key("responses").value(block);
  writer.key("digest").value(hex32(support::snapshot::crc32(block)));
  writer.end_object();

  JobResult result;
  result.ok = true;
  result.lines = {obs_line(spec, tally), writer.str()};
  return result;
}

JobResult run_auth(TokenFleet& fleet, const JobSpec& spec) {
  const auto model = fleet.acquire(spec.token);
  const std::size_t n = model->num_vars();
  obs::TraceSpan span("serve.job.auth");
  support::Rng rng = job_stream(fleet, spec);
  // Lockdown-shaped rounds (puf/lockdown.hpp): the challenge is nonce-
  // derived — half verifier, half token — never chosen. Both nonces come
  // from the job stream, so the round transcript is a pure function of the
  // spec; the verifier accepts a round when the measured response matches
  // the enrolled model's ideal response.
  std::vector<int> measured(spec.rounds);
  std::size_t accepted = 0;
  for (std::size_t round = 0; round < spec.rounds; ++round) {
    const support::BitVec challenge = draw_challenge(n, rng);
    const int response = fleet.config().spec.noise_sigma > 0.0
                             ? model->eval_noisy(challenge, rng)
                             : model->eval_pm(challenge);
    measured[round] = response;
    if (response == model->eval_pm(challenge)) ++accepted;
  }
  const std::string block = pm_string(measured);

  JobTally tally;
  tally.queries = spec.rounds;
  tally.spans = {"serve.job.auth"};

  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("outcome");
  writer.key("id").value(spec.id);
  writer.key("kind").value("auth");
  writer.key("rounds").value(std::uint64_t{spec.rounds});
  writer.key("accepted").value(std::uint64_t{accepted});
  writer.key("digest").value(hex32(support::snapshot::crc32(block)));
  writer.end_object();

  JobResult result;
  result.ok = true;
  result.lines = {obs_line(spec, tally), writer.str()};
  return result;
}

JobResult run_attack(TokenFleet& fleet, const OraclePolicy& policy,
                     const JobSpec& spec) {
  const auto model = fleet.acquire(spec.token);
  const std::size_t n = model->num_vars();
  std::unique_ptr<OracleStack> stack = policy.open(spec, *model);
  ml::MembershipOracle& oracle = stack->top();
  support::Rng rng = job_stream(fleet, spec);

  // Collection: chosen uniform challenges, one at a time — scalar on
  // purpose, because the fault channel is defined per raw query (§9) and a
  // drop or the lockdown can land on any element. A dropped round consumes
  // budget but yields no CRP; the lockdown ends collection with whatever
  // was gathered so far.
  std::vector<support::BitVec> challenges;
  std::vector<int> responses;
  challenges.reserve(spec.budget);
  responses.reserve(spec.budget);
  const char* status = "modeled";
  {
    obs::TraceSpan span("serve.job.collect");
    while (challenges.size() < spec.budget) {
      support::BitVec challenge = draw_challenge(n, rng);
      try {
        const int response = oracle.query_pm(challenge);
        challenges.push_back(std::move(challenge));
        responses.push_back(response);
      } catch (const ml::robust::TransientFaultError&) {
        continue;
      } catch (const ml::robust::QueryBudgetExhaustedError&) {
        status = "lockdown";
        break;
      }
    }
  }

  const std::string block = pm_string(responses);
  double accuracy = 0.0;
  if (challenges.size() >= 2) {
    obs::TraceSpan fit_span("serve.job.fit");
    ml::LinearModel hypothesis = ml::LogisticRegression().fit_model(
        challenges, responses, ml::parity_with_bias, rng);
    obs::TraceSpan eval_span("serve.job.eval");
    puf::CrpSet holdout = puf::CrpSet::collect_uniform(*model, spec.eval, rng);
    accuracy = holdout.accuracy_of(hypothesis);
  } else {
    status = "starved";
  }
  stack->flush();

  JobTally tally;
  tally.queries = stack->faults().raw_queries();
  tally.replayed = stack->replayed_queries();
  tally.flips = stack->faults().faults_injected();
  tally.drops = stack->faults().responses_dropped();
  tally.spans = {"serve.job.collect", "serve.job.fit", "serve.job.eval"};

  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("outcome");
  writer.key("id").value(spec.id);
  writer.key("kind").value("attack");
  writer.key("status").value(status);
  writer.key("collected").value(std::uint64_t{challenges.size()});
  writer.key("queries").value(std::uint64_t{tally.queries});
  writer.key("accuracy").value(accuracy);
  writer.key("digest").value(hex32(support::snapshot::crc32(block)));
  writer.end_object();

  JobResult result;
  result.ok = true;
  result.lines = {obs_line(spec, tally), writer.str()};
  return result;
}

std::string error_line(const std::string& id, const std::string& message) {
  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("error");
  if (id.empty())
    writer.key("id").null_value();
  else
    writer.key("id").value(id);
  writer.key("message").value(message);
  writer.end_object();
  return writer.str();
}

}  // namespace

JobScheduler::JobScheduler(TokenFleet& fleet, const OraclePolicy& policy)
    : fleet_(&fleet), policy_(&policy) {}

JobResult JobScheduler::run_job(const JobSpec& spec) const {
  auto& registry = obs::MetricsRegistry::global();
  try {
    obs::TraceSpan span("serve.job.run");
    JobResult result;
    switch (spec.kind) {
      case JobKind::kQuery:
        result = run_query(*fleet_, spec);
        break;
      case JobKind::kAuth:
        result = run_auth(*fleet_, spec);
        break;
      case JobKind::kAttack:
        result = run_attack(*fleet_, *policy_, spec);
        break;
    }
    registry.counter("serve.jobs.completed").add();
    return result;
  } catch (const std::exception& error) {
    registry.counter("serve.jobs.failed").add();
    JobResult result;
    result.ok = false;
    result.lines = {error_line(spec.id, error.what())};
    return result;
  }
}

void JobScheduler::run_wave(const std::vector<JobSpec>& specs,
                            const std::vector<char>& skip,
                            std::vector<JobResult>& out) const {
  PITFALLS_REQUIRE(specs.size() == skip.size() && specs.size() == out.size(),
                   "wave vectors must have matching lengths");
  if (specs.empty()) return;
  support::parallel_for_tasks(
      specs.size(),
      [&](std::size_t index) {
        if (skip[index]) return;
        out[index] = run_job(specs[index]);
      },
      "serve.wave");
}

}  // namespace pitfalls::serve
