// Line-delimited JSON wire for the serve daemon — DESIGN.md §16.
//
// The protocol is one complete JSON document per line in both directions
// (the §11 batch plane on a byte stream): challenge blocks in, response /
// outcome blocks out, obs deltas interleaved. LineChannel is the transport
// seam — the daemon and scheduler never see file descriptors:
//
//   * FdChannel     — POSIX fd pair (stdin/stdout, or an accepted Unix
//                     socket connection). Reads are buffered; every written
//                     line is flushed to the fd immediately so a reader
//                     observes outcomes as they happen, not at exit.
//   * MemoryChannel — scripted input / captured output for tests; the
//                     byte-stability tests compare full captured streams
//                     across PITFALLS_THREADS values.
//
// File I/O policy: the wire deliberately speaks POSIX fds, not fstream —
// all raw *file* I/O in this tree goes through support/snapshot (the
// `raw-io` lint rule), and a socket/pipe byte stream is not a file. The
// Unix-socket helpers below are the only place the daemon touches the
// filesystem namespace (the socket path), and they create no regular files.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/stream_sink.hpp"

namespace pitfalls::serve {

class LineChannel {
 public:
  virtual ~LineChannel() = default;

  /// Next input line without its terminator; false on end of stream. CRLF
  /// is tolerated (the '\r' is stripped).
  virtual bool read_line(std::string& line) = 0;

  /// Write one complete line; the implementation appends the terminator and
  /// flushes before returning.
  virtual void write_line(std::string_view line) = 0;
};

/// Blocking line transport over a POSIX fd pair. Does not own the fds.
class FdChannel final : public LineChannel {
 public:
  FdChannel(int in_fd, int out_fd);

  bool read_line(std::string& line) override;
  void write_line(std::string_view line) override;

 private:
  int in_fd_;
  int out_fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Scripted transport for tests: input lines are fixed up front, written
/// lines are captured.
class MemoryChannel final : public LineChannel {
 public:
  explicit MemoryChannel(std::vector<std::string> input);

  bool read_line(std::string& line) override;
  void write_line(std::string_view line) override;

  const std::vector<std::string>& output() const { return output_; }

  /// The captured stream as it would appear on a byte transport — the unit
  /// the thread-count stability tests compare.
  std::string joined_output() const;

 private:
  std::vector<std::string> input_;
  std::size_t cursor_ = 0;
  std::vector<std::string> output_;
};

/// Adapts a LineChannel to the obs streaming sink so counter deltas
/// interleave with protocol traffic on the same wire.
class ChannelSink final : public obs::JsonLineSink {
 public:
  explicit ChannelSink(LineChannel& channel) : channel_(&channel) {}
  void write_line(std::string_view json_document) override {
    channel_->write_line(json_document);
  }

 private:
  LineChannel* channel_;
};

/// Bind and listen on a Unix-domain stream socket at `path` (an existing
/// socket file at `path` is replaced). Returns the listening fd; throws
/// std::runtime_error on any syscall failure.
int listen_unix(const std::string& path);

/// Accept one client connection from a listen_unix() fd (blocking).
int accept_unix(int listen_fd);

/// close(2) wrapper so callers outside this file need no <unistd.h>.
void close_fd(int fd);

}  // namespace pitfalls::serve
