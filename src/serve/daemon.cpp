#include "serve/daemon.hpp"

#include <cstdlib>
#include <exception>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/require.hpp"

namespace pitfalls::serve {

namespace {

std::string error_document(const std::string& id, const std::string& message) {
  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("error");
  if (id.empty())
    writer.key("id").null_value();
  else
    writer.key("id").value(id);
  writer.key("message").value(message);
  writer.end_object();
  return writer.str();
}

std::uint64_t kill_after_from_env() {
  const char* env = std::getenv("PITFALLS_SERVE_KILL_AFTER_JOBS");
  if (env == nullptr) return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

Daemon::Daemon(const DaemonConfig& config)
    : config_(config),
      fleet_(config.fleet),
      policy_(config.checkpoint_path, fleet_.fingerprint()),
      scheduler_(fleet_, policy_),
      kill_after_jobs_(kill_after_from_env()) {
  if (!config_.checkpoint_path.empty())
    session_ = std::make_unique<store::CheckpointSession>(
        config_.checkpoint_path, fleet_.config().seed, fleet_.fingerprint(),
        config_.resume);
}

void Daemon::emit_hello(LineChannel& channel) {
  const TokenFleetConfig& fleet = fleet_.config();
  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("hello");
  writer.key("schema").value(std::uint64_t{1});
  writer.key("fleet").begin_object();
  writer.key("seed").value(fleet.seed);
  writer.key("tokens").value(fleet.tokens);
  writer.key("stages").value(std::uint64_t{fleet.spec.stages});
  writer.key("chains").value(std::uint64_t{fleet.spec.chains});
  writer.key("sigma").value(fleet.spec.noise_sigma);
  writer.key("resident").value(std::uint64_t{fleet.resident_limit});
  writer.key("shards").value(std::uint64_t{fleet.shards});
  writer.end_object();
  writer.key("checkpoint").value(session_ != nullptr);
  writer.key("resumed").value(session_ != nullptr && session_->resumed());
  writer.end_object();
  channel.write_line(writer.str());
}

bool Daemon::journaled_block(const JobSpec& spec, JobResult& out) {
  if (!session_) return false;
  const std::string spec_section = "job." + spec.id + ".spec";
  const std::string block_section = "job." + spec.id + ".block";
  if (!session_->has_section(spec_section) ||
      !session_->has_section(block_section))
    return false;
  support::snapshot::SectionReader spec_reader =
      session_->reader(spec_section);
  if (spec_reader.u32() != spec.fingerprint()) return false;
  support::snapshot::SectionReader block_reader =
      session_->reader(block_section);
  const std::uint32_t count = block_reader.u32();
  out.lines.clear();
  out.lines.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    out.lines.push_back(block_reader.str());
  out.ok = true;
  return true;
}

void Daemon::journal_block(const JobSpec& spec, const JobResult& result) {
  support::snapshot::SectionWriter& spec_writer =
      session_->reset_section("job." + spec.id + ".spec");
  spec_writer.u32(spec.fingerprint());
  support::snapshot::SectionWriter& block_writer =
      session_->reset_section("job." + spec.id + ".block");
  block_writer.u32(static_cast<std::uint32_t>(result.lines.size()));
  for (const std::string& line : result.lines) block_writer.str(line);
  session_->flush();
}

void Daemon::run_pending(LineChannel& channel) {
  if (pending_.empty()) return;
  auto& registry = obs::MetricsRegistry::global();
  const std::size_t count = pending_.size();
  std::vector<JobSpec> specs;
  specs.reserve(count);
  std::vector<char> skip(count, 0);
  std::vector<JobResult> blocks(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back(pending_[i].spec);
    if (pending_[i].journaled && journaled_block(specs[i], blocks[i]))
      skip[i] = 1;
  }
  scheduler_.run_wave(specs, skip, blocks);
  for (std::size_t i = 0; i < count; ++i) {
    if (skip[i]) {
      obs::JsonWriter writer;
      writer.begin_object();
      writer.key("type").value("resumed");
      writer.key("id").value(specs[i].id);
      writer.end_object();
      channel.write_line(writer.str());
      registry.counter("serve.session.resumed").add();
    }
    for (const std::string& line : blocks[i].lines) channel.write_line(line);
    ++jobs_emitted_;
    if (session_ && !skip[i] && blocks[i].ok) {
      journal_block(specs[i], blocks[i]);
      ++jobs_journaled_;
      if (kill_after_jobs_ != 0 && jobs_journaled_ >= kill_after_jobs_) {
        // Deterministic kill -9 stand-in (see header): the journal holds
        // exactly the blocks flushed so far; nothing is drained.
        std::_Exit(137);
      }
    }
  }
  pending_.clear();
}

Daemon::Request Daemon::handle_request(LineChannel& channel,
                                       const std::string& line) {
  auto& registry = obs::MetricsRegistry::global();
  obs::JsonValue request;
  try {
    request = obs::JsonValue::parse(line);
  } catch (const std::exception& error) {
    registry.counter("serve.wire.errors").add();
    channel.write_line(error_document("", error.what()));
    return Request::kContinue;
  }
  const obs::JsonValue* type = request.find("type");
  if (!request.is_object() || type == nullptr || !type->is_string()) {
    registry.counter("serve.wire.errors").add();
    channel.write_line(
        error_document("", "request must be an object with a \"type\""));
    return Request::kContinue;
  }
  registry.counter("serve.wire.requests").add();

  if (type->string_value == "job") {
    JobSpec spec;
    try {
      spec = JobSpec::parse(request);
      PITFALLS_REQUIRE(spec.token < fleet_.config().tokens,
                       "job token outside the fleet population");
      PITFALLS_REQUIRE(spec.session.empty() || session_ != nullptr,
                       "oracle sessions need the daemon --checkpoint path");
      PITFALLS_REQUIRE(seen_ids_.find(spec.id) == seen_ids_.end(),
                       "duplicate job id");
    } catch (const std::exception& error) {
      registry.counter("serve.wire.errors").add();
      channel.write_line(error_document(spec.id, error.what()));
      return Request::kContinue;
    }
    Pending pending;
    pending.spec = std::move(spec);
    if (session_) {
      JobResult probe;
      const std::string spec_section = "job." + pending.spec.id + ".spec";
      if (journaled_block(pending.spec, probe)) {
        pending.journaled = true;
      } else if (session_->has_section(spec_section)) {
        // A journaled outcome exists but the resubmitted spec differs —
        // refusing is the only safe answer (serving it would silently
        // attribute another spec's outcome to this one).
        registry.counter("serve.wire.errors").add();
        channel.write_line(error_document(
            pending.spec.id,
            "journaled outcome was produced by a different spec"));
        return Request::kContinue;
      }
    }
    seen_ids_.emplace(pending.spec.id, true);
    registry.counter("serve.jobs.submitted").add();
    obs::JsonWriter writer;
    writer.begin_object();
    writer.key("type").value("ack");
    writer.key("id").value(pending.spec.id);
    writer.end_object();
    channel.write_line(writer.str());
    pending_.push_back(std::move(pending));
    return Request::kContinue;
  }

  if (type->string_value == "run") {
    run_pending(channel);
    return Request::kRanWave;
  }

  if (type->string_value == "drain") {
    return Request::kDrain;  // the serve loop finishes the drain
  }

  registry.counter("serve.wire.errors").add();
  channel.write_line(
      error_document("", "unknown request type: " + type->string_value));
  return Request::kContinue;
}

int Daemon::drain(LineChannel& channel, obs::StreamingReporter& reporter) {
  run_pending(channel);
  reporter.emit_delta("wave");
  if (session_) session_->flush();
  obs::JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("drained");
  writer.key("jobs").value(jobs_emitted_);
  writer.end_object();
  channel.write_line(writer.str());
  return 0;
}

int Daemon::serve(LineChannel& channel) {
  ChannelSink sink(channel);
  // Only the deterministic counter families go on the wire; the
  // serve.fleet.* cache counters depend on worker interleaving and would
  // break the byte-identical-stream contract.
  obs::StreamingReporter reporter(
      sink, {"serve.jobs.", "serve.session.", "serve.wire."});
  emit_hello(channel);
  std::string line;
  for (;;) {
    if (store::termination_requested()) {
      // Cooperative SIGTERM: flush what is journaled and stop without
      // starting new work (pending jobs are re-submittable — their specs
      // are the client's, their finished predecessors are in the journal).
      reporter.emit_delta("wave");
      if (session_) session_->flush();
      obs::JsonWriter writer;
      writer.begin_object();
      writer.key("type").value("drained");
      writer.key("jobs").value(jobs_emitted_);
      writer.key("terminated").value(true);
      writer.end_object();
      channel.write_line(writer.str());
      return 143;
    }
    if (!channel.read_line(line)) break;  // EOF drains
    if (line.empty()) continue;
    const Request request = handle_request(channel, line);
    if (request == Request::kDrain) break;
    if (request == Request::kRanWave) reporter.emit_delta("wave");
  }
  return drain(channel, reporter);
}

}  // namespace pitfalls::serve
