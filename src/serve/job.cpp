#include "serve/job.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/require.hpp"
#include "support/snapshot/snapshot.hpp"

namespace pitfalls::serve {

namespace {

const obs::JsonValue& member(const obs::JsonValue& object,
                             std::string_view name) {
  const obs::JsonValue* value = object.find(name);
  PITFALLS_REQUIRE(value != nullptr,
                   "job request is missing the \"" + std::string(name) +
                       "\" field");
  return *value;
}

std::uint64_t as_u64(const obs::JsonValue& value, std::string_view name) {
  PITFALLS_REQUIRE(value.is_number(),
                   "job field \"" + std::string(name) + "\" must be a number");
  const double number = value.number_value;
  PITFALLS_REQUIRE(number >= 0.0 && std::floor(number) == number,
                   "job field \"" + std::string(name) +
                       "\" must be a non-negative integer");
  PITFALLS_REQUIRE(number <= 9007199254740992.0,  // 2^53: exact in a double
                   "job field \"" + std::string(name) +
                       "\" exceeds the exactly-representable integer range");
  return static_cast<std::uint64_t>(number);
}

std::uint64_t u64_field(const obs::JsonValue& object, std::string_view name) {
  return as_u64(member(object, name), name);
}

std::uint64_t u64_or(const obs::JsonValue& object, std::string_view name,
                     std::uint64_t fallback) {
  const obs::JsonValue* value = object.find(name);
  return value == nullptr ? fallback : as_u64(*value, name);
}

double rate_or(const obs::JsonValue& object, std::string_view name,
               double fallback) {
  const obs::JsonValue* value = object.find(name);
  if (value == nullptr) return fallback;
  PITFALLS_REQUIRE(value->is_number(),
                   "policy field \"" + std::string(name) +
                       "\" must be a number");
  const double rate = value->number_value;
  PITFALLS_REQUIRE(rate >= 0.0,
                   "policy field \"" + std::string(name) +
                       "\" must be non-negative");
  return rate;
}

ml::robust::FaultConfig parse_policy(const obs::JsonValue& policy) {
  PITFALLS_REQUIRE(policy.is_object(), "job \"policy\" must be an object");
  ml::robust::FaultConfig faults;
  faults.flip_rate = rate_or(policy, "flip_rate", 0.0);
  faults.burst_rate = rate_or(policy, "burst_rate", 0.0);
  faults.burst_length = static_cast<std::size_t>(
      u64_or(policy, "burst_length", faults.burst_length));
  faults.metastable_sigma = rate_or(policy, "metastable_sigma", 0.0);
  faults.drop_rate = rate_or(policy, "drop_rate", 0.0);
  faults.query_budget = static_cast<std::size_t>(u64_or(
      policy, "query_budget", std::numeric_limits<std::size_t>::max()));
  PITFALLS_REQUIRE(faults.flip_rate <= 1.0 && faults.burst_rate <= 1.0 &&
                       faults.drop_rate <= 1.0,
                   "policy rates must lie in [0, 1]");
  return faults;
}

}  // namespace

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kAuth:
      return "auth";
    case JobKind::kAttack:
      return "attack";
    case JobKind::kQuery:
      return "query";
  }
  return "unknown";
}

JobSpec JobSpec::parse(const obs::JsonValue& request) {
  PITFALLS_REQUIRE(request.is_object(), "job request must be a JSON object");
  JobSpec spec;

  const obs::JsonValue& id = member(request, "id");
  PITFALLS_REQUIRE(id.is_string() && !id.string_value.empty(),
                   "job \"id\" must be a non-empty string");
  spec.id = id.string_value;

  const obs::JsonValue& kind = member(request, "kind");
  PITFALLS_REQUIRE(kind.is_string(), "job \"kind\" must be a string");
  if (kind.string_value == "auth") {
    spec.kind = JobKind::kAuth;
  } else if (kind.string_value == "attack") {
    spec.kind = JobKind::kAttack;
  } else if (kind.string_value == "query") {
    spec.kind = JobKind::kQuery;
  } else {
    PITFALLS_REQUIRE(false, "job \"kind\" must be auth, attack or query");
  }

  spec.token = u64_field(request, "token");
  spec.seed = u64_field(request, "seed");

  switch (spec.kind) {
    case JobKind::kAuth: {
      spec.rounds = static_cast<std::size_t>(u64_field(request, "rounds"));
      PITFALLS_REQUIRE(spec.rounds > 0, "auth job needs rounds > 0");
      break;
    }
    case JobKind::kAttack: {
      spec.budget = static_cast<std::size_t>(u64_field(request, "budget"));
      spec.eval = static_cast<std::size_t>(u64_field(request, "eval"));
      PITFALLS_REQUIRE(spec.budget > 0, "attack job needs budget > 0");
      PITFALLS_REQUIRE(spec.eval > 0, "attack job needs eval > 0");
      if (const obs::JsonValue* policy = request.find("policy"))
        spec.faults = parse_policy(*policy);
      if (const obs::JsonValue* session = request.find("session")) {
        PITFALLS_REQUIRE(session->is_string() &&
                             !session->string_value.empty(),
                         "job \"session\" must be a non-empty string");
        for (const char c : session->string_value)
          PITFALLS_REQUIRE(
              (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '_',
              "job \"session\" must be alphanumeric with - or _ "
              "(it names a snapshot file)");
        spec.session = session->string_value;
      }
      break;
    }
    case JobKind::kQuery: {
      const obs::JsonValue& block = member(request, "challenges");
      PITFALLS_REQUIRE(block.is_array() && !block.items.empty(),
                       "query job needs a non-empty \"challenges\" array");
      spec.challenges.reserve(block.items.size());
      for (const obs::JsonValue& item : block.items) {
        PITFALLS_REQUIRE(item.is_string(),
                         "query challenges must be '0'/'1' strings");
        for (const char c : item.string_value)
          PITFALLS_REQUIRE(c == '0' || c == '1',
                           "query challenges must be '0'/'1' strings");
        PITFALLS_REQUIRE(!item.string_value.empty(),
                         "query challenges must be non-empty");
        spec.challenges.push_back(
            support::BitVec::from_string(item.string_value));
      }
      break;
    }
  }
  return spec;
}

std::string JobSpec::canonical() const {
  std::ostringstream out;
  out << "job/v1 id=" << id << " kind=" << to_string(kind)
      << " token=" << token << " seed=" << seed;
  switch (kind) {
    case JobKind::kAuth:
      out << " rounds=" << rounds;
      break;
    case JobKind::kAttack:
      out << " budget=" << budget << " eval=" << eval
          << " flip=" << faults.flip_rate << " burst=" << faults.burst_rate
          << "/" << faults.burst_length << " meta=" << faults.metastable_sigma
          << " drop=" << faults.drop_rate << " qb=" << faults.query_budget
          << " session=" << session;
      break;
    case JobKind::kQuery:
      out << " challenges=" << challenges.size();
      for (const support::BitVec& c : challenges) out << " " << c.to_string();
      break;
  }
  return out.str();
}

std::uint32_t JobSpec::fingerprint() const {
  return support::snapshot::crc32(canonical());
}

}  // namespace pitfalls::serve
