// Deterministic multi-job scheduler for the serve plane — DESIGN.md §16.
//
// A wave is a batch of submitted jobs executed concurrently over the
// support/parallel worker pool via parallel_for_tasks (one task per job —
// jobs are coarse and heterogeneous, exactly the workload that primitive
// exists for). Determinism is the §6 contract applied at job granularity:
//
//   * every job derives its private RNG stream from its own spec seed
//     (rng_for_chunk over a serve-specific salt), never from the executing
//     thread or the submission order of *other* jobs;
//   * each worker writes only its own result slot (out[index] = ...);
//   * the daemon emits finished blocks strictly in submission order.
//
// The concatenated output of a wave is therefore byte-identical for every
// PITFALLS_THREADS value — the property tests/serve_test.cpp pins at
// 1/2/4/8 threads and scripts/serve_smoke.sh re-checks end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/oracle_policy.hpp"
#include "serve/token_fleet.hpp"

namespace pitfalls::serve {

/// One job's complete wire output: its obs line followed by its outcome
/// line, or a single error line when the job failed validation/execution.
struct JobResult {
  std::vector<std::string> lines;
  bool ok = false;
};

class JobScheduler {
 public:
  /// Both references must outlive the scheduler.
  JobScheduler(TokenFleet& fleet, const OraclePolicy& policy);

  /// Execute one job to completion on the calling thread. Never throws:
  /// any failure becomes the job's error line.
  JobResult run_job(const JobSpec& spec) const;

  /// Execute a wave over the worker pool. `skip[i]` true leaves `out[i]`
  /// untouched (the daemon pre-fills journaled blocks there); all other
  /// slots are overwritten. out/skip must both have specs.size() entries.
  void run_wave(const std::vector<JobSpec>& specs,
                const std::vector<char>& skip,
                std::vector<JobResult>& out) const;

 private:
  TokenFleet* fleet_;
  const OraclePolicy* policy_;
};

}  // namespace pitfalls::serve
