#include "serve/token_fleet.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "support/require.hpp"

namespace pitfalls::serve {

TokenFleet::TokenFleet(const TokenFleetConfig& config) : config_(config) {
  PITFALLS_REQUIRE(config_.tokens > 0, "fleet needs at least one token");
  PITFALLS_REQUIRE(config_.shards > 0, "fleet needs at least one shard");
  PITFALLS_REQUIRE(config_.resident_limit > 0,
                   "fleet needs a positive resident limit");
  per_shard_limit_ = config_.resident_limit / config_.shards;
  if (per_shard_limit_ == 0) per_shard_limit_ = 1;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const puf::XorArbiterPuf> TokenFleet::acquire(
    std::uint64_t token_id) {
  PITFALLS_REQUIRE(token_id < config_.tokens,
                   "token id outside the fleet population");
  auto& registry = obs::MetricsRegistry::global();
  Shard& shard = *shards_[token_id % config_.shards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(token_id);
    if (it != shard.entries.end()) {
      // Refresh the LRU position under the same lock.
      shard.by_tick.erase(it->second.tick);
      it->second.tick = shard.next_tick++;
      shard.by_tick.emplace(it->second.tick, token_id);
      registry.counter("serve.fleet.hits").add();
      return it->second.model;
    }
  }
  // Materialize outside the lock: weights are a pure function of
  // (fleet seed, token id), so two threads racing here compute the same
  // model and whichever inserts second simply adopts the winner's entry.
  auto model = std::make_shared<const puf::XorArbiterPuf>(
      puf::materialize_token(config_.spec, config_.seed, token_id));
  registry.counter("serve.fleet.materializations").add();
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(token_id);
  if (it != shard.entries.end()) return it->second.model;
  Entry entry;
  entry.model = std::move(model);
  entry.tick = shard.next_tick++;
  shard.by_tick.emplace(entry.tick, token_id);
  auto inserted = shard.entries.emplace(token_id, std::move(entry)).first;
  while (shard.entries.size() > per_shard_limit_) {
    const auto oldest = shard.by_tick.begin();
    shard.entries.erase(oldest->second);
    shard.by_tick.erase(oldest);
    registry.counter("serve.fleet.evictions").add();
  }
  return inserted->second.model;
}

std::size_t TokenFleet::resident() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

std::string TokenFleet::fingerprint() const {
  std::ostringstream out;
  out << "fleet/v1 seed=" << config_.seed << " tokens=" << config_.tokens
      << " stages=" << config_.spec.stages << " chains=" << config_.spec.chains
      << " sigma=" << config_.spec.noise_sigma;
  return out.str();
}

}  // namespace pitfalls::serve
