// Process-wide metrics for the experiment pipeline: named counters, gauges
// and wall-clock histograms, snapshot-serializable to JSON.
//
// Design notes:
//   * counter/gauge/histogram lookup takes a registry lock; the returned
//     reference is stable for the registry's lifetime, so hot paths resolve
//     a metric once and then increment lock-free (Counter is a relaxed
//     atomic). Oracles cache their Counter* at construction for this reason.
//   * Histograms store raw samples (experiment scale: thousands of
//     observations, not millions) and summarize with nearest-rank
//     percentiles, so p50/p95 are actual observed values.
//   * Snapshots iterate std::map, i.e. name-sorted — byte-identical JSON for
//     identical metric values regardless of registration order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace pitfalls::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSummary {
  std::size_t count = 0;
  double total = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double p50 = 0.0;   // nearest-rank: sorted[ceil(q*count) - 1]
  double p95 = 0.0;
  double max = 0.0;
};

class Histogram {
 public:
  void observe(double sample);
  std::size_t count() const;
  HistogramSummary summary() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every counter/gauge and clear every histogram, keeping the
  /// registrations (and thus any cached references) alive.
  void reset_values();

  /// {"counters":{...},"gauges":{...},"histograms":{...}}, names sorted.
  void write_json(JsonWriter& writer) const;

  /// write_json into a standalone document.
  std::string snapshot_json() const;

  /// Counters-only snapshot ({name: value}, names sorted). Counters carry
  /// the deterministic slice of the registry (query/solver/lock tallies);
  /// gauges and histograms hold run-dependent values (pool size,
  /// wall-clock timings), so cross-thread-count comparisons use this view.
  std::string counters_json() const;

  /// Name-sorted (name, value) pairs of every registered counter — the
  /// enumeration behind counters_json and the streaming delta reporter
  /// (stream_sink.hpp), which needs values without a JSON round trip.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;

  /// The process-wide registry the library instruments by default.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Book one batched query-plane call at a named callsite: observes
/// `elements` into the global "<callsite>.batch_size" histogram. Callsites
/// use the same dotted names as their *.parallel_seconds timings (e.g.
/// "puf.crp.collect"), so batch-size distributions line up with the chunk
/// timings per hot path. The oracle-level oracle.batch.* aggregates are
/// booked separately by MembershipOracle::record_batch.
void observe_batch(const char* callsite, std::size_t elements);

}  // namespace pitfalls::obs
