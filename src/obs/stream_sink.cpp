#include "obs/stream_sink.hpp"

#include <utility>

#include "obs/json.hpp"
#include "support/require.hpp"

namespace pitfalls::obs {

StreamingReporter::StreamingReporter(JsonLineSink& sink,
                                     std::vector<std::string> prefixes)
    : sink_(&sink), prefixes_(std::move(prefixes)) {
  PITFALLS_REQUIRE(!prefixes_.empty(),
                   "streaming reporter needs at least one counter prefix");
  for (const auto& [name, value] :
       MetricsRegistry::global().counter_values()) {
    if (in_scope(name)) last_[name] = value;
  }
}

bool StreamingReporter::in_scope(const std::string& name) const {
  for (const std::string& prefix : prefixes_) {
    if (name.size() >= prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0)
      return true;
  }
  return false;
}

bool StreamingReporter::emit_delta(std::string_view scope) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("type").value("obs");
  writer.key("scope").value(scope);
  writer.key("counters").begin_object();
  bool changed = false;
  for (const auto& [name, value] :
       MetricsRegistry::global().counter_values()) {
    if (!in_scope(name)) continue;
    const auto it = last_.find(name);
    const std::uint64_t previous = it == last_.end() ? 0 : it->second;
    if (value == previous) continue;
    // Counters are monotone (Counter::add only); a reset_values() between
    // emits would make value < previous, which we clamp to a fresh baseline
    // rather than emitting a negative delta.
    if (value > previous) {
      writer.key(name).value(value - previous);
      changed = true;
    }
    last_[name] = value;
  }
  writer.end_object();
  writer.end_object();
  if (changed) sink_->write_line(writer.str());
  return changed;
}

}  // namespace pitfalls::obs
