// Streaming (non-terminal) observability sink — DESIGN.md §16.
//
// BenchReporter is terminal: it accumulates tables and writes one JSON
// document at finish(). A long-running service never reaches finish(), so
// the serve plane needs the dual: a sink that accepts one complete JSON
// document per line, emitted incrementally while the process keeps running.
//
//   * JsonLineSink — the emission interface. The serve daemon adapts its
//     wire channel to it, so obs lines interleave with protocol traffic.
//   * StreamingReporter — emits *deltas* of the global counter registry,
//     filtered to caller-chosen name prefixes. Deltas make the stream
//     composable: each line carries exactly what happened since the last
//     emit, so a reader can fold them without knowing process history, and
//     a byte-comparison of two streams compares per-window work, not
//     absolute counter positions.
//
// Determinism: the reporter emits counters only (never gauges/histograms —
// those carry wall-clock and pool-size values) and only under the given
// prefixes, so a caller that restricts itself to deterministic counter
// families gets a byte-identical stream for any PITFALLS_THREADS.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace pitfalls::obs {

/// Accepts one complete JSON document per call; the implementation frames
/// it (newline-delimited on a wire, appended to a log, ...) and flushes.
class JsonLineSink {
 public:
  virtual ~JsonLineSink() = default;
  virtual void write_line(std::string_view json_document) = 0;
};

/// Incremental counter-delta reporter over MetricsRegistry::global().
class StreamingReporter {
 public:
  /// Counters whose name starts with any of `prefixes` are streamed; the
  /// baseline is the registry position at construction, so the first emit
  /// reports only work done after the reporter existed.
  StreamingReporter(JsonLineSink& sink, std::vector<std::string> prefixes);

  /// Emit {"type":"obs","scope":<scope>,"counters":{name:delta,...}} for
  /// every in-prefix counter that changed since the previous emit. Writes
  /// nothing when no counter moved. Returns true when a line was written.
  bool emit_delta(std::string_view scope);

 private:
  bool in_scope(const std::string& name) const;

  JsonLineSink* sink_;
  std::vector<std::string> prefixes_;
  std::map<std::string, std::uint64_t> last_;
};

}  // namespace pitfalls::obs
