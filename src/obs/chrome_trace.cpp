#include "obs/chrome_trace.hpp"

#include <fstream>

#include "support/require.hpp"

namespace pitfalls::obs {

namespace {

constexpr std::int64_t kPid = 1;

void write_common_fields(JsonWriter& w, const TraceEvent& event) {
  w.key("name").value(event.name);
  w.key("ts").value(event.start_seconds * 1e6);  // trace format wants µs
  w.key("pid").value(kPid);
  w.key("tid").value(std::uint64_t{event.track});
}

}  // namespace

void write_chrome_trace(JsonWriter& writer, const Tracer& tracer,
                        const std::string& process_name) {
  PITFALLS_REQUIRE(!process_name.empty(),
                   "chrome trace needs a process name");
  writer.begin_object();
  writer.key("displayTimeUnit").value("ms");
  writer.key("traceEvents").begin_array();

  writer.begin_object();
  writer.key("name").value("process_name");
  writer.key("ph").value("M");
  writer.key("pid").value(kPid);
  writer.key("tid").value(std::uint64_t{0});
  writer.key("args").begin_object();
  writer.key("name").value(process_name);
  writer.end_object();
  writer.end_object();

  for (const TraceEvent& event : tracer.events()) {
    writer.begin_object();
    switch (event.kind) {
      case TraceEventKind::kSpan:
        write_common_fields(writer, event);
        writer.key("ph").value("X");
        writer.key("dur").value(event.duration_seconds * 1e6);
        writer.key("cat").value("span");
        writer.key("args").begin_object();
        writer.key("id").value(std::uint64_t{event.id});
        writer.key("parent").value(std::int64_t{event.parent});
        writer.key("depth").value(std::uint64_t{event.depth});
        writer.end_object();
        break;
      case TraceEventKind::kInstant:
        write_common_fields(writer, event);
        writer.key("ph").value("i");
        writer.key("s").value("t");  // thread-scoped instant
        writer.key("cat").value("instant");
        break;
      case TraceEventKind::kCounter:
        write_common_fields(writer, event);
        writer.key("ph").value("C");
        writer.key("cat").value("counter");
        writer.key("args").begin_object();
        writer.key("value").value(event.value);
        writer.end_object();
        break;
    }
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
}

std::string chrome_trace_json(const Tracer& tracer,
                              const std::string& process_name) {
  JsonWriter writer;
  write_chrome_trace(writer, tracer, process_name);
  return writer.str();
}

bool export_chrome_trace(const std::string& path, const Tracer& tracer,
                         const std::string& process_name) {
  PITFALLS_REQUIRE(!path.empty(), "chrome trace needs an output path");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json(tracer, process_name) << "\n";
  out.close();
  return static_cast<bool>(out);
}

}  // namespace pitfalls::obs
