#include "obs/bench_reporter.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/require.hpp"

namespace pitfalls::obs {

BenchReporter::BenchReporter(std::string name, int argc, char** argv)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
  PITFALLS_REQUIRE(!name_.empty(), "bench reporter needs a bench name");
  PITFALLS_REQUIRE(argc == 0 || argv != nullptr,
                   "argv must be non-null when argc > 0");
  const std::string default_path = "BENCH_" + name_ + ".json";
  const std::string default_trace_path = "TRACE_" + name_ + ".json";
  const std::string default_checkpoint_path = "CKPT_" + name_ + ".snap";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke_ = true;
    } else if (arg == "--json") {
      // Optional path operand; a following flag means "use the default".
      if (i + 1 < argc && argv[i + 1][0] != '-')
        json_path_ = argv[++i];
      else
        json_path_ = default_path;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path_ = arg.substr(7);
      if (json_path_.empty()) json_path_ = default_path;
    } else if (arg == "--trace") {
      if (i + 1 < argc && argv[i + 1][0] != '-')
        trace_path_ = argv[++i];
      else
        trace_path_ = default_trace_path;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path_ = arg.substr(8);
      if (trace_path_.empty()) trace_path_ = default_trace_path;
    } else if (arg == "--checkpoint" || arg == "--resume") {
      resume_ = resume_ || arg == "--resume";
      if (i + 1 < argc && argv[i + 1][0] != '-')
        checkpoint_path_ = argv[++i];
      else
        checkpoint_path_ = default_checkpoint_path;
    } else if (arg.rfind("--checkpoint=", 0) == 0 ||
               arg.rfind("--resume=", 0) == 0) {
      resume_ = resume_ || arg.rfind("--resume=", 0) == 0;
      checkpoint_path_ = arg.substr(arg.find('=') + 1);
      if (checkpoint_path_.empty()) checkpoint_path_ = default_checkpoint_path;
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      const std::string value(arg.substr(19));
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || parsed == 0) {
        std::cerr << "bench_" << name_
                  << ": --checkpoint-every needs a positive integer, got '"
                  << value << "'\n";
      } else {
        checkpoint_every_ = static_cast<std::size_t>(parsed);
      }
    } else {
      std::cerr << "bench_" << name_ << ": ignoring unknown argument '" << arg
                << "' (known: --json [path], --json=path, --trace [path], "
                   "--trace=path, --checkpoint [path], --resume [path], "
                   "--checkpoint-every=N, --smoke)\n";
    }
  }
}

void BenchReporter::print(std::ostream& os, const support::Table& table,
                          const std::string& title) {
  tables_.push_back({title, table.headers(), table.data()});
  table.print(os, title);
}

void BenchReporter::note(const std::string& name, const std::string& text) {
  notes_.push_back({name, false, text, 0.0});
}

void BenchReporter::note(const std::string& name, double number) {
  notes_.push_back({name, true, {}, number});
}

int BenchReporter::finish() {
  if (!trace_path_.empty() &&
      !export_chrome_trace(trace_path_, Tracer::global(), "bench_" + name_)) {
    std::cerr << "bench_" << name_ << ": cannot write chrome trace '"
              << trace_path_ << "'\n";
    return 1;
  }
  if (json_path_.empty()) return 0;

  // Pre-register the oracle query counters so every bench report exposes the
  // same core key set even when a bench never touches an oracle.
  auto& registry = MetricsRegistry::global();
  registry.counter("oracle.membership_queries");
  registry.counter("oracle.equivalence_calls");

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();

  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(std::int64_t{1});
  w.key("bench").value(name_);
  w.key("smoke").value(smoke_);
  w.key("wall_seconds").value(wall_seconds);
  w.key("notes").begin_object();
  for (const Note& n : notes_) {
    w.key(n.name);
    if (n.numeric)
      w.value(n.number);
    else
      w.value(n.text);
  }
  w.end_object();
  w.key("tables").begin_array();
  for (const RecordedTable& t : tables_) {
    w.begin_object();
    w.key("title").value(t.title);
    w.key("headers").begin_array();
    for (const auto& h : t.headers) w.value(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const auto& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  registry.write_json(w);
  w.key("trace");
  Tracer::global().write_json(w);
  w.end_object();

  std::ofstream out(json_path_, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "bench_" << name_ << ": cannot open '" << json_path_
              << "' for writing\n";
    return 1;
  }
  out << w.str() << "\n";
  out.close();
  if (!out) {
    std::cerr << "bench_" << name_ << ": failed writing '" << json_path_
              << "'\n";
    return 1;
  }
  return 0;
}

}  // namespace pitfalls::obs
