// Shared bench harness: every bench main constructs a BenchReporter from its
// argv, routes table printing through print() (byte-identical ASCII — it
// delegates to Table::print), and ends with `return reporter.finish();`.
//
// Flags understood (anything else warns on stderr and is ignored):
//   --json [path]    also write a machine-readable BENCH_<name>.json
//                    (default path BENCH_<name>.json in the CWD) holding the
//                    table rows, a metrics-registry snapshot (wall-clock
//                    histograms + oracle query counters), the trace-span
//                    tree, and free-form notes.
//   --json=path      same, explicit path.
//   --trace [path]   also export the global tracer as Chrome/Perfetto
//                    trace-event JSON (default path TRACE_<name>.json),
//                    loadable in chrome://tracing / ui.perfetto.dev.
//   --trace=path     same, explicit path.
//   --smoke          the bench should substitute its tiny parameter set
//                    (query via smoke()) — used by the bench_smoke ctest.
//   --checkpoint [path]  checkpoint progress into a crash-safe snapshot
//                    (default path CKPT_<name>.snap), ignoring any existing
//                    snapshot (fresh run). Which benches honour the flag is
//                    up to the bench (checkpoint-aware benches document it).
//   --checkpoint=path    same, explicit path.
//   --resume [path]  like --checkpoint, but first load the snapshot when
//                    present and valid — the continued run is byte-identical
//                    to an uninterrupted one; a corrupt snapshot degrades to
//                    a clean restart (store.snapshot.corrupt metric).
//   --resume=path    same, explicit path.
//   --checkpoint-every=N  flush cadence in recorded oracle events
//                    (default 256).
//
// JSON schema (schema_version 1):
//   { "schema_version": 1, "bench": str, "smoke": bool,
//     "wall_seconds": num, "notes": {str: str|num},
//     "tables": [{"title": str, "headers": [str], "rows": [[str]]}],
//     "metrics": {"counters": {str: num}, "gauges": {str: num},
//                 "histograms": {str: {count,total,mean,min,p50,p95,max}}},
//     "trace": [{name,kind,id,parent,depth,track,start_seconds,
//                duration_seconds,value?}] }
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace pitfalls::obs {

class BenchReporter {
 public:
  /// `name` is the bench's identity ("table1_bounds" for
  /// bench_table1_bounds); it names the default output file.
  BenchReporter(std::string name, int argc, char** argv);

  bool smoke() const { return smoke_; }
  bool json_enabled() const { return !json_path_.empty(); }
  bool trace_enabled() const { return !trace_path_.empty(); }

  /// --checkpoint or --resume was given (checkpoint_path() is set).
  bool checkpoint_enabled() const { return !checkpoint_path_.empty(); }
  /// --resume: load an existing snapshot instead of starting fresh.
  bool resume() const { return resume_; }
  const std::string& checkpoint_path() const { return checkpoint_path_; }
  std::size_t checkpoint_every() const { return checkpoint_every_; }

  /// Print the table exactly as Table::print would, and record its cells
  /// for the JSON report.
  void print(std::ostream& os, const support::Table& table,
             const std::string& title = "");

  /// Attach a scalar to the report's "notes" object (insertion order).
  void note(const std::string& name, const std::string& text);
  void note(const std::string& name, double number);

  /// Write the JSON report if --json was requested. Returns the bench's
  /// exit code: 0, or 1 when the report could not be written.
  int finish();

 private:
  struct RecordedTable {
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  struct Note {
    std::string name;
    bool numeric;
    std::string text;
    double number;
  };

  std::string name_;
  std::string json_path_;
  std::string trace_path_;
  std::string checkpoint_path_;
  bool resume_ = false;
  std::size_t checkpoint_every_ = 256;
  bool smoke_ = false;
  std::chrono::steady_clock::time_point start_;
  std::vector<RecordedTable> tables_;
  std::vector<Note> notes_;
};

}  // namespace pitfalls::obs
