#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::obs {

void Histogram::observe(double sample) {
  const std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(sample);
}

std::size_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
}

HistogramSummary Histogram::summary() const {
  std::vector<double> sorted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sorted = samples_;
  }
  HistogramSummary s;
  if (sorted.empty()) return s;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  for (const double v : sorted) s.total += v;
  s.mean = s.total / static_cast<double>(s.count);
  s.min = sorted.front();
  s.max = sorted.back();
  const auto nearest_rank = [&sorted](double q) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    return sorted[std::max<std::size_t>(rank, 1) - 1];
  };
  s.p50 = nearest_rank(0.50);
  s.p95 = nearest_rank(0.95);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  PITFALLS_REQUIRE(!name.empty(), "metric name must be non-empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  PITFALLS_REQUIRE(!name.empty(), "metric name must be non-empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  PITFALLS_REQUIRE(!name.empty(), "metric name must be non-empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(JsonWriter& writer) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  writer.begin_object();
  writer.key("counters").begin_object();
  for (const auto& [name, c] : counters_) writer.key(name).value(c->value());
  writer.end_object();
  writer.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) writer.key(name).value(g->value());
  writer.end_object();
  writer.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const HistogramSummary s = h->summary();
    writer.key(name).begin_object();
    writer.key("count").value(std::uint64_t{s.count});
    writer.key("total").value(s.total);
    writer.key("mean").value(s.mean);
    writer.key("min").value(s.min);
    writer.key("p50").value(s.p50);
    writer.key("p95").value(s.p95);
    writer.key("max").value(s.max);
    writer.end_object();
  }
  writer.end_object();
  writer.end_object();
}

std::string MetricsRegistry::snapshot_json() const {
  JsonWriter writer;
  write_json(writer);
  return writer.str();
}

std::string MetricsRegistry::counters_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter writer;
  writer.begin_object();
  for (const auto& [name, c] : counters_) writer.key(name).value(c->value());
  writer.end_object();
  return writer.str();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, c] : counters_) values.emplace_back(name, c->value());
  return values;
}

MetricsRegistry& MetricsRegistry::global() {
  // The support-layer thread pool cannot link obs, so the global registry
  // installs runtime hooks on first use: pool size as a gauge, chunks
  // scheduled as a counter, per-callsite region wall-clock as histograms.
  // Hook values never feed back into results, so they do not affect the
  // byte-identical-across-thread-counts contract.
  static MetricsRegistry registry;
  static const bool hooks_installed = [] {
    support::PoolHooks hooks;
    hooks.on_pool_configured = [](std::size_t threads) {
      registry.gauge("support.pool.threads")
          .set(static_cast<double>(threads));
    };
    hooks.on_tasks_scheduled = [](std::size_t chunks) {
      registry.counter("support.pool.tasks").add(chunks);
    };
    hooks.on_region_seconds = [](const char* callsite, double seconds) {
      registry.histogram(std::string(callsite) + ".parallel_seconds")
          .observe(seconds);
    };
    // Chunk-run context for the tracing plane: lets logical-clock tracers
    // key tick windows by (region, chunk) instead of by thread.
    hooks.on_chunk_run = trace_note_chunk_run;
    support::set_pool_hooks(std::move(hooks));
    return true;
  }();
  (void)hooks_installed;
  return registry;
}

void observe_batch(const char* callsite, std::size_t elements) {
  MetricsRegistry::global()
      .histogram(std::string(callsite) + ".batch_size")
      .observe(static_cast<double>(elements));
}

}  // namespace pitfalls::obs
