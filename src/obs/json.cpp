#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "support/require.hpp"

namespace pitfalls::obs {

// ---------------------------------------------------------------- JsonWriter

void JsonWriter::before_value() {
  if (stack_.empty()) {
    PITFALLS_REQUIRE(!root_written_, "JSON document has exactly one root");
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.kind == '{') {
    PITFALLS_REQUIRE(top.key_pending, "object members need key() first");
    top.key_pending = false;
  } else {
    if (!top.first) raw(",");
    top.first = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back({'{'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PITFALLS_REQUIRE(!stack_.empty() && stack_.back().kind == '{',
                   "end_object without matching begin_object");
  PITFALLS_REQUIRE(!stack_.back().key_pending, "dangling key without value");
  stack_.pop_back();
  raw("}");
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back({'['});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PITFALLS_REQUIRE(!stack_.empty() && stack_.back().kind == '[',
                   "end_array without matching begin_array");
  stack_.pop_back();
  raw("]");
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  PITFALLS_REQUIRE(!stack_.empty() && stack_.back().kind == '{',
                   "key() is only valid inside an object");
  Frame& top = stack_.back();
  PITFALLS_REQUIRE(!top.key_pending, "two keys in a row");
  if (!top.first) raw(",");
  top.first = false;
  top.key_pending = true;
  raw("\"");
  raw(escape(name));
  raw("\":");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  raw("\"");
  raw(escape(text));
  raw("\"");
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  raw(flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) {
    // fmt_or_inf semantics: saturate into an explicit quoted marker.
    if (std::isnan(number)) return value(std::string_view("nan"));
    return value(std::string_view(number > 0 ? "inf" : "-inf"));
  }
  before_value();
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), number);
  PITFALLS_ENSURE(res.ec == std::errc{}, "double formatting failed");
  raw(std::string_view(buf, static_cast<std::size_t>(res.ptr - buf)));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  raw(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  raw("null");
  return *this;
}

const std::string& JsonWriter::str() const {
  PITFALLS_REQUIRE(stack_.empty() && root_written_,
                   "document incomplete: unclosed container or no root");
  return out_;
}

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

// ----------------------------------------------------------------- JsonValue

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue root = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string_value = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.bool_value = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string name = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(name), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool number_char = (c >= '0' && c <= '9') || c == '.' ||
                               c == 'e' || c == 'E' || c == '+' || c == '-';
      if (!number_char) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     v.number_value);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_)
      fail("malformed number");
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate: need the pair
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("high surrogate without a following \\u low surrogate");
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view name) const {
  for (const auto& [key, value] : members)
    if (key == name) return &value;
  return nullptr;
}

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace pitfalls::obs
