#include "obs/trace.hpp"

#include "support/require.hpp"

namespace pitfalls::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::size_t Tracer::begin_span(std::string name) {
  OpenSpan span;
  span.name = std::move(name);
  span.id = next_id_++;
  span.parent = stack_.empty() ? -1 : static_cast<std::ptrdiff_t>(
                                          stack_.back().id);
  span.depth = stack_.size();
  span.start = std::chrono::steady_clock::now();
  stack_.push_back(std::move(span));
  return stack_.back().id;
}

void Tracer::end_span(std::size_t id) {
  PITFALLS_ENSURE(!stack_.empty() && stack_.back().id == id,
                  "TraceSpan destruction out of LIFO order");
  const OpenSpan span = std::move(stack_.back());
  stack_.pop_back();

  TraceEvent event;
  event.name = span.name;
  event.id = span.id;
  event.parent = span.parent;
  event.depth = span.depth;
  event.start_seconds =
      std::chrono::duration<double>(span.start - epoch_).count();
  event.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    span.start)
          .count();
  const std::lock_guard<std::mutex> lock(events_mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(events_mutex_);
  return events_;
}

void Tracer::clear() {
  PITFALLS_REQUIRE(stack_.empty(), "cannot clear a tracer with open spans");
  const std::lock_guard<std::mutex> lock(events_mutex_);
  events_.clear();
  next_id_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::write_json(JsonWriter& writer) const {
  const std::lock_guard<std::mutex> lock(events_mutex_);
  writer.begin_array();
  for (const TraceEvent& event : events_) {
    writer.begin_object();
    writer.key("name").value(event.name);
    writer.key("id").value(std::uint64_t{event.id});
    writer.key("parent").value(std::int64_t{event.parent});
    writer.key("depth").value(std::uint64_t{event.depth});
    writer.key("start_seconds").value(event.start_seconds);
    writer.key("duration_seconds").value(event.duration_seconds);
    writer.end_object();
  }
  writer.end_array();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace pitfalls::obs
