#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string_view>
#include <utility>

#include "support/require.hpp"

namespace pitfalls::obs {

namespace {

// Logical-clock geometry: each top-level pool chunk owns a window of this
// many ticks. 2^16 ticks per chunk keeps a 64-chunk region within ~4.2
// virtual seconds while leaving room for tens of thousands of events per
// chunk before the offset saturates at the window edge.
constexpr std::uint64_t kChunkStride = std::uint64_t{1} << 16;

constexpr std::size_t kDefaultCapacity = 65536;
constexpr std::size_t kMinCapacity = 16;
constexpr std::size_t kMaxCapacity = std::size_t{1} << 24;

// The pool chunk the calling thread is currently executing (region == 0
// when outside any top-level chunk). Maintained by trace_note_chunk_run,
// which the pool fires through PoolHooks::on_chunk_run.
struct ChunkCtx {
  std::uint64_t region = 0;
  std::size_t chunk = 0;
  std::size_t chunks = 0;
};
thread_local ChunkCtx tls_chunk;

std::size_t capacity_from_env() {
  const char* env = std::getenv("PITFALLS_TRACE_EVENTS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= kMinCapacity &&
        parsed <= kMaxCapacity)
      return static_cast<std::size_t>(parsed);
  }
  return kDefaultCapacity;
}

TraceClock clock_from_env() {
  const char* env = std::getenv("PITFALLS_TRACE_CLOCK");
  if (env != nullptr && std::string_view(env) == "logical")
    return TraceClock::kLogical;
  return TraceClock::kWall;
}

std::uint64_t next_tracer_uid() {
  static std::atomic<std::uint64_t> uid{1};
  return uid.fetch_add(1, std::memory_order_relaxed);
}

double tick_seconds(std::uint64_t tick) {
  return static_cast<double>(tick) * 1e-6;  // 1 tick == 1 exported µs
}

}  // namespace

// Per-thread tracer state. `stack` and the ctx_* window cache are touched
// only by the owning thread; `ring`/`ring_head`/`dropped` are guarded by
// `ring_mutex` (owner appends, snapshots read); `open` is the atomic mirror
// of stack.size() so open_spans()/clear() can check from other threads.
struct Tracer::ThreadState {
  std::size_t slot = 0;
  std::vector<OpenSpan> stack;
  std::atomic<std::size_t> open{0};
  mutable std::mutex ring_mutex;
  std::vector<TraceEvent> ring;  // circular once size reaches capacity
  std::size_t ring_head = 0;     // oldest element once saturated
  std::uint64_t dropped = 0;
  std::uint64_t ctx_region = 0;  // logical chunk-window cache
  std::size_t ctx_chunk = 0;
  std::uint64_t ctx_base = 0;
  std::uint64_t local_tick = 0;
};

namespace {

// TLS cache mapping tracer uid -> this thread's state (stored type-erased:
// ThreadState is private to Tracer), so the hot path avoids the registry
// lock. Uids are never reused, so an entry for a destroyed tracer can
// never be matched (it is merely unreachable).
struct TlsEntry {
  std::uint64_t uid;
  void* state;
};
thread_local std::vector<TlsEntry> tls_states;

}  // namespace

void trace_note_chunk_run(std::uint64_t region_id, std::size_t chunk,
                          std::size_t chunks, bool entering) {
  if (entering)
    tls_chunk = ChunkCtx{region_id, chunk, chunks};
  else
    tls_chunk = ChunkCtx{};
}

Tracer::Tracer() : Tracer(clock_from_env(), capacity_from_env()) {}

Tracer::Tracer(TraceClock clock, std::size_t capacity)
    : uid_(next_tracer_uid()),
      clock_(clock),
      capacity_(std::clamp(capacity, kMinCapacity, kMaxCapacity)),
      epoch_(std::chrono::steady_clock::now()) {
  // Guarantee the pool hooks (including on_chunk_run, which feeds the
  // logical clock's chunk windows) are installed before any span opens.
  MetricsRegistry::global();
}

Tracer::~Tracer() = default;

Tracer::ThreadState& Tracer::thread_state() const {
  for (const TlsEntry& entry : tls_states)
    if (entry.uid == uid_) return *static_cast<ThreadState*>(entry.state);
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  auto state = std::make_unique<ThreadState>();
  state->slot = threads_.size();
  state->ring.reserve(std::min(capacity_, std::size_t{1024}));
  ThreadState* raw = state.get();
  threads_.push_back(std::move(state));
  tls_states.push_back({uid_, raw});
  return *raw;
}

double Tracer::now_seconds(ThreadState& state) const {
  if (clock_ == TraceClock::kWall)
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  const ChunkCtx ctx = tls_chunk;
  if (ctx.region == 0)
    return tick_seconds(ticks_.fetch_add(1, std::memory_order_relaxed));
  if (state.ctx_region != ctx.region || state.ctx_chunk != ctx.chunk) {
    state.ctx_region = ctx.region;
    state.ctx_chunk = ctx.chunk;
    state.ctx_base = chunk_window_base(ctx.region, ctx.chunks);
    state.local_tick = 0;
  }
  // Saturate at the window edge instead of bleeding into the next chunk's
  // window; overflowing events share the last tick (ordering then falls
  // back to ids, which are not thread-stable — stay under 2^16 events per
  // chunk for full determinism).
  const std::uint64_t offset = std::min(state.local_tick, kChunkStride - 1);
  ++state.local_tick;
  return tick_seconds(state.ctx_base +
                      static_cast<std::uint64_t>(state.ctx_chunk) *
                          kChunkStride +
                      offset);
}

std::uint64_t Tracer::chunk_window_base(std::uint64_t region,
                                        std::size_t chunks) const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto it = region_windows_.rbegin(); it != region_windows_.rend(); ++it)
    if (it->first == region) return it->second;
  // First traced event of this region: reserve the whole region's tick
  // window in one serial-clock jump so later serial events land after it.
  const std::uint64_t base = ticks_.fetch_add(
      static_cast<std::uint64_t>(chunks) * kChunkStride,
      std::memory_order_relaxed);
  region_windows_.emplace_back(region, base);
  if (region_windows_.size() > 128)
    region_windows_.erase(region_windows_.begin());
  return base;
}

std::uint64_t Tracer::begin_span(std::string name) {
  ThreadState& state = thread_state();
  OpenSpan span;
  span.name = std::move(name);
  span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.region = tls_chunk.region;
  span.chunk = tls_chunk.chunk;
  // Parent only within the same chunk context (see OpenSpan): spans opened
  // inside a pool chunk are roots regardless of the executing thread's
  // outer stack, so trees are identical for any pool size.
  const bool inherits = !state.stack.empty() &&
                        state.stack.back().region == span.region &&
                        state.stack.back().chunk == span.chunk;
  span.parent =
      inherits ? static_cast<std::ptrdiff_t>(state.stack.back().id) : -1;
  span.depth = inherits ? state.stack.back().depth + 1 : 0;
  span.start = now_seconds(state);
  state.stack.push_back(std::move(span));
  state.open.store(state.stack.size(), std::memory_order_relaxed);
  return state.stack.back().id;
}

void Tracer::end_span(std::uint64_t id) {
  ThreadState& state = thread_state();
  PITFALLS_ENSURE(!state.stack.empty() && state.stack.back().id == id,
                  "TraceSpan destruction out of per-thread LIFO order");
  OpenSpan span = std::move(state.stack.back());
  state.stack.pop_back();
  state.open.store(state.stack.size(), std::memory_order_relaxed);

  TraceEvent event;
  event.name = std::move(span.name);
  event.kind = TraceEventKind::kSpan;
  event.id = span.id;
  event.parent = span.parent;
  event.depth = span.depth;
  event.track = clock_ == TraceClock::kWall ? state.slot : 0;
  event.start_seconds = span.start;
  event.duration_seconds = std::max(0.0, now_seconds(state) - span.start);
  append(state, std::move(event));
}

void Tracer::emit(std::string name, TraceEventKind kind, double value) {
  ThreadState& state = thread_state();
  TraceEvent event;
  event.name = std::move(name);
  event.kind = kind;
  event.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const bool inherits = !state.stack.empty() &&
                        state.stack.back().region == tls_chunk.region &&
                        state.stack.back().chunk == tls_chunk.chunk;
  event.parent =
      inherits ? static_cast<std::ptrdiff_t>(state.stack.back().id) : -1;
  event.depth = inherits ? state.stack.back().depth + 1 : 0;
  event.track = clock_ == TraceClock::kWall ? state.slot : 0;
  event.start_seconds = now_seconds(state);
  event.duration_seconds = 0.0;
  event.value = value;
  append(state, std::move(event));
}

void Tracer::instant(std::string name) {
  emit(std::move(name), TraceEventKind::kInstant, 0.0);
}

void Tracer::counter(std::string name, double value) {
  emit(std::move(name), TraceEventKind::kCounter, value);
}

void Tracer::append(ThreadState& state, TraceEvent event) const {
  const std::lock_guard<std::mutex> lock(state.ring_mutex);
  if (state.ring.size() < capacity_) {
    state.ring.push_back(std::move(event));
    return;
  }
  state.ring[state.ring_head] = std::move(event);
  state.ring_head = (state.ring_head + 1) % capacity_;
  ++state.dropped;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& state : threads_) {
      const std::lock_guard<std::mutex> ring_lock(state->ring_mutex);
      for (std::size_t i = state->ring_head; i < state->ring.size(); ++i)
        all.push_back(state->ring[i]);
      for (std::size_t i = 0; i < state->ring_head; ++i)
        all.push_back(state->ring[i]);
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_seconds != b.start_seconds)
                return a.start_seconds < b.start_seconds;
              return a.id < b.id;
            });
  // Canonical ids: renumber in snapshot order and remap parent links. A
  // parent that is still open or already evicted resolves to -1.
  std::map<std::size_t, std::size_t> renumber;
  for (std::size_t i = 0; i < all.size(); ++i) renumber[all[i].id] = i;
  for (std::size_t i = 0; i < all.size(); ++i) {
    TraceEvent& event = all[i];
    if (event.parent >= 0) {
      const auto it = renumber.find(static_cast<std::size_t>(event.parent));
      event.parent = it == renumber.end()
                         ? -1
                         : static_cast<std::ptrdiff_t>(it->second);
    }
    event.id = i;
  }
  return all;
}

std::size_t Tracer::open_spans() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t total = 0;
  for (const auto& state : threads_)
    total += state->open.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& state : threads_) {
    const std::lock_guard<std::mutex> ring_lock(state->ring_mutex);
    total += state->dropped;
  }
  return total;
}

void Tracer::set_clock(TraceClock clock) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& state : threads_) {
    PITFALLS_REQUIRE(state->open.load(std::memory_order_relaxed) == 0,
                     "cannot switch clocks with open spans");
    const std::lock_guard<std::mutex> ring_lock(state->ring_mutex);
    PITFALLS_REQUIRE(state->ring.empty(),
                     "cannot switch clocks with recorded events");
  }
  clock_ = clock;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& state : threads_)
    PITFALLS_REQUIRE(state->open.load(std::memory_order_relaxed) == 0,
                     "cannot clear a tracer with open spans");
  for (const auto& state : threads_) {
    const std::lock_guard<std::mutex> ring_lock(state->ring_mutex);
    state->ring.clear();
    state->ring_head = 0;
    state->dropped = 0;
    state->ctx_region = 0;
    state->ctx_chunk = 0;
    state->ctx_base = 0;
    state->local_tick = 0;
  }
  region_windows_.clear();
  next_id_.store(0, std::memory_order_relaxed);
  ticks_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::write_json(JsonWriter& writer) const {
  const std::vector<TraceEvent> snapshot = events();
  writer.begin_array();
  for (const TraceEvent& event : snapshot) {
    writer.begin_object();
    writer.key("name").value(event.name);
    writer.key("kind").value(event.kind == TraceEventKind::kSpan ? "span"
                             : event.kind == TraceEventKind::kInstant
                                 ? "instant"
                                 : "counter");
    writer.key("id").value(std::uint64_t{event.id});
    writer.key("parent").value(std::int64_t{event.parent});
    writer.key("depth").value(std::uint64_t{event.depth});
    writer.key("track").value(std::uint64_t{event.track});
    writer.key("start_seconds").value(event.start_seconds);
    writer.key("duration_seconds").value(event.duration_seconds);
    if (event.kind == TraceEventKind::kCounter)
      writer.key("value").value(event.value);
    writer.end_object();
  }
  writer.end_array();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace pitfalls::obs
