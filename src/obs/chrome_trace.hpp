// Chrome/Perfetto trace-event exporter: serializes a Tracer snapshot into
// the Trace Event Format JSON that chrome://tracing and ui.perfetto.dev
// load directly ({"displayTimeUnit": "ms", "traceEvents": [...]}).
//
// Mapping: spans export as complete events (ph "X") with microsecond
// ts/dur; instants as thread-scoped instant events (ph "i"); counter
// samples as counter events (ph "C") carrying their value in args. Every
// event lands on pid 1 with tid = the event's track (per-thread slot under
// the wall clock, a single canonical track under the logical clock), and a
// leading metadata event (ph "M") names the process after the exporting
// bench. Because the exporter works off the deterministic Tracer snapshot,
// a logical-clock trace file is byte-identical for any PITFALLS_THREADS.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace pitfalls::obs {

/// Serialize the tracer's snapshot as a Chrome trace-event document into
/// `writer` (a complete JSON object; compose-free).
void write_chrome_trace(JsonWriter& writer, const Tracer& tracer,
                        const std::string& process_name);

/// Chrome trace document as a standalone string.
std::string chrome_trace_json(const Tracer& tracer,
                              const std::string& process_name);

/// Write the document to `path` (truncating). Returns false when the file
/// cannot be opened or written.
bool export_chrome_trace(const std::string& path, const Tracer& tracer,
                         const std::string& process_name);

}  // namespace pitfalls::obs
