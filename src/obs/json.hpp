// Dependency-free JSON emission and parsing for the observability layer.
//
//   * JsonWriter — streaming writer with automatic comma/nesting management
//     and correct string escaping. Non-finite doubles are serialized as the
//     quoted strings "inf" / "-inf" / "nan" (JSON has no literals for them;
//     quoting keeps the document valid and the saturation unambiguous, the
//     same role Table::fmt_or_inf plays for ASCII cells).
//   * JsonValue — a small recursive-descent parser used by the bench-output
//     validator and the tests. Object member order is preserved.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pitfalls::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member name inside an object; must be followed by exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool flag);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& null_value();

  /// The finished document; all containers must be closed.
  const std::string& str() const;

  /// Escape `raw` for embedding between JSON quotes (no surrounding quotes).
  static std::string escape(std::string_view raw);

 private:
  void before_value();
  void raw(std::string_view text) { out_.append(text); }

  struct Frame {
    char kind;                 // '{' or '['
    bool first = true;         // no comma before the first member
    bool key_pending = false;  // object frame: key() seen, value expected
  };

  std::string out_;
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                               // arrays
  std::vector<std::pair<std::string, JsonValue>> members;     // objects

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// First member with this name, or nullptr (objects only).
  const JsonValue* find(std::string_view name) const;

  /// Parse a complete document; throws std::runtime_error with the byte
  /// offset on malformed input (including trailing garbage).
  static JsonValue parse(std::string_view text);
};

}  // namespace pitfalls::obs
