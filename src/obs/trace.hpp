// Thread-aware hierarchical tracing: RAII TraceSpan instances nest through
// a Tracer, plus zero-duration instant events and sampled counter events.
// ScopedTimer (below) feeds a wall-clock Histogram on scope exit.
//
// Thread model: every thread owns its span stack and its event ring, so
// spans may be opened from pool workers and the calling thread
// concurrently. Nesting is strictly LIFO *per thread* (enforced —
// end_span checks the calling thread's stack top, so an out-of-order
// destruction or a cross-thread close trips PITFALLS_ENSURE in every build
// type). Parent/child linkage is per-thread: a span's parent is the
// innermost span open on the SAME thread; spans opened inside a pool chunk
// whose thread has no enclosing span are roots of their chunk's track.
//
// Flight recorder: completed events append into the emitting thread's
// bounded ring (capacity per thread via PITFALLS_TRACE_EVENTS, default
// 65536) with oldest-evicted overwrite, so tracing never grows unbounded
// on long runs; dropped_events() reports evictions. Appends touch only the
// owning thread's ring — the per-ring mutex is contended only while a
// snapshot is being taken, never between emitting threads.
//
// Snapshot determinism: events() / write_json() merge the per-thread rings,
// sort by (start, id) and renumber ids in sorted order (remapping parent
// links; a parent that is still open or evicted exports as -1). Under the
// logical clock (below) the exported JSON is byte-stable for any
// PITFALLS_THREADS value.
//
// Clocks: kWall (default) timestamps events with real steady_clock offsets
// from the tracer epoch. kLogical (PITFALLS_TRACE_CLOCK=logical) assigns
// deterministic virtual ticks (exported as microseconds): events emitted
// outside parallel regions consume one tick from a serial counter; events
// emitted inside a top-level pool chunk draw from a per-(region, chunk)
// tick window keyed through the support/parallel on_chunk_run hook —
// chunk windows depend only on (region order, chunk index), never on the
// executing thread, which is what makes the export byte-identical across
// thread counts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace pitfalls::obs {

enum class TraceClock {
  kWall,     // steady_clock seconds since the tracer epoch
  kLogical,  // deterministic virtual ticks (1 tick == 1 exported µs)
};

enum class TraceEventKind { kSpan, kInstant, kCounter };

struct TraceEvent {
  std::string name;
  TraceEventKind kind = TraceEventKind::kSpan;
  std::size_t id = 0;          // snapshot order, 0-based (renumbered)
  std::ptrdiff_t parent = -1;  // id of the enclosing same-thread span
  std::size_t depth = 0;       // 0 for roots
  std::size_t track = 0;       // export track: thread slot (wall) / 0 (logical)
  double start_seconds = 0.0;  // offset from the tracer's epoch
  double duration_seconds = 0.0;
  double value = 0.0;          // counter sample (kCounter only)
};

class Tracer {
 public:
  /// Clock and per-thread ring capacity resolved from the environment
  /// (PITFALLS_TRACE_CLOCK / PITFALLS_TRACE_EVENTS).
  Tracer();
  Tracer(TraceClock clock, std::size_t capacity);
  ~Tracer();  // out-of-line: ThreadState is incomplete here
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Completed events from every thread, sorted by (start, id) with ids
  /// renumbered in sorted order.
  std::vector<TraceEvent> events() const;

  /// Spans currently open across all threads.
  std::size_t open_spans() const;

  /// Events evicted from the flight-recorder rings since the last clear().
  std::uint64_t dropped_events() const;

  std::size_t capacity() const { return capacity_; }
  TraceClock clock() const { return clock_; }

  /// Switch clocks on an empty tracer (no events recorded, no open spans);
  /// tests use this to pin the global tracer to the logical clock.
  void set_clock(TraceClock clock);

  /// Drop recorded events and restart the epoch (no spans may be open).
  void clear();

  /// Zero-duration point event on the calling thread's track.
  void instant(std::string name);

  /// Counter sample event (rendered as a counter track by Chrome tracing).
  void counter(std::string name, double value);

  /// JSON array of event objects in snapshot order (see events()).
  void write_json(JsonWriter& writer) const;

  static Tracer& global();

 private:
  friend class TraceSpan;

  struct OpenSpan {
    std::string name;
    std::uint64_t id;
    std::ptrdiff_t parent;
    std::size_t depth;
    double start;
    // Chunk context the span was opened in. Parentage never crosses a
    // chunk boundary: a span opened inside a pool chunk roots a fresh tree
    // even when the chunk happens to run inline on a thread with open
    // spans — otherwise parent links would depend on which thread executed
    // the chunk.
    std::uint64_t region;
    std::size_t chunk;
  };

  struct ThreadState;

  std::uint64_t begin_span(std::string name);
  void end_span(std::uint64_t id);
  void emit(std::string name, TraceEventKind kind, double value);
  ThreadState& thread_state() const;
  double now_seconds(ThreadState& state) const;
  std::uint64_t chunk_window_base(std::uint64_t region,
                                  std::size_t chunks) const;
  void append(ThreadState& state, TraceEvent event) const;

  const std::uint64_t uid_;  // process-unique; keys the per-thread TLS cache
  TraceClock clock_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::atomic<std::uint64_t> next_id_{0};
  mutable std::atomic<std::uint64_t> ticks_{0};  // logical serial clock
  mutable std::mutex registry_mutex_;  // thread states + region windows
  mutable std::vector<std::unique_ptr<ThreadState>> threads_;
  mutable std::vector<std::pair<std::uint64_t, std::uint64_t>>
      region_windows_;  // (region id, base tick), most recent last
};

/// RAII span; spans on one thread must close in reverse opening order.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, Tracer& tracer = Tracer::global())
      : tracer_(&tracer), id_(tracer.begin_span(std::move(name))) {}
  ~TraceSpan() { tracer_->end_span(id_); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  std::uint64_t id_;
};

/// Pool-hook target: records the (region, chunk, chunk count) context the
/// calling thread is executing, so logical-clock tracers can key tick
/// windows by chunk instead of by thread. Installed into
/// support::PoolHooks::on_chunk_run by MetricsRegistry::global(); not for
/// direct use.
void trace_note_chunk_run(std::uint64_t region_id, std::size_t chunk,
                          std::size_t chunks, bool entering);

/// RAII wall-clock timer; observes elapsed seconds into the histogram on
/// destruction unless cancelled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(MetricsRegistry& registry, const std::string& histogram_name)
      : ScopedTimer(registry.histogram(histogram_name)) {}
  ~ScopedTimer() {
    if (armed_) sink_->observe(elapsed_seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Do not record on destruction (e.g. the measured phase failed).
  void cancel() { armed_ = false; }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
  bool armed_ = true;
};

}  // namespace pitfalls::obs
