// Hierarchical phase timing: RAII TraceSpan instances nest through a Tracer
// (parent = innermost span still open at construction), and ScopedTimer
// feeds a wall-clock Histogram on scope exit.
//
// Span nesting is strictly LIFO (scopes), so spans record their event on
// destruction in completion order: children always precede their parent in
// events(). Parent/child linkage uses creation-order ids, which are assigned
// at span *start* and therefore valid before the parent completes.
//
// The Tracer's span stack is not synchronized — open/close spans from one
// thread per Tracer (the experiment harness is single-threaded today);
// completed events are mutex-guarded so snapshots are safe from anywhere.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace pitfalls::obs {

struct TraceEvent {
  std::string name;
  std::size_t id = 0;          // creation order, 0-based
  std::ptrdiff_t parent = -1;  // id of the enclosing span, -1 for roots
  std::size_t depth = 0;       // 0 for roots
  double start_seconds = 0.0;  // offset from the tracer's epoch
  double duration_seconds = 0.0;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Completed spans, in completion order (children before parents).
  std::vector<TraceEvent> events() const;

  std::size_t open_spans() const { return stack_.size(); }

  /// Drop recorded events and restart the epoch (no spans may be open).
  void clear();

  /// JSON array of event objects, completion order.
  void write_json(JsonWriter& writer) const;

  static Tracer& global();

 private:
  friend class TraceSpan;

  struct OpenSpan {
    std::string name;
    std::size_t id;
    std::ptrdiff_t parent;
    std::size_t depth;
    std::chrono::steady_clock::time_point start;
  };

  std::size_t begin_span(std::string name);
  void end_span(std::size_t id);

  std::vector<OpenSpan> stack_;
  std::size_t next_id_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex events_mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII span; must be destroyed in reverse order of construction per Tracer.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, Tracer& tracer = Tracer::global())
      : tracer_(&tracer), id_(tracer.begin_span(std::move(name))) {}
  ~TraceSpan() { tracer_->end_span(id_); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  std::size_t id() const { return id_; }

 private:
  Tracer* tracer_;
  std::size_t id_;
};

/// RAII wall-clock timer; observes elapsed seconds into the histogram on
/// destruction unless cancelled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(MetricsRegistry& registry, const std::string& histogram_name)
      : ScopedTimer(registry.histogram(histogram_name)) {}
  ~ScopedTimer() {
    if (armed_) sink_->observe(elapsed_seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Do not record on destruction (e.g. the measured phase failed).
  void cancel() { armed_ = false; }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
  bool armed_ = true;
};

}  // namespace pitfalls::obs
