// The observability name registry: every metric/span name literal used
// under src/ and bench/, exactly once. pitfalls-lint's metric-registry rule
// checks callsites against this list, so bench JSON, baselines and
// check_bench_json can never drift silently from the code.
//
// GENERATED FILE — regenerate after adding or renaming a name:
//   pitfalls-lint --write-names=src/obs/names.hpp src bench
#pragma once

#include <cstddef>

namespace pitfalls::obs::names {

// clang-format off
inline constexpr const char* kRegistered[] = {
    "attack.appsat",  // span
    "attack.appsat.dip_phase",  // span
    "attack.appsat.round",  // span
    "attack.appsat.settle_phase",  // span
    "attack.bmc.frames",  // counter
    "attack.bmc_reach",  // span
    "attack.bmc_reach.frame",  // span
    "attack.dips",  // counter
    "attack.key_bits_fixed",  // counter
    "attack.miter_clauses",  // counter
    "attack.sat_attack",  // span
    "attack.sat_attack.dip",  // span
    "attack.sat_attack.encode_miter",  // span
    "attack.sat_attack.extract_key",  // span
    "attack.sat_attack.seconds",  // histogram
    "circuit.analyze",  // span
    "circuit.analyze.calls",  // counter
    "circuit.netlist.depth",  // histogram
    "circuit.netlist.logic_gates",  // histogram
    "circuit.simplify",  // span
    "circuit.simplify.calls",  // counter
    "circuit.simplify.gates_removed",  // counter
    "core.eval_seconds",  // timer
    "core.evaluate",  // span
    "core.evaluate.test",  // span
    "core.evaluate.train",  // span
    "core.evaluations",  // counter
    "core.learning_curve",  // span
    "core.train_seconds",  // histogram
    "lock.antisat",  // span
    "lock.antisat.block_gates",  // counter
    "lock.fsm.obf_states",  // counter
    "lock.obfuscate_fsm",  // span
    "lock.random_xor",  // span
    "lock.sarlock.comparator_gates",  // counter
    "lock.sarlock.layer",  // span
    "lock.xor.key_gates",  // counter
    "ml.anf.interpolations",  // counter
    "ml.anf.membership_queries",  // counter
    "ml.chow.crps_used",  // counter
    "ml.chow.estimates",  // counter
    "ml.lmn.coefficients_estimated",  // counter
    "ml.lmn.fits",  // counter
    "ml.lmn.learn_seconds",  // timer
    "ml.lmn.samples",  // counter
    "ml.lmn.terms_kept",  // counter
    "ml.logistic.deadline_hits",  // counter
    "ml.logistic.final_loss",  // gauge
    "ml.logistic.fit_seconds",  // timer
    "ml.logistic.fits",  // counter
    "ml.logistic.iterations",  // counter
    "ml.lstar.learn_seconds",  // timer
    "ml.lstar.rounds",  // counter
    "ml.lstar.runs",  // counter
    "ml.lstar.states",  // gauge
    "ml.perceptron.deadline_hits",  // counter
    "ml.perceptron.epochs",  // counter
    "ml.perceptron.fit_seconds",  // timer
    "ml.perceptron.fits",  // counter
    "ml.perceptron.mistakes",  // counter
    "ml.sparsepoly.equivalence_queries",  // counter
    "ml.sparsepoly.membership_queries",  // counter
    "ml.sparsepoly.runs",  // counter
    "ml.sparsepoly.terms",  // counter
    "oracle.batch.calls",  // counter
    "oracle.batch.elements",  // counter
    "oracle.batch.size",  // histogram
    "oracle.dfa_equivalence_queries",  // counter
    "oracle.dfa_membership_queries",  // counter
    "oracle.equivalence_calls",  // counter
    "oracle.equivalence_samples",  // counter
    "oracle.membership_queries",  // counter
    "puf.crp.accuracy",  // batch
    "puf.crp.collect",  // batch
    "puf.crp.collect_stable_seconds",  // timer
    "puf.crp.noisy_collected",  // counter
    "puf.crp.stable_collected",  // counter
    "puf.crp.uniform_collected",  // counter
    "puf.crp.unstable_rejected",  // counter
    "puf.metrics",  // batch
    "robust.budget.refusals",  // counter
    "robust.faults.burst_flips",  // counter
    "robust.faults.drops",  // counter
    "robust.faults.iid_flips",  // counter
    "robust.faults.metastable_flips",  // counter
    "robust.holdout",  // batch
    "robust.learn.degraded_completions",  // counter
    "robust.learn.heldout_accuracy",  // histogram
    "robust.learn.queries_spent",  // counter
    "robust.retry.attempts",  // counter
    "robust.retry.backoff_steps",  // counter
    "robust.retry.failures",  // counter
    "robust.vote.votes",  // counter
    "robust.vote.votes_per_query",  // histogram
    "sat.solver.arena_collections",  // counter
    "sat.solver.blocked_restarts",  // counter
    "sat.solver.conflicts",  // counter
    "sat.solver.db_reductions",  // counter
    "sat.solver.decisions",  // counter
    "sat.solver.deleted_clauses",  // counter
    "sat.solver.lbd",  // histogram
    "sat.solver.learned_clauses",  // counter
    "sat.solver.learned_literals",  // counter
    "sat.solver.max_decision_level",  // gauge
    "sat.solver.minimized_literals",  // counter
    "sat.solver.portfolio_rounds",  // counter
    "sat.solver.portfolio_solves",  // counter
    "sat.solver.portfolio_winner",  // gauge
    "sat.solver.propagations",  // counter
    "sat.solver.reduce_db",  // instant
    "sat.solver.restarts",  // counter
    "serve.fleet.evictions",  // counter
    "serve.fleet.hits",  // counter
    "serve.fleet.materializations",  // counter
    "serve.job.auth",  // span
    "serve.job.collect",  // span
    "serve.job.eval",  // span
    "serve.job.fit",  // span
    "serve.job.query",  // span
    "serve.job.run",  // span
    "serve.jobs.completed",  // counter
    "serve.jobs.failed",  // counter
    "serve.jobs.submitted",  // counter
    "serve.session.resumed",  // counter
    "serve.wire.errors",  // counter
    "serve.wire.requests",  // counter
    "store.snapshot.bytes_written",  // counter
    "store.snapshot.corrupt",  // counter
    "store.snapshot.divergence",  // counter
    "store.snapshot.loads",  // counter
    "store.snapshot.mismatch",  // counter
    "store.snapshot.replayed_queries",  // counter
    "store.snapshot.resumed",  // counter
    "store.snapshot.writes",  // counter
    "support.pool.tasks",  // counter
    "support.pool.threads",  // gauge
};
// clang-format on

inline constexpr std::size_t kRegisteredCount =
    sizeof(kRegistered) / sizeof(kRegistered[0]);

}  // namespace pitfalls::obs::names
