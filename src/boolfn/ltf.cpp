#include "boolfn/ltf.hpp"

#include <cmath>
#include <sstream>

#include "support/require.hpp"

namespace pitfalls::boolfn {

Ltf::Ltf(std::vector<double> weights, double threshold)
    : weights_(std::move(weights)), threshold_(threshold) {
  PITFALLS_REQUIRE(!weights_.empty(), "an LTF needs at least one weight");
}

Ltf Ltf::random(std::size_t n, support::Rng& rng) {
  std::vector<double> w(n);
  for (auto& weight : w) weight = rng.gaussian();
  return Ltf(std::move(w), 0.0);
}

Ltf Ltf::random_decaying(std::size_t n, double ratio, support::Rng& rng) {
  PITFALLS_REQUIRE(ratio > 0.0 && ratio <= 1.0, "decay ratio must be in (0,1]");
  std::vector<double> w(n);
  double scale = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = scale * rng.gaussian();
    scale *= ratio;
  }
  return Ltf(std::move(w), 0.0);
}

double Ltf::margin(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == weights_.size(), "input arity mismatch");
  double sum = -threshold_;
  for (std::size_t i = 0; i < weights_.size(); ++i)
    sum += weights_[i] * static_cast<double>(x.pm_one(i));
  return sum;
}

int Ltf::eval_pm(const BitVec& x) const {
  return margin(x) < 0.0 ? -1 : +1;  // sgn(0) := +1
}

double Ltf::weight_norm() const {
  double sum = 0.0;
  for (auto w : weights_) sum += w * w;
  return std::sqrt(sum);
}

std::string Ltf::describe() const {
  std::ostringstream os;
  os << "LTF over " << weights_.size() << " vars (theta=" << threshold_ << ")";
  return os.str();
}

}  // namespace pitfalls::boolfn
