// Fourier analysis of Boolean functions over the +/-1 encoding:
//   f(x) = sum_S fhat(S) chi_S(x),  chi_S(x) = prod_{i in S} x_i,
//   fhat(S) = E_{x ~ U}[f(x) chi_S(x)].
//
// Provides the exact spectrum via a fast Walsh–Hadamard transform for
// materialised truth tables, and sampled estimators (from an oracle or from a
// fixed CRP set) for functions too large to materialise. These estimators are
// exactly what the LMN algorithm, the Chow reconstruction and the halfspace
// tester consume.
#pragma once

#include <cstdint>
#include <vector>

#include "boolfn/boolean_function.hpp"
#include "boolfn/truth_table.hpp"
#include "support/rng.hpp"

namespace pitfalls::boolfn {

/// Exact Fourier spectrum of a truth table: entry S (as a bitmask over
/// variables) holds fhat(S). Computed with an in-place fast WHT, O(n 2^n).
class FourierSpectrum {
 public:
  static FourierSpectrum of(const TruthTable& table);

  std::size_t num_vars() const { return n_; }
  double coefficient(std::uint64_t subset_mask) const;
  const std::vector<double>& coefficients() const { return coeffs_; }

  /// Fourier weight at exactly degree d: sum of fhat(S)^2 over |S| = d.
  double weight_at_degree(std::size_t d) const;

  /// Fourier weight up to degree d (inclusive).
  double weight_up_to_degree(std::size_t d) const;

  /// Total weight (Parseval: equals 1 for a +/-1 function).
  double total_weight() const;

  /// Noise sensitivity at flip probability eps, computed exactly from the
  /// spectrum: NS_eps(f) = 1/2 - 1/2 sum_S (1-2 eps)^{|S|} fhat(S)^2.
  double noise_sensitivity(double eps) const;

  /// Reconstruct the sign of the degree-<=d truncation as a truth table.
  /// Rows where the truncation is exactly zero are mapped to +1.
  TruthTable truncated_sign(std::size_t d) const;

 private:
  FourierSpectrum(std::size_t n, std::vector<double> coeffs)
      : n_(n), coeffs_(std::move(coeffs)) {}

  std::size_t n_ = 0;
  std::vector<double> coeffs_;
};

/// Sampled estimate of fhat(S) using m uniform oracle queries.
double estimate_coefficient(const BooleanFunction& f, const BitVec& subset,
                            std::size_t m, support::Rng& rng);

/// Estimate fhat(S) for every S in `subsets` from one shared uniform sample
/// of size m (the LMN query pattern: one sample, many coefficients). The
/// sample is generated in deterministic per-chunk streams and may be drawn
/// from several threads at once, so f.eval_pm must be safe to call
/// concurrently (true for every BooleanFunction in this library — eval is
/// pure). rng advances by exactly one draw.
std::vector<double> estimate_coefficients(
    const BooleanFunction& f, const std::vector<BitVec>& subsets,
    std::size_t m, support::Rng& rng);

/// Estimate fhat(S) for every S in `subsets` from a fixed labelled CRP set
/// (challenges[i] with +/-1 response responses[i]). Backed by a bit-sliced
/// per-sample parity cache (one XOR+popcount sweep per subset instead of m
/// masked_parity calls) and parallelized over subsets; the sums are exact
/// integer arithmetic, so results are identical to the naive loop for any
/// thread count.
std::vector<double> estimate_coefficients_from_data(
    const std::vector<BitVec>& challenges, const std::vector<int>& responses,
    const std::vector<BitVec>& subsets);

/// Sampled noise sensitivity: draw m uniform x, rerandomise each bit with
/// probability eps, count disagreements.
double estimate_noise_sensitivity(const BooleanFunction& f, double eps,
                                  std::size_t m, support::Rng& rng);

/// Sampled bias E[f].
double estimate_bias(const BooleanFunction& f, std::size_t m,
                     support::Rng& rng);

}  // namespace pitfalls::boolfn
