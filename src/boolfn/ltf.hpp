// Linear threshold functions (halfspaces) over the +/-1 encoding:
//   f(x) = sgn( sum_i w_i x_i - theta ),  sgn(0) := +1.
//
// Arbiter PUFs are exactly representable in this class (Section III-A of the
// paper); BR PUFs are *claimed* to be — the claim Tables II/III refute.
#pragma once

#include <vector>

#include "boolfn/boolean_function.hpp"
#include "support/rng.hpp"

namespace pitfalls::boolfn {

class Ltf final : public BooleanFunction {
 public:
  /// weights.size() defines the arity.
  Ltf(std::vector<double> weights, double threshold);

  /// Random LTF with i.i.d. N(0,1) weights and zero threshold.
  static Ltf random(std::size_t n, support::Rng& rng);

  /// Random LTF whose weight magnitudes decay geometrically (|w_i| ~ r^i):
  /// such LTFs are close to juntas on their leading variables, the regime
  /// Corollary 2's membership-query argument relies on.
  static Ltf random_decaying(std::size_t n, double ratio, support::Rng& rng);

  std::size_t num_vars() const override { return weights_.size(); }
  int eval_pm(const BitVec& x) const override;
  std::string describe() const override;

  const std::vector<double>& weights() const { return weights_; }
  double threshold() const { return threshold_; }

  /// The real-valued margin sum_i w_i x_i - theta.
  double margin(const BitVec& x) const;

  /// L2 norm of the weight vector (excluding the threshold).
  double weight_norm() const;

 private:
  std::vector<double> weights_;
  double threshold_;
};

}  // namespace pitfalls::boolfn
