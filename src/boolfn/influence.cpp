#include "boolfn/influence.hpp"

#include "support/require.hpp"

namespace pitfalls::boolfn {

double influence(const TruthTable& table, std::size_t i) {
  PITFALLS_REQUIRE(i < table.num_vars(), "variable index out of range");
  const std::uint64_t rows = table.num_rows();
  const std::uint64_t bit = std::uint64_t{1} << i;
  std::uint64_t flips = 0;
  for (std::uint64_t row = 0; row < rows; ++row)
    if ((row & bit) == 0 && table.at(row) != table.at(row | bit)) flips += 2;
  return static_cast<double>(flips) / static_cast<double>(rows);
}

std::vector<double> influences(const TruthTable& table) {
  std::vector<double> out(table.num_vars());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = influence(table, i);
  return out;
}

double total_influence(const TruthTable& table) {
  double total = 0.0;
  for (std::size_t i = 0; i < table.num_vars(); ++i)
    total += influence(table, i);
  return total;
}

double estimate_influence(const BooleanFunction& f, std::size_t i,
                          std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(i < f.num_vars(), "variable index out of range");
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  std::size_t flips = 0;
  for (std::size_t s = 0; s < m; ++s) {
    BitVec x(f.num_vars());
    for (std::size_t b = 0; b < x.size(); ++b) x.set(b, rng.coin());
    const int before = f.eval_pm(x);
    x.flip(i);
    if (f.eval_pm(x) != before) ++flips;
  }
  return static_cast<double>(flips) / static_cast<double>(m);
}

std::vector<std::size_t> relevant_variables(const TruthTable& table) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < table.num_vars(); ++i)
    if (influence(table, i) > 0.0) out.push_back(i);
  return out;
}

bool is_junta(const TruthTable& table, std::size_t k) {
  return relevant_variables(table).size() <= k;
}

TruthTable restrict_to(const BooleanFunction& f,
                       const std::vector<std::size_t>& kept, bool fill) {
  const std::size_t n = f.num_vars();
  for (auto index : kept)
    PITFALLS_REQUIRE(index < n, "kept variable out of range");
  PITFALLS_REQUIRE(kept.size() <= 26, "restriction too large to materialise");

  TruthTable out(kept.size());
  BitVec x(n);
  for (std::size_t i = 0; i < n; ++i) x.set(i, fill);
  for (std::uint64_t row = 0; row < out.num_rows(); ++row) {
    for (std::size_t j = 0; j < kept.size(); ++j)
      x.set(kept[j], (row >> j) & 1ULL);
    out.set(row, f.eval_pm(x));
  }
  return out;
}

}  // namespace pitfalls::boolfn
