#include "boolfn/truth_table.hpp"

#include "support/require.hpp"

namespace pitfalls::boolfn {

namespace {
constexpr std::size_t kMaxVars = 26;  // 2^26 ints = 256 MiB; hard cap
}

TruthTable::TruthTable(std::size_t n) : n_(n) {
  PITFALLS_REQUIRE(n <= kMaxVars, "truth table too large to materialise");
  values_.assign(std::uint64_t{1} << n, +1);
}

TruthTable TruthTable::from_function(const BooleanFunction& f) {
  TruthTable t(f.num_vars());
  const std::size_t n = t.n_;
  for (std::uint64_t row = 0; row < t.num_rows(); ++row) {
    const BitVec x(n, row);
    t.values_[row] = f.eval_pm(x);
  }
  return t;
}

TruthTable TruthTable::from_values(std::size_t n, std::vector<int> values) {
  TruthTable t(n);
  PITFALLS_REQUIRE(values.size() == t.num_rows(),
                   "value vector must have 2^n entries");
  for (auto v : values)
    PITFALLS_REQUIRE(v == +1 || v == -1, "truth table values must be +/-1");
  t.values_ = std::move(values);
  return t;
}

int TruthTable::eval_pm(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == n_, "input arity mismatch");
  return values_[x.to_uint64()];
}

void TruthTable::set(std::uint64_t row, int pm_value) {
  PITFALLS_REQUIRE(row < num_rows(), "row out of range");
  PITFALLS_REQUIRE(pm_value == +1 || pm_value == -1, "value must be +/-1");
  values_[row] = pm_value;
}

double TruthTable::distance(const TruthTable& other) const {
  PITFALLS_REQUIRE(n_ == other.n_, "arity mismatch in distance");
  std::uint64_t disagreements = 0;
  for (std::uint64_t row = 0; row < num_rows(); ++row)
    if (values_[row] != other.values_[row]) ++disagreements;
  return static_cast<double>(disagreements) / static_cast<double>(num_rows());
}

double TruthTable::bias() const {
  std::int64_t sum = 0;
  for (auto v : values_) sum += v;
  return static_cast<double>(sum) / static_cast<double>(num_rows());
}

}  // namespace pitfalls::boolfn
