#include "boolfn/fourier.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <span>

#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::boolfn {

namespace {

// Rows at or above this size are worth fanning the WHT out over the pool;
// below it the butterflies fit in cache and task overhead would dominate.
constexpr std::uint64_t kParallelWhtRows = 1ULL << 14;

// In-place fast Walsh–Hadamard transform. After the transform,
// data[S] = sum_x f(x) * (-1)^{popcount(x & S)} = 2^n * fhat(S),
// because chi_S(x) = (-1)^{popcount(x & S)} under the chi encoding.
//
// Two radix-2 stages are fused into one radix-4 memory sweep: the fused
// butterfly writes (a+b)+(c+d), (a-b)+(c-d), (a+b)-(c+d), (a-b)-(c-d) —
// the exact associations the sequential stages produce, so results are
// bit-identical to the classic stage-by-stage kernel while touching memory
// half as often. Each butterfly group owns its four slots exclusively, so
// groups parallelize with no reduction-order concerns.
// One radix-4 pass over butterfly groups q in [begin, end): group q maps to
// block q/len, offset q%len, walked block-wise so the inner loop is pure
// pointer arithmetic (no division per butterfly). When Scaled, the pass is
// the transform's last and folds the 1/2^n normalization into its writes —
// (x)*scale is the same expression the standalone scaling loop evaluates,
// so fusion is bit-identical.
template <bool Scaled>
void radix4_sweep(double* data, std::uint64_t len, std::uint64_t begin,
                  std::uint64_t end, double scale) {
  std::uint64_t q = begin;
  std::uint64_t block = begin / len;
  std::uint64_t offset = begin % len;
  while (q < end) {
    const std::uint64_t run = std::min(end - q, len - offset);
    double* base = data + block * (len << 2) + offset;
    for (std::uint64_t k = 0; k < run; ++k) {
      double* p = base + k;
      const double a = p[0];
      const double b = p[len];
      const double c = p[2 * len];
      const double d = p[3 * len];
      const double ab_sum = a + b;
      const double ab_diff = a - b;
      const double cd_sum = c + d;
      const double cd_diff = c - d;
      if constexpr (Scaled) {
        p[0] = (ab_sum + cd_sum) * scale;
        p[len] = (ab_diff + cd_diff) * scale;
        p[2 * len] = (ab_sum - cd_sum) * scale;
        p[3 * len] = (ab_diff - cd_diff) * scale;
      } else {
        p[0] = ab_sum + cd_sum;
        p[len] = ab_diff + cd_diff;
        p[2 * len] = ab_sum - cd_sum;
        p[3 * len] = ab_diff - cd_diff;
      }
    }
    q += run;
    offset = 0;
    ++block;
  }
}

template <bool Scaled>
void radix2_sweep(double* data, std::uint64_t len, std::uint64_t begin,
                  std::uint64_t end, double scale) {
  for (std::uint64_t i = begin; i < end; ++i) {
    const double a = data[i];
    const double b = data[i + len];
    if constexpr (Scaled) {
      data[i] = (a + b) * scale;
      data[i + len] = (a - b) * scale;
    } else {
      data[i] = a + b;
      data[i + len] = a - b;
    }
  }
}

void walsh_hadamard(std::vector<double>& data, double final_scale = 1.0) {
  const std::uint64_t rows = data.size();
  const bool pooled = rows >= kParallelWhtRows;
  const bool fuse_scale = final_scale != 1.0;
  if (rows < 2) {
    if (fuse_scale)
      for (auto& value : data) value *= final_scale;
    return;
  }
  std::uint64_t len = 1;
  while (len * 2 < rows) {
    const bool final_pass = (len * 4 == rows);
    const auto sweep = [&data, len, final_pass, fuse_scale, final_scale](
                           std::size_t, std::size_t begin, std::size_t end) {
      if (final_pass && fuse_scale)
        radix4_sweep<true>(data.data(), len, begin, end, final_scale);
      else
        radix4_sweep<false>(data.data(), len, begin, end, 0.0);
    };
    if (pooled) {
      support::parallel_for_chunks(rows / 4, sweep, "boolfn.wht");
    } else {
      sweep(0, 0, rows / 4);
    }
    len <<= 2;
  }
  if (len < rows) {
    // Odd number of stages: one trailing radix-2 stage (len == rows / 2).
    const auto sweep = [&data, len, fuse_scale, final_scale](
                           std::size_t, std::size_t begin, std::size_t end) {
      if (fuse_scale)
        radix2_sweep<true>(data.data(), len, begin, end, final_scale);
      else
        radix2_sweep<false>(data.data(), len, begin, end, 0.0);
    };
    if (pooled) {
      support::parallel_for_chunks(len, sweep, "boolfn.wht");
    } else {
      sweep(0, 0, len);
    }
  }
}

}  // namespace

FourierSpectrum FourierSpectrum::of(const TruthTable& table) {
  const std::size_t n = table.num_vars();
  const std::uint64_t rows = table.num_rows();
  std::vector<double> data(rows);
  for (std::uint64_t row = 0; row < rows; ++row)
    data[row] = static_cast<double>(table.at(row));

  // The 1/2^n normalization is fused into the transform's final stage; each
  // output is still (butterfly result) * scale, so this is bit-identical to
  // a separate scaling pass.
  walsh_hadamard(data, 1.0 / static_cast<double>(rows));
  return FourierSpectrum(n, std::move(data));
}

double FourierSpectrum::coefficient(std::uint64_t subset_mask) const {
  PITFALLS_REQUIRE(subset_mask < coeffs_.size(), "subset mask out of range");
  return coeffs_[subset_mask];
}

double FourierSpectrum::weight_at_degree(std::size_t d) const {
  double total = 0.0;
  for (std::uint64_t mask = 0; mask < coeffs_.size(); ++mask)
    if (static_cast<std::size_t>(std::popcount(mask)) == d)
      total += coeffs_[mask] * coeffs_[mask];
  return total;
}

double FourierSpectrum::weight_up_to_degree(std::size_t d) const {
  double total = 0.0;
  for (std::uint64_t mask = 0; mask < coeffs_.size(); ++mask)
    if (static_cast<std::size_t>(std::popcount(mask)) <= d)
      total += coeffs_[mask] * coeffs_[mask];
  return total;
}

double FourierSpectrum::total_weight() const {
  double total = 0.0;
  for (auto c : coeffs_) total += c * c;
  return total;
}

double FourierSpectrum::noise_sensitivity(double eps) const {
  PITFALLS_REQUIRE(eps >= 0.0 && eps <= 1.0, "eps must be in [0,1]");
  const double rho = 1.0 - 2.0 * eps;
  // rho^d for every possible degree, hoisted out of the 2^n-mask loop
  // (std::pow, not repeated multiplication, so the per-mask values match
  // the naive evaluation bit-for-bit).
  std::vector<double> rho_pow(n_ + 1);
  for (std::size_t d = 0; d <= n_; ++d)
    rho_pow[d] = std::pow(rho, static_cast<double>(d));
  double stability = 0.0;
  for (std::uint64_t mask = 0; mask < coeffs_.size(); ++mask)
    stability += rho_pow[static_cast<std::size_t>(std::popcount(mask))] *
                 coeffs_[mask] * coeffs_[mask];
  return 0.5 - 0.5 * stability;
}

TruthTable FourierSpectrum::truncated_sign(std::size_t d) const {
  // Zero out coefficients above degree d and invert the WHT.
  std::vector<double> data = coeffs_;
  for (std::uint64_t mask = 0; mask < data.size(); ++mask)
    if (static_cast<std::size_t>(std::popcount(mask)) > d) data[mask] = 0.0;

  walsh_hadamard(data);
  // The forward transform already divided by 2^n, and the WHT matrix is its
  // own inverse up to that factor, so `data` now holds the truncation values.
  const std::uint64_t rows = data.size();
  TruthTable out(n_);
  for (std::uint64_t row = 0; row < rows; ++row)
    out.set(row, data[row] < 0.0 ? -1 : +1);
  return out;
}

namespace {

BitVec uniform_input(std::size_t n, support::Rng& rng) {
  BitVec x(n);
  for (std::size_t i = 0; i < n; ++i) x.set(i, rng.coin());
  return x;
}

// Bit-sliced parity cache for the sampled estimators: plane v packs bit v of
// every challenge (bit s of word s/64 is challenge s), `resp` packs the sign
// bit of every response. chi_S(x_s) * y_s is then -1 exactly where
// (XOR of planes in S) ^ resp has bit s set, so one subset's estimate is a
// popcount over |S| XORed planes instead of m masked_parity calls — the sum
// is exact integer arithmetic, identical to the naive per-sample loop.
struct ParityCache {
  std::size_t samples = 0;
  std::size_t num_vars = 0;
  std::size_t words = 0;
  std::vector<std::uint64_t> planes;  // num_vars * words, plane-major
  std::vector<std::uint64_t> resp;    // words

  ParityCache(const std::vector<BitVec>& challenges,
              const std::vector<int>& responses)
      : samples(challenges.size()),
        num_vars(challenges.front().size()),
        words((challenges.size() + 63) / 64),
        planes(num_vars * words, 0),
        resp(words, 0) {
    for (std::size_t s = 0; s < samples; ++s) {
      const std::uint64_t bit = 1ULL << (s % 64);
      const std::size_t word = s / 64;
      const BitVec& c = challenges[s];
      for (std::size_t v = 0; v < num_vars; ++v)
        if (c.get(v)) planes[v * words + word] |= bit;
      if (responses[s] < 0) resp[word] |= bit;
    }
  }

  /// sum_s y_s * chi_S(x_s) for the subset with the given variable indices.
  std::int64_t signed_sum(const std::vector<std::size_t>& subset_vars,
                          std::vector<std::uint64_t>& scratch) const {
    scratch.assign(resp.begin(), resp.end());
    for (const std::size_t v : subset_vars) {
      const std::uint64_t* plane = planes.data() + v * words;
      for (std::size_t w = 0; w < words; ++w) scratch[w] ^= plane[w];
    }
    // Padding bits past `samples` are zero in every plane and in resp, so
    // they never contribute to the disagreement count.
    std::int64_t disagreements = 0;
    for (std::size_t w = 0; w < words; ++w)
      disagreements += std::popcount(scratch[w]);
    return static_cast<std::int64_t>(samples) - 2 * disagreements;
  }
};

}  // namespace

double estimate_coefficient(const BooleanFunction& f, const BitVec& subset,
                            std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  PITFALLS_REQUIRE(subset.size() == f.num_vars(), "subset arity mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const BitVec x = uniform_input(f.num_vars(), rng);
    const int chi = x.masked_parity(subset) ? -1 : +1;
    sum += static_cast<double>(f.eval_pm(x) * chi);
  }
  return sum / static_cast<double>(m);
}

std::vector<double> estimate_coefficients(
    const BooleanFunction& f, const std::vector<BitVec>& subsets,
    std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  // One shared sample, generated per-chunk: chunk c draws from its own
  // stream derived from (seed, c), so the sample — and everything computed
  // from it — is identical for every thread count. The caller's rng
  // advances by exactly one draw.
  const std::uint64_t seed = rng();
  const std::size_t n = f.num_vars();
  std::vector<BitVec> challenges(m);
  std::vector<int> responses(m);
  support::parallel_for_chunks(
      m,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        // One batch per chunk; eval_pm draws nothing, so batching after
        // generation is byte-identical to the old interleaved loop.
        for (std::size_t i = begin; i < end; ++i)
          challenges[i] = uniform_input(n, chunk_rng);
        f.eval_pm_batch(
            std::span<const BitVec>(challenges.data() + begin, end - begin),
            std::span<int>(responses.data() + begin, end - begin));
      },
      "boolfn.estimate.sample");
  return estimate_coefficients_from_data(challenges, responses, subsets);
}

std::vector<double> estimate_coefficients_from_data(
    const std::vector<BitVec>& challenges, const std::vector<int>& responses,
    const std::vector<BitVec>& subsets) {
  PITFALLS_REQUIRE(!challenges.empty(), "empty CRP set");
  PITFALLS_REQUIRE(challenges.size() == responses.size(),
                   "challenge/response size mismatch");
  const ParityCache cache(challenges, responses);
  const double m = static_cast<double>(challenges.size());
  std::vector<double> out(subsets.size(), 0.0);
  support::parallel_for_chunks(
      subsets.size(),
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t> scratch(cache.words);
        for (std::size_t s = begin; s < end; ++s) {
          PITFALLS_REQUIRE(subsets[s].size() == cache.num_vars,
                           "subset arity mismatch");
          out[s] =
              static_cast<double>(cache.signed_sum(subsets[s].set_bits(),
                                                   scratch)) /
              m;
        }
      },
      "boolfn.estimate");
  return out;
}

double estimate_noise_sensitivity(const BooleanFunction& f, double eps,
                                  std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  PITFALLS_REQUIRE(eps >= 0.0 && eps <= 1.0, "eps must be in [0,1]");
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const BitVec x = uniform_input(f.num_vars(), rng);
    BitVec y = x;
    for (std::size_t bit = 0; bit < y.size(); ++bit)
      if (rng.bernoulli(eps)) y.flip(bit);
    if (f.eval_pm(x) != f.eval_pm(y)) ++disagreements;
  }
  return static_cast<double>(disagreements) / static_cast<double>(m);
}

double estimate_bias(const BooleanFunction& f, std::size_t m,
                     support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  double sum = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    sum += static_cast<double>(f.eval_pm(uniform_input(f.num_vars(), rng)));
  return sum / static_cast<double>(m);
}

}  // namespace pitfalls::boolfn
