#include "boolfn/fourier.hpp"

#include <bit>
#include <cmath>

#include "support/require.hpp"

namespace pitfalls::boolfn {

FourierSpectrum FourierSpectrum::of(const TruthTable& table) {
  const std::size_t n = table.num_vars();
  const std::uint64_t rows = table.num_rows();
  std::vector<double> data(rows);
  for (std::uint64_t row = 0; row < rows; ++row)
    data[row] = static_cast<double>(table.at(row));

  // In-place fast Walsh–Hadamard butterfly. After the transform,
  // data[S] = sum_x f(x) * (-1)^{popcount(x & S)} = 2^n * fhat(S),
  // because chi_S(x) = (-1)^{popcount(x & S)} under the chi encoding.
  for (std::uint64_t len = 1; len < rows; len <<= 1) {
    for (std::uint64_t block = 0; block < rows; block += len << 1) {
      for (std::uint64_t i = block; i < block + len; ++i) {
        const double a = data[i];
        const double b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(rows);
  for (auto& value : data) value *= scale;
  return FourierSpectrum(n, std::move(data));
}

double FourierSpectrum::coefficient(std::uint64_t subset_mask) const {
  PITFALLS_REQUIRE(subset_mask < coeffs_.size(), "subset mask out of range");
  return coeffs_[subset_mask];
}

double FourierSpectrum::weight_at_degree(std::size_t d) const {
  double total = 0.0;
  for (std::uint64_t mask = 0; mask < coeffs_.size(); ++mask)
    if (static_cast<std::size_t>(std::popcount(mask)) == d)
      total += coeffs_[mask] * coeffs_[mask];
  return total;
}

double FourierSpectrum::weight_up_to_degree(std::size_t d) const {
  double total = 0.0;
  for (std::uint64_t mask = 0; mask < coeffs_.size(); ++mask)
    if (static_cast<std::size_t>(std::popcount(mask)) <= d)
      total += coeffs_[mask] * coeffs_[mask];
  return total;
}

double FourierSpectrum::total_weight() const {
  double total = 0.0;
  for (auto c : coeffs_) total += c * c;
  return total;
}

double FourierSpectrum::noise_sensitivity(double eps) const {
  PITFALLS_REQUIRE(eps >= 0.0 && eps <= 1.0, "eps must be in [0,1]");
  const double rho = 1.0 - 2.0 * eps;
  double stability = 0.0;
  for (std::uint64_t mask = 0; mask < coeffs_.size(); ++mask) {
    const int degree = std::popcount(mask);
    stability += std::pow(rho, degree) * coeffs_[mask] * coeffs_[mask];
  }
  return 0.5 - 0.5 * stability;
}

TruthTable FourierSpectrum::truncated_sign(std::size_t d) const {
  // Zero out coefficients above degree d and invert the WHT.
  std::vector<double> data = coeffs_;
  for (std::uint64_t mask = 0; mask < data.size(); ++mask)
    if (static_cast<std::size_t>(std::popcount(mask)) > d) data[mask] = 0.0;

  const std::uint64_t rows = data.size();
  for (std::uint64_t len = 1; len < rows; len <<= 1) {
    for (std::uint64_t block = 0; block < rows; block += len << 1) {
      for (std::uint64_t i = block; i < block + len; ++i) {
        const double a = data[i];
        const double b = data[i + len];
        data[i] = a + b;
        data[i + len] = a - b;
      }
    }
  }
  // The forward transform already divided by 2^n, and the WHT matrix is its
  // own inverse up to that factor, so `data` now holds the truncation values.
  TruthTable out(n_);
  for (std::uint64_t row = 0; row < rows; ++row)
    out.set(row, data[row] < 0.0 ? -1 : +1);
  return out;
}

namespace {

BitVec uniform_input(std::size_t n, support::Rng& rng) {
  BitVec x(n);
  for (std::size_t i = 0; i < n; ++i) x.set(i, rng.coin());
  return x;
}

}  // namespace

double estimate_coefficient(const BooleanFunction& f, const BitVec& subset,
                            std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  PITFALLS_REQUIRE(subset.size() == f.num_vars(), "subset arity mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const BitVec x = uniform_input(f.num_vars(), rng);
    const int chi = x.masked_parity(subset) ? -1 : +1;
    sum += static_cast<double>(f.eval_pm(x) * chi);
  }
  return sum / static_cast<double>(m);
}

std::vector<double> estimate_coefficients(
    const BooleanFunction& f, const std::vector<BitVec>& subsets,
    std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  std::vector<BitVec> challenges;
  std::vector<int> responses;
  challenges.reserve(m);
  responses.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    BitVec x = uniform_input(f.num_vars(), rng);
    responses.push_back(f.eval_pm(x));
    challenges.push_back(std::move(x));
  }
  return estimate_coefficients_from_data(challenges, responses, subsets);
}

std::vector<double> estimate_coefficients_from_data(
    const std::vector<BitVec>& challenges, const std::vector<int>& responses,
    const std::vector<BitVec>& subsets) {
  PITFALLS_REQUIRE(!challenges.empty(), "empty CRP set");
  PITFALLS_REQUIRE(challenges.size() == responses.size(),
                   "challenge/response size mismatch");
  std::vector<double> out(subsets.size(), 0.0);
  for (std::size_t s = 0; s < subsets.size(); ++s) {
    double sum = 0.0;
    for (std::size_t i = 0; i < challenges.size(); ++i) {
      const int chi = challenges[i].masked_parity(subsets[s]) ? -1 : +1;
      sum += static_cast<double>(responses[i] * chi);
    }
    out[s] = sum / static_cast<double>(challenges.size());
  }
  return out;
}

double estimate_noise_sensitivity(const BooleanFunction& f, double eps,
                                  std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  PITFALLS_REQUIRE(eps >= 0.0 && eps <= 1.0, "eps must be in [0,1]");
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const BitVec x = uniform_input(f.num_vars(), rng);
    BitVec y = x;
    for (std::size_t bit = 0; bit < y.size(); ++bit)
      if (rng.bernoulli(eps)) y.flip(bit);
    if (f.eval_pm(x) != f.eval_pm(y)) ++disagreements;
  }
  return static_cast<double>(disagreements) / static_cast<double>(m);
}

double estimate_bias(const BooleanFunction& f, std::size_t m,
                     support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one sample");
  double sum = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    sum += static_cast<double>(f.eval_pm(uniform_input(f.num_vars(), rng)));
  return sum / static_cast<double>(m);
}

}  // namespace pitfalls::boolfn
