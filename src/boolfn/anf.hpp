// Algebraic normal form (ANF): multivariate polynomials over F2,
//   f(x) = XOR_{S in monomials} prod_{i in S} x_i,   x in {0,1}^n.
//
// This is the representation class behind Corollary 2: XORs of small juntas
// are sparse low-degree F2 polynomials, exactly learnable with membership
// queries. The class stores the monomial set explicitly (sparse), and can be
// derived from any truth table via the Moebius transform.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "boolfn/boolean_function.hpp"
#include "boolfn/truth_table.hpp"
#include "support/rng.hpp"

namespace pitfalls::boolfn {

class AnfPolynomial final : public BooleanFunction {
 public:
  /// Zero polynomial (constant 0, i.e. +1 in the pm encoding) on n vars.
  explicit AnfPolynomial(std::size_t n);

  /// Polynomial from explicit monomials; each monomial is a variable mask of
  /// length n (the empty mask is the constant-1 monomial).
  AnfPolynomial(std::size_t n, std::vector<BitVec> monomials);

  /// Exact ANF of a truth table via the Moebius transform, O(n 2^n).
  static AnfPolynomial from_truth_table(const TruthTable& table);

  /// Random polynomial with `terms` distinct monomials of degree <= degree
  /// (degree >= 1; the constant term is never generated).
  static AnfPolynomial random(std::size_t n, std::size_t terms,
                              std::size_t degree, support::Rng& rng);

  std::size_t num_vars() const override { return n_; }

  /// f(x) over F2 (0/1 output).
  bool eval_f2(const BitVec& x) const;

  /// pm encoding: 0 -> +1, 1 -> -1.
  int eval_pm(const BitVec& x) const override { return eval_f2(x) ? -1 : +1; }

  std::string describe() const override;

  /// Toggle a monomial: adds it if absent, removes it if present (F2 sum).
  void toggle_monomial(const BitVec& monomial);

  bool has_monomial(const BitVec& monomial) const;

  /// XOR with another polynomial of the same arity.
  AnfPolynomial operator^(const AnfPolynomial& other) const;

  std::size_t sparsity() const { return monomials_.size(); }
  std::size_t degree() const;
  const std::set<BitVec>& monomials() const { return monomials_; }

  bool operator==(const AnfPolynomial& other) const {
    return n_ == other.n_ && monomials_ == other.monomials_;
  }

 private:
  std::size_t n_;
  std::set<BitVec> monomials_;
};

}  // namespace pitfalls::boolfn
