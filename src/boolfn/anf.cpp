#include "boolfn/anf.hpp"

#include <sstream>

#include "support/require.hpp"

namespace pitfalls::boolfn {

AnfPolynomial::AnfPolynomial(std::size_t n) : n_(n) {}

AnfPolynomial::AnfPolynomial(std::size_t n, std::vector<BitVec> monomials)
    : n_(n) {
  for (auto& m : monomials) {
    PITFALLS_REQUIRE(m.size() == n, "monomial arity mismatch");
    toggle_monomial(m);  // duplicated monomials cancel over F2
  }
}

AnfPolynomial AnfPolynomial::from_truth_table(const TruthTable& table) {
  const std::size_t n = table.num_vars();
  const std::uint64_t rows = table.num_rows();
  // 0/1 view: +1 -> 0, -1 -> 1.
  std::vector<std::uint8_t> a(rows);
  for (std::uint64_t row = 0; row < rows; ++row)
    a[row] = table.at(row) < 0 ? 1 : 0;

  // Moebius transform butterfly: a[S] becomes XOR_{T subseteq S} f(T),
  // the ANF coefficient of monomial S.
  for (std::uint64_t len = 1; len < rows; len <<= 1)
    for (std::uint64_t block = 0; block < rows; block += len << 1)
      for (std::uint64_t i = block; i < block + len; ++i)
        a[i + len] ^= a[i];

  AnfPolynomial p(n);
  for (std::uint64_t mask = 0; mask < rows; ++mask)
    if (a[mask]) p.monomials_.insert(BitVec(n, mask));
  return p;
}

AnfPolynomial AnfPolynomial::random(std::size_t n, std::size_t terms,
                                    std::size_t degree, support::Rng& rng) {
  PITFALLS_REQUIRE(degree >= 1 && degree <= n, "degree must be in [1, n]");
  AnfPolynomial p(n);
  std::size_t guard = 0;
  while (p.monomials_.size() < terms) {
    PITFALLS_REQUIRE(++guard < 100000 * (terms + 1),
                     "cannot place that many distinct monomials");
    const std::size_t d = 1 + static_cast<std::size_t>(
                                  rng.uniform_below(degree));
    BitVec m(n);
    while (m.popcount() < d)
      m.set(static_cast<std::size_t>(rng.uniform_below(n)), true);
    p.monomials_.insert(m);
  }
  return p;
}

bool AnfPolynomial::eval_f2(const BitVec& x) const {
  PITFALLS_REQUIRE(x.size() == n_, "input arity mismatch");
  bool acc = false;
  for (const auto& m : monomials_)
    if (m.is_subset_of(x)) acc = !acc;  // monomial evaluates to 1 iff m <= x
  return acc;
}

void AnfPolynomial::toggle_monomial(const BitVec& monomial) {
  PITFALLS_REQUIRE(monomial.size() == n_, "monomial arity mismatch");
  auto it = monomials_.find(monomial);
  if (it == monomials_.end())
    monomials_.insert(monomial);
  else
    monomials_.erase(it);
}

bool AnfPolynomial::has_monomial(const BitVec& monomial) const {
  return monomials_.contains(monomial);
}

AnfPolynomial AnfPolynomial::operator^(const AnfPolynomial& other) const {
  PITFALLS_REQUIRE(n_ == other.n_, "arity mismatch in polynomial XOR");
  AnfPolynomial out = *this;
  for (const auto& m : other.monomials_) out.toggle_monomial(m);
  return out;
}

std::size_t AnfPolynomial::degree() const {
  std::size_t d = 0;
  for (const auto& m : monomials_) d = std::max(d, m.popcount());
  return d;
}

std::string AnfPolynomial::describe() const {
  std::ostringstream os;
  os << "F2 polynomial, " << monomials_.size() << " monomials, degree "
     << degree();
  return os.str();
}

}  // namespace pitfalls::boolfn
