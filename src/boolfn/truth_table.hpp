// Dense truth table for small n (n <= 26 or so): the workhorse for exact
// Fourier analysis, exact distances between functions and exhaustive test
// oracles.
#pragma once

#include <cstdint>
#include <vector>

#include "boolfn/boolean_function.hpp"

namespace pitfalls::boolfn {

class TruthTable final : public BooleanFunction {
 public:
  /// Constant +1 table on n variables.
  explicit TruthTable(std::size_t n);

  /// Materialise any BooleanFunction (evaluates it 2^n times).
  static TruthTable from_function(const BooleanFunction& f);

  /// Build from a +/-1 value vector of length 2^n; index bit i of the row
  /// index is input bit i.
  static TruthTable from_values(std::size_t n, std::vector<int> values);

  std::size_t num_vars() const override { return n_; }
  int eval_pm(const BitVec& x) const override;
  std::string describe() const override { return "truth table"; }

  /// Direct row access, index in [0, 2^n).
  int at(std::uint64_t row) const { return values_[row]; }
  void set(std::uint64_t row, int pm_value);

  std::uint64_t num_rows() const { return values_.size(); }
  const std::vector<int>& values() const { return values_; }

  /// Fraction of inputs where the two tables disagree. Sizes must match.
  double distance(const TruthTable& other) const;

  /// E[f] over the uniform distribution.
  double bias() const;

  bool operator==(const TruthTable& other) const {
    return n_ == other.n_ && values_ == other.values_;
  }

 private:
  std::size_t n_;
  std::vector<int> values_;  // +/-1 per row
};

}  // namespace pitfalls::boolfn
