// Core Boolean-function abstraction.
//
// Conventions used throughout the library (and matching the paper):
//   * inputs are bit vectors in {0,1}^n (support::BitVec);
//   * the +/-1 encoding is chi(0) := +1, chi(1) := -1;
//   * outputs are +/-1 ints (eval_pm) with the 0/1 view derived from it;
//   * sgn(0) := +1 for threshold functions.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "support/bitvec.hpp"
#include "support/require.hpp"

namespace pitfalls::boolfn {

using support::BitVec;

/// Abstract Boolean function f : {0,1}^n -> {-1,+1}.
class BooleanFunction {
 public:
  virtual ~BooleanFunction() = default;

  /// Number of input variables n.
  virtual std::size_t num_vars() const = 0;

  /// Evaluate in the +/-1 range. `x.size()` must equal num_vars().
  virtual int eval_pm(const BitVec& x) const = 0;

  /// Evaluate in the {0,1} range: +1 -> 0, -1 -> 1 (consistent with chi).
  bool eval_bit(const BitVec& x) const { return eval_pm(x) < 0; }

  /// Batch evaluation: out[i] = eval_pm(xs[i]) for every i, and the spans
  /// must have equal length. The contract is *exact* element-wise equality
  /// with the scalar path — overrides may bit-slice the arithmetic but must
  /// keep the per-element floating-point accumulation order, so callers can
  /// switch between the scalar and batch planes without changing a single
  /// output bit. The base implementation is the scalar loop.
  virtual void eval_pm_batch(std::span<const BitVec> xs,
                             std::span<int> out) const {
    PITFALLS_REQUIRE(xs.size() == out.size(),
                     "batch spans must have equal length");
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = eval_pm(xs[i]);
  }

  /// Human-readable description used in experiment logs.
  virtual std::string describe() const { return "boolean function"; }
};

/// Adapter wrapping an arbitrary callable as a BooleanFunction.
class FunctionView final : public BooleanFunction {
 public:
  using Fn = std::function<int(const BitVec&)>;

  FunctionView(std::size_t n, Fn fn, std::string name = "lambda")
      : n_(n), fn_(std::move(fn)), name_(std::move(name)) {
    PITFALLS_REQUIRE(fn_ != nullptr, "FunctionView needs a callable");
  }

  std::size_t num_vars() const override { return n_; }
  int eval_pm(const BitVec& x) const override { return fn_(x); }
  std::string describe() const override { return name_; }

 private:
  std::size_t n_;
  Fn fn_;
  std::string name_;
};

}  // namespace pitfalls::boolfn
