// Variable influences and junta structure.
//
// Inf_i(f) = Pr_x[f(x) != f(x with bit i flipped)]. A variable is relevant
// iff its influence is non-zero; a k-junta depends on at most k variables.
// Corollary 2's argument walks through juntas (Bourgain's theorem), so these
// utilities back both the junta learner and its tests.
#pragma once

#include <vector>

#include "boolfn/boolean_function.hpp"
#include "boolfn/truth_table.hpp"
#include "support/rng.hpp"

namespace pitfalls::boolfn {

/// Exact influence of variable i from a truth table.
double influence(const TruthTable& table, std::size_t i);

/// All n exact influences.
std::vector<double> influences(const TruthTable& table);

/// Total influence (sum over variables).
double total_influence(const TruthTable& table);

/// Sampled influence of variable i using m uniform queries.
double estimate_influence(const BooleanFunction& f, std::size_t i,
                          std::size_t m, support::Rng& rng);

/// Indices of variables with non-zero influence (exact, truth table).
std::vector<std::size_t> relevant_variables(const TruthTable& table);

/// True iff the function depends on at most k variables.
bool is_junta(const TruthTable& table, std::size_t k);

/// Restrict f to the given variables: returns the truth table over the
/// `kept` variables obtained by fixing every other variable to `fill`.
TruthTable restrict_to(const BooleanFunction& f,
                       const std::vector<std::size_t>& kept, bool fill);

}  // namespace pitfalls::boolfn
