#include "puf/metrics.hpp"

#include "support/require.hpp"

namespace pitfalls::puf {

namespace {

BitVec uniform_challenge(std::size_t n, support::Rng& rng) {
  BitVec c(n);
  for (std::size_t i = 0; i < n; ++i) c.set(i, rng.coin());
  return c;
}

}  // namespace

double uniformity(const Puf& puf, std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one challenge");
  std::size_t ones = 0;
  for (std::size_t i = 0; i < m; ++i)
    if (puf.eval_pm(uniform_challenge(puf.num_vars(), rng)) < 0) ++ones;
  return static_cast<double>(ones) / static_cast<double>(m);
}

double reliability(const Puf& puf, std::size_t m, std::size_t repeats,
                   support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0 && repeats > 0, "need challenges and repeats");
  std::size_t agreements = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const BitVec c = uniform_challenge(puf.num_vars(), rng);
    const int ideal = puf.eval_pm(c);
    for (std::size_t t = 0; t < repeats; ++t)
      if (puf.eval_noisy(c, rng) == ideal) ++agreements;
  }
  return static_cast<double>(agreements) / static_cast<double>(m * repeats);
}

double uniqueness(const std::vector<const Puf*>& instances, std::size_t m,
                  support::Rng& rng) {
  PITFALLS_REQUIRE(instances.size() >= 2, "uniqueness needs >= 2 instances");
  PITFALLS_REQUIRE(m > 0, "need at least one challenge");
  const std::size_t n = instances.front()->num_vars();
  for (const auto* p : instances) {
    PITFALLS_REQUIRE(p != nullptr, "null PUF instance");
    PITFALLS_REQUIRE(p->num_vars() == n, "instances must share the arity");
  }
  std::size_t diffs = 0;
  std::size_t pairs = 0;
  for (std::size_t s = 0; s < m; ++s) {
    const BitVec c = uniform_challenge(n, rng);
    std::vector<int> responses;
    responses.reserve(instances.size());
    for (const auto* p : instances) responses.push_back(p->eval_pm(c));
    for (std::size_t a = 0; a < responses.size(); ++a)
      for (std::size_t b = a + 1; b < responses.size(); ++b) {
        if (responses[a] != responses[b]) ++diffs;
        ++pairs;
      }
  }
  return static_cast<double>(diffs) / static_cast<double>(pairs);
}

double expected_bias(const Puf& puf, std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one challenge");
  double sum = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    sum += static_cast<double>(
        puf.eval_noisy(uniform_challenge(puf.num_vars(), rng), rng));
  return sum / static_cast<double>(m);
}

}  // namespace pitfalls::puf
