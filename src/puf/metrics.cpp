#include "puf/metrics.hpp"

#include <vector>

#include "obs/metrics.hpp"
#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::puf {

namespace {

BitVec uniform_challenge(std::size_t n, support::Rng& rng) {
  BitVec c(n);
  for (std::size_t i = 0; i < n; ++i) c.set(i, rng.coin());
  return c;
}

}  // namespace

// All four sweeps fan out over challenges with the chunked-stream scheme of
// support/parallel.hpp (chunk c draws from rng_for_chunk(seed, c); integer
// tallies combine in chunk order), so every statistic is byte-identical for
// any PITFALLS_THREADS and the caller's rng advances by exactly one draw.

double uniformity(const Puf& puf, std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one challenge");
  const std::uint64_t seed = rng();
  const std::size_t n = puf.num_vars();
  const std::size_t ones = support::parallel_reduce(
      m, std::size_t{0},
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        // eval_pm draws nothing, so batching after generation is
        // byte-identical to the old interleaved loop.
        std::vector<BitVec> challenges(end - begin);
        for (auto& c : challenges) c = uniform_challenge(n, chunk_rng);
        std::vector<int> out(challenges.size());
        puf.eval_pm_batch(challenges, out);
        obs::observe_batch("puf.metrics", challenges.size());
        std::size_t local = 0;
        for (const int r : out)
          if (r < 0) ++local;
        return local;
      },
      [](std::size_t acc, std::size_t part) { return acc + part; },
      "puf.metrics");
  return static_cast<double>(ones) / static_cast<double>(m);
}

double reliability(const Puf& puf, std::size_t m, std::size_t repeats,
                   support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0 && repeats > 0, "need challenges and repeats");
  const std::uint64_t seed = rng();
  const std::size_t n = puf.num_vars();
  const std::size_t agreements = support::parallel_reduce(
      m, std::size_t{0},
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        // Batch layout: all challenge coins, the ideal batch (no draws),
        // then `repeats` full noisy passes over the slice. The noise draws
        // therefore come in pass order rather than the old per-challenge
        // order — a different (documented) deterministic schedule; the
        // statistic itself is a plain integer tally either way.
        std::vector<BitVec> challenges(end - begin);
        for (auto& c : challenges) c = uniform_challenge(n, chunk_rng);
        std::vector<int> ideal(challenges.size());
        puf.eval_pm_batch(challenges, ideal);
        obs::observe_batch("puf.metrics", challenges.size());
        std::size_t local = 0;
        std::vector<int> measured(challenges.size());
        for (std::size_t t = 0; t < repeats; ++t) {
          puf.eval_noisy_batch(challenges, measured, chunk_rng);
          for (std::size_t i = 0; i < challenges.size(); ++i)
            if (measured[i] == ideal[i]) ++local;
        }
        return local;
      },
      [](std::size_t acc, std::size_t part) { return acc + part; },
      "puf.metrics");
  return static_cast<double>(agreements) / static_cast<double>(m * repeats);
}

double uniqueness(const std::vector<const Puf*>& instances, std::size_t m,
                  support::Rng& rng) {
  PITFALLS_REQUIRE(instances.size() >= 2, "uniqueness needs >= 2 instances");
  PITFALLS_REQUIRE(m > 0, "need at least one challenge");
  const std::size_t n = instances.front()->num_vars();
  for (const auto* p : instances) {
    PITFALLS_REQUIRE(p != nullptr, "null PUF instance");
    PITFALLS_REQUIRE(p->num_vars() == n, "instances must share the arity");
  }
  const std::uint64_t seed = rng();
  const std::size_t diffs = support::parallel_reduce(
      m, std::size_t{0},
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        // One batch per instance per chunk (byte-identical: eval_pm draws
        // nothing), then the pairwise tally per challenge.
        const std::size_t count = end - begin;
        std::vector<BitVec> challenges(count);
        for (auto& c : challenges) c = uniform_challenge(n, chunk_rng);
        std::vector<std::vector<int>> responses(instances.size(),
                                                std::vector<int>(count));
        for (std::size_t p = 0; p < instances.size(); ++p)
          instances[p]->eval_pm_batch(challenges, responses[p]);
        obs::observe_batch("puf.metrics", count);
        std::size_t local = 0;
        for (std::size_t s = 0; s < count; ++s)
          for (std::size_t a = 0; a < instances.size(); ++a)
            for (std::size_t b = a + 1; b < instances.size(); ++b)
              if (responses[a][s] != responses[b][s]) ++local;
        return local;
      },
      [](std::size_t acc, std::size_t part) { return acc + part; },
      "puf.metrics");
  const std::size_t pairs =
      m * (instances.size() * (instances.size() - 1) / 2);
  return static_cast<double>(diffs) / static_cast<double>(pairs);
}

double expected_bias(const Puf& puf, std::size_t m, support::Rng& rng) {
  PITFALLS_REQUIRE(m > 0, "need at least one challenge");
  const std::uint64_t seed = rng();
  const std::size_t n = puf.num_vars();
  // +/-1 responses tally exactly in integers; the division happens once.
  const std::int64_t sum = support::parallel_reduce(
      m, std::int64_t{0},
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        support::Rng chunk_rng = support::rng_for_chunk(seed, chunk);
        std::int64_t local = 0;
        for (std::size_t i = begin; i < end; ++i)
          local += puf.eval_noisy(uniform_challenge(n, chunk_rng), chunk_rng);
        return local;
      },
      [](std::int64_t acc, std::int64_t part) { return acc + part; },
      "puf.metrics");
  return static_cast<double>(sum) / static_cast<double>(m);
}

}  // namespace pitfalls::puf
