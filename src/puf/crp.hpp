// Challenge/response pair (CRP) datasets — the learning examples of the
// paper's adversary models.
//
// Collection modes mirror the access axes of Section IV: uniform random
// examples (noiseless or noisy) and stabilised CRPs (the paper's "noiseless
// and stable CRPs": keep a challenge only when repeated noisy measurements
// agree).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "puf/puf.hpp"

namespace pitfalls::puf {

class CrpSet {
 public:
  CrpSet() = default;
  CrpSet(std::vector<BitVec> challenges, std::vector<int> responses);

  /// m uniform challenges labelled with ideal (noise-free) responses.
  /// Collection is chunk-parallel with deterministic per-chunk streams
  /// (support/parallel.hpp): the result is byte-identical for every
  /// PITFALLS_THREADS value, and `rng` advances by exactly one draw. Each
  /// chunk evaluates its slice as one eval_pm_batch call (bit-sliced for
  /// the PUF simulators), which is byte-identical to per-element eval_pm.
  static CrpSet collect_uniform(const Puf& puf, std::size_t m,
                                support::Rng& rng);

  /// m uniform challenges labelled with one noisy measurement each.
  /// Same chunked determinism contract as collect_uniform; per chunk the
  /// draw schedule is all challenge coins first, then one noise draw per
  /// challenge in order (eval_noisy_batch).
  static CrpSet collect_noisy(const Puf& puf, std::size_t m,
                              support::Rng& rng);

  /// m uniform challenges that are *stable*: all `repeats` noisy
  /// measurements agree (unstable challenges are discarded and resampled).
  /// Requires noise low enough that stable challenges exist; a guard trips
  /// once any chunk sees 1000x its quota in rejections. Same chunked
  /// determinism contract as collect_uniform, including the rejection
  /// accounting in `puf.crp.unstable_rejected`.
  static CrpSet collect_stable(const Puf& puf, std::size_t m,
                               std::size_t repeats, support::Rng& rng);

  std::size_t size() const { return challenges_.size(); }
  bool empty() const { return challenges_.empty(); }

  const std::vector<BitVec>& challenges() const { return challenges_; }
  const std::vector<int>& responses() const { return responses_; }
  const BitVec& challenge(std::size_t i) const { return challenges_[i]; }
  int response(std::size_t i) const { return responses_[i]; }

  void add(BitVec challenge, int response);

  /// First `count` pairs as a new set (count <= size()).
  CrpSet prefix(std::size_t count) const;

  /// Split into {first `train_count` pairs, rest}.
  std::pair<CrpSet, CrpSet> split_at(std::size_t train_count) const;

  /// In-place random permutation.
  void shuffle(support::Rng& rng);

  /// Re-label every challenge with f (used to build training sets labelled
  /// by a hypothesis, as in Table II).
  CrpSet relabel(const boolfn::BooleanFunction& f) const;

  /// Fraction of pairs where `f` agrees with the stored response. Chunked
  /// like the predictor overload but evaluated through eval_pm_batch, so
  /// bit-sliced hypotheses (PUF simulators) skip per-element dispatch.
  double accuracy_of(const boolfn::BooleanFunction& f) const;

  /// Fraction of pairs where the predictor agrees with the stored response.
  double accuracy_of(
      const std::function<int(const BitVec&)>& predictor) const;

 private:
  std::vector<BitVec> challenges_;
  std::vector<int> responses_;
};

}  // namespace pitfalls::puf
