#include "puf/xor_arbiter.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "support/require.hpp"

namespace pitfalls::puf {

XorArbiterPuf::XorArbiterPuf(std::vector<ArbiterPuf> chains)
    : chains_(std::move(chains)) {
  PITFALLS_REQUIRE(!chains_.empty(), "need at least one chain");
  for (const auto& c : chains_)
    PITFALLS_REQUIRE(c.num_vars() == chains_.front().num_vars(),
                     "all chains must share the challenge length");
}

XorArbiterPuf XorArbiterPuf::independent(std::size_t stages, std::size_t k,
                                         double noise_sigma,
                                         support::Rng& rng) {
  PITFALLS_REQUIRE(k > 0, "need at least one chain");
  std::vector<ArbiterPuf> chains;
  chains.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    chains.emplace_back(stages, noise_sigma, rng);
  return XorArbiterPuf(std::move(chains));
}

XorArbiterPuf XorArbiterPuf::correlated(std::size_t stages, std::size_t k,
                                        double rho, double noise_sigma,
                                        support::Rng& rng) {
  PITFALLS_REQUIRE(k > 0, "need at least one chain");
  PITFALLS_REQUIRE(rho >= 0.0 && rho < 1.0, "rho must be in [0,1)");
  std::vector<double> shared(stages + 1);
  for (auto& w : shared) w = rng.gaussian();
  const double fresh_scale = std::sqrt(1.0 - rho * rho);
  std::vector<ArbiterPuf> chains;
  chains.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> w(stages + 1);
    for (std::size_t i = 0; i <= stages; ++i)
      w[i] = fresh_scale * rng.gaussian() + rho * shared[i];
    chains.emplace_back(std::move(w), noise_sigma);
  }
  return XorArbiterPuf(std::move(chains));
}

std::size_t XorArbiterPuf::num_vars() const {
  return chains_.front().num_vars();
}

int XorArbiterPuf::eval_pm(const BitVec& challenge) const {
  int product = 1;
  for (const auto& c : chains_) product *= c.eval_pm(challenge);
  return product;
}

int XorArbiterPuf::eval_noisy(const BitVec& challenge,
                              support::Rng& rng) const {
  int product = 1;
  for (const auto& c : chains_) product *= c.eval_noisy(challenge, rng);
  return product;
}

void XorArbiterPuf::eval_pm_batch(std::span<const BitVec> challenges,
                                  std::span<int> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::fill(out.begin(), out.end(), 1);
  std::vector<int> chain_out(challenges.size());
  for (const auto& c : chains_) {
    c.eval_pm_batch(challenges, chain_out);
    for (std::size_t i = 0; i < challenges.size(); ++i)
      out[i] *= chain_out[i];
  }
}

void XorArbiterPuf::eval_noisy_batch(std::span<const BitVec> challenges,
                                     std::span<int> out,
                                     support::Rng& rng) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  const std::size_t m = challenges.size();
  // Bit-slice the delay sums per chain up front; the noise draws then run in
  // the scalar order (per challenge, one gaussian per chain in chain order).
  std::vector<double> delays(chains_.size() * m);
  for (std::size_t k = 0; k < chains_.size(); ++k)
    chains_[k].delay_differences(challenges,
                                 std::span<double>(delays).subspan(k * m, m));
  for (std::size_t i = 0; i < m; ++i) {
    int product = 1;
    for (std::size_t k = 0; k < chains_.size(); ++k) {
      const double noisy =
          delays[k * m + i] + rng.gaussian(0.0, chains_[k].noise_sigma());
      product *= noisy < 0.0 ? -1 : +1;
    }
    out[i] = product;
  }
}

const ArbiterPuf& XorArbiterPuf::chain(std::size_t i) const {
  PITFALLS_REQUIRE(i < chains_.size(), "chain index out of range");
  return chains_[i];
}

boolfn::FunctionView XorArbiterPuf::feature_space_view() const {
  std::vector<boolfn::Ltf> ltfs;
  ltfs.reserve(chains_.size());
  for (const auto& c : chains_) ltfs.push_back(c.as_feature_space_ltf());
  return boolfn::FunctionView(
      num_vars(),
      [ltfs = std::move(ltfs)](const BitVec& x) {
        int product = 1;
        for (const auto& f : ltfs) product *= f.eval_pm(x);
        return product;
      },
      "XOR of " + std::to_string(chains_.size()) + " feature-space LTFs");
}

std::string XorArbiterPuf::describe() const {
  std::ostringstream os;
  os << chains_.size() << "-XOR arbiter PUF, " << num_vars() << " stages";
  return os.str();
}

}  // namespace pitfalls::puf
