#include "puf/arbiter.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <vector>

#include "puf/bitslice_detail.hpp"
#include "support/require.hpp"

namespace pitfalls::puf {

ArbiterPuf::ArbiterPuf(std::size_t stages, double noise_sigma,
                       support::Rng& rng)
    : stages_(stages), weights_(stages + 1), noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(stages > 0, "an arbiter PUF needs at least one stage");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  for (auto& w : weights_) w = rng.gaussian();
}

ArbiterPuf::ArbiterPuf(std::vector<double> weights, double noise_sigma)
    : stages_(weights.empty() ? 0 : weights.size() - 1),
      weights_(std::move(weights)),
      noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(weights_.size() >= 2, "need stage weights plus a bias");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
}

std::vector<int> ArbiterPuf::feature_map(const BitVec& challenge) {
  const std::size_t n = challenge.size();
  std::vector<int> phi(n + 1);
  phi[n] = 1;
  // Build the suffix parity products back to front.
  int suffix = 1;
  for (std::size_t i = n; i-- > 0;) {
    suffix *= challenge.pm_one(i);  // (1 - 2 c_i)
    phi[i] = suffix;
  }
  return phi;
}

double ArbiterPuf::delay_difference(const BitVec& challenge) const {
  PITFALLS_REQUIRE(challenge.size() == stages_, "challenge arity mismatch");
  const auto phi = feature_map(challenge);
  double sum = 0.0;
  for (std::size_t i = 0; i <= stages_; ++i)
    sum += weights_[i] * static_cast<double>(phi[i]);
  return sum;
}

int ArbiterPuf::eval_pm(const BitVec& challenge) const {
  return delay_difference(challenge) < 0.0 ? -1 : +1;
}

int ArbiterPuf::eval_noisy(const BitVec& challenge, support::Rng& rng) const {
  const double noisy = delay_difference(challenge) + rng.gaussian(0.0, noise_sigma_);
  return noisy < 0.0 ? -1 : +1;
}

void ArbiterPuf::delay_differences(std::span<const BitVec> challenges,
                                   std::span<double> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<std::uint64_t> par(stages_);
  for (std::size_t base = 0; base < challenges.size();
       base += detail::kBatchBlock) {
    const std::size_t block =
        std::min(detail::kBatchBlock, challenges.size() - base);
    for (std::size_t s = 0; s < block; ++s)
      PITFALLS_REQUIRE(challenges[base + s].size() == stages_,
                       "challenge arity mismatch");
    // par[i] bit s starts as challenge bit i; the running XOR from the last
    // stage down turns it into the suffix parity, so a set bit means
    // Phi_i(challenge s) = -1.
    detail::challenge_bit_planes(challenges, base, block, par);
    std::uint64_t acc = 0;
    for (std::size_t i = stages_; i-- > 0;) {
      acc ^= par[i];
      par[i] = acc;
    }
    std::array<double, detail::kBatchBlock> sums{};
    detail::accumulate_weighted_signs(weights_.data(), par.data(), stages_,
                                      sums.data());
    const double bias = weights_[stages_];
    for (std::size_t s = 0; s < block; ++s) out[base + s] = sums[s] + bias;
  }
}

void ArbiterPuf::eval_pm_batch(std::span<const BitVec> challenges,
                               std::span<int> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<double> delays(challenges.size());
  delay_differences(challenges, delays);
  for (std::size_t i = 0; i < delays.size(); ++i)
    out[i] = delays[i] < 0.0 ? -1 : +1;
}

void ArbiterPuf::eval_noisy_batch(std::span<const BitVec> challenges,
                                  std::span<int> out,
                                  support::Rng& rng) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<double> delays(challenges.size());
  delay_differences(challenges, delays);
  // One gaussian per challenge, in order — the scalar loop's draw sequence.
  for (std::size_t i = 0; i < delays.size(); ++i)
    out[i] = delays[i] + rng.gaussian(0.0, noise_sigma_) < 0.0 ? -1 : +1;
}

boolfn::Ltf ArbiterPuf::as_feature_space_ltf() const {
  std::vector<double> w(weights_.begin(), weights_.end() - 1);
  return boolfn::Ltf(std::move(w), -weights_.back());
}

std::string ArbiterPuf::describe() const {
  std::ostringstream os;
  os << stages_ << "-stage arbiter PUF (noise sigma " << noise_sigma_ << ")";
  return os.str();
}

}  // namespace pitfalls::puf
