#include "puf/arbiter.hpp"

#include <sstream>

#include "support/require.hpp"

namespace pitfalls::puf {

ArbiterPuf::ArbiterPuf(std::size_t stages, double noise_sigma,
                       support::Rng& rng)
    : stages_(stages), weights_(stages + 1), noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(stages > 0, "an arbiter PUF needs at least one stage");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
  for (auto& w : weights_) w = rng.gaussian();
}

ArbiterPuf::ArbiterPuf(std::vector<double> weights, double noise_sigma)
    : stages_(weights.empty() ? 0 : weights.size() - 1),
      weights_(std::move(weights)),
      noise_sigma_(noise_sigma) {
  PITFALLS_REQUIRE(weights_.size() >= 2, "need stage weights plus a bias");
  PITFALLS_REQUIRE(noise_sigma >= 0.0, "noise sigma must be non-negative");
}

std::vector<int> ArbiterPuf::feature_map(const BitVec& challenge) {
  const std::size_t n = challenge.size();
  std::vector<int> phi(n + 1);
  phi[n] = 1;
  // Build the suffix parity products back to front.
  int suffix = 1;
  for (std::size_t i = n; i-- > 0;) {
    suffix *= challenge.pm_one(i);  // (1 - 2 c_i)
    phi[i] = suffix;
  }
  return phi;
}

double ArbiterPuf::delay_difference(const BitVec& challenge) const {
  PITFALLS_REQUIRE(challenge.size() == stages_, "challenge arity mismatch");
  const auto phi = feature_map(challenge);
  double sum = 0.0;
  for (std::size_t i = 0; i <= stages_; ++i)
    sum += weights_[i] * static_cast<double>(phi[i]);
  return sum;
}

int ArbiterPuf::eval_pm(const BitVec& challenge) const {
  return delay_difference(challenge) < 0.0 ? -1 : +1;
}

int ArbiterPuf::eval_noisy(const BitVec& challenge, support::Rng& rng) const {
  const double noisy = delay_difference(challenge) + rng.gaussian(0.0, noise_sigma_);
  return noisy < 0.0 ? -1 : +1;
}

boolfn::Ltf ArbiterPuf::as_feature_space_ltf() const {
  std::vector<double> w(weights_.begin(), weights_.end() - 1);
  return boolfn::Ltf(std::move(w), -weights_.back());
}

std::string ArbiterPuf::describe() const {
  std::ostringstream os;
  os << stages_ << "-stage arbiter PUF (noise sigma " << noise_sigma_ << ")";
  return os.str();
}

}  // namespace pitfalls::puf
