#include "puf/puf.hpp"

#include "support/require.hpp"

namespace pitfalls::puf {

void Puf::eval_noisy_batch(std::span<const BitVec> challenges,
                           std::span<int> out, support::Rng& rng) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  for (std::size_t i = 0; i < challenges.size(); ++i)
    out[i] = eval_noisy(challenges[i], rng);
}

int Puf::eval_majority(const BitVec& challenge, std::size_t votes,
                       support::Rng& rng) const {
  PITFALLS_REQUIRE(votes % 2 == 1, "majority vote needs an odd vote count");
  int sum = 0;
  for (std::size_t i = 0; i < votes; ++i) sum += eval_noisy(challenge, rng);
  return sum < 0 ? -1 : +1;
}

}  // namespace pitfalls::puf
