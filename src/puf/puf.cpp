#include "puf/puf.hpp"

#include "support/require.hpp"

namespace pitfalls::puf {

int Puf::eval_majority(const BitVec& challenge, std::size_t votes,
                       support::Rng& rng) const {
  PITFALLS_REQUIRE(votes % 2 == 1, "majority vote needs an odd vote count");
  int sum = 0;
  for (std::size_t i = 0; i < votes; ++i) sum += eval_noisy(challenge, rng);
  return sum < 0 ? -1 : +1;
}

}  // namespace pitfalls::puf
