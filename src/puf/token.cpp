#include "puf/token.hpp"

#include "support/parallel.hpp"
#include "support/require.hpp"

namespace pitfalls::puf {

std::uint64_t token_seed(std::uint64_t fleet_seed, std::uint64_t token_id) {
  // One draw from the token's rng_for_chunk stream: the same SplitMix64
  // construction the parallel layer derives chunk streams from, so token
  // streams can never collide with each other (or with chunk streams of a
  // different root seed) by accident.
  support::Rng rng =
      support::rng_for_chunk(fleet_seed, static_cast<std::size_t>(token_id));
  return rng();
}

XorArbiterPuf materialize_token(const TokenSpec& spec,
                                std::uint64_t fleet_seed,
                                std::uint64_t token_id) {
  PITFALLS_REQUIRE(spec.stages > 0, "token spec needs at least one stage");
  PITFALLS_REQUIRE(spec.chains > 0, "token spec needs at least one chain");
  PITFALLS_REQUIRE(spec.noise_sigma >= 0.0,
                   "token noise sigma must be >= 0");
  support::Rng rng =
      support::rng_for_chunk(fleet_seed, static_cast<std::size_t>(token_id));
  return XorArbiterPuf::independent(spec.stages, spec.chains,
                                    spec.noise_sigma, rng);
}

}  // namespace pitfalls::puf
