// Feed-forward Arbiter PUF: intermediate arbiters tap the accumulated delay
// difference and drive later stage-select bits, breaking the clean LTF
// structure of the plain arbiter chain.
//
// Included as a second "representation pitfall" specimen alongside the BR
// PUF: the parity-feature LTF model that is *exact* for plain arbiter
// chains (Section III-A) is only an approximation here, so the same
// Chow/Perceptron pipeline plateaus — and the halfspace tester flags the
// feature-space view.
//
// Delay recursion (standard additive model): with s_i in {-1,+1} the
// effective select of stage i and t_i the stage asymmetry,
//   D_i = s_i * D_{i-1} + t_i,   response = sgn(D_n).
// For a plain chain s_i = chi(c_i); a feed-forward loop (from, to) replaces
// s_to by sgn(D_from).
#pragma once

#include <span>
#include <vector>

#include "puf/puf.hpp"

namespace pitfalls::puf {

struct FeedForwardLoop {
  std::size_t from = 0;  // stage whose accumulated delay sign is tapped
  std::size_t to = 0;    // later stage whose select bit it overrides
};

class FeedForwardArbiterPuf final : public Puf {
 public:
  /// Random instance with `stages` challenge bits and `loops` feed-forward
  /// loops at random positions (from < to, targets distinct).
  FeedForwardArbiterPuf(std::size_t stages, std::size_t loops,
                        double noise_sigma, support::Rng& rng);

  /// Explicit construction: one asymmetry weight per stage plus a final
  /// bias weight (size stages+1).
  FeedForwardArbiterPuf(std::vector<double> stage_weights,
                        std::vector<FeedForwardLoop> loops,
                        double noise_sigma);

  std::size_t num_vars() const override { return stages_; }
  int eval_pm(const BitVec& challenge) const override;
  int eval_noisy(const BitVec& challenge, support::Rng& rng) const override;
  std::string describe() const override;

  /// Bit-sliced batch paths. The recursion stays per-stage but runs over a
  /// 64-challenge block at a time; intermediate taps are saved per block so
  /// loop overrides read exactly the scalar partial sums. Bit-identical to
  /// the scalar loop.
  void eval_pm_batch(std::span<const BitVec> challenges,
                     std::span<int> out) const override;
  void eval_noisy_batch(std::span<const BitVec> challenges, std::span<int> out,
                        support::Rng& rng) const override;

  const std::vector<FeedForwardLoop>& loops() const { return loops_; }

  /// Accumulated delay difference D_n (before noise and sign).
  double delay_difference(const BitVec& challenge) const;

  /// Batched delay differences, same accumulation order as the scalar
  /// recursion per challenge.
  void delay_differences(std::span<const BitVec> challenges,
                         std::span<double> out) const;

 private:
  std::size_t stages_;
  std::vector<double> weights_;  // t_1..t_n, plus trailing bias
  std::vector<FeedForwardLoop> loops_;
  double noise_sigma_;
};

}  // namespace pitfalls::puf
