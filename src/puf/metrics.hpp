// Standard PUF quality metrics (uniformity, reliability, uniqueness,
// expected bias under attribute noise). The paper's Section III-A explicitly
// excludes "the impact of the inherent bias" from its bounds — these metrics
// let the benches report that bias so the exclusion is visible.
#pragma once

#include <vector>

#include "puf/puf.hpp"

namespace pitfalls::puf {

/// Fraction of 1-responses over m uniform challenges (ideal evaluation);
/// 0.5 is perfectly uniform.
double uniformity(const Puf& puf, std::size_t m, support::Rng& rng);

/// Pr[noisy response == ideal response] over m uniform challenges, with
/// `repeats` noisy measurements per challenge.
double reliability(const Puf& puf, std::size_t m, std::size_t repeats,
                   support::Rng& rng);

/// Mean pairwise fractional Hamming distance of the response vectors of the
/// given instances over m shared uniform challenges. Requires >= 2 instances
/// of equal arity; ideal value 0.5.
double uniqueness(const std::vector<const Puf*>& instances, std::size_t m,
                  support::Rng& rng);

/// Expected bias E[f] under noisy evaluation (the paper's "expected bias" in
/// the presence of attribute noise, cf. [17]).
double expected_bias(const Puf& puf, std::size_t m, support::Rng& rng);

}  // namespace pitfalls::puf
