// Seed -> token materialization: the fleet-scale view of a PUF population.
//
// A deployed token is, for simulation purposes, nothing but a seed: the
// fabrication randomness that fixed its delay deviations. A fleet of
// millions of tokens therefore needs no storage per instance — a token's
// full model is a pure function of (fleet seed, token id, TokenSpec),
// derived through the same SplitMix64 stream construction the parallel
// layer uses (support::rng_for_chunk), so materializing token #k twice, on
// any machine, at any PITFALLS_THREADS, yields bit-identical weights.
//
// This is the population view the NUS unified-framework paper argues
// security must be qualified over: per-instance verdicts ("token #12 is
// learnable with m CRPs") only compose into a deployment claim when the
// instance population is reproducible. serve::TokenFleet builds its
// sharded, LRU-bounded resident cache directly on these two functions.
#pragma once

#include <cstdint>

#include "puf/xor_arbiter.hpp"

namespace pitfalls::puf {

/// The per-population hardware parameters every token of a fleet shares.
/// Individual tokens differ only in their seed-derived weights.
struct TokenSpec {
  std::size_t stages = 64;
  std::size_t chains = 2;
  double noise_sigma = 0.0;
};

/// The root seed of token `token_id` within the fleet seeded by
/// `fleet_seed`: SplitMix64-mixed so neighbouring token ids produce
/// statistically independent instances (the rng_for_chunk construction).
std::uint64_t token_seed(std::uint64_t fleet_seed, std::uint64_t token_id);

/// Materialize the token's full simulation model. Pure: byte-identical
/// weights for identical (spec, fleet_seed, token_id) on every call.
XorArbiterPuf materialize_token(const TokenSpec& spec,
                                std::uint64_t fleet_seed,
                                std::uint64_t token_id);

}  // namespace pitfalls::puf
