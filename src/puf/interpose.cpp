#include "puf/interpose.hpp"

#include <span>
#include <sstream>
#include <vector>

#include "support/require.hpp"

namespace pitfalls::puf {

InterposePuf::InterposePuf(std::size_t stages, std::size_t x, std::size_t y,
                           double noise_sigma, support::Rng& rng)
    : stages_(stages),
      position_(stages / 2),
      upper_(XorArbiterPuf::independent(stages, x, noise_sigma, rng)),
      lower_(XorArbiterPuf::independent(stages + 1, y, noise_sigma, rng)) {
  PITFALLS_REQUIRE(stages >= 2, "need at least two stages");
  PITFALLS_REQUIRE(x >= 1 && y >= 1, "need at least one chain per layer");
}

BitVec InterposePuf::extend_challenge(const BitVec& challenge,
                                      int upper_response) const {
  PITFALLS_REQUIRE(challenge.size() == stages_, "challenge arity mismatch");
  PITFALLS_REQUIRE(upper_response == +1 || upper_response == -1,
                   "upper response must be +/-1");
  BitVec extended(stages_ + 1);
  for (std::size_t i = 0; i < position_; ++i)
    extended.set(i, challenge.get(i));
  extended.set(position_, upper_response < 0);  // chi: -1 -> bit 1
  for (std::size_t i = position_; i < stages_; ++i)
    extended.set(i + 1, challenge.get(i));
  return extended;
}

int InterposePuf::eval_pm(const BitVec& challenge) const {
  const int upper_response = upper_.eval_pm(challenge);
  return lower_.eval_pm(extend_challenge(challenge, upper_response));
}

void InterposePuf::eval_pm_batch(std::span<const BitVec> challenges,
                                 std::span<int> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  upper_.eval_pm_batch(challenges, out);  // out holds the upper responses
  std::vector<BitVec> extended;
  extended.reserve(challenges.size());
  for (std::size_t i = 0; i < challenges.size(); ++i)
    extended.push_back(extend_challenge(challenges[i], out[i]));
  lower_.eval_pm_batch(extended, out);
}

int InterposePuf::eval_noisy(const BitVec& challenge,
                             support::Rng& rng) const {
  const int upper_response = upper_.eval_noisy(challenge, rng);
  return lower_.eval_noisy(extend_challenge(challenge, upper_response), rng);
}

std::string InterposePuf::describe() const {
  std::ostringstream os;
  os << "(" << upper_.num_chains() << "," << lower_.num_chains()
     << ")-interpose PUF, " << stages_ << " stages";
  return os.str();
}

}  // namespace pitfalls::puf
