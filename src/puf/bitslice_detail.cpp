#include "puf/bitslice_detail.hpp"

namespace pitfalls::puf::detail {

namespace {

// Portable kernel. The lane loop has a constant 64-iteration bound so the
// compiler can unroll/vectorise it at the baseline ISA.
void accumulate_portable(const double* weights, const std::uint64_t* negates,
                         std::size_t stages, double* sums) {
  for (std::size_t i = 0; i < stages; ++i) {
    const std::uint64_t neg = negates[i];
    const std::uint64_t w = std::bit_cast<std::uint64_t>(weights[i]);
    for (std::size_t s = 0; s < kBatchBlock; ++s)
      sums[s] += std::bit_cast<double>(w ^ (((neg >> s) & 1U) << 63));
  }
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PITFALLS_HAVE_AVX2_KERNEL 1
// Same loop compiled for AVX2 (vpsrlvq/vpxor/vaddpd): per (stage, lane) the
// operation is the identical XOR-sign + IEEE add, only executed four lanes
// at a time, so the result is byte-identical to the portable kernel.
__attribute__((target("avx2"))) void accumulate_avx2(
    const double* weights, const std::uint64_t* negates, std::size_t stages,
    double* sums) {
  for (std::size_t i = 0; i < stages; ++i) {
    const std::uint64_t neg = negates[i];
    const std::uint64_t w = std::bit_cast<std::uint64_t>(weights[i]);
    for (std::size_t s = 0; s < kBatchBlock; ++s)
      sums[s] += std::bit_cast<double>(w ^ (((neg >> s) & 1U) << 63));
  }
}
#endif

}  // namespace

void accumulate_weighted_signs(const double* weights,
                               const std::uint64_t* negates,
                               std::size_t stages, double* sums) {
#if defined(PITFALLS_HAVE_AVX2_KERNEL)
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2") != 0;
  if (kHasAvx2) {
    accumulate_avx2(weights, negates, stages, sums);
    return;
  }
#endif
  accumulate_portable(weights, negates, stages, sums);
}

}  // namespace pitfalls::puf::detail
