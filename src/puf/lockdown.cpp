#include "puf/lockdown.hpp"

#include "support/require.hpp"

namespace pitfalls::puf {

LockdownToken::LockdownToken(const LockdownConfig& config, support::Rng& rng)
    : config_(config),
      puf_(XorArbiterPuf::independent(config.stages, config.chains,
                                      config.noise_sigma, rng)),
      remaining_(config.crp_budget) {
  PITFALLS_REQUIRE(config.stages >= 2 && config.stages % 2 == 0,
                   "stages must be even (half-and-half nonces)");
  PITFALLS_REQUIRE(config.chains >= 1, "need at least one chain");
}

std::optional<LockdownTranscript> LockdownToken::authenticate(
    const support::BitVec& verifier_nonce, support::Rng& rng) {
  PITFALLS_REQUIRE(verifier_nonce.size() == config_.stages / 2,
                   "verifier nonce must cover half of the challenge");
  if (remaining_ == 0) return std::nullopt;  // lockdown engaged
  --remaining_;

  // Token nonce fills the second half: even a verifier-impersonating
  // adversary only controls half the challenge, so no membership queries.
  support::BitVec challenge(config_.stages);
  for (std::size_t i = 0; i < verifier_nonce.size(); ++i)
    challenge.set(i, verifier_nonce.get(i));
  for (std::size_t i = verifier_nonce.size(); i < config_.stages; ++i)
    challenge.set(i, rng.coin());

  LockdownTranscript transcript;
  transcript.response = puf_.eval_noisy(challenge, rng);
  transcript.challenge = std::move(challenge);
  return transcript;
}

}  // namespace pitfalls::puf
