// Additive-delay Arbiter PUF.
//
// The standard linear model (Gassend et al. [6], Ruehrmair et al. [8]): the
// delay difference accumulated over n stages is a linear function of the
// parity feature vector
//   Phi_i(c) = prod_{j=i}^{n-1} (1 - 2 c_j)   for i = 0..n-1,  Phi_n = 1,
// so the response is the LTF  sgn(w . Phi(c))  in feature space. Stage delay
// deviations are i.i.d. Gaussian, which makes w i.i.d. Gaussian too. The
// noisy channel adds a fresh Gaussian to the margin per evaluation
// (metastability near the switching threshold — the attribute noise of the
// paper's footnote 1).
#pragma once

#include <span>
#include <vector>

#include "boolfn/ltf.hpp"
#include "puf/puf.hpp"

namespace pitfalls::puf {

class ArbiterPuf final : public Puf {
 public:
  /// Sample a fresh instance with `stages` challenge bits.
  /// noise_sigma is the per-evaluation margin noise, in units of a single
  /// stage's delay deviation (sigma = 0 gives a deterministic PUF).
  ArbiterPuf(std::size_t stages, double noise_sigma, support::Rng& rng);

  /// Instance with explicit feature-space weights (size stages+1: the last
  /// entry is the bias/threshold term).
  ArbiterPuf(std::vector<double> weights, double noise_sigma);

  std::size_t num_vars() const override { return stages_; }
  int eval_pm(const BitVec& challenge) const override;
  int eval_noisy(const BitVec& challenge, support::Rng& rng) const override;
  std::string describe() const override;

  /// Bit-sliced batch evaluation: 64 challenges per block share one plane
  /// transposition, so the per-challenge feature-map allocation of the
  /// scalar path disappears. Bit-identical to the scalar loop.
  void eval_pm_batch(std::span<const BitVec> challenges,
                     std::span<int> out) const override;
  void eval_noisy_batch(std::span<const BitVec> challenges, std::span<int> out,
                        support::Rng& rng) const override;

  /// Batched delay differences (the bit-sliced kernel behind both batch
  /// entry points). Same floating-point accumulation order per challenge as
  /// delay_difference: stages ascending, bias last.
  void delay_differences(std::span<const BitVec> challenges,
                         std::span<double> out) const;

  /// The parity feature map Phi(c), size stages+1 (+/-1 entries, last = 1).
  static std::vector<int> feature_map(const BitVec& challenge);

  /// The PUF as an explicit LTF over the *feature space*: Phi is a bijection
  /// of {0,1}^n, and in Phi coordinates the arbiter PUF is exactly
  /// sgn(sum_i w_i x_i - theta). This is the representation the paper's
  /// Section III-A formulas (and Corollary 1) are stated in.
  boolfn::Ltf as_feature_space_ltf() const;

  /// Real-valued delay difference w . Phi(c).
  double delay_difference(const BitVec& challenge) const;

  const std::vector<double>& weights() const { return weights_; }
  double noise_sigma() const { return noise_sigma_; }

 private:
  std::size_t stages_;
  std::vector<double> weights_;  // size stages_ + 1
  double noise_sigma_;
};

}  // namespace pitfalls::puf
