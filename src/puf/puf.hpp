// Base abstraction for simulated PUFs.
//
// A PUF is a Boolean function (its *ideal*, noise-free challenge/response
// map) plus a noisy evaluation channel modelling the attribute noise the
// paper discusses (metastability, aging, measurement noise — footnote 1).
// Learners attack either the ideal map (the "noiseless and stable CRPs" of
// Section V) or the noisy channel, depending on the experiment.
#pragma once

#include <span>

#include "boolfn/boolean_function.hpp"
#include "support/rng.hpp"

namespace pitfalls::puf {

using boolfn::BooleanFunction;
using support::BitVec;

class Puf : public BooleanFunction {
 public:
  /// One noisy measurement of the response to `challenge`.
  virtual int eval_noisy(const BitVec& challenge, support::Rng& rng) const = 0;

  /// One noisy measurement per challenge. The contract mirrors
  /// eval_pm_batch: out[i] must equal what the scalar loop
  ///   for i: out[i] = eval_noisy(challenges[i], rng)
  /// produces, *including the rng draw sequence* — overrides may vectorize
  /// the delay arithmetic but must consume `rng` in exactly the per-element
  /// scalar order so scalar and batch paths stay byte-identical.
  virtual void eval_noisy_batch(std::span<const BitVec> challenges,
                                std::span<int> out, support::Rng& rng) const;

  /// Majority vote over `votes` noisy measurements (votes must be odd) —
  /// the standard way real CRP sets are stabilised before an attack.
  int eval_majority(const BitVec& challenge, std::size_t votes,
                    support::Rng& rng) const;
};

}  // namespace pitfalls::puf
