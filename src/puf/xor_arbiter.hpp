// XOR Arbiter PUF (Suh & Devadas [7]): k parallel arbiter chains fed the
// same challenge; the response is the XOR of the chain responses (product in
// the +/-1 encoding).
//
// Two instantiation modes:
//   * independent chains — the construction Section III-A analyses; its
//     Fourier spectrum spreads to degree ~k and uniform-distribution
//     learning needs n^{O(k^2/eps^2)} examples (Corollary 1);
//   * correlated chains — the RocknRoll regime of [17]: chains share a
//     common weight component with correlation rho, which re-concentrates
//     Fourier weight at low degrees and lets LMN reach ~75% accuracy even
//     for k >> ln n. The contrast between the modes is exactly the
//     "contradiction" Section V-B resolves.
#pragma once

#include <vector>

#include "puf/arbiter.hpp"

namespace pitfalls::puf {

class XorArbiterPuf final : public Puf {
 public:
  /// k independent chains of `stages` bits each.
  static XorArbiterPuf independent(std::size_t stages, std::size_t k,
                                   double noise_sigma, support::Rng& rng);

  /// k chains whose weight vectors share a common component:
  /// w_chain = sqrt(1-rho^2) * fresh + rho * shared, rho in [0,1).
  static XorArbiterPuf correlated(std::size_t stages, std::size_t k,
                                  double rho, double noise_sigma,
                                  support::Rng& rng);

  /// Wrap explicit chains (all must share the same arity).
  explicit XorArbiterPuf(std::vector<ArbiterPuf> chains);

  std::size_t num_vars() const override;
  int eval_pm(const BitVec& challenge) const override;
  int eval_noisy(const BitVec& challenge, support::Rng& rng) const override;
  std::string describe() const override;

  /// Batch paths: chain-by-chain bit-sliced evaluation, products taken in
  /// chain order. eval_noisy_batch keeps the scalar draw sequence (per
  /// challenge, one gaussian per chain in chain order).
  void eval_pm_batch(std::span<const BitVec> challenges,
                     std::span<int> out) const override;
  void eval_noisy_batch(std::span<const BitVec> challenges, std::span<int> out,
                        support::Rng& rng) const override;

  std::size_t num_chains() const { return chains_.size(); }
  const ArbiterPuf& chain(std::size_t i) const;

  /// The PUF in feature-space coordinates (Section III-A's formulation):
  /// the XOR (product) of k explicit LTFs over the same +/-1 input vector.
  /// This is the h = g(f_1, ..., f_k) whose noise sensitivity drives
  /// Corollary 1. The view owns copies of the chain LTFs.
  boolfn::FunctionView feature_space_view() const;

 private:
  std::vector<ArbiterPuf> chains_;
};

}  // namespace pitfalls::puf
