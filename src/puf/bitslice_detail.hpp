// Internal helpers for the bit-sliced batch PUF evaluators.
//
// Batch overrides process challenges in blocks of up to 64 and transpose the
// block into *planes*: plane[i] is a 64-bit word whose bit s is bit i of the
// block's s-th challenge. Per-stage work then becomes word-parallel (e.g. the
// suffix parities Phi_i of the arbiter model are a running XOR over planes),
// while the floating-point accumulation stays per-challenge and in the exact
// scalar order, so batch results are bit-identical to the scalar path.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/bitvec.hpp"

namespace pitfalls::puf::detail {

/// Challenges bit-sliced per block by the batch evaluators.
inline constexpr std::size_t kBatchBlock = 64;

/// In-place 64x64 bit-matrix transpose (the recursive block-swap scheme from
/// Hacker's Delight 7-3). With this routine's bit convention the output obeys
///   bit s of a_out[i]  ==  bit (63-i) of a_in[63-s],
/// which callers compensate for by reversing the row order on load and the
/// plane order on store.
inline void transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (a[k] ^ (a[k + j] >> j)) & m;
      a[k] ^= t;
      a[k + j] ^= t << j;
    }
  }
}

/// Fill planes[i] (for i < planes.size()) so that bit s of planes[i] is bit i
/// of challenges[base + s], for s < block <= 64. Challenges must have
/// size() <= planes.size(). One transpose64 per 64-bit word column — ~6 word
/// ops per challenge instead of a scatter over every set bit.
inline void challenge_bit_planes(std::span<const support::BitVec> challenges,
                                 std::size_t base, std::size_t block,
                                 std::vector<std::uint64_t>& planes) {
  const std::size_t words = (planes.size() + 63) / 64;
  std::uint64_t rows[64];
  for (std::size_t w = 0; w < words; ++w) {
    std::fill(std::begin(rows), std::end(rows), 0);
    for (std::size_t s = 0; s < block; ++s) {
      const support::BitVec& c = challenges[base + s];
      if (w < c.num_words()) rows[63 - s] = c.word(w);
    }
    transpose64(rows);
    const std::size_t limit = std::min<std::size_t>(64, planes.size() - w * 64);
    for (std::size_t b = 0; b < limit; ++b) planes[w * 64 + b] = rows[63 - b];
  }
}

/// value with its sign flipped iff `negate_bit` (0 or 1) is set. For IEEE
/// doubles this equals value * (negate_bit ? -1.0 : +1.0) *exactly*, so the
/// bit-sliced accumulators reproduce the scalar products bit-for-bit.
inline double flip_sign_if(double value, std::uint64_t negate_bit) {
  return std::bit_cast<double>(std::bit_cast<std::uint64_t>(value) ^
                               (negate_bit << 63));
}

/// The bit-sliced linear accumulation shared by the arbiter-family batch
/// kernels: for every lane s < kBatchBlock,
///   sums[s] += sum over i < stages of flip_sign_if(weights[i], bit s of
///   negates[i])
/// with the stage additions applied in ascending i order per lane — the
/// exact scalar accumulation order, so results are bit-identical to the
/// per-challenge loop. All 64 lanes are always computed (padding lanes see
/// zero negate bits); callers read only the lanes of their block.
///
/// Implemented out of line (bitslice_detail.cpp) with a runtime-dispatched
/// AVX2 variant on x86-64: sign-flip-and-add is pure lane-wise integer XOR
/// plus one IEEE add per (stage, lane), so the vectorised path performs the
/// identical operation sequence per lane and stays byte-identical to the
/// portable loop.
void accumulate_weighted_signs(const double* weights,
                               const std::uint64_t* negates,
                               std::size_t stages,
                               double* sums);

}  // namespace pitfalls::puf::detail
