// Bistable Ring (BR) PUF — behavioral model.
//
// SUBSTITUTION NOTE (see DESIGN.md §3): the paper measures BR PUFs on an
// Intel/Altera Cyclone IV FPGA. We cannot fabricate those, so we simulate
// the behavioral model the BR PUF literature itself uses (Xu et al.,
// RFIDsec'15; Ganji et al., FC'18): the settled state is the sign of a
// polynomial in the +/-1-encoded challenge bits with
//   * a dominant linear part (per-stage inverter strength mismatch), and
//   * sparse degree-2/3 interaction terms (coupling between stages selected
//     together), whose variance share `nonlinear_share` grows with n.
// The only property of the FPGA data the paper relies on is that BR PUFs are
// NOT linear threshold functions — best-LTF accuracy plateaus (Table II) and
// the halfspace tester flags growing distance (Table III). This model
// reproduces exactly that, with the plateau position controlled by
// nonlinear_share.
#pragma once

#include <span>
#include <vector>

#include "puf/puf.hpp"

namespace pitfalls::puf {

struct BistableRingConfig {
  std::size_t bits = 16;
  /// Fraction of the response-polynomial variance carried by the
  /// degree-2/3 interaction terms; 0 gives an exact LTF.
  double nonlinear_share = 0.3;
  /// Number of random degree-2 interaction terms (0 = use 2*bits).
  std::size_t pair_terms = 0;
  /// Number of random degree-3 interaction terms (0 = use bits).
  std::size_t triple_terms = 0;
  /// Per-evaluation Gaussian margin noise (attribute noise).
  double noise_sigma = 0.0;

  /// Calibrated defaults reproducing the paper's per-n trend
  /// (n = 16/32/64 -> growing distance from any halfspace, Table III).
  static BistableRingConfig paper_instance(std::size_t bits);
};

class BistableRingPuf final : public Puf {
 public:
  BistableRingPuf(const BistableRingConfig& config, support::Rng& rng);

  std::size_t num_vars() const override { return config_.bits; }
  int eval_pm(const BitVec& challenge) const override;
  int eval_noisy(const BitVec& challenge, support::Rng& rng) const override;
  std::string describe() const override;

  /// Bit-sliced batch paths: per block, interaction-term parities become
  /// XORs of challenge-bit planes. Bit-identical to the scalar loop.
  void eval_pm_batch(std::span<const BitVec> challenges,
                     std::span<int> out) const override;
  void eval_noisy_batch(std::span<const BitVec> challenges, std::span<int> out,
                        support::Rng& rng) const override;

  /// The real-valued settling margin (before the sign).
  double margin(const BitVec& challenge) const;

  /// Batched margins, same accumulation order as the scalar margin().
  void margins(std::span<const BitVec> challenges, std::span<double> out) const;

  const BistableRingConfig& config() const { return config_; }

 private:
  struct Interaction {
    std::vector<std::size_t> vars;  // 2 or 3 distinct indices
    double weight = 0.0;
  };

  BistableRingConfig config_;
  std::vector<double> linear_;           // one weight per stage
  std::vector<Interaction> interactions_;
};

}  // namespace pitfalls::puf
