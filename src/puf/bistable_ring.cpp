#include "puf/bistable_ring.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "puf/bitslice_detail.hpp"
#include "support/require.hpp"

namespace pitfalls::puf {

BistableRingConfig BistableRingConfig::paper_instance(std::size_t bits) {
  BistableRingConfig cfg;
  cfg.bits = bits;
  // Calibrated so that the best-LTF accuracy plateaus in the low 90s
  // (Table II) while the halfspace tester's distance estimate grows with n
  // (Table III): larger rings couple more stages, so the interaction share
  // rises with n.
  // Interaction share AND attribute noise both grow with the ring size:
  // more stages couple more neighbours and accumulate more jitter. The
  // noise drives the stable-CRP filter of Table II (larger rings keep only
  // higher-margin challenges, raising conditional accuracy with n, as in
  // the paper), while Table III's unfiltered CRPs see the raw interaction
  // share (distance rising with n).
  if (bits <= 16) {
    cfg.nonlinear_share = 0.20;
    cfg.noise_sigma = 0.15;
  } else if (bits <= 32) {
    cfg.nonlinear_share = 0.40;
    cfg.noise_sigma = 0.7;
  } else {
    cfg.nonlinear_share = 0.50;
    cfg.noise_sigma = 1.4;
  }
  cfg.pair_terms = 2 * bits;
  cfg.triple_terms = bits;
  return cfg;
}

BistableRingPuf::BistableRingPuf(const BistableRingConfig& config,
                                 support::Rng& rng)
    : config_(config), linear_(config.bits) {
  PITFALLS_REQUIRE(config.bits >= 4, "a BR PUF needs at least 4 stages");
  PITFALLS_REQUIRE(config.nonlinear_share >= 0.0 &&
                       config.nonlinear_share < 1.0,
                   "nonlinear share must be in [0,1)");
  PITFALLS_REQUIRE(config.noise_sigma >= 0.0, "noise sigma must be >= 0");
  if (config_.pair_terms == 0) config_.pair_terms = 2 * config.bits;
  if (config_.triple_terms == 0) config_.triple_terms = config.bits;

  for (auto& w : linear_) w = rng.gaussian();

  // Sample distinct interaction supports (degree 2 then degree 3).
  const std::size_t n = config.bits;
  std::set<std::vector<std::size_t>> seen;
  auto sample_support = [&](std::size_t degree) {
    std::vector<std::size_t> vars;
    do {
      std::set<std::size_t> picked;
      while (picked.size() < degree)
        picked.insert(static_cast<std::size_t>(rng.uniform_below(n)));
      vars.assign(picked.begin(), picked.end());
    } while (!seen.insert(vars).second);
    return vars;
  };
  for (std::size_t t = 0; t < config_.pair_terms; ++t)
    interactions_.push_back({sample_support(2), rng.gaussian()});
  for (std::size_t t = 0; t < config_.triple_terms; ++t)
    interactions_.push_back({sample_support(3), rng.gaussian()});

  // Normalise the variance split: with x_i = +/-1 uniform, each term w * m(x)
  // contributes variance w^2, so the shares are set by rescaling each group.
  double linear_var = 0.0;
  for (auto w : linear_) linear_var += w * w;
  double inter_var = 0.0;
  for (const auto& term : interactions_) inter_var += term.weight * term.weight;
  PITFALLS_ENSURE(linear_var > 0.0 && inter_var > 0.0,
                  "degenerate weight draw");

  const double lambda = config_.nonlinear_share;
  const double linear_scale = std::sqrt((1.0 - lambda) / linear_var);
  const double inter_scale = std::sqrt(lambda / inter_var);
  for (auto& w : linear_) w *= linear_scale;
  for (auto& term : interactions_) term.weight *= inter_scale;
}

double BistableRingPuf::margin(const BitVec& challenge) const {
  PITFALLS_REQUIRE(challenge.size() == config_.bits,
                   "challenge arity mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < linear_.size(); ++i)
    sum += linear_[i] * static_cast<double>(challenge.pm_one(i));
  for (const auto& term : interactions_) {
    int prod = 1;
    for (auto v : term.vars) prod *= challenge.pm_one(v);
    sum += term.weight * static_cast<double>(prod);
  }
  return sum;
}

void BistableRingPuf::margins(std::span<const BitVec> challenges,
                              std::span<double> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<std::uint64_t> planes(config_.bits);
  for (std::size_t base = 0; base < challenges.size();
       base += detail::kBatchBlock) {
    const std::size_t block =
        std::min(detail::kBatchBlock, challenges.size() - base);
    for (std::size_t s = 0; s < block; ++s)
      PITFALLS_REQUIRE(challenges[base + s].size() == config_.bits,
                       "challenge arity mismatch");
    detail::challenge_bit_planes(challenges, base, block, planes);
    std::array<double, detail::kBatchBlock> sums{};
    for (std::size_t i = 0; i < linear_.size(); ++i) {
      const std::uint64_t neg = planes[i];
      const double w = linear_[i];
      for (std::size_t s = 0; s < block; ++s)
        sums[s] += detail::flip_sign_if(w, (neg >> s) & 1);
    }
    for (const auto& term : interactions_) {
      // Bit s of neg is the parity of challenge s over the term's support,
      // i.e. whether the +/-1 product of the selected bits is -1.
      std::uint64_t neg = 0;
      for (auto v : term.vars) neg ^= planes[v];
      const double w = term.weight;
      for (std::size_t s = 0; s < block; ++s)
        sums[s] += detail::flip_sign_if(w, (neg >> s) & 1);
    }
    for (std::size_t s = 0; s < block; ++s) out[base + s] = sums[s];
  }
}

void BistableRingPuf::eval_pm_batch(std::span<const BitVec> challenges,
                                    std::span<int> out) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<double> m(challenges.size());
  margins(challenges, m);
  for (std::size_t i = 0; i < m.size(); ++i) out[i] = m[i] < 0.0 ? -1 : +1;
}

void BistableRingPuf::eval_noisy_batch(std::span<const BitVec> challenges,
                                       std::span<int> out,
                                       support::Rng& rng) const {
  PITFALLS_REQUIRE(challenges.size() == out.size(),
                   "batch spans must have equal length");
  std::vector<double> m(challenges.size());
  margins(challenges, m);
  for (std::size_t i = 0; i < m.size(); ++i)
    out[i] = m[i] + rng.gaussian(0.0, config_.noise_sigma) < 0.0 ? -1 : +1;
}

int BistableRingPuf::eval_pm(const BitVec& challenge) const {
  return margin(challenge) < 0.0 ? -1 : +1;
}

int BistableRingPuf::eval_noisy(const BitVec& challenge,
                                support::Rng& rng) const {
  const double noisy = margin(challenge) + rng.gaussian(0.0, config_.noise_sigma);
  return noisy < 0.0 ? -1 : +1;
}

std::string BistableRingPuf::describe() const {
  std::ostringstream os;
  os << config_.bits << "-bit bistable ring PUF (nonlinear share "
     << config_.nonlinear_share << ")";
  return os.str();
}

}  // namespace pitfalls::puf
